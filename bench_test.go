// Package caft's top-level benchmarks regenerate, at reduced sample
// counts, every experiment of the paper (Figures 1-6), the Prop. 5.1
// message-count table, the Thm. 5.1 complexity scaling, and the
// ablations listed in DESIGN.md. Custom benchmark metrics carry the
// measured series so `go test -bench` output documents the shapes:
// normalized latencies (caft0/ftsa0/ftbar0), crash latencies and mean
// message counts. Full-size runs (60 graphs per point) are produced by
// cmd/caftsim.
package caft

import (
	"fmt"
	"io"
	"math/rand"
	"testing"

	"caft/internal/core"
	"caft/internal/expt"
	"caft/internal/gen"
	"caft/internal/platform"
	"caft/internal/sched"
	"caft/internal/sched/ftbar"
	"caft/internal/sched/ftsa"
	"caft/internal/sched/heft"
	"caft/internal/sim"
	"caft/internal/timeline"
	"caft/internal/topology"
)

// benchFigure runs a reduced version of a paper figure and reports the
// mid-granularity point as benchmark metrics. In -short mode (CI) the
// sample count drops to one graph per point so a -benchtime=1x sweep
// of every figure stays affordable.
func benchFigure(b *testing.B, figure, graphs int) {
	b.Helper()
	if testing.Short() {
		graphs = 1
	}
	cfg, err := expt.FigureConfig(figure, graphs, 1)
	if err != nil {
		b.Fatal(err)
	}
	// Three representative granularities instead of ten.
	gs := cfg.Granularities
	cfg.Granularities = []float64{gs[0], gs[4], gs[9]}
	var last []expt.Point
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := cfg.Run(nil)
		if err != nil {
			b.Fatal(err)
		}
		last = pts
	}
	b.StopTimer()
	mid := last[1]
	b.ReportMetric(mid.CAFT0, "caft0")
	b.ReportMetric(mid.FTSA0, "ftsa0")
	b.ReportMetric(mid.FTBAR0, "ftbar0")
	b.ReportMetric(mid.CAFTc, "caft-crash")
	b.ReportMetric(mid.FTSAc, "ftsa-crash")
	b.ReportMetric(mid.OvCAFT0, "caft-ov%")
	b.ReportMetric(mid.MsgCAFT, "caft-msgs")
	b.ReportMetric(mid.MsgFTSA, "ftsa-msgs")
	if mid.TasksLost != 0 {
		b.Fatalf("crash replays lost %d tasks", mid.TasksLost)
	}
}

func BenchmarkFigure1(b *testing.B) { benchFigure(b, 1, 3) } // m=10 ε=1, family A
func BenchmarkFigure2(b *testing.B) { benchFigure(b, 2, 3) } // m=10 ε=3, family A
func BenchmarkFigure3(b *testing.B) { benchFigure(b, 3, 2) } // m=20 ε=5, family A
func BenchmarkFigure4(b *testing.B) { benchFigure(b, 4, 3) } // m=10 ε=1, family B
func BenchmarkFigure5(b *testing.B) { benchFigure(b, 5, 3) } // m=10 ε=3, family B
func BenchmarkFigure6(b *testing.B) { benchFigure(b, 6, 2) } // m=20 ε=5, family B

// BenchmarkMessageCounts regenerates the Prop. 5.1 message table.
func BenchmarkMessageCounts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := expt.RunMessages(io.Discard, 2, 1, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationOneToOne compares the CAFT replication patterns (A1).
func BenchmarkAblationOneToOne(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p := benchProblem(rng, 10, 1.0, timeline.Append)
	for _, v := range []struct {
		name string
		opts core.Options
	}{
		{"portfolio", core.Options{}},
		{"greedy", core.Options{Greedy: true}},
		{"full-only", core.Options{FullOnly: true}},
		{"paper-locking", core.Options{Greedy: true, Locking: core.PaperLocking}},
	} {
		b.Run(v.name, func(b *testing.B) {
			var lat, msgs float64
			for i := 0; i < b.N; i++ {
				s, _, err := core.ScheduleOpts(p, 3, rand.New(rand.NewSource(7)), v.opts)
				if err != nil {
					b.Fatal(err)
				}
				lat = s.ScheduledLatency()
				msgs = float64(s.MessageCount())
			}
			b.ReportMetric(lat/expt.DefaultNorm, "latency")
			b.ReportMetric(msgs, "msgs")
		})
	}
}

// BenchmarkAblationInsertion compares the append and insertion timeline
// policies (A2).
func BenchmarkAblationInsertion(b *testing.B) {
	for _, pol := range []timeline.Policy{timeline.Append, timeline.Insertion} {
		b.Run(pol.String(), func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			p := benchProblem(rng, 10, 1.0, pol)
			var lat float64
			for i := 0; i < b.N; i++ {
				s, err := core.Schedule(p, 1, rand.New(rand.NewSource(7)))
				if err != nil {
					b.Fatal(err)
				}
				lat = s.ScheduledLatency()
			}
			b.ReportMetric(lat/expt.DefaultNorm, "latency")
		})
	}
}

// BenchmarkScheduleInsertion pins the payoff of the clone-free probe
// refactor on the probe-heaviest scheduler under the Insertion policy:
// the speculative (journaled, rolled-back) probe path against the
// deep-clone-per-probe reference it replaced. Run with -benchmem; the
// acceptance bar is >=5x fewer allocs/op for the speculative mode, and
// in practice steady-state probes are allocation-free.
func BenchmarkScheduleInsertion(b *testing.B) {
	for _, mode := range []sched.ProbeMode{sched.SpeculativeProbe, sched.CloneProbe} {
		b.Run(mode.String(), func(b *testing.B) {
			rng := rand.New(rand.NewSource(12))
			p := benchProblem(rng, 10, 1.0, timeline.Insertion)
			p.Probe = mode
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ftsa.Schedule(p, 2, rand.New(rand.NewSource(7))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationContention measures how far the macro-dataflow
// estimate deviates from the one-port replay of the same schedule (A3).
func BenchmarkAblationContention(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	p := benchProblem(rng, 10, 0.4, timeline.Append)
	macro := *p
	macro.Model = sched.MacroDataflow
	var est, replayed float64
	for i := 0; i < b.N; i++ {
		s, err := ftsa.Schedule(&macro, 1, rand.New(rand.NewSource(7)))
		if err != nil {
			b.Fatal(err)
		}
		est = s.ScheduledLatency()
		view := *s
		view.P = p
		r, err := sim.Replay(&view, sim.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if replayed, err = r.Latency(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(est/expt.DefaultNorm, "macro-estimate")
	b.ReportMetric(replayed/expt.DefaultNorm, "one-port-replay")
}

// BenchmarkScale runs a reduced large-DAG scale study (the -figure
// scale experiment) end to end, exercising the speculative probe path
// under both reservation policies at sizes past the paper's regime. In
// -short mode (CI) it shrinks to the smallest size so every push still
// drives the probe-heavy journal/rollback machinery.
func BenchmarkScale(b *testing.B) {
	sizes := []int{100, 200}
	if testing.Short() {
		sizes = sizes[:1]
	}
	for i := 0; i < b.N; i++ {
		if err := expt.RunScale(io.Discard, io.Discard, sizes, 1, 1, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCAFTComplexity traces the Thm. 5.1 scaling of CAFT's running
// time in v, m and ε.
func BenchmarkCAFTComplexity(b *testing.B) {
	for _, c := range []struct{ v, m, eps int }{
		{50, 10, 1}, {100, 10, 1}, {200, 10, 1},
		{100, 10, 3}, {100, 20, 3}, {100, 20, 5},
	} {
		b.Run(fmt.Sprintf("v=%d/m=%d/eps=%d", c.v, c.m, c.eps), func(b *testing.B) {
			rng := rand.New(rand.NewSource(4))
			params := gen.DefaultParams
			params.MinTasks, params.MaxTasks = c.v, c.v
			g := gen.RandomLayered(rng, params)
			plat := platform.NewRandom(rng, c.m, 0.5, 1.0)
			exec := platform.GenExecForGranularity(rng, g, plat, 1.0, platform.DefaultHeterogeneity)
			p := &sched.Problem{G: g, Plat: plat, Exec: exec, Model: sched.OnePort, Policy: timeline.Append}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := core.ScheduleOpts(p, c.eps, rand.New(rand.NewSource(7)), core.Options{Greedy: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSchedulers compares the raw scheduling time of the three
// fault-tolerant algorithms on one paper-sized instance.
func BenchmarkSchedulers(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	p := benchProblem(rng, 10, 1.0, timeline.Append)
	b.Run("heft", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := heft.Schedule(p, rand.New(rand.NewSource(7))); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ftsa-eps1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ftsa.Schedule(p, 1, rand.New(rand.NewSource(7))); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ftbar-eps1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ftbar.Schedule(p, 1, rand.New(rand.NewSource(7))); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("caft-eps1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Schedule(p, 1, rand.New(rand.NewSource(7))); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCrashReplay measures the runtime replay engine: the one-shot
// package API (which rebuilds the replay tables per call) against a
// reused Replayer, the allocation-lean path the experiment engine uses
// for its Monte-Carlo loops.
func BenchmarkCrashReplay(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	p := benchProblem(rng, 10, 1.0, timeline.Append)
	s, err := core.Schedule(p, 3, rng)
	if err != nil {
		b.Fatal(err)
	}
	crashed := map[int]bool{1: true, 4: true}
	b.Run("oneshot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sim.CrashLatency(s, crashed); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reused", func(b *testing.B) {
		rep, err := sim.NewReplayer(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := rep.CrashLatency(crashed); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkReplayTimed measures the timed fail-stop replay: the
// one-shot package API (which rebuilds the Replayer and its tables on
// every call) against the reused scratch path the reliability
// experiments drive. Run with -benchmem: the fixpoint replays the whole
// schedule several times per call, so the reused path's flat buffers
// cut allocs/op by well over an order of magnitude.
func BenchmarkReplayTimed(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	p := benchProblem(rng, 10, 1.0, timeline.Append)
	s, err := core.Schedule(p, 3, rng)
	if err != nil {
		b.Fatal(err)
	}
	horizon := s.MakespanAll()
	crashTimes := map[int]float64{1: horizon / 3, 4: horizon / 2}
	b.Run("oneshot", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sim.CrashLatencyAt(s, crashTimes); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reused", func(b *testing.B) {
		rep, err := sim.NewReplayer(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := rep.CrashLatencyAt(crashTimes); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSparseTopology runs CAFT on routed sparse interconnects (X1).
func BenchmarkSparseTopology(b *testing.B) {
	nets := []struct {
		name string
		net  sched.Network
	}{
		{"clique", nil},
		{"hypercube", mustTopo(topology.Hypercube(3, 0.75))},
		{"ring", mustTopo(topology.Ring(8, 0.75))},
		{"mesh", mustTopo(topology.Mesh2D(2, 4, 0.75))},
	}
	for _, n := range nets {
		b.Run(n.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(8))
			g := gen.RandomLayered(rng, gen.DefaultParams)
			plat := platform.New(8, 0.75)
			exec := platform.GenExecForGranularity(rng, g, plat, 1.0, platform.DefaultHeterogeneity)
			p := &sched.Problem{G: g, Plat: plat, Exec: exec, Model: sched.OnePort, Policy: timeline.Append, Net: n.net}
			var lat float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := core.Schedule(p, 1, rand.New(rand.NewSource(7)))
				if err != nil {
					b.Fatal(err)
				}
				lat = s.ScheduledLatency()
			}
			b.ReportMetric(lat/expt.DefaultNorm, "latency")
		})
	}
}

// BenchmarkBatchCAFT compares CAFT against its window-K batch variant
// (the paper's §7 future-work idea, X2).
func BenchmarkBatchCAFT(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	p := benchProblem(rng, 10, 1.0, timeline.Append)
	for _, k := range []int{1, 4, 10} {
		b.Run(fmt.Sprintf("window=%d", k), func(b *testing.B) {
			var lat float64
			for i := 0; i < b.N; i++ {
				s, err := core.ScheduleBatch(p, 1, k, rand.New(rand.NewSource(7)))
				if err != nil {
					b.Fatal(err)
				}
				lat = s.ScheduledLatency()
			}
			b.ReportMetric(lat/expt.DefaultNorm, "latency")
		})
	}
}

func benchProblem(rng *rand.Rand, m int, g float64, pol timeline.Policy) *sched.Problem {
	graph := gen.RandomLayered(rng, gen.DefaultParams)
	plat := platform.NewRandom(rng, m, 0.5, 1.0)
	exec := platform.GenExecForGranularity(rng, graph, plat, g, platform.DefaultHeterogeneity)
	return &sched.Problem{G: graph, Plat: plat, Exec: exec, Model: sched.OnePort, Policy: pol}
}
