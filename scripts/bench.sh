#!/bin/sh
# bench.sh — re-measure the zero-alloc serving paths.
#
# The //caft:zeroalloc annotations (DESIGN.md S10) prove allocation
# freedom statically; this script is the empirical half. It first runs
# the AllocsPerRun pin tests, then the benchmarks that drive the
# pinned paths with -benchmem -count=$COUNT, and compares against the
# committed baseline with benchstat when it is installed (a built-in
# mean formatter is the fallback — the repo itself stays
# dependency-free).
#
# Usage:
#   scripts/bench.sh            # run, compare against scripts/bench-baseline.txt
#   scripts/bench.sh -update    # re-seed the baseline from this machine
#   COUNT=4 scripts/bench.sh    # fewer repetitions (default 10)
#
# Baselines are machine-specific: re-seed before comparing across a
# hardware change, and trust allocs/op (which must not drift at all)
# over ns/op.
set -eu
cd "$(dirname "$0")/.."

COUNT="${COUNT:-10}"
BASELINE="scripts/bench-baseline.txt"

# The benchmarks behind the zero-alloc claims: the replay inner loop,
# the caftd cache-hit path, and the compiled-view layers — DAG
# compilation, incremental rank maintenance (Reset/Repair), bounded
# candidate selection and dense schedule validation. BenchmarkServeMiss
# and BenchmarkCompile ride along as contrast columns (they allocate,
# and should); the Rank/Candidates/Validate steady states must not.
BENCH='^(BenchmarkReplay|BenchmarkServeCached|BenchmarkServeMiss|BenchmarkCompile|BenchmarkRankReset|BenchmarkRankRepair|BenchmarkCandidates|BenchmarkValidate)$'
PKGS="./internal/sim ./internal/service ./internal/dag ./internal/sched"

echo "== alloc-pin tests" >&2
go test -run 'AllocPin|ProcsOfScratch' ./internal/sched ./internal/online ./internal/dag >&2

echo "== benchmarks (-benchmem -count=$COUNT)" >&2
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT
go test -run '^$' -bench "$BENCH" -benchmem -count "$COUNT" $PKGS | tee "$tmp" >&2

if [ "${1:-}" = "-update" ]; then
	cp "$tmp" "$BASELINE"
	echo "== baseline re-seeded: $BASELINE" >&2
	exit 0
fi

if [ ! -f "$BASELINE" ]; then
	echo "== no $BASELINE; run scripts/bench.sh -update to seed it" >&2
	exit 1
fi

if command -v benchstat >/dev/null 2>&1; then
	echo "== benchstat old=baseline new=this-run"
	benchstat "$BASELINE" "$tmp"
else
	# Fallback: per-benchmark means of ns/op, B/op, allocs/op from the
	# standard "name iters ns/op B/op allocs/op" benchmark lines.
	echo "== benchstat not installed; built-in means (old = baseline, new = this run)"
	summarize() {
		awk '/^Benchmark/ {
			n[$1]++; ns[$1] += $3; b[$1] += $5; a[$1] += $7
		}
		END {
			for (k in n)
				printf "%-40s %14.1f ns/op %10.1f B/op %8.2f allocs/op\n",
					k, ns[k]/n[k], b[k]/n[k], a[k]/n[k]
		}' "$1" | sort
	}
	echo "-- old"
	summarize "$BASELINE"
	echo "-- new"
	summarize "$tmp"
fi
