package caft

import (
	"math/rand"
	"testing"

	"caft/internal/core"
	"caft/internal/gen"
	"caft/internal/online"
	"caft/internal/platform"
	"caft/internal/sched"
	"caft/internal/sched/ftbar"
	"caft/internal/sched/ftsa"
	"caft/internal/sched/heft"
	"caft/internal/sim"
	"caft/internal/timeline"
)

// TestOnlineStaticEquivalence is the differential pin of the online
// event-driven engine: replaying any schedule with an EMPTY failure
// trace must reproduce the static sim.Replayer no-crash replay bit for
// bit — same liveness, same start and finish for every replica and
// communication — for every scheduler under both reservation policies,
// with and without the reactive re-mapper armed. The two engines share
// no timing code: sim sweeps a least fixpoint over scratch tables, the
// online engine discharges the identical constraint system through an
// event queue, so agreement here pins the event semantics (DESIGN.md
// S7) to the established replay semantics.
func TestOnlineStaticEquivalence(t *testing.T) {
	schedulers := []struct {
		name string
		run  func(p *sched.Problem) (*sched.Schedule, error)
	}{
		{"heft", func(p *sched.Problem) (*sched.Schedule, error) {
			return heft.Schedule(p, rand.New(rand.NewSource(7)))
		}},
		{"ftsa", func(p *sched.Problem) (*sched.Schedule, error) {
			return ftsa.Schedule(p, 2, rand.New(rand.NewSource(7)))
		}},
		{"ftbar", func(p *sched.Problem) (*sched.Schedule, error) {
			return ftbar.Schedule(p, 2, rand.New(rand.NewSource(7)))
		}},
		{"caft", func(p *sched.Problem) (*sched.Schedule, error) {
			return core.Schedule(p, 2, rand.New(rand.NewSource(7)))
		}},
		{"caft-batch", func(p *sched.Problem) (*sched.Schedule, error) {
			return core.ScheduleBatch(p, 1, 4, rand.New(rand.NewSource(7)))
		}},
	}
	for _, pol := range []timeline.Policy{timeline.Append, timeline.Insertion} {
		for seed := int64(1); seed <= 3; seed++ {
			rng := rand.New(rand.NewSource(seed))
			params := gen.RandomParams{MinTasks: 30, MaxTasks: 40, MinDegree: 1, MaxDegree: 3, MinVolume: 50, MaxVolume: 150}
			g := gen.RandomLayered(rng, params)
			plat := platform.NewRandom(rng, 6, 0.5, 1.0)
			exec := platform.GenExecForGranularity(rng, g, plat, 1.0, platform.DefaultHeterogeneity)
			for _, s := range schedulers {
				p := sched.Problem{G: g, Plat: plat, Exec: exec, Model: sched.OnePort, Policy: pol}
				schedule, err := s.run(&p)
				if err != nil {
					t.Fatalf("%s/%v/seed%d: %v", s.name, pol, seed, err)
				}
				want, err := sim.Replay(schedule, sim.Options{})
				if err != nil {
					t.Fatalf("%s/%v/seed%d static replay: %v", s.name, pol, seed, err)
				}
				eng, err := online.NewEngine(schedule)
				if err != nil {
					t.Fatalf("%s/%v/seed%d engine: %v", s.name, pol, seed, err)
				}
				for _, opt := range []online.Options{{}, {Reschedule: true}} {
					got, err := eng.Run(nil, opt)
					if err != nil {
						t.Fatalf("%s/%v/seed%d online (reschedule=%v): %v", s.name, pol, seed, opt.Reschedule, err)
					}
					compareOnlineToStatic(t, s.name, got, want)
				}
			}
		}
	}
}

// compareOnlineToStatic asserts a no-failure online result is
// bit-identical to a static replay result.
func compareOnlineToStatic(t *testing.T, label string, got *online.Result, want *sim.Result) {
	t.Helper()
	if len(got.TasksLost) != 0 || len(want.TasksLost) != 0 {
		t.Fatalf("%s: lost tasks in a no-failure replay: online %v, static %v", label, got.TasksLost, want.TasksLost)
	}
	if got.Rescheduled != 0 {
		t.Fatalf("%s: %d reactive placements in a no-failure replay", label, got.Rescheduled)
	}
	if len(got.Reps) != len(want.Reps) || len(got.Comms) != len(want.Comms) {
		t.Fatalf("%s: shape mismatch", label)
	}
	for task := range want.Reps {
		if len(got.Reps[task]) != len(want.Reps[task]) {
			t.Fatalf("%s: task %d replica count %d vs %d", label, task, len(got.Reps[task]), len(want.Reps[task]))
		}
		for i, w := range want.Reps[task] {
			g := got.Reps[task][i]
			if g.Rep != w.Rep || g.Alive != w.Alive || g.Start != w.Start || g.Finish != w.Finish {
				t.Fatalf("%s: replica (%d,%d): online {alive %v [%v,%v)}, static {alive %v [%v,%v)}",
					label, task, w.Rep.Copy, g.Alive, g.Start, g.Finish, w.Alive, w.Start, w.Finish)
			}
		}
	}
	for i, w := range want.Comms {
		g := got.Comms[i]
		if g.Comm != w.Comm || g.Alive != w.Alive || g.Start != w.Start || g.Finish != w.Finish {
			t.Fatalf("%s: comm %d: online {alive %v [%v,%v)}, static {alive %v [%v,%v)}",
				label, i, g.Alive, g.Start, g.Finish, w.Alive, w.Start, w.Finish)
		}
	}
}
