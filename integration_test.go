package caft

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"caft/internal/bounds"
	"caft/internal/core"
	"caft/internal/dag"
	"caft/internal/gen"
	"caft/internal/platform"
	"caft/internal/sched"
	"caft/internal/sched/ftbar"
	"caft/internal/sched/ftsa"
	"caft/internal/sim"
	"caft/internal/timeline"
	"caft/internal/topology"
)

// mustTopo unwraps a topology-constructor result for the statically
// valid shapes used across the root test files.
func mustTopo(g *topology.Graph, err error) *topology.Graph {
	if err != nil {
		panic(err)
	}
	return g
}

// TestIntegrationMatrix runs the full pipeline — generate, schedule,
// validate, replay, bound-check — across graph families, algorithms,
// communication models and reservation policies.
func TestIntegrationMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	graphs := map[string]*dag.DAG{
		"random":  gen.RandomLayered(rng, gen.RandomParams{MinTasks: 30, MaxTasks: 40, MinDegree: 1, MaxDegree: 3, MinVolume: 50, MaxVolume: 150}),
		"fork":    gen.Fork(10, 100),
		"montage": gen.Montage(5, 100),
		"fft":     gen.FFT(3, 80),
		"stencil": gen.Stencil(4, 5, 60),
		"chain":   gen.Chain(12, 90),
	}
	algos := map[string]func(p *sched.Problem, eps int, r *rand.Rand) (*sched.Schedule, error){
		"caft":  core.Schedule,
		"ftsa":  ftsa.Schedule,
		"ftbar": ftbar.Schedule,
	}
	for gname, g := range graphs {
		for _, model := range []sched.Model{sched.OnePort, sched.MacroDataflow} {
			for _, pol := range []timeline.Policy{timeline.Append, timeline.Insertion} {
				plat := platform.NewRandom(rng, 6, 0.5, 1.0)
				exec := platform.GenExecForGranularity(rng, g, plat, 1.0, platform.DefaultHeterogeneity)
				p := &sched.Problem{G: g, Plat: plat, Exec: exec, Model: model, Policy: pol}
				for aname, algo := range algos {
					name := fmt.Sprintf("%s/%s/%s/%s", gname, model, pol, aname)
					t.Run(name, func(t *testing.T) {
						s, err := algo(p, 1, rng)
						if err != nil {
							t.Fatal(err)
						}
						if err := s.Validate(); err != nil {
							t.Fatal(err)
						}
						if s.ScheduledLatency() < bounds.CriticalPath(p)-sched.Eps {
							t.Fatalf("latency %v beats critical path %v", s.ScheduledLatency(), bounds.CriticalPath(p))
						}
						lb, err := sim.LowerBound(s)
						if err != nil {
							t.Fatal(err)
						}
						// Replay reproduces scheduled times under the
						// append policy; insertion replays in placement
						// order and may differ slightly.
						if pol == timeline.Append && lb > s.ScheduledLatency()+sched.Eps {
							t.Fatalf("replay %v exceeds scheduled latency %v", lb, s.ScheduledLatency())
						}
						ub, err := sim.UpperBound(s)
						if err != nil {
							t.Fatal(err)
						}
						if ub < lb-sched.Eps {
							t.Fatalf("UB %v < LB %v", ub, lb)
						}
						for proc := 0; proc < 6; proc++ {
							lat, err := sim.CrashLatency(s, map[int]bool{proc: true})
							if err != nil {
								t.Fatalf("crash P%d: %v", proc, err)
							}
							if model == sched.OnePort && lat > ub+sched.Eps {
								t.Fatalf("crash P%d latency %v exceeds UB %v", proc, lat, ub)
							}
						}
					})
				}
			}
		}
	}
}

// TestIntegrationSparseMatrix runs CAFT and FTSA on every sparse
// topology and verifies resilience and validity.
func TestIntegrationSparseMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	nets := map[string]sched.Network{
		"ring":      mustTopo(topology.Ring(8, 0.75)),
		"star":      mustTopo(topology.Star(8, 0.75)),
		"torus":     mustTopo(topology.Torus2D(2, 4, 0.75)),
		"hypercube": mustTopo(topology.Hypercube(3, 0.75)),
	}
	g := gen.RandomLayered(rng, gen.RandomParams{MinTasks: 25, MaxTasks: 30, MinDegree: 1, MaxDegree: 2, MinVolume: 20, MaxVolume: 60})
	plat := platform.New(8, 0.75)
	exec := platform.GenExecForGranularity(rng, g, plat, 1.0, platform.DefaultHeterogeneity)
	for nname, net := range nets {
		t.Run(nname, func(t *testing.T) {
			p := &sched.Problem{G: g, Plat: plat, Exec: exec, Model: sched.OnePort, Policy: timeline.Append, Net: net}
			for _, eps := range []int{1, 2} {
				sCA, err := core.Schedule(p, eps, rng)
				if err != nil {
					t.Fatal(err)
				}
				if err := sCA.Validate(); err != nil {
					t.Fatal(err)
				}
				sFT, err := ftsa.Schedule(p, eps, rng)
				if err != nil {
					t.Fatal(err)
				}
				for draw := 0; draw < 10; draw++ {
					crashed := map[int]bool{}
					for len(crashed) < eps {
						crashed[rng.Intn(8)] = true
					}
					if _, err := sim.CrashLatency(sCA, crashed); err != nil {
						t.Fatalf("caft eps=%d %v: %v", eps, crashed, err)
					}
					if _, err := sim.CrashLatency(sFT, crashed); err != nil {
						t.Fatalf("ftsa eps=%d %v: %v", eps, crashed, err)
					}
				}
			}
		})
	}
}

// TestInsertionImprovesOrMatchesAppend checks the A2 ablation claim on
// aggregate: gap-filling placements never hurt on average.
func TestInsertionImprovesOrMatchesAppend(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	totalApp, totalIns := 0.0, 0.0
	for trial := 0; trial < 5; trial++ {
		g := gen.RandomLayered(rng, gen.DefaultParams)
		plat := platform.NewRandom(rng, 8, 0.5, 1.0)
		exec := platform.GenExecForGranularity(rng, g, plat, 1.0, platform.DefaultHeterogeneity)
		pApp := &sched.Problem{G: g, Plat: plat, Exec: exec, Model: sched.OnePort, Policy: timeline.Append}
		pIns := &sched.Problem{G: g, Plat: plat, Exec: exec, Model: sched.OnePort, Policy: timeline.Insertion}
		sApp, err := core.Schedule(pApp, 1, rand.New(rand.NewSource(5)))
		if err != nil {
			t.Fatal(err)
		}
		sIns, err := core.Schedule(pIns, 1, rand.New(rand.NewSource(5)))
		if err != nil {
			t.Fatal(err)
		}
		if err := sIns.Validate(); err != nil {
			t.Fatal(err)
		}
		totalApp += sApp.ScheduledLatency()
		totalIns += sIns.ScheduledLatency()
	}
	if totalIns > totalApp*1.02 {
		t.Fatalf("insertion policy worse on aggregate: %v vs %v", totalIns, totalApp)
	}
}

// TestMacroDataflowUnderestimates pins the paper's §3 motivation as an
// invariant: for communication-heavy instances the contention-free
// estimate is below the one-port replay of the same schedule.
func TestMacroDataflowUnderestimates(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 4; trial++ {
		g := gen.RandomLayered(rng, gen.DefaultParams)
		plat := platform.NewRandom(rng, 10, 0.5, 1.0)
		exec := platform.GenExecForGranularity(rng, g, plat, 0.3, platform.DefaultHeterogeneity)
		macro := &sched.Problem{G: g, Plat: plat, Exec: exec, Model: sched.MacroDataflow, Policy: timeline.Append}
		s, err := ftsa.Schedule(macro, 1, rng)
		if err != nil {
			t.Fatal(err)
		}
		onePort := *macro
		onePort.Model = sched.OnePort
		view := *s
		view.P = &onePort
		r, err := sim.Replay(&view, sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		lat, err := r.Latency()
		if err != nil {
			t.Fatal(err)
		}
		if lat <= s.ScheduledLatency() {
			t.Fatalf("one-port replay %v not above macro estimate %v", lat, s.ScheduledLatency())
		}
		if math.IsInf(lat, 1) {
			t.Fatal("replay diverged")
		}
	}
}
