package caft_test

import (
	"fmt"
	"math/rand"

	"caft"
)

// ExampleScheduleCAFT schedules a two-stage pipeline with one tolerated
// failure and shows that any single crash still completes the
// application.
func ExampleScheduleCAFT() {
	g := caft.NewDAG(3)
	g.AddEdge(0, 1, 10)
	g.AddEdge(1, 2, 10)

	plat := caft.NewPlatform(3, 1.0) // 3 processors, unit delay 1
	exec := make(caft.ExecMatrix, 3)
	for t := range exec {
		exec[t] = []float64{5, 5, 5}
	}
	p := &caft.Problem{G: g, Plat: plat, Exec: exec}

	rng := rand.New(rand.NewSource(1))
	s, err := caft.ScheduleCAFT(p, 1, rng)
	if err != nil {
		panic(err)
	}
	fmt.Println("replicas:", s.ReplicaCount())
	for proc := 0; proc < 3; proc++ {
		if _, err := caft.CrashLatency(s, map[int]bool{proc: true}); err != nil {
			fmt.Println("crash lost the application:", err)
			return
		}
	}
	fmt.Println("every single crash survived")
	// Output:
	// replicas: 6
	// every single crash survived
}

// ExampleUpperBound contrasts the failure-free latency with the latency
// guaranteed under ε failures.
func ExampleUpperBound() {
	g := caft.NewDAG(2)
	g.AddEdge(0, 1, 4)
	plat := caft.NewPlatform(2, 1.0)
	// The second processor runs t1 ten times slower, so the backup
	// replica chain is slow: the upper bound reflects it while the
	// failure-free latency uses the fast chain.
	exec := caft.ExecMatrix{{3, 3}, {3, 30}}
	p := &caft.Problem{G: g, Plat: plat, Exec: exec}

	s, err := caft.ScheduleFTSA(p, 1, rand.New(rand.NewSource(1)))
	if err != nil {
		panic(err)
	}
	lb, _ := caft.LowerBound(s)
	ub, _ := caft.UpperBound(s)
	fmt.Printf("no failures: %.0f, guaranteed under 1 failure: %.0f\n", lb, ub)
	// Output:
	// no failures: 6, guaranteed under 1 failure: 33
}
