package caft

// The exhaustive resilience verifier: Proposition 5.2 claims a CAFT
// schedule tolerates any ε processor failures. The figure experiments
// only sample crash sets; here every C(m, ε) crash subset of small
// instances is enumerated and replayed, turning the proposition from a
// sampled claim into a checked invariant for CAFT (support locking),
// FTSA and FTBAR across the structured families the paper reasons
// about — forks, chains, diamonds — and random layered DAGs. The
// literal eq. (7) PaperLocking rule is covered as an expected-failure
// case: the verifier must find subsets that lose a task (the gap
// documented in EXPERIMENTS.md), or the ablation would be pointless.

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"caft/internal/core"
	"caft/internal/dag"
	"caft/internal/gen"
	"caft/internal/platform"
	"caft/internal/sched"
	"caft/internal/sched/ftbar"
	"caft/internal/sched/ftsa"
	"caft/internal/sim"
	"caft/internal/timeline"
)

// forEachSubset enumerates every size-k subset of 0..m-1 in
// lexicographic order, reusing one scratch map across calls.
func forEachSubset(m, k int, visit func(crashed map[int]bool)) {
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	crashed := make(map[int]bool, k)
	for {
		clear(crashed)
		for _, p := range idx {
			crashed[p] = true
		}
		visit(crashed)
		// Advance the combination.
		i := k - 1
		for i >= 0 && idx[i] == m-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

func TestForEachSubsetCounts(t *testing.T) {
	for _, c := range []struct{ m, k, want int }{
		{6, 1, 6}, {6, 2, 15}, {5, 2, 10}, {4, 4, 1},
	} {
		n := 0
		seen := map[string]bool{}
		forEachSubset(c.m, c.k, func(crashed map[int]bool) {
			if len(crashed) != c.k {
				t.Fatalf("subset of size %d, want %d", len(crashed), c.k)
			}
			key := fmt.Sprint(crashed)
			if seen[key] {
				t.Fatalf("subset %v enumerated twice", crashed)
			}
			seen[key] = true
			n++
		})
		if n != c.want {
			t.Fatalf("C(%d,%d) enumerated %d subsets, want %d", c.m, c.k, n, c.want)
		}
	}
}

type verifierInstance struct {
	family string
	g      *dag.DAG
}

// verifierInstances builds the covered instance families, in a fixed
// order so the shared rng stream (and hence every verified platform
// and schedule) is identical run to run. Random instances are kept
// deep (several layers) because shallow graphs cannot exhibit the
// chain-sharing failure mode.
func verifierInstances(rng *rand.Rand) []verifierInstance {
	return []verifierInstance{
		{"fork", gen.Fork(8, 100)},
		{"chain", gen.Chain(9, 100)},
		{"diamond", gen.Diamond(3, 3, 100)},
		{"random", gen.RandomLayered(rng, gen.RandomParams{
			MinTasks: 14, MaxTasks: 20, MinDegree: 1, MaxDegree: 3, MinVolume: 50, MaxVolume: 150,
		})},
	}
}

func verifierProblem(rng *rand.Rand, g *dag.DAG, m int) *sched.Problem {
	plat := platform.NewRandom(rng, m, 0.5, 1.0)
	exec := platform.GenExecForGranularity(rng, g, plat, 1.0, platform.DefaultHeterogeneity)
	return &sched.Problem{G: g, Plat: plat, Exec: exec, Model: sched.OnePort, Policy: timeline.Append}
}

// exhaustLosses replays every C(m, eps) crash subset against the
// schedule and returns how many subsets lost a task, failing the test
// on any engine error.
func exhaustLosses(t *testing.T, s *sched.Schedule, m, eps int) int {
	t.Helper()
	rep, err := sim.NewReplayer(s)
	if err != nil {
		t.Fatal(err)
	}
	losses := 0
	forEachSubset(m, eps, func(crashed map[int]bool) {
		lat, err := rep.CrashLatency(crashed)
		switch {
		case errors.Is(err, sim.ErrTaskLost) || math.IsInf(lat, 1):
			losses++
		case err != nil:
			t.Fatalf("crash subset %v: engine error: %v", crashed, err)
		}
	})
	return losses
}

// TestExhaustiveResilience is the headline verifier: for every covered
// family, m ≤ 6 and ε ∈ {1, 2}, no schedule from CAFT (support
// locking, both the portfolio and the literal greedy mode), FTSA or
// FTBAR may lose a task under ANY of the C(m, ε) crash subsets.
func TestExhaustiveResilience(t *testing.T) {
	type schedFn struct {
		name string
		run  func(p *sched.Problem, eps int, rng *rand.Rand) (*sched.Schedule, error)
	}
	algs := []schedFn{
		{"caft-portfolio", func(p *sched.Problem, eps int, rng *rand.Rand) (*sched.Schedule, error) {
			return core.Schedule(p, eps, rng)
		}},
		{"caft-greedy", func(p *sched.Problem, eps int, rng *rand.Rand) (*sched.Schedule, error) {
			s, _, err := core.ScheduleOpts(p, eps, rng, core.Options{Greedy: true})
			return s, err
		}},
		{"ftsa", ftsa.Schedule},
		{"ftbar", ftbar.Schedule},
	}
	for _, m := range []int{4, 6} {
		for _, eps := range []int{1, 2} {
			for _, seed := range []int64{1, 2, 3} {
				rng := rand.New(rand.NewSource(seed))
				for _, inst := range verifierInstances(rng) {
					p := verifierProblem(rng, inst.g, m)
					for _, alg := range algs {
						t.Run(fmt.Sprintf("%s/m%d/eps%d/seed%d/%s", inst.family, m, eps, seed, alg.name), func(t *testing.T) {
							s, err := alg.run(p, eps, rng)
							if err != nil {
								t.Fatal(err)
							}
							if losses := exhaustLosses(t, s, m, eps); losses > 0 {
								t.Fatalf("%d of C(%d,%d) crash subsets lost a task", losses, m, eps)
							}
						})
					}
				}
			}
		}
	}
}

// TestExhaustivePaperLockingGap documents the known resilience gap of
// the literal eq. (7) locking rule as an expected failure: on deep
// graphs two predecessors' one-to-one chains may share an upstream
// processor, so the SAME exhaustive enumeration that passes for
// support locking must find losing subsets for PaperLocking. If this
// test ever fails, the literal rule has become safe and the ablation
// (and the DESIGN.md A4 discussion) should be retired.
func TestExhaustivePaperLockingGap(t *testing.T) {
	totalLost, instances := 0, 0
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomLayered(rng, gen.RandomParams{
			MinTasks: 14, MaxTasks: 20, MinDegree: 1, MaxDegree: 3, MinVolume: 50, MaxVolume: 150,
		})
		for _, eps := range []int{1, 2} {
			p := verifierProblem(rng, g, 6)
			s, _, err := core.ScheduleOpts(p, eps, rng, core.Options{Greedy: true, Locking: core.PaperLocking})
			if err != nil {
				t.Fatal(err)
			}
			instances++
			totalLost += exhaustLosses(t, s, 6, eps)
		}
	}
	if totalLost == 0 {
		t.Fatalf("PaperLocking lost no task over %d exhaustively verified instances; the documented eq. (7) gap has disappeared", instances)
	}
	t.Logf("PaperLocking lost a task in %d subset replays over %d instances (expected: > 0)", totalLost, instances)
}
