// Command caftd is the CAFT scheduling daemon: a long-running HTTP/JSON
// service that schedules task graphs on demand — any scheduler in the
// registry (heft, caft, caft-greedy, ftsa, ftbar, hoft; the accepted
// values are exactly sched.Names()), either reservation policy, clique
// or sparse interconnects — and optionally returns Monte-Carlo
// reliability estimates with each schedule.
//
// Responses are cached content-addressed and duplicate in-flight
// requests are collapsed, so serving the same problem twice does no
// scheduling work; see internal/service and DESIGN.md S6.
//
// Usage:
//
//	caftd [-addr :8080] [-workers 0] [-mc-workers 0] [-cache-max 65536]
//
// Endpoints:
//
//	POST /schedule   schedule a problem (JSON in/out)
//	GET  /healthz    liveness
//	GET  /statsz     cache hit rate, latency quantiles, in-flight count
//
// A quickstart request lives in testdata/quickstart.json:
//
//	curl -s -X POST --data-binary @cmd/caftd/testdata/quickstart.json \
//	     http://localhost:8080/schedule
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"caft/internal/service"
)

// timeouts bundles the connection-lifecycle deadlines of the HTTP
// server. A long-running daemon must bound how long a connection may sit
// in each phase, or a single slow-header client pins a connection (and
// its goroutine) forever — the classic slowloris attack.
type timeouts struct {
	// readHeader bounds the wait for a complete request header.
	readHeader time.Duration
	// read bounds reading one full request (headers + body). Generous:
	// request bodies are capped at 8 MiB by the handler, not streamed.
	read time.Duration
	// idle bounds how long a keep-alive connection may sit between
	// requests.
	idle time.Duration
}

// defaultTimeouts are the production defaults. There is deliberately no
// WriteTimeout: response deadlines would have to cover the slowest
// legitimate compute (large Monte-Carlo requests), and the compute pool
// already bounds concurrent work.
var defaultTimeouts = timeouts{readHeader: 5 * time.Second, read: 60 * time.Second, idle: 120 * time.Second}

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 0, "scheduling worker pool size (0 = all cores); never affects response bytes")
		mcWorkers = flag.Int("mc-workers", 0, "reliability Monte-Carlo batch workers (0 = all cores); never affects response bytes")
		cacheMax  = flag.Int("cache-max", 65536, "max cached responses (0 = unbounded)")
		to        = defaultTimeouts
	)
	flag.DurationVar(&to.readHeader, "read-header-timeout", to.readHeader, "max wait for a complete request header (slowloris guard)")
	flag.DurationVar(&to.read, "read-timeout", to.read, "max wait for a complete request")
	flag.DurationVar(&to.idle, "idle-timeout", to.idle, "max keep-alive idle time between requests")
	flag.Parse()
	if err := run(*addr, *workers, *mcWorkers, *cacheMax, to); err != nil {
		fmt.Fprintln(os.Stderr, "caftd:", err)
		os.Exit(1)
	}
}

// newServer builds the daemon's http.Server with its connection
// deadlines applied; split from run so the slow-header e2e test drives
// the same construction with tight timeouts.
func newServer(addr string, svc *service.Service, to timeouts) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           service.NewHandler(svc),
		ReadHeaderTimeout: to.readHeader,
		ReadTimeout:       to.read,
		IdleTimeout:       to.idle,
	}
}

// run serves until SIGINT/SIGTERM, then drains in-flight requests.
func run(addr string, workers, mcWorkers, cacheMax int, to timeouts) error {
	if workers < 0 || mcWorkers < 0 {
		return fmt.Errorf("worker counts must be non-negative")
	}
	if cacheMax < 0 {
		return fmt.Errorf("-cache-max must be non-negative, got %d", cacheMax)
	}
	if to.readHeader <= 0 || to.read <= 0 || to.idle <= 0 {
		return fmt.Errorf("server timeouts must be positive, got %+v", to)
	}
	svc := service.New(service.Config{Workers: workers, MCWorkers: mcWorkers, CacheMax: cacheMax})
	defer svc.Close()
	srv := newServer(addr, svc, to)

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "caftd: listening on %s\n", addr)
		errc <- srv.ListenAndServe()
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		fmt.Fprintf(os.Stderr, "caftd: %s, shutting down\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
