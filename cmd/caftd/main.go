// Command caftd is the CAFT scheduling daemon: a long-running HTTP/JSON
// service that schedules task graphs on demand — any of the five
// schedulers (heft, caft, caft-greedy, ftsa, ftbar), either reservation
// policy, clique or sparse interconnects — and optionally returns
// Monte-Carlo reliability estimates with each schedule.
//
// Responses are cached content-addressed and duplicate in-flight
// requests are collapsed, so serving the same problem twice does no
// scheduling work; see internal/service and DESIGN.md S6.
//
// Usage:
//
//	caftd [-addr :8080] [-workers 0] [-mc-workers 0] [-cache-max 65536]
//
// Endpoints:
//
//	POST /schedule   schedule a problem (JSON in/out)
//	GET  /healthz    liveness
//	GET  /statsz     cache hit rate, latency quantiles, in-flight count
//
// A quickstart request lives in testdata/quickstart.json:
//
//	curl -s -X POST --data-binary @cmd/caftd/testdata/quickstart.json \
//	     http://localhost:8080/schedule
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"caft/internal/service"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 0, "scheduling worker pool size (0 = all cores); never affects response bytes")
		mcWorkers = flag.Int("mc-workers", 0, "reliability Monte-Carlo batch workers (0 = all cores); never affects response bytes")
		cacheMax  = flag.Int("cache-max", 65536, "max cached responses (0 = unbounded)")
	)
	flag.Parse()
	if err := run(*addr, *workers, *mcWorkers, *cacheMax); err != nil {
		fmt.Fprintln(os.Stderr, "caftd:", err)
		os.Exit(1)
	}
}

// run serves until SIGINT/SIGTERM, then drains in-flight requests.
func run(addr string, workers, mcWorkers, cacheMax int) error {
	if workers < 0 || mcWorkers < 0 {
		return fmt.Errorf("worker counts must be non-negative")
	}
	if cacheMax < 0 {
		return fmt.Errorf("-cache-max must be non-negative, got %d", cacheMax)
	}
	svc := service.New(service.Config{Workers: workers, MCWorkers: mcWorkers, CacheMax: cacheMax})
	defer svc.Close()
	srv := &http.Server{Addr: addr, Handler: service.NewHandler(svc)}

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "caftd: listening on %s\n", addr)
		errc <- srv.ListenAndServe()
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		fmt.Fprintf(os.Stderr, "caftd: %s, shutting down\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
