// Command caftd is the CAFT scheduling daemon: a long-running HTTP/JSON
// service that schedules task graphs on demand — any scheduler in the
// registry (heft, caft, caft-greedy, ftsa, ftbar, hoft; the accepted
// values are exactly sched.Names()), either reservation policy, clique
// or sparse interconnects — and optionally returns Monte-Carlo
// reliability estimates with each schedule.
//
// Responses are cached content-addressed and duplicate in-flight
// requests are collapsed, so serving the same problem twice does no
// scheduling work; see internal/service and DESIGN.md S6.
//
// With -disk the cache gains a persistent tier: successful responses
// are appended to segment files and reloaded on start, so a restarted
// daemon answers its old keyspace byte-identically without
// recomputing. With -self/-peers N daemons form a cluster: each node
// owns a consistent-hash range of the keyspace and forwards non-owned
// /schedule requests to their owner (one internal hop), so the cluster
// shares one effective cache. -admit-max bounds the computes a node
// accepts at once; past it, requests are shed with 429 + Retry-After.
// See DESIGN.md S12.
//
// Usage:
//
//	caftd [-addr :8080] [-workers 0] [-mc-workers 0] [-cache-max 65536]
//	      [-disk DIR] [-self host:port -peers host1:p1,host2:p2,...]
//	      [-admit-max 0] [-peer-timeout 60s]
//
// Endpoints:
//
//	POST /schedule   schedule a problem (JSON in/out)
//	GET  /healthz    liveness
//	GET  /statsz     cache hit rate, latency quantiles, in-flight count
//
// A quickstart request lives in testdata/quickstart.json:
//
//	curl -s -X POST --data-binary @cmd/caftd/testdata/quickstart.json \
//	     http://localhost:8080/schedule
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"caft/internal/service"
)

// timeouts bundles the connection-lifecycle deadlines of the HTTP
// server. A long-running daemon must bound how long a connection may sit
// in each phase, or a single slow-header client pins a connection (and
// its goroutine) forever — the classic slowloris attack.
type timeouts struct {
	// readHeader bounds the wait for a complete request header.
	readHeader time.Duration
	// read bounds reading one full request (headers + body). Generous:
	// request bodies are capped at 8 MiB by the handler, not streamed.
	read time.Duration
	// idle bounds how long a keep-alive connection may sit between
	// requests.
	idle time.Duration
}

// defaultTimeouts are the production defaults. There is deliberately no
// WriteTimeout: response deadlines would have to cover the slowest
// legitimate compute (large Monte-Carlo requests), and the compute pool
// already bounds concurrent work.
var defaultTimeouts = timeouts{readHeader: 5 * time.Second, read: 60 * time.Second, idle: 120 * time.Second}

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 0, "scheduling worker pool size (0 = all cores); never affects response bytes")
		mcWorkers   = flag.Int("mc-workers", 0, "reliability Monte-Carlo batch workers (0 = all cores); never affects response bytes")
		cacheMax    = flag.Int("cache-max", 65536, "max in-memory cached responses (0 = unbounded)")
		admitMax    = flag.Int("admit-max", 0, "max computes admitted at once, queued included (0 = unbounded); past it requests are shed with 429")
		diskDir     = flag.String("disk", "", "persistent cache directory (empty = memory only); a restarted daemon re-serves persisted responses byte-identically")
		self        = flag.String("self", "", "this node's advertised host:port in the cluster (required with -peers)")
		peerList    = flag.String("peers", "", "comma-separated host:port list of every cluster member, -self included (empty = single node)")
		peerTimeout = flag.Duration("peer-timeout", 60*time.Second, "end-to-end deadline for one forwarded request")
		to          = defaultTimeouts
	)
	flag.DurationVar(&to.readHeader, "read-header-timeout", to.readHeader, "max wait for a complete request header (slowloris guard)")
	flag.DurationVar(&to.read, "read-timeout", to.read, "max wait for a complete request")
	flag.DurationVar(&to.idle, "idle-timeout", to.idle, "max keep-alive idle time between requests")
	flag.Parse()
	cfg := service.Config{
		Workers:     *workers,
		MCWorkers:   *mcWorkers,
		CacheMax:    *cacheMax,
		AdmitMax:    *admitMax,
		DiskDir:     *diskDir,
		Self:        *self,
		Peers:       splitPeers(*peerList),
		PeerTimeout: *peerTimeout,
	}
	if err := run(*addr, cfg, to); err != nil {
		fmt.Fprintln(os.Stderr, "caftd:", err)
		os.Exit(1)
	}
}

// splitPeers parses the -peers list; empty means single-node.
func splitPeers(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	peers := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}
	return peers
}

// newServer builds the daemon's http.Server with its connection
// deadlines applied; split from run so the slow-header e2e test drives
// the same construction with tight timeouts.
func newServer(addr string, svc *service.Service, to timeouts) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           service.NewHandler(svc),
		ReadHeaderTimeout: to.readHeader,
		ReadTimeout:       to.read,
		IdleTimeout:       to.idle,
	}
}

// run serves until SIGINT/SIGTERM, then drains in-flight requests.
func run(addr string, cfg service.Config, to timeouts) error {
	if cfg.Workers < 0 || cfg.MCWorkers < 0 {
		return fmt.Errorf("worker counts must be non-negative")
	}
	if cfg.CacheMax < 0 {
		return fmt.Errorf("-cache-max must be non-negative, got %d", cfg.CacheMax)
	}
	if cfg.AdmitMax < 0 {
		return fmt.Errorf("-admit-max must be non-negative, got %d", cfg.AdmitMax)
	}
	if len(cfg.Peers) > 0 && cfg.Self == "" {
		return fmt.Errorf("-peers requires -self")
	}
	if cfg.Self != "" && len(cfg.Peers) == 0 {
		return fmt.Errorf("-self requires -peers")
	}
	if to.readHeader <= 0 || to.read <= 0 || to.idle <= 0 {
		return fmt.Errorf("server timeouts must be positive, got %+v", to)
	}
	svc, err := service.New(cfg)
	if err != nil {
		return err
	}
	defer svc.Close()
	srv := newServer(addr, svc, to)

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "caftd: listening on %s\n", addr)
		errc <- srv.ListenAndServe()
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		fmt.Fprintf(os.Stderr, "caftd: %s, shutting down\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
