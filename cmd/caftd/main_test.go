package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"caft/internal/service"
)

// -update regenerates the golden files from the current engine (the
// one shared golden-file convention; see EXPERIMENTS.md):
//
//	go test ./cmd/caftd -run Golden -update
var update = flag.Bool("update", false, "rewrite the golden files from current output")

func startServer(t *testing.T, cfg service.Config) *httptest.Server {
	t.Helper()
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(service.NewHandler(svc))
	t.Cleanup(func() { srv.Close(); svc.Close() })
	return srv
}

func quickstartSpec(t *testing.T) []byte {
	t.Helper()
	spec, err := os.ReadFile(filepath.Join("testdata", "quickstart.json"))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func post(t *testing.T, url string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/schedule", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

// TestGoldenQuickstartResponse pins the exact bytes served for the
// quickstart spec — the same end-to-end determinism guarantee the
// caftsim goldens pin for the figures. Responses for a fixed seed must
// be byte-identical across runs and across -workers values, so the run
// is repeated at two pool configurations and diffed before comparing
// against the golden file.
func TestGoldenQuickstartResponse(t *testing.T) {
	spec := quickstartSpec(t)
	var first []byte
	for _, cfg := range []service.Config{
		{Workers: 1, MCWorkers: 1},
		{Workers: 8, MCWorkers: 4},
	} {
		srv := startServer(t, cfg)
		status, body := post(t, srv.URL, spec)
		if status != http.StatusOK {
			t.Fatalf("status %d: %s", status, body)
		}
		// The cached second serve must also be byte-identical.
		if _, again := post(t, srv.URL, spec); !bytes.Equal(body, again) {
			t.Fatal("cache hit served different bytes than the compute")
		}
		if first == nil {
			first = body
		} else if !bytes.Equal(first, body) {
			t.Fatalf("response differs between worker configs")
		}
	}
	path := filepath.Join("testdata", "quickstart_response.json")
	if *update {
		if err := os.WriteFile(path, first, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(first, want) {
		t.Fatalf("response drifted from %s;\nif intentional, regenerate with: go test ./cmd/caftd -run Golden -update\ngot:\n%s\nwant:\n%s",
			path, first, want)
	}
}

// TestConcurrentIdenticalRequestsCollapse is the end-to-end acceptance
// test of the serving layer: N identical concurrent HTTP requests are
// answered by exactly one scheduling run — observable via /statsz — and
// all N responses are byte-identical.
func TestConcurrentIdenticalRequestsCollapse(t *testing.T) {
	srv := startServer(t, service.Config{Workers: 4})
	spec := quickstartSpec(t)
	const n = 24
	responses := make([][]byte, n)
	statuses := make([]int, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(srv.URL+"/schedule", "application/json", bytes.NewReader(spec))
			if err != nil {
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			statuses[i], responses[i] = resp.StatusCode, buf.Bytes()
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("request %d: status %d", i, statuses[i])
		}
		if !bytes.Equal(responses[0], responses[i]) {
			t.Fatal("responses differ across concurrent identical requests")
		}
	}
	resp, err := http.Get(srv.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st service.StatsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Misses != 1 {
		t.Errorf("%d scheduling runs for %d identical requests, want 1", st.Misses, n)
	}
	if st.Hits != n-1 {
		t.Errorf("%d cache hits, want %d", st.Hits, n-1)
	}
}

// The quickstart response must carry the documented schema fields (the
// CI smoke job greps for a subset of these).
func TestQuickstartResponseSchema(t *testing.T) {
	srv := startServer(t, service.Config{Workers: 2})
	status, body := post(t, srv.URL, quickstartSpec(t))
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var resp service.Response
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Key == "" || resp.Alg != "caft" || resp.Latency <= 0 {
		t.Errorf("schema fields wrong: key=%q alg=%q latency=%v", resp.Key, resp.Alg, resp.Latency)
	}
	if len(resp.Schedule.Replicas) == 0 || resp.Reliability == nil {
		t.Error("schedule or reliability section missing")
	}
}

// TestOnlineModeEndToEnd covers the "mode":"online" request through
// the HTTP surface: a deterministic response served identically from
// compute and cache across worker configurations, with the singleflight
// accounting observable via /statsz, and the documented distribution
// schema present.
func TestOnlineModeEndToEnd(t *testing.T) {
	spec, err := os.ReadFile(filepath.Join("testdata", "online.json"))
	if err != nil {
		t.Fatal(err)
	}
	var first []byte
	for _, cfg := range []service.Config{
		{Workers: 1, MCWorkers: 1},
		{Workers: 8, MCWorkers: 4},
	} {
		srv := startServer(t, cfg)
		status, body := post(t, srv.URL, spec)
		if status != http.StatusOK {
			t.Fatalf("status %d: %s", status, body)
		}
		if _, again := post(t, srv.URL, spec); !bytes.Equal(body, again) {
			t.Fatal("cached online response differs from the computed one")
		}
		if first == nil {
			first = body
		} else if !bytes.Equal(first, body) {
			t.Fatal("online response differs between worker configs")
		}
		// One compute, one hit — the online mode rides the same
		// content-addressed singleflight cache.
		resp, err := http.Get(srv.URL + "/statsz")
		if err != nil {
			t.Fatal(err)
		}
		var st service.StatsSnapshot
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.Misses != 1 || st.Hits != 1 {
			t.Fatalf("statsz misses=%d hits=%d, want 1/1", st.Misses, st.Hits)
		}
	}
	var resp service.Response
	if err := json.Unmarshal(first, &resp); err != nil {
		t.Fatal(err)
	}
	o := resp.Online
	if o == nil {
		t.Fatal("online section missing")
	}
	if o.Samples+o.ReplayErrors != 96 || o.MeanMakespan == nil || o.P90Makespan == nil {
		t.Fatalf("online distribution incomplete: %+v", o)
	}
	if o.MeanRescheduled <= 0 {
		t.Fatalf("reactive re-mapper never fired: %+v", o)
	}
}

// TestHOFTServable drives the registry's newest scheduler through the
// HTTP surface: the quickstart spec re-pointed at hoft (a fault-free
// reference, so eps drops to 0) must serve a valid schedule, and a
// non-zero eps must be a 400, not a schedule.
func TestHOFTServable(t *testing.T) {
	srv := startServer(t, service.Config{Workers: 2})
	var req map[string]any
	if err := json.Unmarshal(quickstartSpec(t), &req); err != nil {
		t.Fatal(err)
	}
	req["alg"], req["eps"] = "hoft", 0
	spec, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	status, body := post(t, srv.URL, spec)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var resp service.Response
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Alg != "hoft" || len(resp.Schedule.Replicas) == 0 {
		t.Fatalf("hoft response malformed: alg=%q replicas=%d", resp.Alg, len(resp.Schedule.Replicas))
	}

	req["eps"] = 1
	spec, err = json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	if status, body := post(t, srv.URL, spec); status != http.StatusBadRequest {
		t.Fatalf("hoft with eps=1 got status %d: %s", status, body)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run(":0", service.Config{Workers: -1}, defaultTimeouts); err == nil {
		t.Error("negative -workers accepted")
	}
	if err := run(":0", service.Config{MCWorkers: -2}, defaultTimeouts); err == nil {
		t.Error("negative -mc-workers accepted")
	}
	if err := run(":0", service.Config{CacheMax: -1}, defaultTimeouts); err == nil {
		t.Error("negative -cache-max accepted")
	}
	if err := run(":0", service.Config{AdmitMax: -1}, defaultTimeouts); err == nil {
		t.Error("negative -admit-max accepted")
	}
	if err := run(":0", service.Config{Peers: []string{"a:1"}}, defaultTimeouts); err == nil {
		t.Error("-peers without -self accepted")
	}
	if err := run(":0", service.Config{Self: "a:1"}, defaultTimeouts); err == nil {
		t.Error("-self without -peers accepted")
	}
	if err := run(":0", service.Config{Self: "c:3", Peers: []string{"a:1", "b:2"}}, defaultTimeouts); err == nil {
		t.Error("-self outside -peers accepted")
	}
	if err := run(":0", service.Config{}, timeouts{}); err == nil {
		t.Error("zero server timeouts accepted")
	}
}

func TestSplitPeers(t *testing.T) {
	if got := splitPeers(""); got != nil {
		t.Errorf("splitPeers(\"\") = %v, want nil", got)
	}
	got := splitPeers(" a:1, b:2 ,,c:3 ")
	want := []string{"a:1", "b:2", "c:3"}
	if len(got) != len(want) {
		t.Fatalf("splitPeers = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("splitPeers = %v, want %v", got, want)
		}
	}
}

// TestSlowHeaderClientDisconnected is the slowloris e2e test: a client
// that dials, sends a partial request header and then stalls must be
// disconnected once ReadHeaderTimeout elapses, instead of pinning the
// connection forever. It drives the daemon's own server construction
// (newServer), not a bare httptest handler, so the configured deadlines
// are what is under test.
func TestSlowHeaderClientDisconnected(t *testing.T) {
	svc, err := service.New(service.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	srv := newServer("127.0.0.1:0", svc, timeouts{
		readHeader: 150 * time.Millisecond,
		read:       time.Second,
		idle:       time.Second,
	})
	ln, err := net.Listen("tcp", srv.Addr)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A syntactically valid request line, then silence: the header is
	// never completed.
	if _, err := conn.Write([]byte("POST /schedule HTTP/1.1\r\nHost: caftd\r\n")); err != nil {
		t.Fatal(err)
	}
	// Well past readHeader but far below the test deadline: the read
	// must return EOF/reset because the server dropped us, not block.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	n, err := conn.Read(make([]byte, 1))
	if err == nil || n > 0 {
		t.Fatalf("slow-header connection still alive after ReadHeaderTimeout (read %d bytes, err %v)", n, err)
	}
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("server kept the slow-header connection open past ReadHeaderTimeout")
	}

	// The server must still answer well-formed requests afterwards.
	status, _ := post(t, "http://"+ln.Addr().String(), quickstartSpec(t))
	if status != http.StatusOK {
		t.Fatalf("healthy request after slowloris got status %d", status)
	}
}
