package main

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"caft/internal/gen"
)

// -update regenerates the golden files from the current engine (the
// one shared golden-file convention; see EXPERIMENTS.md):
//
//	go test ./cmd/schedviz -run Golden -update
var update = flag.Bool("update", false, "rewrite the golden files from current output")

// TestGoldenGantt pins the exact ASCII Gantt chart, port lanes and
// crash-replay summary schedviz renders for a seeded deterministic run.
// Chart-format drift — lane layout, glyphs, the replay line — fails
// here instead of silently changing every demo in the docs.
func TestGoldenGantt(t *testing.T) {
	var out bytes.Buffer
	err := run(&out, strings.NewReader(""), "caft", 1, 4, "montage", 1.0, 1, 72, true, "1", "", "")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "gantt_montage_caft.txt")
	if *update {
		if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Fatalf("Gantt output drifted from %s;\nif intentional, regenerate with: go test ./cmd/schedviz -run Golden -update\ngot:\n%s\nwant:\n%s",
			path, out.Bytes(), want)
	}
	if !strings.Contains(out.String(), "replay: latency") {
		t.Error("crash replay summary missing from output")
	}
}

func TestRunEveryAlgoAndStdin(t *testing.T) {
	for _, algo := range []string{"caft", "ftsa", "ftbar", "heft"} {
		var out bytes.Buffer
		if err := run(&out, strings.NewReader(""), algo, 1, 4, "fork", 1.0, 1, 60, false, "", "", ""); err != nil {
			t.Fatalf("algo %s: %v", algo, err)
		}
		if out.Len() == 0 {
			t.Fatalf("algo %s produced no chart", algo)
		}
	}
	// A DAG arriving on stdin (the dagen | schedviz pipeline).
	var dagJSON bytes.Buffer
	if err := gen.Diamond(3, 2, 100).Write(&dagJSON); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(&out, &dagJSON, "heft", 0, 3, "", 1.0, 1, 60, false, "", "", ""); err != nil {
		t.Fatalf("stdin DAG: %v", err)
	}
}

func TestRunValidation(t *testing.T) {
	cases := []struct {
		algo, kind, crash string
	}{
		{"nosuch", "fork", ""},
		{"caft", "nosuch", ""},
		{"caft", "fork", "9"},  // crash processor out of range
		{"caft", "fork", "xy"}, // unparsable crash list
	}
	for _, c := range cases {
		if err := run(io.Discard, strings.NewReader(""), c.algo, 1, 4, c.kind, 1.0, 1, 60, false, c.crash, "", ""); err == nil {
			t.Errorf("algo=%q kind=%q crash=%q accepted", c.algo, c.kind, c.crash)
		}
	}
	// Garbage on stdin with no -kind must fail cleanly.
	if err := run(io.Discard, strings.NewReader("not json"), "caft", 1, 4, "", 1.0, 1, 60, false, "", "", ""); err == nil {
		t.Error("garbage stdin accepted")
	}
}

func TestTraceAndSVGOutputs(t *testing.T) {
	dir := t.TempDir()
	svg := filepath.Join(dir, "chart.svg")
	trace := filepath.Join(dir, "trace.csv")
	var out bytes.Buffer
	if err := run(&out, strings.NewReader(""), "ftsa", 1, 4, "fork", 1.0, 1, 60, false, "0", svg, trace); err != nil {
		t.Fatal(err)
	}
	svgData, err := os.ReadFile(svg)
	if err != nil || !bytes.Contains(svgData, []byte("<svg")) {
		t.Errorf("SVG output missing or malformed: %v", err)
	}
	traceData, err := os.ReadFile(trace)
	if err != nil || len(traceData) == 0 {
		t.Errorf("trace CSV missing or empty: %v", err)
	}
}
