// Command schedviz schedules a DAG (from a dagen JSON file or a built-in
// family) with a chosen algorithm and renders the resulting schedule as
// an ASCII Gantt chart, optionally replaying processor crashes.
//
// Usage:
//
//	dagen -kind montage -n 4 | schedviz -algo caft -eps 1 -m 6 -ports
//	schedviz -algo ftsa -eps 2 -m 8 -kind random -crash 0,3
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"caft/internal/core"
	"caft/internal/dag"
	"caft/internal/gen"
	"caft/internal/platform"
	"caft/internal/sched"
	"caft/internal/sched/ftbar"
	"caft/internal/sched/ftsa"
	"caft/internal/sched/heft"
	"caft/internal/sim"
	"caft/internal/timeline"
	"caft/internal/viz"
)

func main() {
	var (
		algo  = flag.String("algo", "caft", "scheduler: caft, ftsa, ftbar, heft")
		eps   = flag.Int("eps", 1, "number of tolerated failures")
		m     = flag.Int("m", 6, "number of processors")
		kind  = flag.String("kind", "", "generate a graph instead of reading JSON from stdin: random, montage, fork, diamond")
		gran  = flag.Float64("granularity", 1.0, "target granularity of the generated execution times")
		seed  = flag.Int64("seed", 1, "PRNG seed")
		width = flag.Int("width", 100, "chart width in cells")
		ports = flag.Bool("ports", false, "draw send/recv port lanes")
		crash = flag.String("crash", "", "comma-separated processors to crash in a replay")
		svg   = flag.String("svg", "", "also write an SVG Gantt chart to this file")
		trace = flag.String("trace", "", "write the replay event trace as CSV to this file")
	)
	flag.Parse()
	if err := run(os.Stdout, os.Stdin, *algo, *eps, *m, *kind, *gran, *seed, *width, *ports, *crash, *svg, *trace); err != nil {
		fmt.Fprintln(os.Stderr, "schedviz:", err)
		os.Exit(1)
	}
}

// run builds and renders one schedule, writing the chart and replay
// summary to out; in is only consulted when no -kind is given.
func run(out io.Writer, in io.Reader, algo string, eps, m int, kind string, gran float64, seed int64, width int, ports bool, crash, svgPath, tracePath string) error {
	rng := rand.New(rand.NewSource(seed))
	var g *dag.DAG
	var err error
	switch kind {
	case "":
		if g, err = dag.Read(in); err != nil {
			return fmt.Errorf("reading DAG from stdin: %w", err)
		}
	case "random":
		params := gen.DefaultParams
		params.MinTasks, params.MaxTasks = 20, 30
		g = gen.RandomLayered(rng, params)
	case "montage":
		g = gen.Montage(4, 100)
	case "fork":
		g = gen.Fork(8, 100)
	case "diamond":
		g = gen.Diamond(3, 3, 100)
	default:
		return fmt.Errorf("unknown kind %q", kind)
	}
	plat := platform.NewRandom(rng, m, 0.5, 1.0)
	exec := platform.GenExecForGranularity(rng, g, plat, gran, platform.DefaultHeterogeneity)
	p := &sched.Problem{G: g, Plat: plat, Exec: exec, Model: sched.OnePort, Policy: timeline.Append}

	var s *sched.Schedule
	switch algo {
	case "caft":
		s, err = core.Schedule(p, eps, rng)
	case "ftsa":
		s, err = ftsa.Schedule(p, eps, rng)
	case "ftbar":
		s, err = ftbar.Schedule(p, eps, rng)
	case "heft":
		s, err = heft.Schedule(p, rng)
	default:
		return fmt.Errorf("unknown algorithm %q", algo)
	}
	if err != nil {
		return err
	}
	viz.Summary(out, s)
	fmt.Fprintln(out)
	if err := viz.Render(out, s, viz.Options{Width: width, Ports: ports}); err != nil {
		return err
	}
	if svgPath != "" {
		f, err := os.Create(svgPath)
		if err != nil {
			return err
		}
		title := fmt.Sprintf("%s eps=%d on %d processors", algo, eps, m)
		if err := viz.RenderSVG(f, s, viz.SVGOptions{Ports: ports, Title: title}); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if crash == "" && tracePath == "" {
		return nil
	}
	if crash == "" {
		r, err := sim.Replay(s, sim.Options{})
		if err != nil {
			return err
		}
		return writeTrace(tracePath, r)
	}
	crashed := map[int]bool{}
	for _, part := range strings.Split(crash, ",") {
		proc, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || proc < 0 || proc >= m {
			return fmt.Errorf("bad crash processor %q", part)
		}
		crashed[proc] = true
	}
	lat0, err := sim.LowerBound(s)
	if err != nil {
		return err
	}
	latC, err := sim.CrashLatency(s, crashed)
	if err != nil {
		return fmt.Errorf("crash replay: %w", err)
	}
	ub, err := sim.UpperBound(s)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\nreplay: latency %.2f with 0 crashes, %.2f with crashes %v (upper bound %.2f)\n", lat0, latC, keys(crashed), ub)
	if tracePath != "" {
		r, err := sim.Replay(s, sim.Options{Crashed: crashed})
		if err != nil {
			return err
		}
		return writeTrace(tracePath, r)
	}
	return nil
}

func writeTrace(path string, r *sim.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteTraceCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func keys(set map[int]bool) []int {
	var out []int
	for k := range set {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
