package main

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"caft/internal/dag"
)

// Every -kind must emit JSON that round-trips through dag.Read into an
// identical graph.
func TestJSONRoundTripEveryKind(t *testing.T) {
	kinds := []string{"random", "fork", "join", "chain", "outforest", "diamond", "stencil", "montage", "fft"}
	for _, kind := range kinds {
		t.Run(kind, func(t *testing.T) {
			args := []string{"-kind", kind, "-n", "6", "-depth", "3", "-seed", "5"}
			var out, errOut bytes.Buffer
			if err := run(args, &out, &errOut); err != nil {
				t.Fatalf("run: %v", err)
			}
			g, err := dag.Read(bytes.NewReader(out.Bytes()))
			if err != nil {
				t.Fatalf("decoding emitted JSON: %v", err)
			}
			if g.NumTasks() == 0 {
				t.Fatal("empty graph emitted")
			}
			var again bytes.Buffer
			if err := g.Write(&again); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out.Bytes(), again.Bytes()) {
				t.Errorf("JSON round trip not stable for kind %s", kind)
			}
			if !strings.Contains(errOut.String(), "tasks") {
				t.Errorf("summary line missing: %q", errOut.String())
			}
		})
	}
}

func TestFlagValidation(t *testing.T) {
	bad := [][]string{
		{"-kind", "nosuch"},
		{"-n", "0"},
		{"-n", "-3"},
		{"-depth", "0"},
		{"-volume", "-1"},
		{"-kind", "random", "-min-tasks", "0"},
		{"-kind", "random", "-min-tasks", "9", "-max-tasks", "3"},
		{"-kind", "outforest", "-roots", "0"},
		{"-kind", "outforest", "-degree", "-1"},
		{"-not-a-flag"},
	}
	for _, args := range bad {
		if err := run(args, io.Discard, io.Discard); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// The outforest family must honor -volume and -degree: every edge
// carries exactly the requested volume and no task exceeds the
// out-degree cap (the pre-fix behavior hardcoded volumes to [50,150]
// and ignored both flags).
func TestOutforestHonorsVolumeAndDegree(t *testing.T) {
	g, err := generate("outforest", 40, 4, 7.5, 3, 80, 120, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 40 || g.NumEdges() != 38 {
		t.Fatalf("forest has %d tasks, %d edges; want 40, 38", g.NumTasks(), g.NumEdges())
	}
	outdeg := make([]int, g.NumTasks())
	for _, e := range g.Edges() {
		if e.Volume != 7.5 {
			t.Fatalf("edge %d->%d has volume %v, want 7.5", e.From, e.To, e.Volume)
		}
		outdeg[e.From]++
	}
	for id, d := range outdeg {
		if d > 2 {
			t.Errorf("task %d has out-degree %d, above the -degree 2 cap", id, d)
		}
	}
	// Unbounded degree (0) must remain available.
	if _, err := generate("outforest", 20, 4, 100, 1, 80, 120, 1, 0); err != nil {
		t.Fatal(err)
	}
}
