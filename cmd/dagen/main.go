// Command dagen generates task-graph instances as JSON: the paper's
// random layered DAGs or the structured families (fork, join, chain,
// outforest, diamond, stencil, montage, fft).
//
// Usage:
//
//	dagen -kind random -seed 7 > dag.json
//	dagen -kind fork -n 16 -volume 100
//	dagen -kind outforest -n 30 -roots 2 -degree 3 -volume 80
//	dagen -kind fft -n 3
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"caft/internal/dag"
	"caft/internal/gen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, flag.ErrHelp) {
			fmt.Fprintln(os.Stderr, "dagen:", err)
		}
		os.Exit(1)
	}
}

// run parses flags, generates the requested graph and writes its JSON
// to stdout, with a one-line size summary on stderr.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("dagen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		kind   = fs.String("kind", "random", "graph family: random, fork, join, chain, outforest, diamond, stencil, montage, fft")
		n      = fs.Int("n", 10, "size parameter (leaves, length, tasks, width, or log2 points depending on kind)")
		depth  = fs.Int("depth", 4, "depth parameter for diamond/stencil")
		volume = fs.Float64("volume", 100, "edge data volume for structured families (outforest included)")
		seed   = fs.Int64("seed", 1, "PRNG seed for random families")
		minT   = fs.Int("min-tasks", gen.DefaultParams.MinTasks, "random: minimum task count")
		maxT   = fs.Int("max-tasks", gen.DefaultParams.MaxTasks, "random: maximum task count")
		roots  = fs.Int("roots", 2, "outforest: number of tree roots")
		degree = fs.Int("degree", 0, "outforest: maximum out-degree per task (0 = unbounded)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := generate(*kind, *n, *depth, *volume, *seed, *minT, *maxT, *roots, *degree)
	if err != nil {
		return err
	}
	if err := g.Write(stdout); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "dagen: %d tasks, %d edges, width %d\n", g.NumTasks(), g.NumEdges(), g.Width())
	return nil
}

// generate validates the flag values of the selected family and builds
// the graph through gen.Spec — the same declarative dispatch the caftd
// scheduling service resolves from JSON, so both entry points produce
// identical graphs for identical parameters. The flag-level checks stay
// here for flag-specific error messages; gen.Spec.Validate re-checks
// the same invariants with API wording.
func generate(kind string, n, depth int, volume float64, seed int64, minT, maxT, roots, degree int) (*dag.DAG, error) {
	if n < 1 {
		return nil, fmt.Errorf("-n must be positive, got %d", n)
	}
	if depth < 1 {
		return nil, fmt.Errorf("-depth must be positive, got %d", depth)
	}
	if volume < 0 {
		return nil, fmt.Errorf("-volume must be non-negative, got %v", volume)
	}
	switch kind {
	case "random":
		if minT < 1 || maxT < minT {
			return nil, fmt.Errorf("bad task range [-min-tasks %d, -max-tasks %d]", minT, maxT)
		}
	case "outforest":
		if roots < 1 {
			return nil, fmt.Errorf("-roots must be positive, got %d", roots)
		}
		if degree < 0 {
			return nil, fmt.Errorf("-degree must be non-negative, got %d", degree)
		}
	}
	return gen.Spec{
		Kind: kind, N: n, Depth: depth, Volume: volume, Seed: seed,
		MinTasks: minT, MaxTasks: maxT, Roots: roots, Degree: degree,
	}.Build()
}
