// Command dagen generates task-graph instances as JSON: the paper's
// random layered DAGs or the structured families (fork, join, chain,
// outforest, diamond, stencil, montage, fft).
//
// Usage:
//
//	dagen -kind random -seed 7 > dag.json
//	dagen -kind fork -n 16 -volume 100
//	dagen -kind fft -n 3
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"caft/internal/dag"
	"caft/internal/gen"
)

func main() {
	var (
		kind   = flag.String("kind", "random", "graph family: random, fork, join, chain, outforest, diamond, stencil, montage, fft")
		n      = flag.Int("n", 10, "size parameter (leaves, length, tasks, width, or log2 points depending on kind)")
		depth  = flag.Int("depth", 4, "depth parameter for diamond/stencil")
		volume = flag.Float64("volume", 100, "edge data volume for structured families")
		seed   = flag.Int64("seed", 1, "PRNG seed for random families")
		minT   = flag.Int("min-tasks", gen.DefaultParams.MinTasks, "random: minimum task count")
		maxT   = flag.Int("max-tasks", gen.DefaultParams.MaxTasks, "random: maximum task count")
	)
	flag.Parse()
	rng := rand.New(rand.NewSource(*seed))
	var g *dag.DAG
	switch *kind {
	case "random":
		params := gen.DefaultParams
		params.MinTasks, params.MaxTasks = *minT, *maxT
		g = gen.RandomLayered(rng, params)
	case "fork":
		g = gen.Fork(*n, *volume)
	case "join":
		g = gen.Join(*n, *volume)
	case "chain":
		g = gen.Chain(*n, *volume)
	case "outforest":
		g = gen.RandomOutForest(rng, *n, 2, 50, 150)
	case "diamond":
		g = gen.Diamond(*n, *depth, *volume)
	case "stencil":
		g = gen.Stencil(*depth, *n, *volume)
	case "montage":
		g = gen.Montage(*n, *volume)
	case "fft":
		g = gen.FFT(*n, *volume)
	default:
		fmt.Fprintf(os.Stderr, "dagen: unknown kind %q\n", *kind)
		os.Exit(1)
	}
	if err := g.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dagen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "dagen: %d tasks, %d edges, width %d\n", g.NumTasks(), g.NumEdges(), g.Width())
}
