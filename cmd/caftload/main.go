// Command caftload is the load generator for caftd clusters: it drives
// a zipf-skewed stream of scheduling requests — the skew models real
// workloads, where a few popular problems dominate — against one or
// more nodes and reports what the cluster actually delivered: client
// hit rate (from per-node /statsz deltas), latency quantiles, shed and
// timeout counts, and whether every response for a given problem was
// byte-identical no matter which node served it.
//
// Usage:
//
//	caftload -targets host1:8080,host2:8080 [-n 1000000] [-conc 256]
//	         [-problems 1000] [-zipf 1.1] [-seed 1] [-timeout 30s]
//
// Requests are pre-marshaled before the clock starts, so the generator
// measures the cluster, not encoding/json. The exit status is non-zero
// if any problem ever received two different response bodies — with
// deterministic scheduling that must never happen, restarts and
// forwarding included.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"caft/internal/gen"
	"caft/internal/service"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "caftload:", err)
		os.Exit(1)
	}
}

// loadConfig is the parsed flag set.
type loadConfig struct {
	targets  []string
	n        int
	conc     int
	problems int
	zipfS    float64
	seed     int64
	timeout  time.Duration
}

// counters aggregates worker outcomes; all fields are atomics so the
// hot loop never contends on a mutex.
type counters struct {
	ok        atomic.Int64
	shed      atomic.Int64 // HTTP 429
	timeouts  atomic.Int64 // client-side deadline / transport errors
	httpErr   atomic.Int64 // any other non-200
	mismatch  atomic.Int64 // byte-identity violations
	bytesRead atomic.Int64
}

func parseFlags(args []string) (loadConfig, error) {
	fs := flag.NewFlagSet("caftload", flag.ContinueOnError)
	var (
		targets  = fs.String("targets", "", "comma-separated host:port list of caftd nodes to drive (required)")
		n        = fs.Int("n", 1_000_000, "total requests to send")
		conc     = fs.Int("conc", 256, "concurrent client workers")
		problems = fs.Int("problems", 1000, "distinct problems in the pool (zipf-sampled)")
		zipfS    = fs.Float64("zipf", 1.1, "zipf skew parameter s (> 1); larger = hotter head")
		seed     = fs.Int64("seed", 1, "RNG seed for problem generation and sampling")
		timeout  = fs.Duration("timeout", 30*time.Second, "per-request client deadline")
	)
	if err := fs.Parse(args); err != nil {
		return loadConfig{}, err
	}
	cfg := loadConfig{
		n: *n, conc: *conc, problems: *problems,
		zipfS: *zipfS, seed: *seed, timeout: *timeout,
	}
	for _, t := range strings.Split(*targets, ",") {
		if t = strings.TrimSpace(t); t != "" {
			cfg.targets = append(cfg.targets, t)
		}
	}
	switch {
	case len(cfg.targets) == 0:
		return cfg, fmt.Errorf("-targets is required")
	case cfg.n <= 0 || cfg.conc <= 0 || cfg.problems <= 0:
		return cfg, fmt.Errorf("-n, -conc and -problems must be positive")
	case cfg.zipfS <= 1:
		return cfg, fmt.Errorf("-zipf must be > 1, got %g", cfg.zipfS)
	case cfg.timeout <= 0:
		return cfg, fmt.Errorf("-timeout must be positive")
	}
	if cfg.conc > cfg.n {
		cfg.conc = cfg.n
	}
	return cfg, nil
}

// buildBodies pre-marshals the problem pool: seed-varied montage
// workflows scheduled by CAFT, no Monte-Carlo stage, so the compute is
// cheap enough to run a million requests and the response bytes are a
// pure function of the seed.
func buildBodies(cfg loadConfig) ([][]byte, error) {
	bodies := make([][]byte, cfg.problems)
	for i := range bodies {
		req := &service.Request{
			Alg:       "caft",
			Eps:       1,
			Seed:      cfg.seed + int64(i),
			Generator: &gen.Spec{Kind: "montage", N: 4, Volume: 100},
			Platform:  service.PlatformSpec{M: 4, Delay: 0.75},
		}
		b, err := json.Marshal(req)
		if err != nil {
			return nil, err
		}
		bodies[i] = b
	}
	return bodies, nil
}

// fetchStats reads /statsz from every target; nil for unreachable
// nodes (tolerated so a mid-run restart test can still report).
func fetchStats(targets []string, timeout time.Duration) []*service.StatsSnapshot {
	client := &http.Client{Timeout: timeout}
	out := make([]*service.StatsSnapshot, len(targets))
	for i, t := range targets {
		resp, err := client.Get("http://" + t + "/statsz")
		if err != nil {
			continue
		}
		var st service.StatsSnapshot
		if json.NewDecoder(resp.Body).Decode(&st) == nil {
			out[i] = &st
		}
		resp.Body.Close()
	}
	return out
}

func run(args []string, stdout io.Writer) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}
	bodies, err := buildBodies(cfg)
	if err != nil {
		return err
	}

	// Byte-identity ledger: the first response for problem i pins its
	// FNV-64a fingerprint; every later response must match, whichever
	// node (or node incarnation) served it. 0 means "not yet pinned" —
	// an FNV collision with 0 is vanishingly unlikely and would only
	// cost one false re-pin.
	fingerprints := make([]atomic.Uint64, cfg.problems)

	before := fetchStats(cfg.targets, cfg.timeout)

	transport := &http.Transport{
		MaxIdleConns:        cfg.conc * 2,
		MaxIdleConnsPerHost: cfg.conc,
	}
	client := &http.Client{Transport: transport, Timeout: cfg.timeout}
	defer transport.CloseIdleConnections()

	var cnt counters
	latencies := make([][]float64, cfg.conc)
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Per-worker RNG: zipf sampling is not safe for concurrent
			// use, and distinct streams keep the aggregate skew intact.
			rng := rand.New(rand.NewSource(cfg.seed + int64(w)*7919))
			zipf := rand.NewZipf(rng, cfg.zipfS, 1, uint64(cfg.problems-1))
			lats := make([]float64, 0, cfg.n/cfg.conc+1)
			for {
				i := next.Add(1) - 1
				if i >= int64(cfg.n) {
					break
				}
				p := int(zipf.Uint64())
				target := cfg.targets[int(i)%len(cfg.targets)]
				t0 := time.Now()
				resp, err := client.Post("http://"+target+"/schedule", "application/json",
					bytes.NewReader(bodies[p]))
				if err != nil {
					cnt.timeouts.Add(1)
					continue
				}
				raw, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					cnt.timeouts.Add(1)
					continue
				}
				lats = append(lats, time.Since(t0).Seconds())
				switch {
				case resp.StatusCode == http.StatusTooManyRequests:
					cnt.shed.Add(1)
					continue
				case resp.StatusCode != http.StatusOK:
					cnt.httpErr.Add(1)
					continue
				}
				cnt.ok.Add(1)
				cnt.bytesRead.Add(int64(len(raw)))
				h := fnv.New64a()
				h.Write(raw)
				sum := h.Sum64()
				if !fingerprints[p].CompareAndSwap(0, sum) && fingerprints[p].Load() != sum {
					cnt.mismatch.Add(1)
				}
			}
			latencies[w] = lats
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	after := fetchStats(cfg.targets, cfg.timeout)
	report(stdout, cfg, &cnt, latencies, elapsed, before, after)
	if m := cnt.mismatch.Load(); m > 0 {
		return fmt.Errorf("%d responses were not byte-identical across serves", m)
	}
	return nil
}

func report(w io.Writer, cfg loadConfig, cnt *counters, latencies [][]float64,
	elapsed time.Duration, before, after []*service.StatsSnapshot) {
	var all []float64
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Float64s(all)
	pct := func(q float64) float64 {
		if len(all) == 0 {
			return 0
		}
		i := int(q * float64(len(all)))
		if i >= len(all) {
			i = len(all) - 1
		}
		return all[i] * 1e3
	}

	ok, shed, to, herr := cnt.ok.Load(), cnt.shed.Load(), cnt.timeouts.Load(), cnt.httpErr.Load()
	fmt.Fprintf(w, "caftload: %d requests, %d problems (zipf s=%g), %d workers, %d targets\n",
		cfg.n, cfg.problems, cfg.zipfS, cfg.conc, len(cfg.targets))
	fmt.Fprintf(w, "  elapsed     %.2fs (%.0f req/s)\n", elapsed.Seconds(), float64(cfg.n)/elapsed.Seconds())
	fmt.Fprintf(w, "  ok          %d\n", ok)
	fmt.Fprintf(w, "  shed(429)   %d\n", shed)
	fmt.Fprintf(w, "  timeouts    %d\n", to)
	fmt.Fprintf(w, "  http-errors %d\n", herr)
	fmt.Fprintf(w, "  mismatches  %d\n", cnt.mismatch.Load())
	fmt.Fprintf(w, "  latency     p50 %.2fms  p99 %.2fms\n", pct(0.50), pct(0.99))

	// Server-side truth: hit rate over the run from /statsz deltas.
	var hits, misses, diskHits, forwards, sshed int64
	complete := true
	for i := range after {
		if after[i] == nil {
			complete = false
			continue
		}
		h, m, d, f, s := after[i].Hits, after[i].Misses, after[i].DiskHits, after[i].Forwards, after[i].Shed
		if before[i] != nil {
			h -= before[i].Hits
			m -= before[i].Misses
			d -= before[i].DiskHits
			f -= before[i].Forwards
			s -= before[i].Shed
		}
		hits += h
		misses += m
		diskHits += d
		forwards += f
		sshed += s
	}
	if total := hits + misses; total > 0 {
		note := ""
		if !complete {
			note = " (some nodes unreachable for /statsz; partial)"
		}
		fmt.Fprintf(w, "  cluster     hitRate %.4f (%d hits, %d misses, %d diskHits), forwards %d, shed %d%s\n",
			float64(hits)/float64(total), hits, misses, diskHits, forwards, sshed, note)
	}
}
