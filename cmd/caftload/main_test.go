package main

import (
	"net"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"caft/internal/service"
)

func startNode(t *testing.T, cfg service.Config) (addr string, svc *service.Service) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Self != "" {
		t.Fatal("use startCluster-style wiring for clustered nodes")
	}
	svc, err = service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: service.NewHandler(svc)}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close(); svc.Close() })
	return ln.Addr().String(), svc
}

func TestParseFlagsRejectsBadInput(t *testing.T) {
	cases := [][]string{
		{},                                  // missing -targets
		{"-targets", "a:1", "-n", "0"},      // non-positive n
		{"-targets", "a:1", "-conc", "-1"},  // negative conc
		{"-targets", "a:1", "-zipf", "1.0"}, // zipf s must exceed 1
		{"-targets", "a:1", "-timeout", "0s"},
		{"-targets", ",,"}, // all-empty target list
	}
	for _, args := range cases {
		if _, err := parseFlags(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
	cfg, err := parseFlags([]string{"-targets", " a:1, b:2 ", "-n", "4", "-conc", "64"})
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.targets) != 2 || cfg.targets[0] != "a:1" || cfg.targets[1] != "b:2" {
		t.Errorf("targets parsed as %v", cfg.targets)
	}
	if cfg.conc != 4 {
		t.Errorf("conc %d not clamped to n", cfg.conc)
	}
}

// A small end-to-end run against one real node: every request succeeds,
// the zipf stream repeats problems (hits dominate once the pool is
// warm), and the report carries the server-side hit rate.
func TestRunAgainstSingleNode(t *testing.T) {
	addr, svc := startNode(t, service.Config{Workers: 2})
	var out strings.Builder
	err := run([]string{
		"-targets", addr, "-n", "400", "-conc", "8",
		"-problems", "20", "-seed", "7", "-timeout", "30s",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	st := svc.Stats()
	if st.Hits+st.Misses != 400 {
		t.Errorf("server saw %d requests, want 400", st.Hits+st.Misses)
	}
	if st.Misses > 20 {
		t.Errorf("%d computes for a 20-problem pool — caching broken", st.Misses)
	}
	for _, want := range []string{"ok          400", "mismatches  0", "hitRate"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q:\n%s", want, out.String())
		}
	}
}

// Overload visibility: an admit-max 1 node under concurrent cold keys
// sheds, and caftload reports the 429s rather than miscounting them as
// failures.
func TestRunReportsShedding(t *testing.T) {
	addr, svc := startNode(t, service.Config{Workers: 1, MCWorkers: 1, AdmitMax: 1})
	var out strings.Builder
	err := run([]string{
		"-targets", addr, "-n", "300", "-conc", "32",
		"-problems", "150", "-zipf", "1.01", "-seed", "11", "-timeout", "30s",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if strings.Contains(out.String(), "mismatches  0") == false {
		t.Errorf("byte mismatch under shedding:\n%s", out.String())
	}
	// The server's own counter is authoritative; the client must agree.
	if shed := svc.Stats().Shed; shed > 0 && !strings.Contains(out.String(), "shed(429)   "+strconv.FormatInt(shed, 10)) {
		t.Errorf("server shed %d but report says otherwise:\n%s", shed, out.String())
	}
}

// The ledger catches non-determinism: two "nodes" where one is an
// impostor returning different bytes for the same problem must fail the
// run.
func TestRunDetectsByteMismatch(t *testing.T) {
	addr, _ := startNode(t, service.Config{Workers: 1})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	impostor := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/statsz" {
			w.Write([]byte("{}"))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"bogus": true}`))
	})}
	go impostor.Serve(ln)
	t.Cleanup(func() { impostor.Close() })

	var out strings.Builder
	err = run([]string{
		"-targets", addr + "," + ln.Addr().String(),
		"-n", "64", "-conc", "4", "-problems", "4", "-timeout", "30s",
	}, &out)
	if err == nil || !strings.Contains(err.Error(), "byte-identical") {
		t.Fatalf("mismatching cluster passed: err=%v\n%s", err, out.String())
	}
}

// Guard against silent drift in the per-request deadline plumbing: a
// node that never answers must surface as timeouts, not a hang.
func TestRunCountsTimeouts(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	block := make(chan struct{})
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
	})}
	go srv.Serve(ln)
	t.Cleanup(func() { close(block); srv.Close() })

	var out strings.Builder
	start := time.Now()
	err = run([]string{
		"-targets", ln.Addr().String(), "-n", "8", "-conc", "8",
		"-problems", "2", "-timeout", "300ms",
	}, &out)
	if err != nil {
		t.Fatalf("timeouts must not fail the run: %v", err)
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("run hung past the per-request deadline")
	}
	if !strings.Contains(out.String(), "timeouts    8") {
		t.Errorf("report did not count the timeouts:\n%s", out.String())
	}
}
