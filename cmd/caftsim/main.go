// Command caftsim regenerates the experimental data of the paper: for
// every figure (1-6) it sweeps the granularity family, schedules each
// random instance with CAFT, FTSA and FTBAR under the one-port model,
// replays crashes, and prints the panel series as TSV.
//
// Usage:
//
//	caftsim -figure 1 [-graphs 60] [-seed 1]     # all three panels of Fig. 1
//	caftsim -figure 2b                           # only panel (b) of Fig. 2
//	caftsim -figure all                          # figures 1-6
//	caftsim -figure messages                     # Prop. 5.1 message counts
//	caftsim -figure ablation                     # CAFT variant ablation (A1/A4)
//	caftsim -figure accuracy                     # macro-dataflow estimate accuracy (A3)
//	caftsim -figure sparse                       # sparse-topology extension (X1)
//	caftsim -figure reliability                  # stochastic failure models (S4)
//	caftsim -figure scale -graphs 3              # large-DAG scale study (S5)
//	caftsim -figure online                       # static vs reactive vs hybrid fault tolerance (S7)
//	caftsim -figure jitter [-alg hoft]           # execution-time-jitter predictability harness (S9)
//
// The scale study sweeps v up to 3200 tasks by default and is the
// heaviest figure by far: run it with a small -graphs value. Raising
// -vmax extends the tail through successive doublings to 100000 tasks,
// where schedulers run with bounded candidate probing and without
// FTBAR (see internal/expt.ScaleSizes); existing rows never move.
// Wall-clock scheduling times and allocation counts go to stderr;
// stdout stays a pure function of (-graphs, -seed, -vmax).
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"caft/internal/expt"
	"caft/internal/sched"
)

func main() {
	var (
		figure  = flag.String("figure", "1", "figure to regenerate: 1..6, optionally with panel suffix a/b/c; or all, messages, ablation, accuracy, sparse, reliability, scale, online, jitter")
		graphs  = flag.Int("graphs", 60, "random graphs per point (paper: 60; use ~3 for -figure scale)")
		seed    = flag.Int64("seed", 1, "base PRNG seed")
		plot    = flag.String("plot", "", "also write gnuplot data+script for figure and reliability runs into this directory")
		workers = flag.Int("workers", 0, "concurrent work units (0 = all cores); output is identical for any value")
		vmax    = flag.Int("vmax", 3200, "scale figure: largest task count of the sweep (up to 100000)")
		alg     = flag.String("alg", "", "jitter figure: restrict to one registered scheduler (default all)")
	)
	flag.Parse()
	if err := run(os.Stdout, *figure, *graphs, *seed, *plot, *workers, *vmax, *alg); err != nil {
		fmt.Fprintln(os.Stderr, "caftsim:", err)
		os.Exit(1)
	}
}

// run dispatches one -figure invocation, writing all reproducible
// output (everything but wall-clock timing) to w. Flag values are
// validated up front: nonsense like -graphs 0 used to fall through to
// the engine and produce empty or degenerate TSV instead of an error.
func run(w io.Writer, figure string, graphs int, seed int64, plotDir string, workers, vmax int, alg string) error {
	if graphs < 1 {
		return fmt.Errorf("-graphs must be positive, got %d", graphs)
	}
	if workers < 0 {
		return fmt.Errorf("-workers must be non-negative (0 = all cores), got %d", workers)
	}
	if alg != "" {
		if _, ok := sched.Lookup(alg); !ok {
			return fmt.Errorf("-alg %q is not a registered scheduler (want %s)", alg, strings.Join(sched.Names(), ", "))
		}
	}
	switch figure {
	case "all":
		for n := 1; n <= 6; n++ {
			if err := runFigure(w, n, "", graphs, seed, plotDir, workers); err != nil {
				return err
			}
		}
		return nil
	case "messages":
		return expt.RunMessages(w, graphs, seed, workers)
	case "ablation":
		return expt.RunAblation(w, graphs, seed, workers)
	case "accuracy":
		return expt.RunAccuracy(w, graphs, seed, workers)
	case "sparse":
		return expt.RunSparse(w, graphs, seed, workers)
	case "reliability":
		return runReliability(w, graphs, seed, plotDir, workers)
	case "scale":
		return runScale(w, graphs, seed, workers, vmax)
	case "online":
		return runOnline(w, graphs, seed, workers)
	case "jitter":
		return runJitter(w, graphs, seed, workers, alg)
	}
	panel := ""
	num := figure
	if len(figure) == 2 && strings.ContainsAny(figure[1:], "abc") {
		num, panel = figure[:1], figure[1:]
	}
	n, err := strconv.Atoi(num)
	if err != nil {
		return fmt.Errorf("unknown figure %q", figure)
	}
	return runFigure(w, n, panel, graphs, seed, plotDir, workers)
}

// col renders one TSV value; an empty series (NaN mean) prints as the
// missing marker rather than a number.
func col(v float64, prec int) string {
	if math.IsNaN(v) {
		return "-"
	}
	return strconv.FormatFloat(v, 'f', prec, 64)
}

func runReliability(w io.Writer, graphs int, seed int64, plotDir string, workers int) error {
	start := time.Now()
	points, err := expt.RunReliability(w, graphs, seed, workers)
	if err != nil {
		return err
	}
	if plotDir != "" {
		if err := writeReliabilityPlots(plotDir, points); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "# reliability: elapsed %s\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// runOnline writes the static vs reactive vs hybrid fault-tolerance
// comparison (event-driven online replay with runtime re-mapping).
func runOnline(w io.Writer, graphs int, seed int64, workers int) error {
	start := time.Now()
	if _, err := expt.RunOnline(w, graphs, seed, workers); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "# online: elapsed %s\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// runJitter writes the execution-time-jitter predictability table over
// the registered schedulers (or just -alg).
func runJitter(w io.Writer, graphs int, seed int64, workers int, alg string) error {
	start := time.Now()
	if _, err := expt.RunJitter(w, graphs, seed, workers, alg); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "# jitter: elapsed %s\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// runScale sweeps the scale-study sizes up to vmax. Wall-clock
// scheduling times go to stderr so w stays deterministic.
func runScale(w io.Writer, graphs int, seed int64, workers, vmax int) error {
	var sizes []int
	for _, v := range expt.ScaleSizes {
		if v <= vmax {
			sizes = append(sizes, v)
		}
	}
	if len(sizes) == 0 {
		return fmt.Errorf("-vmax %d is below the smallest scale size %d", vmax, expt.ScaleSizes[0])
	}
	start := time.Now()
	if err := expt.RunScale(w, os.Stderr, sizes, graphs, seed, workers); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "# scale: elapsed %s\n", time.Since(start).Round(time.Millisecond))
	return nil
}

func runFigure(w io.Writer, n int, panel string, graphs int, seed int64, plotDir string, workers int) error {
	cfg, err := expt.FigureConfig(n, graphs, seed)
	if err != nil {
		return err
	}
	cfg.Workers = workers
	fmt.Fprintf(w, "# Figure %d%s: m=%d eps=%d crashes=%d graphs/point=%d seed=%d\n",
		n, panel, cfg.M, cfg.Eps, cfg.Crashes, cfg.Graphs, seed)
	start := time.Now()
	points, err := cfg.Run(nil)
	if err != nil {
		return err
	}
	if panel == "" || panel == "a" {
		fmt.Fprintln(w, "## panel (a): normalized latency, 0 crash + bounds + fault-free")
		fmt.Fprintln(w, "g\tFTSA0\tFTSA-UB\tFTBAR0\tFTBAR-UB\tCAFT0\tCAFT-UB\tFF-CAFT\tFF-FTBAR\tFF-HOFT")
		for _, p := range points {
			fmt.Fprintf(w, "%.1f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\n",
				p.G, p.FTSA0, p.FTSAUB, p.FTBAR0, p.FTBARUB, p.CAFT0, p.CAFTUB, p.FFCAFT, p.FFFTBAR, p.FFHOFT)
		}
	}
	if panel == "" || panel == "b" {
		fmt.Fprintf(w, "## panel (b): normalized latency, 0 crash vs %d crash(es)\n", cfg.Crashes)
		fmt.Fprintln(w, "g\tFTSA0\tFTSAc\tFTBAR0\tFTBARc\tCAFT0\tCAFTc")
		for _, p := range points {
			fmt.Fprintf(w, "%.1f\t%.2f\t%s\t%.2f\t%s\t%.2f\t%s\n",
				p.G, p.FTSA0, col(p.FTSAc, 2), p.FTBAR0, col(p.FTBARc, 2), p.CAFT0, col(p.CAFTc, 2))
		}
	}
	if panel == "" || panel == "c" {
		fmt.Fprintln(w, "## panel (c): average overhead (%) vs fault-free CAFT")
		fmt.Fprintln(w, "g\tFTSA0\tFTSAc\tFTBAR0\tFTBARc\tCAFT0\tCAFTc")
		for _, p := range points {
			fmt.Fprintf(w, "%.1f\t%.1f\t%s\t%.1f\t%s\t%.1f\t%s\n",
				p.G, p.OvFTSA0, col(p.OvFTSAc, 1), p.OvFTBAR0, col(p.OvFTBARc, 1), p.OvCAFT0, col(p.OvCAFTc, 1))
		}
	}
	// Crash diagnostics concern the crash panels only; panel-a output
	// must match the panel-a section of a full run byte for byte.
	if panel == "" || panel == "b" || panel == "c" {
		for _, p := range points {
			if p.TasksLost > 0 || p.ReplayErrors > 0 {
				// Each graph's crash draw is replayed once per fault-tolerant
				// scheduler, so the denominator is 3×graphs replays per point.
				fmt.Fprintf(w, "# g=%.1f: %d of %d crash replays lost a task, %d replay error(s); surviving samples FTSA=%d FTBAR=%d CAFT=%d of %d\n",
					p.G, p.TasksLost, 3*cfg.Graphs, p.ReplayErrors, p.FTSAcN, p.FTBARcN, p.CAFTcN, cfg.Graphs)
			}
		}
	}
	if plotDir != "" {
		if err := writePlots(plotDir, n, cfg.Crashes, points); err != nil {
			return err
		}
	}
	// The wall-clock line goes to stderr: stdout must stay byte-identical
	// for any -workers value.
	fmt.Fprintf(w, "# messages/graph (mean): CAFT %.0f  FTSA %.0f  FTBAR %.0f  HEFT %.0f  HOFT %.0f\n",
		meanLast(points, func(p expt.Point) float64 { return p.MsgCAFT }),
		meanLast(points, func(p expt.Point) float64 { return p.MsgFTSA }),
		meanLast(points, func(p expt.Point) float64 { return p.MsgFTBAR }),
		meanLast(points, func(p expt.Point) float64 { return p.MsgHEFT }),
		meanLast(points, func(p expt.Point) float64 { return p.MsgHOFT }))
	fmt.Fprintf(os.Stderr, "# figure %d: elapsed %s\n", n, time.Since(start).Round(time.Millisecond))
	return nil
}

// writePlots drops figureN.dat and figureN.gp into dir.
func writePlots(dir string, n, crashes int, points []expt.Point) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	dataName := fmt.Sprintf("figure%d.dat", n)
	df, err := os.Create(filepath.Join(dir, dataName))
	if err != nil {
		return err
	}
	if err := expt.WriteGnuplotData(df, points); err != nil {
		df.Close()
		return err
	}
	if err := df.Close(); err != nil {
		return err
	}
	gf, err := os.Create(filepath.Join(dir, fmt.Sprintf("figure%d.gp", n)))
	if err != nil {
		return err
	}
	if err := expt.WriteGnuplotScript(gf, n, dataName, crashes); err != nil {
		gf.Close()
		return err
	}
	return gf.Close()
}

// writeReliabilityPlots drops reliability.dat and reliability.gp into
// dir (the MTBF sweep only; the model-comparison rows have no x axis).
func writeReliabilityPlots(dir string, points []expt.ReliabilityPoint) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	const dataName = "reliability.dat"
	df, err := os.Create(filepath.Join(dir, dataName))
	if err != nil {
		return err
	}
	if err := expt.WriteReliabilityGnuplotData(df, points); err != nil {
		df.Close()
		return err
	}
	if err := df.Close(); err != nil {
		return err
	}
	gf, err := os.Create(filepath.Join(dir, "reliability.gp"))
	if err != nil {
		return err
	}
	if err := expt.WriteReliabilityGnuplotScript(gf, dataName); err != nil {
		gf.Close()
		return err
	}
	return gf.Close()
}

func meanLast(points []expt.Point, f func(expt.Point) float64) float64 {
	if len(points) == 0 {
		return 0
	}
	s := 0.0
	for _, p := range points {
		s += f(p)
	}
	return s / float64(len(points))
}
