// Command caftsim regenerates the experimental data of the paper: for
// every figure (1-6) it sweeps the granularity family, schedules each
// random instance with CAFT, FTSA and FTBAR under the one-port model,
// replays crashes, and prints the panel series as TSV.
//
// Usage:
//
//	caftsim -figure 1 [-graphs 60] [-seed 1]     # all three panels of Fig. 1
//	caftsim -figure 2b                           # only panel (b) of Fig. 2
//	caftsim -figure all                          # figures 1-6
//	caftsim -figure messages                     # Prop. 5.1 message counts
//	caftsim -figure ablation                     # CAFT variant ablation (A1/A4)
//	caftsim -figure accuracy                     # macro-dataflow estimate accuracy (A3)
//	caftsim -figure sparse                       # sparse-topology extension (X1)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"caft/internal/expt"
)

func main() {
	var (
		figure = flag.String("figure", "1", "figure to regenerate: 1..6, optionally with panel suffix a/b/c; or all, messages, ablation, accuracy, sparse")
		graphs = flag.Int("graphs", 60, "random graphs per point (paper: 60)")
		seed   = flag.Int64("seed", 1, "base PRNG seed")
		plot   = flag.String("plot", "", "also write gnuplot data+script for figure runs into this directory")
	)
	flag.Parse()
	if err := run(*figure, *graphs, *seed, *plot); err != nil {
		fmt.Fprintln(os.Stderr, "caftsim:", err)
		os.Exit(1)
	}
}

func run(figure string, graphs int, seed int64, plotDir string) error {
	switch figure {
	case "all":
		for n := 1; n <= 6; n++ {
			if err := runFigure(n, "", graphs, seed, plotDir); err != nil {
				return err
			}
		}
		return nil
	case "messages":
		return expt.RunMessages(os.Stdout, graphs, seed)
	case "ablation":
		return expt.RunAblation(os.Stdout, graphs, seed)
	case "accuracy":
		return expt.RunAccuracy(os.Stdout, graphs, seed)
	case "sparse":
		return expt.RunSparse(os.Stdout, graphs, seed)
	}
	panel := ""
	num := figure
	if len(figure) == 2 && strings.ContainsAny(figure[1:], "abc") {
		num, panel = figure[:1], figure[1:]
	}
	n, err := strconv.Atoi(num)
	if err != nil {
		return fmt.Errorf("unknown figure %q", figure)
	}
	return runFigure(n, panel, graphs, seed, plotDir)
}

func runFigure(n int, panel string, graphs int, seed int64, plotDir string) error {
	cfg, err := expt.FigureConfig(n, graphs, seed)
	if err != nil {
		return err
	}
	fmt.Printf("# Figure %d%s: m=%d eps=%d crashes=%d graphs/point=%d seed=%d\n",
		n, panel, cfg.M, cfg.Eps, cfg.Crashes, cfg.Graphs, seed)
	start := time.Now()
	points, err := cfg.Run(nil)
	if err != nil {
		return err
	}
	if panel == "" || panel == "a" {
		fmt.Println("## panel (a): normalized latency, 0 crash + bounds + fault-free")
		fmt.Println("g\tFTSA0\tFTSA-UB\tFTBAR0\tFTBAR-UB\tCAFT0\tCAFT-UB\tFF-CAFT\tFF-FTBAR")
		for _, p := range points {
			fmt.Printf("%.1f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\n",
				p.G, p.FTSA0, p.FTSAUB, p.FTBAR0, p.FTBARUB, p.CAFT0, p.CAFTUB, p.FFCAFT, p.FFFTBAR)
		}
	}
	if panel == "" || panel == "b" {
		fmt.Printf("## panel (b): normalized latency, 0 crash vs %d crash(es)\n", cfg.Crashes)
		fmt.Println("g\tFTSA0\tFTSAc\tFTBAR0\tFTBARc\tCAFT0\tCAFTc")
		for _, p := range points {
			fmt.Printf("%.1f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\n",
				p.G, p.FTSA0, p.FTSAc, p.FTBAR0, p.FTBARc, p.CAFT0, p.CAFTc)
		}
	}
	if panel == "" || panel == "c" {
		fmt.Println("## panel (c): average overhead (%) vs fault-free CAFT")
		fmt.Println("g\tFTSA0\tFTSAc\tFTBAR0\tFTBARc\tCAFT0\tCAFTc")
		for _, p := range points {
			fmt.Printf("%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\n",
				p.G, p.OvFTSA0, p.OvFTSAc, p.OvFTBAR0, p.OvFTBARc, p.OvCAFT0, p.OvCAFTc)
		}
	}
	if plotDir != "" {
		if err := writePlots(plotDir, n, cfg.Crashes, points); err != nil {
			return err
		}
	}
	fmt.Printf("# messages/graph (mean): CAFT %.0f  FTSA %.0f  FTBAR %.0f  HEFT %.0f; elapsed %s\n",
		meanLast(points, func(p expt.Point) float64 { return p.MsgCAFT }),
		meanLast(points, func(p expt.Point) float64 { return p.MsgFTSA }),
		meanLast(points, func(p expt.Point) float64 { return p.MsgFTBAR }),
		meanLast(points, func(p expt.Point) float64 { return p.MsgHEFT }),
		time.Since(start).Round(time.Millisecond))
	return nil
}

// writePlots drops figureN.dat and figureN.gp into dir.
func writePlots(dir string, n, crashes int, points []expt.Point) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	dataName := fmt.Sprintf("figure%d.dat", n)
	df, err := os.Create(filepath.Join(dir, dataName))
	if err != nil {
		return err
	}
	if err := expt.WriteGnuplotData(df, points); err != nil {
		df.Close()
		return err
	}
	if err := df.Close(); err != nil {
		return err
	}
	gf, err := os.Create(filepath.Join(dir, fmt.Sprintf("figure%d.gp", n)))
	if err != nil {
		return err
	}
	if err := expt.WriteGnuplotScript(gf, n, dataName, crashes); err != nil {
		gf.Close()
		return err
	}
	return gf.Close()
}

func meanLast(points []expt.Point, f func(expt.Point) float64) float64 {
	if len(points) == 0 {
		return 0
	}
	s := 0.0
	for _, p := range points {
		s += f(p)
	}
	return s / float64(len(points))
}
