package main

import "testing"

func TestRunRejectsUnknownFigure(t *testing.T) {
	for _, bad := range []string{"7", "0", "x", "1d", "abc"} {
		if err := run(bad, 1, 1, "", 1); err == nil {
			t.Errorf("figure %q accepted", bad)
		}
	}
}

func TestRunPanelSelection(t *testing.T) {
	// Tiny runs: 1 graph per point would still sweep 10 granularities,
	// so exercise only the cheapest figure with panel filters.
	for _, fig := range []string{"1a", "1b", "1c"} {
		if err := run(fig, 1, 1, "", 0); err != nil {
			t.Fatalf("figure %s: %v", fig, err)
		}
	}
}

func TestRunSpecialFigures(t *testing.T) {
	for _, fig := range []string{"messages", "sparse"} {
		if err := run(fig, 1, 1, "", 0); err != nil {
			t.Fatalf("figure %s: %v", fig, err)
		}
	}
}
