package main

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// -update regenerates the golden files from the current engine (the
// one shared golden-file convention; see EXPERIMENTS.md):
//
//	go test ./cmd/caftsim -run Golden -update
var update = flag.Bool("update", false, "rewrite the golden files from current output")

func TestRunRejectsUnknownFigure(t *testing.T) {
	for _, bad := range []string{"7", "0", "x", "1d", "abc"} {
		if err := run(io.Discard, bad, 1, 1, "", 1, 3200, ""); err == nil {
			t.Errorf("figure %q accepted", bad)
		}
	}
}

// Nonsense flag values must be rejected with a pointed message instead
// of producing empty or degenerate TSV (the pre-fix behavior for
// -graphs 0, negative -workers and an undershooting -vmax).
func TestRunRejectsBadFlagValues(t *testing.T) {
	cases := []struct {
		name    string
		figure  string
		graphs  int
		workers int
		vmax    int
		alg     string
		wantMsg string
	}{
		{"zero graphs", "1a", 0, 1, 3200, "", "-graphs must be positive, got 0"},
		{"negative graphs", "1a", -3, 1, 3200, "", "-graphs must be positive, got -3"},
		{"zero graphs special figure", "messages", 0, 1, 3200, "", "-graphs must be positive, got 0"},
		{"negative workers", "1a", 1, -2, 3200, "", "-workers must be non-negative (0 = all cores), got -2"},
		{"vmax below smallest size", "scale", 1, 1, 50, "", "-vmax 50 is below the smallest scale size 100"},
		{"unknown alg", "jitter", 1, 1, 3200, "nope", `-alg "nope" is not a registered scheduler (want heft, caft, caft-greedy, ftsa, ftbar, hoft)`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := run(io.Discard, c.figure, c.graphs, 1, "", c.workers, c.vmax, c.alg)
			if err == nil {
				t.Fatal("accepted")
			}
			if err.Error() != c.wantMsg {
				t.Errorf("message %q, want %q", err, c.wantMsg)
			}
		})
	}
}

func TestRunPanelSelection(t *testing.T) {
	// Tiny runs: 1 graph per point would still sweep 10 granularities,
	// so exercise only the cheapest figure with panel filters.
	for _, fig := range []string{"1a", "1b", "1c"} {
		if err := run(io.Discard, fig, 1, 1, "", 0, 3200, ""); err != nil {
			t.Fatalf("figure %s: %v", fig, err)
		}
	}
}

func TestRunSpecialFigures(t *testing.T) {
	for _, fig := range []string{"messages", "sparse"} {
		if err := run(io.Discard, fig, 1, 1, "", 0, 3200, ""); err != nil {
			t.Fatalf("figure %s: %v", fig, err)
		}
	}
}

// TestGoldenOutput pins the exact bytes of the TSV the CLI emits for a
// small seeded run of the classic figure 1 and of the reliability
// figure. Output-format drift — column changes, float formatting,
// header wording — fails here instead of silently changing plots, and
// running every case at two worker counts pins the engine's
// determinism guarantee: the bytes must not depend on scheduling.
func TestGoldenOutput(t *testing.T) {
	cases := []struct {
		golden string
		figure string
		graphs int
		vmax   int
	}{
		{"figure1_g2_seed1.tsv", "1", 2, 3200},
		{"reliability_g2_seed1.tsv", "reliability", 2, 3200},
		// The scale sweep is capped at v=400 to stay affordable in CI
		// while still crossing the paper's v in [80,120] regime.
		{"scale_g2_v400_seed1.tsv", "scale", 2, 400},
		{"online_g2_seed1.tsv", "online", 2, 3200},
		{"jitter_g2_seed1.tsv", "jitter", 2, 3200},
	}
	for _, c := range cases {
		t.Run(c.figure, func(t *testing.T) {
			path := filepath.Join("testdata", c.golden)
			var first []byte
			for _, workers := range []int{1, 8} {
				var buf bytes.Buffer
				if err := run(&buf, c.figure, c.graphs, 1, "", workers, c.vmax, ""); err != nil {
					t.Fatal(err)
				}
				if first == nil {
					first = buf.Bytes()
				} else if !bytes.Equal(first, buf.Bytes()) {
					t.Fatalf("figure %s output differs between -workers 1 and -workers 8", c.figure)
				}
			}
			if *update {
				if err := os.WriteFile(path, first, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with -update): %v", err)
			}
			if !bytes.Equal(first, want) {
				t.Fatalf("figure %s output drifted from %s;\nif intentional, regenerate with: go test ./cmd/caftsim -run Golden -update\ngot:\n%s\nwant:\n%s",
					c.figure, path, first, want)
			}
		})
	}
}
