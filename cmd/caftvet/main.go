// Command caftvet mechanically enforces the repo's determinism,
// scratch-aliasing, error-sentinel, goroutine-confinement and
// zero-allocation contracts (DESIGN.md S8 and S10) with six
// analyzers:
//
//	confine       //caft:confined values crossing a goroutine boundary
//	errsentinel   ==/!= against exported Err... sentinels -> errors.Is
//	maporder      map iteration in //caft:deterministic packages
//	nondet        ambient time/rand/env/scheduler reads in those packages
//	scratchalias  retained results of //caft:scratch methods
//	zeroalloc     allocation sites in //caft:zeroalloc functions
//
// Two ways to run it:
//
//	caftvet ./...                              # standalone multichecker
//	go vet -vettool=$(which caftvet) ./...     # as the go vet tool
//
// Standalone mode loads every matched package in one process, so
// cross-package //caft:scratch, //caft:confined and //caft:zeroalloc
// annotations are always visible; it is what CI runs. Vettool mode
// speaks the go vet unit-checker protocol (-V=full, -flags, one JSON
// vet.cfg per compilation unit) and propagates those annotations
// between units as JSON facts through the .vetx files go vet already
// plumbs; it composes with go vet's caching and the standard
// analyzers' UX.
//
// Exit status: 0 clean, 1 operational error, 2 diagnostics found
// (matching go vet's convention).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"caft/internal/analysis"
	"caft/internal/analysis/passes"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("caftvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		runFilter = fs.String("run", "", "comma-separated analyzer names to run (default: all)")
		jsonOut   = fs.Bool("json", false, "emit diagnostics as JSON")
		list      = fs.Bool("list", false, "list analyzers and exit")
		version   = fs.String("V", "", "go vet protocol: print tool version (use -V=full)")
		flagsOut  = fs.Bool("flags", false, "go vet protocol: describe flags as JSON")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: caftvet [-run a,b] [-json] [packages]\n       go vet -vettool=$(which caftvet) [packages]\n\nAnalyzers:\n")
		for _, a := range passes.All() {
			fmt.Fprintf(stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}

	switch {
	case *version != "":
		// go vet derives its cache key from this line; any stable
		// "name version ..." string works. Bumped whenever the analyzer
		// set or a diagnostic's meaning changes, so stale vet caches
		// cannot mask new findings.
		fmt.Fprintf(stdout, "caftvet version caft-suite-v2\n")
		return 0
	case *flagsOut:
		// go vet queries supported flags as a JSON array; caftvet
		// accepts none through go vet.
		fmt.Fprintln(stdout, "[]")
		return 0
	case *list:
		for _, a := range passes.All() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	enabled, err := selectAnalyzers(*runFilter)
	if err != nil {
		fmt.Fprintln(stderr, "caftvet:", err)
		return 1
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runVetCfg(rest[0], enabled, *jsonOut, stdout, stderr)
	}
	if len(rest) == 0 {
		rest = []string{"./..."}
	}

	pkgs, err := analysis.Load("", rest...)
	if err != nil {
		fmt.Fprintln(stderr, "caftvet:", err)
		return 1
	}
	findings, err := analysis.Run(pkgs, enabled, nil)
	if err != nil {
		fmt.Fprintln(stderr, "caftvet:", err)
		return 1
	}
	emit(findings, *jsonOut, stdout, stderr)
	if len(findings) > 0 {
		return 2
	}
	return 0
}

func selectAnalyzers(filter string) ([]*analysis.Analyzer, error) {
	all := passes.All()
	if filter == "" {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(filter, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have: %s)", name, names(all))
		}
		out = append(out, a)
	}
	return out, nil
}

func names(as []*analysis.Analyzer) string {
	var ns []string
	for _, a := range as {
		ns = append(ns, a.Name)
	}
	return strings.Join(ns, ", ")
}
