package main

import (
	"bytes"
	"encoding/json"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func runCaftvet(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestCleanFixtureExitsZero(t *testing.T) {
	code, stdout, stderr := runCaftvet(t, "./testdata/src/scratchlib", "./testdata/src/clean")
	if code != 0 {
		t.Fatalf("caftvet over clean fixture: exit %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if stderr != "" {
		t.Fatalf("clean fixture produced diagnostics:\n%s", stderr)
	}
}

// TestDirtyFixtureFiresEveryAnalyzer proves each analyzer produces at
// least one diagnostic through the real driver, and — because the
// scratch misuse in dirty aliases an annotation declared in
// scratchlib — that cross-package annotations are visible in
// standalone mode.
func TestDirtyFixtureFiresEveryAnalyzer(t *testing.T) {
	code, _, stderr := runCaftvet(t, "./testdata/src/scratchlib", "./testdata/src/dirty")
	if code != 2 {
		t.Fatalf("caftvet over dirty fixture: exit %d, want 2\nstderr: %s", code, stderr)
	}
	for _, analyzer := range []string{"confine", "errsentinel", "maporder", "nondet", "scratchalias", "zeroalloc"} {
		if !strings.Contains(stderr, analyzer+": ") {
			t.Errorf("dirty fixture: no %s diagnostic in output:\n%s", analyzer, stderr)
		}
	}
	if !strings.Contains(stderr, "ItemsCopy") {
		t.Errorf("scratchalias diagnostic does not steer to the safe variant:\n%s", stderr)
	}
}

func TestJSONOutput(t *testing.T) {
	code, stdout, _ := runCaftvet(t, "-json", "./testdata/src/scratchlib", "./testdata/src/dirty")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	var parsed map[string]map[string][]struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal([]byte(stdout), &parsed); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, stdout)
	}
	dirty := parsed["caft/cmd/caftvet/testdata/src/dirty"]
	if len(dirty) != 6 {
		t.Fatalf("want diagnostics from 6 analyzers for dirty, got %d: %v", len(dirty), dirty)
	}
}

func TestRunFilter(t *testing.T) {
	code, _, stderr := runCaftvet(t, "-run", "maporder", "./testdata/src/dirty")
	if code != 2 {
		t.Fatalf("exit %d, want 2\n%s", code, stderr)
	}
	if strings.Contains(stderr, "nondet: ") || strings.Contains(stderr, "errsentinel: ") {
		t.Fatalf("-run maporder ran other analyzers:\n%s", stderr)
	}
	if code, _, stderr := runCaftvet(t, "-run", "nosuch"); code != 1 || !strings.Contains(stderr, "unknown analyzer") {
		t.Fatalf("-run nosuch: exit %d, stderr %q", code, stderr)
	}
}

func TestProtocolHandshake(t *testing.T) {
	if code, stdout, _ := runCaftvet(t, "-V=full"); code != 0 || !strings.Contains(stdout, "caftvet version ") {
		t.Fatalf("-V=full: exit %d, output %q", code, stdout)
	}
	if code, stdout, _ := runCaftvet(t, "-flags"); code != 0 || strings.TrimSpace(stdout) != "[]" {
		t.Fatalf("-flags: exit %d, output %q", code, stdout)
	}
}

// TestGoVetVettool drives the real `go vet -vettool=` protocol: build
// the binary, vet the dirty fixture, and require every analyzer to
// fire — including scratchalias on the annotation imported from
// scratchlib, which can only work if the .vetx facts files round-trip
// between compilation units.
func TestGoVetVettool(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and recompiles fixtures; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "caftvet")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building caftvet: %v\n%s", err, out)
	}

	cmd := exec.Command("go", "vet", "-vettool="+bin, "./testdata/src/clean")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool over clean fixture failed: %v\n%s", err, out)
	}

	cmd = exec.Command("go", "vet", "-vettool="+bin, "./testdata/src/dirty")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool over dirty fixture passed; want diagnostics\n%s", out)
	}
	for _, analyzer := range []string{"confine", "errsentinel", "maporder", "nondet", "scratchalias", "zeroalloc"} {
		if !strings.Contains(string(out), analyzer+": ") {
			t.Errorf("go vet -vettool: no %s diagnostic:\n%s", analyzer, out)
		}
	}
	if !strings.Contains(string(out), "ItemsCopy") {
		t.Errorf("go vet -vettool: cross-unit scratch facts did not propagate:\n%s", out)
	}
}
