// Package clean exercises every contract the right way; the driver
// tests assert caftvet exits 0 over it.
//
//caft:deterministic
package clean

import (
	"errors"
	"runtime"
	"sort"

	"caft/cmd/caftvet/testdata/src/scratchlib"
)

// ErrGone is a sentinel; all comparisons below go through errors.Is.
var ErrGone = errors.New("gone")

type holder struct {
	kept []int
}

func SortedLeak(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func Total(m map[string]int) int {
	n := 0
	//caft:unordered-ok addition is commutative; only the total escapes
	for _, v := range m {
		n += v
	}
	return n
}

func Workers() int {
	//caft:nondet-ok bounds concurrency only; results merge in fixed order
	return runtime.GOMAXPROCS(0)
}

func IsGone(err error) bool {
	return errors.Is(err, ErrGone)
}

func Retain(h *holder, b *scratchlib.Buf) {
	h.kept = b.ItemsCopy()
}

func Consume(b *scratchlib.Buf) int {
	n := 0
	for _, v := range b.Items() {
		n += v
	}
	return n
}

// Run hands a Core to a worker and takes it back: the sanctioned
// pool-boundary shape, annotated as such.
func Run(c *scratchlib.Core) {
	ch := make(chan *scratchlib.Core, 1)
	ch <- c     //caft:share-ok worker-pool handoff; the worker owns c until it is checked back in
	got := <-ch //caft:share-ok checked back in; the sender no longer touches it
	got.Step()
}

// Grand stays allocation-free by leaning on Sum's imported fact.
//
//caft:zeroalloc
func Grand(xs []int) int {
	return scratchlib.Sum(xs)
}
