// Package scratchlib is the annotated library half of the caftvet
// end-to-end fixtures: the misuse lives in the importing package, so
// catching it proves cross-package annotation visibility (the whole
// point of the facts plumbing in vettool mode).
package scratchlib

// Buf owns a reusable scratch slice.
type Buf struct {
	scratch []int
}

// Items returns the live item set.
//
//caft:scratch safe=ItemsCopy
func (b *Buf) Items() []int {
	if b.scratch == nil {
		b.scratch = make([]int, 0, 8)
	}
	return b.scratch
}

// ItemsCopy returns a freshly allocated copy of Items, safe to retain.
func (b *Buf) ItemsCopy() []int {
	return append([]int(nil), b.Items()...)
}

// Core is a per-request engine: single-goroutine by contract. The
// misuse fixtures share it across goroutines from another package,
// which only gets caught if the confinement fact crosses units.
//
//caft:confined
type Core struct {
	n int
}

// Step advances the core.
func (c *Core) Step() { c.n++ }

// Sum is allocation-free; annotated callers in other packages may
// call it only because this fact travels with the package.
//
//caft:zeroalloc
func Sum(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}

// Grow allocates and says nothing about it.
func Grow(xs []int) []int {
	return append(append([]int(nil), xs...), 0)
}
