// Package scratchlib is the annotated library half of the caftvet
// end-to-end fixtures: the misuse lives in the importing package, so
// catching it proves cross-package annotation visibility (the whole
// point of the facts plumbing in vettool mode).
package scratchlib

// Buf owns a reusable scratch slice.
type Buf struct {
	scratch []int
}

// Items returns the live item set.
//
//caft:scratch safe=ItemsCopy
func (b *Buf) Items() []int {
	if b.scratch == nil {
		b.scratch = make([]int, 0, 8)
	}
	return b.scratch
}

// ItemsCopy returns a freshly allocated copy of Items, safe to retain.
func (b *Buf) ItemsCopy() []int {
	return append([]int(nil), b.Items()...)
}
