// Package dirty violates every caftvet contract exactly once; the
// driver tests assert one finding per analyzer.
//
//caft:deterministic
package dirty

import (
	"errors"
	"time"

	"caft/cmd/caftvet/testdata/src/scratchlib"
)

// ErrBroken is a sentinel for the errsentinel fixture.
var ErrBroken = errors.New("broken")

type holder struct {
	kept []int
}

func Leak(m map[string]int) []string {
	var out []string
	for k := range m { // maporder
		out = append(out, k, k)
	}
	return out
}

func Stamp() int64 {
	return time.Now().Unix() // nondet
}

func IsBroken(err error) bool {
	return err == ErrBroken // errsentinel
}

func Retain(h *holder, b *scratchlib.Buf) {
	h.kept = b.Items() // scratchalias, via the imported annotation
}

func Share(c *scratchlib.Core) {
	go func() {
		c.Step() // confine, via the imported type fact
	}()
}

// Hot is pinned zero-alloc but allocates anyway.
//
//caft:zeroalloc
func Hot(xs []int) int {
	buf := make([]int, len(xs)) // zeroalloc: make
	copy(buf, xs)
	return scratchlib.Sum(buf) + len(scratchlib.Grow(xs)) // zeroalloc: Grow is unannotated (Sum is fine, via the imported fact)
}
