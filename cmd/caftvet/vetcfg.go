package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"strings"

	"caft/internal/analysis"
)

// vetConfig is the JSON the go command writes for each compilation
// unit when invoked as `go vet -vettool=caftvet` — the same contract
// x/tools' unitchecker consumes. Fields caftvet does not need
// (NonGoFiles, ID, ...) are accepted and ignored.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string // import path -> export data file
	Standard                  map[string]bool
	PackageVetx               map[string]string // import path -> dependency facts file
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetCfg analyzes one compilation unit: parse the unit's files,
// type-check against the export data go vet hands us, merge the
// scratch-annotation facts of the dependencies, run the suite, write
// our own facts for dependents, and report.
func runVetCfg(path string, analyzers []*analysis.Analyzer, jsonOut bool, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(stderr, "caftvet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "caftvet: parsing %s: %v\n", path, err)
		return 1
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return typecheckFailed(cfg, fmt.Sprintf("caftvet: %v", err), stderr)
		}
		files = append(files, f)
	}

	imp := &cfgImporter{cfg: &cfg}
	imp.gc = importer.ForCompiler(fset, "gc", imp.lookup)
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp, Sizes: types.SizesFor("gc", runtime.GOARCH)}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return typecheckFailed(cfg, fmt.Sprintf("caftvet: type-checking %s: %v", cfg.ImportPath, err), stderr)
	}

	dirs := analysis.NewDirectives()
	for dep, vetx := range cfg.PackageVetx {
		facts, err := os.ReadFile(vetx)
		if err != nil {
			fmt.Fprintf(stderr, "caftvet: reading facts of %s: %v\n", dep, err)
			return 1
		}
		if err := dirs.DecodeFacts(facts); err != nil {
			fmt.Fprintf(stderr, "caftvet: facts of %s: %v\n", dep, err)
			return 1
		}
	}

	// go vet hands us test variants of packages with their _test.go
	// files included; standalone mode never sees them (`go list`'s
	// GoFiles excludes tests). Tests are exempt from the contracts, so
	// type-check everything but analyze only the non-test files — this
	// keeps both modes reporting identical findings.
	var goFiles []string
	var syntax []*ast.File
	for i, name := range cfg.GoFiles {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		goFiles = append(goFiles, name)
		syntax = append(syntax, files[i])
	}

	pkg := &analysis.Package{
		PkgPath:   cfg.ImportPath,
		Name:      tpkg.Name(),
		Dir:       cfg.Dir,
		GoFiles:   goFiles,
		Fset:      fset,
		Syntax:    syntax,
		Types:     tpkg,
		TypesInfo: info,
	}
	findings, err := analysis.Run([]*analysis.Package{pkg}, analyzers, dirs)
	if err != nil {
		fmt.Fprintln(stderr, "caftvet:", err)
		return 1
	}

	if err := writeFacts(&cfg, dirs); err != nil {
		fmt.Fprintln(stderr, "caftvet:", err)
		return 1
	}
	if cfg.VetxOnly {
		return 0
	}
	emit(findings, jsonOut, stdout, stderr)
	if len(findings) > 0 {
		return 2
	}
	return 0
}

// typecheckFailed honors SucceedOnTypecheckFailure, which go vet sets
// when the build itself already failed: the compiler's error wins and
// the vet tool stays silent (but must still produce its facts file).
func typecheckFailed(cfg vetConfig, msg string, stderr io.Writer) int {
	if cfg.SucceedOnTypecheckFailure {
		_ = writeFacts(&cfg, analysis.NewDirectives())
		return 0
	}
	fmt.Fprintln(stderr, msg)
	return 1
}

// writeFacts persists this unit's exported scratch annotations for
// dependent units. go vet requires the file to exist even when empty.
func writeFacts(cfg *vetConfig, dirs *analysis.Directives) error {
	if cfg.VetxOutput == "" {
		return nil
	}
	data, err := dirs.EncodeFacts(cfg.ImportPath)
	if err != nil {
		return err
	}
	return os.WriteFile(cfg.VetxOutput, data, 0o666)
}

// cfgImporter resolves imports from the export data files the go
// command already built for this unit.
type cfgImporter struct {
	cfg *vetConfig
	gc  types.Importer
}

func (c *cfgImporter) Import(path string) (*types.Package, error) {
	if r, ok := c.cfg.ImportMap[path]; ok {
		path = r
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return c.gc.Import(path)
}

func (c *cfgImporter) lookup(path string) (io.ReadCloser, error) {
	f, ok := c.cfg.PackageFile[path]
	if !ok {
		return nil, fmt.Errorf("no export data for %q in vet config", path)
	}
	return os.Open(f)
}

// emit prints findings: plain "file:line:col: analyzer: message" lines
// to stderr, or (with -json) a pkg -> analyzer -> diagnostics object
// to stdout, mirroring go vet's shapes.
func emit(findings []analysis.Finding, jsonOut bool, stdout, stderr io.Writer) {
	if !jsonOut {
		for _, f := range findings {
			fmt.Fprintf(stderr, "%s: %s: %s\n", f.Posn, f.Analyzer, f.Message)
		}
		return
	}
	type jsonDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	out := make(map[string]map[string][]jsonDiag)
	for _, f := range findings {
		byAnalyzer := out[f.PkgPath]
		if byAnalyzer == nil {
			byAnalyzer = make(map[string][]jsonDiag)
			out[f.PkgPath] = byAnalyzer
		}
		byAnalyzer[f.Analyzer] = append(byAnalyzer[f.Analyzer], jsonDiag{Posn: f.Posn.String(), Message: f.Message})
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "\t")
	_ = enc.Encode(out)
}
