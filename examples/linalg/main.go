// Linalg: schedule a tiled Cholesky factorization — the canonical dense
// linear-algebra DAG — with growing replication and report schedule
// quality against the theoretical lower bounds: schedule length ratio
// (SLR vs the critical-path bound), load imbalance and port
// utilization. Shows how the fault-tolerance overhead decomposes into
// replicated work and replication traffic.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	"caft/internal/bounds"
	"caft/internal/core"
	"caft/internal/gen"
	"caft/internal/platform"
	"caft/internal/sched"
	"caft/internal/timeline"
)

func main() {
	const tiles, m = 5, 8
	g := gen.Cholesky(tiles, 64)
	rng := rand.New(rand.NewSource(13))
	plat := platform.NewRandom(rng, m, 0.5, 1.0)
	exec := platform.GenExecForGranularity(rng, g, plat, 2.0, platform.DefaultHeterogeneity)
	p := &sched.Problem{G: g, Plat: plat, Exec: exec, Model: sched.OnePort, Policy: timeline.Append}

	fmt.Printf("Cholesky(%d tiles): %d tasks, %d edges, width %d\n", tiles, g.NumTasks(), g.NumEdges(), g.Width())
	fmt.Printf("lower bounds: critical path %.1f, work/m %.1f\n\n", bounds.CriticalPath(p), bounds.Work(p))

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "eps\tlatency\tSLR\tmessages\tcomm/comp\timbalance\tport util")
	for _, eps := range []int{0, 1, 2, 3} {
		s, err := core.Schedule(p, eps, rng)
		if err != nil {
			log.Fatal(err)
		}
		if s.ScheduledLatency() < bounds.CriticalPath(p) {
			log.Fatal("schedule beats the critical-path bound: simulator bug")
		}
		mt := s.ComputeMetrics()
		fmt.Fprintf(tw, "%d\t%.1f\t%.2f\t%d\t%.2f\t%.2f\t%.2f\n",
			eps, mt.Latency, bounds.SLR(s), mt.Messages, mt.CommDensity(), mt.LoadImbalance, mt.AvgPortUtil)
	}
	tw.Flush()
	fmt.Println("\nSLR stays within a small factor of the critical-path bound while the")
	fmt.Println("replicated work multiplies; CAFT's one-to-one chains keep the extra")
	fmt.Println("traffic (comm/comp, port utilization) growing linearly rather than")
	fmt.Println("quadratically in the replication degree.")
}
