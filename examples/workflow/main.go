// Workflow: schedule a Montage-style astronomy mosaicking pipeline — a
// realistic scientific workflow with fan-out, pairwise couplings and
// gather stages — on a 8-processor heterogeneous platform, and compare
// the three fault-tolerant schedulers of the paper on latency and
// message count at increasing replication levels.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	"caft/internal/core"
	"caft/internal/gen"
	"caft/internal/platform"
	"caft/internal/sched"
	"caft/internal/sched/ftbar"
	"caft/internal/sched/ftsa"
	"caft/internal/sim"
	"caft/internal/timeline"
)

func main() {
	g := gen.Montage(8, 120) // 8 parallel reprojections
	rng := rand.New(rand.NewSource(7))
	plat := platform.NewRandom(rng, 8, 0.5, 1.0)
	exec := platform.GenExecForGranularity(rng, g, plat, 0.8, platform.DefaultHeterogeneity)
	p := &sched.Problem{G: g, Plat: plat, Exec: exec, Model: sched.OnePort, Policy: timeline.Append}

	fmt.Printf("Montage workflow: %d tasks, %d edges, width %d\n\n", g.NumTasks(), g.NumEdges(), g.Width())
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "eps\talgorithm\tlatency\tupper bound\tmessages\tworst 1-crash latency")
	for _, eps := range []int{0, 1, 2} {
		type result struct {
			name string
			s    *sched.Schedule
		}
		var results []result
		sCA, err := core.Schedule(p, eps, rng)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, result{"CAFT", sCA})
		sFT, err := ftsa.Schedule(p, eps, rng)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, result{"FTSA", sFT})
		sFB, err := ftbar.Schedule(p, eps, rng)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, result{"FTBAR", sFB})
		for _, r := range results {
			ub, err := sim.UpperBound(r.s)
			if err != nil {
				log.Fatal(err)
			}
			worst := r.s.ScheduledLatency()
			if eps >= 1 {
				worst = 0
				for proc := 0; proc < plat.M; proc++ {
					lat, err := sim.CrashLatency(r.s, map[int]bool{proc: true})
					if err != nil {
						log.Fatalf("%s eps=%d: crash P%d lost a task: %v", r.name, eps, proc, err)
					}
					if lat > worst {
						worst = lat
					}
				}
			}
			fmt.Fprintf(tw, "%d\t%s\t%.1f\t%.1f\t%d\t%.1f\n",
				eps, r.name, r.s.ScheduledLatency(), ub, r.s.MessageCount(), worst)
		}
	}
	tw.Flush()
	fmt.Println("\nCAFT keeps the replica traffic (and hence the one-port contention) low,")
	fmt.Println("which is why its latency stays closest to the fault-free schedule.")
}
