// Quickstart: build a small task graph, a heterogeneous platform, run
// CAFT with ε = 1 and print the schedule, its fault-tolerance bounds
// and what actually happens when a processor crashes.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"caft/internal/core"
	"caft/internal/dag"
	"caft/internal/platform"
	"caft/internal/sched"
	"caft/internal/sim"
	"caft/internal/timeline"
	"caft/internal/viz"
)

func main() {
	// A diamond workflow: prepare -> {left, right} -> merge.
	g := dag.New(4)
	g.AddEdge(0, 1, 40) // volumes: units of data shipped along the edge
	g.AddEdge(0, 2, 60)
	g.AddEdge(1, 3, 50)
	g.AddEdge(2, 3, 30)

	// Four processors, fully connected; unit delays drawn from the
	// paper's [0.5, 1] range; execution times of each task on each
	// processor scaled so computation and communication are balanced
	// (granularity 1.0).
	rng := rand.New(rand.NewSource(42))
	plat := platform.NewRandom(rng, 4, 0.5, 1.0)
	exec := platform.GenExecForGranularity(rng, g, plat, 1.0, platform.DefaultHeterogeneity)

	p := &sched.Problem{
		G:      g,
		Plat:   plat,
		Exec:   exec,
		Model:  sched.OnePort, // the paper's contention model
		Policy: timeline.Append,
	}

	// Schedule with one tolerated fail-stop failure: every task gets two
	// replicas on distinct processors, chained so that no single crash
	// can starve both.
	s, err := core.Schedule(p, 1, rng)
	if err != nil {
		log.Fatal(err)
	}

	viz.Summary(os.Stdout, s)
	fmt.Println()
	if err := viz.Render(os.Stdout, s, viz.Options{Width: 90, Ports: true}); err != nil {
		log.Fatal(err)
	}

	lb, _ := sim.LowerBound(s)
	ub, _ := sim.UpperBound(s)
	fmt.Printf("\nlatency if nothing fails: %.2f; guaranteed even under 1 failure: %.2f\n", lb, ub)

	// Crash each processor in turn and replay.
	for proc := 0; proc < plat.M; proc++ {
		lat, err := sim.CrashLatency(s, map[int]bool{proc: true})
		if err != nil {
			log.Fatalf("crash of P%d lost a task: %v", proc, err)
		}
		fmt.Printf("crash P%d -> application still completes at %.2f\n", proc, lat)
	}
}
