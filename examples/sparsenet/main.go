// Sparsenet: the paper's Section 7 extension in action. The same
// stencil workload is scheduled by CAFT on a clique and on routed
// sparse interconnects (ring, star, mesh, hypercube); messages crossing
// multiple hops occupy every link on their route, so denser topologies
// buy latency. Fault tolerance is preserved on every topology.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	"caft/internal/core"
	"caft/internal/gen"
	"caft/internal/platform"
	"caft/internal/sched"
	"caft/internal/sim"
	"caft/internal/timeline"
	"caft/internal/topology"
)

func main() {
	const m, eps = 8, 1
	g := gen.Stencil(6, 6, 90) // 36-task wavefront
	rng := rand.New(rand.NewSource(11))
	plat := platform.New(m, 0.75)
	exec := platform.GenExecForGranularity(rng, g, plat, 1.0, platform.DefaultHeterogeneity)

	// The convenience constructors validate their sizes; these shapes
	// are statically correct, so a failure here is a programming error.
	mustTopo := func(g *topology.Graph, err error) *topology.Graph {
		if err != nil {
			log.Fatal(err)
		}
		return g
	}
	nets := []struct {
		name string
		net  sched.Network
	}{
		{"clique (paper's model)", nil},
		{"hypercube(3)", mustTopo(topology.Hypercube(3, 0.75))},
		{"mesh 2x4", mustTopo(topology.Mesh2D(2, 4, 0.75))},
		{"star", mustTopo(topology.Star(m, 0.75))},
		{"ring", mustTopo(topology.Ring(m, 0.75))},
	}

	fmt.Printf("stencil 6x6 on %d processors, eps=%d\n\n", m, eps)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "topology\tdiameter\tlatency\tmessages\tworst 1-crash")
	for _, n := range nets {
		p := &sched.Problem{G: g, Plat: plat, Exec: exec, Model: sched.OnePort, Policy: timeline.Append, Net: n.net}
		s, err := core.Schedule(p, eps, rng)
		if err != nil {
			log.Fatal(err)
		}
		diam := 1
		if tg, ok := n.net.(*topology.Graph); ok {
			diam = tg.Diameter()
		}
		worst := 0.0
		for proc := 0; proc < m; proc++ {
			lat, err := sim.CrashLatency(s, map[int]bool{proc: true})
			if err != nil {
				log.Fatalf("%s: crash P%d lost a task: %v", n.name, proc, err)
			}
			if lat > worst {
				worst = lat
			}
		}
		fmt.Fprintf(tw, "%s\t%d\t%.1f\t%d\t%.1f\n", n.name, diam, s.ScheduledLatency(), s.MessageCount(), worst)
	}
	tw.Flush()
	fmt.Println("\nlong routes serialize on shared links; the ring pays the highest price,")
	fmt.Println("yet one crash never loses the application on any topology.")
}
