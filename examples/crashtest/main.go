// Crashtest: an exhaustive fault-injection study. An FFT dataflow is
// scheduled with ε = 2, then EVERY pair of processors is crashed in
// turn and the schedule replayed, demonstrating the paper's guarantee:
// at least one replica of every task always survives, and the achieved
// latency never exceeds the schedule's upper bound by more than the
// replay slack. Also shows the phenomenon of Figures 1(b)/2(b): losing
// a processor can make the remaining schedule finish EARLIER, because
// its messages disappear from the contended ports.
//
// A second section leaves the static-subset world: crash instants are
// sampled from an exponential lifetime model (package failure) and
// replayed with timed fail-stop semantics on a reused Replayer,
// estimating the schedule's unreliability by Monte Carlo.
package main

import (
	"errors"
	"fmt"
	"log"
	"math"
	"math/rand"

	"caft/internal/core"
	"caft/internal/failure"
	"caft/internal/gen"
	"caft/internal/platform"
	"caft/internal/sched"
	"caft/internal/sim"
	"caft/internal/timeline"
)

func main() {
	const m, eps = 8, 2
	g := gen.FFT(3, 80) // 8-point FFT butterfly: 32 tasks, 48 edges
	rng := rand.New(rand.NewSource(3))
	plat := platform.NewRandom(rng, m, 0.5, 1.0)
	exec := platform.GenExecForGranularity(rng, g, plat, 1.5, platform.DefaultHeterogeneity)
	p := &sched.Problem{G: g, Plat: plat, Exec: exec, Model: sched.OnePort, Policy: timeline.Append}

	s, err := core.Schedule(p, eps, rng)
	if err != nil {
		log.Fatal(err)
	}
	lb, _ := sim.LowerBound(s)
	ub, _ := sim.UpperBound(s)
	fmt.Printf("FFT(8): %d tasks, eps=%d, latency %.1f, upper bound %.1f, %d messages\n\n",
		g.NumTasks(), eps, lb, ub, s.MessageCount())

	worst, best := 0.0, math.Inf(1)
	faster := 0
	total := 0
	for a := 0; a < m; a++ {
		for b := a + 1; b < m; b++ {
			lat, err := sim.CrashLatency(s, map[int]bool{a: true, b: true})
			if err != nil {
				log.Fatalf("crashing P%d+P%d lost a task — fault tolerance violated: %v", a, b, err)
			}
			total++
			if lat > worst {
				worst = lat
			}
			if lat < best {
				best = lat
			}
			if lat < lb {
				faster++
			}
		}
	}
	fmt.Printf("all %d double-crash scenarios survived\n", total)
	fmt.Printf("latency across scenarios: best %.1f, worst %.1f (0-crash %.1f)\n", best, worst, lb)
	fmt.Printf("%d scenarios finished EARLIER than the failure-free replay —\n", faster)
	fmt.Println("dead processors stop sending, so surviving messages clear the ports sooner")
	fmt.Println("(the effect discussed below Figure 2 in the paper).")

	// Stochastic section: exponential lifetimes at a few MTBF levels.
	// With timed semantics more than eps crashes need not lose a task —
	// work finished before a crash survives — so the Monte-Carlo
	// unreliability stays well below the naive >2-crashes probability.
	fmt.Println()
	rep, err := sim.NewReplayer(s)
	if err != nil {
		log.Fatal(err)
	}
	const samples = 2000
	for _, mult := range []float64{2, 8, 32} {
		model := &failure.Exponential{MTBF: failure.UniformMTBF(rng, m, 0.75*mult*lb, 1.25*mult*lb)}
		lost, latSum, survived := 0, 0.0, 0
		scratch := map[int]float64{}
		for i := 0; i < samples; i++ {
			lat, err := rep.CrashLatencyAt(model.Sample(rng, scratch))
			switch {
			case errors.Is(err, sim.ErrTaskLost):
				lost++
			case err != nil:
				log.Fatal(err)
			default:
				survived++
				latSum += lat
			}
		}
		meanLat := "-"
		if survived > 0 {
			meanLat = fmt.Sprintf("%.1f", latSum/float64(survived))
		}
		fmt.Printf("exponential MTBF ~%gx latency: unreliability %.3f, expected latency %s over %d survivors\n",
			mult, float64(lost)/samples, meanLat, survived)
	}
}
