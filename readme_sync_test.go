package caft

import (
	"fmt"
	"os"
	"regexp"
	"strings"
	"testing"

	"caft/internal/analysis/passes"
	"caft/internal/sched"
)

// README.md's Serving section enumerates the schedulers caftd accepts.
// That list is prose, so nothing forces it to track the registry — this
// test does. Importing the root package pulls in every scheduler the
// facade re-exports, so sched.Names() here is the full registry, and a
// scheduler added without a README mention (or a README mention without
// a registration) fails the build gate rather than shipping stale docs.
func TestREADMESchedulerList(t *testing.T) {
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	names := sched.Names()
	quoted := make([]string, len(names))
	for i, n := range names {
		quoted[i] = "`" + n + "`"
	}
	// Matching the joined list verbatim catches drift in both
	// directions: a registered scheduler missing from the README breaks
	// the suffix, and a stale README name breaks the run of separators.
	want := strings.Join(quoted, ", ")
	if !strings.Contains(string(readme), want) {
		t.Fatalf("README.md does not contain the registry's scheduler list %s — regenerate the Serving section from sched.Names()", want)
	}
}

// README's developer section tabulates caftvet's analyzers. The rows
// are pinned to passes.All() — the same slice `caftvet -list` prints
// and both checker modes run — so an analyzer added, renamed, or
// redocumented without a README row (or a README row surviving its
// analyzer) fails here instead of shipping stale docs.
func TestREADMEAnalyzerTable(t *testing.T) {
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	all := passes.All()
	var rows []string
	for _, a := range all {
		rows = append(rows, fmt.Sprintf("| `%s` | %s |", a.Name, a.Doc))
	}
	// The rows must appear as one contiguous block in registry order,
	// so ordering drift is also caught.
	block := strings.Join(rows, "\n")
	if !strings.Contains(string(readme), block) {
		t.Fatalf("README.md's analyzer table does not match caftvet -list; want block:\n%s", block)
	}
	// And no extra analyzer-shaped rows may survive a removal: every
	// table row whose first cell is a backquoted name and whose second
	// cell starts with "flags " must be one of the pinned rows.
	got := regexp.MustCompile("(?m)^\\| `[a-z]+` \\| flags .*\\|$").FindAllString(string(readme), -1)
	if len(got) != len(all) {
		t.Fatalf("README.md has %d analyzer-table rows, registry has %d:\n%s", len(got), len(all), strings.Join(got, "\n"))
	}
}

// The package map must have a row for every scheduler subpackage the
// facade links in, so the table can't silently lag the tree.
func TestREADMEPackageMapSchedulers(t *testing.T) {
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range []string{"heft", "hoft", "ftsa", "ftbar", "all"} {
		row := fmt.Sprintf("| `internal/sched/%s` |", pkg)
		if !strings.Contains(string(readme), row) {
			t.Fatalf("README package map is missing a row for internal/sched/%s", pkg)
		}
	}
}
