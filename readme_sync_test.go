package caft

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"caft/internal/sched"
)

// README.md's Serving section enumerates the schedulers caftd accepts.
// That list is prose, so nothing forces it to track the registry — this
// test does. Importing the root package pulls in every scheduler the
// facade re-exports, so sched.Names() here is the full registry, and a
// scheduler added without a README mention (or a README mention without
// a registration) fails the build gate rather than shipping stale docs.
func TestREADMESchedulerList(t *testing.T) {
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	names := sched.Names()
	quoted := make([]string, len(names))
	for i, n := range names {
		quoted[i] = "`" + n + "`"
	}
	// Matching the joined list verbatim catches drift in both
	// directions: a registered scheduler missing from the README breaks
	// the suffix, and a stale README name breaks the run of separators.
	want := strings.Join(quoted, ", ")
	if !strings.Contains(string(readme), want) {
		t.Fatalf("README.md does not contain the registry's scheduler list %s — regenerate the Serving section from sched.Names()", want)
	}
}

// The package map must have a row for every scheduler subpackage the
// facade links in, so the table can't silently lag the tree.
func TestREADMEPackageMapSchedulers(t *testing.T) {
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range []string{"heft", "hoft", "ftsa", "ftbar", "all"} {
		row := fmt.Sprintf("| `internal/sched/%s` |", pkg)
		if !strings.Contains(string(readme), row) {
			t.Fatalf("README package map is missing a row for internal/sched/%s", pkg)
		}
	}
}
