// Package analysistest runs an analyzer over a testdata package and
// checks its diagnostics against expectations written in the source,
// following the golang.org/x/tools/go/analysis/analysistest
// convention:
//
//	for k := range m { // want `iteration over map`
//
// A comment of the form `// want "rx" "rx" ...` (double-quoted or
// backquoted Go strings) expects exactly one diagnostic per pattern on
// the comment's line, each matching its regexp. Diagnostics without a
// matching expectation, and expectations without a matching
// diagnostic, fail the test.
//
// Test packages live under testdata/src/<pkg> next to the analyzer, a
// layout the go tool skips during ./... expansion but happily lists
// (and compiles) when named explicitly, which is how the loader picks
// them up.
package analysistest

import (
	"go/ast"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"caft/internal/analysis"
)

var wantRE = regexp.MustCompile("(?:\"(?:[^\"\\\\]|\\\\.)*\")|(?:`[^`]*`)")

type expectation struct {
	file    string
	line    int
	rx      *regexp.Regexp
	matched bool
}

// Run loads the pkgdirs (paths relative to the test's working
// directory, e.g. "testdata/src/a"), applies the analyzer, and reports
// any mismatch between produced diagnostics and // want expectations.
// Passing several directories loads them as one world — the directive
// index spans all of them, which is how cross-package annotation cases
// are exercised.
func Run(t *testing.T, a *analysis.Analyzer, pkgdirs ...string) {
	t.Helper()
	patterns := make([]string, len(pkgdirs))
	for i, d := range pkgdirs {
		patterns[i] = "./" + d
	}
	pkgs, err := analysis.Load("", patterns...)
	if err != nil {
		t.Fatalf("loading %v: %v", pkgdirs, err)
	}
	findings, err := analysis.Run(pkgs, []*analysis.Analyzer{a}, nil)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	var wants []*expectation
	for _, p := range pkgs {
		for _, f := range p.Syntax {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					wants = append(wants, parseWants(t, p, c)...)
				}
			}
		}
	}

	for _, f := range findings {
		if !consume(wants, f) {
			t.Errorf("%s: unexpected diagnostic: %s", f.Posn, f.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.rx)
		}
	}
}

// parseWants extracts the expectations of one comment.
func parseWants(t *testing.T, p *analysis.Package, c *ast.Comment) []*expectation {
	t.Helper()
	text := c.Text
	i := strings.Index(text, "// want ")
	if i < 0 {
		return nil
	}
	posn := p.Fset.Position(c.Pos())
	var out []*expectation
	for _, q := range wantRE.FindAllString(text[i+len("// want "):], -1) {
		var pat string
		if q[0] == '`' {
			pat = q[1 : len(q)-1]
		} else {
			var err error
			pat, err = strconv.Unquote(q)
			if err != nil {
				t.Errorf("%s: bad want pattern %s: %v", posn, q, err)
				continue
			}
		}
		rx, err := regexp.Compile(pat)
		if err != nil {
			t.Errorf("%s: bad want regexp %q: %v", posn, pat, err)
			continue
		}
		out = append(out, &expectation{file: posn.Filename, line: posn.Line, rx: rx})
	}
	if len(out) == 0 {
		t.Errorf("%s: want comment with no patterns: %q", posn, text)
	}
	return out
}

func consume(wants []*expectation, f analysis.Finding) bool {
	for _, w := range wants {
		if !w.matched && w.file == f.Posn.Filename && w.line == f.Posn.Line && w.rx.MatchString(f.Message) {
			w.matched = true
			return true
		}
	}
	return false
}
