package analysis

import (
	"go/ast"
	"go/types"
	"testing"
)

// TestLoadModulePackages exercises the full loader path: source
// type-checking of matched packages and export-data import of std and
// module dependencies (internal/service pulls in net/http and its
// vendored std dependencies, plus module packages like internal/expt
// that are themselves matched — the mixed world that breaks naive
// source/export hybrids).
func TestLoadModulePackages(t *testing.T) {
	pkgs, err := Load("", "caft/internal/timeline", "caft/internal/sched", "caft/internal/service")
	if err != nil {
		t.Fatal(err)
	}
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.PkgPath] = p
	}
	for _, want := range []string{"caft/internal/timeline", "caft/internal/sched", "caft/internal/service"} {
		p := byPath[want]
		if p == nil {
			t.Fatalf("package %s not loaded (got %d packages)", want, len(pkgs))
		}
		if len(p.Syntax) == 0 || p.Types == nil || p.TypesInfo == nil {
			t.Fatalf("package %s loaded without syntax or types", want)
		}
		for _, f := range p.Syntax {
			if f.Comments == nil {
				t.Fatalf("package %s parsed without comments; directives would be invisible", want)
			}
			break
		}
	}

	// Within one pass the dependency view must be consistent: the
	// timeline.Timeline object sched resolves through its import must
	// be the one the shared export-data importer caches, so every
	// other matched package importing timeline agrees with it.
	var schedTL, svcTL *types.Package
	for _, imp := range depClosure(byPath["caft/internal/sched"].Types) {
		if imp.Path() == "caft/internal/timeline" {
			schedTL = imp
		}
	}
	for _, imp := range depClosure(byPath["caft/internal/service"].Types) {
		if imp.Path() == "caft/internal/timeline" {
			svcTL = imp
		}
	}
	if schedTL == nil || svcTL == nil {
		t.Fatal("timeline not found in the import graphs of sched and service")
	}
	if schedTL != svcTL {
		t.Fatal("sched and service resolve different timeline packages: shared importer cache broken")
	}

	// Uses/Selections must be populated for the analyzers.
	sched := byPath["caft/internal/sched"]
	var methods int
	for _, f := range sched.Syntax {
		ast.Inspect(f, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectorExpr); ok {
				if s, ok := sched.TypesInfo.Selections[sel]; ok && s.Kind() == types.MethodVal {
					methods++
				}
			}
			return true
		})
	}
	if methods == 0 {
		t.Fatal("no method selections recorded; TypesInfo is not usable")
	}
}

// depClosure returns the transitive imports of p.
func depClosure(p *types.Package) []*types.Package {
	seen := map[*types.Package]bool{}
	var out []*types.Package
	var walk func(*types.Package)
	walk = func(q *types.Package) {
		for _, imp := range q.Imports() {
			if !seen[imp] {
				seen[imp] = true
				out = append(out, imp)
				walk(imp)
			}
		}
	}
	walk(p)
	return out
}
