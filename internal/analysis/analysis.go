// Package analysis is a deliberately small, dependency-free core for
// writing static analyzers over this module, shaped after
// golang.org/x/tools/go/analysis so that analyzers written against it
// port mechanically if the real framework ever becomes available.
//
// Why not x/tools itself: this repository builds offline against the
// standard library only. The three pieces x/tools would provide —
// package loading, the Analyzer/Pass contract, and the analysistest
// harness — are reimplemented here on top of `go list -export` (see
// load.go), which the toolchain itself guarantees to be present.
//
// The contract mirrors x/tools where it matters: an Analyzer is a
// named Run function over a Pass; a Pass exposes the package's syntax,
// type information and a Report sink; diagnostics carry positions into
// the shared FileSet. Two deliberate deviations: passes get a
// repo-specific Directives index (our substitute for the Facts
// mechanism, see directive.go), and there is no analyzer dependency
// graph — the four caftvet analyzers are independent.
//
//caft:deterministic
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -run filters.
	// It must be a valid Go identifier.
	Name string

	// Doc is the one-paragraph description shown by caftvet -list.
	Doc string

	// Run applies the analyzer to one package. It reports findings
	// through pass.Report and returns an optional result (unused by
	// the caftvet driver, kept for x/tools API parity).
	Run func(*Pass) (any, error)
}

func (a *Analyzer) String() string { return a.Name }

// A Pass provides one analyzer run with everything it may inspect
// about a single package. Analyzers must treat all fields as
// read-only.
type Pass struct {
	Analyzer *Analyzer

	// Fset is the file set shared by every package of the load.
	Fset *token.FileSet

	// Files holds the parsed non-test Go files of the package, with
	// comments.
	Files []*ast.File

	// Pkg and TypesInfo are the type-checked package and its
	// expression/object tables (Types, Defs, Uses, Selections,
	// Implicits, Scopes and Instances are populated).
	Pkg       *types.Package
	TypesInfo *types.Info

	// Directives indexes every //caft: directive visible to this run:
	// the analyzed package's own directives plus the scratch-method
	// annotations of every other package loaded alongside it (or, in
	// vettool mode, imported via facts). See directive.go.
	Directives *Directives

	// Report delivers one diagnostic. It may be called concurrently
	// only from a single goroutine (analyzers here are sequential).
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding, positioned within the pass's FileSet.
type Diagnostic struct {
	Pos     token.Pos
	End     token.Pos // optional
	Message string
}
