package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"runtime"
)

// A Package is one loaded, parsed and type-checked package of this
// module, ready to be handed to analyzers.
type Package struct {
	PkgPath   string
	Name      string
	Dir       string
	GoFiles   []string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPkg is the subset of `go list -json` output the loader reads.
type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	ImportMap  map[string]string
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load lists patterns with `go list -export -deps -json`, then parses
// and type-checks every matched (non-dependency) package from source.
// Dependencies — the standard library and module packages alike — are
// imported from compiler export data, so no network or pre-installed
// tooling beyond the go command itself is needed. Every dependency of
// every matched package resolves through one shared export-data
// importer: a matched package that is also imported by another matched
// package exists twice (once source-checked for its own pass, once
// from export data for its importers), but each pass sees one
// internally consistent world. Cross-pass object identity is
// deliberately not promised — the directive index keys scratch
// annotations by symbol path, not object pointer, for exactly this
// reason.
//
// Test files are never loaded: GoFiles excludes _test.go, which is
// also how caftvet exempts tests from the determinism analyzers.
//
// dir is the directory to run go list in ("" = current directory).
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,Export,ImportMap,DepOnly,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	var listed []*listedPkg
	dec := json.NewDecoder(&stdout)
	for {
		p := new(listedPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		listed = append(listed, p)
	}

	fset := token.NewFileSet()
	imp := &moduleImporter{
		exports: make(map[string]string),
	}
	imp.gc = importer.ForCompiler(fset, "gc", imp.lookup)
	for _, p := range listed {
		if p.Export != "" {
			imp.exports[p.ImportPath] = p.Export
		}
	}

	var pkgs []*Package
	for _, p := range listed {
		if p.DepOnly {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Incomplete {
			return nil, fmt.Errorf("go list: %s: incomplete package", p.ImportPath)
		}
		pkg, err := check(fset, imp, p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// check parses and type-checks one listed package from source.
func check(fset *token.FileSet, imp *moduleImporter, p *listedPkg) (*Package, error) {
	files := make([]*ast.File, 0, len(p.GoFiles))
	names := make([]string, 0, len(p.GoFiles))
	for _, f := range p.GoFiles {
		name := p.Dir + string(os.PathSeparator) + f
		file, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", name, err)
		}
		files = append(files, file)
		names = append(names, name)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	imp.importMap = p.ImportMap
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", p.ImportPath, err)
	}
	return &Package{
		PkgPath:   p.ImportPath,
		Name:      p.Name,
		Dir:       p.Dir,
		GoFiles:   names,
		Fset:      fset,
		Syntax:    files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// moduleImporter resolves every import from compiler export data
// located by `go list -export`. The gc importer caches by path, so all
// matched packages of one load share a single consistent view of
// their dependency graph.
type moduleImporter struct {
	exports   map[string]string // import path -> export data file
	importMap map[string]string // current package's vendor/ImportMap remapping
	gc        types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if r, ok := m.importMap[path]; ok {
		path = r
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return m.gc.Import(path)
}

// lookup feeds the stdlib gc importer the export data files recorded
// by go list.
func (m *moduleImporter) lookup(path string) (io.ReadCloser, error) {
	f, ok := m.exports[path]
	if !ok {
		return nil, fmt.Errorf("no export data for %q (not listed as a dependency)", path)
	}
	return os.Open(f)
}
