// Command cmdmain proves package main is exempt: binaries own the
// process boundary, so wall-clock timing and environment reads there
// are deliberate even under //caft:deterministic.
//
//caft:deterministic
package main

import (
	"fmt"
	"os"
	"time"
)

func main() {
	start := time.Now()
	fmt.Fprintln(os.Stderr, "mode:", os.Getenv("CAFT_MODE"), "elapsed:", time.Since(start))
}
