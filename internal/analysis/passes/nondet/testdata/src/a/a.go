// Package a exercises nondet: ambient time, global rand, env reads
// and scheduler geometry in a deterministic package.
//
//caft:deterministic
package a

import (
	cryptorand "crypto/rand"
	"math/rand"
	randv2 "math/rand/v2"
	"os"
	"runtime"
	"time"
)

func Clock() (int64, float64) {
	t := time.Now()    // want `call to time\.Now in deterministic package .* reads the wall clock`
	d := time.Since(t) // want `call to time\.Since in deterministic package .* reads the wall clock`
	return t.Unix(), d.Seconds()
}

func Timers() {
	<-time.After(time.Second)        // want `call to time\.After .* starts a wall-clock timer`
	tm := time.NewTimer(time.Second) // want `call to time\.NewTimer .* starts a wall-clock timer`
	tm.Stop()
	tk := time.NewTicker(time.Second) // want `call to time\.NewTicker .* starts a wall-clock ticker`
	tk.Stop()
}

func Entropy() []byte {
	var buf [16]byte
	cryptorand.Read(buf[:]) // want `call to crypto/rand\.Read .* draws from the system entropy pool`
	return buf[:]
}

func GlobalRand() int {
	return rand.Intn(10) // want `call to math/rand\.Intn .* draws from the process-global generator`
}

func GlobalRandV2() uint64 {
	return randv2.Uint64() // want `call to math/rand/v2\.Uint64 .* draws from the process-global generator`
}

// Methods on an explicitly seeded generator are the sanctioned path.
func SeededRand() int {
	rng := rand.New(rand.NewSource(1))
	return rng.Intn(10)
}

func Env() string {
	return os.Getenv("CAFT_MODE") // want `call to os\.Getenv .* depend on the process environment`
}

func Workers() int {
	return runtime.GOMAXPROCS(0) // want `call to runtime\.GOMAXPROCS .* varies with the machine`
}

// Suppressed: the pool size cannot reach any output because results
// merge in fixed order.
func PoolSize() int {
	//caft:nondet-ok pool size only bounds concurrency; merge order is fixed
	return runtime.GOMAXPROCS(0)
}

func PoolSizeNoReason() int {
	//caft:nondet-ok
	return runtime.NumCPU() // want `//caft:nondet-ok on this call needs a reason`
}

func Stale() int {
	//caft:nondet-ok nothing nondeterministic left // want `stale //caft:nondet-ok`
	return 7
}
