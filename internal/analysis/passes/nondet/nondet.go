// Package nondet flags reads of ambient nondeterministic state —
// wall clocks, the global math/rand generator, the process
// environment, and scheduler geometry — inside packages marked
// //caft:deterministic.
//
// The repo's reproducibility story is that every randomized quantity
// flows from an explicitly seeded *rand.Rand and every timestamp from
// the schedule itself, so that figures, golden TSVs and caftd
// response bytes are identical across runs, machines and -workers
// settings. An undisciplined time.Now or rand.Intn deep in a library
// package breaks that silently; this analyzer makes it loud.
//
// Flagged in deterministic packages:
//
//   - time.Now, time.Since, time.Until — ambient clock reads — and
//     time.After, time.Tick, time.NewTimer, time.NewTicker, which
//     start wall-clock timers (simulated time comes from the
//     schedule, never from a timer firing);
//   - crypto/rand.Read, Int, Prime, Text — the system entropy pool
//     (os.ReadDir ordering, by contrast, is sorted and fine);
//   - package-level math/rand and math/rand/v2 functions (rand.Intn,
//     rand.Shuffle, ...) — the process-global generator; methods on
//     an explicit *rand.Rand are the sanctioned alternative and are
//     not flagged (constructors like rand.New, rand.NewSource are
//     likewise fine);
//   - os.Getenv, os.LookupEnv, os.Environ — environment-dependent
//     branching;
//   - runtime.NumCPU, runtime.GOMAXPROCS, runtime.NumGoroutine —
//     values that vary with the machine or the moment, the classic
//     source of worker-count-dependent output.
//
// Test files are outside the analysis (GoFiles never includes them)
// and package main is exempt: binaries own the process boundary, and
// wiring wall-clock timing to stderr there is deliberate. A library
// call that is genuinely benign — a worker-pool size that cannot
// reach any output because results merge in fixed order — carries
// //caft:nondet-ok <reason> on its line.
package nondet

import (
	"go/ast"
	"go/types"
	"strings"

	"caft/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "nondet",
	Doc:  "flags ambient time/rand/env/scheduler reads in //caft:deterministic packages",
	Run:  run,
}

// badCalls maps package path -> function name -> hazard description.
var badCalls = map[string]map[string]string{
	"time": {
		"Now":       "reads the wall clock",
		"Since":     "reads the wall clock",
		"Until":     "reads the wall clock",
		"After":     "starts a wall-clock timer",
		"Tick":      "starts a wall-clock ticker",
		"NewTimer":  "starts a wall-clock timer",
		"NewTicker": "starts a wall-clock ticker",
	},
	"crypto/rand": {
		"Read":  "draws from the system entropy pool",
		"Int":   "draws from the system entropy pool",
		"Prime": "draws from the system entropy pool",
		"Text":  "draws from the system entropy pool",
	},
	"os": {
		"Getenv":    "makes behavior depend on the process environment",
		"LookupEnv": "makes behavior depend on the process environment",
		"Environ":   "makes behavior depend on the process environment",
	},
	"runtime": {
		"NumCPU":       "varies with the machine",
		"GOMAXPROCS":   "varies with the machine and runtime settings",
		"NumGoroutine": "varies with scheduling",
	},
}

func run(pass *analysis.Pass) (any, error) {
	det := pass.Directives.Deterministic(pass.Pkg.Path()) && pass.Pkg.Name() != "main"
	for _, f := range pass.Files {
		if det {
			checkFile(pass, f)
		}
		for _, ld := range pass.Directives.UnusedIn(pass.Fset, f, "nondet-ok") {
			pass.Reportf(ld.Pos, "stale //caft:nondet-ok: no suppressed nondeterministic call on this or the next line (is the package marked //caft:deterministic?)")
		}
	}
	return nil, nil
}

func checkFile(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := callee(pass, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() != nil {
			return true // methods (e.g. on a seeded *rand.Rand) are fine
		}
		hazard, ok := hazardOf(fn)
		if !ok {
			return true
		}
		if ld, ok := pass.Directives.SuppressedAt(pass.Fset, call.Pos(), "nondet-ok"); ok {
			if ld.Reason == "" {
				pass.Reportf(call.Pos(), "//caft:nondet-ok on this call needs a reason: say why the value cannot reach an output")
			}
			return true
		}
		pass.Reportf(call.Pos(), "call to %s.%s in deterministic package %s %s; thread the value in explicitly (seeded *rand.Rand, caller-supplied clock or config) or annotate with //caft:nondet-ok <reason>", fn.Pkg().Path(), fn.Name(), pass.Pkg.Path(), hazard)
		return true
	})
}

func hazardOf(fn *types.Func) (string, bool) {
	path := fn.Pkg().Path()
	if path == "math/rand" || path == "math/rand/v2" {
		// Constructors hand out explicitly seeded state; everything
		// else drives the process-global generator.
		if strings.HasPrefix(fn.Name(), "New") {
			return "", false
		}
		return "draws from the process-global generator", true
	}
	if m := badCalls[path]; m != nil {
		if hazard, ok := m[fn.Name()]; ok {
			return hazard, true
		}
	}
	return "", false
}

// callee resolves the called function or method, if statically known.
func callee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
