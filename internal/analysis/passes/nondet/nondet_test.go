package nondet_test

import (
	"testing"

	"caft/internal/analysis/analysistest"
	"caft/internal/analysis/passes/nondet"
)

func TestNondet(t *testing.T) {
	analysistest.Run(t, nondet.Analyzer, "testdata/src/a")
}

// TestMainExempt: a //caft:deterministic package main produces no
// findings — binaries own the process boundary.
func TestMainExempt(t *testing.T) {
	analysistest.Run(t, nondet.Analyzer, "testdata/src/cmdmain")
}
