// Package maporder flags range statements over maps inside packages
// marked //caft:deterministic.
//
// Go randomizes map iteration order, so any map range on a path that
// feeds figures, golden TSVs, schedule bytes or caftd responses is a
// latent reproducibility bug: it works until the day the hash seed
// disagrees. In a deterministic package every map iteration must
// either be restructured over sorted keys, or carry an explicit
// //caft:unordered-ok <reason> stating why order cannot leak into any
// output (commutative reduction, set membership, ...).
//
// One idiom is recognized as inherently safe and exempted without an
// annotation: the canonical key-collection loop
//
//	for k := range m {
//		keys = append(keys, k)
//	}
//
// whose whole point is to feed a sort. Anything more elaborate — even
// if it happens to be commutative — needs the annotation, because the
// analyzer cannot prove commutativity and silent exemptions are how
// determinism regressions happen.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"

	"caft/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "flags unordered map iteration in //caft:deterministic packages",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	det := pass.Directives.Deterministic(pass.Pkg.Path())
	for _, f := range pass.Files {
		if det {
			checkFile(pass, f)
		}
		// A suppression nothing consulted is stale: either the loop
		// below it disappeared, or the package lost (or never had)
		// its //caft:deterministic marking. Either way it documents
		// an exemption that is not being granted.
		for _, ld := range pass.Directives.UnusedIn(pass.Fset, f, "unordered-ok") {
			pass.Reportf(ld.Pos, "stale //caft:unordered-ok: no suppressed map iteration on this or the next line (is the package marked //caft:deterministic?)")
		}
	}
	return nil, nil
}

func checkFile(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		// `for range m` (and `for _ = range m`) binds neither key nor
		// value: the body runs len(m) times but observes no order.
		if rs.Key == nil {
			return true
		}
		if k, ok := rs.Key.(*ast.Ident); ok && k.Name == "_" && rs.Value == nil {
			return true
		}
		if ld, ok := pass.Directives.SuppressedAt(pass.Fset, rs.Pos(), "unordered-ok"); ok {
			if ld.Reason == "" {
				pass.Reportf(rs.Pos(), "//caft:unordered-ok on this loop needs a reason: say why iteration order cannot reach an output")
			}
			return true
		}
		if isKeyCollect(pass, rs) {
			return true
		}
		pass.Reportf(rs.Pos(), "iteration over map %s in deterministic package %s: order is randomized; range over sorted keys or annotate the loop with //caft:unordered-ok <reason>", types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)), pass.Pkg.Path())
		return true
	})
}

// isKeyCollect recognizes `for k := range m { keys = append(keys, k) }`
// — the key-collection prologue of sorted iteration, whose body cannot
// observe order.
func isKeyCollect(pass *analysis.Pass, rs *ast.RangeStmt) bool {
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" || rs.Value != nil {
		return false
	}
	if len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	lhs, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 || call.Ellipsis != token.NoPos {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	if obj := pass.TypesInfo.Uses[fn]; obj == nil || obj.Parent() != types.Universe {
		return false
	}
	base, ok := call.Args[0].(*ast.Ident)
	if !ok || base.Name != lhs.Name {
		return false
	}
	arg, ok := call.Args[1].(*ast.Ident)
	return ok && arg.Name == key.Name
}
