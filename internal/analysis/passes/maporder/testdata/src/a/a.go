// Package a exercises maporder: deterministic package, every flavor
// of map range.
//
//caft:deterministic
package a

import "sort"

var counts = map[string]int{"x": 1, "y": 2}

// Flagged: order leaks straight into the output slice.
func Leaky() []string {
	var out []string
	for k, v := range counts { // want `iteration over map map\[string\]int in deterministic package .*testdata/src/a: order is randomized`
		_ = v
		out = append(out, k+"!")
	}
	return out
}

// Exempt without annotation: the canonical key-collection loop.
func Sorted() []string {
	var keys []string
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Exempt: no key or value bound, so no order observed.
func Count() int {
	n := 0
	for range counts {
		n++
	}
	return n
}

// Suppressed with a reason: commutative reduction.
func Sum() int {
	n := 0
	//caft:unordered-ok sum is commutative, order cannot reach the result
	for _, v := range counts {
		n += v
	}
	return n
}

// Suppressed on the same line.
func SumInline() int {
	n := 0
	for _, v := range counts { //caft:unordered-ok commutative sum
		n += v
	}
	return n
}

// A suppression without a reason is itself a finding, anchored to the
// loop it covers.
func SumNoReason() int {
	n := 0
	//caft:unordered-ok
	for _, v := range counts { // want `//caft:unordered-ok on this loop needs a reason`
		n += v
	}
	return n
}

// A suppression with no map range under it is stale.
func Stale() int {
	//caft:unordered-ok nothing here anymore // want `stale //caft:unordered-ok`
	return len(counts)
}

// Ranging a slice is never flagged.
func SliceOK(xs []int) int {
	n := 0
	for _, v := range xs {
		n += v
	}
	return n
}
