// Package plain has no //caft:deterministic directive: map iteration
// is not flagged, and any suppression directive is stale by
// definition.
package plain

var counts = map[string]int{"x": 1}

func Leaky() []string {
	var out []string
	for k := range counts {
		out = append(out, k, k)
	}
	return out
}

func Suppressed() int {
	n := 0
	//caft:unordered-ok pointless here // want `stale //caft:unordered-ok`
	for _, v := range counts {
		n += v
	}
	return n
}
