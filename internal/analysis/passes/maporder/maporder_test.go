package maporder_test

import (
	"testing"

	"caft/internal/analysis/analysistest"
	"caft/internal/analysis/passes/maporder"
)

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, maporder.Analyzer, "testdata/src/a")
}

// TestNonDeterministicPackageSilent loads the same shapes without the
// package directive: only the stale-suppression diagnostics may fire.
func TestNonDeterministicPackageSilent(t *testing.T) {
	analysistest.Run(t, maporder.Analyzer, "testdata/src/plain")
}
