// Package errsentinel flags == and != comparisons (and switch cases)
// against exported error sentinels such as sim.ErrTaskLost or
// dag.ErrCycle.
//
// Sentinels travel: the service layer wraps scheduling errors with
// request context, the experiment pool wraps replay errors with the
// work unit that produced them, and a future multi-node caftd will
// wrap them again at the RPC boundary. A direct comparison is correct
// only until the first wrap; errors.Is is correct forever. Unlike
// maporder and nondet this check is not gated on
// //caft:deterministic and has no suppression directive — there is no
// situation in this module where == against a sentinel beats
// errors.Is — but it is annotation-driven in the same spirit: any
// package-level exported `var Err...` of an error type is treated as
// a sentinel, so new sentinels are covered the day they are declared.
//
// Comparisons with nil stay untouched: `err != nil` is the idiomatic
// presence check, not a sentinel test.
package errsentinel

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"caft/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "errsentinel",
	Doc:  "flags ==/!= comparisons against exported Err... sentinels; use errors.Is",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkBinary(pass, n)
			case *ast.SwitchStmt:
				checkSwitch(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

func checkBinary(pass *analysis.Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	for _, pair := range [2][2]ast.Expr{{be.X, be.Y}, {be.Y, be.X}} {
		sent, other := pair[0], pair[1]
		name, ok := sentinel(pass, sent)
		if !ok || isNil(pass, other) {
			continue
		}
		op := "errors.Is(err, " + name + ")"
		if be.Op == token.NEQ {
			op = "!" + op
		}
		pass.Reportf(be.Pos(), "comparison with sentinel %s breaks when the error is wrapped; use %s", name, op)
		return
	}
}

func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		// `switch { case err == ErrX: }` — the binary comparisons
		// inside are caught by checkBinary.
		return
	}
	tv, ok := pass.TypesInfo.Types[sw.Tag]
	if !ok || !isErrorish(tv.Type) {
		return
	}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if name, ok := sentinel(pass, e); ok {
				pass.Reportf(e.Pos(), "switch case compares the error against sentinel %s, which breaks when it is wrapped; use if/else with errors.Is(err, %s)", name, name)
			}
		}
	}
}

// sentinel reports whether e denotes an exported package-level
// `var Err...` of an error type, returning its name as written.
func sentinel(pass *analysis.Pass, e ast.Expr) (string, bool) {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return "", false
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || !v.Exported() || !strings.HasPrefix(v.Name(), "Err") || len(v.Name()) <= len("Err") {
		return "", false
	}
	if v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return "", false
	}
	if !isErrorish(v.Type()) {
		return "", false
	}
	return exprString(e), true
}

func isErrorish(t types.Type) bool {
	errIface, _ := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return errIface != nil && types.Implements(t, errIface)
}

func isNil(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[ast.Unparen(e)]
	return ok && tv.IsNil()
}

// exprString renders `ErrCycle` or `dag.ErrCycle` as written.
func exprString(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		if p, ok := x.X.(*ast.Ident); ok {
			return p.Name + "." + x.Sel.Name
		}
		return x.Sel.Name
	}
	return ""
}
