// Package b proves sentinels imported from another package are
// caught: the comparison renders qualified, exactly as written.
package b

import "caft/internal/analysis/passes/errsentinel/testdata/src/a"

func Imported(err error) bool {
	return err == a.ErrTaskLost // want `comparison with sentinel a\.ErrTaskLost.*errors\.Is\(err, a\.ErrTaskLost\)`
}
