// Package a exercises errsentinel: direct comparisons and switch
// cases against exported sentinels.
package a

import (
	"errors"
	"fmt"
)

var (
	ErrTaskLost = errors.New("task lost")
	ErrCycle    = errors.New("cycle")
	errInternal = errors.New("internal") // unexported: not a public contract
	NotAnError  = 42
)

func Direct(err error) bool {
	return err == ErrTaskLost // want `comparison with sentinel ErrTaskLost breaks when the error is wrapped; use errors\.Is\(err, ErrTaskLost\)`
}

func Negated(err error) bool {
	return err != ErrCycle // want `use !errors\.Is\(err, ErrCycle\)`
}

func Flipped(err error) bool {
	return ErrTaskLost == err // want `comparison with sentinel ErrTaskLost`
}

func Wrapped(err error) bool {
	// The failure mode the analyzer exists for: this is false for
	// fmt.Errorf("replica 3: %w", ErrTaskLost).
	return errors.Is(err, ErrTaskLost) // the fix, never flagged
}

func NilIsFine(err error) bool {
	return err != nil && err == error(nil)
}

func UnexportedIsFine(err error) bool {
	return err == errInternal
}

func NotErrPrefix(x int) bool {
	return x == NotAnError
}

func Switch(err error) string {
	switch err {
	case nil:
		return "ok"
	case ErrTaskLost: // want `switch case compares the error against sentinel ErrTaskLost.*errors\.Is\(err, ErrTaskLost\)`
		return "lost"
	default:
		return fmt.Sprint(err)
	}
}

func TaglessSwitch(err error) string {
	switch {
	case err == ErrCycle: // want `comparison with sentinel ErrCycle`
		return "cycle"
	}
	return ""
}
