package errsentinel_test

import (
	"testing"

	"caft/internal/analysis/analysistest"
	"caft/internal/analysis/passes/errsentinel"
)

func TestErrSentinel(t *testing.T) {
	analysistest.Run(t, errsentinel.Analyzer, "testdata/src/a")
}

func TestImportedSentinel(t *testing.T) {
	analysistest.Run(t, errsentinel.Analyzer, "testdata/src/b")
}
