// Package passes registers the caftvet analyzer suite.
package passes

import (
	"caft/internal/analysis"
	"caft/internal/analysis/passes/confine"
	"caft/internal/analysis/passes/errsentinel"
	"caft/internal/analysis/passes/maporder"
	"caft/internal/analysis/passes/nondet"
	"caft/internal/analysis/passes/scratchalias"
	"caft/internal/analysis/passes/zeroalloc"
)

// All returns the full suite in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		confine.Analyzer,
		errsentinel.Analyzer,
		maporder.Analyzer,
		nondet.Analyzer,
		scratchalias.Analyzer,
		zeroalloc.Analyzer,
	}
}
