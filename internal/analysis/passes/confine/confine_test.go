package confine_test

import (
	"testing"

	"caft/internal/analysis/analysistest"
	"caft/internal/analysis/passes/confine"
)

func TestConfine(t *testing.T) {
	analysistest.Run(t, confine.Analyzer, "testdata/src/a")
}

// TestConfineCrossPackage loads the annotated library and its misuser
// as one world: the directive is declared in lib, every finding is in
// b.
func TestConfineCrossPackage(t *testing.T) {
	analysistest.Run(t, confine.Analyzer, "testdata/src/lib", "testdata/src/b")
}
