// Package confine enforces the goroutine-confinement contract of
// types marked //caft:confined: their values belong to exactly one
// goroutine for their whole lifetime, with the service worker pool as
// the only sanctioned concurrency boundary.
//
// The library types of this repo (sched.State, sim.Replayer,
// timeline.Timeline, online.Engine) are single-goroutine by design —
// they share scratch buffers, speculation journals and lazily-built
// overlays that data-race the moment two goroutines touch one value.
// That contract used to live in package comments; this analyzer makes
// it mechanical. A value of a confined type (or a pointer, slice,
// array, map or channel of one) must not be:
//
//   - captured by the function literal of a go statement, or passed
//     as an argument to the function a go statement launches;
//   - sent on or received from a channel;
//   - stored in a package-level variable;
//   - held in a field of a type that is not itself //caft:confined
//     (confinement propagates: a wrapper that embeds a *State is
//     confined too, and says so).
//
// Passing a confined value down an ordinary call, returning it, and
// local rebinding are all fine — those stay on the caller's
// goroutine. A deliberate handoff point (the worker pool moving a
// per-goroutine bundle into a worker) carries //caft:share-ok
// <reason> on its line.
//
// Confinement is a type-level fact: in vettool mode the set of
// confined types travels between compilation units in .vetx files, so
// a package that imports sched and shares a State is caught even
// though the directive lives in another unit.
package confine

import (
	"go/ast"
	"go/token"
	"go/types"

	"caft/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "confine",
	Doc:  "flags //caft:confined values crossing a goroutine boundary",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		c := &checker{pass: pass, parents: parentMap(f)}
		c.checkFile(f)
		for _, s := range pass.Directives.StraysIn(pass.Fset, f, "confined") {
			pass.Reportf(s.Pos, "stale //caft:confined: not the doc comment of a type declaration (was the type deleted or renamed?)")
		}
		for _, ld := range pass.Directives.UnusedIn(pass.Fset, f, "share-ok") {
			pass.Reportf(ld.Pos, "stale //caft:share-ok: no suppressed confinement violation on this or the next line")
		}
	}
	return nil, nil
}

type checker struct {
	pass    *analysis.Pass
	parents map[ast.Node]ast.Node
}

func (c *checker) checkFile(f *ast.File) {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if ok && gd.Tok == token.VAR {
			c.checkPkgVars(gd)
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			c.checkGo(n)
		case *ast.SendStmt:
			if obj := c.confinedOf(c.pass.TypesInfo.TypeOf(n.Value)); obj != nil {
				c.report(n.Value.Pos(), "confined %s sent on a channel", label(obj))
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if obj := c.confinedOf(recvType(c.pass, n)); obj != nil {
					c.report(n.Pos(), "confined %s received from a channel", label(obj))
				}
			}
		case *ast.StructType:
			c.checkStruct(n)
		case *ast.AssignStmt:
			c.checkAssign(n)
		}
		return true
	})
}

// report emits one confinement diagnostic unless a //caft:share-ok
// covers the line; a suppression without a reason is itself reported.
func (c *checker) report(pos token.Pos, format string, args ...any) {
	if ld, ok := c.pass.Directives.SuppressedAt(c.pass.Fset, pos, "share-ok"); ok {
		if ld.Reason == "" {
			c.pass.Reportf(pos, "//caft:share-ok needs a reason: say why this handoff is a designed concurrency boundary")
		}
		return
	}
	c.pass.Reportf(pos, format+"; confined values live on one goroutine — a designed handoff carries //caft:share-ok <reason>", args...)
}

// checkGo flags confined values crossing into the goroutine a go
// statement launches: arguments to the launched call, the receiver of
// a launched method, and free variables a launched function literal
// captures.
func (c *checker) checkGo(g *ast.GoStmt) {
	for _, arg := range g.Call.Args {
		if obj := c.confinedOf(c.pass.TypesInfo.TypeOf(arg)); obj != nil {
			c.report(arg.Pos(), "confined %s passed to a go statement", label(obj))
		}
	}
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.SelectorExpr:
		if obj := c.confinedOf(c.pass.TypesInfo.TypeOf(fun.X)); obj != nil {
			c.report(fun.X.Pos(), "method of confined %s launched as a goroutine", label(obj))
		}
	case *ast.FuncLit:
		c.checkGoLit(fun)
	}
}

// checkGoLit flags confined free variables of a go'd function literal.
// Variables bound inside the literal (parameters, locals) stay on the
// new goroutine and are fine; package-level variables are the
// package-variable rule's problem.
func (c *checker) checkGoLit(lit *ast.FuncLit) {
	seen := make(map[*types.Var]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := c.pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || seen[v] || v.Pos() == token.NoPos {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true
		}
		if isPkgLevel(v) || v.IsField() {
			return true
		}
		if obj := c.confinedOf(v.Type()); obj != nil {
			seen[v] = true
			c.report(id.Pos(), "confined %s captured by a go'd function literal", label(obj))
		}
		return true
	})
}

// checkPkgVars flags package-level variables of confined type.
func (c *checker) checkPkgVars(gd *ast.GenDecl) {
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, name := range vs.Names {
			v, ok := c.pass.TypesInfo.Defs[name].(*types.Var)
			if !ok || !isPkgLevel(v) {
				continue
			}
			if obj := c.confinedOf(v.Type()); obj != nil {
				c.report(name.Pos(), "confined %s held in package variable %s", label(obj), name.Name)
			}
		}
	}
}

// checkAssign flags stores of confined values into package-level
// variables whose declared type did not already trip the package-
// variable rule (an `any`-typed global, a variable in another
// package).
func (c *checker) checkAssign(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		var v *types.Var
		switch l := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			v, _ = c.pass.TypesInfo.Uses[l].(*types.Var)
		case *ast.SelectorExpr:
			if sv, ok := c.pass.TypesInfo.Uses[l.Sel].(*types.Var); ok && !sv.IsField() {
				v = sv
			}
		}
		if v == nil || !isPkgLevel(v) {
			continue
		}
		if c.confinedOf(v.Type()) != nil {
			continue // the declaration already carries the diagnostic
		}
		if obj := c.confinedOf(c.pass.TypesInfo.TypeOf(as.Rhs[i])); obj != nil {
			c.report(as.Rhs[i].Pos(), "confined %s stored in package variable %s", label(obj), v.Name())
		}
	}
}

// checkStruct flags fields of confined type inside a struct that is
// not itself confined. Walking the parent chain finds the enclosing
// type declaration; an anonymous struct has none and can never be
// confined.
func (c *checker) checkStruct(st *ast.StructType) {
	for n := ast.Node(st); n != nil; n = c.parents[n] {
		if ts, ok := n.(*ast.TypeSpec); ok {
			if tn, ok := c.pass.TypesInfo.Defs[ts.Name].(*types.TypeName); ok && c.pass.Directives.Confined(tn) {
				return // a confined type may hold confined fields
			}
		}
	}
	for _, field := range st.Fields.List {
		obj := c.confinedOf(c.pass.TypesInfo.TypeOf(field.Type))
		if obj == nil {
			continue
		}
		if name := c.enclosingTypeName(st); name != "" {
			c.report(field.Pos(), "confined %s held in a field of non-confined type %s (mark %s //caft:confined to propagate the contract)", label(obj), name, name)
		} else {
			c.report(field.Pos(), "confined %s held in a field of an anonymous struct, which cannot be marked //caft:confined", label(obj))
		}
	}
}

func (c *checker) enclosingTypeName(st *ast.StructType) string {
	for n := ast.Node(st); n != nil; n = c.parents[n] {
		if ts, ok := n.(*ast.TypeSpec); ok {
			return ts.Name.Name
		}
	}
	return ""
}

// confinedOf unwraps pointers and container element types and reports
// the //caft:confined named type underneath, if any. A named type
// that is not itself confined stops the walk: the tracking is
// first-order on purpose (a named wrapper either carries its own
// directive or owns its own contract).
func (c *checker) confinedOf(t types.Type) *types.TypeName {
	for range 16 {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Map:
			t = u.Elem()
		case *types.Chan:
			t = u.Elem()
		case *types.Named:
			obj := u.Obj()
			if c.pass.Directives.Confined(obj) {
				return obj
			}
			return nil
		default:
			return nil
		}
	}
	return nil
}

// recvType returns the received value's type of a <-ch expression,
// unwrapping the tuple a comma-ok receive records.
func recvType(pass *analysis.Pass, n *ast.UnaryExpr) types.Type {
	t := pass.TypesInfo.TypeOf(n)
	if tup, ok := t.(*types.Tuple); ok && tup.Len() > 0 {
		return tup.At(0).Type()
	}
	return t
}

// label renders sched.State-style names for diagnostics.
func label(obj *types.TypeName) string {
	if obj.Pkg() != nil {
		return obj.Pkg().Name() + "." + obj.Name()
	}
	return obj.Name()
}

func isPkgLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// parentMap records the parent of every node in f.
func parentMap(f *ast.File) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
