// Package lib declares a confined type whose misuse lives in package
// b — catching it proves the confinement fact crosses packages.
package lib

// Engine is single-goroutine.
//
//caft:confined
type Engine struct {
	n int
}

// Step advances the engine.
func (e *Engine) Step() { e.n++ }
