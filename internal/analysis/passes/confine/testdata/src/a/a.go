// Package a exercises every confine rule in one package.
package a

// State is a single-goroutine value.
//
//caft:confined
type State struct {
	n int
}

// Wrapper propagates the contract, so holding a *State is fine here.
//
//caft:confined
type Wrapper struct {
	st *State // ok: confined type may hold confined fields
}

// Holder is not confined and must not hold a State.
type Holder struct {
	st    *State   // want `confined a\.State held in a field of non-confined type Holder`
	many  []*State // want `confined a\.State held in a field of non-confined type Holder`
	clean int
}

// Pool is a designed handoff table.
type Pool struct {
	slots []*State //caft:share-ok workers check slots back in before reuse
}

// Bare is suppressed without a reason, which is its own finding.
type Bare struct {
	//caft:share-ok
	st *State // want `//caft:share-ok needs a reason`
}

var shared *State // want `confined a\.State held in package variable shared`

var anyShared any

func Local() *State {
	st := &State{} // ok: local binding, ordinary calls, returns all stay on-goroutine
	use(st)
	return st
}

func use(*State) {}

func Spawn(st *State) {
	go use(st) // want `confined a\.State passed to a go statement`
	go func() {
		st.n++ // want `confined a\.State captured by a go'd function literal`
	}()
	go func(own *State) {
		own.n++ // ok: the argument finding is the one diagnostic
	}(st) // want `confined a\.State passed to a go statement`
	go st.run() // want `method of confined a\.State launched as a goroutine`
}

func (st *State) run() {}

func SpawnOK(st *State) {
	done := make(chan int)
	go func() {
		done <- 1 // ok: nothing confined crosses
	}()
	<-done
}

func Channels(ch chan *State, st *State) {
	ch <- st  // want `confined a\.State sent on a channel`
	st = <-ch // want `confined a\.State received from a channel`
	_ = st
}

func Handoff(ch chan *State, st *State) {
	ch <- st  //caft:share-ok pool handoff; the worker owns st until it is checked back in
	st = <-ch //caft:share-ok checked back in by the worker that owned it
	_ = st
}

func StoreGlobal(st *State) {
	anyShared = st // want `confined a\.State stored in package variable anyShared`
}

func AnonStruct(st *State) {
	runs := []struct {
		st *State // want `confined a\.State held in a field of an anonymous struct`
	}{{st: st}}
	_ = runs
}

//caft:confined // want `stale //caft:confined: not the doc comment of a type declaration`

func Stale() {
	_ = 1 //caft:share-ok unused // want `stale //caft:share-ok: no suppressed confinement violation`
}
