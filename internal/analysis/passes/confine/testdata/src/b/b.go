// Package b misuses lib.Engine; the //caft:confined directive lives
// in package lib, so every finding here rides on the cross-package
// fact.
package b

import "caft/internal/analysis/passes/confine/testdata/src/lib"

type runner struct {
	eng *lib.Engine // want `confined lib\.Engine held in a field of non-confined type runner`
}

func Spawn(e *lib.Engine) {
	go func() {
		e.Step() // want `confined lib\.Engine captured by a go'd function literal`
	}()
}

func Send(ch chan *lib.Engine, e *lib.Engine) {
	ch <- e // want `confined lib\.Engine sent on a channel`
}

func Handoff(ch chan *lib.Engine, e *lib.Engine) {
	ch <- e //caft:share-ok the worker owns e until the run completes
}
