// Package a exercises every zeroalloc rule in one package.
package a

import (
	"errors"
	"math"
	"sort"
)

var errBad = errors.New("bad")

// Durer abstracts a cost model.
type Durer interface {
	Dur() float64
}

// Ring owns pre-sized scratch.
type Ring struct {
	buf   []int
	mat   [][]int
	times []float64
	d     Durer
	fn    func() int
}

// Reset is the steady-state hot path: every append is rooted in
// receiver scratch.
//
//caft:zeroalloc
func (r *Ring) Reset(src []int) {
	buf := r.buf[:0]
	for _, v := range src {
		buf = append(buf, v) // ok: local bound to field scratch
	}
	r.buf = buf
	r.mat[0] = append(r.mat[0], 1) // ok: field-rooted through an index
}

// Collect appends into caller-owned memory.
//
//caft:zeroalloc
func (r *Ring) Collect(dst []int) []int {
	dst = append(dst, 1) // ok: parameter-rooted
	return dst
}

// Find drives sort.Search with a non-escaping literal.
//
//caft:zeroalloc
func (r *Ring) Find(x float64) int {
	return sort.Search(len(r.times), func(i int) bool { return r.times[i] >= x }) // ok: non-escaping
}

//caft:zeroalloc
func Fine(x int) float64 {
	return math.Abs(float64(x)) // ok: allowlisted package, numeric conversion
}

func helper() int { return 0 }

//caft:zeroalloc
func Bad(r *Ring, n int, s string, e error) {
	x := make([]int, n) // want `make allocates`
	_ = x
	p := new(int) // want `new allocates`
	_ = p
	m := map[int]int{} // want `map literal allocates`
	_ = m
	l := []int{1, 2} // want `slice literal allocates`
	_ = l
	h := &Ring{} // want `&composite literal allocates`
	_ = h
	v := Ring{} // ok: value struct literal stays on the stack
	_ = v
	var out []int
	out = append(out, n) // want `append through a slice not rooted in receiver scratch`
	_ = out
	f := func() int { return n } // want `function literal allocates a closure`
	_ = f
	go Fine(n)      // want `go statement allocates`
	_ = any(n)      // want `conversion to an interface type boxes its operand`
	b := []byte(s)  // want `string conversion copies its operand`
	s2 := string(b) // want `string conversion copies its operand`
	_ = s2
	s3 := s + "!" // want `string concatenation allocates`
	_ = s3
	_ = helper()             // want `call to a\.helper, which is not marked //caft:zeroalloc`
	_ = Fine(n)              // ok: zeroalloc callee
	_ = r.d.Dur()            // want `dynamic call to .*Dur through an interface`
	_ = r.fn()               // want `call through a function value`
	_ = errors.Is(e, errBad) // ok: allowlisted
}

// Lazy builds its overlay once; one directive covers both findings on
// the line.
//
//caft:zeroalloc
func Lazy() *Ring {
	return &Ring{buf: make([]int, 0, 4)} //caft:alloc-ok built once on first use and reused ever after
}

//caft:zeroalloc
func Sloppy() *Ring {
	//caft:alloc-ok
	return &Ring{} // want `//caft:alloc-ok needs a reason`
}

func NotHot() {
	_ = 1 //caft:alloc-ok unused // want `stale //caft:alloc-ok: no suppressed allocation site`
}

//caft:zeroalloc // want `stale //caft:zeroalloc: not the doc comment of a function declaration`

var sink int
