// Package b calls into lib from its own //caft:zeroalloc functions;
// the annotations live in package lib, so every verdict here rides on
// the cross-package fact.
package b

import "caft/internal/analysis/passes/zeroalloc/testdata/src/lib"

//caft:zeroalloc
func Hot(x int) int {
	return lib.Step(x) // ok: callee's annotation imported from lib
}

//caft:zeroalloc
func Bump(c *lib.Counter) {
	c.Inc() // ok: method annotation imported from lib
}

//caft:zeroalloc
func Cold() []int {
	return lib.Build() // want `call to lib\.Build, which is not marked //caft:zeroalloc`
}
