// Package lib declares annotated and unannotated functions whose
// callers live in package b — catching the difference there proves
// the zeroalloc fact crosses packages.
package lib

// Counter is a tiny stateful helper.
type Counter struct {
	n int
}

// Inc is allocation-free.
//
//caft:zeroalloc
func (c *Counter) Inc() { c.n++ }

// Step is allocation-free.
//
//caft:zeroalloc
func Step(x int) int { return x + 1 }

// Build allocates and says nothing about it.
func Build() []int { return make([]int, 4) }
