// Package zeroalloc enforces the allocation-freedom contract of
// functions marked //caft:zeroalloc: every path through the body —
// not just the one a benchmark happens to drive — must be free of
// heap allocation sites.
//
// The pinned hot paths of this repo (Replayer.Replay/ReplayTimed,
// State.ProbeReplica under Insertion, the caftd cache-hit path, the
// online engine's steady-state replay) are guarded dynamically by
// testing.AllocsPerRun pins; those pins exercise one input. This
// analyzer covers the rest statically. Inside an annotated function
// it flags:
//
//   - make and new;
//   - allocating composite literals: slice and map literals, and
//     &T{...} (a plain value struct literal stays on the stack);
//   - append through a slice that is not rooted in receiver scratch —
//     a field, a parameter, or a local bound to one (st.pending[:0]
//     style); anything else has unknown capacity and may grow;
//   - function literals (closure allocation), except literals passed
//     directly to a known non-escaping stdlib function (sort.Search
//     and friends);
//   - conversions that box into an interface or copy between string
//     and []byte, and string concatenation;
//   - go statements;
//   - calls that cannot be proven allocation-free: dynamic calls
//     through interfaces or function values, and static calls to
//     functions neither marked //caft:zeroalloc nor on the small
//     allowlist of known allocation-free stdlib functions (package
//     math, sync, sync/atomic; sort.Search*; time.Now/Since;
//     errors.Is; len/cap/copy and the other non-allocating builtins).
//
// Calls to other //caft:zeroalloc functions are the propagation
// mechanism: sim.Replayer.run may call sched.State.PlaceReplica
// because PlaceReplica carries its own annotation and is checked in
// its own package — and the annotation travels between compilation
// units as a .vetx fact, so the chain holds across packages in both
// caftvet modes.
//
// A deliberate allocation — an error constructed on a rejection path,
// a lazily built overlay that is reused ever after — carries
// //caft:alloc-ok <reason> on its line; one directive covers every
// finding on that line.
package zeroalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"caft/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "zeroalloc",
	Doc:  "flags allocation sites in //caft:zeroalloc functions",
	Run:  run,
}

// allowPkgs are packages whose exported functions and methods are
// known allocation-free wholesale.
var allowPkgs = map[string]bool{
	"math":        true,
	"sync":        true,
	"sync/atomic": true,
}

// allowFuncs are individually known allocation-free stdlib functions.
var allowFuncs = map[string]map[string]bool{
	"sort": {
		"Search":         true,
		"SearchInts":     true,
		"SearchFloat64s": true,
		"SearchStrings":  true,
	},
	"time":   {"Now": true, "Since": true, "Seconds": true},
	"errors": {"Is": true},
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		c := &checker{pass: pass, parents: parentMap(f)}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil && pass.Directives.ZeroallocDecl(pass.Pkg.Path(), fd) {
				c.checkFunc(fd)
			}
		}
		for _, s := range pass.Directives.StraysIn(pass.Fset, f, "zeroalloc") {
			pass.Reportf(s.Pos, "stale //caft:zeroalloc: not the doc comment of a function declaration (was the function deleted or renamed?)")
		}
		for _, ld := range pass.Directives.UnusedIn(pass.Fset, f, "alloc-ok") {
			pass.Reportf(ld.Pos, "stale //caft:alloc-ok: no suppressed allocation site on this or the next line")
		}
	}
	return nil, nil
}

type checker struct {
	pass    *analysis.Pass
	parents map[ast.Node]ast.Node

	// per-function state, reset by checkFunc
	fnLabel  string
	rooted   map[*types.Var]bool       // receiver, parameters, named results
	bindings map[*types.Var][]ast.Expr // local -> every expression assigned to it
	walking  map[*types.Var]bool       // cycle guard for rootedSlice
	exempt   map[*ast.FuncLit]bool     // literals passed to non-escaping stdlib funcs
}

func (c *checker) checkFunc(fd *ast.FuncDecl) {
	c.fnLabel = declLabel(fd)
	c.rooted = make(map[*types.Var]bool)
	c.bindings = make(map[*types.Var][]ast.Expr)
	c.walking = make(map[*types.Var]bool)
	c.exempt = make(map[*ast.FuncLit]bool)
	if fd.Recv != nil {
		c.addRooted(fd.Recv)
	}
	c.addRooted(fd.Type.Params)
	c.addRooted(fd.Type.Results)

	// Pre-pass: record local bindings (for the append-root rule) and
	// function literals handed directly to non-escaping callees.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
						if v := c.localVar(id); v != nil {
							c.bindings[v] = append(c.bindings[v], n.Rhs[i])
						}
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i < len(n.Values) {
					if v, ok := c.pass.TypesInfo.Defs[name].(*types.Var); ok {
						c.bindings[v] = append(c.bindings[v], n.Values[i])
					}
				}
			}
		case *ast.CallExpr:
			if fn := callee(c.pass, n); fn != nil && fn.Pkg() != nil {
				if m := allowFuncs[fn.Pkg().Path()]; m != nil && m[fn.Name()] {
					for _, arg := range n.Args {
						if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
							c.exempt[lit] = true
						}
					}
				}
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			c.checkCall(n)
		case *ast.CompositeLit:
			c.checkLit(n)
		case *ast.FuncLit:
			if !c.exempt[n] {
				c.report(n.Pos(), "function literal allocates a closure")
			}
		case *ast.GoStmt:
			c.report(n.Pos(), "go statement allocates")
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(c.pass.TypesInfo.TypeOf(n)) {
				c.report(n.Pos(), "string concatenation allocates")
			}
		}
		return true
	})
}

func (c *checker) addRooted(fl *ast.FieldList) {
	if fl == nil {
		return
	}
	for _, field := range fl.List {
		for _, name := range field.Names {
			if v, ok := c.pass.TypesInfo.Defs[name].(*types.Var); ok {
				c.rooted[v] = true
			}
		}
	}
}

// report emits one allocation diagnostic unless a //caft:alloc-ok
// covers the line; a suppression without a reason is itself reported.
func (c *checker) report(pos token.Pos, what string) {
	if ld, ok := c.pass.Directives.SuppressedAt(c.pass.Fset, pos, "alloc-ok"); ok {
		if ld.Reason == "" {
			c.pass.Reportf(pos, "//caft:alloc-ok needs a reason: say why this allocation is deliberate")
		}
		return
	}
	c.pass.Reportf(pos, "%s in //caft:zeroalloc %s; use pre-sized receiver scratch or annotate the line //caft:alloc-ok <reason>", what, c.fnLabel)
}

func (c *checker) checkCall(call *ast.CallExpr) {
	// Conversions first: T(x) parses as a call.
	if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		c.checkConv(call, tv.Type)
		return
	}
	// Builtins: append is judged by its base; make and new allocate;
	// the rest (len, cap, copy, delete, min, max, panic, ...) do not.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj := c.pass.TypesInfo.Uses[id]; obj != nil && obj.Parent() == types.Universe {
			switch id.Name {
			case "make":
				c.report(call.Pos(), "make allocates")
			case "new":
				c.report(call.Pos(), "new allocates")
			case "append":
				if len(call.Args) > 0 && !c.rootedSlice(call.Args[0]) {
					c.report(call.Pos(), "append through a slice not rooted in receiver scratch (unknown capacity)")
				}
			}
			return
		}
	}
	fn := callee(c.pass, call)
	if fn == nil {
		c.report(call.Pos(), "call through a function value cannot be proven zero-alloc")
		return
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if types.IsInterface(sig.Recv().Type()) {
			c.report(call.Pos(), "dynamic call to "+funcLabel(fn)+" through an interface cannot be proven zero-alloc")
			return
		}
	}
	if c.pass.Directives.Zeroalloc(fn) {
		return
	}
	if pkg := fn.Pkg(); pkg != nil {
		if allowPkgs[pkg.Path()] {
			return
		}
		if m := allowFuncs[pkg.Path()]; m != nil && m[fn.Name()] {
			return
		}
	}
	c.report(call.Pos(), "call to "+funcLabel(fn)+", which is not marked //caft:zeroalloc (nor known allocation-free)")
}

// checkConv flags the conversions that copy or box.
func (c *checker) checkConv(call *ast.CallExpr, to types.Type) {
	if len(call.Args) != 1 {
		return
	}
	from := c.pass.TypesInfo.TypeOf(call.Args[0])
	if from == nil {
		return
	}
	if types.IsInterface(to) && !types.IsInterface(from) {
		c.report(call.Pos(), "conversion to an interface type boxes its operand")
		return
	}
	toStr, fromStr := isString(to), isString(from)
	if (toStr && !fromStr) || (fromStr && isByteish(to)) {
		c.report(call.Pos(), "string conversion copies its operand")
	}
}

// rootedSlice reports whether the slice expression is rooted in
// receiver scratch: a field selector, a parameter, or (first-order) a
// local every binding of which is itself rooted. Appends through such
// slices stay within pre-sized capacity by the scratch contract;
// everything else may grow.
func (c *checker) rootedSlice(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		return true // field (or package var — confine's problem, not ours)
	case *ast.IndexExpr:
		return c.rootedSlice(e.X)
	case *ast.SliceExpr:
		return c.rootedSlice(e.X)
	case *ast.StarExpr:
		return c.rootedSlice(e.X)
	case *ast.CallExpr:
		// append(rooted, ...) stays rooted; any other call result has
		// unknown capacity.
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "append" {
			if obj := c.pass.TypesInfo.Uses[id]; obj != nil && obj.Parent() == types.Universe && len(e.Args) > 0 {
				return c.rootedSlice(e.Args[0])
			}
		}
		return false
	case *ast.Ident:
		v, ok := c.pass.TypesInfo.Uses[e].(*types.Var)
		if !ok {
			return false
		}
		if c.rooted[v] {
			return true
		}
		if c.walking[v] {
			return false // self-reference (x = append(x, ...)) proves nothing
		}
		c.walking[v] = true
		defer delete(c.walking, v)
		for _, b := range c.bindings[v] {
			if c.rootedSlice(b) {
				return true
			}
		}
		return false
	}
	return false
}

func (c *checker) checkLit(lit *ast.CompositeLit) {
	t := c.pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		c.report(lit.Pos(), "slice literal allocates")
		return
	case *types.Map:
		c.report(lit.Pos(), "map literal allocates")
		return
	}
	if u, ok := c.parents[lit].(*ast.UnaryExpr); ok && u.Op == token.AND {
		c.report(u.Pos(), "&composite literal allocates")
	}
}

func (c *checker) localVar(id *ast.Ident) *types.Var {
	if v, ok := c.pass.TypesInfo.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := c.pass.TypesInfo.Uses[id].(*types.Var); ok && !isPkgLevel(v) {
		return v
	}
	return nil
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteish(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune)
}

func isPkgLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// callee resolves the called function or method, if statically known.
func callee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// declLabel renders (*State).ProbeReplica-style names from syntax.
func declLabel(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		if id, ok := st.X.(*ast.Ident); ok {
			return "(*" + id.Name + ")." + fd.Name.Name
		}
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// funcLabel renders (*State).ProcsOf-style names for diagnostics.
func funcLabel(fn *types.Func) string {
	prefix := ""
	if fn.Pkg() != nil {
		prefix = fn.Pkg().Name() + "."
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return prefix + fn.Name()
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		if n, ok := p.Elem().(*types.Named); ok {
			return prefix + "(*" + n.Obj().Name() + ")." + fn.Name()
		}
	}
	if n, ok := rt.(*types.Named); ok {
		return prefix + n.Obj().Name() + "." + fn.Name()
	}
	return prefix + fn.Name()
}

// parentMap records the parent of every node in f.
func parentMap(f *ast.File) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
