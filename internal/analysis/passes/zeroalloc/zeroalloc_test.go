package zeroalloc_test

import (
	"testing"

	"caft/internal/analysis/analysistest"
	"caft/internal/analysis/passes/zeroalloc"
)

func TestZeroalloc(t *testing.T) {
	analysistest.Run(t, zeroalloc.Analyzer, "testdata/src/a")
}

// TestZeroallocCrossPackage loads the annotated library and its
// caller as one world: the annotations are declared in lib, the
// verdicts land in b.
func TestZeroallocCrossPackage(t *testing.T) {
	analysistest.Run(t, zeroalloc.Analyzer, "testdata/src/lib", "testdata/src/b")
}
