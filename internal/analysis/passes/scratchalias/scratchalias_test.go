package scratchalias_test

import (
	"testing"

	"caft/internal/analysis/analysistest"
	"caft/internal/analysis/passes/scratchalias"
)

func TestScratchAlias(t *testing.T) {
	analysistest.Run(t, scratchalias.Analyzer, "testdata/src/a")
}
