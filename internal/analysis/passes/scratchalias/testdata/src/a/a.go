// Package a exercises scratchalias: every legal and illegal way to
// consume a //caft:scratch result.
package a

// State mimics sched.State: Hot returns a reused scratch bitset.
type State struct {
	hot  []bool
	keep []bool
}

// Hot returns the processors currently hosting work.
//
//caft:scratch safe=HotCopy
func (s *State) Hot() []bool {
	for i := range s.hot {
		s.hot[i] = false
	}
	return s.hot
}

// HotCopy returns a freshly allocated copy of Hot, safe to retain.
func (s *State) HotCopy() []bool {
	return append([]bool(nil), s.Hot()...)
}

// hotView propagates the scratch contract outward: returning the
// scratch from a function itself marked //caft:scratch is the one
// legal way to return it.
//
//caft:scratch safe=HotCopy
func (s *State) hotView() []bool {
	return s.Hot()
}

var global []bool

// --- violations ---

func StoreField(s *State) {
	s.keep = s.Hot() // want `result of //caft:scratch \(\*State\)\.Hot stored into field or variable keep; the next call overwrites it in place — retain a copy with HotCopy`
}

func StoreGlobal(s *State) {
	global = s.Hot() // want `stored into package variable global.*HotCopy`
}

var globalInit = pkgState.Hot() // want `stored into package variable globalInit`

var pkgState = &State{hot: make([]bool, 4)}

func AppendDirect(s *State, sink [][]bool) [][]bool {
	return append(sink, s.Hot()) // want `appended into a slice`
}

func ReturnDirect(s *State) []bool {
	return s.Hot() // want `returned to the caller`
}

func CompositeLit(s *State) {
	_ = [][]bool{s.Hot()} // want `placed in a composite literal`
}

func TrackedLocal(s *State) {
	v := s.Hot()
	s.keep = v // want `stored into field or variable keep`
}

func TrackedAppend(s *State, sink [][]bool) [][]bool {
	v := s.Hot()
	return append(sink, v) // want `appended into a slice`
}

func TrackedReturn(s *State) []bool {
	v := s.Hot()
	return v // want `returned to the caller`
}

func TrackedClosure(s *State) func() int {
	v := s.Hot()
	return func() int { // closures may run after the next overwrite
		return len(v) // want `captured by a function literal`
	}
}

func StoreElem(s *State, m map[int][]bool) {
	m[0] = s.Hot() // want `stored into a map or slice element`
}

func StoreThroughPointer(s *State, p *[]bool) {
	*p = s.Hot() // want `stored through a pointer`
}

// --- legal uses ---

// Consuming before the next call is the whole point.
func CountHot(s *State) int {
	n := 0
	for _, h := range s.Hot() {
		if h {
			n++
		}
	}
	return n
}

// A local consumed in place is fine.
func LocalConsumed(s *State) int {
	v := s.Hot()
	n := 0
	for _, h := range v {
		if h {
			n++
		}
	}
	return n
}

// Passing down into an ordinary call hands the callee the same
// obligation; it returns before the next overwrite can happen.
func PassedDown(s *State) int {
	return countTrue(s.Hot())
}

func countTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

// The safe variant may go anywhere.
func CopyRetained(s *State) {
	s.keep = s.HotCopy()
	global = s.HotCopy()
}
