// Package scratchalias enforces the aliasing contract of methods
// marked //caft:scratch: their result points into scratch memory
// owned by the receiver and is overwritten in place by the next call,
// so it may only be consumed before control leaves the statement
// sequence that produced it.
//
// The hot paths of this repo (State.ProcsOf, Timeline.Intervals,
// Lister.Free, State.commResources) stay allocation-free precisely by
// returning such scratch. The contract used to live in comments and a
// handful of pinned tests; this analyzer makes it mechanical. A call
// result (or a local variable bound to one) must not be:
//
//   - stored into a struct field, map/slice element, pointer target
//     or package-level variable — anything that outlives the call;
//   - appended into a slice (append both retains the element and may
//     itself be a longer-lived destination);
//   - placed in a composite literal;
//   - captured by a function literal, which may run after the next
//     overwrite;
//   - returned to the caller — unless the returning function is
//     itself annotated //caft:scratch, which is exactly how a scratch
//     contract is propagated outward.
//
// Passing the value down into an ordinary call is allowed: the callee
// receives the same obligation and returns before the caller can
// invoke the scratch method again. When the annotation names a safe
// variant (//caft:scratch safe=ProcsOfCopy), diagnostics steer the
// caller to it.
//
// The tracking is flow-insensitive and first-order on purpose — a
// local rebinding (w := v) is not chased — because the goal is an
// enforceable convention, not an escape analysis: in-tree code that
// needs to retain a result calls the *Copy variant, and code too
// clever for the analyzer gets restructured until it is not.
package scratchalias

import (
	"go/ast"
	"go/token"
	"go/types"

	"caft/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "scratchalias",
	Doc:  "flags retained results of //caft:scratch methods",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		c := &checker{pass: pass, parents: parentMap(f)}
		c.checkFile(f)
	}
	return nil, nil
}

type checker struct {
	pass    *analysis.Pass
	parents map[ast.Node]ast.Node
}

func (c *checker) checkFile(f *ast.File) {
	// Pass 1: every call of a //caft:scratch function. Direct misuse
	// is reported; a clean binding to a local variable is recorded
	// for pass 2.
	type tracked struct {
		obj  *types.Var
		fn   *types.Func
		info analysis.ScratchInfo
		def  ast.Node // enclosing function of the definition
	}
	var locals []tracked
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := callee(c.pass, call)
		if fn == nil {
			return true
		}
		info, ok := c.pass.Directives.Scratch(fn)
		if !ok {
			return true
		}
		if how, pos, bad := c.misuse(call); bad {
			c.report(pos, fn, info, how)
			return true
		}
		if obj := c.boundLocal(call); obj != nil {
			locals = append(locals, tracked{obj: obj, fn: fn, info: info, def: c.enclosingFunc(call)})
		}
		return true
	})

	// Pass 2: uses of the recorded locals. The same misuse contexts
	// apply, plus capture by a more deeply nested function literal.
	for _, tr := range locals {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || c.pass.TypesInfo.Uses[id] != tr.obj {
				return true
			}
			if enc := c.enclosingFunc(id); enc != tr.def {
				if _, isLit := enc.(*ast.FuncLit); isLit {
					c.report(id.Pos(), tr.fn, tr.info, "captured by a function literal that may outlive the next call")
					return true
				}
			}
			if how, pos, bad := c.misuse(id); bad {
				c.report(pos, tr.fn, tr.info, how)
			}
			return true
		})
	}
}

func (c *checker) report(pos token.Pos, fn *types.Func, info analysis.ScratchInfo, how string) {
	msg := "result of //caft:scratch " + funcLabel(fn) + " " + how + "; the next call overwrites it in place"
	if info.Safe != "" {
		msg += " — retain a copy with " + info.Safe
	}
	c.pass.Reportf(pos, "%s", msg)
}

// misuse classifies the immediate syntactic context of expr (a scratch
// call or a tracked local's use). It walks out through parentheses and
// composite-literal keys only; everything else is judged one level up.
func (c *checker) misuse(expr ast.Expr) (how string, pos token.Pos, bad bool) {
	n := ast.Node(expr)
	for {
		p := c.parents[n]
		switch pp := p.(type) {
		case *ast.ParenExpr:
			n = pp
			continue
		case *ast.KeyValueExpr:
			if pp.Value == n {
				n = pp
				continue
			}
			return "", 0, false // used as a map key: consumed immediately
		case *ast.CompositeLit:
			return "placed in a composite literal", expr.Pos(), true
		case *ast.CallExpr:
			if isBuiltinAppend(c.pass, pp) && appendRetains(pp, n) {
				return "appended into a slice that outlives the statement", expr.Pos(), true
			}
			return "", 0, false // ordinary argument: callee consumes before return
		case *ast.ReturnStmt:
			if enc, ok := c.enclosingFunc(expr).(*ast.FuncDecl); ok {
				if fn, ok := c.pass.TypesInfo.Defs[enc.Name].(*types.Func); ok {
					if _, scratch := c.pass.Directives.Scratch(fn); scratch {
						return "", 0, false // scratch propagating through a scratch method
					}
				}
			}
			return "returned to the caller (annotate the returning function //caft:scratch, or copy)", expr.Pos(), true
		case *ast.AssignStmt:
			return c.assignMisuse(pp, n.(ast.Expr))
		case *ast.ValueSpec:
			return c.valueSpecMisuse(pp, n.(ast.Expr))
		default:
			return "", 0, false
		}
	}
}

// assignMisuse judges `lhs = rhs` where rhs is (or contains, as the
// matched position) the scratch value.
func (c *checker) assignMisuse(as *ast.AssignStmt, rhs ast.Expr) (string, token.Pos, bool) {
	for i, r := range as.Rhs {
		if r != rhs {
			continue
		}
		if len(as.Lhs) != len(as.Rhs) {
			return "", 0, false // v, err := f() shapes don't apply to single-result scratch
		}
		return c.storeMisuse(as.Lhs[i])
	}
	return "", 0, false
}

func (c *checker) valueSpecMisuse(vs *ast.ValueSpec, rhs ast.Expr) (string, token.Pos, bool) {
	for i, r := range vs.Values {
		if r != rhs || i >= len(vs.Names) {
			continue
		}
		if obj, ok := c.pass.TypesInfo.Defs[vs.Names[i]].(*types.Var); ok && isPkgLevel(obj) {
			return "stored into package variable " + vs.Names[i].Name, rhs.Pos(), true
		}
	}
	return "", 0, false
}

// storeMisuse judges one assignment destination.
func (c *checker) storeMisuse(lhs ast.Expr) (string, token.Pos, bool) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if obj, ok := c.pass.TypesInfo.Uses[l].(*types.Var); ok && isPkgLevel(obj) {
			return "stored into package variable " + l.Name, lhs.Pos(), true
		}
		if obj, ok := c.pass.TypesInfo.Defs[l].(*types.Var); ok && isPkgLevel(obj) {
			return "stored into package variable " + l.Name, lhs.Pos(), true
		}
		return "", 0, false // local binding: pass 2 watches its uses
	case *ast.SelectorExpr:
		return "stored into field or variable " + l.Sel.Name, lhs.Pos(), true
	case *ast.IndexExpr:
		return "stored into a map or slice element", lhs.Pos(), true
	case *ast.StarExpr:
		return "stored through a pointer", lhs.Pos(), true
	}
	return "", 0, false
}

// boundLocal returns the local variable an expression statement binds
// the call to, if the binding is a plain `v := call()` / `v = call()`.
func (c *checker) boundLocal(call *ast.CallExpr) *types.Var {
	n := ast.Node(call)
	for {
		if p, ok := c.parents[n].(*ast.ParenExpr); ok {
			n = p
			continue
		}
		break
	}
	switch p := c.parents[n].(type) {
	case *ast.AssignStmt:
		for i, r := range p.Rhs {
			if r == n && len(p.Lhs) == len(p.Rhs) {
				if id, ok := p.Lhs[i].(*ast.Ident); ok {
					if obj, ok := c.pass.TypesInfo.Defs[id].(*types.Var); ok && !isPkgLevel(obj) {
						return obj
					}
					if obj, ok := c.pass.TypesInfo.Uses[id].(*types.Var); ok && !isPkgLevel(obj) {
						return obj
					}
				}
			}
		}
	case *ast.ValueSpec:
		for i, r := range p.Values {
			if r == n && i < len(p.Names) {
				if obj, ok := c.pass.TypesInfo.Defs[p.Names[i]].(*types.Var); ok && !isPkgLevel(obj) {
					return obj
				}
			}
		}
	}
	return nil
}

// enclosingFunc returns the innermost FuncDecl or FuncLit containing n.
func (c *checker) enclosingFunc(n ast.Node) ast.Node {
	for p := c.parents[n]; p != nil; p = c.parents[p] {
		switch p.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return p
		}
	}
	return nil
}

func isPkgLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// appendRetains reports whether append(args...) retains the scratch
// value n. Two append shapes do NOT retain it: n as the base slice
// (args[0] — the owner extending its own scratch in place) and n
// spread with an ellipsis (append(dst, scratch...) copies the
// elements out, which is exactly the HotCopy idiom). Everything else
// stores the scratch slice itself into a longer-lived backing array.
func appendRetains(call *ast.CallExpr, n ast.Node) bool {
	for i, arg := range call.Args {
		if ast.Node(arg) != n {
			continue
		}
		if i == 0 {
			return false
		}
		if call.Ellipsis.IsValid() && i == len(call.Args)-1 {
			return false
		}
		return true
	}
	return false
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	return obj != nil && obj.Parent() == types.Universe
}

func callee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// funcLabel renders (*State).ProcsOf-style names for diagnostics.
func funcLabel(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		if n, ok := p.Elem().(*types.Named); ok {
			return "(*" + n.Obj().Name() + ")." + fn.Name()
		}
	}
	if n, ok := rt.(*types.Named); ok {
		return n.Obj().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// parentMap records the parent of every node in f.
func parentMap(f *ast.File) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
