package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Directive grammar (documented in DESIGN.md S8 and S10):
//
//	//caft:deterministic
//	    In a package doc comment. Declares that the package's outputs
//	    must be byte-identical across runs, worker counts and
//	    platforms; enables the maporder and nondet analyzers.
//
//	//caft:unordered-ok <reason>
//	//caft:nondet-ok <reason>
//	//caft:share-ok <reason>
//	//caft:alloc-ok <reason>
//	    On the flagged line, or the line directly above it. Suppresses
//	    the maporder (resp. nondet, confine, zeroalloc) diagnostics on
//	    that line. The reason is mandatory; an empty reason is itself
//	    a diagnostic.
//
//	//caft:scratch [safe=Method]
//	    In a method or function doc comment. Declares that the result
//	    aliases scratch memory owned by the receiver, overwritten by
//	    the next call; enables the scratchalias analyzer at every call
//	    site. safe= names the copying variant callers should use to
//	    retain the result.
//
//	//caft:confined
//	    In a type declaration's doc comment. Declares the type
//	    single-goroutine: its values must not be captured by go
//	    statements, cross channels, live in package-level variables or
//	    sit in fields of non-confined types. Checked by the confine
//	    analyzer; exported as a type fact so misuse in dependent
//	    compilation units is caught too.
//
//	//caft:zeroalloc
//	    In a function or method doc comment. Declares the body
//	    allocation-free on every path; the zeroalloc analyzer flags
//	    allocation sites and calls to functions not themselves marked
//	    //caft:zeroalloc (or known allocation-free). Exported as a
//	    fact so annotated hot paths compose across packages.
//
// Like //go:build and friends, the comments must start at the
// beginning of the line with no space after "//".
const (
	dirDeterministic = "//caft:deterministic"
	dirUnorderedOK   = "//caft:unordered-ok"
	dirNondetOK      = "//caft:nondet-ok"
	dirShareOK       = "//caft:share-ok"
	dirAllocOK       = "//caft:alloc-ok"
	dirScratch       = "//caft:scratch"
	dirConfined      = "//caft:confined"
	dirZeroalloc     = "//caft:zeroalloc"
)

// ScratchInfo describes one //caft:scratch annotation.
type ScratchInfo struct {
	Safe string `json:"safe,omitempty"` // copying variant to steer callers to, if any
}

// LineDirective is one //caft:unordered-ok, //caft:nondet-ok,
// //caft:share-ok or //caft:alloc-ok suppression, anchored to the
// source line its comment starts on.
type LineDirective struct {
	Kind   string // "unordered-ok", "nondet-ok", "share-ok" or "alloc-ok"
	Reason string
	Pos    token.Pos
	used   bool
}

// StrayDirective is a declaration directive (//caft:confined,
// //caft:zeroalloc) that is not anchored to a declaration of the right
// kind — the comment outlived the type or function it annotated.
type StrayDirective struct {
	Kind string // "confined" or "zeroalloc"
	Pos  token.Pos
}

// Directives indexes every //caft: directive of a set of loaded
// packages. It is the repo-grown substitute for go/analysis facts:
// the caftvet driver builds one index over all packages of a load (so
// a scratch annotation in internal/sched is visible while analyzing
// internal/core), and in `go vet -vettool` mode the scratch, confined
// and zeroalloc entries of each package travel between compilation
// units as JSON facts.
type Directives struct {
	deterministic map[string]bool
	scratch       map[string]ScratchInfo              // see scratchKey
	confined      map[string]bool                     // "pkg.Type"
	zeroalloc     map[string]bool                     // same keys as scratch
	lines         map[string]map[int][]*LineDirective // filename -> line
	strays        map[string][]StrayDirective         // filename -> unanchored decl directives
}

// NewDirectives returns an empty index.
func NewDirectives() *Directives {
	return &Directives{
		deterministic: make(map[string]bool),
		scratch:       make(map[string]ScratchInfo),
		confined:      make(map[string]bool),
		zeroalloc:     make(map[string]bool),
		lines:         make(map[string]map[int][]*LineDirective),
		strays:        make(map[string][]StrayDirective),
	}
}

// AddPackage scans one loaded package's comments into the index.
func (d *Directives) AddPackage(p *Package) {
	for _, f := range p.Syntax {
		d.addFile(p, f)
	}
}

func (d *Directives) addFile(p *Package, f *ast.File) {
	if f.Doc != nil {
		for _, c := range f.Doc.List {
			if strings.TrimRight(c.Text, " \t") == dirDeterministic {
				d.deterministic[p.PkgPath] = true
			}
		}
	}
	// anchored records declaration-directive comments that sit in the
	// doc group of a declaration of the right kind; occurrences found
	// elsewhere in the file are stale and reported by their analyzer.
	anchored := make(map[token.Pos]bool)
	for _, decl := range f.Decls {
		switch dd := decl.(type) {
		case *ast.FuncDecl:
			if dd.Doc == nil {
				continue
			}
			for _, c := range dd.Doc.List {
				if rest, ok := cutDirective(c.Text, dirScratch); ok {
					d.scratch[scratchKeyAST(p.PkgPath, dd)] = parseScratch(rest)
				}
				if _, ok := cutDirective(c.Text, dirZeroalloc); ok {
					d.zeroalloc[scratchKeyAST(p.PkgPath, dd)] = true
					anchored[c.Pos()] = true
				}
			}
		case *ast.GenDecl:
			if dd.Tok != token.TYPE {
				continue
			}
			for _, spec := range dd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				// A single `type Foo ...` hangs its doc on the GenDecl;
				// specs inside a `type (...)` block carry their own.
				docs := []*ast.CommentGroup{ts.Doc}
				if len(dd.Specs) == 1 {
					docs = append(docs, dd.Doc)
				}
				for _, doc := range docs {
					if doc == nil {
						continue
					}
					for _, c := range doc.List {
						if _, ok := cutDirective(c.Text, dirConfined); ok {
							d.confined[p.PkgPath+"."+ts.Name.Name] = true
							anchored[c.Pos()] = true
						}
					}
				}
			}
		}
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			var kind, rest string
			if r, ok := cutDirective(c.Text, dirUnorderedOK); ok {
				kind, rest = "unordered-ok", r
			} else if r, ok := cutDirective(c.Text, dirNondetOK); ok {
				kind, rest = "nondet-ok", r
			} else if r, ok := cutDirective(c.Text, dirShareOK); ok {
				kind, rest = "share-ok", r
			} else if r, ok := cutDirective(c.Text, dirAllocOK); ok {
				kind, rest = "alloc-ok", r
			} else {
				if _, ok := cutDirective(c.Text, dirConfined); ok && !anchored[c.Pos()] {
					posn := p.Fset.Position(c.Pos())
					d.strays[posn.Filename] = append(d.strays[posn.Filename], StrayDirective{Kind: "confined", Pos: c.Pos()})
				}
				if _, ok := cutDirective(c.Text, dirZeroalloc); ok && !anchored[c.Pos()] {
					posn := p.Fset.Position(c.Pos())
					d.strays[posn.Filename] = append(d.strays[posn.Filename], StrayDirective{Kind: "zeroalloc", Pos: c.Pos()})
				}
				continue
			}
			posn := p.Fset.Position(c.Pos())
			byLine := d.lines[posn.Filename]
			if byLine == nil {
				byLine = make(map[int][]*LineDirective)
				d.lines[posn.Filename] = byLine
			}
			byLine[posn.Line] = append(byLine[posn.Line], &LineDirective{
				Kind:   kind,
				Reason: strings.TrimSpace(rest),
				Pos:    c.Pos(),
			})
		}
	}
}

// cutDirective reports whether line is the given directive, returning
// the argument text after it. "//caft:scratchpad" must not match
// "//caft:scratch", so the directive must be followed by a space or
// end-of-comment.
func cutDirective(line, dir string) (rest string, ok bool) {
	if !strings.HasPrefix(line, dir) {
		return "", false
	}
	rest = line[len(dir):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false
	}
	return rest, true
}

func parseScratch(rest string) ScratchInfo {
	var info ScratchInfo
	for _, f := range strings.Fields(rest) {
		if v, ok := strings.CutPrefix(f, "safe="); ok {
			info.Safe = v
		}
	}
	return info
}

// Deterministic reports whether pkgPath carries //caft:deterministic.
func (d *Directives) Deterministic(pkgPath string) bool { return d.deterministic[pkgPath] }

// Scratch looks up the //caft:scratch annotation of a function or
// method, if any.
func (d *Directives) Scratch(fn *types.Func) (ScratchInfo, bool) {
	info, ok := d.scratch[scratchKeyFunc(fn)]
	return info, ok
}

// Confined reports whether the named type carries //caft:confined —
// declared in a loaded package or imported as a fact.
func (d *Directives) Confined(obj *types.TypeName) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return d.confined[obj.Pkg().Path()+"."+obj.Name()]
}

// Zeroalloc reports whether the function or method carries
// //caft:zeroalloc — declared in a loaded package or imported as a
// fact.
func (d *Directives) Zeroalloc(fn *types.Func) bool {
	return d.zeroalloc[scratchKeyFunc(fn)]
}

// ZeroallocDecl reports whether the function declaration carries
// //caft:zeroalloc, keyed from syntax — used by the zeroalloc analyzer
// to pick the bodies it walks.
func (d *Directives) ZeroallocDecl(pkgPath string, fd *ast.FuncDecl) bool {
	return d.zeroalloc[scratchKeyAST(pkgPath, fd)]
}

// SuppressedAt returns the line suppression of the given kind covering
// pos: one whose comment starts on the same line as pos or on the line
// directly above. The returned directive is marked used, which feeds
// the unused-suppression check. One directive suppresses every
// diagnostic of its kind on its line.
func (d *Directives) SuppressedAt(fset *token.FileSet, pos token.Pos, kind string) (*LineDirective, bool) {
	posn := fset.Position(pos)
	byLine := d.lines[posn.Filename]
	if byLine == nil {
		return nil, false
	}
	for _, line := range []int{posn.Line, posn.Line - 1} {
		for _, ld := range byLine[line] {
			if ld.Kind == kind {
				ld.used = true
				return ld, true
			}
		}
	}
	return nil, false
}

// UnusedIn returns the suppression directives of one file that no
// diagnostic consulted, in line order. A suppression with nothing to
// suppress is stale and reported by the analyzer that owns its kind.
func (d *Directives) UnusedIn(fset *token.FileSet, f *ast.File, kind string) []*LineDirective {
	posn := fset.Position(f.Pos())
	byLine := d.lines[posn.Filename]
	var out []*LineDirective
	for _, lds := range byLine { //caft:unordered-ok sorted by position below
		for _, ld := range lds {
			if !ld.used && ld.Kind == kind {
				out = append(out, ld)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// StraysIn returns the unanchored declaration directives of one file,
// in position order: a //caft:confined not in a type declaration's doc
// comment, or a //caft:zeroalloc not in a function's — what remains
// when the declaration is deleted or the comment drifts from it.
func (d *Directives) StraysIn(fset *token.FileSet, f *ast.File, kind string) []StrayDirective {
	posn := fset.Position(f.Pos())
	var out []StrayDirective
	for _, s := range d.strays[posn.Filename] {
		if s.Kind == kind {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// scratchKeyAST derives the lookup key from syntax: "pkg.Type.Method"
// for methods, "pkg.Func" for plain functions.
func scratchKeyAST(pkgPath string, fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return pkgPath + "." + fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	for {
		switch u := t.(type) {
		case *ast.StarExpr:
			t = u.X
		case *ast.IndexExpr: // generic receiver
			t = u.X
		case *ast.IndexListExpr:
			t = u.X
		default:
			name := "?"
			if id, ok := t.(*ast.Ident); ok {
				name = id.Name
			}
			return pkgPath + "." + name + "." + fd.Name.Name
		}
	}
}

// scratchKeyFunc derives the same key from a types.Func at a call site.
func scratchKeyFunc(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return "." + fn.Name()
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return pkg.Path() + "." + fn.Name()
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	name := "?"
	if n, ok := rt.(*types.Named); ok {
		name = n.Obj().Name()
	} else if n, ok := rt.(interface{ Obj() *types.TypeName }); ok {
		name = n.Obj().Name()
	}
	return pkg.Path() + "." + name + "." + fn.Name()
}

// vetFacts is the serialized fact format exchanged between compilation
// units in vettool mode: the scratch, confined and zeroalloc
// annotations a package exports to its dependents.
type vetFacts struct {
	Scratch   map[string]ScratchInfo `json:"scratch,omitempty"`
	Confined  map[string]bool        `json:"confined,omitempty"`
	Zeroalloc map[string]bool        `json:"zeroalloc,omitempty"`
}

// EncodeFacts serializes the annotations declared by pkgPath.
func (d *Directives) EncodeFacts(pkgPath string) ([]byte, error) {
	out := vetFacts{
		Scratch:   make(map[string]ScratchInfo),
		Confined:  make(map[string]bool),
		Zeroalloc: make(map[string]bool),
	}
	prefix := pkgPath + "."
	for k, v := range d.scratch { //caft:unordered-ok json.Marshal sorts map keys
		if strings.HasPrefix(k, prefix) {
			out.Scratch[k] = v
		}
	}
	for k, v := range d.confined { //caft:unordered-ok json.Marshal sorts map keys
		if strings.HasPrefix(k, prefix) {
			out.Confined[k] = v
		}
	}
	for k, v := range d.zeroalloc { //caft:unordered-ok json.Marshal sorts map keys
		if strings.HasPrefix(k, prefix) {
			out.Zeroalloc[k] = v
		}
	}
	return json.Marshal(out)
}

// DecodeFacts merges a dependency's serialized facts into the index.
func (d *Directives) DecodeFacts(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var in vetFacts
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("decoding caftvet facts: %v", err)
	}
	for k, v := range in.Scratch { //caft:unordered-ok map-to-map merge is order-insensitive
		d.scratch[k] = v
	}
	for k, v := range in.Confined { //caft:unordered-ok map-to-map merge is order-insensitive
		d.confined[k] = v
	}
	for k, v := range in.Zeroalloc { //caft:unordered-ok map-to-map merge is order-insensitive
		d.zeroalloc[k] = v
	}
	return nil
}
