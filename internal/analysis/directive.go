package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Directive grammar (documented in DESIGN.md S8):
//
//	//caft:deterministic
//	    In a package doc comment. Declares that the package's outputs
//	    must be byte-identical across runs, worker counts and
//	    platforms; enables the maporder and nondet analyzers.
//
//	//caft:unordered-ok <reason>
//	//caft:nondet-ok <reason>
//	    On the flagged line, or the line directly above it. Suppresses
//	    one maporder (resp. nondet) diagnostic. The reason is
//	    mandatory; an empty reason is itself a diagnostic.
//
//	//caft:scratch [safe=Method]
//	    In a method or function doc comment. Declares that the result
//	    aliases scratch memory owned by the receiver, overwritten by
//	    the next call; enables the scratchalias analyzer at every call
//	    site. safe= names the copying variant callers should use to
//	    retain the result.
//
// Like //go:build and friends, the comments must start at the
// beginning of the line with no space after "//".
const (
	dirDeterministic = "//caft:deterministic"
	dirUnorderedOK   = "//caft:unordered-ok"
	dirNondetOK      = "//caft:nondet-ok"
	dirScratch       = "//caft:scratch"
)

// ScratchInfo describes one //caft:scratch annotation.
type ScratchInfo struct {
	Safe string `json:"safe,omitempty"` // copying variant to steer callers to, if any
}

// LineDirective is one //caft:unordered-ok or //caft:nondet-ok
// suppression, anchored to the source line its comment starts on.
type LineDirective struct {
	Kind   string // "unordered-ok" or "nondet-ok"
	Reason string
	Pos    token.Pos
	used   bool
}

// Directives indexes every //caft: directive of a set of loaded
// packages. It is the repo-grown substitute for go/analysis facts:
// the caftvet driver builds one index over all packages of a load (so
// a scratch annotation in internal/sched is visible while analyzing
// internal/core), and in `go vet -vettool` mode the scratch entries
// of each package travel between compilation units as JSON facts.
type Directives struct {
	deterministic map[string]bool
	scratch       map[string]ScratchInfo            // see scratchKey
	lines         map[string]map[int]*LineDirective // filename -> line
}

// NewDirectives returns an empty index.
func NewDirectives() *Directives {
	return &Directives{
		deterministic: make(map[string]bool),
		scratch:       make(map[string]ScratchInfo),
		lines:         make(map[string]map[int]*LineDirective),
	}
}

// AddPackage scans one loaded package's comments into the index.
func (d *Directives) AddPackage(p *Package) {
	for _, f := range p.Syntax {
		d.addFile(p, f)
	}
}

func (d *Directives) addFile(p *Package, f *ast.File) {
	if f.Doc != nil {
		for _, c := range f.Doc.List {
			if strings.TrimRight(c.Text, " \t") == dirDeterministic {
				d.deterministic[p.PkgPath] = true
			}
		}
	}
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if ok && fd.Doc != nil {
			for _, c := range fd.Doc.List {
				if rest, ok := cutDirective(c.Text, dirScratch); ok {
					d.scratch[scratchKeyAST(p.PkgPath, fd)] = parseScratch(rest)
				}
			}
		}
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			var kind, rest string
			if r, ok := cutDirective(c.Text, dirUnorderedOK); ok {
				kind, rest = "unordered-ok", r
			} else if r, ok := cutDirective(c.Text, dirNondetOK); ok {
				kind, rest = "nondet-ok", r
			} else {
				continue
			}
			posn := p.Fset.Position(c.Pos())
			byLine := d.lines[posn.Filename]
			if byLine == nil {
				byLine = make(map[int]*LineDirective)
				d.lines[posn.Filename] = byLine
			}
			byLine[posn.Line] = &LineDirective{
				Kind:   kind,
				Reason: strings.TrimSpace(rest),
				Pos:    c.Pos(),
			}
		}
	}
}

// cutDirective reports whether line is the given directive, returning
// the argument text after it. "//caft:scratchpad" must not match
// "//caft:scratch", so the directive must be followed by a space or
// end-of-comment.
func cutDirective(line, dir string) (rest string, ok bool) {
	if !strings.HasPrefix(line, dir) {
		return "", false
	}
	rest = line[len(dir):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false
	}
	return rest, true
}

func parseScratch(rest string) ScratchInfo {
	var info ScratchInfo
	for _, f := range strings.Fields(rest) {
		if v, ok := strings.CutPrefix(f, "safe="); ok {
			info.Safe = v
		}
	}
	return info
}

// Deterministic reports whether pkgPath carries //caft:deterministic.
func (d *Directives) Deterministic(pkgPath string) bool { return d.deterministic[pkgPath] }

// Scratch looks up the //caft:scratch annotation of a function or
// method, if any.
func (d *Directives) Scratch(fn *types.Func) (ScratchInfo, bool) {
	info, ok := d.scratch[scratchKeyFunc(fn)]
	return info, ok
}

// SuppressedAt returns the unordered-ok / nondet-ok directive covering
// pos: one whose comment starts on the same line as pos or on the line
// directly above. The returned directive is marked used, which feeds
// the unused-suppression check.
func (d *Directives) SuppressedAt(fset *token.FileSet, pos token.Pos, kind string) (*LineDirective, bool) {
	posn := fset.Position(pos)
	byLine := d.lines[posn.Filename]
	if byLine == nil {
		return nil, false
	}
	for _, line := range []int{posn.Line, posn.Line - 1} {
		if ld := byLine[line]; ld != nil && ld.Kind == kind {
			ld.used = true
			return ld, true
		}
	}
	return nil, false
}

// UnusedIn returns the suppression directives of one file that no
// diagnostic consulted, in line order. A suppression with nothing to
// suppress is stale and reported by the analyzer that owns its kind.
func (d *Directives) UnusedIn(fset *token.FileSet, f *ast.File, kind string) []*LineDirective {
	posn := fset.Position(f.Pos())
	byLine := d.lines[posn.Filename]
	var out []*LineDirective
	for _, ld := range byLine { //caft:unordered-ok sorted by position below
		if !ld.used && ld.Kind == kind {
			out = append(out, ld)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// scratchKeyAST derives the lookup key from syntax: "pkg.Type.Method"
// for methods, "pkg.Func" for plain functions.
func scratchKeyAST(pkgPath string, fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return pkgPath + "." + fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	for {
		switch u := t.(type) {
		case *ast.StarExpr:
			t = u.X
		case *ast.IndexExpr: // generic receiver
			t = u.X
		case *ast.IndexListExpr:
			t = u.X
		default:
			name := "?"
			if id, ok := t.(*ast.Ident); ok {
				name = id.Name
			}
			return pkgPath + "." + name + "." + fd.Name.Name
		}
	}
}

// scratchKeyFunc derives the same key from a types.Func at a call site.
func scratchKeyFunc(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return "." + fn.Name()
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return pkg.Path() + "." + fn.Name()
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	name := "?"
	if n, ok := rt.(*types.Named); ok {
		name = n.Obj().Name()
	} else if n, ok := rt.(interface{ Obj() *types.TypeName }); ok {
		name = n.Obj().Name()
	}
	return pkg.Path() + "." + name + "." + fn.Name()
}

// scratchFacts is the serialized fact format exchanged between
// compilation units in vettool mode.
type scratchFacts struct {
	Scratch map[string]ScratchInfo `json:"scratch,omitempty"`
}

// EncodeFacts serializes the scratch annotations declared by pkgPath.
func (d *Directives) EncodeFacts(pkgPath string) ([]byte, error) {
	out := scratchFacts{Scratch: make(map[string]ScratchInfo)}
	for k, v := range d.scratch { //caft:unordered-ok json.Marshal sorts map keys
		if strings.HasPrefix(k, pkgPath+".") {
			out.Scratch[k] = v
		}
	}
	return json.Marshal(out)
}

// DecodeFacts merges a dependency's serialized facts into the index.
func (d *Directives) DecodeFacts(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var in scratchFacts
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("decoding caftvet facts: %v", err)
	}
	for k, v := range in.Scratch { //caft:unordered-ok map-to-map merge is order-insensitive
		d.scratch[k] = v
	}
	return nil
}
