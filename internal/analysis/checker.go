package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// A Finding is one positioned diagnostic from one analyzer.
type Finding struct {
	Analyzer string
	PkgPath  string
	Posn     token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Posn, f.Analyzer, f.Message)
}

// Run applies every analyzer to every package and returns the findings
// sorted by file, line, column and analyzer name. The directive index
// is built over all packages first, so cross-package annotations (a
// //caft:scratch method called from another matched package) are
// visible to every pass. extra, if non-nil, seeds the index before the
// packages are scanned — the vettool driver uses it to merge facts
// imported from dependencies.
func Run(pkgs []*Package, analyzers []*Analyzer, extra *Directives) ([]Finding, error) {
	dirs := extra
	if dirs == nil {
		dirs = NewDirectives()
	}
	for _, p := range pkgs {
		dirs.AddPackage(p)
	}
	var findings []Finding
	for _, p := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:   a,
				Fset:       p.Fset,
				Files:      p.Syntax,
				Pkg:        p.Types,
				TypesInfo:  p.TypesInfo,
				Directives: dirs,
			}
			pass.Report = func(d Diagnostic) {
				findings = append(findings, Finding{
					Analyzer: a.Name,
					PkgPath:  p.PkgPath,
					Posn:     p.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, p.PkgPath, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Posn.Filename != b.Posn.Filename {
			return a.Posn.Filename < b.Posn.Filename
		}
		if a.Posn.Line != b.Posn.Line {
			return a.Posn.Line < b.Posn.Line
		}
		if a.Posn.Column != b.Posn.Column {
			return a.Posn.Column < b.Posn.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}
