package service

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// distinctReqs returns n distinct small requests (seed-varied, no
// Monte-Carlo stage, so computes stay cheap).
func distinctReqs(n int) []*Request {
	reqs := make([]*Request, n)
	for i := range reqs {
		r := quickReq()
		r.Reliability = nil
		r.Seed = int64(i + 1)
		reqs[i] = r
	}
	return reqs
}

// The restart contract of the disk tier: a new Service over the same
// directory serves every previously computed response byte-identically
// without a single recompute — Misses stays 0, DiskHits counts the
// reads.
func TestDiskTierSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	reqs := distinctReqs(6)
	first := make([][]byte, len(reqs))

	svc := mustNew(t, Config{Workers: 2, DiskDir: dir})
	for i, r := range reqs {
		raw, err := svc.Do(context.Background(), r)
		if err != nil {
			t.Fatal(err)
		}
		first[i] = raw
	}
	if st := svc.Stats(); st.DiskEntries != len(reqs) {
		t.Fatalf("disk tier holds %d entries after %d computes", st.DiskEntries, len(reqs))
	}
	svc.Close()

	// The "restarted node": a fresh Service, same directory, cold
	// memory cache.
	svc2 := mustNew(t, Config{Workers: 2, DiskDir: dir})
	defer svc2.Close()
	for i, r := range reqs {
		raw, err := svc2.Do(context.Background(), r)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(raw, first[i]) {
			t.Fatalf("request %d: restarted node served different bytes", i)
		}
	}
	st := svc2.Stats()
	if st.Misses != 0 {
		t.Errorf("restarted node recomputed %d problems, want 0", st.Misses)
	}
	if st.DiskHits != int64(len(reqs)) {
		t.Errorf("diskHits %d, want %d", st.DiskHits, len(reqs))
	}
	// Disk-loaded entries populate the memory tier: the second round is
	// pure memory hits.
	for _, r := range reqs {
		if _, err := svc2.Do(context.Background(), r); err != nil {
			t.Fatal(err)
		}
	}
	if st := svc2.Stats(); st.DiskHits != int64(len(reqs)) {
		t.Errorf("second round read disk again: diskHits %d", st.DiskHits)
	}
}

// Memory eviction does not lose the key: an entry evicted under
// CacheMax is re-served from disk (a DiskHit), never recomputed.
func TestDiskBacksEvictedEntries(t *testing.T) {
	svc := mustNew(t, Config{Workers: 1, CacheMax: 2, DiskDir: t.TempDir()})
	defer svc.Close()
	reqs := distinctReqs(5)
	for _, r := range reqs {
		if _, err := svc.Do(context.Background(), r); err != nil {
			t.Fatal(err)
		}
	}
	if n := svc.Stats().CacheEntries; n > 2 {
		t.Fatalf("memory cache holds %d entries, max 2", n)
	}
	missesBefore := svc.Stats().Misses
	// reqs[0] was evicted from memory long ago; it must come off disk.
	if _, err := svc.Do(context.Background(), reqs[0]); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.Misses != missesBefore {
		t.Error("evicted entry was recomputed despite the disk tier")
	}
	if st.DiskHits == 0 {
		t.Error("evicted entry not served from disk")
	}
}

// Failed computes must not be persisted: after a restart the failing
// key recomputes (and fails) again instead of replaying a stale error
// — the disk-tier extension of the error-pinning fix.
func TestDiskNeverPersistsErrors(t *testing.T) {
	dir := t.TempDir()
	svc := mustNew(t, Config{Workers: 1, DiskDir: dir})
	if _, err := svc.Do(context.Background(), failingReq()); err == nil {
		t.Fatal("mis-shaped exec matrix accepted")
	}
	if st := svc.Stats(); st.DiskEntries != 0 {
		t.Fatalf("failed compute persisted to disk: %d entries", st.DiskEntries)
	}
	svc.Close()
	svc2 := mustNew(t, Config{Workers: 1, DiskDir: dir})
	defer svc2.Close()
	if _, err := svc2.Do(context.Background(), failingReq()); err == nil {
		t.Fatal("restart turned a failure into a success")
	}
	if st := svc2.Stats(); st.Misses != 1 || st.DiskHits != 0 {
		t.Errorf("restarted node stats %+v: the failing key must recompute", st)
	}
}

// A torn tail — the record a crash interrupted mid-write — is
// truncated at boot: every complete record stays servable and the
// segment accepts appends again.
func TestDiskTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	reqs := distinctReqs(3)
	svc := mustNew(t, Config{Workers: 1, DiskDir: dir})
	first := make([][]byte, len(reqs))
	for i, r := range reqs {
		raw, err := svc.Do(context.Background(), r)
		if err != nil {
			t.Fatal(err)
		}
		first[i] = raw
	}
	svc.Close()

	// Simulate the crash: a half-written record (valid magic, then
	// garbage) at the tail of the active segment.
	seg := filepath.Join(dir, "seg-000000.caft")
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := make([]byte, 40)
	torn[0], torn[1], torn[2], torn[3] = 0x5C, 0xD1, 0xF7, 0xCA // diskMagic, little-endian
	for i := 4; i < len(torn); i++ {
		torn[i] = 0xFF
	}
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	svc2 := mustNew(t, Config{Workers: 1, DiskDir: dir})
	defer svc2.Close()
	for i, r := range reqs {
		raw, err := svc2.Do(context.Background(), r)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(raw, first[i]) {
			t.Fatalf("request %d differs after torn-tail recovery", i)
		}
	}
	if st := svc2.Stats(); st.Misses != 0 {
		t.Errorf("torn tail forced %d recomputes", st.Misses)
	}
	// Appends continue cleanly past the truncation point.
	extra := quickReq()
	extra.Reliability = nil
	extra.Seed = 99
	if _, err := svc2.Do(context.Background(), extra); err != nil {
		t.Fatal(err)
	}
	if st := svc2.Stats(); st.DiskEntries != len(reqs)+1 {
		t.Errorf("disk entries %d after post-recovery append, want %d", st.DiskEntries, len(reqs)+1)
	}
}

// Segment rotation: with a tiny segment cap the store spills across
// files, and a reopen indexes all of them.
func TestDiskSegmentRotation(t *testing.T) {
	old := diskSegMax
	diskSegMax = 256
	defer func() { diskSegMax = old }()

	dir := t.TempDir()
	d, err := openDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	payload := func(i int) []byte { return []byte(fmt.Sprintf("response-%03d-%s", i, "x012345678901234567890123456789")) }
	for i := 0; i < n; i++ {
		if err := d.put(hashKey{a: uint64(i + 1), b: uint64(i + 7)}, payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	if len(d.segs) < 2 {
		t.Fatalf("no rotation happened: %d segments", len(d.segs))
	}
	d.close()

	d2, err := openDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.close()
	if d2.len() != n {
		t.Fatalf("reopened index holds %d entries, want %d", d2.len(), n)
	}
	for i := 0; i < n; i++ {
		got, ok := d2.get(hashKey{a: uint64(i + 1), b: uint64(i + 7)})
		if !ok || !bytes.Equal(got, payload(i)) {
			t.Fatalf("key %d: got %q ok=%v", i, got, ok)
		}
	}
}

// Unknown files and fully corrupt segments must not wedge the boot
// scan.
func TestDiskIgnoresForeignAndCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "seg-000000.caft"), []byte("garbage garbage garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := openDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d.close()
	if d.len() != 0 {
		t.Fatalf("corrupt segment produced %d index entries", d.len())
	}
	if err := d.put(hashKey{a: 1, b: 2}, []byte("resp")); err != nil {
		t.Fatal(err)
	}
	if got, ok := d.get(hashKey{a: 1, b: 2}); !ok || !bytes.Equal(got, []byte("resp")) {
		t.Fatal("put/get after corrupt boot failed")
	}
}
