package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *Service) {
	t.Helper()
	svc := mustNew(t, cfg)
	srv := httptest.NewServer(NewHandler(svc))
	t.Cleanup(func() { srv.Close(); svc.Close() })
	return srv, svc
}

const quickJSON = `{
  "alg": "caft", "eps": 1, "seed": 1,
  "generator": {"kind": "montage", "n": 4, "volume": 100},
  "platform": {"m": 4, "delay": 0.75},
  "reliability": {"samples": 128, "mtbf": 5000, "seed": 3}
}`

func TestHTTPSchedule(t *testing.T) {
	srv, _ := newTestServer(t, Config{Workers: 2})
	resp, err := http.Post(srv.URL+"/schedule", "application/json", strings.NewReader(quickJSON))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	var r Response
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		t.Fatal(err)
	}
	if r.Latency <= 0 || r.Reliability == nil {
		t.Errorf("response implausible: %+v", r)
	}
}

func TestHTTPErrors(t *testing.T) {
	srv, _ := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"malformed json", `{"alg": `, http.StatusBadRequest},
		{"unknown field", `{"alg": "caft", "epz": 1}`, http.StatusBadRequest},
		{"validation", `{"alg": "nosuch", "platform": {"m": 4, "delay": 1}, "generator": {"kind": "fork", "n": 3}}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, err := http.Post(srv.URL+"/schedule", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		var e map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e["error"] == "" {
			t.Errorf("%s: error body missing (%v)", c.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.want)
		}
	}
	// GET on /schedule is not part of the API.
	resp, err := http.Get(srv.URL + "/schedule")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /schedule: status %d, want 405", resp.StatusCode)
	}
}

// Regression test for the internal-error leak: a compute failure that
// is not a bad request (here CAFT asked for more replicas than the
// platform has processors, which only the scheduler itself detects)
// used to ship its raw error string to the client. The 500 body must be
// the fixed generic message; the detail belongs in the server log only.
func TestHTTPInternalErrorBodyGeneric(t *testing.T) {
	srv, _ := newTestServer(t, Config{Workers: 1})
	overCommitted := `{
	  "alg": "caft", "eps": 10, "seed": 1,
	  "generator": {"kind": "montage", "n": 4, "volume": 100},
	  "platform": {"m": 4, "delay": 0.75}
	}`
	resp, err := http.Post(srv.URL+"/schedule", "application/json", strings.NewReader(overCommitted))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if want := "{\"error\":\"internal error\"}\n"; string(raw) != want {
		t.Errorf("500 body %q leaks internals, want %q", raw, want)
	}
}

func TestHTTPHealthzStatsz(t *testing.T) {
	srv, _ := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var health map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil || health["status"] != "ok" {
		t.Errorf("healthz body wrong (%v): %v", err, health)
	}

	// Serve the same request twice, then read the counters.
	for i := 0; i < 2; i++ {
		r, err := http.Post(srv.URL+"/schedule", "application/json", strings.NewReader(quickJSON))
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
	}
	resp2, err := http.Get(srv.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var st StatsSnapshot
	if err := json.NewDecoder(resp2.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Misses != 1 || st.Hits != 1 || st.CacheEntries != 1 {
		t.Errorf("statsz %+v: want 1 miss, 1 hit, 1 entry", st)
	}
	if st.HitRate != 0.5 || st.P50Millis < 0 {
		t.Errorf("statsz derived fields wrong: %+v", st)
	}
}
