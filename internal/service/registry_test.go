package service

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"caft/internal/sched"
	"caft/internal/sched/ftsa"
)

// The drift-pin test of the registry refactor: registering a scheduler
// — with no edits anywhere in the service layer — must make it
// schedulable end-to-end through the HTTP surface, and the unknown-alg
// error must list it. Before the registry, spec.go's name table and
// compute.go's dispatch switch were maintained by hand and could drift
// apart silently.
func TestRegisteredSchedulerServableWithoutServiceEdits(t *testing.T) {
	// A distinct name and an ID far outside the in-tree range, so the
	// process-wide registration cannot collide with real schedulers in
	// sibling tests.
	sched.Register(sched.Descriptor{
		Name: "test-drift-pin", ID: 9000,
		Caps: sched.Caps{AcceptsEps: true, Deterministic: true, Append: true, Insertion: true},
		New: func(p *sched.Problem, eps int, rng *rand.Rand) (*sched.Schedule, error) {
			return ftsa.Schedule(p, eps, rng)
		},
	})

	svc := mustNew(t, Config{Workers: 1})
	defer svc.Close()
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	body := []byte(`{"alg":"test-drift-pin","eps":1,"seed":1,` +
		`"generator":{"kind":"montage","n":4,"volume":100},"platform":{"m":4,"delay":0.75}}`)
	resp, err := http.Post(srv.URL+"/schedule", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, buf.Bytes())
	}
	decoded := decodeResponse(t, buf.Bytes())
	if decoded.Alg != "test-drift-pin" || decoded.Latency <= 0 {
		t.Fatalf("served schedule implausible: %+v", decoded)
	}

	// The 400 error for unknown names is derived from sched.Names(), so
	// it must now mention the just-registered scheduler.
	req := quickReq()
	req.Alg = "nosuch"
	req.Reliability = nil
	_, err = svc.Do(context.Background(), req)
	if !errors.Is(err, ErrBadRequest) {
		t.Fatalf("unknown alg: got %v, want ErrBadRequest", err)
	}
	if !strings.Contains(err.Error(), "test-drift-pin") {
		t.Errorf("unknown-alg error does not list registered schedulers dynamically: %v", err)
	}
}

// Fault-free entries (Caps.AcceptsEps false) must reject eps != 0 at
// validation, generically — not via a hard-coded alg-name check.
func TestFaultFreeCapsRejectEps(t *testing.T) {
	svc := mustNew(t, Config{Workers: 1})
	defer svc.Close()
	for _, d := range sched.Registered() {
		if d.Caps.AcceptsEps {
			continue
		}
		req := quickReq()
		req.Alg = d.Name
		req.Eps = 1
		req.Reliability = nil
		if _, err := svc.Do(context.Background(), req); !errors.Is(err, ErrBadRequest) {
			t.Errorf("%s with eps=1: got %v, want ErrBadRequest", d.Name, err)
		}
	}
}
