package service

import (
	"bytes"
	"io"
	"net/http"
	"time"
)

// forwardedHeader marks one internal routing hop. The owner serves a
// request carrying it locally no matter what its ring says, so routing
// disagreements during membership skew (or a misconfigured peer list)
// degrade to an extra compute instead of a forwarding loop.
const forwardedHeader = "X-Caft-Forwarded"

// defaultPeerTimeout bounds one forwarded request end to end; it must
// cover the owner's compute, so it matches the generous read timeout of
// the HTTP server rather than a connect-scale value.
const defaultPeerTimeout = 60 * time.Second

// peerClient forwards /schedule requests to their owning node. One
// shared client with keep-alive pooling: the cluster is small and
// long-lived, so warm connections are the norm.
type peerClient struct {
	client http.Client
}

func newPeerClient(timeout time.Duration) *peerClient {
	if timeout <= 0 {
		timeout = defaultPeerTimeout
	}
	return &peerClient{client: http.Client{
		Timeout: timeout,
		Transport: &http.Transport{
			MaxIdleConns:        64,
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     120 * time.Second,
		},
	}}
}

// forward re-posts body (the client's verbatim request bytes) to the
// owner and relays status, Retry-After and body back to w. It reports
// false — with nothing written to w — when the peer could not be
// reached, so the caller can fall back to serving locally; determinism
// makes the fallback byte-identical, just a colder cache.
func (p *peerClient) forward(w http.ResponseWriter, owner string, body []byte) bool {
	req, err := http.NewRequest(http.MethodPost, "http://"+owner+"/schedule", bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(forwardedHeader, "1")
	resp, err := p.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	w.Header().Set("Content-Type", "application/json")
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return true
}

// closeIdle drops pooled peer connections; part of Service.Close.
func (p *peerClient) closeIdle() {
	if p != nil {
		p.client.CloseIdleConnections()
	}
}
