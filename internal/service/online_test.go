package service

import (
	"bytes"
	"context"
	"testing"
)

// onlineReq is the canonical online-mode test request: quickstart's
// problem served with the reactive makespan distribution.
func onlineReq() *Request {
	r := quickReq()
	r.Reliability = nil
	r.Mode = "online"
	r.Online = &OnlineSpec{Samples: 96, MTBF: 4000, Seed: 5}
	return r
}

// TestServeOnlineMode serves an online-mode request and checks the
// distribution section: every sample accounted for, quantiles ordered,
// and the reactive engine re-placing work under a failure regime that
// certainly kills mid-run.
func TestServeOnlineMode(t *testing.T) {
	svc := mustNew(t, Config{Workers: 2, MCWorkers: 2})
	defer svc.Close()
	raw, err := svc.Do(context.Background(), onlineReq())
	if err != nil {
		t.Fatal(err)
	}
	resp := decodeResponse(t, raw)
	if resp.Online == nil {
		t.Fatal("online section missing")
	}
	o := resp.Online
	if o.Samples+o.ReplayErrors != 96 {
		t.Fatalf("accounted %d+%d of 96 samples", o.Samples, o.ReplayErrors)
	}
	if o.MeanMakespan == nil || o.MinMakespan == nil || o.P50Makespan == nil || o.P90Makespan == nil || o.MaxMakespan == nil {
		t.Fatalf("distribution incomplete: %+v", o)
	}
	if !(*o.MinMakespan <= *o.P50Makespan && *o.P50Makespan <= *o.P90Makespan && *o.P90Makespan <= *o.MaxMakespan) {
		t.Fatalf("quantiles out of order: %+v", o)
	}
	if *o.MeanMakespan < resp.Latency {
		t.Fatalf("mean online makespan %v below the fault-free latency %v", *o.MeanMakespan, resp.Latency)
	}
	// MTBF = 4000 vs latency in the thousands: crashes are frequent
	// enough that the re-mapper must have fired.
	if o.MeanRescheduled <= 0 {
		t.Fatalf("no reactive re-placements under MTBF %v with latency %v", 4000.0, resp.Latency)
	}
	// Static mode of the same problem: no re-placements, and losses
	// appear where the reactive mode had none.
	static := onlineReq()
	static.Online.Static = true
	rawStatic, err := svc.Do(context.Background(), static)
	if err != nil {
		t.Fatal(err)
	}
	so := decodeResponse(t, rawStatic).Online
	if so == nil || so.MeanRescheduled != 0 {
		t.Fatalf("static online run re-placed work: %+v", so)
	}
	if so.Lost <= o.Lost {
		t.Fatalf("static mode lost %d runs, reactive %d — expected replication alone to lose more under this regime", so.Lost, o.Lost)
	}
}

// TestOnlineResponsesDeterministic pins online-mode responses across
// worker-pool configurations and serve/cache paths: byte-identical.
func TestOnlineResponsesDeterministic(t *testing.T) {
	var first []byte
	for _, cfg := range []Config{{Workers: 1, MCWorkers: 1}, {Workers: 4, MCWorkers: 8}} {
		svc := mustNew(t, cfg)
		raw, err := svc.Do(context.Background(), onlineReq())
		if err != nil {
			t.Fatal(err)
		}
		again, err := svc.Do(context.Background(), onlineReq())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(raw, again) {
			t.Fatal("cache hit served different bytes")
		}
		if first == nil {
			first = raw
		} else if !bytes.Equal(first, raw) {
			t.Fatal("online response differs across worker configurations")
		}
		st := svc.Stats()
		if st.Misses != 1 || st.Hits != 1 {
			t.Fatalf("stats misses=%d hits=%d, want 1/1", st.Misses, st.Hits)
		}
		svc.Close()
	}
}

// TestOnlineValidationAndHash covers the new request surface: mode and
// spec must be set together, bad specs are rejected, and the mode and
// every online field participate in the cache key while the default
// spelling does not.
func TestOnlineValidationAndHash(t *testing.T) {
	bad := []func(r *Request){
		func(r *Request) { r.Mode = "online"; r.Online = nil },
		func(r *Request) { r.Mode = "offline" },
		func(r *Request) { r.Online = &OnlineSpec{Samples: 1, MTBF: 1} }, // spec without mode
		func(r *Request) { r.Mode = "online"; r.Online = &OnlineSpec{Samples: 0, MTBF: 1} },
		func(r *Request) { r.Mode = "online"; r.Online = &OnlineSpec{Samples: maxOnlineSamples + 1, MTBF: 1} },
		func(r *Request) { r.Mode = "online"; r.Online = &OnlineSpec{Samples: 8} }, // no MTBF
		func(r *Request) { r.Mode = "online"; r.Online = &OnlineSpec{Samples: 8, MTBF: 1, MTBFLo: 1, MTBFHi: 2} },
		func(r *Request) { r.Mode = "online"; r.Online = &OnlineSpec{Samples: 8, MTBF: 1, Kind: "weibull"} },
		func(r *Request) { r.Mode = "online"; r.Online = &OnlineSpec{Samples: 8, MTBF: 1, Shape: 2} },
	}
	for i, mutate := range bad {
		r := quickReq()
		r.Reliability = nil
		mutate(r)
		if err := r.validate(); err == nil {
			t.Errorf("bad online request %d accepted", i)
		}
	}

	base := onlineReq()
	if err := base.validate(); err != nil {
		t.Fatal(err)
	}
	spelled := onlineReq()
	spelled.Mode = "online"
	spelled.Online.Kind = "exponential"
	if base.hash() != spelled.hash() {
		t.Error("default spelling split the cache key")
	}
	noMode := quickReq()
	noMode.Reliability = nil
	schedule := quickReq()
	schedule.Reliability = nil
	schedule.Mode = "schedule"
	if noMode.hash() != schedule.hash() {
		t.Error("explicit schedule mode split the cache key")
	}
	variants := []func(r *Request){
		func(r *Request) { r.Online.Samples = 97 },
		func(r *Request) { r.Online.MTBF = 4001 },
		func(r *Request) { r.Online.Seed = 6 },
		func(r *Request) { r.Online.Static = true },
		func(r *Request) { r.Online.Kind = "weibull"; r.Online.Shape = 2 },
		func(r *Request) { r.Online.MTBF = 0; r.Online.MTBFLo = 100; r.Online.MTBFHi = 200 },
	}
	for i, mutate := range variants {
		v := onlineReq()
		mutate(v)
		if err := v.validate(); err != nil {
			t.Fatalf("variant %d invalid: %v", i, err)
		}
		if v.hash() == base.hash() {
			t.Errorf("online variant %d shares the base cache key", i)
		}
	}
	if noMode.hash() == base.hash() {
		t.Error("online mode does not change the cache key")
	}
}

// TestOnlineHashAllocFree keeps the new mode fields on the
// allocation-free accept path.
func TestOnlineHashAllocFree(t *testing.T) {
	r := onlineReq()
	allocs := testing.AllocsPerRun(200, func() {
		if err := r.validate(); err != nil {
			t.Fatal(err)
		}
		_ = r.hash()
	})
	if allocs != 0 {
		t.Fatalf("validate+hash of an online request allocates %.1f/op, want 0", allocs)
	}
}
