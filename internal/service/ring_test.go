package service

import (
	"fmt"
	"testing"
)

func testKeys(n int) []hashKey {
	keys := make([]hashKey, n)
	for i := range keys {
		h := newDigest()
		h.str("ring-test-key")
		h.int(i)
		keys[i] = h.sum()
	}
	return keys
}

// Ownership must be a pure function of the member set: every node
// builds the identical ring whatever order (or duplication) its peer
// list arrives in, or routing would loop.
func TestRingDeterministicAcrossMemberOrder(t *testing.T) {
	a, err := newRing("n1:1", []string{"n1:1", "n2:2", "n3:3"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := newRing("n3:3", []string{"n3:3", "n2:2", "n1:1", "n2:2"})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys(2000) {
		if a.owner(k) != b.owner(k) {
			t.Fatalf("ring disagrees on key %v: %q vs %q", k, a.owner(k), b.owner(k))
		}
	}
}

// With vnodes, a small cluster's ownership must be reasonably even —
// every node owns a share, none owns almost everything.
func TestRingSpreadsOwnership(t *testing.T) {
	nodes := []string{"n1:1", "n2:2", "n3:3"}
	r, err := newRing("n1:1", nodes)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	keys := testKeys(6000)
	for _, k := range keys {
		counts[r.owner(k)]++
	}
	for _, n := range nodes {
		share := float64(counts[n]) / float64(len(keys))
		if share < 0.10 || share > 0.60 {
			t.Errorf("node %s owns %.0f%% of the keyspace — vnode spread broken (%v)", n, 100*share, counts)
		}
	}
}

// A single-node ring owns everything (the degenerate cluster).
func TestRingSingleNodeOwnsAll(t *testing.T) {
	r, err := newRing("n1:1", []string{"n1:1"})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys(100) {
		if r.owner(k) != "n1:1" {
			t.Fatal("single-node ring routed a key elsewhere")
		}
	}
}

func TestRingRejectsBadMembership(t *testing.T) {
	if _, err := newRing("", []string{"a:1"}); err == nil {
		t.Error("empty self accepted")
	}
	if _, err := newRing("b:2", []string{"a:1"}); err == nil {
		t.Error("self outside the member list accepted")
	}
	if _, err := newRing("a:1", []string{"a:1", ""}); err == nil {
		t.Error("empty peer address accepted")
	}
}

// Owner lookup sits on every clustered request; it must not allocate.
func TestRingOwnerAllocFree(t *testing.T) {
	r, err := newRing("n1:1", []string{"n1:1", "n2:2", "n3:3"})
	if err != nil {
		t.Fatal(err)
	}
	keys := testKeys(64)
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		_ = r.owner(keys[i%len(keys)])
		i++
	})
	if allocs > 0 {
		t.Errorf("ring.owner allocates %.1f per call, want 0", allocs)
	}
}

func BenchmarkRingOwner(b *testing.B) {
	nodes := make([]string, 8)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("node%d:8080", i)
	}
	r, err := newRing(nodes[0], nodes)
	if err != nil {
		b.Fatal(err)
	}
	keys := testKeys(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.owner(keys[i%len(keys)])
	}
}
