package service

import (
	"context"
	"testing"
)

// BenchmarkServeCached measures the cache-hit path: canonical hash,
// lookup, stats. No scheduling work runs and the service layer
// allocates nothing per request — TestServeCachedAllocFree pins the
// zero, this benchmark reports it (run with -benchmem).
func BenchmarkServeCached(b *testing.B) {
	svc := New(Config{Workers: 2})
	defer svc.Close()
	req := quickReq()
	if _, err := svc.Do(context.Background(), req); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.Do(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
}

// The acceptance pin behind BenchmarkServeCached: a cache hit must not
// allocate in the service layer.
func TestServeCachedAllocFree(t *testing.T) {
	svc := New(Config{Workers: 2})
	defer svc.Close()
	req := quickReq()
	if _, err := svc.Do(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	var err error
	allocs := testing.AllocsPerRun(200, func() {
		_, err = svc.Do(context.Background(), req)
	})
	if err != nil {
		t.Fatal(err)
	}
	if allocs > 0 {
		t.Errorf("cache-hit path allocates %.1f per request, want 0", allocs)
	}
}

// BenchmarkServeMiss measures a full compute (schedule + encode) for
// scale: the denominator that makes the cached path's win visible.
func BenchmarkServeMiss(b *testing.B) {
	svc := New(Config{Workers: 2})
	defer svc.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		req := quickReq()
		req.Reliability = nil
		req.Seed = int64(i + 1) // unique problem per iteration
		if _, err := svc.Do(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
}
