package service

import (
	"context"
	"fmt"
	"testing"
)

// BenchmarkServeCached measures the cache-hit path: canonical hash,
// lookup, stats. No scheduling work runs and the service layer
// allocates nothing per request — TestServeCachedAllocFree pins the
// zero, this benchmark reports it (run with -benchmem).
func BenchmarkServeCached(b *testing.B) {
	svc := mustNew(b, Config{Workers: 2})
	defer svc.Close()
	req := quickReq()
	if _, err := svc.Do(context.Background(), req); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.Do(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
}

// The acceptance pin behind BenchmarkServeCached: a cache hit must not
// allocate in the service layer.
func TestServeCachedAllocFree(t *testing.T) {
	svc := mustNew(t, Config{Workers: 2})
	defer svc.Close()
	req := quickReq()
	if _, err := svc.Do(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	var err error
	allocs := testing.AllocsPerRun(200, func() {
		_, err = svc.Do(context.Background(), req)
	})
	if err != nil {
		t.Fatal(err)
	}
	if allocs > 0 {
		t.Errorf("cache-hit path allocates %.1f per request, want 0", allocs)
	}
}

// BenchmarkCacheEvictMiss measures the miss path of a full bounded
// cache — each lookup of a fresh key must evict a completed entry
// first. Eviction pops the completed-key queue instead of scanning the
// map under the write lock, so per-miss cost must stay flat as the
// cache grows; before the fix it was O(cache size) per miss.
func BenchmarkCacheEvictMiss(b *testing.B) {
	for _, size := range []int{1 << 10, 1 << 16} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			c := newCache(size)
			complete := func(key hashKey) {
				e, created := c.lookup(key)
				if created {
					close(e.done)
					c.markDone(key, e)
				}
			}
			for i := 0; i < size; i++ {
				complete(hashKey{a: uint64(i + 1), b: uint64(i) << 7})
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				complete(hashKey{a: uint64(size + i + 1), b: uint64(size+i) << 7})
			}
		})
	}
}

// BenchmarkServeMiss measures a full compute (schedule + encode) for
// scale: the denominator that makes the cached path's win visible.
func BenchmarkServeMiss(b *testing.B) {
	svc := mustNew(b, Config{Workers: 2})
	defer svc.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		req := quickReq()
		req.Reliability = nil
		req.Seed = int64(i + 1) // unique problem per iteration
		if _, err := svc.Do(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
}
