package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"caft/internal/expt"
	"caft/internal/sched"
)

// Response is the wire form of one served schedule. Field order is
// fixed and encoding/json is deterministic over it, so equal requests
// produce byte-identical responses — across runs, worker counts and
// cache hits versus misses.
type Response struct {
	// Key is the canonical content hash of the request (hex) — the
	// cache key, returned so clients can correlate and debug.
	Key    string `json:"key"`
	Alg    string `json:"alg"`
	Eps    int    `json:"eps"`
	Policy string `json:"policy"`
	Model  string `json:"model"`
	Tasks  int    `json:"tasks"`
	Procs  int    `json:"procs"`

	// Latency is the scheduled (zero-crash) latency; Makespan the
	// completion of the very last replica.
	Latency  float64 `json:"latency"`
	Makespan float64 `json:"makespan"`
	Replicas int     `json:"replicas"`
	Messages int     `json:"messages"`

	Schedule ScheduleJSON `json:"schedule"`

	Reliability *ReliabilityResult `json:"reliability,omitempty"`

	// Online carries the reactive makespan distribution of mode=online
	// requests.
	Online *OnlineResult `json:"online,omitempty"`
}

// ScheduleJSON carries the placed replicas and communications. The
// wire records are service-owned (not the internal sched structs):
// camelCase like the rest of the response, and without the journal
// tie-break Seq counter, which has no API meaning.
type ScheduleJSON struct {
	Replicas []ReplicaJSON `json:"replicas"`
	Comms    []CommJSON    `json:"comms"`
}

// ReplicaJSON is one scheduled copy of a task.
type ReplicaJSON struct {
	Task   int     `json:"task"`
	Copy   int     `json:"copy"`
	Proc   int     `json:"proc"`
	Start  float64 `json:"start"`
	Finish float64 `json:"finish"`
}

// CommJSON is one scheduled data transfer along a precedence edge.
type CommJSON struct {
	From    int     `json:"from"`
	To      int     `json:"to"`
	SrcCopy int     `json:"srcCopy"`
	DstCopy int     `json:"dstCopy"`
	SrcProc int     `json:"srcProc"`
	DstProc int     `json:"dstProc"`
	Volume  float64 `json:"volume"`
	Dur     float64 `json:"dur"`
	Start   float64 `json:"start"`
	Finish  float64 `json:"finish"`
	Intra   bool    `json:"intra"`
}

// ReliabilityResult is the Monte-Carlo estimate section of a response.
type ReliabilityResult struct {
	// Samples is the number of evaluated crash scenarios (engine
	// failures excluded; see ReplayErrors).
	Samples int `json:"samples"`
	// Unreliability is the fraction of scenarios that lost a task.
	Unreliability float64 `json:"unreliability"`
	// MeanLatency averages the latency of the surviving scenarios; null
	// when none survived.
	MeanLatency *float64 `json:"meanLatency"`
	// ReplayErrors counts scenarios the replay engine failed to
	// evaluate; they are excluded from the estimates.
	ReplayErrors int `json:"replayErrors"`
}

// OnlineResult is the online-mode section of a response: the achieved
// makespan distribution over sampled failure traces replayed through
// the event-driven engine (reactive re-mapping unless the spec set
// static).
type OnlineResult struct {
	// Samples is the number of evaluated traces (engine failures
	// excluded; see ReplayErrors).
	Samples int `json:"samples"`
	// Lost counts traces under which some task never completed — zero
	// for reactive runs unless crashes exhaust the platform.
	Lost int `json:"lost"`
	// Unreliability is Lost / Samples.
	Unreliability float64 `json:"unreliability"`
	// Makespan distribution over the completed runs; null when none
	// completed.
	MeanMakespan *float64 `json:"meanMakespan"`
	MinMakespan  *float64 `json:"minMakespan"`
	P50Makespan  *float64 `json:"p50Makespan"`
	P90Makespan  *float64 `json:"p90Makespan"`
	MaxMakespan  *float64 `json:"maxMakespan"`
	// MeanRescheduled is the mean number of reactive re-placements per
	// completed run (0 in static mode).
	MeanRescheduled float64 `json:"meanRescheduled"`
	// ReplayErrors counts traces the engine failed to evaluate.
	ReplayErrors int `json:"replayErrors"`
}

// scratch is the per-worker reusable state: the response encode buffer.
// The library's scheduling state and replayers are rebuilt per problem
// (they are functions of the schedule), but the buffer — the service
// layer's own allocation — amortizes across requests.
//
//caft:confined
type scratch struct {
	buf bytes.Buffer
}

func newScratch() *scratch { return &scratch{} }

// compute resolves, schedules and encodes one request. It runs on
// exactly one pool worker per cache entry; everything here may assume
// single-goroutine access to the problem's state.
func (s *Service) compute(sc *scratch, req *Request) ([]byte, error) {
	p, rng, err := req.buildProblem()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	schedule, err := runScheduler(req.Alg, p, req.Eps, rng)
	if err != nil {
		return nil, fmt.Errorf("scheduling failed: %w", err)
	}

	policy, _ := req.policy()
	model, _ := req.model()
	resp := Response{
		Key:      formatKey(req.hash()),
		Alg:      req.Alg,
		Eps:      req.Eps,
		Policy:   policy.String(),
		Model:    model.String(),
		Tasks:    p.G.NumTasks(),
		Procs:    p.Plat.M,
		Latency:  schedule.ScheduledLatency(),
		Makespan: schedule.MakespanAll(),
		Replicas: schedule.ReplicaCount(),
		Messages: schedule.MessageCount(),
	}
	resp.Schedule.Comms = make([]CommJSON, len(schedule.Comms))
	for i, c := range schedule.Comms {
		resp.Schedule.Comms[i] = CommJSON{
			From: int(c.From), To: int(c.To),
			SrcCopy: c.SrcCopy, DstCopy: c.DstCopy,
			SrcProc: c.SrcProc, DstProc: c.DstProc,
			Volume: c.Volume, Dur: c.Dur,
			Start: c.Start, Finish: c.Finish, Intra: c.Intra,
		}
	}
	resp.Schedule.Replicas = make([]ReplicaJSON, 0, resp.Replicas)
	for t := range schedule.Reps {
		for _, rep := range schedule.Reps[t] {
			resp.Schedule.Replicas = append(resp.Schedule.Replicas, ReplicaJSON{
				Task: int(rep.Task), Copy: rep.Copy, Proc: rep.Proc,
				Start: rep.Start, Finish: rep.Finish,
			})
		}
	}

	if rs := req.Reliability; rs != nil {
		tally, err := expt.EstimateReliability(schedule, rs.buildModel(p.Plat.M), rs.Samples, rs.Seed, s.cfg.MCWorkers)
		if err != nil {
			return nil, fmt.Errorf("reliability estimate failed: %w", err)
		}
		unrel := tally.Unreliability()
		if math.IsNaN(unrel) {
			// Nothing evaluated (every scenario hit a replay-engine
			// error): report 0 with Samples 0 — JSON has no NaN.
			unrel = 0
		}
		rr := &ReliabilityResult{
			Samples:       tally.Draws(),
			Unreliability: unrel,
			ReplayErrors:  tally.ReplayErrors,
		}
		if lat := tally.MeanLatency(); !math.IsNaN(lat) {
			rr.MeanLatency = &lat
		}
		resp.Reliability = rr
	}

	if os := req.Online; os != nil {
		tally, err := expt.EstimateOnline(schedule, os.rel().buildModel(p.Plat.M), os.Samples, os.Seed, s.cfg.MCWorkers, !os.Static)
		if err != nil {
			return nil, fmt.Errorf("online replay failed: %w", err)
		}
		or := &OnlineResult{
			Samples:      len(tally.Makespans) + tally.Lost,
			Lost:         tally.Lost,
			ReplayErrors: tally.ReplayErrors,
		}
		if or.Samples > 0 {
			or.Unreliability = float64(tally.Lost) / float64(or.Samples)
		}
		if n := len(tally.Makespans); n > 0 {
			sorted := append([]float64(nil), tally.Makespans...)
			sort.Float64s(sorted)
			mean := 0.0
			for _, v := range sorted {
				mean += v
			}
			mean /= float64(n)
			or.MeanMakespan = &mean
			or.MinMakespan = &sorted[0]
			or.P50Makespan = &sorted[(n-1)/2]
			or.P90Makespan = &sorted[(n-1)*9/10]
			or.MaxMakespan = &sorted[n-1]
			or.MeanRescheduled = float64(tally.Rescheduled) / float64(n)
		}
		resp.Online = or
	}

	sc.buf.Reset()
	enc := json.NewEncoder(&sc.buf)
	if err := enc.Encode(&resp); err != nil {
		return nil, err
	}
	return append([]byte(nil), sc.buf.Bytes()...), nil
}

// formatKey renders the 128-bit cache key as 32 hex digits.
func formatKey(k hashKey) string { return fmt.Sprintf("%016x%016x", k.a, k.b) }

// runScheduler dispatches through the sched registry: any scheduler
// package linked into the binary is servable by name, with no switch to
// keep in sync with validation.
func runScheduler(alg string, p *sched.Problem, eps int, rng *rand.Rand) (*sched.Schedule, error) {
	d, ok := sched.Lookup(alg)
	if !ok {
		return nil, fmt.Errorf("%w: unknown alg %q", ErrBadRequest, alg)
	}
	return d.New(p, eps, rng)
}
