package service

import "sync/atomic"

// admission bounds the number of computes a node accepts at once —
// running on the worker pool plus queued on the pool handoff. When the
// bound is hit, new computes are shed immediately with ErrOverloaded
// (HTTP 429 + Retry-After) instead of queueing without limit: under
// sustained overload a bounded queue keeps latency for admitted work
// flat and gives clients an honest backpressure signal they can retry
// against, where an unbounded queue only converts overload into
// timeouts. Cache hits (memory or disk) are never shed — they consume
// no worker.
//
// A nil *admission admits everything (AdmitMax = 0, the historical
// behavior).
type admission struct {
	max int64
	cur atomic.Int64
}

// newAdmission returns the admission gate for max admitted computes, or
// nil for max <= 0 (unbounded).
func newAdmission(max int) *admission {
	if max <= 0 {
		return nil
	}
	return &admission{max: int64(max)}
}

// acquire claims one admission slot; it reports false when the gate is
// full (the caller must shed). Allocation-free: it sits on the cache-
// miss serving path.
//
//caft:zeroalloc
func (a *admission) acquire() bool {
	if a == nil {
		return true
	}
	for {
		c := a.cur.Load()
		if c >= a.max {
			return false
		}
		if a.cur.CompareAndSwap(c, c+1) {
			return true
		}
	}
}

// release returns a slot claimed by acquire — after the compute
// finished, or when the handoff was abandoned.
//
//caft:zeroalloc
func (a *admission) release() {
	if a != nil {
		a.cur.Add(-1)
	}
}
