package service

import "sync"

// entry is one content-addressed cache slot. done is closed when the
// compute finishes; resp and err are written exactly once before that
// and immutable afterwards, so any number of readers may share them.
type entry struct {
	done chan struct{}
	resp []byte
	err  error
}

// cache maps canonical request hashes to entries. It doubles as the
// singleflight table: the first requester of a key creates the entry
// (and owns the compute), every later requester — concurrent or not —
// finds it and waits on done. The read path takes only an RLock and
// allocates nothing.
//
// Only successful computes stay resident: the worker removes an entry
// whose compute errored (remove) before closing done, so collapsed
// waiters still observe the error but the next identical request
// recomputes instead of being re-served a pinned failure.
//
// Eviction is O(1) amortized: every completed resident key is pushed
// onto doneq (markDone), and evictLocked pops candidates instead of
// scanning the map. The map scan survives only as a fallback for the
// instant between close(done) and markDone.
type cache struct {
	mu  sync.RWMutex
	m   map[hashKey]*entry
	max int // entries; 0 = unbounded

	// doneq is a FIFO of completed resident keys — eviction candidates.
	// head indexes the next pop; the backing array is compacted when the
	// dead prefix dominates. Keys are pushed at most once per completion
	// and popped at most once, so the live region stays bounded by the
	// resident completed entries. Maintained only when max > 0.
	doneq []hashKey
	head  int
}

func newCache(max int) *cache {
	return &cache{m: make(map[hashKey]*entry), max: max}
}

// lookup returns the entry for key, creating it when absent. created
// reports whether the caller owns the compute for this entry.
//
//caft:zeroalloc
func (c *cache) lookup(key hashKey) (e *entry, created bool) {
	c.mu.RLock()
	e = c.m[key]
	c.mu.RUnlock()
	if e != nil {
		return e, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e = c.m[key]; e != nil {
		return e, false
	}
	if c.max > 0 && len(c.m) >= c.max {
		c.evictLocked()
	}
	e = &entry{done: make(chan struct{})} //caft:alloc-ok cache-miss entry; the hit path allocates nothing
	c.m[key] = e
	return e, true
}

// evictLocked drops one completed entry. Candidates come off doneq in
// completion order (oldest-completed first), skipping keys whose entry
// was already removed or replaced; the full map scan runs only when the
// queue is empty — either nothing resident ever completed, or a worker
// sits between close(done) and markDone. In-flight entries are never
// evicted, so their waiters always resolve; if every entry is in flight
// the cache temporarily exceeds max rather than blocking.
//
//caft:zeroalloc
func (c *cache) evictLocked() {
	for c.head < len(c.doneq) {
		k := c.doneq[c.head]
		c.head++
		if c.head == len(c.doneq) {
			c.doneq, c.head = c.doneq[:0], 0
		}
		e := c.m[k]
		if e == nil {
			continue // removed since completion (failed, abandoned, re-keyed)
		}
		select {
		case <-e.done:
			delete(c.m, k)
			return
		default:
			// The key was reused by a newer, still in-flight entry; its
			// completion will re-push it.
		}
	}
	for k, e := range c.m { //caft:unordered-ok fallback eviction victim is deliberately arbitrary
		select {
		case <-e.done:
			delete(c.m, k)
			return
		default:
		}
	}
}

// markDone records a completed resident entry as an eviction candidate.
// Called after close(e.done); a no-op for unbounded caches (nothing is
// ever evicted) and for entries that already left the map.
func (c *cache) markDone(key hashKey, e *entry) {
	if c.max == 0 {
		return
	}
	c.mu.Lock()
	if c.m[key] == e {
		if c.head > 0 && c.head == len(c.doneq) {
			c.doneq, c.head = c.doneq[:0], 0
		}
		c.doneq = append(c.doneq, key)
	}
	c.mu.Unlock()
}

// remove drops the entry for key if it is still the one stored.
// Abandoning creators use it so a never-computed entry does not pin the
// key forever, and workers use it for computes that errored — running
// *before* close(e.done), so waiters already collapsed onto e still
// receive the error through their entry pointer while the key is free
// again and the next identical request recomputes.
//
//caft:zeroalloc
func (c *cache) remove(key hashKey, e *entry) {
	c.mu.Lock()
	if c.m[key] == e {
		delete(c.m, key)
	}
	c.mu.Unlock()
}

//caft:zeroalloc
func (c *cache) len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}
