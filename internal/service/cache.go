package service

import "sync"

// entry is one content-addressed cache slot. done is closed when the
// compute finishes; resp and err are written exactly once before that
// and immutable afterwards, so any number of readers may share them.
type entry struct {
	done chan struct{}
	resp []byte
	err  error
}

// cache maps canonical request hashes to entries. It doubles as the
// singleflight table: the first requester of a key creates the entry
// (and owns the compute), every later requester — concurrent or not —
// finds it and waits on done. The read path takes only an RLock and
// allocates nothing.
type cache struct {
	mu  sync.RWMutex
	m   map[hashKey]*entry
	max int // entries; 0 = unbounded
}

func newCache(max int) *cache {
	return &cache{m: make(map[hashKey]*entry), max: max}
}

// lookup returns the entry for key, creating it when absent. created
// reports whether the caller owns the compute for this entry.
//
//caft:zeroalloc
func (c *cache) lookup(key hashKey) (e *entry, created bool) {
	c.mu.RLock()
	e = c.m[key]
	c.mu.RUnlock()
	if e != nil {
		return e, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e = c.m[key]; e != nil {
		return e, false
	}
	if c.max > 0 && len(c.m) >= c.max {
		c.evictLocked()
	}
	e = &entry{done: make(chan struct{})} //caft:alloc-ok cache-miss entry; the hit path allocates nothing
	c.m[key] = e
	return e, true
}

// evictLocked drops one completed entry (map-iteration order, i.e.
// effectively random). In-flight entries are never evicted, so their
// waiters always resolve; if every entry is in flight the cache
// temporarily exceeds max rather than blocking.
//
//caft:zeroalloc
func (c *cache) evictLocked() {
	for k, e := range c.m { //caft:unordered-ok eviction victim is deliberately arbitrary
		select {
		case <-e.done:
			delete(c.m, k)
			return
		default:
		}
	}
}

// remove drops the entry for key if it is still the one stored —
// abandoning creators use it so a never-computed entry does not pin the
// key forever.
//
//caft:zeroalloc
func (c *cache) remove(key hashKey, e *entry) {
	c.mu.Lock()
	if c.m[key] == e {
		delete(c.m, key)
	}
	c.mu.Unlock()
}

//caft:zeroalloc
func (c *cache) len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}
