package service

import (
	"encoding/json"
	"errors"
	"net/http"
)

// maxRequestBytes bounds one /schedule body (inline DAGs included).
const maxRequestBytes = 8 << 20

// NewHandler returns the caftd HTTP API over s:
//
//	POST /schedule  — schedule one problem (Request JSON in, Response JSON out)
//	GET  /healthz   — liveness
//	GET  /statsz    — serving counters (StatsSnapshot JSON)
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /schedule", s.handleSchedule)
	mux.HandleFunc("GET /healthz", handleHealthz)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	return mux
}

func (s *Service) handleSchedule(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	var req Request
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed request: "+err.Error())
		return
	}
	resp, err := s.Do(r.Context(), &req)
	switch {
	case errors.Is(err, ErrBadRequest):
		writeError(w, http.StatusBadRequest, err.Error())
	case err != nil:
		writeError(w, http.StatusInternalServerError, err.Error())
	default:
		w.Header().Set("Content-Type", "application/json")
		w.Write(resp)
	}
}

func handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Write([]byte("{\"status\":\"ok\"}\n"))
}

func (s *Service) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Stats())
}

func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
