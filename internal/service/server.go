package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"log"
	"net/http"
)

// maxRequestBytes bounds one /schedule body (inline DAGs included).
const maxRequestBytes = 8 << 20

// NewHandler returns the caftd HTTP API over s:
//
//	POST /schedule  — schedule one problem (Request JSON in, Response JSON out)
//	GET  /healthz   — liveness
//	GET  /statsz    — serving counters (StatsSnapshot JSON)
//
// With a cluster configured (Config.Peers), /schedule routes each
// request to the node owning its canonical hash: non-owned keys are
// forwarded verbatim with one internal hop (forwardedHeader is the
// loop guard), so N nodes share one effective cache and concurrent
// identical requests collapse onto the owner's single in-flight
// compute regardless of which node they entered through.
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /schedule", s.handleSchedule)
	mux.HandleFunc("GET /healthz", handleHealthz)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	return mux
}

func (s *Service) handleSchedule(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "unreadable request: "+err.Error())
		return
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var req Request
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed request: "+err.Error())
		return
	}
	if s.ring != nil && r.Header.Get(forwardedHeader) == "" {
		// Validate before routing so garbage is rejected here instead
		// of spending a hop; the wrapped message matches Do's.
		if err := req.validate(); err != nil {
			s.st.badRequests.Add(1)
			writeError(w, http.StatusBadRequest, ErrBadRequest.Error()+": "+err.Error())
			return
		}
		if owner := s.ring.owner(req.hash()); owner != s.ring.self {
			s.st.forwards.Add(1)
			if s.peers.forward(w, owner, body) {
				return
			}
			// Peer unreachable: serve locally. Responses are a pure
			// function of the request, so the fallback is byte-identical
			// to what the owner would have served — only the cache runs
			// colder until the peer returns.
			s.st.forwardErrors.Add(1)
		}
	}
	resp, err := s.Do(r.Context(), &req)
	switch {
	case errors.Is(err, ErrBadRequest):
		writeError(w, http.StatusBadRequest, err.Error())
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "overloaded, retry later")
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, "shutting down")
	case err != nil:
		// Internal failures must not leak compute internals to clients;
		// the detail goes to the server log, the body stays generic.
		log.Printf("caftd: /schedule failed: %v", err)
		writeError(w, http.StatusInternalServerError, "internal error")
	default:
		w.Header().Set("Content-Type", "application/json")
		w.Write(resp)
	}
}

func handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Write([]byte("{\"status\":\"ok\"}\n"))
}

func (s *Service) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Stats())
}

func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
