// Package service implements the caftd scheduling service: a
// long-running, concurrent front end over the library core that accepts
// scheduling problems as JSON, runs any registered scheduler under
// either reservation policy, and returns the schedule plus optional
// Monte-Carlo reliability estimates — or, in "mode":"online", the
// reactive makespan distribution of the schedule replayed through the
// event-driven online rescheduling engine (internal/online).
//
// The layer is built for serving, not for one-shot CLI runs (see
// DESIGN.md S6):
//
//   - responses are cached content-addressed: a 128-bit FNV-style content hash of
//     the canonicalized problem keys an immutable encoded response, so a
//     repeated request does no scheduling work and allocates nothing in
//     this layer;
//   - duplicate in-flight requests are collapsed singleflight-style:
//     concurrent identical requests trigger exactly one compute and the
//     rest wait on the same cache entry;
//   - computes run on a bounded worker pool. The library types
//     (sched.State, sim.Replayer) are single-goroutine by design, so
//     the pool is the concurrency boundary: each worker owns its
//     scratch and runs one problem at a time;
//   - the reliability Monte-Carlo path fans out in deterministic
//     batches on the expt work-unit pool (expt.EstimateReliability), so
//     every response is a pure function of the request — byte-identical
//     across runs and worker counts.
//
//caft:deterministic
package service

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"caft/internal/dag"
	"caft/internal/failure"
	"caft/internal/gen"
	"caft/internal/platform"
	"caft/internal/sched"
	_ "caft/internal/sched/all" // populate the scheduler registry
	"caft/internal/timeline"
	"caft/internal/topology"
)

// Request is one scheduling problem in wire form. Exactly one of DAG
// (the dagen JSON format, inline) and Generator must be set. Zero
// values of optional fields mean their documented defaults; the
// canonical content hash resolves defaults first, so a minimal request
// and its fully spelled-out form share a cache entry.
type Request struct {
	// Alg selects the scheduler by its registry name (sched.Names():
	// heft, caft, caft-greedy, ftsa, ftbar, ...). Any scheduler
	// registered with the sched registry is servable without service
	// changes.
	Alg string `json:"alg"`
	// Eps is the number of arbitrary fail-stop failures the schedule
	// must tolerate. It must be 0 for fault-free references (schedulers
	// whose capability flags do not accept eps, e.g. heft).
	Eps int `json:"eps,omitempty"`
	// Policy is the timeline reservation policy: append (default) or
	// insertion.
	Policy string `json:"policy,omitempty"`
	// Model is the communication model: one-port (default) or
	// macro-dataflow.
	Model string `json:"model,omitempty"`
	// Seed drives every random draw of the request — platform delays,
	// execution matrix and scheduler tie-breaks — in a fixed stream
	// order, making the response a pure function of the request.
	Seed int64 `json:"seed,omitempty"`

	// DAG is an inline task graph in the dagen JSON format.
	DAG *dag.DAG `json:"dag,omitempty"`
	// Generator describes a generated graph ({kind, n, seed, ...}); see
	// gen.Spec.
	Generator *gen.Spec `json:"generator,omitempty"`

	Platform PlatformSpec `json:"platform"`
	// Topology optionally routes communications over a sparse
	// interconnect instead of the default clique.
	Topology *TopologySpec `json:"topology,omitempty"`

	// Exec is an explicit execution-time matrix E[task][proc]. When
	// absent, a matrix is generated to hit Granularity.
	Exec [][]float64 `json:"exec,omitempty"`
	// Granularity targets the generated execution matrix (default 1.0);
	// it must be 0 when Exec is given.
	Granularity float64 `json:"granularity,omitempty"`

	// Reliability, when set, adds Monte-Carlo reliability and
	// expected-latency estimates to the response.
	Reliability *ReliabilitySpec `json:"reliability,omitempty"`

	// Mode selects the serving product: "schedule" (the default) returns
	// the static schedule; "online" additionally replays sampled failure
	// traces through the event-driven reactive engine (internal/online)
	// and returns the achieved makespan distribution.
	Mode string `json:"mode,omitempty"`
	// Online configures the online-mode Monte Carlo; required exactly
	// when Mode is "online".
	Online *OnlineSpec `json:"online,omitempty"`
}

// PlatformSpec describes the processors. Either Delay (homogeneous unit
// link delay, may be zero) or 0 < DelayLo <= DelayHi (symmetric random
// delays drawn from the request seed) must be used, not both.
type PlatformSpec struct {
	M       int     `json:"m"`
	Delay   float64 `json:"delay,omitempty"`
	DelayLo float64 `json:"delayLo,omitempty"`
	DelayHi float64 `json:"delayHi,omitempty"`
}

// TopologySpec describes a sparse interconnect. Shape selects the
// constructor; the spec's processor count must match the platform's.
type TopologySpec struct {
	// Shape: ring, star, mesh, torus, hypercube, random.
	Shape string `json:"shape"`
	// Rows x Cols sizes mesh and torus.
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`
	// K is the hypercube dimension (2^K processors).
	K int `json:"k,omitempty"`
	// Delay is the per-link unit delay of the fixed shapes (default 1).
	Delay float64 `json:"delay,omitempty"`
	// Random shape: a spanning tree plus Extra random edges with delays
	// in [DelayLo, DelayHi], drawn from Seed.
	Extra   int     `json:"extra,omitempty"`
	DelayLo float64 `json:"delayLo,omitempty"`
	DelayHi float64 `json:"delayHi,omitempty"`
	Seed    int64   `json:"seed,omitempty"`
}

// ReliabilitySpec configures the Monte-Carlo reliability estimate:
// Samples crash scenarios drawn from the failure model are replayed
// with timed fail-stop semantics in deterministic batches. MTBF values
// are absolute (same time unit as the schedule); use either MTBF
// (homogeneous) or 0 < MTBFLo <= MTBFHi (heterogeneous per-processor,
// drawn from Seed).
type ReliabilitySpec struct {
	Samples int `json:"samples"`
	// Kind: exponential (default) or weibull.
	Kind string `json:"kind,omitempty"`
	// Shape is the Weibull shape (required for kind weibull; < 1 infant
	// mortality, > 1 wear-out).
	Shape  float64 `json:"shape,omitempty"`
	MTBF   float64 `json:"mtbf,omitempty"`
	MTBFLo float64 `json:"mtbfLo,omitempty"`
	MTBFHi float64 `json:"mtbfHi,omitempty"`
	// Seed drives the scenario draws (and the heterogeneous MTBF
	// vector), independently of the request's scheduling seed.
	Seed int64 `json:"seed,omitempty"`
}

// OnlineSpec configures the online-mode Monte Carlo: Samples failure
// traces drawn from the failure model are replayed through the
// event-driven engine, by default with the reactive re-mapper armed.
// The failure-model fields mirror ReliabilitySpec.
type OnlineSpec struct {
	Samples int     `json:"samples"`
	Kind    string  `json:"kind,omitempty"`
	Shape   float64 `json:"shape,omitempty"`
	MTBF    float64 `json:"mtbf,omitempty"`
	MTBFLo  float64 `json:"mtbfLo,omitempty"`
	MTBFHi  float64 `json:"mtbfHi,omitempty"`
	// Seed drives the trace draws, independently of the scheduling seed.
	Seed int64 `json:"seed,omitempty"`
	// Static disables the reactive re-mapper: the distribution then
	// reflects what replication alone achieves under the causal online
	// semantics.
	Static bool `json:"static,omitempty"`
}

// rel converts the failure-model half of the spec to a ReliabilitySpec
// for model construction. Compute-path only: validate and hash stay
// allocation-free and use the direct methods below.
func (os *OnlineSpec) rel() *ReliabilitySpec {
	return &ReliabilitySpec{Samples: os.Samples, Kind: os.Kind, Shape: os.Shape,
		MTBF: os.MTBF, MTBFLo: os.MTBFLo, MTBFHi: os.MTBFHi, Seed: os.Seed}
}

// validate mirrors ReliabilitySpec.validate with the online sample cap.
func (os *OnlineSpec) validate() error {
	if os.Samples < 1 || os.Samples > maxOnlineSamples {
		return fmt.Errorf("online samples %d outside [1, %d]", os.Samples, maxOnlineSamples)
	}
	switch os.Kind {
	case "", "exponential":
		if os.Shape != 0 {
			return fmt.Errorf("shape is a weibull parameter")
		}
	case "weibull":
		if os.Shape <= 0 {
			return fmt.Errorf("weibull needs a positive shape, got %v", os.Shape)
		}
	default:
		return fmt.Errorf("unknown failure model %q (want exponential or weibull)", os.Kind)
	}
	random := os.MTBFLo != 0 || os.MTBFHi != 0
	switch {
	case random && os.MTBF != 0:
		return fmt.Errorf("mtbf and mtbfLo/mtbfHi are mutually exclusive")
	case random && (os.MTBFLo <= 0 || os.MTBFHi < os.MTBFLo):
		return fmt.Errorf("invalid MTBF range [%v, %v]", os.MTBFLo, os.MTBFHi)
	case !random && os.MTBF <= 0:
		return fmt.Errorf("mtbf must be positive, got %v", os.MTBF)
	}
	return nil
}

// kindIndex returns the canonical failure-model enum (default
// resolved); -1 for unknown kinds (rejected by validate).
//
//caft:zeroalloc
func (os *OnlineSpec) kindIndex() int {
	switch os.Kind {
	case "", "exponential":
		return 0
	case "weibull":
		return 1
	}
	return -1
}

// maxReliabilitySamples bounds the Monte-Carlo work a single request
// may demand.
const maxReliabilitySamples = 1 << 20

// maxOnlineSamples bounds online-mode replays, which run the full event
// engine (and possibly rescheduling) per trace — heavier than a timed
// replay, so the cap sits lower.
const maxOnlineSamples = 1 << 16

// modeNames lists the serving modes; the index is the canonical enum
// hashed into cache keys.
var modeNames = [...]string{"schedule", "online"}

//caft:zeroalloc
func (r *Request) modeIndex() int {
	if r.Mode == "" {
		return 0
	}
	for i, n := range modeNames {
		if n == r.Mode {
			return i
		}
	}
	return -1
}

// Problem-size bounds: a long-running daemon must not let one tiny
// request allocate an unbounded graph or execution matrix (the body cap
// already bounds inline DAGs; generator and platform specs are the
// cheap-to-ask-expensive-to-build surface). The limits sit far above
// the scale study's v = 3200 regime while keeping the worst-case
// exec-matrix allocation in the tens of megabytes.
const (
	maxServeTasks = 1 << 17 // tasks per problem
	maxServeProcs = 1 << 10 // processors per platform
	maxServeCells = 1 << 22 // tasks x processors (exec-matrix entries)
)

// algID returns the scheduler's registry ID — the canonical enum hashed
// into cache keys (sched.Descriptor.ID, append-only) — or -1 for
// unregistered names (rejected by validate).
//
//caft:zeroalloc
func (r *Request) algID() int {
	if d, ok := sched.Lookup(r.Alg); ok {
		return d.ID
	}
	return -1
}

//caft:zeroalloc
func (r *Request) policy() (timeline.Policy, bool) {
	switch r.Policy {
	case "", timeline.Append.String():
		return timeline.Append, true
	case timeline.Insertion.String():
		return timeline.Insertion, true
	}
	return 0, false
}

//caft:zeroalloc
func (r *Request) model() (sched.Model, bool) {
	switch r.Model {
	case "", sched.OnePort.String():
		return sched.OnePort, true
	case sched.MacroDataflow.String():
		return sched.MacroDataflow, true
	}
	return 0, false
}

var topoShapes = [...]string{"ring", "star", "mesh", "torus", "hypercube", "random"}

//caft:zeroalloc
func (t *TopologySpec) shapeIndex() int {
	for i, n := range topoShapes {
		if n == t.Shape {
			return i
		}
	}
	return -1
}

// delay returns the fixed-shape link delay with its default resolved.
//
//caft:zeroalloc
func (t *TopologySpec) delay() float64 {
	if t.Delay == 0 {
		return 1
	}
	return t.Delay
}

// canonical returns the spec with defaults resolved and the fields its
// shape does not consume zeroed — mirroring gen.Spec.Canonical, so
// junk in unused fields cannot split the cache.
//
//caft:zeroalloc
func (t *TopologySpec) canonical() TopologySpec {
	c := TopologySpec{Shape: t.Shape}
	switch t.Shape {
	case "mesh", "torus":
		c.Rows, c.Cols, c.Delay = t.Rows, t.Cols, t.delay()
	case "hypercube":
		c.K, c.Delay = t.K, t.delay()
	case "random":
		c.Extra, c.DelayLo, c.DelayHi, c.Seed = t.Extra, t.DelayLo, t.DelayHi, t.Seed
	default: // ring, star — and unknown shapes (rejected by validate)
		c.Delay = t.delay()
	}
	return c
}

// granularity returns the target granularity with its default resolved.
//
//caft:zeroalloc
func (r *Request) granularity() float64 {
	if r.Granularity == 0 {
		return 1
	}
	return r.Granularity
}

// validate performs the structural checks that do not require building
// the problem (those run in the worker at compute time). It allocates
// nothing on the accept path, keeping the cache-hit fast path
// allocation-free.
func (r *Request) validate() error {
	d, registered := sched.Lookup(r.Alg)
	if !registered {
		return fmt.Errorf("unknown alg %q (want %s)", r.Alg, strings.Join(sched.Names(), ", "))
	}
	if r.Eps < 0 {
		return fmt.Errorf("negative eps %d", r.Eps)
	}
	if !d.Caps.AcceptsEps && r.Eps != 0 {
		return fmt.Errorf("%s is a fault-free reference; eps must be 0, got %d", r.Alg, r.Eps)
	}
	pol, ok := r.policy()
	if !ok {
		return fmt.Errorf("unknown policy %q (want append or insertion)", r.Policy)
	}
	if !d.Caps.Supports(pol) {
		return fmt.Errorf("%s does not support the %s policy", r.Alg, pol)
	}
	if _, ok := r.model(); !ok {
		return fmt.Errorf("unknown model %q (want one-port or macro-dataflow)", r.Model)
	}
	if (r.DAG == nil) == (r.Generator == nil) {
		return fmt.Errorf("exactly one of dag and generator must be set")
	}
	if r.Generator != nil {
		if err := r.Generator.Validate(); err != nil {
			return err
		}
	}
	if err := r.Platform.validate(); err != nil {
		return err
	}
	tasks := 0
	if r.DAG != nil {
		tasks = r.DAG.NumTasks()
	} else {
		tasks = r.Generator.Tasks()
	}
	if tasks > maxServeTasks {
		return fmt.Errorf("problem has %d tasks, limit %d", tasks, maxServeTasks)
	}
	if r.Platform.M > maxServeProcs {
		return fmt.Errorf("platform has %d processors, limit %d", r.Platform.M, maxServeProcs)
	}
	if tasks > maxServeCells/r.Platform.M {
		return fmt.Errorf("%d tasks x %d processors exceeds the %d-cell execution-matrix limit", tasks, r.Platform.M, maxServeCells)
	}
	if r.Topology != nil {
		if err := r.Topology.validate(r.Platform.M); err != nil {
			return err
		}
	}
	if r.Granularity < 0 {
		return fmt.Errorf("negative granularity %v", r.Granularity)
	}
	if r.Exec != nil && r.Granularity != 0 {
		return fmt.Errorf("granularity and an explicit exec matrix are mutually exclusive")
	}
	if r.Reliability != nil {
		if err := r.Reliability.validate(); err != nil {
			return err
		}
	}
	if r.modeIndex() < 0 {
		return fmt.Errorf("unknown mode %q (want schedule or online)", r.Mode)
	}
	if (r.modeIndex() == 1) != (r.Online != nil) {
		return fmt.Errorf("mode online and the online spec must be set together")
	}
	if r.Online != nil {
		if err := r.Online.validate(); err != nil {
			return err
		}
	}
	return nil
}

func (p *PlatformSpec) validate() error {
	if p.M < 1 {
		return fmt.Errorf("platform needs at least one processor, got m=%d", p.M)
	}
	random := p.DelayLo != 0 || p.DelayHi != 0
	switch {
	case random && p.Delay != 0:
		return fmt.Errorf("platform delay and delayLo/delayHi are mutually exclusive")
	case random && (p.DelayLo <= 0 || p.DelayHi < p.DelayLo):
		return fmt.Errorf("invalid platform delay range [%v, %v]", p.DelayLo, p.DelayHi)
	case p.Delay < 0:
		return fmt.Errorf("negative platform delay %v", p.Delay)
	}
	return nil
}

func (t *TopologySpec) validate(m int) error {
	if t.shapeIndex() < 0 {
		return fmt.Errorf("unknown topology shape %q (want ring, star, mesh, torus, hypercube or random)", t.Shape)
	}
	if t.Delay < 0 {
		return fmt.Errorf("negative topology delay %v", t.Delay)
	}
	switch t.Shape {
	case "mesh", "torus":
		if t.Rows < 1 || t.Cols < 1 {
			return fmt.Errorf("%s topology needs positive rows x cols, got %dx%d", t.Shape, t.Rows, t.Cols)
		}
		if t.Rows*t.Cols != m {
			return fmt.Errorf("%dx%d %s has %d processors, platform has %d", t.Rows, t.Cols, t.Shape, t.Rows*t.Cols, m)
		}
	case "hypercube":
		if t.K < 1 || t.K > 20 {
			return fmt.Errorf("hypercube dimension %d outside [1, 20]", t.K)
		}
		if 1<<t.K != m {
			return fmt.Errorf("hypercube(%d) has %d processors, platform has %d", t.K, 1<<t.K, m)
		}
	case "random":
		if t.Extra < 0 {
			return fmt.Errorf("negative extra edge count %d", t.Extra)
		}
		if t.DelayLo <= 0 || t.DelayHi < t.DelayLo {
			return fmt.Errorf("random topology needs 0 < delayLo <= delayHi, got [%v, %v]", t.DelayLo, t.DelayHi)
		}
	}
	return nil
}

func (rs *ReliabilitySpec) validate() error {
	if rs.Samples < 1 || rs.Samples > maxReliabilitySamples {
		return fmt.Errorf("reliability samples %d outside [1, %d]", rs.Samples, maxReliabilitySamples)
	}
	switch rs.Kind {
	case "", "exponential":
		if rs.Shape != 0 {
			return fmt.Errorf("shape is a weibull parameter")
		}
	case "weibull":
		if rs.Shape <= 0 {
			return fmt.Errorf("weibull needs a positive shape, got %v", rs.Shape)
		}
	default:
		return fmt.Errorf("unknown failure model %q (want exponential or weibull)", rs.Kind)
	}
	random := rs.MTBFLo != 0 || rs.MTBFHi != 0
	switch {
	case random && rs.MTBF != 0:
		return fmt.Errorf("mtbf and mtbfLo/mtbfHi are mutually exclusive")
	case random && (rs.MTBFLo <= 0 || rs.MTBFHi < rs.MTBFLo):
		return fmt.Errorf("invalid MTBF range [%v, %v]", rs.MTBFLo, rs.MTBFHi)
	case !random && rs.MTBF <= 0:
		return fmt.Errorf("mtbf must be positive, got %v", rs.MTBF)
	}
	return nil
}

// buildProblem resolves the request into a scheduling problem. The
// request seed feeds one PRNG whose stream order is fixed — random
// platform delays first, then the generated execution matrix — and the
// same PRNG then drives the scheduler, so everything downstream of the
// spec is deterministic. Runs on the compute path only.
func (r *Request) buildProblem() (*sched.Problem, *rand.Rand, error) {
	g := r.DAG
	if r.Generator != nil {
		var err error
		if g, err = r.Generator.Build(); err != nil {
			return nil, nil, err
		}
	}
	rng := rand.New(rand.NewSource(r.Seed))
	var plat *platform.Platform
	if r.Platform.DelayLo != 0 {
		plat = platform.NewRandom(rng, r.Platform.M, r.Platform.DelayLo, r.Platform.DelayHi)
	} else {
		plat = platform.New(r.Platform.M, r.Platform.Delay)
	}
	exec := platform.ExecMatrix(r.Exec)
	if exec == nil {
		exec = platform.GenExecForGranularity(rng, g, plat, r.granularity(), platform.DefaultHeterogeneity)
	}
	var net sched.Network
	if r.Topology != nil {
		tg, err := r.Topology.build(r.Platform.M)
		if err != nil {
			return nil, nil, err
		}
		net = tg
	}
	policy, _ := r.policy()
	model, _ := r.model()
	p := &sched.Problem{G: g, Plat: plat, Exec: exec, Model: model, Policy: policy, Net: net}
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	return p, rng, nil
}

func (t *TopologySpec) build(m int) (*topology.Graph, error) {
	switch t.Shape {
	case "ring":
		return topology.Ring(m, t.delay())
	case "star":
		return topology.Star(m, t.delay())
	case "mesh":
		return topology.Mesh2D(t.Rows, t.Cols, t.delay())
	case "torus":
		return topology.Torus2D(t.Rows, t.Cols, t.delay())
	case "hypercube":
		return topology.Hypercube(t.K, t.delay())
	case "random":
		return topology.RandomConnected(rand.New(rand.NewSource(t.Seed)), m, t.Extra, t.DelayLo, t.DelayHi)
	}
	return nil, fmt.Errorf("unknown topology shape %q", t.Shape)
}

// buildModel resolves the reliability spec into a failure model over m
// processors.
func (rs *ReliabilitySpec) buildModel(m int) failure.Model {
	var mtbf []float64
	if rs.MTBFLo != 0 {
		mtbf = failure.UniformMTBF(rand.New(rand.NewSource(rs.Seed)), m, rs.MTBFLo, rs.MTBFHi)
	} else {
		mtbf = make([]float64, m)
		for i := range mtbf {
			mtbf[i] = rs.MTBF
		}
	}
	if rs.Kind == "weibull" {
		return failure.WeibullWithMTBF(rs.Shape, mtbf)
	}
	return &failure.Exponential{MTBF: mtbf}
}

// hash returns the canonical 128-bit content hash of the request — the
// cache key. Every semantic field is streamed in a fixed order with
// defaults resolved (generator specs through gen.Spec.Canonical), so
// requests that differ only in spelling — omitted versus explicit
// defaults, junk in fields their kind ignores — share a key, and any
// semantic difference changes it. The hash allocates nothing: it is
// part of the cache-hit fast path.
//
//caft:zeroalloc
func (r *Request) hash() hashKey {
	h := newDigest()
	// v2: adds the serving mode and the online Monte-Carlo spec to the
	// canonical stream.
	h.str("caftd-problem-v2")
	h.int(r.algID())
	h.int(r.Eps)
	policy, _ := r.policy()
	model, _ := r.model()
	h.int(int(policy))
	h.int(int(model))
	h.i64(r.Seed)

	if r.DAG != nil {
		h.int(0) // inline-DAG discriminator
		g := r.DAG
		h.int(g.NumTasks())
		for t := 0; t < g.NumTasks(); t++ {
			h.taskName(g, dag.TaskID(t))
			succ := g.Succ(dag.TaskID(t))
			h.int(len(succ))
			for _, e := range succ {
				h.int(int(e.To))
				h.f64(e.Volume)
			}
		}
	} else {
		h.int(1) // generator discriminator
		sp := r.Generator.Canonical()
		h.str(sp.Kind)
		h.int(sp.N)
		h.int(sp.Depth)
		h.f64(sp.Volume)
		h.i64(sp.Seed)
		h.int(sp.MinTasks)
		h.int(sp.MaxTasks)
		h.int(sp.Roots)
		h.int(sp.Degree)
	}

	h.int(r.Platform.M)
	h.f64(r.Platform.Delay)
	h.f64(r.Platform.DelayLo)
	h.f64(r.Platform.DelayHi)

	if r.Topology != nil {
		ts := r.Topology.canonical()
		h.int(r.Topology.shapeIndex())
		h.int(ts.Rows)
		h.int(ts.Cols)
		h.int(ts.K)
		h.f64(ts.Delay)
		h.int(ts.Extra)
		h.f64(ts.DelayLo)
		h.f64(ts.DelayHi)
		h.i64(ts.Seed)
	} else {
		h.int(-1)
	}

	if r.Exec != nil {
		h.int(len(r.Exec))
		for _, row := range r.Exec {
			h.int(len(row))
			for _, v := range row {
				h.f64(v)
			}
		}
	} else {
		h.int(-1)
		h.f64(r.granularity())
	}

	if r.Reliability != nil {
		rs := r.Reliability
		h.int(rs.Samples)
		h.int(rs.kindIndex()) // enum, so "" and "exponential" share a key
		h.f64(rs.Shape)
		h.f64(rs.MTBF)
		h.f64(rs.MTBFLo)
		h.f64(rs.MTBFHi)
		h.i64(rs.Seed)
	} else {
		h.int(-1)
	}

	h.int(r.modeIndex()) // enum, so "" and "schedule" share a key
	if r.Online != nil {
		os := r.Online
		h.int(os.Samples)
		h.int(os.kindIndex())
		h.f64(os.Shape)
		h.f64(os.MTBF)
		h.f64(os.MTBFLo)
		h.f64(os.MTBFHi)
		h.i64(os.Seed)
		if os.Static {
			h.int(1)
		} else {
			h.int(0)
		}
	} else {
		h.int(-1)
	}
	return h.sum()
}

// kindIndex returns the canonical failure-model enum (default
// resolved); -1 for unknown kinds (rejected by validate).
//
//caft:zeroalloc
func (rs *ReliabilitySpec) kindIndex() int {
	switch rs.Kind {
	case "", "exponential":
		return 0
	case "weibull":
		return 1
	}
	return -1
}

// hashKey is the 128-bit cache key: two independently parameterized
// 64-bit lanes over the same canonical field stream. One 64-bit FNV
// would already make accidental collisions unlikely; the second lane
// pushes the birthday bound far past any realistic cache population.
// The key is not a security boundary: a client who can construct
// deliberate collisions can only poison its own deterministic cache
// entries (see DESIGN.md S6).
type hashKey struct{ a, b uint64 }

// digest accumulates the two lanes. Inline rather than hash/fnv
// because that constructor allocates, and hashing sits on the
// allocation-free cache-hit path.
type digest hashKey

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
	// Second lane: a different odd multiplier and offset (the
	// splitmix64 constant) decorrelate it from the FNV lane.
	altOffset64 = 0x6c62272e07bb0142
	altPrime64  = 0x9e3779b97f4a7c15
)

//caft:zeroalloc
func newDigest() digest { return digest{a: fnvOffset64, b: altOffset64} }

//caft:zeroalloc
func (d *digest) byte(c byte) {
	d.a = (d.a ^ uint64(c)) * fnvPrime64
	d.b = (d.b ^ uint64(c)) * altPrime64
}

//caft:zeroalloc
func (d *digest) u64(v uint64) {
	for i := 0; i < 64; i += 8 {
		d.byte(byte(v >> i))
	}
}

//caft:zeroalloc
func (d *digest) int(v int) { d.u64(uint64(int64(v))) }

//caft:zeroalloc
func (d *digest) i64(v int64) { d.u64(uint64(v)) }

//caft:zeroalloc
func (d *digest) f64(v float64) { d.u64(math.Float64bits(v)) }

//caft:zeroalloc
func (d *digest) str(s string) {
	d.u64(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		d.byte(s[i])
	}
}

// taskName streams g's name for t, byte-identical to str(g.Name(t)).
// Generated "t<id>" names (dag.New materializes them lazily, one
// allocation per Name call) are formatted into a stack buffer instead,
// keeping the cache-hit hash path allocation-free for inline DAGs too.
//
//caft:zeroalloc
func (d *digest) taskName(g *dag.DAG, t dag.TaskID) {
	if !g.GeneratedName(t) {
		d.str(g.Name(t)) //caft:alloc-ok explicit names return the stored string; only the generated path would materialize
		return
	}
	var buf [20]byte
	i := len(buf)
	v := int(t)
	for {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	d.u64(uint64(1 + (len(buf) - i)))
	d.byte('t')
	for ; i < len(buf); i++ {
		d.byte(buf[i])
	}
}

//caft:zeroalloc
func (d *digest) sum() hashKey { return hashKey(*d) }
