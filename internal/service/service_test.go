package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"

	"caft/internal/dag"
	"caft/internal/gen"
	"caft/internal/sched"
)

// testDAG is a placeholder inline graph for validation tests.
var testDAG = *dag.New(3)

// mustNew builds a Service whose construction must succeed — every
// test config without a broken disk dir or cluster spec.
func mustNew(tb testing.TB, cfg Config) *Service {
	tb.Helper()
	svc, err := New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return svc
}

// quickReq is the canonical small test request: a montage workflow on
// four processors, scheduled by CAFT at eps = 1 with a reliability
// estimate. Mirrors cmd/caftd/testdata/quickstart.json.
func quickReq() *Request {
	return &Request{
		Alg:       "caft",
		Eps:       1,
		Seed:      1,
		Generator: &gen.Spec{Kind: "montage", N: 4, Volume: 100},
		Platform:  PlatformSpec{M: 4, Delay: 0.75},
		Reliability: &ReliabilitySpec{
			Samples: 128,
			MTBF:    5000,
			Seed:    3,
		},
	}
}

func decodeResponse(t *testing.T, raw []byte) Response {
	t.Helper()
	var resp Response
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatalf("undecodable response: %v\n%s", err, raw)
	}
	return resp
}

func TestServeBasics(t *testing.T) {
	svc := mustNew(t, Config{Workers: 2})
	defer svc.Close()
	raw, err := svc.Do(context.Background(), quickReq())
	if err != nil {
		t.Fatal(err)
	}
	resp := decodeResponse(t, raw)
	if resp.Alg != "caft" || resp.Eps != 1 || resp.Policy != "append" || resp.Model != "one-port" {
		t.Errorf("header fields wrong: %+v", resp)
	}
	if resp.Latency <= 0 || resp.Makespan < resp.Latency {
		t.Errorf("latency %v / makespan %v implausible", resp.Latency, resp.Makespan)
	}
	if resp.Tasks == 0 || resp.Replicas < 2*resp.Tasks {
		t.Errorf("eps=1 schedule must hold >= 2 replicas per task: tasks=%d replicas=%d", resp.Tasks, resp.Replicas)
	}
	if len(resp.Schedule.Replicas) != resp.Replicas {
		t.Errorf("schedule section lists %d replicas, header says %d", len(resp.Schedule.Replicas), resp.Replicas)
	}
	if resp.Reliability == nil || resp.Reliability.Samples != 128 {
		t.Fatalf("reliability section missing or short: %+v", resp.Reliability)
	}
	if u := resp.Reliability.Unreliability; u < 0 || u > 1 {
		t.Errorf("unreliability %v outside [0,1]", u)
	}
}

// Every supported scheduler must serve under both policies and both
// communication models.
func TestServeEveryAlgPolicyModel(t *testing.T) {
	svc := mustNew(t, Config{Workers: 4})
	defer svc.Close()
	for _, d := range sched.Registered() {
		for _, policy := range []string{"append", "insertion"} {
			for _, model := range []string{"one-port", "macro-dataflow"} {
				req := quickReq()
				req.Alg = d.Name
				req.Policy = policy
				req.Model = model
				req.Reliability = nil
				if !d.Caps.AcceptsEps {
					req.Eps = 0
				}
				if _, err := svc.Do(context.Background(), req); err != nil {
					t.Errorf("%s/%s/%s: %v", d.Name, policy, model, err)
				}
			}
		}
	}
}

func TestServeSparseTopology(t *testing.T) {
	svc := mustNew(t, Config{Workers: 2})
	defer svc.Close()
	for _, topo := range []TopologySpec{
		{Shape: "ring"},
		{Shape: "star", Delay: 0.5},
		{Shape: "mesh", Rows: 2, Cols: 2},
		{Shape: "torus", Rows: 2, Cols: 2},
		{Shape: "random", Extra: 2, DelayLo: 0.5, DelayHi: 1.0, Seed: 4},
	} {
		req := quickReq()
		req.Reliability = nil
		req.Topology = &topo
		raw, err := svc.Do(context.Background(), req)
		if err != nil {
			t.Fatalf("%s: %v", topo.Shape, err)
		}
		if resp := decodeResponse(t, raw); resp.Latency <= 0 {
			t.Errorf("%s: latency %v", topo.Shape, resp.Latency)
		}
	}
}

func TestValidationRejects(t *testing.T) {
	svc := mustNew(t, Config{Workers: 1})
	defer svc.Close()
	mutations := map[string]func(*Request){
		"unknown alg":          func(r *Request) { r.Alg = "lpt" },
		"negative eps":         func(r *Request) { r.Eps = -1 },
		"heft with eps":        func(r *Request) { r.Alg = "heft"; r.Eps = 2 },
		"unknown policy":       func(r *Request) { r.Policy = "fifo" },
		"unknown model":        func(r *Request) { r.Model = "wormhole" },
		"no graph":             func(r *Request) { r.Generator = nil },
		"both graphs":          func(r *Request) { r.DAG = &testDAG },
		"bad generator":        func(r *Request) { r.Generator.Kind = "nosuch" },
		"no processors":        func(r *Request) { r.Platform.M = 0 },
		"bad delay range":      func(r *Request) { r.Platform = PlatformSpec{M: 4, DelayLo: 1, DelayHi: 0.5} },
		"delay conflict":       func(r *Request) { r.Platform = PlatformSpec{M: 4, Delay: 1, DelayLo: 0.5, DelayHi: 1} },
		"bad topology shape":   func(r *Request) { r.Topology = &TopologySpec{Shape: "clique"} },
		"topology size":        func(r *Request) { r.Topology = &TopologySpec{Shape: "mesh", Rows: 3, Cols: 3} },
		"hypercube size":       func(r *Request) { r.Topology = &TopologySpec{Shape: "hypercube", K: 3} },
		"negative granularity": func(r *Request) { r.Granularity = -1 },
		"huge graph":           func(r *Request) { r.Generator = &gen.Spec{Kind: "chain", N: 2_000_000_000} },
		"huge fft":             func(r *Request) { r.Generator = &gen.Spec{Kind: "fft", N: 62} },
		"huge platform":        func(r *Request) { r.Platform = PlatformSpec{M: 1 << 20, Delay: 1} },
		"matrix cells": func(r *Request) {
			r.Generator = &gen.Spec{Kind: "chain", N: 100_000}
			r.Platform = PlatformSpec{M: 1 << 10, Delay: 1}
		},
		"zero samples":          func(r *Request) { r.Reliability.Samples = 0 },
		"no mtbf":               func(r *Request) { r.Reliability.MTBF = 0 },
		"bad failure kind":      func(r *Request) { r.Reliability.Kind = "lognormal" },
		"weibull without shape": func(r *Request) { r.Reliability.Kind = "weibull" },
		"shape on exponential":  func(r *Request) { r.Reliability.Shape = 2 },
	}
	for name, mutate := range mutations {
		req := quickReq()
		mutate(req)
		_, err := svc.Do(context.Background(), req)
		if !errors.Is(err, ErrBadRequest) {
			t.Errorf("%s: got %v, want ErrBadRequest", name, err)
		}
	}
	if got := svc.Stats().BadRequests; got != int64(len(mutations)) {
		t.Errorf("badRequests counter %d, want %d", got, len(mutations))
	}
}

// Canonicalization: omitted defaults and explicit defaults must share a
// cache key; any semantic change must not.
func TestHashCanonicalization(t *testing.T) {
	base := quickReq().hash()
	explicit := quickReq()
	explicit.Policy = "append"
	explicit.Model = "one-port"
	explicit.Granularity = 1.0
	explicit.Reliability.Kind = "exponential"
	// Fields the montage generator does not consume are canonicalized
	// away (gen.Spec.Canonical), so junk in them cannot split the cache.
	explicit.Generator.Depth = 9
	explicit.Generator.Seed = 42
	explicit.Generator.Roots = 5
	if explicit.hash() != base {
		t.Error("explicit defaults hash differently from omitted defaults")
	}
	// Topology fields the shape does not consume are canonicalized away
	// too, and the fixed-shape delay default (1) is resolved.
	ringReq := quickReq()
	ringReq.Topology = &TopologySpec{Shape: "ring"}
	ringJunk := quickReq()
	ringJunk.Topology = &TopologySpec{Shape: "ring", Delay: 1, Rows: 3, Cols: 9, K: 2, Extra: 7, Seed: 5}
	if ringReq.hash() != ringJunk.hash() {
		t.Error("junk in unused topology fields split the cache key")
	}
	changes := map[string]func(*Request){
		"alg":         func(r *Request) { r.Alg = "ftsa" },
		"eps":         func(r *Request) { r.Eps = 2 },
		"policy":      func(r *Request) { r.Policy = "insertion" },
		"model":       func(r *Request) { r.Model = "macro-dataflow" },
		"seed":        func(r *Request) { r.Seed = 2 },
		"gen kind":    func(r *Request) { r.Generator.Kind = "fft" },
		"gen n":       func(r *Request) { r.Generator.N = 5 },
		"gen volume":  func(r *Request) { r.Generator.Volume = 50 },
		"rel kind":    func(r *Request) { r.Reliability.Kind = "weibull"; r.Reliability.Shape = 2 },
		"m":           func(r *Request) { r.Platform.M = 5 },
		"delay":       func(r *Request) { r.Platform.Delay = 1 },
		"granularity": func(r *Request) { r.Granularity = 2 },
		"topology":    func(r *Request) { r.Topology = &TopologySpec{Shape: "ring"} },
		"samples":     func(r *Request) { r.Reliability.Samples = 64 },
		"mtbf":        func(r *Request) { r.Reliability.MTBF = 100 },
		"rel seed":    func(r *Request) { r.Reliability.Seed = 9 },
		"no rel":      func(r *Request) { r.Reliability = nil },
	}
	for name, mutate := range changes {
		req := quickReq()
		mutate(req)
		if req.hash() == base {
			t.Errorf("changing %s kept the cache key", name)
		}
	}
}

// An inline DAG and a generator spec are distinct key spaces even when
// they denote the same graph; both must serve.
func TestServeInlineDAG(t *testing.T) {
	svc := mustNew(t, Config{Workers: 1})
	defer svc.Close()
	g, err := gen.Spec{Kind: "montage", N: 4, Volume: 100}.Build()
	if err != nil {
		t.Fatal(err)
	}
	req := quickReq()
	req.Generator = nil
	req.DAG = g
	raw, err := svc.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	inline := decodeResponse(t, raw)
	raw2, err := svc.Do(context.Background(), quickReq())
	if err != nil {
		t.Fatal(err)
	}
	generated := decodeResponse(t, raw2)
	if inline.Latency != generated.Latency || inline.Replicas != generated.Replicas {
		t.Errorf("inline DAG scheduled differently from its generator spec: %+v vs %+v", inline, generated)
	}
}

// Responses must be byte-identical across service instances and worker
// counts — the serving analogue of the experiment engine's determinism
// guarantee.
func TestResponsesDeterministicAcrossWorkers(t *testing.T) {
	var first []byte
	for _, cfg := range []Config{
		{Workers: 1, MCWorkers: 1},
		{Workers: 8, MCWorkers: 4},
	} {
		svc := mustNew(t, cfg)
		raw, err := svc.Do(context.Background(), quickReq())
		if err != nil {
			svc.Close()
			t.Fatal(err)
		}
		// A hit must return the same bytes as the original compute.
		again, err := svc.Do(context.Background(), quickReq())
		if err != nil {
			svc.Close()
			t.Fatal(err)
		}
		svc.Close()
		if !bytes.Equal(raw, again) {
			t.Fatal("cache hit returned different bytes than the compute")
		}
		if first == nil {
			first = raw
		} else if !bytes.Equal(first, raw) {
			t.Fatalf("response differs across worker configs:\n%s\nvs\n%s", first, raw)
		}
	}
}

// Concurrent identical requests must collapse onto one compute: the
// cache entry is created once, everyone else waits on it, and /statsz
// observes exactly one miss.
func TestSingleflightCollapse(t *testing.T) {
	svc := mustNew(t, Config{Workers: 4})
	defer svc.Close()
	const n = 32
	var wg sync.WaitGroup
	responses := make([][]byte, n)
	errs := make([]error, n)
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			responses[i], errs[i] = svc.Do(context.Background(), quickReq())
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !bytes.Equal(responses[0], responses[i]) {
			t.Fatal("collapsed requests returned different bytes")
		}
	}
	st := svc.Stats()
	if st.Misses != 1 {
		t.Errorf("%d computes for %d identical concurrent requests, want 1", st.Misses, n)
	}
	if st.Hits != n-1 {
		t.Errorf("%d hits, want %d", st.Hits, n-1)
	}
	if st.HitRate <= 0 || st.CacheEntries != 1 {
		t.Errorf("snapshot implausible: %+v", st)
	}
}

// A bounded cache evicts completed entries instead of growing without
// limit, and never evicts in-flight ones (waiters must resolve).
func TestCacheEviction(t *testing.T) {
	svc := mustNew(t, Config{Workers: 1, CacheMax: 2})
	defer svc.Close()
	for seed := int64(1); seed <= 5; seed++ {
		req := quickReq()
		req.Reliability = nil
		req.Seed = seed
		if _, err := svc.Do(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}
	if n := svc.Stats().CacheEntries; n > 2 {
		t.Errorf("cache holds %d entries, max 2", n)
	}
}

// waitBusy blocks until the service reports n in-flight requests.
func waitBusy(t *testing.T, svc *Service, n int64) {
	t.Helper()
	for i := 0; i < 2000; i++ {
		if svc.Stats().InFlight >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("service never became busy")
}

// slowReq returns a request whose Monte-Carlo stage keeps the single
// worker busy long enough to observe queueing behavior.
func slowReq() *Request {
	req := quickReq()
	req.Reliability.Samples = 1 << 18
	return req
}

// A canceled caller abandons the wait, not the cache: cancellation
// before the pool handoff removes the entry so the next identical
// request retries and succeeds.
func TestDoCancellation(t *testing.T) {
	svc := mustNew(t, Config{Workers: 1, MCWorkers: 1})
	defer svc.Close()
	done := make(chan error, 1)
	go func() {
		_, err := svc.Do(context.Background(), slowReq())
		done <- err
	}()
	waitBusy(t, svc, 1)
	time.Sleep(5 * time.Millisecond) // let the slow job reach the worker

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := svc.Do(ctx, quickReq()); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled Do returned %v, want context.Canceled", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("slow request failed: %v", err)
	}
	// The abandoned key must not be poisoned.
	if _, err := svc.Do(context.Background(), quickReq()); err != nil {
		t.Fatalf("request after abandoned identical request failed: %v", err)
	}
}

// Close racing a blocked pool handoff must not panic (the jobs channel
// is never closed) and must fail the blocked request with ErrClosed.
func TestCloseUnblocksPendingHandoff(t *testing.T) {
	svc := mustNew(t, Config{Workers: 1, MCWorkers: 1})
	slow := make(chan error, 1)
	go func() {
		_, err := svc.Do(context.Background(), slowReq())
		slow <- err
	}()
	waitBusy(t, svc, 1)
	time.Sleep(5 * time.Millisecond)

	blocked := make(chan error, 1)
	go func() {
		_, err := svc.Do(context.Background(), quickReq())
		blocked <- err
	}()
	waitBusy(t, svc, 2)
	svc.Close()
	if err := <-blocked; !errors.Is(err, ErrClosed) {
		t.Fatalf("blocked request returned %v, want ErrClosed", err)
	}
	// The in-flight compute was allowed to finish.
	if err := <-slow; err != nil {
		t.Fatalf("in-flight request failed across Close: %v", err)
	}
}

// failingReq is a valid spec whose build fails in the worker: an
// explicit exec matrix of the wrong shape (structural validation cannot
// see the generated task count).
func failingReq() *Request {
	req := quickReq()
	req.Reliability = nil
	req.Exec = [][]float64{{1, 1, 1, 1}}
	return req
}

// Regression test for the error-pinning bug: a compute that errored
// used to stay in the cache forever, so every future identical request
// was counted a "hit" and re-served the stale error. Error entries are
// now evicted when the compute completes — the next identical request
// must recompute (a fresh miss, not a hit), and the cache must hold no
// entry for the failed key.
func TestErrorsNotCached(t *testing.T) {
	svc := mustNew(t, Config{Workers: 1})
	defer svc.Close()
	req := failingReq()
	if _, err := svc.Do(context.Background(), req); err == nil {
		t.Fatal("mis-shaped exec matrix accepted")
	}
	if n := svc.Stats().CacheEntries; n != 0 {
		t.Fatalf("failed compute left %d cache entries, want 0", n)
	}
	if _, err := svc.Do(context.Background(), req); err == nil {
		t.Fatal("second request accepted")
	}
	st := svc.Stats()
	if st.Misses != 2 || st.Hits != 0 || st.Failures != 2 {
		t.Errorf("stats %+v: want 2 misses, 0 hits, 2 failures — errors must recompute, not pin", st)
	}
	// A success under the same service must stay cached as before.
	ok := quickReq()
	ok.Reliability = nil
	if _, err := svc.Do(context.Background(), ok); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Do(context.Background(), ok); err != nil {
		t.Fatal(err)
	}
	if st := svc.Stats(); st.Hits != 1 {
		t.Errorf("successful response not cached after error eviction: %+v", st)
	}
}

// Error eviction under concurrent collapsed waiters: every waiter that
// collapsed onto the failing in-flight entry must still observe the
// error (no hang, no nil response), and once all resolve the key must
// be free so the next request recomputes. Runs under -race in CI.
func TestErrorEvictionConcurrentWaiters(t *testing.T) {
	svc := mustNew(t, Config{Workers: 2})
	defer svc.Close()
	const n = 32
	var wg sync.WaitGroup
	errs := make([]error, n)
	resps := make([][]byte, n)
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = svc.Do(context.Background(), failingReq())
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] == nil || resps[i] != nil {
			t.Fatalf("waiter %d: err=%v resp=%v, want collapsed error", i, errs[i], resps[i])
		}
	}
	st := svc.Stats()
	if st.Failures != n {
		t.Errorf("%d failures recorded for %d waiters", st.Failures, n)
	}
	if st.CacheEntries != 0 {
		t.Errorf("failed key still resident: %d entries", st.CacheEntries)
	}
	// The key is free: the next identical request is a fresh compute.
	before := st.Misses
	if _, err := svc.Do(context.Background(), failingReq()); err == nil {
		t.Fatal("recompute accepted a bad exec matrix")
	}
	if after := svc.Stats().Misses; after != before+1 {
		t.Errorf("misses %d -> %d: request after collapsed failure did not recompute", before, after)
	}
}

// The Do/Close shutdown race, end to end: callers blocked on the pool
// handoff resolve with ErrClosed, nothing panics, and no abandoned
// entry survives in the cache. Runs under -race in CI.
func TestDoCloseRaceNoLeakedEntry(t *testing.T) {
	svc := mustNew(t, Config{Workers: 1, MCWorkers: 1})
	slow := make(chan error, 1)
	go func() {
		_, err := svc.Do(context.Background(), slowReq())
		slow <- err
	}()
	waitBusy(t, svc, 1)
	time.Sleep(5 * time.Millisecond) // let the slow job reach the worker

	const blocked = 8
	errs := make(chan error, blocked)
	for i := 0; i < blocked; i++ {
		go func(i int) {
			req := quickReq()
			req.Reliability = nil
			req.Seed = int64(100 + i) // distinct keys: all block on the handoff
			_, err := svc.Do(context.Background(), req)
			errs <- err
		}(i)
	}
	waitBusy(t, svc, blocked+1)
	svc.Close()
	for i := 0; i < blocked; i++ {
		if err := <-errs; !errors.Is(err, ErrClosed) {
			t.Fatalf("blocked caller got %v, want ErrClosed", err)
		}
	}
	if err := <-slow; err != nil {
		t.Fatalf("in-flight compute failed across Close: %v", err)
	}
	// Abandoned handoffs must remove their entries; only the completed
	// slow compute may stay resident.
	if n := svc.Stats().CacheEntries; n != 1 {
		t.Errorf("%d cache entries after shutdown, want 1 (the completed compute)", n)
	}
}
