package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Config tunes a Service.
type Config struct {
	// Workers is the size of the scheduling worker pool — the number of
	// problems computed concurrently. 0 means GOMAXPROCS. The worker
	// count never affects response bytes, only throughput.
	Workers int
	// MCWorkers is the fan-out of the reliability Monte-Carlo batches
	// on the expt work-unit pool. 0 means GOMAXPROCS; estimates are
	// byte-identical for any value.
	MCWorkers int
	// CacheMax bounds the response cache (entries); 0 means unbounded.
	CacheMax int
}

// ErrBadRequest wraps every request-validation failure; the HTTP layer
// maps it to 400 and everything else to 500.
var ErrBadRequest = errors.New("bad request")

// ErrClosed is returned by Do once Close has been called.
var ErrClosed = errors.New("service closed")

// Service is the scheduling service core: a content-addressed response
// cache with singleflight collapsing in front of a bounded worker pool.
// It is safe for concurrent use, including Do racing Close: requests
// that cannot be handed to the pool anymore fail with ErrClosed.
type Service struct {
	cfg     Config
	cache   *cache
	jobs    chan job
	closing chan struct{}
	st      stats
	wg      sync.WaitGroup
}

type job struct {
	req *Request
	e   *entry
}

// New starts a Service with cfg.Workers compute workers.
func New(cfg Config) *Service {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0) //caft:nondet-ok default worker count; schedules are keyed by request
	}
	s := &Service{
		cfg:     cfg,
		cache:   newCache(cfg.CacheMax),
		jobs:    make(chan job),
		closing: make(chan struct{}),
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Close stops the worker pool after the in-flight computes finish.
// Requests still blocked on the pool handoff resolve with ErrClosed;
// nothing panics however Close races in-flight Do calls (the jobs
// channel is never closed — workers and blocked senders both leave via
// the closing signal).
func (s *Service) Close() {
	close(s.closing)
	s.wg.Wait()
}

// Do serves one request: validate, hash, and either return the cached
// (or in-flight) response or compute it on the pool. The returned bytes
// are the immutable encoded response and must not be modified.
//
// ctx cancels the *wait*, not the compute: a caller that gives up while
// its entry is in flight gets ctx.Err() and the worker still finishes
// and caches the result for future requests. A caller canceled before
// its compute was handed to the pool removes the entry, so collapsed
// waiters fail fast and the next identical request retries.
//
// The cache-hit path — hash, lookup, receive from a closed channel,
// stats — performs no scheduling work and allocates nothing;
// BenchmarkServeCached pins this.
//
//caft:zeroalloc
func (s *Service) Do(ctx context.Context, req *Request) ([]byte, error) {
	if err := req.validate(); err != nil { //caft:alloc-ok validate allocates only when it rejects; valid requests pass through clean
		s.st.badRequests.Add(1)
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err) //caft:alloc-ok bad-request rejection path; the serving path allocates nothing
	}
	start := time.Now() //caft:nondet-ok latency metric only; never enters a response body
	s.st.inflight.Add(1)
	defer s.st.inflight.Add(-1)

	key := req.hash()
	e, created := s.cache.lookup(key)
	if created {
		select {
		case s.jobs <- job{req: req, e: e}:
			// Counted only after the handoff: Misses documents the number
			// of scheduling runs performed, and an abandoned entry never
			// reaches a worker.
			s.st.misses.Add(1)
		case <-ctx.Done(): //caft:alloc-ok cancellation arm of the miss handoff; the hit path skips this select
			return nil, s.abandon(key, e, ctx.Err()) //caft:alloc-ok cancellation path on a cache miss, off the pinned hit path
		case <-s.closing:
			return nil, s.abandon(key, e, ErrClosed) //caft:alloc-ok shutdown path, off the pinned hit path
		}
	} else {
		s.st.hits.Add(1)
	}
	select {
	case <-e.done:
	case <-ctx.Done(): //caft:alloc-ok context poll; Done returns the context's cached channel
		return nil, ctx.Err() //caft:alloc-ok cancellation path; Err returns the context's cached error
	}
	s.st.record(time.Since(start)) //caft:nondet-ok latency metric only; never enters a response body
	if e.err != nil {
		s.st.failures.Add(1)
		return nil, e.err
	}
	return e.resp, nil
}

// abandon resolves an entry whose compute never reached the pool:
// waiters collapsed onto it fail with err, and the entry leaves the
// cache so the next identical request retries.
func (s *Service) abandon(key hashKey, e *entry, err error) error {
	s.cache.remove(key, e)
	e.err = err
	close(e.done)
	return err
}

// Stats returns a snapshot of the serving counters.
func (s *Service) Stats() StatsSnapshot {
	return s.st.snapshot(s.cache.len(), s.cfg.Workers)
}

func (s *Service) worker() {
	defer s.wg.Done()
	sc := newScratch()
	for {
		select {
		case j := <-s.jobs:
			j.e.resp, j.e.err = s.compute(sc, j.req)
			close(j.e.done)
		case <-s.closing:
			return
		}
	}
}
