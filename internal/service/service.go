package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Config tunes a Service.
type Config struct {
	// Workers is the size of the scheduling worker pool — the number of
	// problems computed concurrently. 0 means GOMAXPROCS. The worker
	// count never affects response bytes, only throughput.
	Workers int
	// MCWorkers is the fan-out of the reliability Monte-Carlo batches
	// on the expt work-unit pool. 0 means GOMAXPROCS; estimates are
	// byte-identical for any value.
	MCWorkers int
	// CacheMax bounds the in-memory response cache (entries); 0 means
	// unbounded. It does not bound the disk tier.
	CacheMax int

	// AdmitMax bounds the computes accepted at once — running plus
	// queued on the pool handoff. Past it, misses are shed immediately
	// with ErrOverloaded (HTTP 429 + Retry-After) instead of queueing
	// without bound; cache hits are never shed. 0 means unbounded.
	AdmitMax int

	// DiskDir enables the persistent cache tier: successful responses
	// are appended to segment files under this directory and reloaded
	// into the serving index on start, so a restarted node answers its
	// old keyspace byte-identically without recomputing. Empty disables
	// the tier.
	DiskDir string

	// Self and Peers configure cluster routing. Peers is the full
	// member list (Self included); each node owns a consistent-hash
	// range of the keyspace, and the HTTP layer forwards non-owned
	// /schedule requests to their owner (one internal hop). Empty Peers
	// disables routing (single-node serving).
	Self  string
	Peers []string
	// PeerTimeout bounds one forwarded request end to end; 0 means
	// defaultPeerTimeout.
	PeerTimeout time.Duration
}

// ErrBadRequest wraps every request-validation failure; the HTTP layer
// maps it to 400 and everything else to 500.
var ErrBadRequest = errors.New("bad request")

// ErrClosed is returned by Do once Close has been called.
var ErrClosed = errors.New("service closed")

// ErrOverloaded is returned by Do when the admission gate (AdmitMax)
// sheds a compute; the HTTP layer maps it to 429 with Retry-After.
var ErrOverloaded = errors.New("overloaded")

// Service is the scheduling service core: a content-addressed response
// cache (memory, optionally backed by a persistent disk tier) with
// singleflight collapsing in front of a bounded, admission-controlled
// worker pool. It is safe for concurrent use, including Do racing
// Close: requests that cannot be handed to the pool anymore fail with
// ErrClosed.
type Service struct {
	cfg     Config
	cache   *cache
	disk    *diskStore // nil without DiskDir
	ring    *ring      // nil without Peers
	peers   *peerClient
	admit   *admission // nil without AdmitMax
	jobs    chan job
	closing chan struct{}
	st      stats
	wg      sync.WaitGroup
}

type job struct {
	req *Request
	key hashKey
	e   *entry
}

// New starts a Service with cfg.Workers compute workers. It fails when
// the disk tier cannot be opened or the cluster spec is inconsistent
// (Peers set without Self, or Self missing from Peers).
func New(cfg Config) (*Service, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0) //caft:nondet-ok default worker count; schedules are keyed by request
	}
	s := &Service{
		cfg:     cfg,
		cache:   newCache(cfg.CacheMax),
		admit:   newAdmission(cfg.AdmitMax),
		jobs:    make(chan job),
		closing: make(chan struct{}),
	}
	if cfg.DiskDir != "" {
		d, err := openDisk(cfg.DiskDir)
		if err != nil {
			return nil, err
		}
		s.disk = d
	}
	if len(cfg.Peers) > 0 {
		r, err := newRing(cfg.Self, cfg.Peers)
		if err != nil {
			if s.disk != nil {
				s.disk.close()
			}
			return nil, err
		}
		s.ring = r
		s.peers = newPeerClient(cfg.PeerTimeout)
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// Close stops the worker pool after the in-flight computes finish, then
// syncs and closes the disk tier. Requests still blocked on the pool
// handoff resolve with ErrClosed; nothing panics however Close races
// in-flight Do calls (the jobs channel is never closed — workers and
// blocked senders both leave via the closing signal).
func (s *Service) Close() {
	close(s.closing)
	s.wg.Wait()
	if s.disk != nil {
		s.disk.close()
	}
	s.peers.closeIdle()
}

// Do serves one request: validate, hash, and either return the cached
// (memory or disk) or in-flight response or compute it on the pool. The
// returned bytes are the immutable encoded response and must not be
// modified.
//
// ctx cancels the *wait*, not the compute: a caller that gives up while
// its entry is in flight gets ctx.Err() and the worker still finishes
// and caches the result for future requests. A caller canceled before
// its compute was handed to the pool removes the entry, so collapsed
// waiters fail fast and the next identical request retries.
//
// The memory-cache-hit path — hash, lookup, receive from a closed
// channel, stats — performs no scheduling work and allocates nothing;
// BenchmarkServeCached pins this. The disk-hit and miss paths run off
// that pin.
//
//caft:zeroalloc
func (s *Service) Do(ctx context.Context, req *Request) ([]byte, error) {
	if err := req.validate(); err != nil { //caft:alloc-ok validate allocates only when it rejects; valid requests pass through clean
		s.st.badRequests.Add(1)
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err) //caft:alloc-ok bad-request rejection path; the serving path allocates nothing
	}
	start := time.Now() //caft:nondet-ok latency metric only; never enters a response body
	s.st.inflight.Add(1)
	defer s.st.inflight.Add(-1)

	key := req.hash()
	e, created := s.cache.lookup(key)
	if created {
		if err := s.fill(ctx, key, e, req); err != nil { //caft:alloc-ok miss path, off the pinned hit path
			return nil, err
		}
	} else {
		s.st.hits.Add(1)
	}
	select {
	case <-e.done:
	case <-ctx.Done(): //caft:alloc-ok context poll; Done returns the context's cached channel
		return nil, ctx.Err() //caft:alloc-ok cancellation path; Err returns the context's cached error
	}
	s.st.record(time.Since(start)) //caft:nondet-ok latency metric only; never enters a response body
	if e.err != nil {
		s.st.failures.Add(1)
		return nil, e.err
	}
	return e.resp, nil
}

// fill resolves a freshly created entry: serve it from the disk tier if
// the key is persisted, otherwise admit the compute and hand it to the
// pool. Runs only on the miss path.
func (s *Service) fill(ctx context.Context, key hashKey, e *entry, req *Request) error {
	if s.disk != nil {
		if resp, ok := s.disk.get(key); ok {
			e.resp = resp
			close(e.done)
			s.cache.markDone(key, e)
			// No scheduling run happened: a disk read is a hit (Misses
			// documents computes), tallied separately as DiskHits.
			s.st.hits.Add(1)
			s.st.diskHits.Add(1)
			return nil
		}
	}
	if !s.admit.acquire() {
		s.st.shed.Add(1)
		return s.abandon(key, e, ErrOverloaded)
	}
	select {
	case s.jobs <- job{req: req, key: key, e: e}:
		// Counted only after the handoff: Misses documents the number
		// of scheduling runs performed, and an abandoned entry never
		// reaches a worker.
		s.st.misses.Add(1)
		return nil
	case <-ctx.Done():
		s.admit.release()
		return s.abandon(key, e, ctx.Err())
	case <-s.closing:
		s.admit.release()
		return s.abandon(key, e, ErrClosed)
	}
}

// abandon resolves an entry whose compute never reached the pool:
// waiters collapsed onto it fail with err, and the entry leaves the
// cache so the next identical request retries.
func (s *Service) abandon(key hashKey, e *entry, err error) error {
	s.cache.remove(key, e)
	e.err = err
	close(e.done)
	return err
}

// Stats returns a snapshot of the serving counters.
func (s *Service) Stats() StatsSnapshot {
	diskEntries := 0
	if s.disk != nil {
		diskEntries = s.disk.len()
	}
	return s.st.snapshot(s.cache.len(), diskEntries, s.cfg.Workers)
}

func (s *Service) worker() {
	defer s.wg.Done()
	sc := newScratch()
	for {
		select {
		case j := <-s.jobs:
			j.e.resp, j.e.err = s.compute(sc, j.req)
			if j.e.err != nil {
				// Evict before waking waiters: collapsed callers still
				// see the error through their entry pointer, but the
				// key is free, so the next identical request recomputes
				// instead of being re-served a pinned failure.
				s.cache.remove(j.key, j.e)
				close(j.e.done)
			} else {
				close(j.e.done)
				s.cache.markDone(j.key, j.e)
				if s.disk != nil {
					s.disk.put(j.key, j.e.resp)
				}
			}
			s.admit.release()
		case <-s.closing:
			return
		}
	}
}
