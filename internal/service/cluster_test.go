package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"testing"
	"time"
)

// clusterNode is one in-process caftd: a Service plus an http.Server on
// a real TCP listener, so peer forwarding exercises the same network
// path production uses.
type clusterNode struct {
	addr string
	svc  *Service
}

// startCluster boots n nodes that all know the full member list.
// tweak, when non-nil, edits each node's config before construction.
func startCluster(t *testing.T, n int, tweak func(i int, cfg *Config)) []*clusterNode {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i], addrs[i] = ln, ln.Addr().String()
	}
	nodes := make([]*clusterNode, n)
	for i := range nodes {
		cfg := Config{Workers: 2, Self: addrs[i], Peers: addrs}
		if tweak != nil {
			tweak(i, &cfg)
		}
		svc := mustNew(t, cfg)
		srv := &http.Server{Handler: NewHandler(svc)}
		go srv.Serve(lns[i])
		t.Cleanup(func() { srv.Close(); svc.Close() })
		nodes[i] = &clusterNode{addr: addrs[i], svc: svc}
	}
	return nodes
}

func postJSON(t *testing.T, addr string, body []byte, header map[string]string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, "http://"+addr+"/schedule", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range header { //caft:unordered-ok test-only header copying
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

func marshalReq(t *testing.T, r *Request) []byte {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// The tentpole acceptance at test scale: three nodes share one
// effective cache. Every request enters through node 0; non-owned keys
// take one forwarding hop; each problem is computed exactly once
// cluster-wide; and the bytes match a standalone single-node service —
// the straight byte diff determinism buys us.
func TestClusterSharesOneCache(t *testing.T) {
	nodes := startCluster(t, 3, nil)
	reqs := distinctReqs(12)

	// Single-node golden.
	solo := mustNew(t, Config{Workers: 2})
	defer solo.Close()

	for round := 0; round < 2; round++ {
		for i, r := range reqs {
			status, body := postJSON(t, nodes[0].addr, marshalReq(t, r), nil)
			if status != http.StatusOK {
				t.Fatalf("round %d req %d: status %d: %s", round, i, status, body)
			}
			want, err := solo.Do(context.Background(), r)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(body, want) {
				t.Fatalf("round %d req %d: cluster bytes differ from single-node golden", round, i)
			}
		}
	}

	var misses, owned int64
	for _, n := range nodes {
		st := n.svc.Stats()
		misses += st.Misses
		if st.Misses > 0 {
			owned++
		}
	}
	if misses != int64(len(reqs)) {
		t.Errorf("%d computes cluster-wide for %d distinct problems — coalescing across nodes broken", misses, len(reqs))
	}
	if owned < 2 {
		t.Errorf("only %d nodes computed anything — hash routing did not spread the keyspace", owned)
	}
	st0 := nodes[0].svc.Stats()
	if st0.Forwards == 0 {
		t.Error("node 0 never forwarded — every key cannot be self-owned")
	}
	if st0.ForwardErrors != 0 {
		t.Errorf("%d forward errors in a healthy cluster", st0.ForwardErrors)
	}
}

// The loop guard: a request already marked forwarded is served locally
// even by a non-owner, so a ring disagreement can cost an extra compute
// but never a forwarding cycle.
func TestClusterForwardLoopGuard(t *testing.T) {
	nodes := startCluster(t, 2, nil)
	// Find a request owned by node 1.
	var req *Request
	for _, r := range distinctReqs(32) {
		if nodes[0].svc.ring.owner(r.hash()) == nodes[1].addr {
			req = r
			break
		}
	}
	if req == nil {
		t.Fatal("no key owned by node 1 in 32 tries — ring broken")
	}
	status, _ := postJSON(t, nodes[0].addr, marshalReq(t, req), map[string]string{forwardedHeader: "1"})
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	st0, st1 := nodes[0].svc.Stats(), nodes[1].svc.Stats()
	if st0.Forwards != 0 || st0.Misses != 1 {
		t.Errorf("guarded request left node 0: forwards=%d misses=%d", st0.Forwards, st0.Misses)
	}
	if st1.Misses != 0 {
		t.Errorf("guarded request reached node 1: misses=%d", st1.Misses)
	}
}

// Fallback: when the owning peer is down, the receiving node serves the
// request locally — the deterministic bytes are identical, availability
// survives, and the failure is visible in forwardErrors.
func TestClusterForwardFallbackWhenPeerDown(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close() // nobody home

	liveLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	liveAddr := liveLn.Addr().String()
	svc := mustNew(t, Config{Workers: 2, Self: liveAddr, Peers: []string{liveAddr, deadAddr}, PeerTimeout: 2 * time.Second})
	srv := &http.Server{Handler: NewHandler(svc)}
	go srv.Serve(liveLn)
	t.Cleanup(func() { srv.Close(); svc.Close() })

	// Find a request owned by the dead node.
	var req *Request
	for _, r := range distinctReqs(32) {
		if svc.ring.owner(r.hash()) == deadAddr {
			req = r
			break
		}
	}
	if req == nil {
		t.Fatal("no key owned by the dead node in 32 tries")
	}
	status, body := postJSON(t, liveAddr, marshalReq(t, req), nil)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	solo := mustNew(t, Config{Workers: 1})
	defer solo.Close()
	want, err := solo.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want) {
		t.Fatal("fallback response differs from the golden bytes")
	}
	st := svc.Stats()
	if st.Forwards != 1 || st.ForwardErrors != 1 || st.Misses != 1 {
		t.Errorf("fallback stats %+v: want 1 forward, 1 forwardError, 1 local miss", st)
	}
}

// Bad requests are rejected by the receiving node without spending a
// hop, with the same wrapped message Do produces.
func TestClusterRejectsLocally(t *testing.T) {
	nodes := startCluster(t, 2, nil)
	bad := quickReq()
	bad.Alg = "nosuch"
	status, body := postJSON(t, nodes[0].addr, marshalReq(t, bad), nil)
	if status != http.StatusBadRequest {
		t.Fatalf("status %d", status)
	}
	var e map[string]string
	if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
		t.Fatalf("error body missing: %s", body)
	}
	st := nodes[0].svc.Stats()
	if st.Forwards != 0 {
		t.Error("invalid request was forwarded")
	}
	if st.BadRequests != 1 {
		t.Errorf("badRequests %d, want 1", st.BadRequests)
	}
}

// Admission control sheds at the service layer with ErrOverloaded...
func TestAdmissionShedsOverload(t *testing.T) {
	svc := mustNew(t, Config{Workers: 1, MCWorkers: 1, AdmitMax: 1})
	defer svc.Close()
	done := make(chan error, 1)
	go func() {
		_, err := svc.Do(context.Background(), slowReq())
		done <- err
	}()
	waitBusy(t, svc, 1)
	time.Sleep(5 * time.Millisecond) // let the slow job reach the worker

	req := quickReq()
	req.Reliability = nil
	req.Seed = 77
	if _, err := svc.Do(context.Background(), req); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overloaded Do returned %v, want ErrOverloaded", err)
	}
	st := svc.Stats()
	if st.Shed != 1 {
		t.Errorf("shed counter %d, want 1", st.Shed)
	}
	if err := <-done; err != nil {
		t.Fatalf("admitted slow request failed: %v", err)
	}
	// The slot freed: the shed key retries successfully.
	if _, err := svc.Do(context.Background(), req); err != nil {
		t.Fatalf("retry after shed failed: %v", err)
	}
	if st := svc.Stats().CacheEntries; st == 0 {
		t.Error("retried compute not cached")
	}
}

// ...and at the HTTP layer as 429 with Retry-After. Hits are never
// shed: the overloaded node still answers cached keys.
func TestAdmissionHTTP429(t *testing.T) {
	svc := mustNew(t, Config{Workers: 1, MCWorkers: 1, AdmitMax: 1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: NewHandler(svc)}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close(); svc.Close() })
	addr := ln.Addr().String()

	// Warm one key while the pool is idle.
	warm := quickReq()
	warm.Reliability = nil
	warmBody := marshalReq(t, warm)
	if status, _ := postJSON(t, addr, warmBody, nil); status != http.StatusOK {
		t.Fatal("warmup failed")
	}

	slowDone := make(chan error, 1)
	go func() {
		_, err := svc.Do(context.Background(), slowReq())
		slowDone <- err
	}()
	waitBusy(t, svc, 1)
	time.Sleep(5 * time.Millisecond)

	cold := quickReq()
	cold.Reliability = nil
	cold.Seed = 78
	req, err := http.NewRequest(http.MethodPost, "http://"+addr+"/schedule", bytes.NewReader(marshalReq(t, cold)))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	// The cached key still serves while overloaded.
	if status, _ := postJSON(t, addr, warmBody, nil); status != http.StatusOK {
		t.Error("cache hit was shed")
	}
	if err := <-slowDone; err != nil {
		t.Fatal(err)
	}
}
