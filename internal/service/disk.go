package service

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// The disk tier persists successful responses in append-only segment
// files, so a restarted node comes back warm: a memory-cache miss
// consults the disk index before computing, and — responses being a
// pure function of the request — the bytes served after a restart are
// identical to the ones served before it.
//
// Layout: <dir>/seg-NNNNNN.caft, each a sequence of records
//
//	u32  magic (0xCAF7D15C)
//	u64  key.a   u64 key.b      (the canonical 128-bit request hash)
//	u32  len                    (payload bytes)
//	u32  crc32(payload)         (IEEE)
//	payload                     (the immutable encoded response)
//
// all integers little-endian. Records are written with plain write(2)
// (no per-record fsync): a killed process loses nothing already handed
// to the kernel, a machine crash may lose a CRC-guarded tail, which
// boot scanning truncates — losing a cache entry is always safe, the
// next request just recomputes it. Failed computes are never persisted
// (the error-eviction contract extends to disk). Segments rotate at
// diskSegMax and are never compacted; the tier grows with the distinct
// keyspace, which CacheMax does not bound (it bounds memory only).
const (
	diskMagic  = 0xCAF7D15C
	diskHdrLen = 4 + 8 + 8 + 4 + 4
	// diskRecMax bounds one payload at boot scan — anything larger is
	// treated as corruption, not an allocation request.
	diskRecMax = 64 << 20
)

// diskSegMax rotates the active segment; generous so small caches stay
// single-file. A variable only so the rotation test can shrink it.
var diskSegMax int64 = 64 << 20

// diskLoc locates one persisted response.
type diskLoc struct {
	seg int32
	off int64
	n   int32
}

// diskStore is the persistent cache tier: an in-memory index over
// append-only segment files. get serves concurrent readers via ReadAt;
// put appends under the mutex. Safe for concurrent use.
type diskStore struct {
	dir string

	mu     sync.RWMutex
	index  map[hashKey]diskLoc
	segs   []*os.File // read handles, index = diskLoc.seg
	active *os.File   // == segs[len(segs)-1], append handle
	off    int64      // append offset in active
}

// openDisk opens (or creates) the disk tier under dir, scanning every
// segment into the index. Torn or corrupt tails are truncated away on
// the active segment and ignored on older ones; a bad record always
// ends that segment's scan (append-only files have nothing valid after
// the first bad record).
func openDisk(dir string) (*diskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("disk tier: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("disk tier: %w", err)
	}
	var names []string
	for _, de := range entries {
		if n := de.Name(); len(n) > 9 && n[:4] == "seg-" && filepath.Ext(n) == ".caft" {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	d := &diskStore{dir: dir, index: make(map[hashKey]diskLoc)}
	for i, name := range names {
		f, err := os.OpenFile(filepath.Join(dir, name), os.O_RDWR, 0)
		if err != nil {
			d.close()
			return nil, fmt.Errorf("disk tier: %w", err)
		}
		clean, err := d.scanSegment(f, int32(i))
		if err != nil {
			f.Close()
			d.close()
			return nil, fmt.Errorf("disk tier: scanning %s: %w", name, err)
		}
		d.segs = append(d.segs, f)
		if i == len(names)-1 {
			// Active segment: drop any torn tail so appends continue
			// from the last valid record.
			if err := f.Truncate(clean); err != nil {
				d.close()
				return nil, fmt.Errorf("disk tier: %w", err)
			}
			d.active, d.off = f, clean
		}
	}
	if d.active == nil {
		if err := d.rotateLocked(); err != nil {
			d.close()
			return nil, err
		}
	}
	return d, nil
}

// scanSegment indexes every valid record of f and returns the clean
// prefix length. I/O errors are returned; mere corruption (bad magic,
// implausible length, CRC mismatch, torn tail) just ends the scan.
func (d *diskStore) scanSegment(f *os.File, seg int32) (clean int64, err error) {
	r := bufio.NewReaderSize(f, 1<<20)
	var hdr [diskHdrLen]byte
	var off int64
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return off, nil
			}
			return off, err
		}
		key, n, sum, ok := decodeHdr(hdr)
		if !ok {
			return off, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return off, nil
			}
			return off, err
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return off, nil
		}
		d.index[key] = diskLoc{seg: seg, off: off + diskHdrLen, n: int32(n)}
		off += diskHdrLen + int64(n)
	}
}

func decodeHdr(hdr [diskHdrLen]byte) (key hashKey, n uint32, crc uint32, ok bool) {
	if binary.LittleEndian.Uint32(hdr[0:]) != diskMagic {
		return hashKey{}, 0, 0, false
	}
	key.a = binary.LittleEndian.Uint64(hdr[4:])
	key.b = binary.LittleEndian.Uint64(hdr[12:])
	n = binary.LittleEndian.Uint32(hdr[20:])
	if n == 0 || n > diskRecMax {
		return hashKey{}, 0, 0, false
	}
	return key, n, binary.LittleEndian.Uint32(hdr[24:]), true
}

// rotateLocked opens the next numbered segment as the active one.
// Callers hold mu (or have exclusive access during open).
func (d *diskStore) rotateLocked() error {
	if d.active != nil {
		d.active.Sync()
	}
	name := filepath.Join(d.dir, fmt.Sprintf("seg-%06d.caft", len(d.segs)))
	f, err := os.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("disk tier: %w", err)
	}
	d.segs = append(d.segs, f)
	d.active, d.off = f, 0
	return nil
}

// get returns the persisted response for key, or ok=false. Read errors
// degrade to a miss — the compute path re-derives the identical bytes.
func (d *diskStore) get(key hashKey) ([]byte, bool) {
	d.mu.RLock()
	loc, ok := d.index[key]
	var f *os.File
	if ok {
		f = d.segs[loc.seg]
	}
	d.mu.RUnlock()
	if !ok {
		return nil, false
	}
	buf := make([]byte, loc.n)
	if _, err := f.ReadAt(buf, loc.off); err != nil {
		return nil, false
	}
	return buf, true
}

// put appends one successful response. Already-persisted keys are a
// no-op (determinism makes re-writes pointless bytes-for-bytes
// duplicates). Errors leave the store usable; the entry is simply not
// persisted.
func (d *diskStore) put(key hashKey, resp []byte) error {
	if len(resp) == 0 || len(resp) > diskRecMax {
		return fmt.Errorf("disk tier: response size %d out of range", len(resp))
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.index[key]; ok {
		return nil
	}
	if d.off+diskHdrLen+int64(len(resp)) > diskSegMax && d.off > 0 {
		if err := d.rotateLocked(); err != nil {
			return err
		}
	}
	var hdr [diskHdrLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], diskMagic)
	binary.LittleEndian.PutUint64(hdr[4:], key.a)
	binary.LittleEndian.PutUint64(hdr[12:], key.b)
	binary.LittleEndian.PutUint32(hdr[20:], uint32(len(resp)))
	binary.LittleEndian.PutUint32(hdr[24:], crc32.ChecksumIEEE(resp))
	if _, err := d.active.WriteAt(hdr[:], d.off); err != nil {
		return fmt.Errorf("disk tier: %w", err)
	}
	if _, err := d.active.WriteAt(resp, d.off+diskHdrLen); err != nil {
		return fmt.Errorf("disk tier: %w", err)
	}
	d.index[key] = diskLoc{seg: int32(len(d.segs) - 1), off: d.off + diskHdrLen, n: int32(len(resp))}
	d.off += diskHdrLen + int64(len(resp))
	return nil
}

// len reports the number of persisted responses.
func (d *diskStore) len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.index)
}

// close syncs and closes every segment.
func (d *diskStore) close() {
	if d.active != nil {
		d.active.Sync()
	}
	for _, f := range d.segs {
		f.Close()
	}
}
