package service

import (
	"fmt"
	"sort"
)

// ringVnodes is the number of points each node contributes to the hash
// circle. 64 keeps the ownership spread within a few percent of even
// for small clusters while the ring stays tiny (N*64 points).
const ringVnodes = 64

// ring is the consistent-hash ownership map of the cluster keyspace:
// every node (identified by its advertised host:port) contributes
// ringVnodes points on a uint64 circle, and a key is owned by the node
// of the first point at or after the key's position. All nodes build
// the ring from the same sorted member list, so ownership is a pure
// function of (members, key) — every node routes every key the same
// way, and N nodes share one effective cache with exactly one internal
// hop for non-owned keys.
type ring struct {
	self   string
	points []ringPoint // sorted by pos
}

type ringPoint struct {
	pos  uint64
	node string
}

// newRing builds the ring over nodes (the full member list, self
// included). Order and duplicates in nodes are canonicalized away.
func newRing(self string, nodes []string) (*ring, error) {
	if self == "" {
		return nil, fmt.Errorf("cluster: self address required when peers are set")
	}
	members := append([]string(nil), nodes...)
	sort.Strings(members)
	members = uniqStrings(members)
	found := false
	for _, n := range members {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty peer address")
		}
		if n == self {
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("cluster: self %q not in peer list %v", self, members)
	}
	r := &ring{self: self, points: make([]ringPoint, 0, len(members)*ringVnodes)}
	for _, n := range members {
		for i := 0; i < ringVnodes; i++ {
			r.points = append(r.points, ringPoint{pos: ringHash(n, i), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].pos != r.points[j].pos {
			return r.points[i].pos < r.points[j].pos
		}
		// Colliding points tie-break on the node name so every member
		// still builds the identical ring.
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// ringHash positions vnode i of node on the circle, reusing the
// canonical digest's FNV lane.
func ringHash(node string, i int) uint64 {
	h := newDigest()
	h.str(node)
	h.int(i)
	return h.sum().a
}

// owner returns the node owning key: the first ring point at or after
// the key's circle position, wrapping at the top. Allocation-free — it
// runs on every clustered request.
//
//caft:zeroalloc
func (r *ring) owner(key hashKey) string {
	pos := key.a ^ key.b
	points := r.points
	lo, hi := 0, len(points)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if points[mid].pos < pos {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(points) {
		lo = 0
	}
	return points[lo].node
}

func uniqStrings(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			out = append(out, s)
		}
	}
	return out
}
