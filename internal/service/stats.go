package service

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latWindow is the number of recent request latencies kept for the
// quantile estimates — a fixed ring so recording stays allocation-free.
const latWindow = 1024

// stats holds the serving counters. Counter updates and latency
// recording are allocation-free; snapshot (the /statsz path) copies and
// sorts the latency window.
type stats struct {
	hits          atomic.Int64
	misses        atomic.Int64
	diskHits      atomic.Int64
	shed          atomic.Int64
	forwards      atomic.Int64
	forwardErrors atomic.Int64
	failures      atomic.Int64
	badRequests   atomic.Int64
	inflight      atomic.Int64

	mu  sync.Mutex
	lat [latWindow]float64 // seconds, ring buffer
	n   int                // total recorded
}

//caft:zeroalloc
func (st *stats) record(d time.Duration) {
	sec := d.Seconds()
	st.mu.Lock()
	st.lat[st.n%latWindow] = sec
	st.n++
	st.mu.Unlock()
}

// StatsSnapshot is the /statsz wire format.
type StatsSnapshot struct {
	// Hits counts requests answered from the cache, including those
	// collapsed onto an in-flight identical request; Misses counts the
	// requests that triggered a compute. Misses is therefore the number
	// of scheduling runs performed.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// HitRate is Hits over Hits+Misses (0 before any request).
	HitRate float64 `json:"hitRate"`
	// DiskHits counts the subset of Hits answered by the persistent
	// disk tier — keys absent from memory (restart, eviction) whose
	// bytes were read back instead of recomputed.
	DiskHits int64 `json:"diskHits"`
	// Shed counts computes rejected by the admission gate (AdmitMax)
	// with ErrOverloaded / HTTP 429.
	Shed int64 `json:"shed"`
	// Forwards counts /schedule requests this node routed to their
	// owning peer; ForwardErrors the subset whose peer was unreachable
	// and which were served locally instead.
	Forwards      int64 `json:"forwards"`
	ForwardErrors int64 `json:"forwardErrors"`
	// Failures counts requests whose compute errored; BadRequests those
	// rejected by validation before hashing.
	Failures    int64 `json:"failures"`
	BadRequests int64 `json:"badRequests"`
	// InFlight is the number of requests currently being served
	// (waiting included); CacheEntries the resident responses in
	// memory; DiskEntries the responses persisted by the disk tier (0
	// when disabled).
	InFlight     int64 `json:"inFlight"`
	CacheEntries int   `json:"cacheEntries"`
	DiskEntries  int   `json:"diskEntries"`
	// P50Millis / P99Millis are request-latency quantiles over the last
	// 1024 requests (hits and misses alike), in milliseconds.
	P50Millis float64 `json:"p50Millis"`
	P99Millis float64 `json:"p99Millis"`
	// Workers is the configured compute-pool size.
	Workers int `json:"workers"`
}

func (st *stats) snapshot(cacheEntries, diskEntries, workers int) StatsSnapshot {
	s := StatsSnapshot{
		Hits:          st.hits.Load(),
		Misses:        st.misses.Load(),
		DiskHits:      st.diskHits.Load(),
		Shed:          st.shed.Load(),
		Forwards:      st.forwards.Load(),
		ForwardErrors: st.forwardErrors.Load(),
		Failures:      st.failures.Load(),
		BadRequests:   st.badRequests.Load(),
		InFlight:      st.inflight.Load(),
		CacheEntries:  cacheEntries,
		DiskEntries:   diskEntries,
		Workers:       workers,
	}
	if total := s.Hits + s.Misses; total > 0 {
		s.HitRate = float64(s.Hits) / float64(total)
	}
	st.mu.Lock()
	n := st.n
	if n > latWindow {
		n = latWindow
	}
	window := append([]float64(nil), st.lat[:n]...)
	st.mu.Unlock()
	if n > 0 {
		sort.Float64s(window)
		s.P50Millis = 1e3 * quantile(window, 0.50)
		s.P99Millis = 1e3 * quantile(window, 0.99)
	}
	return s
}

// quantile returns the q-quantile of sorted (nearest-rank).
func quantile(sorted []float64, q float64) float64 {
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
