package sim

import (
	"math/rand"
	"testing"

	"caft/internal/core"
	"caft/internal/sched"
	"caft/internal/sched/ftsa"
)

// The paper's upper bound is "always achieved even with ε failures":
// no crash scenario of size <= eps may push the achieved latency past
// the schedule's last-arrival upper bound. Removing dead operations
// only frees resources, and first-arrival semantics only relax the
// input constraints, so every surviving operation runs no later than
// in the upper-bound replay.
func TestCrashNeverExceedsUpperBound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 6; trial++ {
		m := 6
		p := randomProblem(rng, 30, m)
		for _, eps := range []int{1, 2} {
			for name, build := range map[string]func() (*sched.Schedule, error){
				"caft": func() (*sched.Schedule, error) { return core.Schedule(p, eps, rng) },
				"ftsa": func() (*sched.Schedule, error) { return ftsa.Schedule(p, eps, rng) },
			} {
				s, err := build()
				if err != nil {
					t.Fatal(err)
				}
				ub, err := UpperBound(s)
				if err != nil {
					t.Fatal(err)
				}
				for draw := 0; draw < 20; draw++ {
					crashed := map[int]bool{}
					for len(crashed) < eps {
						crashed[rng.Intn(m)] = true
					}
					lat, err := CrashLatency(s, crashed)
					if err != nil {
						t.Fatalf("%s eps=%d: %v", name, eps, err)
					}
					if lat > ub+sched.Eps {
						t.Fatalf("%s eps=%d crashed=%v: latency %v exceeds upper bound %v",
							name, eps, crashed, lat, ub)
					}
				}
			}
		}
	}
}

// Crash replay with an empty crash set equals the lower bound, and
// superset crash sets of size <= eps never lower the guarantee below
// validity.
func TestCrashSetMonotoneSanity(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	p := randomProblem(rng, 25, 6)
	s, err := core.Schedule(p, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := LowerBound(s)
	if err != nil {
		t.Fatal(err)
	}
	empty, err := CrashLatency(s, map[int]bool{})
	if err != nil {
		t.Fatal(err)
	}
	if empty != lb {
		t.Fatalf("empty crash set latency %v != lower bound %v", empty, lb)
	}
	// Every single and double crash stays within the bound envelope.
	ub, _ := UpperBound(s)
	for a := 0; a < 6; a++ {
		for b := a; b < 6; b++ {
			lat, err := CrashLatency(s, map[int]bool{a: true, b: true})
			if err != nil {
				t.Fatalf("crash {%d,%d}: %v", a, b, err)
			}
			if lat > ub+sched.Eps {
				t.Fatalf("crash {%d,%d}: %v exceeds UB %v", a, b, lat, ub)
			}
		}
	}
}
