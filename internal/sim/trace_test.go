package sim

import (
	"bytes"
	"encoding/csv"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"caft/internal/core"
)

func TestWriteTraceCSV(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := randomProblem(rng, 20, 4)
	s, err := core.Schedule(p, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Replay(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteTraceCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// Header + one row per replica + one per comm.
	want := 1 + s.ReplicaCount() + len(s.Comms)
	if len(records) != want {
		t.Fatalf("rows = %d, want %d", len(records), want)
	}
	if records[0][0] != "kind" {
		t.Fatalf("header = %v", records[0])
	}
	// With no crashes everything is done; rows are start-ordered.
	prev := -1.0
	for _, rec := range records[1:] {
		if rec[9] != "done" {
			t.Fatalf("dead op in crash-free trace: %v", rec)
		}
		var start float64
		if _, err := parseF(rec[7], &start); err != nil {
			t.Fatal(err)
		}
		if start < prev {
			t.Fatalf("trace not ordered: %v after %v", start, prev)
		}
		prev = start
	}
}

func TestWriteTraceCSVWithCrash(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := randomProblem(rng, 20, 4)
	s, err := core.Schedule(p, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Replay(s, Options{Crashed: map[int]bool{0: true}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteTraceCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "dead") {
		t.Fatal("crash trace contains no dead operations")
	}
}

func parseF(s string, out *float64) (int, error) {
	v, err := strconv.ParseFloat(s, 64)
	*out = v
	return 1, err
}
