package sim

import (
	"fmt"
	"math"
	"sort"

	"caft/internal/dag"
	"caft/internal/sched"
)

// Replayer replays one schedule repeatedly without rebuilding its
// indices. The constructor precomputes everything that does not depend
// on the crash set — the operation table, the dense (task, copy) →
// operation index, the per-(replica, predecessor) input lists in CSR
// form, the per-resource placement-order sequences and the sweep order —
// and every replay reuses the same scratch buffers, so steady-state
// replays of the same schedule allocate nothing beyond the caller's
// Result (and Latency-only entry points allocate nothing at all).
//
// A Replayer is not safe for concurrent use; each goroutine replaying
// the same schedule needs its own (see NewReplayer).
//
//caft:confined
type Replayer struct {
	s     *sched.Schedule
	order []int32 // topological task order (the compiled view's Topo)

	// ops lists every replica (in Schedule.Reps iteration order) followed
	// by every communication (in Schedule.Comms order). alive, start and
	// finish are per-replay state; everything else is static.
	ops  []op
	nRep int

	repOf [][]int32 // [task][copy] -> replica op index, -1 when absent
	srcOf []int32   // per comm: op index of its source replica, -1 when absent

	// Input CSR: replica op ri has predecessor slots
	// [inBase[ri], inBase[ri+1]); slot sl's feeding comm ops are
	// inAdj[inOff[sl]:inOff[sl+1]], in Schedule.Comms order.
	inBase []int32
	inOff  []int32
	inAdj  []int32

	resSeq [][]int32 // per resource: member op indices in placement order
	sweepO []int32   // every op index in placement order

	// Per-replay scratch.
	crashed    []bool
	prev       [][]int32 // resource predecessors of each op this replay
	dead       []bool    // per op: forced dead by the timed-crash fixpoint
	deadline   []float64 // per op: crash instant it must beat this timed replay
	lastSweeps int       // fixpoint sweeps of the latest run
}

const noOp = int32(-1)

// NewReplayer builds the static replay tables for s over the graph's
// compiled view.
func NewReplayer(s *sched.Schedule) (*Replayer, error) {
	cg, err := s.P.G.Compile()
	if err != nil {
		return nil, err
	}
	r := &Replayer{s: s, order: cg.Topo()}

	// Operation table: replicas first, then communications.
	r.nRep = s.ReplicaCount()
	r.ops = make([]op, 0, r.nRep+len(s.Comms))
	r.repOf = make([][]int32, len(s.Reps))
	for t := range s.Reps {
		maxCopy := -1
		for _, rep := range s.Reps[t] {
			if rep.Copy > maxCopy {
				maxCopy = rep.Copy
			}
		}
		r.repOf[t] = make([]int32, maxCopy+1)
		for c := range r.repOf[t] {
			r.repOf[t][c] = noOp
		}
		for _, rep := range s.Reps[t] {
			r.repOf[t][rep.Copy] = int32(len(r.ops))
			r.ops = append(r.ops, op{kind: opRep, rep: rep, dur: rep.Finish - rep.Start, seq: rep.Seq})
		}
	}
	r.srcOf = make([]int32, len(s.Comms))
	for i, c := range s.Comms {
		r.srcOf[i] = r.lookup(c.From, c.SrcCopy)
		r.ops = append(r.ops, op{kind: opComm, comm: c, dur: c.Dur, seq: c.Seq})
	}

	// Input CSR over (replica, predecessor-slot) pairs. A comm from
	// predecessor p feeds every slot of its destination replica whose
	// edge originates at p (parallel edges share their input group,
	// matching the map-based engine).
	r.inBase = make([]int32, r.nRep+1)
	for t := range s.Reps {
		for _, rep := range s.Reps[t] {
			ri := r.repOf[t][rep.Copy]
			r.inBase[ri+1] = int32(cg.InDegree(dag.TaskID(t)))
		}
	}
	for i := 1; i < len(r.inBase); i++ {
		r.inBase[i] += r.inBase[i-1]
	}
	slots := r.inBase[r.nRep]
	r.inOff = make([]int32, slots+1)
	forEachSlot := func(c sched.Comm, add func(slot int32)) {
		ri := r.lookup(c.To, c.DstCopy)
		if ri < 0 {
			return
		}
		from, _ := cg.Pred(c.To)
		for j, f := range from {
			if dag.TaskID(f) == c.From {
				add(r.inBase[ri] + int32(j))
			}
		}
	}
	for _, c := range s.Comms {
		forEachSlot(c, func(slot int32) { r.inOff[slot+1]++ })
	}
	for i := 1; i < len(r.inOff); i++ {
		r.inOff[i] += r.inOff[i-1]
	}
	r.inAdj = make([]int32, r.inOff[slots])
	fill := make([]int32, slots)
	for i, c := range s.Comms {
		ci := int32(r.nRep + i)
		forEachSlot(c, func(slot int32) {
			r.inAdj[r.inOff[slot]+fill[slot]] = ci
			fill[slot]++
		})
	}

	// Static per-resource membership in placement (seq) order. Chains of
	// surviving ops are derived per replay by skipping dead members, which
	// is equivalent to sorting the survivors — placement order is
	// crash-independent.
	m := s.P.Plat.M
	net := s.P.Network()
	nLinks := net.NumLinks()
	r.resSeq = make([][]int32, 3*m+nLinks)
	compute := r.resSeq[0:m]
	send := r.resSeq[m : 2*m]
	recv := r.resSeq[2*m : 3*m]
	link := r.resSeq[3*m:]
	for i := range r.ops {
		o := &r.ops[i]
		switch o.kind {
		case opRep:
			compute[o.rep.Proc] = append(compute[o.rep.Proc], int32(i))
		case opComm:
			if o.comm.Intra || s.P.Model == sched.MacroDataflow {
				continue
			}
			send[o.comm.SrcProc] = append(send[o.comm.SrcProc], int32(i))
			recv[o.comm.DstProc] = append(recv[o.comm.DstProc], int32(i))
			for _, l := range net.Route(o.comm.SrcProc, o.comm.DstProc) {
				link[l] = append(link[l], int32(i))
			}
		}
	}
	for _, seq := range r.resSeq {
		r.sortBySeq(seq)
	}
	r.sweepO = make([]int32, len(r.ops))
	for i := range r.sweepO {
		r.sweepO[i] = int32(i)
	}
	r.sortBySeq(r.sweepO)

	r.crashed = make([]bool, m)
	r.prev = make([][]int32, len(r.ops))
	r.dead = make([]bool, len(r.ops))
	r.deadline = make([]float64, len(r.ops))
	return r, nil
}

//caft:zeroalloc
func (r *Replayer) lookup(t dag.TaskID, copy int) int32 {
	if copy < 0 || copy >= len(r.repOf[t]) {
		return noOp
	}
	return r.repOf[t][copy]
}

//caft:zeroalloc
func (r *Replayer) sortBySeq(seq []int32) {
	sort.Slice(seq, func(a, b int) bool { //caft:alloc-ok sort.Slice's swapper is one constant-size frame, within the alloc-pin budget
		sa, sb := r.ops[seq[a]].seq, r.ops[seq[b]].seq
		if sa != sb {
			return sa < sb
		}
		return seq[a] < seq[b]
	})
}

// setCrashed loads the crash set into the scratch bitmap.
//
//caft:zeroalloc
func (r *Replayer) setCrashed(crashed map[int]bool) {
	for i := range r.crashed {
		r.crashed[i] = false
	}
	for p, c := range crashed { //caft:unordered-ok bitmap store is order-insensitive
		if c && p >= 0 && p < len(r.crashed) {
			r.crashed[p] = true
		}
	}
}

// run executes one liveness+timing pass against the current crash
// bitmap. dead (indexed like r.ops) forces additional operations dead,
// used by the timed-crash fixpoint of ReplayTimed; it may be nil.
//
//caft:zeroalloc
func (r *Replayer) run(sem Semantics, dead []bool) error {
	s := r.s
	ops := r.ops

	for i := range ops {
		ops[i].alive = false
		ops[i].start = 0
		ops[i].finish = 0
	}

	// --- Phase 1: liveness, in topological task order. ---
	for _, t := range r.order {
		for _, rep := range s.Reps[t] {
			ri := r.repOf[t][rep.Copy]
			alive := !r.crashed[rep.Proc] && (dead == nil || !dead[ri])
			if alive {
				// One slot per predecessor edge, straight off the input CSR.
				for sl := r.inBase[ri]; sl < r.inBase[ri+1]; sl++ {
					ok := false
					for _, ci := range r.inAdj[r.inOff[sl]:r.inOff[sl+1]] {
						c := &ops[ci].comm
						si := r.srcOf[ci-int32(r.nRep)]
						if si >= 0 && ops[si].alive && !r.crashed[c.DstProc] && (dead == nil || !dead[ci]) {
							ok = true
							break
						}
					}
					if !ok {
						alive = false
						break
					}
				}
			}
			ops[ri].alive = alive
		}
	}
	for i, c := range s.Comms {
		si := r.srcOf[i]
		ops[r.nRep+i].alive = si >= 0 && ops[si].alive && !r.crashed[c.DstProc] && (dead == nil || !dead[r.nRep+i])
	}

	// --- Chain surviving ops per resource, in placement order. ---
	for i := range r.prev {
		r.prev[i] = r.prev[i][:0]
	}
	for _, seq := range r.resSeq {
		last := noOp
		for _, i := range seq {
			if !ops[i].alive {
				continue
			}
			if last >= 0 {
				r.prev[i] = append(r.prev[i], last)
			}
			last = i
		}
	}

	// --- Phase 2: least-fixpoint timing over surviving ops. ---
	// Sweep in placement order; all times are monotone non-decreasing
	// across sweeps, so the iteration converges to the least fixpoint —
	// every operation as early as its constraints allow.
	sweeps := 0
	for {
		sweeps++
		if sweeps > len(ops)+5 {
			return fmt.Errorf("sim: timing fixpoint did not converge after %d sweeps", sweeps) //caft:alloc-ok non-convergence diagnostic; unreachable on a well-formed schedule
		}
		changed := false
		for _, i := range r.sweepO {
			o := &ops[i]
			if !o.alive {
				continue
			}
			st := 0.0
			for _, pi := range r.prev[i] {
				if ops[pi].finish > st {
					st = ops[pi].finish
				}
			}
			switch o.kind {
			case opComm:
				if f := ops[r.srcOf[int(i)-r.nRep]].finish; f > st {
					st = f
				}
			case opRep:
				ri := i
				for sl := r.inBase[ri]; sl < r.inBase[ri+1]; sl++ {
					agg := math.Inf(1)
					if sem == LastArrival {
						agg = 0
					}
					for _, ci := range r.inAdj[r.inOff[sl]:r.inOff[sl+1]] {
						if !ops[ci].alive {
							continue
						}
						f := ops[ci].finish
						if sem == FirstArrival {
							if f < agg {
								agg = f
							}
						} else if f > agg {
							agg = f
						}
					}
					if math.IsInf(agg, 1) {
						agg = 0 // unreachable: liveness guaranteed an input
					}
					if agg > st {
						st = agg
					}
				}
			}
			if st > o.start {
				o.start = st
				o.finish = st + o.dur
				changed = true
			} else if o.finish != o.start+o.dur {
				o.finish = o.start + o.dur
				changed = true
			}
		}
		if !changed {
			r.lastSweeps = sweeps
			return nil
		}
	}
}

// materialize copies the scratch tables of the latest run into a fresh
// Result (the only allocating step of a steady-state replay).
func (r *Replayer) materialize() *Result {
	s := r.s
	res := &Result{Reps: make([][]RepOutcome, len(s.Reps)), Sweeps: r.lastSweeps}
	res.Comms = make([]CommOutcome, 0, len(s.Comms))
	for i := range s.Comms {
		o := r.ops[r.nRep+i]
		res.Comms = append(res.Comms, CommOutcome{Comm: o.comm, Alive: o.alive, Start: o.start, Finish: o.finish})
	}
	for t := range s.Reps {
		anyAlive := false
		res.Reps[t] = make([]RepOutcome, 0, len(s.Reps[t]))
		for _, rep := range s.Reps[t] {
			o := r.ops[r.repOf[t][rep.Copy]]
			if o.alive {
				anyAlive = true
			}
			res.Reps[t] = append(res.Reps[t], RepOutcome{Rep: rep, Alive: o.alive, Start: o.start, Finish: o.finish})
		}
		if !anyAlive {
			res.TasksLost = append(res.TasksLost, dag.TaskID(t))
		}
	}
	return res
}

// Replay recomputes the schedule's execution under the given options,
// like the package-level Replay but reusing this Replayer's tables.
//
//caft:zeroalloc
func (r *Replayer) Replay(opt Options) (*Result, error) {
	r.setCrashed(opt.Crashed)
	if err := r.run(opt.Sem, nil); err != nil {
		return nil, err
	}
	return r.materialize(), nil //caft:alloc-ok the Result is the caller's one deliberate allocation
}

// latency computes Result.Latency directly from the scratch tables.
//
//caft:zeroalloc
func (r *Replayer) latency() (float64, error) {
	lat := 0.0
	for t := range r.s.Reps {
		min := math.Inf(1)
		for _, rep := range r.s.Reps[t] {
			if o := &r.ops[r.repOf[t][rep.Copy]]; o.alive && o.finish < min {
				min = o.finish
			}
		}
		if math.IsInf(min, 1) {
			return min, fmt.Errorf("sim: task %d lost (no surviving replica): %w", t, ErrTaskLost) //caft:alloc-ok task-lost rejection path; the success path allocates nothing
		}
		if min > lat {
			lat = min
		}
	}
	return lat, nil
}

// CrashLatency replays with the given crashed processors under
// first-arrival semantics and returns the achieved latency without
// allocating a Result. A lost task reports an error satisfying
// errors.Is(err, ErrTaskLost).
//
//caft:zeroalloc
func (r *Replayer) CrashLatency(crashed map[int]bool) (float64, error) {
	r.setCrashed(crashed)
	if err := r.run(FirstArrival, nil); err != nil {
		return 0, err
	}
	return r.latency()
}

// LowerBound replays with no crashes under first-arrival semantics: the
// latency achieved if no processor fails.
//
//caft:zeroalloc
func (r *Replayer) LowerBound() (float64, error) {
	return r.CrashLatency(nil)
}

// UpperBound replays with no crashes under last-arrival semantics and
// returns the completion time of the last replica of any task.
//
//caft:zeroalloc
func (r *Replayer) UpperBound() (float64, error) {
	r.setCrashed(nil)
	if err := r.run(LastArrival, nil); err != nil {
		return 0, err
	}
	lat := 0.0
	for i := 0; i < r.nRep; i++ {
		if o := &r.ops[i]; o.alive && o.finish > lat {
			lat = o.finish
		}
	}
	return lat, nil
}
