package sim

import (
	"errors"
	"math/rand"
	"testing"

	"caft/internal/core"
	"caft/internal/sched"
	"caft/internal/sched/ftbar"
	"caft/internal/sched/ftsa"
	"caft/internal/timeline"
)

// resultsEqual compares two replays bit-exactly: same liveness, same
// start/finish times, same lost tasks. The dense engine updates
// operations in the same order as the reference, so even the float
// arithmetic must agree exactly.
func resultsEqual(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if len(got.Reps) != len(want.Reps) || len(got.Comms) != len(want.Comms) {
		t.Fatalf("%s: shape mismatch", label)
	}
	for ti := range want.Reps {
		if len(got.Reps[ti]) != len(want.Reps[ti]) {
			t.Fatalf("%s: task %d replica count %d vs %d", label, ti, len(got.Reps[ti]), len(want.Reps[ti]))
		}
		for i, w := range want.Reps[ti] {
			g := got.Reps[ti][i]
			if g.Alive != w.Alive || g.Start != w.Start || g.Finish != w.Finish {
				t.Fatalf("%s: replica (%d,%d): got alive=%v [%v,%v), want alive=%v [%v,%v)",
					label, ti, w.Rep.Copy, g.Alive, g.Start, g.Finish, w.Alive, w.Start, w.Finish)
			}
		}
	}
	for i, w := range want.Comms {
		g := got.Comms[i]
		if g.Alive != w.Alive || g.Start != w.Start || g.Finish != w.Finish {
			t.Fatalf("%s: comm %d: got alive=%v [%v,%v), want alive=%v [%v,%v)",
				label, i, g.Alive, g.Start, g.Finish, w.Alive, w.Start, w.Finish)
		}
	}
	if len(got.TasksLost) != len(want.TasksLost) {
		t.Fatalf("%s: lost %v vs %v", label, got.TasksLost, want.TasksLost)
	}
	for i := range want.TasksLost {
		if got.TasksLost[i] != want.TasksLost[i] {
			t.Fatalf("%s: lost %v vs %v", label, got.TasksLost, want.TasksLost)
		}
	}
}

// TestReplayerMatchesReference drives the dense scratch-buffer engine
// and the original map-based engine over the same schedules, semantics
// and crash sets (including crash sets beyond ε for the loss path, and
// one Replayer reused across every replay of a schedule) and requires
// identical results.
func TestReplayerMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	build := []struct {
		name string
		f    func(p *sched.Problem, eps int) (*sched.Schedule, error)
	}{
		{"caft", func(p *sched.Problem, eps int) (*sched.Schedule, error) { return core.Schedule(p, eps, rng) }},
		{"ftsa", func(p *sched.Problem, eps int) (*sched.Schedule, error) { return ftsa.Schedule(p, eps, rng) }},
		{"ftbar", func(p *sched.Problem, eps int) (*sched.Schedule, error) { return ftbar.Schedule(p, eps, rng) }},
	}
	for trial := 0; trial < 4; trial++ {
		m := 5
		p := randomProblem(rng, 25+rng.Intn(15), m)
		if trial == 3 {
			p.Policy = timeline.Insertion
		}
		for _, bld := range build {
			s, err := bld.f(p, 1+trial%2)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := NewReplayer(s)
			if err != nil {
				t.Fatal(err)
			}
			for _, sem := range []Semantics{FirstArrival, LastArrival} {
				// No crash, single crashes, and an over-ε triple crash.
				crashSets := []map[int]bool{nil, {0: true}, {m - 1: true}, {0: true, 2: true, 4: true}}
				for ci, crashed := range crashSets {
					opt := Options{Crashed: crashed, Sem: sem}
					want, err := refReplay(s, opt)
					if err != nil {
						t.Fatal(err)
					}
					got, err := rep.Replay(opt)
					if err != nil {
						t.Fatal(err)
					}
					label := bld.name + "/" + sem.String()
					resultsEqual(t, label, got, want)
					if ci > 0 && sem == FirstArrival {
						// Latency-only fast path agrees too.
						lat, err := rep.CrashLatency(crashed)
						wantLat, wantErr := want.Latency()
						if (err == nil) != (wantErr == nil) || lat != wantLat {
							t.Fatalf("%s: CrashLatency %v (%v) vs %v (%v)", label, lat, err, wantLat, wantErr)
						}
						if err != nil && !errors.Is(err, ErrTaskLost) {
							t.Fatalf("%s: lost-task error %v does not satisfy ErrTaskLost", label, err)
						}
					}
				}
			}
		}
	}
}

// TestReplayerReuseIsStateless replays crash/no-crash alternations on
// one Replayer and checks each result matches a fresh replay: no state
// may leak between replays of the same schedule.
func TestReplayerReuseIsStateless(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	p := randomProblem(rng, 30, 5)
	s, err := core.Schedule(p, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewReplayer(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		crashed := map[int]bool{i % 5: true, (i * 3) % 5: true}
		if i%4 == 0 {
			crashed = nil
		}
		got, err := rep.CrashLatency(crashed)
		if err != nil {
			t.Fatal(err)
		}
		want, err := CrashLatency(s, crashed)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("replay %d: reused %v vs fresh %v", i, got, want)
		}
	}
}

// BenchmarkReplay compares the one-shot API (throwaway Replayer per
// call), the reused scratch-buffer Replayer, and the original map-based
// engine on the same crash replay.
func BenchmarkReplay(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	p := randomProblem(rng, 100, 10)
	s, err := core.Schedule(p, 3, rng)
	if err != nil {
		b.Fatal(err)
	}
	crashed := map[int]bool{1: true, 4: true}
	b.Run("map-reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r, err := refReplay(s, Options{Crashed: crashed})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := r.Latency(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("oneshot", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := CrashLatency(s, crashed); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reused", func(b *testing.B) {
		rep, err := NewReplayer(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := rep.CrashLatency(crashed); err != nil {
				b.Fatal(err)
			}
		}
	})
}
