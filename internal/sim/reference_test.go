package sim

// This file preserves the original map-based replay engine verbatim as a
// test-only reference implementation. The production engine (replayer.go)
// replays on dense slice-indexed tables with reusable scratch buffers;
// TestReplayerMatchesReference asserts the two produce bit-identical
// results on the same schedules and crash sets.

import (
	"fmt"
	"math"
	"sort"

	"caft/internal/dag"
	"caft/internal/sched"
)

type refOp struct {
	kind   int
	rep    sched.Replica
	comm   sched.Comm
	alive  bool
	dur    float64
	start  float64
	finish float64
	// sortable identity
	schedStart float64
	seq        int32
}

// refReplay is the original Replay: one liveness+timing pass over
// map-indexed operations, rebuilding every index per call.
func refReplay(s *sched.Schedule, opt Options) (*Result, error) {
	return refReplayOnce(s, opt, nil, nil)
}

func refReplayOnce(s *sched.Schedule, opt Options, deadReps map[[2]int]bool, deadComms map[int32]bool) (*Result, error) {
	crashed := opt.Crashed
	isCrashed := func(p int) bool { return crashed != nil && crashed[p] }
	g := s.P.G
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}

	// --- Build operations. ---
	ops := make([]refOp, 0, s.ReplicaCount()+len(s.Comms))
	repIdx := map[[2]int]int{} // (task, copy) -> op index
	for t := range s.Reps {
		for _, r := range s.Reps[t] {
			repIdx[[2]int{int(r.Task), r.Copy}] = len(ops)
			ops = append(ops, refOp{kind: opRep, rep: r, dur: r.Finish - r.Start, schedStart: r.Start, seq: r.Seq})
		}
	}
	commAt := make([]int, len(s.Comms))
	for i, c := range s.Comms {
		commAt[i] = len(ops)
		ops = append(ops, refOp{kind: opComm, comm: c, dur: c.Dur, schedStart: c.Start, seq: c.Seq})
	}

	// --- Phase 1: liveness, in topological task order. ---
	inputsOf := map[[2]int]map[dag.TaskID][]int{}
	for i, c := range s.Comms {
		k := [2]int{int(c.To), c.DstCopy}
		if inputsOf[k] == nil {
			inputsOf[k] = map[dag.TaskID][]int{}
		}
		inputsOf[k][c.From] = append(inputsOf[k][c.From], commAt[i])
	}
	for _, t := range order {
		for _, r := range s.Reps[t] {
			ri := repIdx[[2]int{int(t), r.Copy}]
			alive := !isCrashed(r.Proc) && !deadReps[[2]int{int(t), r.Copy}]
			if alive {
				for _, e := range g.Pred(t) {
					ok := false
					for _, ci := range inputsOf[[2]int{int(t), r.Copy}][e.From] {
						c := &ops[ci].comm
						si, exists := repIdx[[2]int{int(c.From), c.SrcCopy}]
						if exists && ops[si].alive && !isCrashed(c.DstProc) && !deadComms[c.Seq] {
							ok = true
							break
						}
					}
					if !ok {
						alive = false
						break
					}
				}
			}
			ops[ri].alive = alive
		}
	}
	for i, c := range s.Comms {
		si, exists := repIdx[[2]int{int(c.From), c.SrcCopy}]
		ops[commAt[i]].alive = exists && ops[si].alive && !isCrashed(c.DstProc) && !deadComms[c.Seq]
	}

	// --- Build per-resource sequences of surviving ops. ---
	m := s.P.Plat.M
	net := s.P.Network()
	compute := make([][]int, m)
	send := make([][]int, m)
	recv := make([][]int, m)
	link := make([][]int, net.NumLinks())
	for i := range ops {
		o := &ops[i]
		if !o.alive {
			continue
		}
		switch o.kind {
		case opRep:
			compute[o.rep.Proc] = append(compute[o.rep.Proc], i)
		case opComm:
			if o.comm.Intra || s.P.Model == sched.MacroDataflow {
				continue
			}
			send[o.comm.SrcProc] = append(send[o.comm.SrcProc], i)
			recv[o.comm.DstProc] = append(recv[o.comm.DstProc], i)
			for _, l := range net.Route(o.comm.SrcProc, o.comm.DstProc) {
				link[l] = append(link[l], i)
			}
		}
	}
	bySched := func(seq []int) {
		sort.Slice(seq, func(a, b int) bool {
			return ops[seq[a]].seq < ops[seq[b]].seq
		})
	}
	prev := make([][]int, len(ops))
	chain := func(seq []int) {
		bySched(seq)
		for i := 1; i < len(seq); i++ {
			prev[seq[i]] = append(prev[seq[i]], seq[i-1])
		}
	}
	for _, seqs := range [][][]int{compute, send, recv, link} {
		for _, seq := range seqs {
			chain(seq)
		}
	}

	// --- Phase 2: least-fixpoint timing over surviving ops. ---
	sweep := make([]int, 0, len(ops))
	for i := range ops {
		if ops[i].alive {
			sweep = append(sweep, i)
		}
	}
	bySched(sweep)
	sweeps := 0
	for {
		sweeps++
		if sweeps > len(ops)+5 {
			return nil, fmt.Errorf("sim: timing fixpoint did not converge after %d sweeps", sweeps)
		}
		changed := false
		for _, i := range sweep {
			o := &ops[i]
			st := 0.0
			for _, pi := range prev[i] {
				if ops[pi].finish > st {
					st = ops[pi].finish
				}
			}
			switch o.kind {
			case opComm:
				si := repIdx[[2]int{int(o.comm.From), o.comm.SrcCopy}]
				if ops[si].finish > st {
					st = ops[si].finish
				}
			case opRep:
				ins := inputsOf[[2]int{int(o.rep.Task), o.rep.Copy}]
				for _, e := range g.Pred(o.rep.Task) {
					agg := math.Inf(1)
					if opt.Sem == LastArrival {
						agg = 0
					}
					for _, ci := range ins[e.From] {
						if !ops[ci].alive {
							continue
						}
						f := ops[ci].finish
						if opt.Sem == FirstArrival {
							if f < agg {
								agg = f
							}
						} else if f > agg {
							agg = f
						}
					}
					if math.IsInf(agg, 1) {
						agg = 0 // unreachable: liveness guaranteed an input
					}
					if agg > st {
						st = agg
					}
				}
			}
			if st > o.start {
				o.start = st
				o.finish = st + o.dur
				changed = true
			} else if o.finish != o.start+o.dur {
				o.finish = o.start + o.dur
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// --- Collect results. ---
	res := &Result{Reps: make([][]RepOutcome, len(s.Reps)), Sweeps: sweeps}
	for i := range s.Comms {
		o := ops[commAt[i]]
		res.Comms = append(res.Comms, CommOutcome{Comm: o.comm, Alive: o.alive, Start: o.start, Finish: o.finish})
	}
	for t := range s.Reps {
		anyAlive := false
		for _, r := range s.Reps[t] {
			i := repIdx[[2]int{int(t), r.Copy}]
			o := ops[i]
			out := RepOutcome{Rep: r, Alive: o.alive, Start: o.start, Finish: o.finish}
			if o.alive {
				anyAlive = true
			}
			res.Reps[t] = append(res.Reps[t], out)
		}
		if !anyAlive {
			res.TasksLost = append(res.TasksLost, dag.TaskID(t))
		}
	}
	return res, nil
}
