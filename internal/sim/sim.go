// Package sim replays a static fault-tolerant schedule against a set of
// crashed processors and recomputes the actual execution times, the way
// Section 6 of the paper evaluates "the real execution time for a given
// schedule rather than just bounds".
//
// The replay keeps the per-resource order the scheduler committed to
// (executions per processor; transfers per send port, receive port and
// link), removes dead operations — replicas on crashed processors,
// replicas missing all inputs from some predecessor, and the messages of
// dead senders or to crashed receivers — and lets every surviving
// operation run as early as its constraints allow. Dropping a dead
// operation can therefore pull later operations earlier, and losing an
// early message can push a replica later; both directions are observed
// in the paper (Figures 1(b) and 2(b)) and reproduced here.
//
// Two input semantics are supported:
//
//   - FirstArrival: a replica starts once, for each predecessor, the
//     earliest surviving message has arrived. With zero crashes this
//     reproduces the scheduler's own times (the latency lower bound).
//   - LastArrival: a replica waits for every surviving message of every
//     predecessor. With zero crashes, taking the completion time of the
//     last replica of each task yields the paper's upper bound, the
//     latency guaranteed even if ε processors fail.
//
// The engine replays on dense slice-indexed tables precomputed once per
// schedule by a Replayer; the package-level helpers build a throwaway
// Replayer, while hot loops (package expt, the Monte-Carlo ablations)
// hold one per schedule so repeated replays allocate near-zero.
//
//caft:deterministic
package sim

import (
	"errors"
	"fmt"
	"math"

	"caft/internal/dag"
	"caft/internal/sched"
)

// Semantics selects when a replica's inputs are considered available.
type Semantics int

const (
	// FirstArrival starts a replica at the earliest complete input set.
	FirstArrival Semantics = iota
	// LastArrival waits for all surviving input messages.
	LastArrival
)

func (s Semantics) String() string {
	if s == FirstArrival {
		return "first-arrival"
	}
	return "last-arrival"
}

// ErrTaskLost reports that a crash set killed every replica of some
// task. It distinguishes a genuine task loss (possible for the unsafe
// PaperLocking ablation, never for the resilient variants when at most
// ε processors crash) from an engine failure such as a non-converging
// fixpoint; test with errors.Is.
var ErrTaskLost = errors.New("task lost")

// Options configures a replay.
type Options struct {
	// Crashed marks fail-stop processors. Nil means no failures.
	Crashed map[int]bool
	// Sem is the input-availability semantics (default FirstArrival).
	Sem Semantics
}

// RepOutcome is the replayed fate of one replica.
type RepOutcome struct {
	Rep    sched.Replica
	Alive  bool
	Start  float64
	Finish float64
}

// CommOutcome is the replayed fate of one communication.
type CommOutcome struct {
	Comm   sched.Comm
	Alive  bool
	Start  float64
	Finish float64
}

// Result holds the replayed times of every replica.
type Result struct {
	Reps  [][]RepOutcome // indexed like Schedule.Reps
	Comms []CommOutcome  // indexed like Schedule.Comms
	// TasksLost lists tasks with no surviving executed replica. Empty for
	// any schedule produced by a correct ε-fault-tolerant scheduler when
	// |Crashed| ≤ ε.
	TasksLost []dag.TaskID
	// Sweeps is the number of fixpoint sweeps the timing phase needed.
	Sweeps int
}

// Latency returns the latest time at which at least one replica of each
// task has been computed, or an error satisfying errors.Is(err,
// ErrTaskLost) naming a lost task.
func (r *Result) Latency() (float64, error) {
	if len(r.TasksLost) > 0 {
		return math.Inf(1), fmt.Errorf("sim: task %d lost (no surviving replica): %w", r.TasksLost[0], ErrTaskLost)
	}
	lat := 0.0
	for t := range r.Reps {
		min := math.Inf(1)
		for _, o := range r.Reps[t] {
			if o.Alive && o.Finish < min {
				min = o.Finish
			}
		}
		if min > lat {
			lat = min
		}
	}
	return lat, nil
}

// LatencyAllReplicas returns the latest completion time over every
// surviving replica of every task — the aggregation used by the paper's
// upper bound (completion of the last replica of a task).
func (r *Result) LatencyAllReplicas() float64 {
	lat := 0.0
	for t := range r.Reps {
		for _, o := range r.Reps[t] {
			if o.Alive && o.Finish > lat {
				lat = o.Finish
			}
		}
	}
	return lat
}

const (
	opRep = iota
	opComm
)

// op is one replayed operation (replica execution or communication).
// The identity fields are static; alive, start and finish are rewritten
// on every replay.
type op struct {
	kind   int
	rep    sched.Replica
	comm   sched.Comm
	alive  bool
	dur    float64
	start  float64
	finish float64
	seq    int32
}

// Replay recomputes the schedule's execution under the given options.
// It builds a throwaway Replayer; callers replaying the same schedule
// many times should hold a Replayer instead.
func Replay(s *sched.Schedule, opt Options) (*Result, error) {
	r, err := NewReplayer(s)
	if err != nil {
		return nil, err
	}
	return r.Replay(opt)
}

// LowerBound replays the schedule with no crashes under first-arrival
// semantics: the latency achieved if no processor fails.
func LowerBound(s *sched.Schedule) (float64, error) {
	r, err := NewReplayer(s)
	if err != nil {
		return 0, err
	}
	return r.LowerBound()
}

// UpperBound replays the schedule with no crashes under last-arrival
// semantics and returns the completion time of the last replica of any
// task — the latency guaranteed even when ε processors fail.
func UpperBound(s *sched.Schedule) (float64, error) {
	r, err := NewReplayer(s)
	if err != nil {
		return 0, err
	}
	return r.UpperBound()
}

// CrashLatency replays the schedule with the given crashed processors
// under first-arrival semantics and returns the achieved latency.
func CrashLatency(s *sched.Schedule, crashed map[int]bool) (float64, error) {
	r, err := NewReplayer(s)
	if err != nil {
		return 0, err
	}
	return r.CrashLatency(crashed)
}
