// Package sim replays a static fault-tolerant schedule against a set of
// crashed processors and recomputes the actual execution times, the way
// Section 6 of the paper evaluates "the real execution time for a given
// schedule rather than just bounds".
//
// The replay keeps the per-resource order the scheduler committed to
// (executions per processor; transfers per send port, receive port and
// link), removes dead operations — replicas on crashed processors,
// replicas missing all inputs from some predecessor, and the messages of
// dead senders or to crashed receivers — and lets every surviving
// operation run as early as its constraints allow. Dropping a dead
// operation can therefore pull later operations earlier, and losing an
// early message can push a replica later; both directions are observed
// in the paper (Figures 1(b) and 2(b)) and reproduced here.
//
// Two input semantics are supported:
//
//   - FirstArrival: a replica starts once, for each predecessor, the
//     earliest surviving message has arrived. With zero crashes this
//     reproduces the scheduler's own times (the latency lower bound).
//   - LastArrival: a replica waits for every surviving message of every
//     predecessor. With zero crashes, taking the completion time of the
//     last replica of each task yields the paper's upper bound, the
//     latency guaranteed even if ε processors fail.
package sim

import (
	"fmt"
	"math"
	"sort"

	"caft/internal/dag"
	"caft/internal/sched"
)

// Semantics selects when a replica's inputs are considered available.
type Semantics int

const (
	// FirstArrival starts a replica at the earliest complete input set.
	FirstArrival Semantics = iota
	// LastArrival waits for all surviving input messages.
	LastArrival
)

func (s Semantics) String() string {
	if s == FirstArrival {
		return "first-arrival"
	}
	return "last-arrival"
}

// Options configures a replay.
type Options struct {
	// Crashed marks fail-stop processors. Nil means no failures.
	Crashed map[int]bool
	// Sem is the input-availability semantics (default FirstArrival).
	Sem Semantics
}

// RepOutcome is the replayed fate of one replica.
type RepOutcome struct {
	Rep    sched.Replica
	Alive  bool
	Start  float64
	Finish float64
}

// CommOutcome is the replayed fate of one communication.
type CommOutcome struct {
	Comm   sched.Comm
	Alive  bool
	Start  float64
	Finish float64
}

// Result holds the replayed times of every replica.
type Result struct {
	Reps  [][]RepOutcome // indexed like Schedule.Reps
	Comms []CommOutcome  // indexed like Schedule.Comms
	// TasksLost lists tasks with no surviving executed replica. Empty for
	// any schedule produced by a correct ε-fault-tolerant scheduler when
	// |Crashed| ≤ ε.
	TasksLost []dag.TaskID
	// Sweeps is the number of fixpoint sweeps the timing phase needed.
	Sweeps int
}

// Latency returns the latest time at which at least one replica of each
// task has been computed, or an error naming a lost task.
func (r *Result) Latency() (float64, error) {
	if len(r.TasksLost) > 0 {
		return math.Inf(1), fmt.Errorf("sim: task %d lost (no surviving replica)", r.TasksLost[0])
	}
	lat := 0.0
	for t := range r.Reps {
		min := math.Inf(1)
		for _, o := range r.Reps[t] {
			if o.Alive && o.Finish < min {
				min = o.Finish
			}
		}
		if min > lat {
			lat = min
		}
	}
	return lat, nil
}

// LatencyAllReplicas returns the latest completion time over every
// surviving replica of every task — the aggregation used by the paper's
// upper bound (completion of the last replica of a task).
func (r *Result) LatencyAllReplicas() float64 {
	lat := 0.0
	for t := range r.Reps {
		for _, o := range r.Reps[t] {
			if o.Alive && o.Finish > lat {
				lat = o.Finish
			}
		}
	}
	return lat
}

const (
	opRep = iota
	opComm
)

type op struct {
	kind   int
	rep    sched.Replica
	comm   sched.Comm
	alive  bool
	dur    float64
	start  float64
	finish float64
	// sortable identity
	schedStart float64
	seq        int32
}

// Replay recomputes the schedule's execution under the given options.
func Replay(s *sched.Schedule, opt Options) (*Result, error) {
	return replayOnce(s, opt, nil, nil)
}

// replayOnce runs one liveness+timing pass. deadReps (keyed by
// (task,copy)) and deadComms (keyed by Comm.Seq) force additional
// operations dead, used by the timed-crash fixpoint of ReplayTimed.
func replayOnce(s *sched.Schedule, opt Options, deadReps map[[2]int]bool, deadComms map[int32]bool) (*Result, error) {
	crashed := opt.Crashed
	isCrashed := func(p int) bool { return crashed != nil && crashed[p] }
	g := s.P.G
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}

	// --- Build operations. ---
	ops := make([]op, 0, s.ReplicaCount()+len(s.Comms))
	repIdx := map[[2]int]int{} // (task, copy) -> op index
	for t := range s.Reps {
		for _, r := range s.Reps[t] {
			repIdx[[2]int{int(r.Task), r.Copy}] = len(ops)
			ops = append(ops, op{kind: opRep, rep: r, dur: r.Finish - r.Start, schedStart: r.Start, seq: r.Seq})
		}
	}
	commAt := make([]int, len(s.Comms))
	for i, c := range s.Comms {
		commAt[i] = len(ops)
		ops = append(ops, op{kind: opComm, comm: c, dur: c.Dur, schedStart: c.Start, seq: c.Seq})
	}

	// --- Phase 1: liveness, in topological task order. ---
	// inputsOf[(task,copy)][pred] collects the comm op indices feeding a
	// replica, per predecessor.
	inputsOf := map[[2]int]map[dag.TaskID][]int{}
	for i, c := range s.Comms {
		k := [2]int{int(c.To), c.DstCopy}
		if inputsOf[k] == nil {
			inputsOf[k] = map[dag.TaskID][]int{}
		}
		inputsOf[k][c.From] = append(inputsOf[k][c.From], commAt[i])
	}
	for _, t := range order {
		for _, r := range s.Reps[t] {
			ri := repIdx[[2]int{int(t), r.Copy}]
			alive := !isCrashed(r.Proc) && !deadReps[[2]int{int(t), r.Copy}]
			if alive {
				for _, e := range g.Pred(t) {
					ok := false
					for _, ci := range inputsOf[[2]int{int(t), r.Copy}][e.From] {
						c := &ops[ci].comm
						si, exists := repIdx[[2]int{int(c.From), c.SrcCopy}]
						if exists && ops[si].alive && !isCrashed(c.DstProc) && !deadComms[c.Seq] {
							ok = true
							break
						}
					}
					if !ok {
						alive = false
						break
					}
				}
			}
			ops[ri].alive = alive
		}
	}
	for i, c := range s.Comms {
		si, exists := repIdx[[2]int{int(c.From), c.SrcCopy}]
		ops[commAt[i]].alive = exists && ops[si].alive && !isCrashed(c.DstProc) && !deadComms[c.Seq]
	}

	// --- Build per-resource sequences of surviving ops. ---
	m := s.P.Plat.M
	net := s.P.Network()
	compute := make([][]int, m)
	send := make([][]int, m)
	recv := make([][]int, m)
	link := make([][]int, net.NumLinks())
	for i := range ops {
		o := &ops[i]
		if !o.alive {
			continue
		}
		switch o.kind {
		case opRep:
			compute[o.rep.Proc] = append(compute[o.rep.Proc], i)
		case opComm:
			if o.comm.Intra || s.P.Model == sched.MacroDataflow {
				continue
			}
			send[o.comm.SrcProc] = append(send[o.comm.SrcProc], i)
			recv[o.comm.DstProc] = append(recv[o.comm.DstProc], i)
			for _, l := range net.Route(o.comm.SrcProc, o.comm.DstProc) {
				link[l] = append(link[l], i)
			}
		}
	}
	// Resource sequences replay in placement (seq) order. For
	// append-policy schedules this coincides with scheduled-time order;
	// for insertion-policy schedules it is the conservative executable
	// order — placement order is consistent with the data dependencies,
	// so the dependence graph stays acyclic, whereas time order would
	// let a gap-inserted transfer wait on operations scheduled after it
	// and deadlock the last-arrival replay.
	bySched := func(seq []int) {
		sort.Slice(seq, func(a, b int) bool {
			return ops[seq[a]].seq < ops[seq[b]].seq
		})
	}
	prev := make([][]int, len(ops)) // resource predecessors per op
	chain := func(seq []int) {
		bySched(seq)
		for i := 1; i < len(seq); i++ {
			prev[seq[i]] = append(prev[seq[i]], seq[i-1])
		}
	}
	for _, seqs := range [][][]int{compute, send, recv, link} {
		for _, seq := range seqs {
			chain(seq)
		}
	}

	// --- Phase 2: least-fixpoint timing over surviving ops. ---
	// Sweep in (scheduled start, seq) order; all times are monotone
	// non-decreasing across sweeps, so the iteration converges to the
	// least fixpoint — every operation as early as its constraints allow.
	sweep := make([]int, 0, len(ops))
	for i := range ops {
		if ops[i].alive {
			sweep = append(sweep, i)
		}
	}
	bySched(sweep)
	sweeps := 0
	for {
		sweeps++
		if sweeps > len(ops)+5 {
			return nil, fmt.Errorf("sim: timing fixpoint did not converge after %d sweeps", sweeps)
		}
		changed := false
		for _, i := range sweep {
			o := &ops[i]
			st := 0.0
			for _, pi := range prev[i] {
				if ops[pi].finish > st {
					st = ops[pi].finish
				}
			}
			switch o.kind {
			case opComm:
				si := repIdx[[2]int{int(o.comm.From), o.comm.SrcCopy}]
				if ops[si].finish > st {
					st = ops[si].finish
				}
			case opRep:
				ins := inputsOf[[2]int{int(o.rep.Task), o.rep.Copy}]
				for _, e := range g.Pred(o.rep.Task) {
					agg := math.Inf(1)
					if opt.Sem == LastArrival {
						agg = 0
					}
					for _, ci := range ins[e.From] {
						if !ops[ci].alive {
							continue
						}
						f := ops[ci].finish
						if opt.Sem == FirstArrival {
							if f < agg {
								agg = f
							}
						} else if f > agg {
							agg = f
						}
					}
					if math.IsInf(agg, 1) {
						agg = 0 // unreachable: liveness guaranteed an input
					}
					if agg > st {
						st = agg
					}
				}
			}
			if st > o.start {
				o.start = st
				o.finish = st + o.dur
				changed = true
			} else if o.finish != o.start+o.dur {
				o.finish = o.start + o.dur
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// --- Collect results. ---
	res := &Result{Reps: make([][]RepOutcome, len(s.Reps)), Sweeps: sweeps}
	for i := range s.Comms {
		o := ops[commAt[i]]
		res.Comms = append(res.Comms, CommOutcome{Comm: o.comm, Alive: o.alive, Start: o.start, Finish: o.finish})
	}
	for t := range s.Reps {
		anyAlive := false
		for _, r := range s.Reps[t] {
			i := repIdx[[2]int{int(t), r.Copy}]
			o := ops[i]
			out := RepOutcome{Rep: r, Alive: o.alive, Start: o.start, Finish: o.finish}
			if o.alive {
				anyAlive = true
			}
			res.Reps[t] = append(res.Reps[t], out)
		}
		if !anyAlive {
			res.TasksLost = append(res.TasksLost, dag.TaskID(t))
		}
	}
	return res, nil
}

// LowerBound replays the schedule with no crashes under first-arrival
// semantics: the latency achieved if no processor fails.
func LowerBound(s *sched.Schedule) (float64, error) {
	r, err := Replay(s, Options{Sem: FirstArrival})
	if err != nil {
		return 0, err
	}
	return r.Latency()
}

// UpperBound replays the schedule with no crashes under last-arrival
// semantics and returns the completion time of the last replica of any
// task — the latency guaranteed even when ε processors fail.
func UpperBound(s *sched.Schedule) (float64, error) {
	r, err := Replay(s, Options{Sem: LastArrival})
	if err != nil {
		return 0, err
	}
	return r.LatencyAllReplicas(), nil
}

// CrashLatency replays the schedule with the given crashed processors
// under first-arrival semantics and returns the achieved latency.
func CrashLatency(s *sched.Schedule, crashed map[int]bool) (float64, error) {
	r, err := Replay(s, Options{Crashed: crashed, Sem: FirstArrival})
	if err != nil {
		return 0, err
	}
	return r.Latency()
}
