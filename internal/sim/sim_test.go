package sim

import (
	"math"
	"math/rand"
	"testing"

	"caft/internal/core"
	"caft/internal/dag"
	"caft/internal/gen"
	"caft/internal/platform"
	"caft/internal/sched"
	"caft/internal/sched/ftsa"
	"caft/internal/timeline"
)

func prob(g *dag.DAG, m int, exec float64) *sched.Problem {
	p := platform.New(m, 1)
	e := platform.NewExecMatrix(g.NumTasks(), m)
	for t := range e {
		for k := range e[t] {
			e[t][k] = exec
		}
	}
	return &sched.Problem{G: g, Plat: p, Exec: e, Model: sched.OnePort, Policy: timeline.Append}
}

func randomProblem(rng *rand.Rand, n, m int) *sched.Problem {
	params := gen.RandomParams{MinTasks: n, MaxTasks: n, MinDegree: 1, MaxDegree: 3, MinVolume: 5, MaxVolume: 15}
	g := gen.RandomLayered(rng, params)
	plat := platform.NewRandom(rng, m, 0.5, 1.0)
	exec := platform.GenExecForGranularity(rng, g, plat, 1.0, platform.DefaultHeterogeneity)
	return &sched.Problem{G: g, Plat: plat, Exec: exec, Model: sched.OnePort, Policy: timeline.Append}
}

func TestReplayNoCrashReproducesSchedule(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		p := randomProblem(rng, 20+rng.Intn(20), 4)
		s, err := ftsa.Schedule(p, 1, rng)
		if err != nil {
			t.Fatal(err)
		}
		r, err := Replay(s, Options{Sem: FirstArrival})
		if err != nil {
			t.Fatal(err)
		}
		for ti := range s.Reps {
			for i, rep := range s.Reps[ti] {
				o := r.Reps[ti][i]
				if !o.Alive {
					t.Fatalf("replica (%d,%d) dead with no crashes", ti, rep.Copy)
				}
				if math.Abs(o.Start-rep.Start) > sched.Eps || math.Abs(o.Finish-rep.Finish) > sched.Eps {
					t.Fatalf("replica (%d,%d): replay [%v,%v) vs scheduled [%v,%v)",
						ti, rep.Copy, o.Start, o.Finish, rep.Start, rep.Finish)
				}
			}
		}
		lat, err := r.Latency()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(lat-s.ScheduledLatency()) > sched.Eps {
			t.Fatalf("latency %v vs scheduled %v", lat, s.ScheduledLatency())
		}
	}
}

func TestUpperBoundAtLeastLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		p := randomProblem(rng, 25, 5)
		for _, eps := range []int{1, 2} {
			s, err := ftsa.Schedule(p, eps, rng)
			if err != nil {
				t.Fatal(err)
			}
			lb, err := LowerBound(s)
			if err != nil {
				t.Fatal(err)
			}
			ub, err := UpperBound(s)
			if err != nil {
				t.Fatal(err)
			}
			if ub < lb-sched.Eps {
				t.Fatalf("eps=%d: upper bound %v < lower bound %v", eps, ub, lb)
			}
		}
	}
}

func TestCrashKillsReplicaOtherSurvives(t *testing.T) {
	// Chain t0 -> t1, two replicas each on 3 procs.
	g := gen.Chain(2, 5)
	p := prob(g, 3, 2)
	rng := rand.New(rand.NewSource(1))
	s, err := ftsa.Schedule(p, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Crash the processor hosting copy 0 of t1.
	victim := s.Reps[1][0].Proc
	r, err := Replay(s, Options{Crashed: map[int]bool{victim: true}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Latency(); err != nil {
		t.Fatalf("single crash lost a task in a 1-fault-tolerant schedule: %v", err)
	}
	dead := 0
	for ti := range r.Reps {
		for _, o := range r.Reps[ti] {
			if o.Rep.Proc == victim && o.Alive {
				t.Fatal("replica on crashed processor still alive")
			}
			if !o.Alive {
				dead++
			}
		}
	}
	if dead == 0 {
		t.Fatal("crash killed nothing")
	}
}

func TestCrashCascadeKillsDependents(t *testing.T) {
	// Build by hand: t0 on P0 only feeds t1's copy on P1 (one-to-one
	// style); crashing P0 must kill both t0's replica and starve t1's
	// P1 replica, while t1's other copy fed by t0's other copy survives.
	g := gen.Chain(2, 5)
	p := prob(g, 4, 2)
	st := sched.NewState(p)
	r00, _ := st.PlaceReplica(0, 0, 0, nil)
	r01, _ := st.PlaceReplica(0, 1, 1, nil)
	st.PlaceReplica(1, 0, 2, []sched.SourceSet{{Pred: 0, Volume: 5, Sources: []sched.Replica{r00}}})
	st.PlaceReplica(1, 1, 3, []sched.SourceSet{{Pred: 0, Volume: 5, Sources: []sched.Replica{r01}}})
	s := st.Snapshot()
	r, err := Replay(s, Options{Crashed: map[int]bool{0: true}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Reps[1][0].Alive {
		t.Fatal("replica starved of its only input still alive")
	}
	if !r.Reps[1][1].Alive {
		t.Fatal("independent chain killed by unrelated crash")
	}
	if _, err := r.Latency(); err != nil {
		t.Fatal(err)
	}
}

func TestCrashCanShiftRemainingEarlier(t *testing.T) {
	// Paper Fig. 1(b)/2(b) phenomenon, scenario (i) of Section 6: if a
	// processor holding an early-but-redundant sender crashes, its
	// message disappears from the receive port and a later-needed
	// message arrives earlier.
	g := gen.Join(2, 4) // t0,t1 -> t2
	p := prob(g, 6, 1)
	st := sched.NewState(p)
	r00, _ := st.PlaceReplica(0, 0, 0, nil)
	r01, _ := st.PlaceReplica(0, 1, 1, nil)
	r10, _ := st.PlaceReplica(1, 0, 2, nil)
	r11, _ := st.PlaceReplica(1, 1, 3, nil)
	full := []sched.SourceSet{
		{Pred: 0, Volume: 4, Sources: []sched.Replica{r00, r01}},
		{Pred: 1, Volume: 4, Sources: []sched.Replica{r10, r11}},
	}
	rep, _ := st.PlaceReplica(2, 0, 4, full)
	st.PlaceReplica(2, 1, 5, full)
	s := st.Snapshot()
	// Replay with no crash: all four messages serialize into P4's
	// receive port; first-arrival start for t2 needs one per pred.
	base, err := Replay(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	baseStart := base.Reps[2][0].Start
	if baseStart != rep.Start {
		t.Fatalf("baseline replay start %v != scheduled %v", baseStart, rep.Start)
	}
	// Crash P1 (a redundant copy of t0): P4 receives fewer messages, so
	// the needed t1 message can only arrive earlier or at the same time.
	r2, err := Replay(s, Options{Crashed: map[int]bool{1: true}})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Reps[2][0].Start > baseStart+sched.Eps {
		t.Fatalf("removing a redundant message delayed the replica: %v > %v", r2.Reps[2][0].Start, baseStart)
	}
}

func TestCrashCanDelayLatency(t *testing.T) {
	// Scenario (ii): crash the fast source; the survivor's message
	// arrives later, so the consumer starts later.
	g := gen.Chain(2, 5)
	p := prob(g, 4, 2)
	p.Exec[0][1] = 8 // replica of t0 on P1 is slow
	st := sched.NewState(p)
	r00, _ := st.PlaceReplica(0, 0, 0, nil) // fast, [0,2)
	r01, _ := st.PlaceReplica(0, 1, 1, nil) // slow, [0,8)
	full := []sched.SourceSet{{Pred: 0, Volume: 5, Sources: []sched.Replica{r00, r01}}}
	st.PlaceReplica(1, 0, 2, full)
	st.PlaceReplica(1, 1, 3, full)
	s := st.Snapshot()
	lat0, err := CrashLatency(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	lat1, err := CrashLatency(s, map[int]bool{0: true})
	if err != nil {
		t.Fatal(err)
	}
	if lat1 <= lat0 {
		t.Fatalf("crashing the fast source should delay: %v <= %v", lat1, lat0)
	}
}

func TestTooManyCrashesLosesTask(t *testing.T) {
	g := gen.Chain(3, 5)
	p := prob(g, 4, 2)
	rng := rand.New(rand.NewSource(9))
	s, err := ftsa.Schedule(p, 1, rng) // tolerates 1 failure
	if err != nil {
		t.Fatal(err)
	}
	// Crash both processors hosting t0's replicas: t0 is lost.
	crashed := map[int]bool{}
	for _, r := range s.Reps[0] {
		crashed[r.Proc] = true
	}
	r, err := Replay(s, Options{Crashed: crashed})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.TasksLost) == 0 {
		t.Fatal("killing every replica of a task should lose it")
	}
	if _, err := r.Latency(); err == nil {
		t.Fatal("Latency must error when a task is lost")
	}
}

func TestReplayMacroDataflow(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := randomProblem(rng, 20, 4)
	p.Model = sched.MacroDataflow
	s, err := ftsa.Schedule(p, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Replay(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lat, err := r.Latency()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lat-s.ScheduledLatency()) > sched.Eps {
		t.Fatalf("macro-dataflow replay latency %v vs scheduled %v", lat, s.ScheduledLatency())
	}
}

func TestSemanticsString(t *testing.T) {
	if FirstArrival.String() != "first-arrival" || LastArrival.String() != "last-arrival" {
		t.Error("Semantics.String broken")
	}
}

// Exhaustive resilience check: for small random problems and every crash
// subset of size <= eps, the CAFT and FTSA schedules must keep at least
// one replica of every task alive, and the replays must be finite.
func TestResilienceExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 8; trial++ {
		m := 5
		p := randomProblem(rng, 12+rng.Intn(10), m)
		for _, eps := range []int{1, 2} {
			schedules := map[string]*sched.Schedule{}
			var err error
			if schedules["ftsa"], err = ftsa.Schedule(p, eps, rng); err != nil {
				t.Fatal(err)
			}
			if schedules["caft"], err = core.Schedule(p, eps, rng); err != nil {
				t.Fatal(err)
			}
			for name, s := range schedules {
				if err := s.Validate(); err != nil {
					t.Fatalf("%s eps=%d: invalid schedule: %v", name, eps, err)
				}
				forEachSubset(m, eps, func(crashed map[int]bool) {
					lat, err := CrashLatency(s, crashed)
					if err != nil {
						t.Fatalf("%s eps=%d crashed=%v: %v", name, eps, crashed, err)
					}
					if math.IsInf(lat, 1) || lat <= 0 {
						t.Fatalf("%s eps=%d crashed=%v: bad latency %v", name, eps, crashed, lat)
					}
				})
			}
		}
	}
}

// forEachSubset enumerates all non-empty subsets of {0..m-1} with size
// at most k.
func forEachSubset(m, k int, f func(map[int]bool)) {
	var rec func(start int, cur []int)
	rec = func(start int, cur []int) {
		if len(cur) > 0 {
			set := map[int]bool{}
			for _, p := range cur {
				set[p] = true
			}
			f(set)
		}
		if len(cur) == k {
			return
		}
		for p := start; p < m; p++ {
			rec(p+1, append(cur, p))
		}
	}
	rec(0, nil)
}
