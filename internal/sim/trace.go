package sim

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WriteTraceCSV exports a replay result as a CSV event trace ordered by
// actual start time: one row per surviving operation with its kind
// (exec/comm/intra), task identifiers, resources and times. Dead
// operations are emitted with state "dead" and empty times, so crash
// cascades are visible in the trace.
func (r *Result) WriteTraceCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"kind", "task", "copy", "to", "toCopy", "proc", "dstProc", "start", "finish", "state"}); err != nil {
		return err
	}
	type row struct {
		start float64
		alive bool
		rec   []string
	}
	var rows []row
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', -1, 64) }
	for t := range r.Reps {
		for _, o := range r.Reps[t] {
			rec := []string{"exec", fmt.Sprint(o.Rep.Task), fmt.Sprint(o.Rep.Copy), "", "",
				fmt.Sprint(o.Rep.Proc), "", "", "", "dead"}
			if o.Alive {
				rec[7], rec[8], rec[9] = f(o.Start), f(o.Finish), "done"
			}
			rows = append(rows, row{start: o.Start, alive: o.Alive, rec: rec})
		}
	}
	for _, o := range r.Comms {
		kind := "comm"
		if o.Comm.Intra {
			kind = "intra"
		}
		rec := []string{kind, fmt.Sprint(o.Comm.From), fmt.Sprint(o.Comm.SrcCopy),
			fmt.Sprint(o.Comm.To), fmt.Sprint(o.Comm.DstCopy),
			fmt.Sprint(o.Comm.SrcProc), fmt.Sprint(o.Comm.DstProc), "", "", "dead"}
		if o.Alive {
			rec[7], rec[8], rec[9] = f(o.Start), f(o.Finish), "done"
		}
		rows = append(rows, row{start: o.Start, alive: o.Alive, rec: rec})
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].alive != rows[j].alive {
			return rows[i].alive // surviving ops first, by start time
		}
		return rows[i].start < rows[j].start
	})
	for _, rw := range rows {
		if err := cw.Write(rw.rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
