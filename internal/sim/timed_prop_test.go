package sim

// Boundary properties of the timed fail-stop semantics: the timed
// replay must degenerate bit-identically to the static replay at crash
// time 0, to the no-failure replay past the makespan, and its dead set
// must be monotone in the crash times (earlier crashes never revive an
// operation).

import (
	"math/rand"
	"testing"

	"caft/internal/core"
	"caft/internal/sched"
	"caft/internal/sched/ftbar"
	"caft/internal/sched/ftsa"
)

// sameResult asserts two replay results are bit-identical in every
// outcome field (Alive, Start, Finish per replica and communication,
// and the lost-task list). Sweeps is engine diagnostics, not semantics,
// and is deliberately not compared.
func sameResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if len(got.TasksLost) != len(want.TasksLost) {
		t.Fatalf("%s: lost %v, want %v", label, got.TasksLost, want.TasksLost)
	}
	for i := range want.TasksLost {
		if got.TasksLost[i] != want.TasksLost[i] {
			t.Fatalf("%s: lost %v, want %v", label, got.TasksLost, want.TasksLost)
		}
	}
	for task := range want.Reps {
		for i, w := range want.Reps[task] {
			g := got.Reps[task][i]
			if g.Alive != w.Alive || g.Start != w.Start || g.Finish != w.Finish {
				t.Fatalf("%s: replica (%d,%d) = {alive %v, %v, %v}, want {alive %v, %v, %v}",
					label, task, w.Rep.Copy, g.Alive, g.Start, g.Finish, w.Alive, w.Start, w.Finish)
			}
		}
	}
	for i, w := range want.Comms {
		g := got.Comms[i]
		if g.Alive != w.Alive || g.Start != w.Start || g.Finish != w.Finish {
			t.Fatalf("%s: comm %d = {alive %v, %v, %v}, want {alive %v, %v, %v}",
				label, i, g.Alive, g.Start, g.Finish, w.Alive, w.Start, w.Finish)
		}
	}
}

// schedulesUnderTest builds one schedule per algorithm on a shared
// random problem.
func schedulesUnderTest(t *testing.T, seed int64) []*sched.Schedule {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	p := randomProblem(rng, 30, 6)
	sCA, err := core.Schedule(p, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	sFT, err := ftsa.Schedule(p, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	sFB, err := ftbar.Schedule(p, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	return []*sched.Schedule{sCA, sFT, sFB}
}

func TestTimedZeroBitIdenticalToStatic(t *testing.T) {
	for _, s := range schedulesUnderTest(t, 11) {
		rep, err := NewReplayer(s)
		if err != nil {
			t.Fatal(err)
		}
		m := s.P.Plat.M
		sets := [][]int{}
		for proc := 0; proc < m; proc++ {
			sets = append(sets, []int{proc})
		}
		sets = append(sets, []int{0, 3}, []int{1, 4, 5})
		for _, set := range sets {
			crashed := map[int]bool{}
			times := map[int]float64{}
			for _, p := range set {
				crashed[p] = true
				times[p] = 0
			}
			static, err := rep.Replay(Options{Crashed: crashed})
			if err != nil {
				t.Fatal(err)
			}
			timed, err := rep.ReplayTimed(times, FirstArrival)
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, "crash@0", timed, static)
		}
	}
}

func TestTimedPastMakespanBitIdenticalToNoFailure(t *testing.T) {
	for _, s := range schedulesUnderTest(t, 12) {
		rep, err := NewReplayer(s)
		if err != nil {
			t.Fatal(err)
		}
		clean, err := rep.Replay(Options{})
		if err != nil {
			t.Fatal(err)
		}
		// The horizon must cover every operation, comms included: FTSA
		// ships redundant messages that may legitimately finish after the
		// last replica (their destination already started from an earlier
		// arrival), and a crash between the last replica and such a
		// message would still kill the message.
		horizon := s.MakespanAll()
		for _, o := range clean.Comms {
			if o.Finish > horizon {
				horizon = o.Finish
			}
		}
		times := map[int]float64{}
		for proc := 0; proc < s.P.Plat.M; proc++ {
			times[proc] = horizon + 1 + float64(proc)
		}
		timed, err := rep.ReplayTimed(times, FirstArrival)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, "crash@past-makespan", timed, clean)
	}
}

// aliveSet flattens which operations survived a replay.
func aliveSet(r *Result) []bool {
	var out []bool
	for t := range r.Reps {
		for _, o := range r.Reps[t] {
			out = append(out, o.Alive)
		}
	}
	for _, o := range r.Comms {
		out = append(out, o.Alive)
	}
	return out
}

// TestTimedDeadSetMonotone checks the fixpoint's defining property on
// randomized schedules: lowering crash times (crashing earlier) can
// only kill more — every operation alive under the earlier crashes is
// alive under the later ones.
func TestTimedDeadSetMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, s := range schedulesUnderTest(t, 13) {
		rep, err := NewReplayer(s)
		if err != nil {
			t.Fatal(err)
		}
		horizon := s.MakespanAll()
		for draw := 0; draw < 40; draw++ {
			late := map[int]float64{}
			early := map[int]float64{}
			nCrash := 1 + rng.Intn(s.P.Plat.M)
			for len(late) < nCrash {
				p := rng.Intn(s.P.Plat.M)
				if _, ok := late[p]; ok {
					continue
				}
				tau := rng.Float64() * 1.2 * horizon
				late[p] = tau
				early[p] = tau * rng.Float64()
			}
			rLate, err := rep.ReplayTimed(late, FirstArrival)
			if err != nil {
				t.Fatal(err)
			}
			rEarly, err := rep.ReplayTimed(early, FirstArrival)
			if err != nil {
				t.Fatal(err)
			}
			aLate, aEarly := aliveSet(rLate), aliveSet(rEarly)
			for i := range aEarly {
				if aEarly[i] && !aLate[i] {
					t.Fatalf("draw %d: op %d alive under earlier crashes %v but dead under later %v",
						draw, i, early, late)
				}
			}
		}
	}
}

// TestTimedScratchReuseMatchesThrowaway pins the reused scratch path to
// the one-shot package API: interleaved static and timed replays on one
// Replayer must equal fresh-Replayer results bit for bit.
func TestTimedScratchReuseMatchesThrowaway(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, s := range schedulesUnderTest(t, 14) {
		rep, err := NewReplayer(s)
		if err != nil {
			t.Fatal(err)
		}
		horizon := s.MakespanAll()
		for draw := 0; draw < 10; draw++ {
			times := map[int]float64{
				rng.Intn(s.P.Plat.M): rng.Float64() * horizon,
				rng.Intn(s.P.Plat.M): rng.Float64() * horizon,
			}
			reused, err := rep.ReplayTimed(times, FirstArrival)
			if err != nil {
				t.Fatal(err)
			}
			oneshot, err := ReplayTimed(s, times, FirstArrival)
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, "reused-vs-oneshot", reused, oneshot)
			// A static replay in between must not poison the timed scratch.
			if _, err := rep.Replay(Options{Crashed: map[int]bool{draw % s.P.Plat.M: true}}); err != nil {
				t.Fatal(err)
			}
		}
	}
}
