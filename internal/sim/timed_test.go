package sim

import (
	"math"
	"math/rand"
	"testing"

	"caft/internal/core"
	"caft/internal/gen"
	"caft/internal/sched"
	"caft/internal/sched/ftsa"
)

func TestTimedCrashAtZeroEqualsStatic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := randomProblem(rng, 25, 5)
	s, err := ftsa.Schedule(p, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	for proc := 0; proc < 5; proc++ {
		static, err := CrashLatency(s, map[int]bool{proc: true})
		if err != nil {
			t.Fatal(err)
		}
		timed, err := CrashLatencyAt(s, map[int]float64{proc: 0})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(static-timed) > sched.Eps {
			t.Fatalf("P%d: timed@0 %v != static %v", proc, timed, static)
		}
	}
}

func TestTimedCrashAfterEndIsHarmless(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := randomProblem(rng, 25, 5)
	s, err := core.Schedule(p, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	base, err := LowerBound(s)
	if err != nil {
		t.Fatal(err)
	}
	lat, err := CrashLatencyAt(s, map[int]float64{2: s.MakespanAll() + 1000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lat-base) > sched.Eps {
		t.Fatalf("late crash changed latency: %v vs %v", lat, base)
	}
}

func TestTimedCrashPreservesCompletedWork(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := randomProblem(rng, 30, 5)
	s, err := core.Schedule(p, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	base, _ := LowerBound(s)
	early, err := CrashLatencyAt(s, map[int]float64{0: 0})
	if err != nil {
		t.Fatal(err)
	}
	// A crash halfway through lets the first half of P0's work count,
	// so the result cannot be worse than losing P0 from the start.
	mid, err := CrashLatencyAt(s, map[int]float64{0: base / 2})
	if err != nil {
		t.Fatal(err)
	}
	if mid > early+sched.Eps {
		t.Fatalf("mid-crash latency %v worse than immediate crash %v", mid, early)
	}
}

func TestTimedCrashReplicaSurvivesIfFinished(t *testing.T) {
	// Single replica finishing at time 2; crash at 2 keeps it, crash at
	// 1.9 kills it.
	p := prob(gen.Chain(2, 5), 3, 2)
	rng := rand.New(rand.NewSource(4))
	s, err := ftsa.Schedule(p, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Every replica of t0 finishes at 2 (entry task, exec 2).
	victim := s.Reps[0][0].Proc
	r, err := ReplayTimed(s, map[int]float64{victim: 2}, FirstArrival)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Reps[0][0].Alive {
		t.Fatal("replica finishing exactly at the crash instant must survive")
	}
	r2, err := ReplayTimed(s, map[int]float64{victim: 1.9}, FirstArrival)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Reps[0][0].Alive {
		t.Fatal("replica finishing after the crash instant must die")
	}
	if _, err := r2.Latency(); err != nil {
		t.Fatalf("1-fault-tolerant schedule lost a task: %v", err)
	}
}

func TestTimedCrashResilience(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := randomProblem(rng, 30, 6)
	for _, eps := range []int{1, 2} {
		s, err := core.Schedule(p, eps, rng)
		if err != nil {
			t.Fatal(err)
		}
		horizon := s.MakespanAll()
		for draw := 0; draw < 25; draw++ {
			times := map[int]float64{}
			for len(times) < eps {
				times[rng.Intn(6)] = rng.Float64() * horizon
			}
			if _, err := CrashLatencyAt(s, times); err != nil {
				t.Fatalf("eps=%d times=%v: %v", eps, times, err)
			}
		}
	}
}

func TestReplayExposesCommOutcomes(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := randomProblem(rng, 20, 4)
	s, err := ftsa.Schedule(p, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Replay(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Comms) != len(s.Comms) {
		t.Fatalf("comm outcomes %d != comms %d", len(r.Comms), len(s.Comms))
	}
	for i, o := range r.Comms {
		if !o.Alive {
			t.Fatalf("comm %d dead with no crashes", i)
		}
		if o.Finish < o.Start-sched.Eps {
			t.Fatalf("comm %d finishes before it starts", i)
		}
	}
}
