package sim

import (
	"fmt"
	"math"

	"caft/internal/sched"
)

// runTimed grows the dead set of the timed-crash fixpoint on the
// Replayer's scratch buffers: per-op deadlines are loaded once from
// crashTimes, then liveness+timing passes run until no surviving
// operation violates its deadline. It allocates nothing.
//
//caft:zeroalloc
func (r *Replayer) runTimed(crashTimes map[int]float64, sem Semantics) error {
	for i := range r.crashed {
		r.crashed[i] = false
	}
	for i := range r.ops {
		r.dead[i] = false
		o := &r.ops[i]
		d := math.Inf(1)
		switch o.kind {
		case opRep:
			if tau, ok := crashTimes[o.rep.Proc]; ok {
				d = tau
			}
		case opComm:
			// A transfer must complete before both endpoints crash.
			if tau, ok := crashTimes[o.comm.SrcProc]; ok {
				d = tau
			}
			if tau, ok := crashTimes[o.comm.DstProc]; ok && tau < d {
				d = tau
			}
		}
		r.deadline[i] = d
	}
	limit := len(r.ops) + 2
	for iter := 0; iter < limit; iter++ {
		if err := r.run(sem, r.dead); err != nil {
			return err
		}
		changed := false
		for i := range r.ops {
			if o := &r.ops[i]; o.alive && o.finish > r.deadline[i]+sched.Eps {
				r.dead[i] = true
				changed = true
			}
		}
		if !changed {
			return nil
		}
	}
	return fmt.Errorf("sim: timed-crash fixpoint did not converge") //caft:alloc-ok non-convergence diagnostic; unreachable on a well-formed schedule
}

// ReplayTimed replays the schedule under timed fail-stop failures,
// reusing this Replayer's tables and scratch: each entry of crashTimes
// maps a processor to the instant it permanently stops. Work the
// processor completed before that instant survives — a replica counts
// as executed only if it finishes no later than the crash, and a
// message is delivered only if its transfer completes before both its
// sender's and its receiver's crash instants.
//
// A static crash (Replay with Options.Crashed) is the special case
// crashTime = 0. Replay with no crashes is the special case of an empty
// map. Timed semantics require a fixpoint: killing an operation frees
// its resources, which can pull other operations earlier and let them
// beat the deadline, so the dead set is grown iteratively — starting
// from the optimistic no-extra-deaths schedule — until no surviving
// operation violates a crash instant. The result is the least such dead
// set under the optimistic ordering, matching an execution in which the
// system never waits for work that will never arrive.
//
//caft:zeroalloc
func (r *Replayer) ReplayTimed(crashTimes map[int]float64, sem Semantics) (*Result, error) {
	if err := r.runTimed(crashTimes, sem); err != nil {
		return nil, err
	}
	return r.materialize(), nil //caft:alloc-ok the Result is the caller's one deliberate allocation
}

// CrashLatencyAt replays timed crashes under first-arrival semantics
// and returns the achieved latency without materializing a Result —
// the Monte-Carlo entry point of the reliability experiments; a
// steady-state call allocates nothing. A lost task reports an error
// satisfying errors.Is(err, ErrTaskLost).
//
//caft:zeroalloc
func (r *Replayer) CrashLatencyAt(crashTimes map[int]float64) (float64, error) {
	if err := r.runTimed(crashTimes, FirstArrival); err != nil {
		return 0, err
	}
	return r.latency()
}

// ReplayTimed replays a schedule under timed fail-stop failures (see
// Replayer.ReplayTimed). It builds a throwaway Replayer; hot loops —
// every fixpoint iteration replays the whole schedule — should hold a
// Replayer and call its ReplayTimed or CrashLatencyAt instead.
func ReplayTimed(s *sched.Schedule, crashTimes map[int]float64, sem Semantics) (*Result, error) {
	rep, err := NewReplayer(s)
	if err != nil {
		return nil, err
	}
	return rep.ReplayTimed(crashTimes, sem)
}

// CrashLatencyAt replays with timed crashes and returns the achieved
// latency, via a throwaway Replayer.
func CrashLatencyAt(s *sched.Schedule, crashTimes map[int]float64) (float64, error) {
	rep, err := NewReplayer(s)
	if err != nil {
		return 0, err
	}
	return rep.CrashLatencyAt(crashTimes)
}
