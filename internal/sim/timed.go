package sim

import (
	"fmt"

	"caft/internal/sched"
)

// ReplayTimed replays a schedule under timed fail-stop failures: each
// entry of crashTimes maps a processor to the instant it permanently
// stops. Work the processor completed before that instant survives —
// a replica counts as executed only if it finishes no later than the
// crash, and a message is delivered only if its transfer completes
// before both its sender's and its receiver's crash instants.
//
// A static crash (Replay with Options.Crashed) is the special case
// crashTime = 0. Replay with no crashes is the special case of an empty
// map. Timed semantics require a fixpoint: killing an operation frees
// its resources, which can pull other operations earlier and let them
// beat the deadline, so the dead set is grown iteratively — starting
// from the optimistic no-extra-deaths schedule — until no surviving
// operation violates a crash instant. The result is the least such dead
// set under the optimistic ordering, matching an execution in which the
// system never waits for work that will never arrive.
func ReplayTimed(s *sched.Schedule, crashTimes map[int]float64, sem Semantics) (*Result, error) {
	rep, err := NewReplayer(s)
	if err != nil {
		return nil, err
	}
	deadReps := map[[2]int]bool{}
	deadComms := map[int32]bool{}
	limit := s.ReplicaCount() + len(s.Comms) + 2
	for iter := 0; iter < limit; iter++ {
		res, err := rep.replay(Options{Sem: sem}, deadReps, deadComms)
		if err != nil {
			return nil, err
		}
		changed := false
		for t := range res.Reps {
			for _, o := range res.Reps[t] {
				if !o.Alive {
					continue
				}
				if tau, ok := crashTimes[o.Rep.Proc]; ok && o.Finish > tau+sched.Eps {
					deadReps[[2]int{int(o.Rep.Task), o.Rep.Copy}] = true
					changed = true
				}
			}
		}
		for _, o := range res.Comms {
			if !o.Alive {
				continue
			}
			deadline, has := crashTimes[o.Comm.SrcProc], false
			if _, ok := crashTimes[o.Comm.SrcProc]; ok {
				has = true
			}
			if tau, ok := crashTimes[o.Comm.DstProc]; ok && (!has || tau < deadline) {
				deadline, has = tau, true
			}
			if has && o.Finish > deadline+sched.Eps {
				deadComms[o.Comm.Seq] = true
				changed = true
			}
		}
		if !changed {
			return res, nil
		}
	}
	return nil, fmt.Errorf("sim: timed-crash fixpoint did not converge")
}

// CrashLatencyAt replays with timed crashes and returns the achieved
// latency.
func CrashLatencyAt(s *sched.Schedule, crashTimes map[int]float64) (float64, error) {
	r, err := ReplayTimed(s, crashTimes, FirstArrival)
	if err != nil {
		return 0, err
	}
	return r.Latency()
}
