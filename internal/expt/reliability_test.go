package expt

import (
	"bytes"
	"strings"
	"testing"
)

func TestReliabilityDeterministicAcrossWorkers(t *testing.T) {
	var w1, w4 bytes.Buffer
	p1, err := RunReliability(&w1, 1, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	p4, err := RunReliability(&w4, 1, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	if w1.String() != w4.String() {
		t.Fatal("reliability TSV differs between -workers 1 and -workers 4")
	}
	if len(p1) != len(p4) {
		t.Fatalf("point counts differ: %d vs %d", len(p1), len(p4))
	}
}

func TestReliabilityPointInvariants(t *testing.T) {
	var buf bytes.Buffer
	points, err := RunReliability(&buf, 2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(reliabilityMults) + len(reliabilityModels)
	if len(points) != wantRows {
		t.Fatalf("%d rows, want %d", len(points), wantRows)
	}
	sweepRows := 0
	for _, pt := range points {
		if pt.Mult > 0 {
			sweepRows++
		}
		for a, alg := range ReliabilityAlgs {
			if pt.Draws[a] > 2*reliabilitySamples {
				t.Fatalf("%s %s: %d draws from %d samples", pt.Label, alg, pt.Draws[a], 2*reliabilitySamples)
			}
			u := pt.Unrel[a]
			if u < 0 || u > 1 {
				t.Fatalf("%s %s: unreliability %v outside [0,1]", pt.Label, alg, u)
			}
		}
	}
	if sweepRows != len(reliabilityMults) {
		t.Fatalf("%d sweep rows carry a multiplier, want %d", sweepRows, len(reliabilityMults))
	}
	out := buf.String()
	for _, want := range []string{"mtbf/T\t", "## failure-model comparison", "weibull-k0.7", "racks-2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("TSV output missing %q:\n%s", want, out)
		}
	}

	// The plot writers must accept the rows: the sweep data has one line
	// per multiplier plus the header, and the script references the file.
	var dat, gp bytes.Buffer
	if err := WriteReliabilityGnuplotData(&dat, points); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(dat.String(), "\n"); lines != len(reliabilityMults)+1 {
		t.Fatalf("gnuplot data has %d lines, want %d", lines, len(reliabilityMults)+1)
	}
	if err := WriteReliabilityGnuplotScript(&gp, "reliability.dat"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(gp.String(), `"reliability.dat"`) {
		t.Fatal("gnuplot script does not reference the data file")
	}
}

// TestReliabilityReplicationHelps pins the headline contrast of the
// experiment: in the rare-failure regime (the largest MTBF multiplier),
// the ε = 1 schedulers must be estimated at least as reliable as
// unreplicated HEFT — on enough samples, strictly more reliable.
func TestReliabilityReplicationHelps(t *testing.T) {
	var buf bytes.Buffer
	points, err := RunReliability(&buf, 3, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	last := points[len(reliabilityMults)-1]
	heft := last.Unrel[0]
	for a := 1; a < len(ReliabilityAlgs); a++ {
		if last.Unrel[a] > heft {
			t.Fatalf("%s unreliability %v exceeds HEFT's %v at MTBF %gxT",
				ReliabilityAlgs[a], last.Unrel[a], heft, last.Mult)
		}
	}
}
