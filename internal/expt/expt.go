// Package expt reproduces the experimental study of Section 6 of the
// paper: random task graphs with the paper's parameters are scheduled
// by CAFT, FTSA and FTBAR (plus the fault-free references), replayed
// through the crash simulator, and the per-granularity averages of the
// normalized latency and of the fault-tolerance overhead are reported —
// the data behind Figures 1-6.
//
//caft:deterministic
package expt

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"caft/internal/core"
	"caft/internal/gen"
	"caft/internal/platform"
	"caft/internal/sched"
	"caft/internal/sim"
	"caft/internal/stats"
	"caft/internal/timeline"
)

// GranularityA is the paper's first granularity family: [0.2, 2.0] in
// increments of 0.2 (Figures 1-3).
func GranularityA() []float64 {
	out := make([]float64, 10)
	for i := range out {
		out[i] = 0.2 * float64(i+1)
	}
	return out
}

// GranularityB is the paper's second family: [1, 10] in increments of 1
// (Figures 4-6).
func GranularityB() []float64 {
	out := make([]float64, 10)
	for i := range out {
		out[i] = float64(i + 1)
	}
	return out
}

// Config parameterizes one figure-style experiment.
type Config struct {
	M             int       // processors
	Eps           int       // supported failures ε
	Crashes       int       // processors actually crashed in the replay
	Granularities []float64 // sweep values
	Graphs        int       // random graphs per point (paper: 60)
	Seed          int64
	Params        gen.RandomParams
	DelayLo       float64 // unit delay range (paper: [0.5, 1])
	DelayHi       float64
	Model         sched.Model
	Policy        timeline.Policy
	// Norm divides every latency before averaging. The paper plots a
	// "normalized latency" without defining the normalization; any
	// per-family constant preserves the shape, and we use the mean
	// message volume (see DESIGN.md S2). Zero means DefaultNorm.
	Norm float64
	// CAFTOpts selects the CAFT variant under test (default portfolio +
	// support locking).
	CAFTOpts core.Options
	// Workers sets the number of (granularity, graph) work units evaluated
	// concurrently; 0 means GOMAXPROCS. Every unit draws from its own seed
	// derived up front from (Seed, granularity, graph), and units merge
	// into Points in a fixed order, so the output is byte-identical for
	// any worker count.
	Workers int
}

// DefaultNorm is the mean of the paper's message-volume range [50,150].
const DefaultNorm = 100.0

// FigureConfig returns the configuration of paper figure n (1-6) with
// the given number of graphs per point (pass 60 for the paper's setup).
func FigureConfig(n, graphs int, seed int64) (Config, error) {
	cfg := Config{
		Graphs:  graphs,
		Seed:    seed,
		Params:  gen.DefaultParams,
		DelayLo: 0.5, DelayHi: 1.0,
		Model:  sched.OnePort,
		Policy: timeline.Append,
	}
	switch n {
	case 1:
		cfg.M, cfg.Eps, cfg.Crashes, cfg.Granularities = 10, 1, 1, GranularityA()
	case 2:
		cfg.M, cfg.Eps, cfg.Crashes, cfg.Granularities = 10, 3, 2, GranularityA()
	case 3:
		cfg.M, cfg.Eps, cfg.Crashes, cfg.Granularities = 20, 5, 3, GranularityA()
	case 4:
		cfg.M, cfg.Eps, cfg.Crashes, cfg.Granularities = 10, 1, 1, GranularityB()
	case 5:
		cfg.M, cfg.Eps, cfg.Crashes, cfg.Granularities = 10, 3, 2, GranularityB()
	case 6:
		cfg.M, cfg.Eps, cfg.Crashes, cfg.Granularities = 20, 5, 3, GranularityB()
	default:
		return cfg, fmt.Errorf("expt: no figure %d in the paper", n)
	}
	return cfg, nil
}

// Point holds the averaged measurements at one granularity value. All
// latencies are normalized (divided by cfg.Norm); overheads are in
// percent relative to the fault-free CAFT latency (CAFT*), following
// the paper's formula.
type Point struct {
	G float64

	// Panel (a): latency with 0 crash, upper bounds, fault-free refs.
	FTSA0, FTSAUB   float64
	FTBAR0, FTBARUB float64
	CAFT0, CAFTUB   float64
	FFCAFT, FFFTBAR float64
	FFHOFT          float64

	// Panel (b): latency with crashes. NaN when no crash replay of the
	// scheduler survived (see the matching *cN counts): an empty crash
	// series is reported as missing data, never as latency 0.
	FTSAc, FTBARc, CAFTc float64

	// Crash samples behind each panel-(b) mean (out of Graphs draws).
	FTSAcN, FTBARcN, CAFTcN int

	// Panel (c): average overhead (%).
	OvFTSA0, OvFTSAc   float64
	OvFTBAR0, OvFTBARc float64
	OvCAFT0, OvCAFTc   float64

	// Message counts (Prop. 5.1 discussion; not plotted in the paper's
	// figures but central to its argument).
	MsgCAFT, MsgFTSA, MsgFTBAR, MsgHEFT, MsgHOFT float64

	// Dispersion of the headline series, for error bars.
	CAFT0CI, FTSA0CI, FTBAR0CI float64

	// TasksLost counts crash replays that genuinely lost a task (always
	// zero for the safe default variants; non-zero for the PaperLocking
	// ablation). Such draws are excluded from the crash averages.
	TasksLost int
	// ReplayErrors counts crash replays the simulator failed to evaluate
	// (e.g. a non-converging timing fixpoint). Kept separate from
	// TasksLost: a lost task is a property of the schedule under test, an
	// engine failure is not.
	ReplayErrors int
}

// Instance bundles one generated problem.
type Instance struct {
	P *sched.Problem
}

// GenInstance generates one random problem with the config's parameters
// at granularity g.
func (cfg Config) GenInstance(rng *rand.Rand, g float64) Instance {
	graph := gen.RandomLayered(rng, cfg.Params)
	plat := platform.NewRandom(rng, cfg.M, cfg.DelayLo, cfg.DelayHi)
	exec := platform.GenExecForGranularity(rng, graph, plat, g, platform.DefaultHeterogeneity)
	return Instance{P: &sched.Problem{G: graph, Plat: plat, Exec: exec, Model: cfg.Model, Policy: cfg.Policy}}
}

// DrawCrashes draws cfg.Crashes distinct crashed processors.
func (cfg Config) DrawCrashes(rng *rand.Rand) map[int]bool {
	crashed := map[int]bool{}
	for len(crashed) < cfg.Crashes && len(crashed) < cfg.M {
		crashed[rng.Intn(cfg.M)] = true
	}
	return crashed
}

// Run sweeps the granularities and returns one Point per value. The
// (granularity, graph) work units are evaluated concurrently on
// cfg.Workers goroutines, each from its own seed derived up front; the
// per-unit measurements merge into Points in a fixed order, so the
// result is identical for any worker count. The optional progress
// callback is invoked in granularity order as soon as each point's
// units complete — the sweep keeps running while earlier points are
// reported.
func (cfg Config) Run(progress func(Point)) ([]Point, error) {
	if cfg.Norm == 0 {
		cfg.Norm = DefaultNorm
	}
	if cfg.Graphs < 0 {
		return nil, fmt.Errorf("expt: negative graph count %d", cfg.Graphs)
	}
	nG := len(cfg.Granularities)
	points := make([]Point, 0, nG)

	// Streaming merge: count completed units per granularity and fold a
	// Point as soon as its slice is full, always in granularity order.
	remaining := make([]int, nG)
	for gi := range remaining {
		remaining[gi] = cfg.Graphs
	}
	nextG := 0
	units := make([]unitResult, nG*cfg.Graphs)
	mergeReady := func() {
		for nextG < nG && remaining[nextG] == 0 {
			g := cfg.Granularities[nextG]
			pt := cfg.mergePoint(g, units[nextG*cfg.Graphs:(nextG+1)*cfg.Graphs])
			points = append(points, pt)
			if progress != nil {
				progress(pt)
			}
			nextG++
		}
	}
	err := forEachUnit(cfg.Workers, len(units), func(u int) error {
		gi, gr := u/cfg.Graphs, u%cfg.Graphs
		rng := rand.New(rand.NewSource(unitSeed(cfg.Seed, gi, gr)))
		var err error
		units[u], err = cfg.runUnit(cfg.Granularities[gi], rng)
		return err
	}, func(u int) {
		remaining[u/cfg.Graphs]--
		mergeReady()
	})
	if err != nil {
		return nil, err
	}
	mergeReady()
	return points, nil
}

type series struct{ xs []float64 }

func (s *series) add(x float64) { s.xs = append(s.xs, x) }
func (s *series) mean() float64 { return stats.Mean(s.xs) }

// meanNaN marks an empty series as missing rather than zero — used for
// the crash series, whose draws can be excluded by task loss.
func (s *series) meanNaN() float64 { return stats.MeanOrNaN(s.xs) }
func (s *series) n() int           { return len(s.xs) }
func (s *series) ci95() float64    { return stats.Summarize(s.xs).CI95 }

// unitMeas is what one work unit measures for one fault-tolerant
// scheduler. Values are raw (unnormalized); overheads are in percent.
type unitMeas struct {
	lat0, ub, ov0 float64
	msgs          float64
	latC, ovC     float64
	crashOK       bool // crash replay survived and is part of the averages
}

// unitResult is the complete measurement of one (granularity, graph)
// work unit.
type unitResult struct {
	ftsa, ftbar, caft        unitMeas
	ffCAFT, ffFTBAR, msgHEFT float64
	ffHOFT, msgHOFT          float64
	lost, replayErrs         int
}

// runUnit generates one instance at granularity g, schedules it with
// every algorithm and replays bounds and crashes, reusing one sim
// scratch buffer per schedule.
func (cfg Config) runUnit(g float64, rng *rand.Rand) (unitResult, error) {
	var out unitResult
	inst := cfg.GenInstance(rng, g)
	p := inst.P
	crashed := cfg.DrawCrashes(rng)

	// Fault-free references.
	sHEFT, err := algo("heft").New(p, 0, rng)
	if err != nil {
		return out, err
	}
	star := sHEFT.ScheduledLatency() // CAFT*
	sFB0, err := algo("ftbar").New(p, 0, rng)
	if err != nil {
		return out, err
	}

	// Fault-tolerant schedules.
	sFT, err := algo("ftsa").New(p, cfg.Eps, rng)
	if err != nil {
		return out, err
	}
	sFB, err := algo("ftbar").New(p, cfg.Eps, rng)
	if err != nil {
		return out, err
	}
	sCA, _, err := core.ScheduleOpts(p, cfg.Eps, rng, cfg.CAFTOpts)
	if err != nil {
		return out, err
	}

	for _, m := range []struct {
		s    *sched.Schedule
		meas *unitMeas
	}{
		{sFT, &out.ftsa},
		{sFB, &out.ftbar},
		{sCA, &out.caft},
	} {
		rep, err := sim.NewReplayer(m.s)
		if err != nil {
			return out, err
		}
		l0 := m.s.ScheduledLatency()
		ub, err := rep.UpperBound()
		if err != nil {
			return out, err
		}
		m.meas.lat0 = l0
		m.meas.ub = ub
		m.meas.ov0 = 100 * (l0 - star) / star
		m.meas.msgs = float64(m.s.MessageCount())
		lc, err := rep.CrashLatency(crashed)
		switch {
		case errors.Is(err, sim.ErrTaskLost) || math.IsInf(lc, 1):
			out.lost++
		case err != nil:
			out.replayErrs++
		default:
			m.meas.latC = lc
			m.meas.ovC = 100 * (lc - star) / star
			m.meas.crashOK = true
		}
	}
	out.ffCAFT = star
	out.ffFTBAR = sFB0.ScheduledLatency()
	out.msgHEFT = float64(sHEFT.MessageCount())

	// HOFT is scheduled last: it consumes tie-break draws from the shared
	// rng, and no measurement after it reads the stream, so the columns
	// above are bit-for-bit what they were before HOFT joined the sweep.
	sHO, err := algo("hoft").New(p, 0, rng)
	if err != nil {
		return out, err
	}
	out.ffHOFT = sHO.ScheduledLatency()
	out.msgHOFT = float64(sHO.MessageCount())
	return out, nil
}

// mergePoint folds the work units of one granularity into a Point, in
// unit order.
func (cfg Config) mergePoint(g float64, units []unitResult) Point {
	var (
		ftsa0, ftsaUB, ftsaC         series
		ftbar0, ftbarUB, ftbarC      series
		caft0, caftUB, caftC         series
		ffCAFT, ffFTBAR, ffHOFT      series
		ovFTSA0, ovFTSAc             series
		ovFTBAR0, ovFTBARc           series
		ovCAFT0, ovCAFTc             series
		msgC, msgF, msgB, msgH, msgO series
	)
	lost, replayErrs := 0, 0
	for _, u := range units {
		for _, m := range []struct {
			meas           unitMeas
			lat0, ub, latC *series
			ov0, ovC       *series
			msgs           *series
		}{
			{u.ftsa, &ftsa0, &ftsaUB, &ftsaC, &ovFTSA0, &ovFTSAc, &msgF},
			{u.ftbar, &ftbar0, &ftbarUB, &ftbarC, &ovFTBAR0, &ovFTBARc, &msgB},
			{u.caft, &caft0, &caftUB, &caftC, &ovCAFT0, &ovCAFTc, &msgC},
		} {
			m.lat0.add(m.meas.lat0 / cfg.Norm)
			m.ub.add(m.meas.ub / cfg.Norm)
			m.ov0.add(m.meas.ov0)
			m.msgs.add(m.meas.msgs)
			if m.meas.crashOK {
				m.latC.add(m.meas.latC / cfg.Norm)
				m.ovC.add(m.meas.ovC)
			}
		}
		ffCAFT.add(u.ffCAFT / cfg.Norm)
		ffFTBAR.add(u.ffFTBAR / cfg.Norm)
		ffHOFT.add(u.ffHOFT / cfg.Norm)
		msgH.add(u.msgHEFT)
		msgO.add(u.msgHOFT)
		lost += u.lost
		replayErrs += u.replayErrs
	}
	return Point{
		G:     g,
		FTSA0: ftsa0.mean(), FTSAUB: ftsaUB.mean(), FTSAc: ftsaC.meanNaN(),
		FTBAR0: ftbar0.mean(), FTBARUB: ftbarUB.mean(), FTBARc: ftbarC.meanNaN(),
		CAFT0: caft0.mean(), CAFTUB: caftUB.mean(), CAFTc: caftC.meanNaN(),
		FTSAcN: ftsaC.n(), FTBARcN: ftbarC.n(), CAFTcN: caftC.n(),
		FFCAFT: ffCAFT.mean(), FFFTBAR: ffFTBAR.mean(), FFHOFT: ffHOFT.mean(),
		OvFTSA0: ovFTSA0.mean(), OvFTSAc: ovFTSAc.meanNaN(),
		OvFTBAR0: ovFTBAR0.mean(), OvFTBARc: ovFTBARc.meanNaN(),
		OvCAFT0: ovCAFT0.mean(), OvCAFTc: ovCAFTc.meanNaN(),
		MsgCAFT: msgC.mean(), MsgFTSA: msgF.mean(), MsgFTBAR: msgB.mean(), MsgHEFT: msgH.mean(), MsgHOFT: msgO.mean(),
		CAFT0CI: caft0.ci95(), FTSA0CI: ftsa0.ci95(), FTBAR0CI: ftbar0.ci95(),
		TasksLost: lost, ReplayErrors: replayErrs,
	}
}
