// Package expt reproduces the experimental study of Section 6 of the
// paper: random task graphs with the paper's parameters are scheduled
// by CAFT, FTSA and FTBAR (plus the fault-free references), replayed
// through the crash simulator, and the per-granularity averages of the
// normalized latency and of the fault-tolerance overhead are reported —
// the data behind Figures 1-6.
package expt

import (
	"fmt"
	"math"
	"math/rand"

	"caft/internal/core"
	"caft/internal/gen"
	"caft/internal/platform"
	"caft/internal/sched"
	"caft/internal/sched/ftbar"
	"caft/internal/sched/ftsa"
	"caft/internal/sched/heft"
	"caft/internal/sim"
	"caft/internal/stats"
	"caft/internal/timeline"
)

// GranularityA is the paper's first granularity family: [0.2, 2.0] in
// increments of 0.2 (Figures 1-3).
func GranularityA() []float64 {
	out := make([]float64, 10)
	for i := range out {
		out[i] = 0.2 * float64(i+1)
	}
	return out
}

// GranularityB is the paper's second family: [1, 10] in increments of 1
// (Figures 4-6).
func GranularityB() []float64 {
	out := make([]float64, 10)
	for i := range out {
		out[i] = float64(i + 1)
	}
	return out
}

// Config parameterizes one figure-style experiment.
type Config struct {
	M             int       // processors
	Eps           int       // supported failures ε
	Crashes       int       // processors actually crashed in the replay
	Granularities []float64 // sweep values
	Graphs        int       // random graphs per point (paper: 60)
	Seed          int64
	Params        gen.RandomParams
	DelayLo       float64 // unit delay range (paper: [0.5, 1])
	DelayHi       float64
	Model         sched.Model
	Policy        timeline.Policy
	// Norm divides every latency before averaging. The paper plots a
	// "normalized latency" without defining the normalization; any
	// per-family constant preserves the shape, and we use the mean
	// message volume (see DESIGN.md S2). Zero means DefaultNorm.
	Norm float64
	// CAFTOpts selects the CAFT variant under test (default portfolio +
	// support locking).
	CAFTOpts core.Options
}

// DefaultNorm is the mean of the paper's message-volume range [50,150].
const DefaultNorm = 100.0

// FigureConfig returns the configuration of paper figure n (1-6) with
// the given number of graphs per point (pass 60 for the paper's setup).
func FigureConfig(n, graphs int, seed int64) (Config, error) {
	cfg := Config{
		Graphs:  graphs,
		Seed:    seed,
		Params:  gen.DefaultParams,
		DelayLo: 0.5, DelayHi: 1.0,
		Model:  sched.OnePort,
		Policy: timeline.Append,
	}
	switch n {
	case 1:
		cfg.M, cfg.Eps, cfg.Crashes, cfg.Granularities = 10, 1, 1, GranularityA()
	case 2:
		cfg.M, cfg.Eps, cfg.Crashes, cfg.Granularities = 10, 3, 2, GranularityA()
	case 3:
		cfg.M, cfg.Eps, cfg.Crashes, cfg.Granularities = 20, 5, 3, GranularityA()
	case 4:
		cfg.M, cfg.Eps, cfg.Crashes, cfg.Granularities = 10, 1, 1, GranularityB()
	case 5:
		cfg.M, cfg.Eps, cfg.Crashes, cfg.Granularities = 10, 3, 2, GranularityB()
	case 6:
		cfg.M, cfg.Eps, cfg.Crashes, cfg.Granularities = 20, 5, 3, GranularityB()
	default:
		return cfg, fmt.Errorf("expt: no figure %d in the paper", n)
	}
	return cfg, nil
}

// Point holds the averaged measurements at one granularity value. All
// latencies are normalized (divided by cfg.Norm); overheads are in
// percent relative to the fault-free CAFT latency (CAFT*), following
// the paper's formula.
type Point struct {
	G float64

	// Panel (a): latency with 0 crash, upper bounds, fault-free refs.
	FTSA0, FTSAUB   float64
	FTBAR0, FTBARUB float64
	CAFT0, CAFTUB   float64
	FFCAFT, FFFTBAR float64

	// Panel (b): latency with crashes.
	FTSAc, FTBARc, CAFTc float64

	// Panel (c): average overhead (%).
	OvFTSA0, OvFTSAc   float64
	OvFTBAR0, OvFTBARc float64
	OvCAFT0, OvCAFTc   float64

	// Message counts (Prop. 5.1 discussion; not plotted in the paper's
	// figures but central to its argument).
	MsgCAFT, MsgFTSA, MsgFTBAR, MsgHEFT float64

	// Dispersion of the headline series, for error bars.
	CAFT0CI, FTSA0CI, FTBAR0CI float64

	// TasksLost counts crash replays that lost a task entirely (always
	// zero for the safe default variants; non-zero for the PaperLocking
	// ablation). Such draws are excluded from the crash averages.
	TasksLost int
}

// Instance bundles one generated problem.
type Instance struct {
	P *sched.Problem
}

// GenInstance generates one random problem with the config's parameters
// at granularity g.
func (cfg Config) GenInstance(rng *rand.Rand, g float64) Instance {
	graph := gen.RandomLayered(rng, cfg.Params)
	plat := platform.NewRandom(rng, cfg.M, cfg.DelayLo, cfg.DelayHi)
	exec := platform.GenExecForGranularity(rng, graph, plat, g, platform.DefaultHeterogeneity)
	return Instance{P: &sched.Problem{G: graph, Plat: plat, Exec: exec, Model: cfg.Model, Policy: cfg.Policy}}
}

// DrawCrashes draws cfg.Crashes distinct crashed processors.
func (cfg Config) DrawCrashes(rng *rand.Rand) map[int]bool {
	crashed := map[int]bool{}
	for len(crashed) < cfg.Crashes && len(crashed) < cfg.M {
		crashed[rng.Intn(cfg.M)] = true
	}
	return crashed
}

// Run sweeps the granularities and returns one Point per value. The
// optional progress callback is invoked after each completed point.
func (cfg Config) Run(progress func(Point)) ([]Point, error) {
	if cfg.Norm == 0 {
		cfg.Norm = DefaultNorm
	}
	points := make([]Point, 0, len(cfg.Granularities))
	for gi, g := range cfg.Granularities {
		pt, err := cfg.runPoint(g, rand.New(rand.NewSource(cfg.Seed+int64(gi)*1_000_003)))
		if err != nil {
			return nil, err
		}
		points = append(points, pt)
		if progress != nil {
			progress(pt)
		}
	}
	return points, nil
}

type series struct{ xs []float64 }

func (s *series) add(x float64) { s.xs = append(s.xs, x) }
func (s *series) mean() float64 { return stats.Mean(s.xs) }
func (s *series) ci95() float64 { return stats.Summarize(s.xs).CI95 }

func (cfg Config) runPoint(g float64, rng *rand.Rand) (Point, error) {
	var (
		ftsa0, ftsaUB, ftsaC    series
		ftbar0, ftbarUB, ftbarC series
		caft0, caftUB, caftC    series
		ffCAFT, ffFTBAR         series
		ovFTSA0, ovFTSAc        series
		ovFTBAR0, ovFTBARc      series
		ovCAFT0, ovCAFTc        series
		msgC, msgF, msgB, msgH  series
	)
	lost := 0
	for i := 0; i < cfg.Graphs; i++ {
		inst := cfg.GenInstance(rng, g)
		p := inst.P
		crashed := cfg.DrawCrashes(rng)

		// Fault-free references.
		sHEFT, err := heft.Schedule(p, rng)
		if err != nil {
			return Point{}, err
		}
		star := sHEFT.ScheduledLatency() // CAFT*
		sFB0, err := ftbar.Schedule(p, 0, rng)
		if err != nil {
			return Point{}, err
		}

		// Fault-tolerant schedules.
		sFT, err := ftsa.Schedule(p, cfg.Eps, rng)
		if err != nil {
			return Point{}, err
		}
		sFB, err := ftbar.Schedule(p, cfg.Eps, rng)
		if err != nil {
			return Point{}, err
		}
		sCA, _, err := core.ScheduleOpts(p, cfg.Eps, rng, cfg.CAFTOpts)
		if err != nil {
			return Point{}, err
		}

		type meas struct {
			s        *sched.Schedule
			lat0, ub *series
			latC     *series
			ov0, ovC *series
			msgs     *series
		}
		all := []meas{
			{sFT, &ftsa0, &ftsaUB, &ftsaC, &ovFTSA0, &ovFTSAc, &msgF},
			{sFB, &ftbar0, &ftbarUB, &ftbarC, &ovFTBAR0, &ovFTBARc, &msgB},
			{sCA, &caft0, &caftUB, &caftC, &ovCAFT0, &ovCAFTc, &msgC},
		}
		for _, m := range all {
			l0 := m.s.ScheduledLatency()
			ub, err := sim.UpperBound(m.s)
			if err != nil {
				return Point{}, err
			}
			m.lat0.add(l0 / cfg.Norm)
			m.ub.add(ub / cfg.Norm)
			m.ov0.add(100 * (l0 - star) / star)
			m.msgs.add(float64(m.s.MessageCount()))
			lc, err := sim.CrashLatency(m.s, crashed)
			if err != nil || math.IsInf(lc, 1) {
				lost++
				continue
			}
			m.latC.add(lc / cfg.Norm)
			m.ovC.add(100 * (lc - star) / star)
		}
		ffCAFT.add(star / cfg.Norm)
		ffFTBAR.add(sFB0.ScheduledLatency() / cfg.Norm)
		msgH.add(float64(sHEFT.MessageCount()))
	}
	return Point{
		G:     g,
		FTSA0: ftsa0.mean(), FTSAUB: ftsaUB.mean(), FTSAc: ftsaC.mean(),
		FTBAR0: ftbar0.mean(), FTBARUB: ftbarUB.mean(), FTBARc: ftbarC.mean(),
		CAFT0: caft0.mean(), CAFTUB: caftUB.mean(), CAFTc: caftC.mean(),
		FFCAFT: ffCAFT.mean(), FFFTBAR: ffFTBAR.mean(),
		OvFTSA0: ovFTSA0.mean(), OvFTSAc: ovFTSAc.mean(),
		OvFTBAR0: ovFTBAR0.mean(), OvFTBARc: ovFTBARc.mean(),
		OvCAFT0: ovCAFT0.mean(), OvCAFTc: ovCAFTc.mean(),
		MsgCAFT: msgC.mean(), MsgFTSA: msgF.mean(), MsgFTBAR: msgB.mean(), MsgHEFT: msgH.mean(),
		CAFT0CI: caft0.ci95(), FTSA0CI: ftsa0.ci95(), FTBAR0CI: ftbar0.ci95(),
		TasksLost: lost,
	}, nil
}
