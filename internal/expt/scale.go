package expt

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"caft/internal/gen"
	"caft/internal/platform"
	"caft/internal/sched"
	"caft/internal/timeline"
)

// ScaleSizes is the default task-count sweep of the scale study: the
// paper's v in [80,120] regime extended by successive doublings into
// the territory where the survey literature evaluates heuristics. The
// clone-free speculative probe path made 3200 affordable; the tail up
// to 100000 — reached with -vmax — additionally rides the compiled DAG
// view and bounded candidate probing (see scaleFullMax below). Sizes
// are append-only: per-cell seeds derive from the cell index, so
// extending the tail never moves an existing point.
var ScaleSizes = []int{100, 200, 400, 800, 1600, 3200, 6400, 12800, 25600, 51200, 100000}

const (
	// scaleFullMax is the largest size scheduled with unbounded probing
	// and the full algorithm roster. Beyond it the sweep probes only the
	// scaleProbeWidth best processors per task (Problem.ProbeWidth over
	// the OFT lower bound) and drops FTBAR, whose free-list×processor
	// pressure scan is quadratic in v and dominates everything else by
	// orders of magnitude at 10^4+ tasks. All pre-existing sizes are at
	// or below this threshold, so their rows are byte-identical to the
	// historical unbounded sweep.
	scaleFullMax = 3200
	// scaleProbeWidth is the bounded candidate-set width used above
	// scaleFullMax.
	scaleProbeWidth = 4
)

// scaleMeas is one scheduler's measurement on one instance. allocs is
// the process-wide heap-allocation (Mallocs) delta across the schedule
// construction — exact with -workers 1, approximate when concurrent
// units allocate at the same time.
type scaleMeas struct {
	lat, reps, msgs float64
	ns              int64
	allocs          uint64
	skipped         bool
}

// scaleUnit is the complete measurement of one (size, policy, graph)
// work unit, in scaleAlgos order.
type scaleUnit [len(scaleAlgos)]scaleMeas

// scaleAlgos maps the table's row labels to registry names. CAFT runs
// its greedy variant (Algorithm 5.1) so the wall-clock numbers trace a
// single schedule construction.
// HOFT is last: it joined after the others, and scheduling order is the
// shared-rng draw order, so appending keeps the earlier rows identical.
var scaleAlgos = [...]struct{ label, name string }{
	{"HEFT", "heft"},
	{"CAFT", "caft-greedy"},
	{"FTSA", "ftsa"},
	{"FTBAR", "ftbar"},
	{"HOFT", "hoft"},
}

// RunScale runs the large-DAG scale study: random layered graphs of v
// tasks for every v in sizes are scheduled by HEFT, CAFT (greedy
// Algorithm 5.1, so the wall-clock numbers trace a single schedule
// construction), FTSA, FTBAR and HOFT, under both reservation policies, on
// m=10 processors with eps=1 and granularity 1.0. One TSV row per
// (v, policy, algorithm) with the mean normalized latency, replica
// count and inter-processor message count goes to w; everything
// written to w is a pure function of (sizes, graphs, seed), identical
// for any worker count. Mean wall-clock scheduling times and heap
// allocations per graph — which are machine- and load-dependent, and
// noisier when workers > 1 because units time (and count) each other's
// pressure — go to timing as comment lines.
//
// Sizes above scaleFullMax run with bounded candidate probing
// (ProbeWidth = scaleProbeWidth) and without FTBAR; see scaleFullMax.
func RunScale(w, timing io.Writer, sizes []int, graphs int, seed int64, workers int) error {
	const (
		m    = 10
		eps  = 1
		gran = 1.0
	)
	if graphs < 0 {
		return fmt.Errorf("expt: negative graph count %d", graphs)
	}
	if len(sizes) == 0 {
		return fmt.Errorf("expt: empty size sweep")
	}
	fmt.Fprintf(w, "# scale study: m=%d eps=%d g=%.1f graphs/point=%d seed=%d\n", m, eps, gran, graphs, seed)
	fmt.Fprintln(w, "v\tpolicy\talgo\tlatency\treplicas\tmessages")
	policies := []timeline.Policy{timeline.Append, timeline.Insertion}
	cells := len(sizes) * len(policies)
	units, err := runUnits(workers, cells*graphs, func(u int) (scaleUnit, error) {
		cell, gi := u/graphs, u%graphs
		v, pol := sizes[cell/len(policies)], policies[cell%len(policies)]
		rng := rand.New(rand.NewSource(unitSeed(seed, cell, gi)))
		params := gen.DefaultParams
		params.MinTasks, params.MaxTasks = v, v
		graph := gen.RandomLayered(rng, params)
		plat := platform.NewRandom(rng, m, 0.5, 1.0)
		exec := platform.GenExecForGranularity(rng, graph, plat, gran, platform.DefaultHeterogeneity)
		p := &sched.Problem{G: graph, Plat: plat, Exec: exec, Model: sched.OnePort, Policy: pol}
		if v > scaleFullMax {
			p.ProbeWidth = scaleProbeWidth
		}
		var out scaleUnit
		var ms0, ms1 runtime.MemStats
		for a, alg := range scaleAlgos {
			if v > scaleFullMax && alg.name == "ftbar" {
				out[a].skipped = true
				continue
			}
			d := algo(alg.name)
			algEps := eps
			if !d.Caps.AcceptsEps {
				algEps = 0
			}
			runtime.ReadMemStats(&ms0)
			start := time.Now() //caft:nondet-ok wall-clock timing reported as stats only
			s, err := d.New(p, algEps, rng)
			if err != nil {
				return out, fmt.Errorf("scale v=%d %s %s: %w", v, pol, alg.label, err)
			}
			ns := time.Since(start).Nanoseconds() //caft:nondet-ok wall-clock timing reported as stats only
			runtime.ReadMemStats(&ms1)
			out[a] = scaleMeas{
				lat:    s.ScheduledLatency() / DefaultNorm,
				reps:   float64(s.ReplicaCount()),
				msgs:   float64(s.MessageCount()),
				ns:     ns,
				allocs: ms1.Mallocs - ms0.Mallocs,
			}
		}
		return out, nil
	})
	if err != nil {
		return err
	}
	for cell := 0; cell < cells; cell++ {
		v, pol := sizes[cell/len(policies)], policies[cell%len(policies)]
		var lat, reps, msgs [len(scaleAlgos)]stats64
		var ns [len(scaleAlgos)]int64
		var allocs [len(scaleAlgos)]uint64
		skipped := make([]bool, len(scaleAlgos))
		for _, u := range units[cell*graphs : (cell+1)*graphs] {
			for a := range scaleAlgos {
				if u[a].skipped {
					skipped[a] = true
					continue
				}
				lat[a].add(u[a].lat)
				reps[a].add(u[a].reps)
				msgs[a].add(u[a].msgs)
				ns[a] += u[a].ns
				allocs[a] += u[a].allocs
			}
		}
		for a, alg := range scaleAlgos {
			if skipped[a] {
				continue
			}
			fmt.Fprintf(w, "%d\t%s\t%s\t%.2f\t%.0f\t%.0f\n",
				v, pol, alg.label, lat[a].mean(), reps[a].mean(), msgs[a].mean())
		}
		if graphs > 0 {
			fmt.Fprintf(timing, "# scale v=%d %s: sched time/graph", v, pol)
			for a, alg := range scaleAlgos {
				if skipped[a] {
					continue
				}
				fmt.Fprintf(timing, " %s %s", alg.label,
					time.Duration(ns[a]/int64(graphs)).Round(time.Microsecond))
			}
			fmt.Fprintln(timing)
			fmt.Fprintf(timing, "# scale v=%d %s: allocs/graph", v, pol)
			for a, alg := range scaleAlgos {
				if skipped[a] {
					continue
				}
				fmt.Fprintf(timing, " %s %d", alg.label, allocs[a]/uint64(graphs))
			}
			fmt.Fprintln(timing)
		}
	}
	return nil
}
