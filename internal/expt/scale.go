package expt

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"caft/internal/gen"
	"caft/internal/platform"
	"caft/internal/sched"
	"caft/internal/timeline"
)

// ScaleSizes is the default task-count sweep of the scale study: the
// paper's v in [80,120] regime extended by successive doublings into
// the territory where the survey literature evaluates heuristics. The
// clone-free speculative probe path is what makes the top of this range
// affordable.
var ScaleSizes = []int{100, 200, 400, 800, 1600, 3200}

// scaleMeas is one scheduler's measurement on one instance.
type scaleMeas struct {
	lat, reps, msgs float64
	ns              int64
}

// scaleUnit is the complete measurement of one (size, policy, graph)
// work unit, in scaleAlgos order.
type scaleUnit [len(scaleAlgos)]scaleMeas

// scaleAlgos maps the table's row labels to registry names. CAFT runs
// its greedy variant (Algorithm 5.1) so the wall-clock numbers trace a
// single schedule construction.
// HOFT is last: it joined after the others, and scheduling order is the
// shared-rng draw order, so appending keeps the earlier rows identical.
var scaleAlgos = [...]struct{ label, name string }{
	{"HEFT", "heft"},
	{"CAFT", "caft-greedy"},
	{"FTSA", "ftsa"},
	{"FTBAR", "ftbar"},
	{"HOFT", "hoft"},
}

// RunScale runs the large-DAG scale study: random layered graphs of v
// tasks for every v in sizes are scheduled by HEFT, CAFT (greedy
// Algorithm 5.1, so the wall-clock numbers trace a single schedule
// construction), FTSA, FTBAR and HOFT, under both reservation policies, on
// m=10 processors with eps=1 and granularity 1.0. One TSV row per
// (v, policy, algorithm) with the mean normalized latency, replica
// count and inter-processor message count goes to w; everything
// written to w is a pure function of (sizes, graphs, seed), identical
// for any worker count. Mean wall-clock scheduling times — which are
// machine- and load-dependent, and noisier when workers > 1 because
// units time each other's cache pressure — go to timing as comment
// lines.
func RunScale(w, timing io.Writer, sizes []int, graphs int, seed int64, workers int) error {
	const (
		m    = 10
		eps  = 1
		gran = 1.0
	)
	if graphs < 0 {
		return fmt.Errorf("expt: negative graph count %d", graphs)
	}
	if len(sizes) == 0 {
		return fmt.Errorf("expt: empty size sweep")
	}
	fmt.Fprintf(w, "# scale study: m=%d eps=%d g=%.1f graphs/point=%d seed=%d\n", m, eps, gran, graphs, seed)
	fmt.Fprintln(w, "v\tpolicy\talgo\tlatency\treplicas\tmessages")
	policies := []timeline.Policy{timeline.Append, timeline.Insertion}
	cells := len(sizes) * len(policies)
	units, err := runUnits(workers, cells*graphs, func(u int) (scaleUnit, error) {
		cell, gi := u/graphs, u%graphs
		v, pol := sizes[cell/len(policies)], policies[cell%len(policies)]
		rng := rand.New(rand.NewSource(unitSeed(seed, cell, gi)))
		params := gen.DefaultParams
		params.MinTasks, params.MaxTasks = v, v
		graph := gen.RandomLayered(rng, params)
		plat := platform.NewRandom(rng, m, 0.5, 1.0)
		exec := platform.GenExecForGranularity(rng, graph, plat, gran, platform.DefaultHeterogeneity)
		p := &sched.Problem{G: graph, Plat: plat, Exec: exec, Model: sched.OnePort, Policy: pol}
		var out scaleUnit
		for a, alg := range scaleAlgos {
			d := algo(alg.name)
			algEps := eps
			if !d.Caps.AcceptsEps {
				algEps = 0
			}
			start := time.Now() //caft:nondet-ok wall-clock timing reported as stats only
			s, err := d.New(p, algEps, rng)
			if err != nil {
				return out, fmt.Errorf("scale v=%d %s %s: %w", v, pol, alg.label, err)
			}
			out[a] = scaleMeas{
				lat:  s.ScheduledLatency() / DefaultNorm,
				reps: float64(s.ReplicaCount()),
				msgs: float64(s.MessageCount()),
				ns:   time.Since(start).Nanoseconds(), //caft:nondet-ok wall-clock timing reported as stats only
			}
		}
		return out, nil
	})
	if err != nil {
		return err
	}
	for cell := 0; cell < cells; cell++ {
		v, pol := sizes[cell/len(policies)], policies[cell%len(policies)]
		var lat, reps, msgs [len(scaleAlgos)]stats64
		var ns [len(scaleAlgos)]int64
		for _, u := range units[cell*graphs : (cell+1)*graphs] {
			for a := range scaleAlgos {
				lat[a].add(u[a].lat)
				reps[a].add(u[a].reps)
				msgs[a].add(u[a].msgs)
				ns[a] += u[a].ns
			}
		}
		for a, alg := range scaleAlgos {
			fmt.Fprintf(w, "%d\t%s\t%s\t%.2f\t%.0f\t%.0f\n",
				v, pol, alg.label, lat[a].mean(), reps[a].mean(), msgs[a].mean())
		}
		if graphs > 0 {
			fmt.Fprintf(timing, "# scale v=%d %s: sched time/graph", v, pol)
			for a, alg := range scaleAlgos {
				fmt.Fprintf(timing, " %s %s", alg.label,
					time.Duration(ns[a]/int64(graphs)).Round(time.Microsecond))
			}
			fmt.Fprintln(timing)
		}
	}
	return nil
}
