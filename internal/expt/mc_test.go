package expt

import (
	"math"
	"math/rand"
	"testing"

	"caft/internal/core"
	"caft/internal/failure"
	"caft/internal/gen"
	"caft/internal/platform"
	"caft/internal/sched"
	"caft/internal/timeline"
)

func mcFixture(t *testing.T) *sched.Schedule {
	t.Helper()
	rng := rand.New(rand.NewSource(4))
	g := gen.Diamond(3, 3, 80)
	plat := platform.NewRandom(rng, 6, 0.5, 1.0)
	exec := platform.GenExecForGranularity(rng, g, plat, 1.0, platform.DefaultHeterogeneity)
	p := &sched.Problem{G: g, Plat: plat, Exec: exec, Model: sched.OnePort, Policy: timeline.Append}
	s, err := core.Schedule(p, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// EstimateReliability is the service's reliability path: its tally must
// be a pure function of (schedule, model, samples, seed) — identical
// for any worker count, including batch counts that do not divide the
// sample count evenly.
func TestEstimateReliabilityDeterministicAcrossWorkers(t *testing.T) {
	s := mcFixture(t)
	model := &failure.Exponential{MTBF: []float64{50, 60, 70, 80, 90, 100}}
	const samples = mcBatch*2 + 17 // 3 batches, last one partial
	first, err := EstimateReliability(s, model, samples, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := first.Draws() + first.ReplayErrors; got != samples {
		t.Fatalf("evaluated %d scenarios, want %d", got, samples)
	}
	if u := first.Unreliability(); u < 0 || u > 1 || math.IsNaN(u) {
		t.Fatalf("unreliability %v outside [0,1]", u)
	}
	for _, workers := range []int{2, 8} {
		again, err := EstimateReliability(s, model, samples, 7, workers)
		if err != nil {
			t.Fatal(err)
		}
		if again != first {
			t.Fatalf("workers=%d tally %+v differs from sequential %+v", workers, again, first)
		}
	}
}

// Boundary semantics: crash instants far beyond the makespan never lose
// a task, and an MTBF of ~0 loses (or at least degrades) essentially
// every scenario on an unreplicated reference.
func TestEstimateReliabilityRegimes(t *testing.T) {
	s := mcFixture(t)
	safe := &failure.Exponential{MTBF: []float64{1e12, 1e12, 1e12, 1e12, 1e12, 1e12}}
	tally, err := EstimateReliability(s, safe, 100, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tally.Lost != 0 || tally.Survived != 100 {
		t.Fatalf("near-infinite MTBF lost %d of %d scenarios", tally.Lost, tally.Draws())
	}
	if math.IsNaN(tally.MeanLatency()) || tally.MeanLatency() <= 0 {
		t.Fatalf("mean latency %v not positive", tally.MeanLatency())
	}
	if tally.Unreliability() != 0 {
		t.Fatalf("unreliability %v, want 0", tally.Unreliability())
	}

	// Zero samples: estimates are NaN, not zero.
	empty, err := EstimateReliability(s, safe, 0, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(empty.Unreliability()) || !math.IsNaN(empty.MeanLatency()) {
		t.Fatalf("empty tally estimates %v/%v, want NaN/NaN", empty.Unreliability(), empty.MeanLatency())
	}
	if _, err := EstimateReliability(s, safe, -1, 3, 0); err == nil {
		t.Error("negative sample count accepted")
	}
}
