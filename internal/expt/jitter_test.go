package expt

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"caft/internal/sched"
)

// Replay-level predictability must hold for every scheduler in the
// registry: replaying any committed schedule with shrunk per-task
// durations never increases the makespan, and stretching never
// decreases it. A scheduler entering the registry buys into this
// property automatically — the sweep iterates sched.Registered(), so
// there is no list here to forget to extend.
func TestJitterReplayMonotoneEveryRegisteredScheduler(t *testing.T) {
	rows, err := RunJitter(io.Discard, 3, 2, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 6 {
		t.Fatalf("only %d schedulers swept, want the full registry (>= 6)", len(rows))
	}
	for _, r := range rows {
		if r.Trials != 3*jitterTrials {
			t.Errorf("%s: %d trials, want %d", r.Alg, r.Trials, 3*jitterTrials)
		}
		if r.ShrinkViol != 0 || r.StretchViol != 0 {
			t.Errorf("%s: replay monotonicity violated (shrink %d, stretch %d) — the frozen-schedule replay must be predictable",
				r.Alg, r.ShrinkViol, r.StretchViol)
		}
		if r.Verdict() != "predictable" {
			t.Errorf("%s: verdict %q", r.Alg, r.Verdict())
		}
	}
}

// Dispatch-level anomalies are expected to exist, and this pins one
// found empirically: at base seed 1, graph 1, re-running CAFT on a
// uniformly shrunk execution-estimate matrix yields a schedule with a
// WORSE makespan than the nominal dispatch — Graham's timing anomaly at
// the level where this codebase makes decisions. The documented
// expected-failure case of the predictability story: frozen schedules
// are safe to replay under jitter, re-dispatching on jittered estimates
// is not.
func TestJitterDispatchAnomalyExists(t *testing.T) {
	d, ok := sched.Lookup("caft")
	if !ok {
		t.Fatal("caft not registered")
	}
	anomalies := 0
	for gi := 0; gi < 2; gi++ {
		u, err := runJitterUnit(d, unitSeed(1, int(d.ID), gi))
		if err != nil {
			t.Fatal(err)
		}
		if u.shrinkViol != 0 || u.stretchViol != 0 {
			t.Fatalf("graph %d: replay level violated (shrink %d, stretch %d)", gi, u.shrinkViol, u.stretchViol)
		}
		anomalies += u.dispatchAnom
	}
	if anomalies == 0 {
		t.Fatal("pinned dispatch anomaly vanished: caft at seed 1 no longer shows a Graham anomaly on shrunk estimates")
	}
}

// RunJitter's output is a pure function of (graphs, seed, selection):
// byte-identical across worker counts, and — because unit seeds are
// keyed by registry ID — a scheduler's row is the same whether the
// sweep runs filtered to it or over the whole registry.
func TestJitterDeterministicAndFilterStable(t *testing.T) {
	var full bytes.Buffer
	for _, workers := range []int{1, 8} {
		var buf bytes.Buffer
		if _, err := RunJitter(&buf, 2, 1, workers, ""); err != nil {
			t.Fatal(err)
		}
		if full.Len() == 0 {
			full = buf
		} else if !bytes.Equal(full.Bytes(), buf.Bytes()) {
			t.Fatalf("jitter output differs between -workers 1 and 8:\n%s\nvs\n%s", full.Bytes(), buf.Bytes())
		}
	}
	var hoftOnly bytes.Buffer
	if _, err := RunJitter(&hoftOnly, 2, 1, 0, "hoft"); err != nil {
		t.Fatal(err)
	}
	var want string
	for _, line := range strings.Split(full.String(), "\n") {
		if strings.HasPrefix(line, "hoft\t") {
			want = line
		}
	}
	if want == "" {
		t.Fatalf("no hoft row in full sweep:\n%s", full.String())
	}
	if !strings.Contains(hoftOnly.String(), want+"\n") {
		t.Fatalf("filtered hoft row differs from full-sweep row %q:\n%s", want, hoftOnly.String())
	}

	if _, err := RunJitter(io.Discard, 1, 1, 0, "nope"); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("unknown -alg filter accepted: %v", err)
	}
}
