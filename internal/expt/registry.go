package expt

import (
	"fmt"

	"caft/internal/sched"
	_ "caft/internal/sched/all" // populate the scheduler registry
)

// algo returns the descriptor of a registered scheduler. A missing name
// panics: the figure tables are compiled against the in-tree registry,
// so absence is a linking bug, not a runtime condition.
func algo(name string) sched.Descriptor {
	d, ok := sched.Lookup(name)
	if !ok {
		panic(fmt.Sprintf("expt: scheduler %q not registered", name))
	}
	return d
}
