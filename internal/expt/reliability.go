package expt

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"caft/internal/failure"
	"caft/internal/gen"
	"caft/internal/sched"
	"caft/internal/sim"
	"caft/internal/timeline"
	"caft/internal/topology"
)

// The reliability experiment scores the schedulers under stochastic
// failure models instead of static crash subsets: per-processor crash
// instants are sampled from package failure, every scenario is replayed
// with timed fail-stop semantics (sim.Replayer.CrashLatencyAt), and two
// quantities are estimated by Monte Carlo — the unreliability (the
// probability the schedule loses a task) and the expected latency over
// the surviving scenarios. This is the evaluation style of the related
// reliability-aware scheduling work (arXiv:0711.1231, arXiv:2212.09274)
// that static subset draws cannot reproduce; see DESIGN.md S4.

// ReliabilityAlgs names the algorithm columns of the reliability
// tables, in order: the fault-free HEFT reference (ε = 0, one replica
// per task), the three fault-tolerant schedulers at ε = 1, and the
// fault-free HOFT reference (appended last to keep earlier columns
// stable).
var ReliabilityAlgs = [5]string{"HEFT", "CAFT", "FTSA", "FTBAR", "HOFT"}

// ReliabilityPoint is one averaged row of the reliability tables.
type ReliabilityPoint struct {
	Label string  // row key: MTBF multiplier or failure-model name
	Mult  float64 // base-MTBF multiplier of T_HEFT (0 for model rows)

	// Lat is the expected normalized latency over surviving scenarios
	// per algorithm (ReliabilityAlgs order); NaN when no scenario of an
	// algorithm survived.
	Lat [5]float64
	// Unrel is the estimated unreliability per algorithm: the fraction
	// of sampled scenarios in which the schedule lost a task.
	Unrel [5]float64
	// Draws is the number of evaluated scenarios behind each estimate;
	// ReplayErrors counts scenarios the engine failed to evaluate
	// (excluded from Draws, never blamed on the schedule).
	Draws        [5]int
	ReplayErrors int
}

// reliabilitySamples is the number of crash-time scenarios sampled per
// (cell, graph) unit. Every scenario is replayed against all five
// algorithms (common random numbers), so per-row contrasts share their
// noise.
const reliabilitySamples = 20

// reliabilityMults sweeps the per-processor base MTBF as a multiple of
// the fault-free HEFT latency T. With m = 10 processors the expected
// number of crashes inside the execution window is ~10/mult: at 1·T
// task loss is near-certain even with replication, at 64·T a single
// crash is already rare and the ε = 1 schedulers approach perfect
// reliability while unreplicated HEFT keeps losing runs.
var reliabilityMults = []float64{1, 2, 4, 8, 16, 32, 64}

// reliabilityModel builds the failure model of one cell. T is the
// instance's fault-free reference latency; the heterogeneous MTBF
// vector is drawn from the unit rng before any scenario sampling.
type reliabilityModel struct {
	label string
	mult  float64
	build func(rng *rand.Rand, m int, base float64) (failure.Model, error)
}

func expModel(rng *rand.Rand, m int, base float64) (failure.Model, error) {
	return &failure.Exponential{MTBF: failure.UniformMTBF(rng, m, 0.75*base, 1.25*base)}, nil
}

// reliabilityModelBase is the per-processor base MTBF multiplier of the
// model-comparison rows — a regime where the schedulers differentiate
// (a crash per run is likely, two are not).
const reliabilityModelBase = 8

// reliabilityModels are the model-comparison rows, all at the same mean
// lifetime on the same platforms: exponential, infant-mortality and
// wear-out Weibull calibrated to the identical per-processor MTBF, and
// rack-correlated failures whose groups come from interconnect
// proximity (two racks of a 2x5 mesh) with rarer individual failures
// layered in. The rack rows probe exactly what ε-resilience cannot
// promise: one rack failure kills half the platform at once.
var reliabilityModels = []reliabilityModel{
	{"exponential", reliabilityModelBase, expModel},
	{"weibull-k0.7", reliabilityModelBase, func(rng *rand.Rand, m int, base float64) (failure.Model, error) {
		return failure.WeibullWithMTBF(0.7, failure.UniformMTBF(rng, m, 0.75*base, 1.25*base)), nil
	}},
	{"weibull-k2.0", reliabilityModelBase, func(rng *rand.Rand, m int, base float64) (failure.Model, error) {
		return failure.WeibullWithMTBF(2.0, failure.UniformMTBF(rng, m, 0.75*base, 1.25*base)), nil
	}},
	{"racks-2", reliabilityModelBase, func(rng *rand.Rand, m int, base float64) (failure.Model, error) {
		mesh, err := topology.Mesh2D(2, m/2, 1)
		if err != nil {
			return nil, err
		}
		return &failure.Rack{
			Groups:   mesh.Racks(2),
			RackMTBF: float64(m) * base, // one common-mode failure as likely as one processor's
			Proc:     &failure.Exponential{MTBF: failure.UniformMTBF(rng, m, 0.75*base, 1.25*base)},
		}, nil
	}},
}

type reliabilityUnit struct {
	algs [5]MCTally
}

// runReliabilityUnit generates one instance, schedules it with all five
// algorithms and replays the same sampled crash-time scenarios against
// each of them. useed is the unit's base seed: schedulers added after
// the original four (HOFT) draw tie-breaks from an rng derived from it,
// never from the shared stream, so the model build and scenario draws —
// and with them the original columns — stay byte-identical.
func runReliabilityUnit(rng *rand.Rand, useed int64, mult float64, build func(*rand.Rand, int, float64) (failure.Model, error)) (reliabilityUnit, error) {
	var out reliabilityUnit
	const m = 10
	cfg := Config{M: m, Params: gen.DefaultParams, DelayLo: 0.5, DelayHi: 1.0, Model: sched.OnePort, Policy: timeline.Append}
	inst := cfg.GenInstance(rng, 1.0)
	p := inst.P

	sHEFT, err := algo("heft").New(p, 0, rng)
	if err != nil {
		return out, err
	}
	T := sHEFT.ScheduledLatency()
	sCA, err := algo("caft").New(p, 1, rng)
	if err != nil {
		return out, err
	}
	sFT, err := algo("ftsa").New(p, 1, rng)
	if err != nil {
		return out, err
	}
	sFB, err := algo("ftbar").New(p, 1, rng)
	if err != nil {
		return out, err
	}
	sHO, err := algo("hoft").New(p, 0, rand.New(rand.NewSource(unitSeed(useed, 0, 1))))
	if err != nil {
		return out, err
	}

	var reps [5]*sim.Replayer
	for i, s := range []*sched.Schedule{sHEFT, sCA, sFT, sFB, sHO} {
		if reps[i], err = sim.NewReplayer(s); err != nil {
			return out, err
		}
	}

	model, err := build(rng, m, mult*T)
	if err != nil {
		return out, err
	}
	ReplaySamples(reps[:], out.algs[:], model, reliabilitySamples, DefaultNorm, rng, map[int]float64{})
	return out, nil
}

// RunReliability estimates expected latency and unreliability under
// stochastic failure models on the deterministic work-unit pool: one
// table sweeping the base MTBF with exponential lifetimes, one
// comparing failure models at base MTBF = T. It writes both as TSV and
// returns the rows for plotting. Output is byte-identical for any
// worker count.
func RunReliability(w io.Writer, graphs int, seed int64, workers int) ([]ReliabilityPoint, error) {
	if graphs < 0 {
		return nil, fmt.Errorf("expt: negative graph count %d", graphs)
	}
	var defs []reliabilityModel
	for _, mult := range reliabilityMults {
		defs = append(defs, reliabilityModel{fmt.Sprintf("%g", mult), mult, expModel})
	}
	defs = append(defs, reliabilityModels...)

	units, err := runUnits(workers, len(defs)*graphs, func(u int) (reliabilityUnit, error) {
		cell, gi := u/graphs, u%graphs
		useed := unitSeed(seed, cell, gi)
		rng := rand.New(rand.NewSource(useed))
		return runReliabilityUnit(rng, useed, defs[cell].mult, defs[cell].build)
	})
	if err != nil {
		return nil, err
	}

	nMults := len(reliabilityMults)
	points := make([]ReliabilityPoint, len(defs))
	for cell, def := range defs {
		pt := ReliabilityPoint{Label: def.label, Mult: def.mult}
		if cell >= nMults {
			// Model-comparison rows are keyed by label, not by the sweep's
			// x axis; Mult 0 keeps them out of the gnuplot data.
			pt.Mult = 0
		}
		for _, u := range units[cell*graphs : (cell+1)*graphs] {
			for a := range u.algs {
				m := u.algs[a]
				pt.Lat[a] += m.LatSum
				pt.Draws[a] += m.Draws()
				pt.Unrel[a] += float64(m.Lost)
				pt.ReplayErrors += m.ReplayErrors
			}
		}
		for a := range pt.Lat {
			if survived := pt.Draws[a] - int(pt.Unrel[a]); survived > 0 {
				pt.Lat[a] /= float64(survived)
			} else {
				pt.Lat[a] = math.NaN()
			}
			if pt.Draws[a] > 0 {
				pt.Unrel[a] /= float64(pt.Draws[a])
			} else {
				pt.Unrel[a] = math.NaN()
			}
		}
		points[cell] = pt
	}

	fmt.Fprintf(w, "# reliability: m=10 eps=1 g=1.0 graphs/point=%d samples/graph=%d seed=%d\n",
		graphs, reliabilitySamples, seed)
	fmt.Fprintln(w, "# latency: expected normalized latency over surviving scenarios; unrel: fraction of scenarios losing a task")
	header := "mtbf/T"
	for _, a := range ReliabilityAlgs {
		header += fmt.Sprintf("\t%s\t%s-unrel", a, a)
	}
	fmt.Fprintln(w, "## expected latency and unreliability vs MTBF (exponential lifetimes, MTBF ~ U[0.75,1.25] x mult x T_HEFT)")
	fmt.Fprintln(w, header)
	for _, pt := range points[:nMults] {
		fmt.Fprintln(w, reliabilityRow(pt.Label, pt))
	}
	fmt.Fprintf(w, "## failure-model comparison at base MTBF = %d x T_HEFT\n", reliabilityModelBase)
	fmt.Fprintln(w, "model"+header[len("mtbf/T"):])
	for _, pt := range points[nMults:] {
		fmt.Fprintln(w, reliabilityRow(pt.Label, pt))
	}
	errs := 0
	for _, pt := range points {
		errs += pt.ReplayErrors
	}
	if errs > 0 {
		fmt.Fprintf(w, "# %d crash replay(s) failed to evaluate and were excluded\n", errs)
	}
	return points, nil
}

func reliabilityRow(label string, pt ReliabilityPoint) string {
	row := label
	for a := range pt.Lat {
		lat := "-"
		if !math.IsNaN(pt.Lat[a]) {
			lat = fmt.Sprintf("%.2f", pt.Lat[a])
		}
		unrel := "-"
		if !math.IsNaN(pt.Unrel[a]) {
			unrel = fmt.Sprintf("%.3f", pt.Unrel[a])
		}
		row += "\t" + lat + "\t" + unrel
	}
	return row
}

// WriteReliabilityGnuplotData writes the MTBF-sweep rows as a gnuplot
// table: mult, then per algorithm the expected latency and the
// unreliability.
func WriteReliabilityGnuplotData(w io.Writer, points []ReliabilityPoint) error {
	if _, err := fmt.Fprintln(w, "# mtbfMult HEFT HEFTu CAFT CAFTu FTSA FTSAu FTBAR FTBARu HOFT HOFTu"); err != nil {
		return err
	}
	for _, pt := range points {
		if pt.Mult == 0 {
			continue
		}
		row := gnuplotVal(pt.Mult)
		for a := range pt.Lat {
			row += " " + gnuplotVal(pt.Lat[a]) + " " + gnuplotVal(pt.Unrel[a])
		}
		if _, err := fmt.Fprintln(w, row); err != nil {
			return err
		}
	}
	return nil
}

// WriteReliabilityGnuplotScript writes a two-panel script (expected
// latency and unreliability vs MTBF multiplier, log-x) for a data file
// produced by WriteReliabilityGnuplotData.
func WriteReliabilityGnuplotScript(w io.Writer, dataFile string) error {
	_, err := fmt.Fprintf(w, `set terminal pngcairo size 800,1000
set output "reliability.png"
set datafile missing "?"
set multiplot layout 2,1 title "Reliability under exponential failures"
set xlabel "base MTBF / fault-free latency"
set logscale x 2
set key top right

set ylabel "Expected Normalized Latency"
set title "(a) expected latency over surviving scenarios"
plot "%[1]s" u 1:2 w lp t "HEFT", \
     "%[1]s" u 1:4 w lp t "CAFT", \
     "%[1]s" u 1:6 w lp t "FTSA", \
     "%[1]s" u 1:8 w lp t "FTBAR", \
     "%[1]s" u 1:10 w lp t "HOFT"

set ylabel "Unreliability"
set title "(b) probability of losing a task"
plot "%[1]s" u 1:3 w lp t "HEFT", \
     "%[1]s" u 1:5 w lp t "CAFT", \
     "%[1]s" u 1:7 w lp t "FTSA", \
     "%[1]s" u 1:9 w lp t "FTBAR", \
     "%[1]s" u 1:11 w lp t "HOFT"
unset multiplot
`, dataFile)
	return err
}
