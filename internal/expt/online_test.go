package expt

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"caft/internal/failure"
	"caft/internal/gen"
	"caft/internal/platform"
	"caft/internal/sched"
	"caft/internal/sched/heft"
	"caft/internal/timeline"
)

// TestRunOnlineDeterministicAcrossWorkers pins the online comparison's
// work-unit determinism: identical bytes for any worker count.
func TestRunOnlineDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("online sweep in -short mode")
	}
	var first []byte
	for _, workers := range []int{1, 4} {
		var buf bytes.Buffer
		if _, err := RunOnline(&buf, 2, 7, workers); err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = buf.Bytes()
		} else if !bytes.Equal(first, buf.Bytes()) {
			t.Fatal("online output differs between 1 and 4 workers")
		}
	}
}

// TestRunOnlineShape checks the structural expectations of one small
// run: every point carries all three strategies, the static strategy
// never re-places work, and the reactive strategies lose no more runs
// than replication alone at every MTBF level.
func TestRunOnlineShape(t *testing.T) {
	if testing.Short() {
		t.Skip("online sweep in -short mode")
	}
	var buf bytes.Buffer
	points, err := RunOnline(&buf, 2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 {
		t.Fatal("no points")
	}
	for _, pt := range points {
		if !math.IsNaN(pt.Resched[0]) && pt.Resched[0] != 0 {
			t.Fatalf("mult %v: static strategy re-placed %v replicas", pt.Mult, pt.Resched[0])
		}
		for k, draws := range pt.Draws {
			if draws == 0 {
				t.Fatalf("mult %v: strategy %s evaluated no draws", pt.Mult, OnlineStrategies[k])
			}
		}
	}
}

// TestEstimateOnlineDeterministicAcrossWorkers pins the service-facing
// Monte-Carlo core: same tally for any worker count, and spanning
// multiple batches.
func TestEstimateOnlineDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	params := gen.RandomParams{MinTasks: 20, MaxTasks: 20, MinDegree: 1, MaxDegree: 3, MinVolume: 50, MaxVolume: 150}
	g := gen.RandomLayered(rng, params)
	plat := platform.NewRandom(rng, 5, 0.5, 1.0)
	exec := platform.GenExecForGranularity(rng, g, plat, 1.0, platform.DefaultHeterogeneity)
	p := &sched.Problem{G: g, Plat: plat, Exec: exec, Model: sched.OnePort, Policy: timeline.Append}
	s, err := heft.Schedule(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	model := &failure.Exponential{MTBF: failure.UniformMTBF(rng, 5, 4*s.ScheduledLatency(), 8*s.ScheduledLatency())}
	const samples = 150 // spans three batches
	base, err := EstimateOnline(s, model, samples, 11, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(base.Makespans) + base.Lost + base.ReplayErrors; got != samples {
		t.Fatalf("accounted %d of %d samples", got, samples)
	}
	for _, workers := range []int{2, 8} {
		again, err := EstimateOnline(s, model, samples, 11, workers, true)
		if err != nil {
			t.Fatal(err)
		}
		if again.Lost != base.Lost || again.Rescheduled != base.Rescheduled || again.ReplayErrors != base.ReplayErrors {
			t.Fatalf("workers=%d: tally diverged: %+v vs %+v", workers, again, base)
		}
		if len(again.Makespans) != len(base.Makespans) {
			t.Fatalf("workers=%d: %d makespans vs %d", workers, len(again.Makespans), len(base.Makespans))
		}
		for i := range base.Makespans {
			if again.Makespans[i] != base.Makespans[i] {
				t.Fatalf("workers=%d: makespan %d diverged", workers, i)
			}
		}
	}
}
