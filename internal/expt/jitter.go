package expt

import (
	"fmt"
	"io"
	"math/rand"
	"strings"

	"caft/internal/gen"
	"caft/internal/online"
	"caft/internal/sched"
	"caft/internal/timeline"
)

// The jitter experiment probes execution-time predictability, in the
// sense of Cucu-Grosjean & Goossens: a system is predictable when
// shrinking execution times can never delay any completion. It
// separates two levels, for every scheduler in the registry:
//
//   - replay level: the committed schedule — placements, reservation
//     orders, communications — is frozen, and the online engine replays
//     it with per-task duration factors (online.Options.ExecScale).
//     This level is predictable by construction: every start time is a
//     monotone function of the durations, so shrink factors in [lo, 1]
//     can only move the makespan down and stretch factors in [1, hi]
//     can only move it up. The table documents the zero counts.
//
//   - dispatch level: the scheduler is *re-run* on the shrunk execution
//     estimates. List schedulers are not monotone in their input — a
//     uniformly faster estimate matrix can steer the priority order and
//     the placement probes to a schedule whose makespan is *worse* than
//     the nominal one (Graham's timing anomaly, at the point where this
//     codebase actually makes decisions). The anomaly count is expected
//     to be non-zero; TestJitterDispatchAnomalyExists pins one case.

const (
	// jitterTrials is the number of (shrink, stretch, dispatch) probe
	// triples per graph.
	jitterTrials = 4
	// Shrink factors are drawn per task from U[jitterShrinkLo, 1];
	// stretch factors from U[1, jitterStretchHi].
	jitterShrinkLo  = 0.5
	jitterStretchHi = 1.5
)

// JitterRow is the aggregated verdict for one registered scheduler.
type JitterRow struct {
	Alg string
	Eps int
	// ShrinkViol counts shrink replays finishing later than nominal;
	// StretchViol counts stretch replays finishing earlier. Both are
	// zero for every scheduler — the replay level is predictable by
	// construction — and the property tests keep them zero.
	ShrinkViol, StretchViol int
	// DispatchAnom counts re-dispatches on shrunk estimates whose
	// scheduled makespan exceeds the nominal one.
	DispatchAnom int
	// Trials is the number of probes behind each count.
	Trials int
}

// Verdict classifies the replay level: "predictable" when no shrink or
// stretch replay violated monotonicity.
func (r JitterRow) Verdict() string {
	if r.ShrinkViol+r.StretchViol == 0 {
		return "predictable"
	}
	return "anomalous"
}

type jitterUnit struct {
	shrinkViol, stretchViol, dispatchAnom, trials int
}

// runJitterUnit generates one instance, schedules it with d, and runs
// jitterTrials probe triples. The unit seed is derived from the
// descriptor ID, so each scheduler's rows are identical whether the
// sweep runs filtered or in full.
func runJitterUnit(d sched.Descriptor, useed int64) (jitterUnit, error) {
	var out jitterUnit
	rng := rand.New(rand.NewSource(useed))
	cfg := Config{M: 10, Params: gen.DefaultParams, DelayLo: 0.5, DelayHi: 1.0, Model: sched.OnePort, Policy: timeline.Append}
	inst := cfg.GenInstance(rng, 1.0)
	p := inst.P
	eps := 0
	if d.Caps.AcceptsEps {
		eps = 1
	}
	s, err := d.New(p, eps, rng)
	if err != nil {
		return out, err
	}
	nominalSched := s.ScheduledLatency()
	eng, err := online.NewEngine(s)
	if err != nil {
		return out, err
	}
	nominal, _, err := eng.Makespan(nil, online.Options{})
	if err != nil {
		return out, err
	}

	n := p.G.NumTasks()
	scale := make([]float64, n)
	for trial := 0; trial < jitterTrials; trial++ {
		// Shrink replay: frozen schedule, faster tasks. Monotonicity says
		// the makespan may only move down.
		for t := range scale {
			scale[t] = jitterShrinkLo + rng.Float64()*(1-jitterShrinkLo)
		}
		lat, _, err := eng.Makespan(nil, online.Options{ExecScale: scale})
		if err != nil {
			return out, err
		}
		if lat > nominal+sched.Eps {
			out.shrinkViol++
		}

		// Dispatch probe on the same shrink draw: re-run the scheduler on
		// the shrunk estimate matrix (fresh derived rng, so only the input
		// changes the comparison, not shared-stream drift).
		exec2 := make([][]float64, n)
		for t := range exec2 {
			row := make([]float64, len(p.Exec[t]))
			for q := range row {
				row[q] = p.Exec[t][q] * scale[t]
			}
			exec2[t] = row
		}
		p2 := &sched.Problem{G: p.G, Plat: p.Plat, Exec: exec2, Model: p.Model, Policy: p.Policy, Net: p.Net, Probe: p.Probe}
		s2, err := d.New(p2, eps, rand.New(rand.NewSource(unitSeed(useed, 1, trial))))
		if err != nil {
			return out, err
		}
		if s2.ScheduledLatency() > nominalSched+sched.Eps {
			out.dispatchAnom++
		}

		// Stretch replay: slower tasks may only move the makespan up.
		for t := range scale {
			scale[t] = 1 + rng.Float64()*(jitterStretchHi-1)
		}
		lat, _, err = eng.Makespan(nil, online.Options{ExecScale: scale})
		if err != nil {
			return out, err
		}
		if lat < nominal-sched.Eps {
			out.stretchViol++
		}
		out.trials++
	}
	return out, nil
}

// RunJitter sweeps every registered scheduler (or just `only`, when
// non-empty) through the predictability probes on the deterministic
// work-unit pool and writes one TSV row per scheduler. Unit seeds are
// keyed by registry ID, so a scheduler's row does not depend on which
// other schedulers are registered or selected; output is byte-identical
// for any worker count.
func RunJitter(w io.Writer, graphs int, seed int64, workers int, only string) ([]JitterRow, error) {
	if graphs < 0 {
		return nil, fmt.Errorf("expt: negative graph count %d", graphs)
	}
	var descs []sched.Descriptor
	for _, d := range sched.Registered() {
		if only != "" && d.Name != only {
			continue
		}
		descs = append(descs, d)
	}
	if len(descs) == 0 {
		return nil, fmt.Errorf("expt: no registered scheduler named %q (want %s)", only, strings.Join(sched.Names(), ", "))
	}

	units, err := runUnits(workers, len(descs)*graphs, func(u int) (jitterUnit, error) {
		ci, gi := u/graphs, u%graphs
		return runJitterUnit(descs[ci], unitSeed(seed, int(descs[ci].ID), gi))
	})
	if err != nil {
		return nil, err
	}

	rows := make([]JitterRow, len(descs))
	for ci, d := range descs {
		row := JitterRow{Alg: d.Name}
		if d.Caps.AcceptsEps {
			row.Eps = 1
		}
		for _, u := range units[ci*graphs : (ci+1)*graphs] {
			row.ShrinkViol += u.shrinkViol
			row.StretchViol += u.stretchViol
			row.DispatchAnom += u.dispatchAnom
			row.Trials += u.trials
		}
		rows[ci] = row
	}

	fmt.Fprintf(w, "# jitter predictability: m=10 g=1.0 graphs/alg=%d trials/graph=%d shrink U[%g,1] stretch U[1,%g] seed=%d\n",
		graphs, jitterTrials, jitterShrinkLo, jitterStretchHi, seed)
	fmt.Fprintln(w, "# shrink/stretch-viol: replays of the frozen schedule with jittered durations that broke monotonicity (predictable = 0)")
	fmt.Fprintln(w, "# dispatch-anom: re-running the scheduler on shrunk estimates produced a worse schedule than nominal (Graham anomaly; expected > 0)")
	fmt.Fprintln(w, "alg\teps\ttrials\tshrink-viol\tstretch-viol\tdispatch-anom\tverdict")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%s\n",
			r.Alg, r.Eps, r.Trials, r.ShrinkViol, r.StretchViol, r.DispatchAnom, r.Verdict())
	}
	return rows, nil
}
