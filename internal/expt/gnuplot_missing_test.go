package expt

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// An empty crash series (every draw lost a task) must render as the
// gnuplot missing marker, never as 0 — and the script must declare the
// marker so gnuplot actually skips the point.
func TestGnuplotRendersEmptyCrashSeriesAsMissing(t *testing.T) {
	nan := math.NaN()
	pts := []Point{{
		G:     0.2,
		FTSA0: 1.5, FTSAUB: 2, FTBAR0: 1.6, FTBARUB: 2.1, CAFT0: 1.4, CAFTUB: 1.9,
		FFCAFT: 1, FFFTBAR: 1.1,
		FTSAc: 1.7, FTBARc: nan, CAFTc: nan,
		OvFTSA0: 10, OvFTSAc: 12, OvFTBAR0: 11, OvFTBARc: nan, OvCAFT0: 5, OvCAFTc: nan,
		FTSAcN: 3, FTBARcN: 0, CAFTcN: 0, TasksLost: 6,
	}}
	var data bytes.Buffer
	if err := WriteGnuplotData(&data, pts); err != nil {
		t.Fatal(err)
	}
	row := strings.Split(strings.TrimSpace(data.String()), "\n")[1]
	fields := strings.Fields(row)
	if len(fields) != 19 {
		t.Fatalf("columns = %d, want 19", len(fields))
	}
	// Columns (1-based): 11 FTBARc, 12 CAFTc, 16 OvFTBARc, 18 OvCAFTc.
	for _, idx := range []int{10, 11, 15, 17} {
		if fields[idx] != gnuplotMissing {
			t.Errorf("column %d = %q, want %q", idx+1, fields[idx], gnuplotMissing)
		}
	}
	if strings.Contains(row, "NaN") {
		t.Errorf("NaN leaked into data row %q", row)
	}
	var script bytes.Buffer
	if err := WriteGnuplotScript(&script, 1, "figure1.dat", 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(script.String(), `set datafile missing "?"`) {
		t.Error("script does not declare the missing marker")
	}
}
