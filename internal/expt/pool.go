package expt

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// unitSeed derives the PRNG seed of one work unit from the experiment's
// base seed, the cell the unit belongs to (a granularity, a table row, a
// topology, ...) and the unit's index within the cell. The splitmix64
// finalizer spreads nearby (cell, unit) pairs over the whole seed space,
// so every unit gets an independent stream regardless of which worker
// runs it — this is what makes the parallel engine's output a pure
// function of (seed, cell, unit) and therefore identical for any worker
// count.
func unitSeed(base int64, cell, unit int) int64 {
	h := uint64(base) + 0x9e3779b97f4a7c15*uint64(cell+1) + 0xbf58476d1ce4e5b9*uint64(unit+1)
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return int64(h)
}

// runUnits evaluates fn for every unit 0..n-1 across a pool of workers
// (0 or negative means GOMAXPROCS) and returns the results in unit
// order. Units must be independent — fn seeds its own PRNG from the
// unit index.
func runUnits[T any](workers, n int, fn func(u int) (T, error)) ([]T, error) {
	if n < 0 {
		n = 0
	}
	out := make([]T, n)
	err := forEachUnit(workers, n, func(u int) error {
		var err error
		out[u], err = fn(u)
		return err
	}, nil)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// forEachUnit is the pool core: it runs fn(u) for every unit 0..n-1
// across `workers` goroutines (0 or negative means GOMAXPROCS), with fn
// writing its result into caller-owned storage. The optional onDone(u)
// callback is invoked on the caller's goroutine, in completion order,
// after each successful unit — so results can be consumed while later
// units are still running. A failing unit stops the pool from claiming
// further units; which of several concurrent failures is reported can
// depend on scheduling, but a failing sweep always returns an error.
func forEachUnit(workers, n int, fn func(u int) error, onDone func(u int)) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0) //caft:nondet-ok worker count; results merge in unit order
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for u := 0; u < n; u++ {
			if err := fn(u); err != nil {
				return err
			}
			if onDone != nil {
				onDone(u)
			}
		}
		return nil
	}
	var failed atomic.Bool
	var next atomic.Int64
	errs := make([]error, n)
	done := make(chan int, n)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for !failed.Load() {
				u := int(next.Add(1)) - 1
				if u >= n {
					return
				}
				errs[u] = fn(u)
				if errs[u] != nil {
					failed.Store(true)
				}
				done <- u
			}
		}()
	}
	go func() {
		wg.Wait()
		close(done)
	}()
	// Receiving u happens-after the worker's write of unit u's result,
	// so onDone may safely read it.
	for u := range done {
		if errs[u] == nil && onDone != nil {
			onDone(u)
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
