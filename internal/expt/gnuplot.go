package expt

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// gnuplotMissing marks an empty series value (NaN mean) in the data
// file; the emitted script declares it via `set datafile missing`.
const gnuplotMissing = "?"

func gnuplotVal(v float64) string {
	if math.IsNaN(v) {
		return gnuplotMissing
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteGnuplotData writes the full point series as a whitespace table
// consumable by gnuplot (one row per granularity, one column per
// series, with a header comment naming the columns). Empty crash
// series render as the missing marker, so gnuplot skips the point
// instead of plotting a bogus zero.
func WriteGnuplotData(w io.Writer, points []Point) error {
	// FFHOFT is appended after the original 18 columns so existing
	// scripts' 1-based column indices keep working.
	if _, err := fmt.Fprintln(w, "# g FTSA0 FTSAUB FTBAR0 FTBARUB CAFT0 CAFTUB FFCAFT FFFTBAR FTSAc FTBARc CAFTc OvFTSA0 OvFTSAc OvFTBAR0 OvFTBARc OvCAFT0 OvCAFTc FFHOFT"); err != nil {
		return err
	}
	for _, p := range points {
		cols := []float64{
			p.G, p.FTSA0, p.FTSAUB, p.FTBAR0, p.FTBARUB, p.CAFT0, p.CAFTUB, p.FFCAFT, p.FFFTBAR,
			p.FTSAc, p.FTBARc, p.CAFTc,
			p.OvFTSA0, p.OvFTSAc, p.OvFTBAR0, p.OvFTBARc, p.OvCAFT0, p.OvCAFTc,
			p.FFHOFT,
		}
		row := make([]string, len(cols))
		for i, v := range cols {
			row[i] = gnuplotVal(v)
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, " ")); err != nil {
			return err
		}
	}
	return nil
}

// WriteGnuplotScript writes a gnuplot script that renders the three
// panels of a paper figure from a data file produced by
// WriteGnuplotData.
func WriteGnuplotScript(w io.Writer, figure int, dataFile string, crashes int) error {
	_, err := fmt.Fprintf(w, `set terminal pngcairo size 800,1500
set output "figure%d.png"
set datafile missing "?"
set multiplot layout 3,1 title "Figure %d"
set xlabel "Granularity"
set key top left

set ylabel "Normalized Latency"
set title "(a) latency with 0 crash, bounds, fault-free"
plot "%[3]s" u 1:2 w lp t "FTSA 0 crash", \
     "%[3]s" u 1:3 w lp t "FTSA upper bound", \
     "%[3]s" u 1:4 w lp t "FTBAR 0 crash", \
     "%[3]s" u 1:5 w lp t "FTBAR upper bound", \
     "%[3]s" u 1:6 w lp t "CAFT 0 crash", \
     "%[3]s" u 1:7 w lp t "CAFT upper bound", \
     "%[3]s" u 1:8 w lp t "FaultFree-CAFT", \
     "%[3]s" u 1:9 w lp t "FaultFree-FTBAR", \
     "%[3]s" u 1:19 w lp t "FaultFree-HOFT"

set title "(b) latency with 0 vs %[4]d crash(es)"
plot "%[3]s" u 1:2 w lp t "FTSA 0 crash", \
     "%[3]s" u 1:10 w lp t "FTSA crash", \
     "%[3]s" u 1:4 w lp t "FTBAR 0 crash", \
     "%[3]s" u 1:11 w lp t "FTBAR crash", \
     "%[3]s" u 1:6 w lp t "CAFT 0 crash", \
     "%[3]s" u 1:12 w lp t "CAFT crash"

set ylabel "Average Overhead (%%)"
set title "(c) overhead vs fault-free CAFT"
plot "%[3]s" u 1:13 w lp t "FTSA 0 crash", \
     "%[3]s" u 1:14 w lp t "FTSA crash", \
     "%[3]s" u 1:15 w lp t "FTBAR 0 crash", \
     "%[3]s" u 1:16 w lp t "FTBAR crash", \
     "%[3]s" u 1:17 w lp t "CAFT 0 crash", \
     "%[3]s" u 1:18 w lp t "CAFT crash"
unset multiplot
`, figure, figure, dataFile, crashes)
	return err
}
