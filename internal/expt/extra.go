package expt

import (
	"fmt"
	"io"
	"math/rand"

	"caft/internal/core"
	"caft/internal/dag"
	"caft/internal/gen"
	"caft/internal/platform"
	"caft/internal/sched"
	"caft/internal/sched/ftsa"
	"caft/internal/sim"
	"caft/internal/stats"
	"caft/internal/timeline"
	"caft/internal/topology"
)

// RunMessages reproduces the message-count argument of Proposition 5.1:
// on outforests CAFT generates at most e(ε+1) messages while FTSA may
// generate up to e(ε+1)²; on general random graphs CAFT still sends far
// fewer messages. One TSV row per (family, ε).
func RunMessages(w io.Writer, graphs int, seed int64) error {
	fmt.Fprintf(w, "# Prop 5.1 message counts: m=10, %d graphs per row, seed=%d\n", graphs, seed)
	fmt.Fprintln(w, "family\teps\tedges\tCAFT\tboundE(e+1)\tFTSA\tboundE(e+1)^2")
	families := []struct {
		name string
		gen  func(rng *rand.Rand) *dag.DAG
	}{
		{"outforest", func(rng *rand.Rand) *dag.DAG { return gen.RandomOutForest(rng, 60, 2, 50, 150) }},
		{"fork", func(rng *rand.Rand) *dag.DAG { return gen.Fork(30, 100) }},
		{"random", func(rng *rand.Rand) *dag.DAG { return gen.RandomLayered(rng, gen.DefaultParams) }},
	}
	for _, fam := range families {
		for eps := 0; eps <= 3; eps++ {
			rng := rand.New(rand.NewSource(seed))
			var edges, msgC, msgF stats64
			for i := 0; i < graphs; i++ {
				g := fam.gen(rng)
				plat := platform.NewRandom(rng, 10, 0.5, 1.0)
				exec := platform.GenExecForGranularity(rng, g, plat, 1.0, platform.DefaultHeterogeneity)
				p := &sched.Problem{G: g, Plat: plat, Exec: exec, Model: sched.OnePort, Policy: timeline.Append}
				sc, _, err := core.ScheduleOpts(p, eps, rng, core.Options{Greedy: true})
				if err != nil {
					return err
				}
				sf, err := ftsa.Schedule(p, eps, rng)
				if err != nil {
					return err
				}
				edges.add(float64(g.NumEdges()))
				msgC.add(float64(sc.MessageCount()))
				msgF.add(float64(sf.MessageCount()))
			}
			e := edges.mean()
			fmt.Fprintf(w, "%s\t%d\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\n",
				fam.name, eps, e, msgC.mean(), e*float64(eps+1), msgF.mean(), e*float64((eps+1)*(eps+1)))
		}
	}
	return nil
}

type stats64 struct{ xs []float64 }

func (s *stats64) add(x float64) { s.xs = append(s.xs, x) }
func (s *stats64) mean() float64 { return stats.Mean(s.xs) }

// RunAblation compares the CAFT variants (A1/A4 of DESIGN.md): the
// resilient portfolio default, the greedy one-to-one mode, the
// replicated-only mode and the literal paper-locking mode, reporting
// normalized latency, message count and the fraction of random ε-crash
// draws that lose a task entirely.
func RunAblation(w io.Writer, graphs int, seed int64) error {
	fmt.Fprintf(w, "# CAFT variant ablation: m=10, %d graphs per cell, 20 crash draws per graph, seed=%d\n", graphs, seed)
	fmt.Fprintln(w, "eps\tg\tvariant\tlatency\tmessages\tlostPct")
	variants := []struct {
		name string
		opts core.Options
	}{
		{"portfolio", core.Options{}},
		{"greedy", core.Options{Greedy: true}},
		{"full-only", core.Options{FullOnly: true}},
		{"paper-locking", core.Options{Greedy: true, Locking: core.PaperLocking}},
	}
	for _, eps := range []int{1, 3} {
		for _, g := range []float64{0.2, 1.0, 5.0} {
			for _, v := range variants {
				rng := rand.New(rand.NewSource(seed))
				var lat, msg stats64
				lost, draws := 0, 0
				for i := 0; i < graphs; i++ {
					graph := gen.RandomLayered(rng, gen.DefaultParams)
					plat := platform.NewRandom(rng, 10, 0.5, 1.0)
					exec := platform.GenExecForGranularity(rng, graph, plat, g, platform.DefaultHeterogeneity)
					p := &sched.Problem{G: graph, Plat: plat, Exec: exec, Model: sched.OnePort, Policy: timeline.Append}
					s, _, err := core.ScheduleOpts(p, eps, rng, v.opts)
					if err != nil {
						return err
					}
					lat.add(s.ScheduledLatency() / DefaultNorm)
					msg.add(float64(s.MessageCount()))
					for d := 0; d < 20; d++ {
						crashed := map[int]bool{}
						for len(crashed) < eps {
							crashed[rng.Intn(10)] = true
						}
						draws++
						if _, err := sim.CrashLatency(s, crashed); err != nil {
							lost++
						}
					}
				}
				fmt.Fprintf(w, "%d\t%.1f\t%s\t%.2f\t%.0f\t%.1f\n",
					eps, g, v.name, lat.mean(), msg.mean(), 100*float64(lost)/float64(draws))
			}
		}
	}
	return nil
}

// RunAccuracy reproduces the Sinnen-Sousa style accuracy argument that
// motivates the paper (§3): schedules built under the contention-free
// macro-dataflow model look fast on paper but much slower when their
// communications are replayed under one-port constraints, while
// contention-aware schedules keep their promises. One row per
// granularity; latencies normalized.
func RunAccuracy(w io.Writer, graphs int, seed int64) error {
	fmt.Fprintf(w, "# schedule accuracy: m=10, eps=1, %d graphs per point, seed=%d\n", graphs, seed)
	fmt.Fprintln(w, "g\tmacroEstimate\tmacroReplayed\tonePortAware\tmisprediction")
	for _, g := range GranularityA() {
		rng := rand.New(rand.NewSource(seed))
		var est, real, aware stats64
		for i := 0; i < graphs; i++ {
			graph := gen.RandomLayered(rng, gen.DefaultParams)
			plat := platform.NewRandom(rng, 10, 0.5, 1.0)
			exec := platform.GenExecForGranularity(rng, graph, plat, g, platform.DefaultHeterogeneity)
			macro := &sched.Problem{G: graph, Plat: plat, Exec: exec, Model: sched.MacroDataflow, Policy: timeline.Append}
			sm, err := ftsa.Schedule(macro, 1, rng)
			if err != nil {
				return err
			}
			est.add(sm.ScheduledLatency() / DefaultNorm)
			// Replay the same placements with one-port contention: the
			// promised overlap of messages is serialized.
			onePortView := *sm
			pp := *macro
			pp.Model = sched.OnePort
			onePortView.P = &pp
			r, err := sim.Replay(&onePortView, sim.Options{})
			if err != nil {
				return err
			}
			lat, err := r.Latency()
			if err != nil {
				return err
			}
			real.add(lat / DefaultNorm)
			onePort := &sched.Problem{G: graph, Plat: plat, Exec: exec, Model: sched.OnePort, Policy: timeline.Append}
			sa, err := ftsa.Schedule(onePort, 1, rng)
			if err != nil {
				return err
			}
			aware.add(sa.ScheduledLatency() / DefaultNorm)
		}
		mis := 0.0
		if est.mean() > 0 {
			mis = 100 * (real.mean() - est.mean()) / est.mean()
		}
		fmt.Fprintf(w, "%.1f\t%.2f\t%.2f\t%.2f\t%.0f%%\n", g, est.mean(), real.mean(), aware.mean(), mis)
	}
	return nil
}

// RunSparse exercises the conclusion's sparse-interconnect extension
// (X1): CAFT on a clique versus routed ring, star, mesh, torus and
// hypercube topologies of 8 processors, ε = 1.
func RunSparse(w io.Writer, graphs int, seed int64) error {
	const m = 8
	fmt.Fprintf(w, "# sparse topologies: m=%d, eps=1, g=1.0, %d graphs per row, seed=%d\n", m, graphs, seed)
	fmt.Fprintln(w, "topology\tdiameter\tlatency\tmessages\tlost1crashPct")
	topos := []struct {
		name string
		net  sched.Network
		diam int
	}{
		{"clique", nil, 1},
		{"hypercube", topology.Hypercube(3, 0.75), topology.Hypercube(3, 0.75).Diameter()},
		{"torus", topology.Torus2D(2, 4, 0.75), topology.Torus2D(2, 4, 0.75).Diameter()},
		{"mesh", topology.Mesh2D(2, 4, 0.75), topology.Mesh2D(2, 4, 0.75).Diameter()},
		{"star", topology.Star(m, 0.75), topology.Star(m, 0.75).Diameter()},
		{"ring", topology.Ring(m, 0.75), topology.Ring(m, 0.75).Diameter()},
	}
	for _, tp := range topos {
		rng := rand.New(rand.NewSource(seed))
		var lat, msg stats64
		lost, draws := 0, 0
		for i := 0; i < graphs; i++ {
			graph := gen.RandomLayered(rng, gen.DefaultParams)
			plat := platform.New(m, 0.75)
			exec := platform.GenExecForGranularity(rng, graph, plat, 1.0, platform.DefaultHeterogeneity)
			p := &sched.Problem{G: graph, Plat: plat, Exec: exec, Model: sched.OnePort, Policy: timeline.Append, Net: tp.net}
			s, err := core.Schedule(p, 1, rng)
			if err != nil {
				return err
			}
			lat.add(s.ScheduledLatency() / DefaultNorm)
			msg.add(float64(s.MessageCount()))
			for proc := 0; proc < m; proc++ {
				draws++
				if _, err := sim.CrashLatency(s, map[int]bool{proc: true}); err != nil {
					lost++
				}
			}
		}
		fmt.Fprintf(w, "%s\t%d\t%.2f\t%.0f\t%.1f\n", tp.name, tp.diam, lat.mean(), msg.mean(), 100*float64(lost)/float64(draws))
	}
	return nil
}
