package expt

import (
	"errors"
	"fmt"
	"io"
	"math/rand"

	"caft/internal/core"
	"caft/internal/dag"
	"caft/internal/gen"
	"caft/internal/platform"
	"caft/internal/sched"
	"caft/internal/sim"
	"caft/internal/stats"
	"caft/internal/timeline"
	"caft/internal/topology"
)

// The ablation tables run on the same deterministic work-unit engine as
// the figures: every (table cell, graph) pair is an independent unit
// with a seed derived up front, the units fan out over `workers`
// goroutines (0 = GOMAXPROCS), and rows are assembled from the unit
// results in a fixed order — the emitted TSV is identical for any
// worker count.

// RunMessages reproduces the message-count argument of Proposition 5.1:
// on outforests CAFT generates at most e(ε+1) messages while FTSA may
// generate up to e(ε+1)²; on general random graphs CAFT still sends far
// fewer messages. One TSV row per (family, ε).
func RunMessages(w io.Writer, graphs int, seed int64, workers int) error {
	if graphs < 0 {
		return fmt.Errorf("expt: negative graph count %d", graphs)
	}
	fmt.Fprintf(w, "# Prop 5.1 message counts: m=10, %d graphs per row, seed=%d\n", graphs, seed)
	fmt.Fprintln(w, "family\teps\tedges\tCAFT\tboundE(e+1)\tFTSA\tboundE(e+1)^2")
	families := []struct {
		name string
		gen  func(rng *rand.Rand) *dag.DAG
	}{
		{"outforest", func(rng *rand.Rand) *dag.DAG { return gen.RandomOutForest(rng, 60, 2, 0, 50, 150) }},
		{"fork", func(rng *rand.Rand) *dag.DAG { return gen.Fork(30, 100) }},
		{"random", func(rng *rand.Rand) *dag.DAG { return gen.RandomLayered(rng, gen.DefaultParams) }},
	}
	const nEps = 4 // ε = 0..3
	type meas struct{ edges, msgC, msgF float64 }
	cells := len(families) * nEps
	units, err := runUnits(workers, cells*graphs, func(u int) (meas, error) {
		cell, gi := u/graphs, u%graphs
		fam, eps := families[cell/nEps], cell%nEps
		rng := rand.New(rand.NewSource(unitSeed(seed, cell, gi)))
		g := fam.gen(rng)
		plat := platform.NewRandom(rng, 10, 0.5, 1.0)
		exec := platform.GenExecForGranularity(rng, g, plat, 1.0, platform.DefaultHeterogeneity)
		p := &sched.Problem{G: g, Plat: plat, Exec: exec, Model: sched.OnePort, Policy: timeline.Append}
		sc, err := algo("caft-greedy").New(p, eps, rng)
		if err != nil {
			return meas{}, err
		}
		sf, err := algo("ftsa").New(p, eps, rng)
		if err != nil {
			return meas{}, err
		}
		return meas{
			edges: float64(g.NumEdges()),
			msgC:  float64(sc.MessageCount()),
			msgF:  float64(sf.MessageCount()),
		}, nil
	})
	if err != nil {
		return err
	}
	for cell := 0; cell < cells; cell++ {
		fam, eps := families[cell/nEps], cell%nEps
		var edges, msgC, msgF stats64
		for _, m := range units[cell*graphs : (cell+1)*graphs] {
			edges.add(m.edges)
			msgC.add(m.msgC)
			msgF.add(m.msgF)
		}
		e := edges.mean()
		fmt.Fprintf(w, "%s\t%d\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\n",
			fam.name, eps, e, msgC.mean(), e*float64(eps+1), msgF.mean(), e*float64((eps+1)*(eps+1)))
	}
	return nil
}

type stats64 struct{ xs []float64 }

func (s *stats64) add(x float64) { s.xs = append(s.xs, x) }
func (s *stats64) mean() float64 { return stats.Mean(s.xs) }

// lostPct renders the task-loss percentage, or the missing marker when
// no crash replay could be evaluated (0 draws must not read as NaN).
func lostPct(lost, draws int) string {
	if draws == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", 100*float64(lost)/float64(draws))
}

// RunAblation compares the CAFT variants (A1/A4 of DESIGN.md): the
// resilient portfolio default, the greedy one-to-one mode, the
// replicated-only mode and the literal paper-locking mode, reporting
// normalized latency, message count and the fraction of random ε-crash
// draws that lose a task entirely.
func RunAblation(w io.Writer, graphs int, seed int64, workers int) error {
	if graphs < 0 {
		return fmt.Errorf("expt: negative graph count %d", graphs)
	}
	fmt.Fprintf(w, "# CAFT variant ablation: m=10, %d graphs per cell, 20 crash draws per graph, seed=%d\n", graphs, seed)
	fmt.Fprintln(w, "eps\tg\tvariant\tlatency\tmessages\tlostPct")
	variants := []struct {
		name string
		opts core.Options
	}{
		{"portfolio", core.Options{}},
		{"greedy", core.Options{Greedy: true}},
		{"full-only", core.Options{FullOnly: true}},
		{"paper-locking", core.Options{Greedy: true, Locking: core.PaperLocking}},
	}
	epsVals := []int{1, 3}
	gVals := []float64{0.2, 1.0, 5.0}
	type cellDef struct {
		eps     int
		g       float64
		variant int
	}
	var defs []cellDef
	for _, eps := range epsVals {
		for _, g := range gVals {
			for vi := range variants {
				defs = append(defs, cellDef{eps, g, vi})
			}
		}
	}
	type meas struct {
		lat, msg          float64
		lost, errs, draws int
	}
	units, err := runUnits(workers, len(defs)*graphs, func(u int) (meas, error) {
		cell, gi := u/graphs, u%graphs
		def := defs[cell]
		rng := rand.New(rand.NewSource(unitSeed(seed, cell, gi)))
		graph := gen.RandomLayered(rng, gen.DefaultParams)
		plat := platform.NewRandom(rng, 10, 0.5, 1.0)
		exec := platform.GenExecForGranularity(rng, graph, plat, def.g, platform.DefaultHeterogeneity)
		p := &sched.Problem{G: graph, Plat: plat, Exec: exec, Model: sched.OnePort, Policy: timeline.Append}
		s, _, err := core.ScheduleOpts(p, def.eps, rng, variants[def.variant].opts)
		if err != nil {
			return meas{}, err
		}
		m := meas{lat: s.ScheduledLatency() / DefaultNorm, msg: float64(s.MessageCount())}
		rep, err := sim.NewReplayer(s)
		if err != nil {
			return meas{}, err
		}
		for d := 0; d < 20; d++ {
			crashed := map[int]bool{}
			for len(crashed) < def.eps {
				crashed[rng.Intn(10)] = true
			}
			switch _, err := rep.CrashLatency(crashed); {
			case errors.Is(err, sim.ErrTaskLost):
				m.draws++
				m.lost++
			case err != nil:
				// Same policy as the figure engine: an engine failure is
				// excluded from the draws, not blamed on the schedule.
				m.errs++
			default:
				m.draws++
			}
		}
		return m, nil
	})
	if err != nil {
		return err
	}
	replayErrs := 0
	for cell, def := range defs {
		var lat, msg stats64
		lost, draws := 0, 0
		for _, m := range units[cell*graphs : (cell+1)*graphs] {
			lat.add(m.lat)
			msg.add(m.msg)
			lost += m.lost
			draws += m.draws
			replayErrs += m.errs
		}
		fmt.Fprintf(w, "%d\t%.1f\t%s\t%.2f\t%.0f\t%s\n",
			def.eps, def.g, variants[def.variant].name, lat.mean(), msg.mean(), lostPct(lost, draws))
	}
	if replayErrs > 0 {
		fmt.Fprintf(w, "# %d crash replay(s) failed to evaluate and were excluded\n", replayErrs)
	}
	return nil
}

// RunAccuracy reproduces the Sinnen-Sousa style accuracy argument that
// motivates the paper (§3): schedules built under the contention-free
// macro-dataflow model look fast on paper but much slower when their
// communications are replayed under one-port constraints, while
// contention-aware schedules keep their promises. One row per
// granularity; latencies normalized.
func RunAccuracy(w io.Writer, graphs int, seed int64, workers int) error {
	if graphs < 0 {
		return fmt.Errorf("expt: negative graph count %d", graphs)
	}
	fmt.Fprintf(w, "# schedule accuracy: m=10, eps=1, %d graphs per point, seed=%d\n", graphs, seed)
	fmt.Fprintln(w, "g\tmacroEstimate\tmacroReplayed\tonePortAware\tmisprediction")
	gs := GranularityA()
	type meas struct{ est, real, aware float64 }
	units, err := runUnits(workers, len(gs)*graphs, func(u int) (meas, error) {
		cell, gi := u/graphs, u%graphs
		g := gs[cell]
		rng := rand.New(rand.NewSource(unitSeed(seed, cell, gi)))
		graph := gen.RandomLayered(rng, gen.DefaultParams)
		plat := platform.NewRandom(rng, 10, 0.5, 1.0)
		exec := platform.GenExecForGranularity(rng, graph, plat, g, platform.DefaultHeterogeneity)
		macro := &sched.Problem{G: graph, Plat: plat, Exec: exec, Model: sched.MacroDataflow, Policy: timeline.Append}
		sm, err := algo("ftsa").New(macro, 1, rng)
		if err != nil {
			return meas{}, err
		}
		var m meas
		m.est = sm.ScheduledLatency() / DefaultNorm
		// Replay the same placements with one-port contention: the
		// promised overlap of messages is serialized.
		onePortView := *sm
		pp := *macro
		pp.Model = sched.OnePort
		onePortView.P = &pp
		r, err := sim.Replay(&onePortView, sim.Options{})
		if err != nil {
			return meas{}, err
		}
		lat, err := r.Latency()
		if err != nil {
			return meas{}, err
		}
		m.real = lat / DefaultNorm
		onePort := &sched.Problem{G: graph, Plat: plat, Exec: exec, Model: sched.OnePort, Policy: timeline.Append}
		sa, err := algo("ftsa").New(onePort, 1, rng)
		if err != nil {
			return meas{}, err
		}
		m.aware = sa.ScheduledLatency() / DefaultNorm
		return m, nil
	})
	if err != nil {
		return err
	}
	for cell, g := range gs {
		var est, real, aware stats64
		for _, m := range units[cell*graphs : (cell+1)*graphs] {
			est.add(m.est)
			real.add(m.real)
			aware.add(m.aware)
		}
		mis := 0.0
		if est.mean() > 0 {
			mis = 100 * (real.mean() - est.mean()) / est.mean()
		}
		fmt.Fprintf(w, "%.1f\t%.2f\t%.2f\t%.2f\t%.0f%%\n", g, est.mean(), real.mean(), aware.mean(), mis)
	}
	return nil
}

// RunSparse exercises the conclusion's sparse-interconnect extension
// (X1): CAFT on a clique versus routed ring, star, mesh, torus and
// hypercube topologies of 8 processors, ε = 1.
func RunSparse(w io.Writer, graphs int, seed int64, workers int) error {
	const m = 8
	if graphs < 0 {
		return fmt.Errorf("expt: negative graph count %d", graphs)
	}
	fmt.Fprintf(w, "# sparse topologies: m=%d, eps=1, g=1.0, %d graphs per row, seed=%d\n", m, graphs, seed)
	fmt.Fprintln(w, "topology\tdiameter\tlatency\tmessages\tlost1crashPct")
	type topo struct {
		name string
		net  sched.Network
		diam int
	}
	topos := []topo{{"clique", nil, 1}}
	for _, tc := range []struct {
		name  string
		build func() (*topology.Graph, error)
	}{
		{"hypercube", func() (*topology.Graph, error) { return topology.Hypercube(3, 0.75) }},
		{"torus", func() (*topology.Graph, error) { return topology.Torus2D(2, 4, 0.75) }},
		{"mesh", func() (*topology.Graph, error) { return topology.Mesh2D(2, 4, 0.75) }},
		{"star", func() (*topology.Graph, error) { return topology.Star(m, 0.75) }},
		{"ring", func() (*topology.Graph, error) { return topology.Ring(m, 0.75) }},
	} {
		g, err := tc.build()
		if err != nil {
			return fmt.Errorf("expt: %s topology: %w", tc.name, err)
		}
		topos = append(topos, topo{tc.name, g, g.Diameter()})
	}
	type meas struct {
		lat, msg          float64
		lost, errs, draws int
	}
	units, err := runUnits(workers, len(topos)*graphs, func(u int) (meas, error) {
		cell, gi := u/graphs, u%graphs
		tp := topos[cell]
		rng := rand.New(rand.NewSource(unitSeed(seed, cell, gi)))
		graph := gen.RandomLayered(rng, gen.DefaultParams)
		plat := platform.New(m, 0.75)
		exec := platform.GenExecForGranularity(rng, graph, plat, 1.0, platform.DefaultHeterogeneity)
		p := &sched.Problem{G: graph, Plat: plat, Exec: exec, Model: sched.OnePort, Policy: timeline.Append, Net: tp.net}
		s, err := algo("caft").New(p, 1, rng)
		if err != nil {
			return meas{}, err
		}
		mr := meas{lat: s.ScheduledLatency() / DefaultNorm, msg: float64(s.MessageCount())}
		rep, err := sim.NewReplayer(s)
		if err != nil {
			return meas{}, err
		}
		for proc := 0; proc < m; proc++ {
			switch _, err := rep.CrashLatency(map[int]bool{proc: true}); {
			case errors.Is(err, sim.ErrTaskLost):
				mr.draws++
				mr.lost++
			case err != nil:
				mr.errs++
			default:
				mr.draws++
			}
		}
		return mr, nil
	})
	if err != nil {
		return err
	}
	replayErrs := 0
	for cell, tp := range topos {
		var lat, msg stats64
		lost, draws := 0, 0
		for _, mr := range units[cell*graphs : (cell+1)*graphs] {
			lat.add(mr.lat)
			msg.add(mr.msg)
			lost += mr.lost
			draws += mr.draws
			replayErrs += mr.errs
		}
		fmt.Fprintf(w, "%s\t%d\t%.2f\t%.0f\t%s\n", tp.name, tp.diam, lat.mean(), msg.mean(), lostPct(lost, draws))
	}
	if replayErrs > 0 {
		fmt.Fprintf(w, "# %d crash replay(s) failed to evaluate and were excluded\n", replayErrs)
	}
	return nil
}
