package expt

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"caft/internal/failure"
	"caft/internal/sched"
	"caft/internal/sim"
)

// This file is the reliability Monte-Carlo core shared by the
// `caftsim -figure reliability` tables (RunReliability) and the caftd
// scheduling service: crash-time scenarios sampled from a failure model
// are replayed with timed fail-stop semantics and tallied into
// unreliability (task-loss fraction) and expected surviving latency.

// MCTally accumulates the outcome of replayed crash scenarios for one
// schedule. LatSum is the sum of (normalized) latencies over the
// surviving scenarios; ReplayErrors counts scenarios the engine failed
// to evaluate, which are excluded from the estimates and never blamed
// on the schedule.
type MCTally struct {
	LatSum       float64
	Survived     int
	Lost         int
	ReplayErrors int
}

// add folds another tally into t.
func (t *MCTally) add(o MCTally) {
	t.LatSum += o.LatSum
	t.Survived += o.Survived
	t.Lost += o.Lost
	t.ReplayErrors += o.ReplayErrors
}

// Draws returns the number of scenarios behind the estimates (the
// engine-failed ones excluded).
func (t MCTally) Draws() int { return t.Survived + t.Lost }

// Unreliability returns the estimated probability of losing a task:
// the fraction of evaluated scenarios in which the schedule lost one
// (NaN when nothing was evaluated).
func (t MCTally) Unreliability() float64 {
	if t.Draws() == 0 {
		return math.NaN()
	}
	return float64(t.Lost) / float64(t.Draws())
}

// MeanLatency returns the mean (normalized) latency over the surviving
// scenarios, NaN when none survived.
func (t MCTally) MeanLatency() float64 {
	if t.Survived == 0 {
		return math.NaN()
	}
	return t.LatSum / float64(t.Survived)
}

// ReplaySamples draws n crash-time scenarios from model and replays
// every scenario against every replayer (common random numbers: one
// draw scores all schedules, so per-draw contrasts share their noise),
// folding outcomes into the matching tallies entry. Latencies are
// divided by norm before summing. scratch, which may be nil, is the
// reusable sample map. The rng stream layout is one Sample per draw —
// fixed regardless of the number of replayers.
func ReplaySamples(reps []*sim.Replayer, tallies []MCTally, model failure.Model, n int, norm float64, rng *rand.Rand, scratch map[int]float64) {
	for draw := 0; draw < n; draw++ {
		scratch = model.Sample(rng, scratch)
		for a := range reps {
			lat, err := reps[a].CrashLatencyAt(scratch)
			switch {
			case errors.Is(err, sim.ErrTaskLost) || math.IsInf(lat, 1):
				tallies[a].Lost++
			case err != nil:
				tallies[a].ReplayErrors++
			default:
				tallies[a].Survived++
				tallies[a].LatSum += lat / norm
			}
		}
	}
}

// mcBatch is the number of scenarios per work unit of
// EstimateReliability: large enough to amortize the per-batch Replayer,
// small enough that modest sample counts still fan out.
const mcBatch = 64

// EstimateReliability estimates one schedule's unreliability and
// expected surviving latency from `samples` crash scenarios, evaluated
// in batches on the deterministic work-unit pool. Batch i draws from
// its own PRNG seeded by unitSeed(seed, 0, i) and batches fold in a
// fixed order, so the tally is a pure function of (schedule, model,
// samples, seed) — identical for any worker count. The model must be
// stateless across Sample calls (Exponential, Weibull, Rack are;
// failure.Trace is not).
func EstimateReliability(s *sched.Schedule, model failure.Model, samples int, seed int64, workers int) (MCTally, error) {
	if samples < 0 {
		return MCTally{}, fmt.Errorf("expt: negative sample count %d", samples)
	}
	nBatches := (samples + mcBatch - 1) / mcBatch
	batches, err := runUnits(workers, nBatches, func(u int) (MCTally, error) {
		rep, err := sim.NewReplayer(s)
		if err != nil {
			return MCTally{}, err
		}
		n := mcBatch
		if u == nBatches-1 {
			n = samples - u*mcBatch
		}
		rng := rand.New(rand.NewSource(unitSeed(seed, 0, u)))
		var tally [1]MCTally
		ReplaySamples([]*sim.Replayer{rep}, tally[:], model, n, 1, rng, nil)
		return tally[0], nil
	})
	if err != nil {
		return MCTally{}, err
	}
	var total MCTally
	for _, b := range batches {
		total.add(b)
	}
	return total, nil
}
