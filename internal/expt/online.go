package expt

import (
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"

	"caft/internal/failure"
	"caft/internal/gen"
	"caft/internal/online"
	"caft/internal/sched"
	"caft/internal/sim"
	"caft/internal/timeline"
)

// The online experiment compares four fault-tolerance strategies under
// the event-driven causal execution engine (package online, DESIGN.md
// S7) across the same MTBF sweep as the reliability figure:
//
//   - static:   CAFT at ε=1 — replication only; crashes kill work and
//               whatever replication cannot absorb is lost.
//   - reactive: unreplicated HEFT plus runtime re-mapping — every crash
//               triggers the rescheduler, lost work moves to survivors.
//   - hybrid:   CAFT at ε=1 plus runtime re-mapping — replication
//               absorbs the first failures instantly, re-mapping
//               restores coverage for the next ones.
//   - hoft:     unreplicated HOFT plus runtime re-mapping — the
//               lookahead fault-free schedule under the same reactive
//               recovery as `reactive`, isolating the contribution of
//               the initial mapping.
//
// Every sampled failure trace is replayed under all four strategies
// (common random numbers), tallying the achieved makespan over
// completed runs, the fraction of runs losing a task, and the mean
// number of reactive re-placements.

// OnlineStrategies names the strategy columns in order.
var OnlineStrategies = [4]string{"static", "reactive", "hybrid", "hoft"}

// onlineSamples is the number of failure traces sampled per
// (cell, graph) work unit.
const onlineSamples = 20

// OnlinePoint is one averaged row of the online comparison table.
type OnlinePoint struct {
	Label string
	Mult  float64

	// Lat is the mean normalized makespan over completed runs per
	// strategy (OnlineStrategies order); NaN when none completed.
	Lat [4]float64
	// Unrel is the fraction of runs that lost a task.
	Unrel [4]float64
	// Resched is the mean number of reactive placements per run (always
	// zero for the static strategy).
	Resched [4]float64
	// Draws counts evaluated runs per strategy; ReplayErrors counts
	// engine failures (excluded, never blamed on a strategy).
	Draws        [4]int
	ReplayErrors int
}

type onlineUnit struct {
	latSum   [4]float64
	survived [4]int
	lost     [4]int
	resched  [4]int
	errs     int
}

// runOnlineUnit generates one instance, schedules it with HEFT (ε=0),
// CAFT (ε=1) and HOFT (ε=0), and replays the same sampled failure
// traces through the four strategies. useed is the unit's base seed:
// HOFT draws its tie-breaks from an rng derived from it, not from the
// shared stream, so the failure-model build and trace draws — and the
// original three strategies' columns — stay byte-identical.
func runOnlineUnit(rng *rand.Rand, useed int64, mult float64) (onlineUnit, error) {
	var out onlineUnit
	const m = 10
	cfg := Config{M: m, Params: gen.DefaultParams, DelayLo: 0.5, DelayHi: 1.0, Model: sched.OnePort, Policy: timeline.Append}
	inst := cfg.GenInstance(rng, 1.0)
	p := inst.P

	sHEFT, err := algo("heft").New(p, 0, rng)
	if err != nil {
		return out, err
	}
	T := sHEFT.ScheduledLatency()
	sCA, err := algo("caft").New(p, 1, rng)
	if err != nil {
		return out, err
	}
	sHO, err := algo("hoft").New(p, 0, rand.New(rand.NewSource(unitSeed(useed, 0, 1))))
	if err != nil {
		return out, err
	}
	engHEFT, err := online.NewEngine(sHEFT)
	if err != nil {
		return out, err
	}
	engCA, err := online.NewEngine(sCA)
	if err != nil {
		return out, err
	}
	engHO, err := online.NewEngine(sHO)
	if err != nil {
		return out, err
	}
	model := &failure.Exponential{MTBF: failure.UniformMTBF(rng, m, 0.75*mult*T, 1.25*mult*T)}

	runs := [4]struct {
		eng *online.Engine //caft:share-ok local run table; the engines never leave this work unit's goroutine
		opt online.Options
	}{
		{engCA, online.Options{}},
		{engHEFT, online.Options{Reschedule: true}},
		{engCA, online.Options{Reschedule: true}},
		{engHO, online.Options{Reschedule: true}},
	}
	trace := map[int]float64{}
	for draw := 0; draw < onlineSamples; draw++ {
		trace = model.Sample(rng, trace)
		for k, run := range runs {
			lat, resched, err := run.eng.Makespan(trace, run.opt)
			switch {
			case errors.Is(err, sim.ErrTaskLost) || math.IsInf(lat, 1):
				out.lost[k]++
			case err != nil:
				out.errs++
			default:
				out.survived[k]++
				out.latSum[k] += lat / DefaultNorm
				out.resched[k] += resched
			}
		}
	}
	return out, nil
}

// RunOnline sweeps the MTBF multipliers and writes the static vs
// reactive vs hybrid comparison as TSV on the deterministic work-unit
// pool: output is byte-identical for any worker count.
func RunOnline(w io.Writer, graphs int, seed int64, workers int) ([]OnlinePoint, error) {
	if graphs < 0 {
		return nil, fmt.Errorf("expt: negative graph count %d", graphs)
	}
	mults := reliabilityMults
	units, err := runUnits(workers, len(mults)*graphs, func(u int) (onlineUnit, error) {
		cell, gi := u/graphs, u%graphs
		useed := unitSeed(seed, cell, gi)
		rng := rand.New(rand.NewSource(useed))
		return runOnlineUnit(rng, useed, mults[cell])
	})
	if err != nil {
		return nil, err
	}

	points := make([]OnlinePoint, len(mults))
	for cell, mult := range mults {
		pt := OnlinePoint{Label: fmt.Sprintf("%g", mult), Mult: mult}
		for _, u := range units[cell*graphs : (cell+1)*graphs] {
			for k := range OnlineStrategies {
				pt.Lat[k] += u.latSum[k]
				pt.Unrel[k] += float64(u.lost[k])
				pt.Resched[k] += float64(u.resched[k])
				pt.Draws[k] += u.survived[k] + u.lost[k]
			}
			pt.ReplayErrors += u.errs
		}
		for k := range OnlineStrategies {
			if survived := pt.Draws[k] - int(pt.Unrel[k]); survived > 0 {
				pt.Lat[k] /= float64(survived)
				pt.Resched[k] /= float64(survived)
			} else {
				pt.Lat[k] = math.NaN()
				pt.Resched[k] = math.NaN()
			}
			if pt.Draws[k] > 0 {
				pt.Unrel[k] /= float64(pt.Draws[k])
			} else {
				pt.Unrel[k] = math.NaN()
			}
		}
		points[cell] = pt
	}

	fmt.Fprintf(w, "# online: m=10 eps=1 g=1.0 graphs/point=%d samples/graph=%d seed=%d\n", graphs, onlineSamples, seed)
	fmt.Fprintln(w, "# static: CAFT eps=1 replication only; reactive: HEFT + runtime re-mapping; hybrid: CAFT eps=1 + re-mapping; hoft: HOFT + re-mapping")
	fmt.Fprintln(w, "# makespan: mean normalized completion over completed runs; unrel: fraction of runs losing a task; remap: mean reactive placements per completed run")
	fmt.Fprintln(w, "mtbf/T\tstatic\tstatic-unrel\treactive\treactive-unrel\treactive-remap\thybrid\thybrid-unrel\thybrid-remap\thoft\thoft-unrel\thoft-remap")
	for _, pt := range points {
		row := pt.Label
		for k := range OnlineStrategies {
			row += "\t" + onlineCol(pt.Lat[k], 2) + "\t" + onlineCol(pt.Unrel[k], 3)
			if k > 0 {
				row += "\t" + onlineCol(pt.Resched[k], 2)
			}
		}
		fmt.Fprintln(w, row)
	}
	errs := 0
	for _, pt := range points {
		errs += pt.ReplayErrors
	}
	if errs > 0 {
		fmt.Fprintf(w, "# %d online replay(s) failed to evaluate and were excluded\n", errs)
	}
	return points, nil
}

func onlineCol(v float64, prec int) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.*f", prec, v)
}

// OnlineTally is the outcome of EstimateOnline: the achieved makespans
// of the completed runs (in draw order), plus loss and re-placement
// accounting.
type OnlineTally struct {
	// Makespans holds the absolute achieved makespan of every completed
	// run, in draw order.
	Makespans []float64
	// Lost counts runs in which a task never completed.
	Lost int
	// Rescheduled sums reactive placements over completed runs.
	Rescheduled int
	// ReplayErrors counts engine failures, excluded from the estimates.
	ReplayErrors int
}

// onlineBatch is the work-unit grain of EstimateOnline, mirroring
// EstimateReliability's batching.
const onlineBatch = 64

// EstimateOnline replays `samples` failure traces drawn from model
// through the online engine and tallies the makespan distribution.
// Batches run on the deterministic work-unit pool — batch i draws from
// unitSeed(seed, 0, i) and results merge in draw order — so the tally
// is a pure function of (schedule, model, samples, seed, reschedule)
// for any worker count. The model must be stateless across Sample
// calls (failure.Trace is not).
func EstimateOnline(s *sched.Schedule, model failure.Model, samples int, seed int64, workers int, reschedule bool) (OnlineTally, error) {
	if samples < 0 {
		return OnlineTally{}, fmt.Errorf("expt: negative sample count %d", samples)
	}
	type batch struct {
		makespans []float64
		lost      int
		resched   int
		errs      int
	}
	nBatches := (samples + onlineBatch - 1) / onlineBatch
	batches, err := runUnits(workers, nBatches, func(u int) (batch, error) {
		var b batch
		eng, err := online.NewEngine(s)
		if err != nil {
			return b, err
		}
		n := onlineBatch
		if u == nBatches-1 {
			n = samples - u*onlineBatch
		}
		rng := rand.New(rand.NewSource(unitSeed(seed, 0, u)))
		trace := map[int]float64{}
		for draw := 0; draw < n; draw++ {
			trace = model.Sample(rng, trace)
			lat, resched, err := eng.Makespan(trace, online.Options{Reschedule: reschedule})
			switch {
			case errors.Is(err, sim.ErrTaskLost) || math.IsInf(lat, 1):
				b.lost++
			case err != nil:
				b.errs++
			default:
				b.makespans = append(b.makespans, lat)
				b.resched += resched
			}
		}
		return b, nil
	})
	if err != nil {
		return OnlineTally{}, err
	}
	var out OnlineTally
	for _, b := range batches {
		out.Makespans = append(out.Makespans, b.makespans...)
		out.Lost += b.lost
		out.Rescheduled += b.resched
		out.ReplayErrors += b.errs
	}
	return out, nil
}
