package expt

import (
	"bytes"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"testing"
)

func TestFigureConfigs(t *testing.T) {
	cases := []struct {
		n               int
		m, eps, crashes int
		firstG, lastG   float64
	}{
		{1, 10, 1, 1, 0.2, 2.0},
		{2, 10, 3, 2, 0.2, 2.0},
		{3, 20, 5, 3, 0.2, 2.0},
		{4, 10, 1, 1, 1, 10},
		{5, 10, 3, 2, 1, 10},
		{6, 20, 5, 3, 1, 10},
	}
	for _, c := range cases {
		cfg, err := FigureConfig(c.n, 60, 1)
		if err != nil {
			t.Fatal(err)
		}
		if cfg.M != c.m || cfg.Eps != c.eps || cfg.Crashes != c.crashes {
			t.Errorf("figure %d: m=%d eps=%d crashes=%d", c.n, cfg.M, cfg.Eps, cfg.Crashes)
		}
		gs := cfg.Granularities
		if len(gs) != 10 || gs[0] != c.firstG || gs[9] != c.lastG {
			t.Errorf("figure %d: granularities %v", c.n, gs)
		}
		if cfg.Graphs != 60 {
			t.Errorf("figure %d: graphs = %d", c.n, cfg.Graphs)
		}
	}
	if _, err := FigureConfig(7, 60, 1); err == nil {
		t.Error("accepted figure 7")
	}
}

func TestGranularityFamilies(t *testing.T) {
	a := GranularityA()
	if len(a) != 10 || a[0] != 0.2 || a[4] != 1.0 {
		t.Errorf("family A = %v", a)
	}
	b := GranularityB()
	if len(b) != 10 || b[0] != 1 || b[9] != 10 {
		t.Errorf("family B = %v", b)
	}
}

func TestGenInstanceMatchesConfig(t *testing.T) {
	cfg, _ := FigureConfig(1, 2, 1)
	rng := rand.New(rand.NewSource(1))
	inst := cfg.GenInstance(rng, 0.6)
	if err := inst.P.Validate(); err != nil {
		t.Fatal(err)
	}
	if inst.P.Plat.M != 10 {
		t.Errorf("m = %d", inst.P.Plat.M)
	}
	g := inst.P.G.Granularity(inst.P.Exec.Slowest(), inst.P.Plat.MaxDelay())
	if g < 0.599 || g > 0.601 {
		t.Errorf("granularity = %v, want 0.6", g)
	}
	v := inst.P.G.NumTasks()
	if v < 80 || v > 120 {
		t.Errorf("tasks = %d", v)
	}
}

func TestDrawCrashes(t *testing.T) {
	cfg := Config{M: 5, Crashes: 3}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20; i++ {
		c := cfg.DrawCrashes(rng)
		if len(c) != 3 {
			t.Fatalf("drew %d crashes, want 3", len(c))
		}
		for p := range c {
			if p < 0 || p >= 5 {
				t.Fatalf("crash processor %d out of range", p)
			}
		}
	}
	// More crashes than processors: capped at M.
	cfg = Config{M: 2, Crashes: 9}
	if c := cfg.DrawCrashes(rng); len(c) != 2 {
		t.Fatalf("drew %d crashes on 2 procs", len(c))
	}
}

// Miniature end-to-end figure: sane values, no task losses, expected
// orderings between the series.
func TestRunFigureMiniature(t *testing.T) {
	cfg, _ := FigureConfig(1, 3, 7)
	cfg.Granularities = []float64{0.4, 1.6}
	points, err := cfg.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("%d points", len(points))
	}
	for _, pt := range points {
		if pt.TasksLost != 0 {
			t.Errorf("g=%v: %d crash replays lost tasks", pt.G, pt.TasksLost)
		}
		// Fault-tolerant latencies dominate the fault-free reference.
		if pt.CAFT0 < pt.FFCAFT-1e-9 {
			t.Errorf("g=%v: CAFT0 %v below fault-free %v", pt.G, pt.CAFT0, pt.FFCAFT)
		}
		// Upper bounds dominate the 0-crash latencies.
		if pt.CAFTUB < pt.CAFT0-1e-9 || pt.FTSAUB < pt.FTSA0-1e-9 || pt.FTBARUB < pt.FTBAR0-1e-9 {
			t.Errorf("g=%v: an upper bound fell below its latency", pt.G)
		}
		// Overheads of fault-tolerant schedules are positive.
		if pt.OvCAFT0 < 0 || pt.OvFTSA0 < 0 {
			t.Errorf("g=%v: negative overhead", pt.G)
		}
		// Crash latencies are positive and finite.
		if pt.CAFTc <= 0 || pt.FTSAc <= 0 || pt.FTBARc <= 0 {
			t.Errorf("g=%v: bad crash latency", pt.G)
		}
		if pt.MsgCAFT <= 0 || pt.MsgCAFT > pt.MsgFTSA*1.2 {
			t.Errorf("g=%v: message counts CAFT %v vs FTSA %v", pt.G, pt.MsgCAFT, pt.MsgFTSA)
		}
	}
	// Latency grows with granularity (computation dominates).
	if points[1].CAFT0 <= points[0].CAFT0 {
		t.Errorf("latency did not grow with granularity: %v -> %v", points[0].CAFT0, points[1].CAFT0)
	}
}

func TestRunIsDeterministic(t *testing.T) {
	cfg, _ := FigureConfig(1, 2, 42)
	cfg.Granularities = []float64{1.0}
	p1, err := cfg.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := cfg.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if p1[0] != p2[0] {
		t.Fatalf("same seed produced different points:\n%+v\n%+v", p1[0], p2[0])
	}
}

func TestRunProgressCallback(t *testing.T) {
	cfg, _ := FigureConfig(1, 1, 1)
	cfg.Granularities = []float64{0.2, 0.4, 0.6}
	n := 0
	if _, err := cfg.Run(func(Point) { n++ }); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("progress called %d times, want 3", n)
	}
}

func TestRunMessagesOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := RunMessages(&buf, 2, 1, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"outforest\t0", "fork\t3", "random\t1"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing row %q in:\n%s", want, out)
		}
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 2+12 {
		t.Errorf("unexpected row count:\n%s", out)
	}
}

func TestRunAblationOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := RunAblation(&buf, 1, 1, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"portfolio", "greedy", "full-only", "paper-locking"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing variant %q", want)
		}
	}
}

func TestRunAccuracyShowsMisprediction(t *testing.T) {
	var buf bytes.Buffer
	if err := RunAccuracy(&buf, 1, 1, 1); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2+10 {
		t.Fatalf("row count %d:\n%s", len(lines), buf.String())
	}
	// First data row (g=0.2): macro estimate must undershoot the replay.
	var g, est, real, aware float64
	var mis string
	if _, err := fmt_sscan(lines[2], &g, &est, &real, &aware, &mis); err != nil {
		t.Fatal(err)
	}
	if real <= est {
		t.Errorf("one-port replay %v should exceed macro estimate %v", real, est)
	}
}

func TestRunSparseOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := RunSparse(&buf, 1, 1, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"clique", "hypercube", "ring"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing topology %q", want)
		}
	}
	if strings.Contains(out, "NaN") {
		t.Error("NaN in sparse output")
	}
}

// fmt_sscan parses a TSV data row of the accuracy table.
func fmt_sscan(line string, g, est, real, aware *float64, mis *string) (int, error) {
	fields := strings.Fields(line)
	if len(fields) != 5 {
		return 0, fmt.Errorf("bad row %q", line)
	}
	var err error
	for i, dst := range []*float64{g, est, real, aware} {
		if *dst, err = strconv.ParseFloat(fields[i], 64); err != nil {
			return i, err
		}
	}
	*mis = fields[4]
	return 5, nil
}

func TestGnuplotEmitters(t *testing.T) {
	cfg, _ := FigureConfig(1, 1, 1)
	cfg.Granularities = []float64{0.2, 1.0}
	points, err := cfg.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	var data bytes.Buffer
	if err := WriteGnuplotData(&data, points); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(data.String()), "\n")
	if len(lines) != 3 { // header + 2 points
		t.Fatalf("data rows = %d", len(lines))
	}
	if got := len(strings.Fields(lines[1])); got != 19 {
		t.Fatalf("columns = %d, want 19", got)
	}
	var script bytes.Buffer
	if err := WriteGnuplotScript(&script, 1, "figure1.dat", 1); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"multiplot", "figure1.dat", "CAFT upper bound", "Average Overhead"} {
		if !strings.Contains(script.String(), want) {
			t.Errorf("script missing %q", want)
		}
	}
	if strings.Contains(script.String(), "%!") {
		t.Errorf("format verb error in script:\n%s", script.String())
	}
}
