package expt

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"caft/internal/core"
)

// TestRunWorkerCountInvariance is the engine's core contract: the same
// Config must produce identical []Point — down to the rendered bytes —
// whether the work units run on one goroutine or many.
func TestRunWorkerCountInvariance(t *testing.T) {
	cfg, _ := FigureConfig(1, 6, 99)
	cfg.Granularities = []float64{0.4, 1.2}

	cfg.Workers = 1
	p1, err := cfg.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	p8, err := cfg.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(p1) != len(p8) {
		t.Fatalf("point counts %d vs %d", len(p1), len(p8))
	}
	for i := range p1 {
		// Compare rendered representations: struct equality would report
		// spurious diffs on NaN fields (empty crash series), where
		// NaN != NaN even for identical points.
		a, b := fmt.Sprintf("%+v", p1[i]), fmt.Sprintf("%+v", p8[i])
		if a != b {
			t.Errorf("point %d differs between workers=1 and workers=8:\n%s\n%s", i, a, b)
		}
	}
	var b1, b8 bytes.Buffer
	if err := WriteGnuplotData(&b1, p1); err != nil {
		t.Fatal(err)
	}
	if err := WriteGnuplotData(&b8, p8); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b8.Bytes()) {
		t.Errorf("rendered data differs:\n%s\nvs\n%s", b1.String(), b8.String())
	}
}

// TestExtrasWorkerCountInvariance pins the same contract for the four
// ablation tables, which share the work-unit engine.
func TestExtrasWorkerCountInvariance(t *testing.T) {
	runners := []struct {
		name string
		fn   func(w io.Writer, graphs int, seed int64, workers int) error
	}{
		{"messages", RunMessages},
		{"ablation", RunAblation},
		{"accuracy", RunAccuracy},
		{"sparse", RunSparse},
	}
	for _, r := range runners {
		var b1, b7 bytes.Buffer
		if err := r.fn(&b1, 2, 5, 1); err != nil {
			t.Fatalf("%s workers=1: %v", r.name, err)
		}
		if err := r.fn(&b7, 2, 5, 7); err != nil {
			t.Fatalf("%s workers=7: %v", r.name, err)
		}
		if !bytes.Equal(b1.Bytes(), b7.Bytes()) {
			t.Errorf("%s output differs between worker counts:\n%s\nvs\n%s", r.name, b1.String(), b7.String())
		}
	}
}

// TestCrashSampleAccounting checks the Point bookkeeping that replaced
// the old conflated `lost++`: every crash draw is either averaged (the
// *cN counts), a genuine task loss, or a replay error — and for the
// resilient default variants nothing is ever lost.
func TestCrashSampleAccounting(t *testing.T) {
	cfg, _ := FigureConfig(2, 5, 17)
	cfg.Granularities = []float64{1.0}
	pts, err := cfg.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	pt := pts[0]
	if pt.FTSAcN != cfg.Graphs || pt.FTBARcN != cfg.Graphs || pt.CAFTcN != cfg.Graphs {
		t.Errorf("resilient variants dropped crash samples: %d/%d/%d of %d",
			pt.FTSAcN, pt.FTBARcN, pt.CAFTcN, cfg.Graphs)
	}
	if pt.TasksLost != 0 || pt.ReplayErrors != 0 {
		t.Errorf("lost=%d replayErrors=%d, want 0/0", pt.TasksLost, pt.ReplayErrors)
	}

	// The unsafe paper-locking ablation loses tasks on a large fraction
	// of ε-crash draws (see package core's doc comment); those draws
	// must land in TasksLost — not in ReplayErrors, and not in the
	// averages.
	cfg.CAFTOpts = core.Options{Greedy: true, Locking: core.PaperLocking}
	pts, err = cfg.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	pt = pts[0]
	if pt.ReplayErrors != 0 {
		t.Errorf("replayErrors = %d, want 0", pt.ReplayErrors)
	}
	wantLost := 3*cfg.Graphs - (pt.FTSAcN + pt.FTBARcN + pt.CAFTcN)
	if pt.TasksLost != wantLost {
		t.Errorf("TasksLost = %d, want %d (samples %d/%d/%d of %d)",
			pt.TasksLost, wantLost, pt.FTSAcN, pt.FTBARcN, pt.CAFTcN, cfg.Graphs)
	}
	if pt.FTSAcN != cfg.Graphs || pt.FTBARcN != cfg.Graphs {
		t.Errorf("FTSA/FTBAR are unaffected by the CAFT ablation: samples %d/%d", pt.FTSAcN, pt.FTBARcN)
	}
}
