package expt

import (
	"bytes"
	"io"
	"strconv"
	"strings"
	"testing"
)

// RunScale's stdout stream must be a pure function of (sizes, graphs,
// seed): identical for any worker count, with the machine-dependent
// wall-clock lines diverted to the timing writer.
func TestRunScaleDeterministicAcrossWorkers(t *testing.T) {
	sizes := []int{20, 40}
	var first []byte
	for _, workers := range []int{1, 8} {
		var buf bytes.Buffer
		if err := RunScale(&buf, io.Discard, sizes, 2, 3, workers); err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = buf.Bytes()
		} else if !bytes.Equal(first, buf.Bytes()) {
			t.Fatalf("scale output differs between -workers 1 and 8:\n%s\nvs\n%s", first, buf.Bytes())
		}
	}
	out := string(first)
	// 2 sizes x 2 policies x 5 algorithms data rows + header comment +
	// column header.
	if got, want := strings.Count(out, "\n"), 2+2*2*5; got != want {
		t.Fatalf("scale output has %d lines, want %d:\n%s", got, want, out)
	}
	for _, needle := range []string{"20\tappend\tHEFT", "40\tinsertion\tFTBAR"} {
		if !strings.Contains(out, needle) {
			t.Errorf("scale output missing row %q:\n%s", needle, out)
		}
	}
	// The fault-tolerant schedulers place at least eps+1 replicas per
	// task; a quick sanity scan of the CAFT rows.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "\tCAFT\t") && strings.HasPrefix(line, "20\t") {
			fields := strings.Split(line, "\t")
			if len(fields) != 6 {
				t.Fatalf("malformed row %q", line)
			}
			reps, err := strconv.ParseFloat(fields[4], 64)
			if err != nil || reps < 40 { // (eps+1) replicas of 20 tasks
				t.Errorf("CAFT replica count %q below (eps+1)*v", fields[4])
			}
		}
	}
	if err := RunScale(io.Discard, io.Discard, nil, 1, 1, 1); err == nil {
		t.Error("empty size sweep accepted")
	}
	if err := RunScale(io.Discard, io.Discard, sizes, -1, 1, 1); err == nil {
		t.Error("negative graph count accepted")
	}
	var timing bytes.Buffer
	if err := RunScale(io.Discard, &timing, []int{15}, 1, 1, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(timing.String(), "sched time/graph") {
		t.Errorf("timing stream missing wall-clock line: %q", timing.String())
	}
}

// TestRunScaleLargeSmoke exercises the large-size path of the sweep —
// bounded candidate probing and the FTBAR skip above scaleFullMax — at
// v=10^4 with a single graph. It runs in -short mode as the CI smoke
// for the 10^5 tail of ScaleSizes: the same code path, two decades
// cheaper.
func TestRunScaleLargeSmoke(t *testing.T) {
	const v = 10000
	if v <= scaleFullMax {
		t.Fatalf("smoke size %d does not reach the bounded-probing regime (scaleFullMax=%d)", v, scaleFullMax)
	}
	var out, timing bytes.Buffer
	if err := RunScale(&out, &timing, []int{v}, 1, 1, 0); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	// FTBAR is dropped above scaleFullMax; everyone else reports.
	if strings.Contains(s, "FTBAR") {
		t.Errorf("FTBAR row present above scaleFullMax:\n%s", s)
	}
	for _, alg := range []string{"HEFT", "CAFT", "FTSA", "HOFT"} {
		for _, pol := range []string{"append", "insertion"} {
			needle := "10000\t" + pol + "\t" + alg
			if !strings.Contains(s, needle) {
				t.Errorf("scale output missing row %q:\n%s", needle, s)
			}
		}
	}
	for _, needle := range []string{"sched time/graph", "allocs/graph"} {
		if !strings.Contains(timing.String(), needle) {
			t.Errorf("timing stream missing %q: %q", needle, timing.String())
		}
	}
}
