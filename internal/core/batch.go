package core

import (
	"fmt"
	"math/rand"

	"caft/internal/dag"
	"caft/internal/sched"
)

// ScheduleBatch runs the windowed variant of CAFT sketched in the
// paper's conclusion: "instead of considering a single task (the one
// with highest priority) and assigning all its replicas to the
// currently best available resources, why not consider say, 10 ready
// tasks, and assign all their replicas in the same decision making
// procedure? The idea would be to design an extension of the one-to-one
// mapping procedure to a set of independent tasks, in order to better
// load balance processor and link usage."
//
// Up to window free tasks (all pairwise independent, since they are
// simultaneously free) are taken in priority order, and their replicas
// are placed in interleaved rounds: round r places the r-th replica of
// every task in the window before any task receives its (r+1)-th
// replica, so the early replicas of all window tasks compete for the
// fast processors on equal footing instead of the first task grabbing
// them all. window = 1 is exactly the greedy CAFT of Algorithm 5.1.
func ScheduleBatch(p *sched.Problem, eps, window int, rng *rand.Rand) (*sched.Schedule, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if eps < 0 || eps+1 > p.Plat.M {
		return nil, fmt.Errorf("caft: cannot place %d replicas on %d processors", eps+1, p.Plat.M)
	}
	if window < 1 {
		return nil, fmt.Errorf("caft: batch window must be positive, got %d", window)
	}
	c := &scheduler{
		st:       sched.NewState(p),
		eps:      eps,
		opts:     Options{Greedy: true},
		m:        p.Plat.M,
		supports: map[repKey]procSet{},
		stats:    &Stats{},
	}
	l := sched.NewLister(p, rng)
	for {
		batch := popBatch(l, window)
		if len(batch) == 0 {
			break
		}
		if err := c.scheduleBatch(batch); err != nil {
			return nil, err
		}
		for _, t := range batch {
			l.MarkScheduled(t, sched.EarliestFinish(c.st.Reps[t]))
		}
	}
	if l.Remaining() != 0 {
		return nil, fmt.Errorf("caft: %d tasks never became free (cyclic graph?)", l.Remaining())
	}
	return c.st.Snapshot(), nil
}

func popBatch(l *sched.Lister, window int) []dag.TaskID {
	var batch []dag.TaskID
	for len(batch) < window {
		t, ok := l.Pop()
		if !ok {
			break
		}
		batch = append(batch, t)
	}
	return batch
}

// batchTask is the per-task round state within a batch.
type batchTask struct {
	t      dag.TaskID
	preds  []dag.Edge
	pools  [][]sched.Replica
	theta  int
	locked procSet
}

func (c *scheduler) scheduleBatch(batch []dag.TaskID) error {
	tasks := make([]*batchTask, 0, len(batch))
	for _, t := range batch {
		bt := &batchTask{t: t, preds: c.st.P.G.Pred(t), locked: newProcSet(c.m)}
		bt.theta = c.eps + 1
		bt.pools = make([][]sched.Replica, len(bt.preds))
		if len(bt.preds) > 0 {
			procCount := map[int]int{}
			for _, e := range bt.preds {
				for _, r := range c.st.Reps[e.From] {
					procCount[r.Proc]++
				}
			}
			for j, e := range bt.preds {
				for _, r := range c.st.Reps[e.From] {
					if procCount[r.Proc] == 1 {
						bt.pools[j] = append(bt.pools[j], r)
					}
				}
				if len(bt.pools[j]) < bt.theta {
					bt.theta = len(bt.pools[j])
				}
			}
		}
		tasks = append(tasks, bt)
	}
	// Interleaved rounds: every task places its r-th replica before any
	// task places its (r+1)-th.
	for copyIdx := 0; copyIdx <= c.eps; copyIdx++ {
		for _, bt := range tasks {
			var po *o2oPlan
			if copyIdx < bt.theta {
				var err error
				if po, err = c.bestOneToOne(bt.t, copyIdx, bt.preds, bt.pools, bt.locked); err != nil {
					return err
				}
			}
			if po != nil {
				if err := c.commitOneToOne(bt.t, copyIdx, po, bt.pools, bt.locked); err != nil {
					return err
				}
				continue
			}
			pf, err := c.bestFull(bt.t, copyIdx, bt.locked)
			if err != nil {
				return err
			}
			if pf == nil {
				return fmt.Errorf("caft: no processor available for replica %d of task %d", copyIdx, bt.t)
			}
			if err := c.commitFull(bt.t, copyIdx, pf, bt.locked); err != nil {
				return err
			}
		}
	}
	return nil
}
