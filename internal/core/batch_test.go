package core

import (
	"math/rand"
	"testing"

	"caft/internal/gen"
	"caft/internal/sim"
)

func TestBatchValidAndResilient(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 4; trial++ {
		p := randomProblem(rng, 40, 8, 1.0)
		for _, window := range []int{1, 4, 10} {
			for _, eps := range []int{1, 2} {
				s, err := ScheduleBatch(p, eps, window, rng)
				if err != nil {
					t.Fatalf("window=%d eps=%d: %v", window, eps, err)
				}
				if err := s.Validate(); err != nil {
					t.Fatalf("window=%d eps=%d: %v", window, eps, err)
				}
				for ti := range s.Reps {
					if len(s.Reps[ti]) != eps+1 {
						t.Fatalf("window=%d: task %d has %d replicas", window, ti, len(s.Reps[ti]))
					}
				}
				for draw := 0; draw < 10; draw++ {
					crashed := map[int]bool{}
					for len(crashed) < eps {
						crashed[rng.Intn(8)] = true
					}
					if _, err := sim.CrashLatency(s, crashed); err != nil {
						t.Fatalf("window=%d eps=%d crashed=%v: %v", window, eps, crashed, err)
					}
				}
			}
		}
	}
}

func TestBatchWindowOneMatchesGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := randomProblem(rng, 40, 8, 1.0)
	sb, err := ScheduleBatch(p, 1, 1, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	sg, _, err := ScheduleOpts(p, 1, rand.New(rand.NewSource(9)), Options{Greedy: true})
	if err != nil {
		t.Fatal(err)
	}
	if sb.ScheduledLatency() != sg.ScheduledLatency() {
		t.Fatalf("window=1 latency %v != greedy %v", sb.ScheduledLatency(), sg.ScheduledLatency())
	}
	if sb.MessageCount() != sg.MessageCount() {
		t.Fatalf("window=1 messages %d != greedy %d", sb.MessageCount(), sg.MessageCount())
	}
}

func TestBatchRejectsBadWindow(t *testing.T) {
	p := uniformProblem(gen.Chain(3, 5), 3, 1)
	if _, err := ScheduleBatch(p, 1, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("accepted window 0")
	}
}
