package core

import (
	"fmt"
	"math/bits"
	"strings"
)

// procSet is a set of processor indices backed by a bit vector. CAFT
// uses it to track the support of a replica — the set of processors
// whose survival the replica's execution depends on — and the locked
// set of Algorithm 5.2.
type procSet struct {
	words []uint64
}

func newProcSet(m int) procSet {
	return procSet{words: make([]uint64, (m+63)/64)}
}

func (s procSet) clone() procSet {
	return procSet{words: append([]uint64(nil), s.words...)}
}

func (s procSet) add(p int) {
	s.words[p/64] |= 1 << (uint(p) % 64)
}

func (s procSet) has(p int) bool {
	return s.words[p/64]&(1<<(uint(p)%64)) != 0
}

// union adds all members of o into s (in place).
func (s procSet) union(o procSet) {
	for i := range o.words {
		s.words[i] |= o.words[i]
	}
}

// intersects reports whether s and o share a member.
func (s procSet) intersects(o procSet) bool {
	n := len(s.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&o.words[i] != 0 {
			return true
		}
	}
	return false
}

func (s procSet) count() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

func (s procSet) String() string {
	var parts []string
	for i, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			parts = append(parts, fmt.Sprintf("P%d", i*64+b))
			w &^= 1 << uint(b)
		}
	}
	return "{" + strings.Join(parts, ",") + "}"
}
