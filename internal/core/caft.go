// Package core implements CAFT, the Contention-Aware Fault-Tolerant
// scheduling algorithm — the primary contribution of Benoit, Hakem,
// Robert, "Realistic Models and Efficient Algorithms for Fault Tolerant
// Scheduling on Heterogeneous Platforms" (INRIA RR-6606 / ICPP 2008).
//
// CAFT schedules a DAG on a heterogeneous platform under the
// bidirectional one-port model while tolerating ε arbitrary fail-silent
// processor failures through active replication (ε+1 replicas per
// task). Its key idea (Algorithms 5.1 and 5.2 of the paper) is the
// one-to-one mapping procedure: whenever the replicas of the current
// task's predecessors are spread over enough "singleton" processors,
// each replica of a predecessor sends its data to exactly one replica of
// the task, rather than to all of them as FTSA and FTBAR do. Processor
// locking (eq. (7)) keeps the replica chains processor-disjoint, which
// is what preserves resilience: ε failures can kill at most ε of the
// ε+1 disjoint chains. When the one-to-one structure is not available,
// CAFT greedily falls back to fully replicated communications for the
// remaining replicas, which are resilient for the same reason as FTSA.
//
// On fork graphs and outforests this yields at most e(ε+1) messages
// (Prop. 5.1) against e(ε+1)² for FTSA/FTBAR — the linear-vs-quadratic
// gap the paper's experiments trace back to network contention.
//
// # Locking modes
//
// The paper's eq. (7) locks only the chosen processor and the
// processors of the immediate heads. While reproducing the algorithm we
// found that this is not sufficient for DAGs of depth ≥ 2: a replica
// fed through a one-to-one chain dies whenever any processor in its
// transitive chain dies, and the chains hanging off two different
// predecessors may share a deep upstream processor even when the
// immediate head processors are distinct. A single crash of that shared
// processor then starves every replica of the task, violating the
// claimed ε-resilience. On the paper's own experimental parameters
// (random graphs, m = 10, ε ∈ {1,3}) the literal rule loses a task on
// 35-100% of random ε-crash draws (see TestPaperLockingGap and
// EXPERIMENTS.md).
//
// The default SupportLocking mode therefore locks the full support of
// the placed replicas — the transitive set of processors each replica's
// survival depends on — restoring the guarantee of Proposition 5.2
// while preserving the one-to-one communication structure (and hence
// Prop. 5.1's message bound, since supports on outforests are exactly
// the disjoint chains). The same bookkeeping repairs the paper's
// intra-processor suppression rule, which is likewise unsafe when the
// co-located replica is chain-fed. PaperLocking implements eq. (7)
// literally and is kept for ablation studies.
//
//caft:deterministic
package core

import (
	"fmt"
	"math"
	"math/rand"

	"caft/internal/dag"
	"caft/internal/sched"
)

// Locking selects how much of a replica chain the one-to-one mapping
// procedure locks.
type Locking int

const (
	// SupportLocking locks the transitive support of every placed
	// replica of the current task (default; guarantees ε-resilience).
	SupportLocking Locking = iota
	// PaperLocking locks only the chosen processor and the immediate
	// head processors, exactly as eq. (7) of the paper. Not resilient on
	// deep graphs; kept for fidelity ablations.
	PaperLocking
)

func (l Locking) String() string {
	if l == PaperLocking {
		return "paper"
	}
	return "support"
}

// Options tunes CAFT variants.
type Options struct {
	Locking Locking
	// Greedy uses one-to-one mapping whenever it is available, exactly
	// as Algorithm 5.1 prescribes, even when fully replicated rounds
	// would produce a better schedule.
	Greedy bool
	// FullOnly disables one-to-one mapping entirely: every replica gets
	// fully replicated inputs (an FTSA-like pattern placed with CAFT's
	// sequential re-probing); used by the A1 ablation.
	FullOnly bool
	//
	// When neither flag is set, CAFT runs both complete schedules — the
	// resilient one-to-one chains are only worth their processor-locking
	// cost in some regimes (they win when communication and computation
	// are balanced, lose under extreme contention on small platforms) —
	// and returns the one with the smaller latency. Both candidates
	// tolerate ε failures, so the portfolio does too.
}

// Stats reports how the replicas of a run were placed.
type Stats struct {
	OneToOneRounds int // replicas placed by One-To-One-Mapping
	FullRounds     int // replicas placed with fully replicated inputs
}

func init() {
	caps := sched.Caps{AcceptsEps: true, Deterministic: true, Append: true, Insertion: true}
	sched.Register(sched.Descriptor{Name: "caft", ID: 1, Caps: caps, New: Schedule})
	sched.Register(sched.Descriptor{
		Name: "caft-greedy", ID: 2, Caps: caps,
		New: func(p *sched.Problem, eps int, rng *rand.Rand) (*sched.Schedule, error) {
			s, _, err := ScheduleOpts(p, eps, rng, Options{Greedy: true})
			return s, err
		},
	})
}

// Schedule runs CAFT with default options, producing a schedule that
// tolerates eps arbitrary fail-stop processor failures. eps = 0 reduces
// to HEFT (paper §6).
func Schedule(p *sched.Problem, eps int, rng *rand.Rand) (*sched.Schedule, error) {
	s, _, err := ScheduleOpts(p, eps, rng, Options{})
	return s, err
}

// ScheduleOpts runs CAFT with explicit options and returns placement
// statistics alongside the schedule.
func ScheduleOpts(p *sched.Problem, eps int, rng *rand.Rand, opts Options) (*sched.Schedule, *Stats, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	if eps < 0 || eps+1 > p.Plat.M {
		return nil, nil, fmt.Errorf("caft: cannot place %d replicas on %d processors", eps+1, p.Plat.M)
	}
	if !opts.Greedy && !opts.FullOnly {
		// Portfolio mode: build both resilient schedules with identical
		// tie-breaking streams and keep the better one.
		seedA, seedB := rng.Int63(), rng.Int63()
		og, of := opts, opts
		og.Greedy, of.FullOnly = true, true
		sg, statsG, err := ScheduleOpts(p, eps, rand.New(rand.NewSource(seedA)), og)
		if err != nil {
			return nil, nil, err
		}
		sf, statsF, err := ScheduleOpts(p, eps, rand.New(rand.NewSource(seedB)), of)
		if err != nil {
			return nil, nil, err
		}
		if sg.ScheduledLatency() <= sf.ScheduledLatency() {
			return sg, statsG, nil
		}
		return sf, statsF, nil
	}
	c := &scheduler{
		st:       sched.NewState(p),
		eps:      eps,
		opts:     opts,
		m:        p.Plat.M,
		allProcs: make([]int, p.Plat.M),
		supports: map[repKey]procSet{},
		stats:    &Stats{},
	}
	for i := range c.allProcs {
		c.allProcs[i] = i
	}
	l := sched.NewLister(p, rng)
	for {
		t, ok := l.Pop()
		if !ok {
			break
		}
		if err := c.scheduleTask(t); err != nil {
			return nil, nil, err
		}
		l.MarkScheduled(t, sched.EarliestFinish(c.st.Reps[t]))
	}
	if l.Remaining() != 0 {
		return nil, nil, fmt.Errorf("caft: %d tasks never became free (cyclic graph?)", l.Remaining())
	}
	return c.st.Snapshot(), c.stats, nil
}

type repKey struct {
	task dag.TaskID
	copy int
}

//caft:confined
type scheduler struct {
	st       *sched.State
	eps      int
	opts     Options
	m        int
	allProcs []int // 0..m-1, the unbounded fallback candidate list
	supports map[repKey]procSet
	stats    *Stats
}

// support returns the set of processors a replica's survival depends
// on. Replicas without a recorded support (fully replicated inputs,
// entry tasks) depend only on their own processor.
func (c *scheduler) support(r sched.Replica) procSet {
	if s, ok := c.supports[repKey{r.Task, r.Copy}]; ok {
		return s
	}
	s := newProcSet(c.m)
	s.add(r.Proc)
	return s
}

// chained reports whether a replica's survival depends on processors
// beyond its own (i.e., it was fed through one-to-one chains).
func (c *scheduler) chained(r sched.Replica) bool {
	s, ok := c.supports[repKey{r.Task, r.Copy}]
	if !ok {
		return false
	}
	return s.count() > 1 || !s.has(r.Proc)
}

// lockFootprint returns the processor set that locking a head replica
// removes from future rounds: its full support under SupportLocking,
// only its own processor under PaperLocking.
func (c *scheduler) lockFootprint(r sched.Replica) procSet {
	if c.opts.Locking == PaperLocking {
		s := newProcSet(c.m)
		s.add(r.Proc)
		return s
	}
	return c.support(r)
}

// scheduleTask places the ε+1 replicas of t. Up to θ replicas are
// placed through the one-to-one mapping procedure (Algorithm 5.2); the
// others receive fully replicated incoming communications (lines 16-20
// of Algorithm 5.1). With FullOnly, θ is forced to zero.
func (c *scheduler) scheduleTask(t dag.TaskID) error {
	st, eps := c.st, c.eps
	preds := st.P.G.Pred(t)

	// Determine the singleton processors X — processors hosting exactly
	// one replica across all predecessors' replica sets — and the pools
	// B̄(tj) of each predecessor's replicas living on them. θ = min λj is
	// the number of one-to-one rounds available (capped at ε+1; entry
	// tasks trivially allow ε+1 "rounds" of plain placement).
	theta := eps + 1
	pools := make([][]sched.Replica, len(preds))
	if len(preds) > 0 {
		procCount := map[int]int{}
		for _, e := range preds {
			for _, r := range st.Reps[e.From] {
				procCount[r.Proc]++
			}
		}
		for j, e := range preds {
			for _, r := range st.Reps[e.From] {
				if procCount[r.Proc] == 1 {
					pools[j] = append(pools[j], r)
				}
			}
			if len(pools[j]) < theta {
				theta = len(pools[j])
			}
		}
	}
	if c.opts.FullOnly {
		theta = 0
	}
	_, err := c.runRounds(t, preds, pools, theta)
	return err
}

// runRounds commits the ε+1 replicas of t: one-to-one mapping for the
// first theta rounds while eligible candidates remain, fully replicated
// rounds otherwise. It returns the sum of the replica finish times.
func (c *scheduler) runRounds(t dag.TaskID, preds []dag.Edge, pools [][]sched.Replica, theta int) (float64, error) {
	locked := newProcSet(c.m)
	for copyIdx := 0; copyIdx <= c.eps; copyIdx++ {
		var po *o2oPlan
		if copyIdx < theta {
			var err error
			if po, err = c.bestOneToOne(t, copyIdx, preds, pools, locked); err != nil {
				return 0, err
			}
		}
		if po != nil {
			if err := c.commitOneToOne(t, copyIdx, po, pools, locked); err != nil {
				return 0, err
			}
			continue
		}
		pf, err := c.bestFull(t, copyIdx, locked)
		if err != nil {
			return 0, err
		}
		if pf == nil {
			return 0, fmt.Errorf("caft: no processor available for replica %d of task %d", copyIdx, t)
		}
		if err := c.commitFull(t, copyIdx, pf, locked); err != nil {
			return 0, err
		}
	}
	sum := 0.0
	for _, r := range c.st.Reps[t] {
		sum += r.Finish
	}
	return sum, nil
}

// headChoice records the source replica selected for one predecessor in
// a one-to-one round.
type headChoice struct {
	rep     sched.Replica
	predIdx int
}

// o2oPlan is the best candidate placement found by One-To-One-Mapping.
type o2oPlan struct {
	proc    int
	heads   []headChoice
	sources []sched.SourceSet
	supp    procSet
	finish  float64
}

// bestOneToOne evaluates One-To-One-Mapping (Algorithm 5.2) on every
// unlocked candidate processor: per predecessor it selects the head
// replica — the pool replica whose message would finish earliest on the
// links (the sort of line 3), or a co-located replica if one exists —
// simulates the mapping and returns the earliest-finishing plan, or nil
// when no candidate is eligible.
func (c *scheduler) bestOneToOne(t dag.TaskID, copyIdx int, preds []dag.Edge, pools [][]sched.Replica, locked procSet) (*o2oPlan, error) {
	st := c.st
	cands := st.Candidates(t, c.eps+1)
	hosting := st.ProcsOf(t)
	remaining := c.eps - copyIdx // replicas still to place after this one
	var best *o2oPlan
	for _, proc := range cands {
		if locked.has(proc) || hosting[proc] {
			continue
		}
		heads, sources, supp, ok := c.planFor(proc, preds, pools, locked, remaining)
		if !ok {
			continue
		}
		rep, err := st.ProbeReplica(t, copyIdx, proc, sources)
		if err != nil {
			return nil, err
		}
		if best == nil || rep.Finish < best.finish {
			best = &o2oPlan{proc: proc, heads: heads, sources: sources, supp: supp, finish: rep.Finish}
		}
	}
	return best, nil
}

// commitOneToOne places the replica of a one-to-one plan, records its
// support, locks P* together with the head footprints (eq. (7)) and
// consumes the pool replicas that became unusable. A locked processor
// can neither host another replica of t nor feed one, so no two
// replicas of t ever share a point of failure.
func (c *scheduler) commitOneToOne(t dag.TaskID, copyIdx int, pl *o2oPlan, pools [][]sched.Replica, locked procSet) error {
	if _, err := c.st.PlaceReplica(t, copyIdx, pl.proc, pl.sources); err != nil {
		return err
	}
	c.stats.OneToOneRounds++
	repSupp := newProcSet(c.m)
	repSupp.add(pl.proc)
	for _, h := range pl.heads {
		repSupp.union(c.support(h.rep))
	}
	c.supports[repKey{t, copyIdx}] = repSupp
	locked.union(pl.supp)
	for j := range pools {
		kept := pools[j][:0]
		for _, r := range pools[j] {
			if !c.lockFootprint(r).intersects(locked) {
				kept = append(kept, r)
			}
		}
		pools[j] = kept
	}
	return nil
}

// planFor builds the one-to-one plan for a candidate processor and
// checks feasibility: after locking the new replica's support, enough
// processors must remain for the outstanding replicas (each needs at
// least one processor outside the locked set). Earliest-arrival heads
// are tried first; if their accumulated support exhausts the processor
// budget, heads are reselected among trivial-support replicas only —
// replicas that die only with their own processor — which keeps the
// replica chains shallow on small platforms.
func (c *scheduler) planFor(proc int, preds []dag.Edge, pools [][]sched.Replica, locked procSet, remaining int) ([]headChoice, []sched.SourceSet, procSet, bool) {
	for _, trivialOnly := range []bool{false, true} {
		heads, sources, ok := c.chooseHeads(proc, preds, pools, locked, trivialOnly)
		if !ok {
			continue
		}
		supp := newProcSet(c.m)
		supp.add(proc)
		for _, h := range heads {
			supp.union(c.lockFootprint(h.rep))
		}
		if c.opts.Locking == SupportLocking {
			after := locked.clone()
			after.union(supp)
			if c.m-after.count() < remaining {
				continue
			}
		}
		return heads, sources, supp, true
	}
	return nil, nil, procSet{}, false
}

// chooseHeads picks, for candidate processor proc, one head replica per
// predecessor: a co-located replica when available (free intra transfer,
// and the only safe edge out of proc per the paper's deadlock example),
// otherwise the eligible singleton-pool replica with the earliest
// tentative message arrival on proc. With trivialOnly, heads are
// restricted to replicas whose support is their own processor. It
// reports false when some predecessor has no eligible head.
func (c *scheduler) chooseHeads(proc int, preds []dag.Edge, pools [][]sched.Replica, locked procSet, trivialOnly bool) ([]headChoice, []sched.SourceSet, bool) {
	st := c.st
	heads := make([]headChoice, 0, len(preds))
	sources := make([]sched.SourceSet, 0, len(preds))
	for j, e := range preds {
		var chosen headChoice
		found := false
		// Prefer the earliest-finishing co-located replica whose own
		// chain is still disjoint from the locked set.
		for _, r := range st.Reps[e.From] {
			if r.Proc != proc || c.lockFootprint(r).intersects(locked) {
				continue
			}
			if trivialOnly && c.chained(r) {
				continue
			}
			if !found || r.Finish < chosen.rep.Finish {
				chosen = headChoice{rep: r, predIdx: j}
				found = true
			}
		}
		if !found {
			bestArr := math.Inf(1)
			for _, r := range pools[j] {
				if c.lockFootprint(r).intersects(locked) {
					continue
				}
				if trivialOnly && c.chained(r) {
					continue
				}
				_, fin := st.ProbeComm(r.Proc, proc, r.Finish, e.Volume)
				if fin < bestArr {
					bestArr = fin
					chosen = headChoice{rep: r, predIdx: j}
					found = true
				}
			}
		}
		if !found {
			return nil, nil, false
		}
		heads = append(heads, chosen)
		sources = append(sources, sched.SourceSet{Pred: e.From, Volume: e.Volume, Sources: []sched.Replica{chosen.rep}})
	}
	return heads, sources, true
}

// fullPlan is the best fully replicated placement for one replica.
type fullPlan struct {
	proc    int
	sources []sched.SourceSet
	supp    procSet
	finish  float64
}

// bestFull evaluates an FTSA-style round: inputs from every replica of
// every predecessor, candidate processors restricted to unlocked ones
// (relaxed to all processors not hosting t if locking exhausted the
// platform), minimum finish time wins.
//
// The paper's intra-suppression rule ("no other copy needs to send to
// P") is only safe as-is when the co-located replica dies exclusively
// with its processor. A co-located replica fed through a one-to-one
// chain can die while P lives. Two safe repairs exist, and the cheaper
// one is taken per predecessor:
//
//   - inherit the chain: keep the suppression and extend this replica's
//     support by the co-located replica's support (zero extra messages,
//     but the support must stay disjoint from the locked set and leave
//     enough processors for later rounds);
//   - AllSend: keep the free intra transfer but let every remote replica
//     of the predecessor send a backup (ε extra messages).
func (c *scheduler) bestFull(t dag.TaskID, copyIdx int, locked procSet) (*fullPlan, error) {
	st := c.st
	base := st.FullSources(t)
	// The run closure below is invoked twice with ProbeReplica calls in
	// between, which recycle the ProcsOf scratch buffer.
	hosting := st.ProcsOfCopy(t)
	remaining := c.eps - copyIdx
	planFor := func(proc int) ([]sched.SourceSet, procSet) {
		out := append([]sched.SourceSet(nil), base...)
		supp := newProcSet(c.m)
		supp.add(proc)
		if c.opts.Locking == PaperLocking {
			return out, supp // literal paper behavior (ablation)
		}
		for i := range out {
			var co *sched.Replica
			for k := range out[i].Sources {
				if out[i].Sources[k].Proc == proc {
					co = &out[i].Sources[k]
					break
				}
			}
			if co == nil || !c.chained(*co) {
				continue
			}
			s := c.support(*co)
			if !s.intersects(locked) {
				after := locked.clone()
				after.union(supp)
				after.union(s)
				if c.m-after.count() >= remaining {
					supp.union(s)
					continue
				}
			}
			out[i].AllSend = true
		}
		return out, supp
	}
	run := func(procs []int, skipLocked bool) (*fullPlan, error) {
		var best *fullPlan
		for _, proc := range procs {
			if hosting[proc] || (skipLocked && locked.has(proc)) {
				continue
			}
			sources, supp := planFor(proc)
			rep, err := st.ProbeReplica(t, copyIdx, proc, sources)
			if err != nil {
				return nil, err
			}
			if best == nil || rep.Finish < best.finish {
				best = &fullPlan{proc: proc, sources: sources, supp: supp, finish: rep.Finish}
			}
		}
		return best, nil
	}
	// Bounded probing first; when it yields nothing, widen to the full
	// processor set before relaxing the lock constraint — bounding must
	// never turn a feasible round infeasible. With ProbeWidth = 0 the
	// candidate list already is the full set and the middle stage is a
	// no-op, preserving the historical two-stage behavior bit-for-bit.
	cands := st.Candidates(t, c.eps+1)
	best, err := run(cands, true)
	if err != nil {
		return nil, err
	}
	if best == nil && len(cands) < c.m {
		if best, err = run(c.allProcs, true); err != nil {
			return nil, err
		}
	}
	if best == nil {
		if best, err = run(c.allProcs, false); err != nil {
			return nil, err
		}
	}
	return best, nil
}

// commitFull places the replica of a fully replicated plan, records its
// support when it inherited a chain, and locks its support.
func (c *scheduler) commitFull(t dag.TaskID, copyIdx int, pl *fullPlan, locked procSet) error {
	if _, err := c.st.PlaceReplica(t, copyIdx, pl.proc, pl.sources); err != nil {
		return err
	}
	c.stats.FullRounds++
	if pl.supp.count() > 1 {
		c.supports[repKey{t, copyIdx}] = pl.supp
	}
	locked.union(pl.supp)
	return nil
}
