package core

import (
	"math"
	"math/rand"
	"testing"

	"caft/internal/dag"
	"caft/internal/gen"
	"caft/internal/platform"
	"caft/internal/sched"
	"caft/internal/sched/ftsa"
	"caft/internal/sched/heft"
	"caft/internal/sim"
	"caft/internal/timeline"
)

func uniformProblem(g *dag.DAG, m int, exec float64) *sched.Problem {
	p := platform.New(m, 1)
	e := platform.NewExecMatrix(g.NumTasks(), m)
	for t := range e {
		for k := range e[t] {
			e[t][k] = exec
		}
	}
	return &sched.Problem{G: g, Plat: p, Exec: e, Model: sched.OnePort, Policy: timeline.Append}
}

func randomProblem(rng *rand.Rand, n, m int, granularity float64) *sched.Problem {
	params := gen.RandomParams{MinTasks: n, MaxTasks: n, MinDegree: 1, MaxDegree: 3, MinVolume: 50, MaxVolume: 150}
	g := gen.RandomLayered(rng, params)
	plat := platform.NewRandom(rng, m, 0.5, 1.0)
	exec := platform.GenExecForGranularity(rng, g, plat, granularity, platform.DefaultHeterogeneity)
	return &sched.Problem{G: g, Plat: plat, Exec: exec, Model: sched.OnePort, Policy: timeline.Append}
}

func TestCAFTValidSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 6; trial++ {
		p := randomProblem(rng, 40, 6, 1.0)
		for _, eps := range []int{0, 1, 2, 3} {
			s, err := Schedule(p, eps, rng)
			if err != nil {
				t.Fatalf("eps=%d: %v", eps, err)
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("eps=%d: invalid schedule: %v", eps, err)
			}
			for ti := range s.Reps {
				if len(s.Reps[ti]) != eps+1 {
					t.Fatalf("eps=%d: task %d has %d replicas", eps, ti, len(s.Reps[ti]))
				}
			}
		}
	}
}

func TestCAFTRejectsImpossible(t *testing.T) {
	p := uniformProblem(gen.Chain(3, 5), 2, 1)
	if _, err := Schedule(p, 2, nil); err == nil {
		t.Fatal("accepted eps+1 > m")
	}
	if _, err := Schedule(p, -1, nil); err == nil {
		t.Fatal("accepted negative eps")
	}
}

// Proposition 5.1: on outforests (in-degree <= 1) CAFT generates at
// most e(ε+1) messages.
func TestProp51OutforestMessageBound(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 12; trial++ {
		n := 10 + rng.Intn(40)
		g := gen.RandomOutForest(rng, n, 1+rng.Intn(2), 0, 50, 150)
		m := 5 + rng.Intn(5)
		plat := platform.NewRandom(rng, m, 0.5, 1.0)
		exec := platform.GenExecForGranularity(rng, g, plat, 1.0, platform.DefaultHeterogeneity)
		p := &sched.Problem{G: g, Plat: plat, Exec: exec, Model: sched.OnePort, Policy: timeline.Append}
		for eps := 0; eps <= 3 && eps+1 <= m; eps++ {
			s, _, err := ScheduleOpts(p, eps, rng, Options{Greedy: true})
			if err != nil {
				t.Fatal(err)
			}
			bound := g.NumEdges() * (eps + 1)
			if got := s.MessageCount(); got > bound {
				t.Fatalf("outforest eps=%d: %d messages > bound e(eps+1)=%d", eps, got, bound)
			}
		}
	}
}

func TestForkMessageBound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := gen.Fork(12, 100)
	p := uniformProblem(g, 8, 50)
	for _, eps := range []int{1, 2, 3} {
		s, _, err := ScheduleOpts(p, eps, rng, Options{Greedy: true})
		if err != nil {
			t.Fatal(err)
		}
		if got, bound := s.MessageCount(), g.NumEdges()*(eps+1); got > bound {
			t.Fatalf("fork eps=%d: %d messages > %d", eps, got, bound)
		}
	}
}

// CAFT optimizes latency, so a single instance may trade a few extra
// messages, but on aggregate it must send clearly fewer messages than
// FTSA's replicate-everywhere pattern.
func TestCAFTFewerMessagesThanFTSA(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, eps := range []int{1, 3} {
		totC, totF := 0, 0
		for trial := 0; trial < 8; trial++ {
			p := randomProblem(rng, 60, 10, 1.0)
			sc, err := Schedule(p, eps, rng)
			if err != nil {
				t.Fatal(err)
			}
			sf, err := ftsa.Schedule(p, eps, rng)
			if err != nil {
				t.Fatal(err)
			}
			if float64(sc.MessageCount()) > 1.15*float64(sf.MessageCount()) {
				t.Fatalf("eps=%d: CAFT %d messages far above FTSA %d", eps, sc.MessageCount(), sf.MessageCount())
			}
			totC += sc.MessageCount()
			totF += sf.MessageCount()
		}
		if totC >= totF {
			t.Fatalf("eps=%d: CAFT total %d messages not below FTSA %d", eps, totC, totF)
		}
	}
}

// The fault-free version of CAFT reduces to HEFT (paper §6).
func TestCAFTZeroEpsEqualsHEFT(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng, 50, 8, 1.0)
		sc, _, err := ScheduleOpts(p, 0, rand.New(rand.NewSource(99)), Options{Greedy: true})
		if err != nil {
			t.Fatal(err)
		}
		sh, err := heft.Schedule(p, rand.New(rand.NewSource(99)))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(sc.ScheduledLatency()-sh.ScheduledLatency()) > sched.Eps {
			t.Fatalf("seed %d: CAFT(0) latency %v != HEFT %v", seed, sc.ScheduledLatency(), sh.ScheduledLatency())
		}
		if sc.MessageCount() != sh.MessageCount() {
			t.Fatalf("seed %d: message counts differ: %d vs %d", seed, sc.MessageCount(), sh.MessageCount())
		}
	}
}

// Heavier randomized resilience stress than the exhaustive test in
// package sim: larger graphs, eps up to 3, random crash subsets.
func TestCAFTResilienceStress(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 5; trial++ {
		m := 8
		p := randomProblem(rng, 50, m, 0.5)
		for _, eps := range []int{1, 2, 3} {
			s, err := Schedule(p, eps, rng)
			if err != nil {
				t.Fatal(err)
			}
			for draw := 0; draw < 30; draw++ {
				crashed := map[int]bool{}
				for len(crashed) < eps {
					crashed[rng.Intn(m)] = true
				}
				if _, err := sim.CrashLatency(s, crashed); err != nil {
					t.Fatalf("eps=%d crashed=%v: %v", eps, crashed, err)
				}
			}
		}
	}
}

// TestPaperLockingGap documents the resilience gap of the literal
// eq. (7) locking rule: on deep random DAGs some single crash starves
// every replica of some task. The support-locking default must survive
// the identical scenarios. (If this test ever fails because the literal
// variant became resilient, the ablation in DESIGN.md should be
// revisited.)
func TestPaperLockingGap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	gapSeen := false
	for trial := 0; trial < 20 && !gapSeen; trial++ {
		m := 5
		p := randomProblem(rng, 22, m, 1.0)
		paper, _, err := ScheduleOpts(p, 1, rand.New(rand.NewSource(11)), Options{Locking: PaperLocking})
		if err != nil {
			t.Fatal(err)
		}
		safe, _, err := ScheduleOpts(p, 1, rand.New(rand.NewSource(11)), Options{Locking: SupportLocking})
		if err != nil {
			t.Fatal(err)
		}
		for proc := 0; proc < m; proc++ {
			crashed := map[int]bool{proc: true}
			if _, err := sim.CrashLatency(safe, crashed); err != nil {
				t.Fatalf("support locking lost a task on single crash: %v", err)
			}
			if _, err := sim.CrashLatency(paper, crashed); err != nil {
				gapSeen = true
			}
		}
	}
	if !gapSeen {
		t.Log("no paper-locking counterexample found in 20 trials (gap is probabilistic)")
	}
}

func TestCAFTStats(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	p := randomProblem(rng, 40, 8, 1.0)
	s, stats, err := ScheduleOpts(p, 2, rng, Options{Greedy: true})
	if err != nil {
		t.Fatal(err)
	}
	total := stats.OneToOneRounds + stats.FullRounds
	if total != s.ReplicaCount() {
		t.Fatalf("stats rounds %d != replicas %d", total, s.ReplicaCount())
	}
	if stats.OneToOneRounds == 0 {
		t.Fatal("one-to-one mapping never fired on a random graph")
	}
}

// On a fork, every leaf's replicas receive from distinct root replicas:
// the chains are exactly disjoint pairs and the upper bound stays close
// to the zero-crash latency (paper: "we keep only the best
// communication edges in the schedule").
func TestCAFTForkChainsDisjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := gen.Fork(6, 100)
	p := uniformProblem(g, 8, 50)
	s, _, err := ScheduleOpts(p, 1, rng, Options{Greedy: true})
	if err != nil {
		t.Fatal(err)
	}
	// For each leaf, collect the source copies feeding each replica:
	// they must be distinct (one-to-one).
	for leaf := 1; leaf <= 6; leaf++ {
		feeders := map[int]map[int]bool{} // dst copy -> src copies
		for _, c := range s.Comms {
			if int(c.To) != leaf {
				continue
			}
			if feeders[c.DstCopy] == nil {
				feeders[c.DstCopy] = map[int]bool{}
			}
			feeders[c.DstCopy][c.SrcCopy] = true
		}
		used := map[int]bool{}
		for dst, srcs := range feeders {
			if len(srcs) != 1 {
				t.Fatalf("leaf %d copy %d fed by %d root replicas, want 1", leaf, dst, len(srcs))
			}
			for src := range srcs {
				if used[src] {
					t.Fatalf("leaf %d: root copy %d feeds two replicas", leaf, src)
				}
				used[src] = true
			}
		}
	}
}

func TestLockingString(t *testing.T) {
	if SupportLocking.String() != "support" || PaperLocking.String() != "paper" {
		t.Error("Locking.String broken")
	}
}

func TestProcSet(t *testing.T) {
	s := newProcSet(70)
	s.add(3)
	s.add(69)
	if !s.has(3) || !s.has(69) || s.has(4) {
		t.Fatal("procSet membership broken")
	}
	if s.count() != 2 {
		t.Fatalf("count = %d", s.count())
	}
	o := newProcSet(70)
	o.add(68)
	if s.intersects(o) {
		t.Fatal("disjoint sets intersect")
	}
	o.add(69)
	if !s.intersects(o) {
		t.Fatal("overlapping sets do not intersect")
	}
	c := s.clone()
	c.add(5)
	if s.has(5) {
		t.Fatal("clone aliases original")
	}
	s.union(o)
	if !s.has(68) {
		t.Fatal("union missed a member")
	}
	if got := newProcSet(4).String(); got != "{}" {
		t.Fatalf("empty set string = %q", got)
	}
	one := newProcSet(4)
	one.add(2)
	if one.String() != "{P2}" {
		t.Fatalf("String = %q", one.String())
	}
}

// Exhaustive resilience at eps=3: every crash subset of size <= 3 on a
// 6-processor platform must leave at least one replica of every task.
func TestCAFTResilienceExhaustiveEps3(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 3; trial++ {
		const m = 6
		p := randomProblem(rng, 30, m, 1.0)
		s, err := Schedule(p, 3, rng)
		if err != nil {
			t.Fatal(err)
		}
		var rec func(start int, cur []int)
		rec = func(start int, cur []int) {
			if len(cur) > 0 {
				crashed := map[int]bool{}
				for _, proc := range cur {
					crashed[proc] = true
				}
				if _, err := sim.CrashLatency(s, crashed); err != nil {
					t.Fatalf("crashed=%v: %v", cur, err)
				}
			}
			if len(cur) == 3 {
				return
			}
			for proc := start; proc < m; proc++ {
				rec(proc+1, append(cur, proc))
			}
		}
		rec(0, nil)
	}
}

// The batch variant shares the resilience guarantee under exhaustive
// single and double crashes.
func TestBatchResilienceExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	const m = 6
	p := randomProblem(rng, 30, m, 1.0)
	s, err := ScheduleBatch(p, 2, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < m; a++ {
		for b := a; b < m; b++ {
			if _, err := sim.CrashLatency(s, map[int]bool{a: true, b: true}); err != nil {
				t.Fatalf("crash {%d,%d}: %v", a, b, err)
			}
		}
	}
}
