package timeline

import (
	"reflect"
	"testing"
)

// TestIntervalsAliasingContract pins the //caft:scratch contract on
// Timeline.Intervals: the returned slice aliases internal storage and
// is invalidated by Add/Remove/UndoAdd, while IntervalsCopy survives
// them. Remove is used as the mutator because it always shifts the
// backing array in place (Add may grow and reallocate it).
func TestIntervalsAliasingContract(t *testing.T) {
	var tl Timeline
	tl.MustAdd(0, 2, 1)  // [0,2)
	tl.MustAdd(4, 2, 3)  // [4,6)
	tl.MustAdd(10, 2, 2) // [10,12)

	aliased := tl.Intervals()
	copied := tl.IntervalsCopy()
	if !reflect.DeepEqual(aliased, copied) {
		t.Fatalf("Intervals = %v, IntervalsCopy = %v; want equal before mutation", aliased, copied)
	}
	want := append([]Interval(nil), copied...)

	if !tl.Remove(4, 3) {
		t.Fatal("Remove(4, 3) failed")
	}

	if !reflect.DeepEqual(copied, want) {
		t.Errorf("IntervalsCopy result changed by Remove: %v, want %v", copied, want)
	}
	// The stale slice keeps its length but Remove shifted the tail left
	// underneath it: index 1 now holds [10,12), not [4,6).
	if reflect.DeepEqual(aliased, want) {
		t.Errorf("stale Intervals slice unchanged by Remove; expected in-place invalidation, got %v", aliased)
	}
	live := tl.Intervals()
	if !reflect.DeepEqual(aliased[:len(live)], live) {
		t.Errorf("stale Intervals slice %v does not alias live view %v", aliased, live)
	}

	// Re-adding restores the original set; a fresh copy matches the
	// pinned snapshot again.
	tl.MustAdd(4, 2, 3)
	if got := tl.IntervalsCopy(); !reflect.DeepEqual(got, want) {
		t.Errorf("IntervalsCopy after re-Add = %v, want %v", got, want)
	}
}
