package timeline

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptyTimeline(t *testing.T) {
	var tl Timeline
	if tl.Ready() != 0 {
		t.Errorf("Ready = %v, want 0", tl.Ready())
	}
	if s := tl.EarliestSlot(5, 3, Append); s != 5 {
		t.Errorf("EarliestSlot = %v, want 5", s)
	}
	if s := tl.EarliestSlot(5, 3, Insertion); s != 5 {
		t.Errorf("EarliestSlot insertion = %v, want 5", s)
	}
}

func TestAppendPolicyIgnoresGaps(t *testing.T) {
	var tl Timeline
	tl.MustAdd(0, 2, 1)
	tl.MustAdd(10, 2, 2)
	// A 3-unit job ready at 0 fits in the [2,10) gap, but Append must
	// place it after 12.
	if s := tl.EarliestSlot(0, 3, Append); s != 12 {
		t.Errorf("append slot = %v, want 12", s)
	}
	if s := tl.EarliestSlot(0, 3, Insertion); s != 2 {
		t.Errorf("insertion slot = %v, want 2", s)
	}
}

func TestInsertionTightGap(t *testing.T) {
	var tl Timeline
	tl.MustAdd(0, 2, 1)
	tl.MustAdd(5, 5, 2)
	// Gap [2,5): a 3-unit job exactly fits.
	if s := tl.EarliestSlot(0, 3, Insertion); s != 2 {
		t.Errorf("slot = %v, want 2", s)
	}
	// A 4-unit job does not fit; must go after 10.
	if s := tl.EarliestSlot(0, 4, Insertion); s != 10 {
		t.Errorf("slot = %v, want 10", s)
	}
	// Ready time inside the gap shrinks it.
	if s := tl.EarliestSlot(3, 3, Insertion); s != 10 {
		t.Errorf("slot = %v, want 10", s)
	}
}

func TestAddRejectsOverlap(t *testing.T) {
	var tl Timeline
	tl.MustAdd(2, 4, 1) // [2,6)
	cases := [][2]float64{{0, 3}, {3, 1}, {5, 10}, {2, 4}}
	for _, c := range cases {
		if err := tl.Add(c[0], c[1], 9); err == nil {
			t.Errorf("Add(%v,%v) accepted overlapping interval", c[0], c[1])
		}
	}
	// Touching boundaries are fine (half-open intervals).
	if err := tl.Add(6, 1, 2); err != nil {
		t.Errorf("Add(6,1) rejected: %v", err)
	}
	if err := tl.Add(0, 2, 3); err != nil {
		t.Errorf("Add(0,2) rejected: %v", err)
	}
	if err := tl.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestZeroDurationReservation(t *testing.T) {
	var tl Timeline
	tl.MustAdd(3, 0, 1)
	if tl.Len() != 1 {
		t.Fatal("zero-duration reservation dropped")
	}
	if err := tl.Add(3, 0, 2); err != nil {
		t.Errorf("second zero-duration at same point rejected: %v", err)
	}
	if tl.Ready() != 3 {
		t.Errorf("Ready = %v, want 3", tl.Ready())
	}
}

func TestRemove(t *testing.T) {
	var tl Timeline
	tl.MustAdd(0, 2, 1)
	tl.MustAdd(2, 2, 2)
	tl.MustAdd(4, 2, 3)
	if !tl.Remove(2, 2) {
		t.Fatal("Remove(2,2) failed")
	}
	if tl.Remove(2, 2) {
		t.Fatal("Remove(2,2) succeeded twice")
	}
	if tl.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tl.Len())
	}
	if err := tl.Add(2, 2, 9); err != nil {
		t.Errorf("gap not reusable after Remove: %v", err)
	}
}

func TestRemoveDisambiguatesByOwner(t *testing.T) {
	var tl Timeline
	tl.MustAdd(5, 0, 1)
	tl.MustAdd(5, 0, 2)
	if !tl.Remove(5, 2) {
		t.Fatal("Remove by owner failed")
	}
	if tl.Len() != 1 || tl.Intervals()[0].Owner != 1 {
		t.Fatalf("wrong interval removed: %+v", tl.Intervals())
	}
}

func TestClone(t *testing.T) {
	var tl Timeline
	tl.MustAdd(0, 1, 1)
	c := tl.Clone()
	c.MustAdd(5, 1, 2)
	if tl.Len() != 1 || c.Len() != 2 {
		t.Fatalf("clone not independent: %d vs %d", tl.Len(), c.Len())
	}
}

func TestUtilization(t *testing.T) {
	var tl Timeline
	tl.MustAdd(0, 2, 1)
	tl.MustAdd(8, 4, 2)
	if u := tl.Utilization(10); u != 0.4 { // 2 + 2 of [8,10)
		t.Errorf("Utilization(10) = %v, want 0.4", u)
	}
	if u := tl.Utilization(0); u != 0 {
		t.Errorf("Utilization(0) = %v, want 0", u)
	}
}

func TestNegativeDuration(t *testing.T) {
	var tl Timeline
	if err := tl.Add(0, -1, 1); err == nil {
		t.Error("Add accepted negative duration")
	}
	defer func() {
		if recover() == nil {
			t.Error("EarliestSlot accepted negative duration")
		}
	}()
	tl.EarliestSlot(0, -1, Append)
}

func TestPolicyString(t *testing.T) {
	if Append.String() != "append" || Insertion.String() != "insertion" {
		t.Error("Policy.String broken")
	}
	if Policy(9).String() == "" {
		t.Error("unknown policy should still stringify")
	}
}

// Property: any sequence of EarliestSlot+Add under either policy keeps
// the timeline valid, and the returned slots never precede the ready
// argument.
func TestQuickReservationsStayValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var tl Timeline
		pol := Policy(rng.Intn(2))
		for i := 0; i < 60; i++ {
			ready := rng.Float64() * 50
			dur := rng.Float64() * 10
			s := tl.EarliestSlot(ready, dur, pol)
			if s < ready {
				return false
			}
			if err := tl.Add(s, dur, int32(i)); err != nil {
				return false
			}
		}
		return tl.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// referenceEarliestInsertion is the pre-gap-index Insertion scan over
// the full interval list, kept as the oracle for the indexed search.
func referenceEarliestInsertion(tl *Timeline, ready, dur float64) float64 {
	start := ready
	for _, iv := range tl.Intervals() {
		if iv.End == iv.Start || iv.End <= start {
			continue
		}
		if start+dur <= iv.Start {
			return start
		}
		start = iv.End
	}
	return start
}

// randomTimeline grows a timeline with a mix of feasible reservations
// and zero-length markers.
func randomTimeline(rng *rand.Rand, n int) *Timeline {
	var tl Timeline
	for i := 0; i < n; i++ {
		ready := rng.Float64() * 80
		dur := rng.Float64() * 6
		if rng.Intn(5) == 0 {
			dur = 0
		}
		pol := Policy(rng.Intn(2))
		tl.MustAdd(tl.EarliestSlot(ready, dur, pol), dur, int32(i))
	}
	return &tl
}

// Property: the gap-indexed Insertion search returns exactly what the
// full interval scan returns, on timelines that mix policies and
// zero-length markers.
func TestQuickGapIndexMatchesScan(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tl := randomTimeline(rng, 40)
		if err := tl.Validate(); err != nil {
			t.Log(err)
			return false
		}
		for i := 0; i < 40; i++ {
			ready := rng.Float64() * 120
			dur := rng.Float64() * 10
			if got, want := tl.EarliestSlot(ready, dur, Insertion), referenceEarliestInsertion(tl, ready, dur); got != want {
				t.Logf("EarliestSlot(%v,%v) = %v, reference scan %v", ready, dur, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: a journaled batch of Adds followed by UndoAdds in reverse
// order restores the timeline bit for bit — intervals, ready time and
// gap index.
func TestQuickUndoAddRestoresExactly(t *testing.T) {
	type entry struct {
		start, prevMax float64
		owner          int32
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tl := randomTimeline(rng, 25)
		before := tl.Clone()
		var journal []entry
		for i := 0; i < 15; i++ {
			ready := rng.Float64() * 100
			dur := rng.Float64() * 8
			if rng.Intn(6) == 0 {
				dur = 0
			}
			s := tl.EarliestSlot(ready, dur, Policy(rng.Intn(2)))
			journal = append(journal, entry{start: s, prevMax: tl.Ready(), owner: int32(1000 + i)})
			tl.MustAdd(s, dur, 1000+int32(i))
		}
		if err := tl.Validate(); err != nil {
			t.Log(err)
			return false
		}
		for i := len(journal) - 1; i >= 0; i-- {
			tl.UndoAdd(journal[i].start, journal[i].owner, journal[i].prevMax)
		}
		if err := tl.Validate(); err != nil {
			t.Log(err)
			return false
		}
		if tl.Ready() != before.Ready() || tl.Len() != before.Len() {
			return false
		}
		for i, iv := range tl.Intervals() {
			if iv != before.Intervals()[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestUndoAddUnknownPanics(t *testing.T) {
	var tl Timeline
	tl.MustAdd(0, 2, 1)
	defer func() {
		if recover() == nil {
			t.Error("UndoAdd of a missing reservation did not panic")
		}
	}()
	tl.UndoAdd(5, 9, 0)
}

// Property: insertion policy never yields a later slot than append.
func TestQuickInsertionNoWorseThanAppend(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var tl Timeline
		for i := 0; i < 30; i++ {
			s := tl.EarliestSlot(rng.Float64()*100, rng.Float64()*5, Append)
			tl.MustAdd(s, rng.Float64()*5, int32(i))
		}
		for i := 0; i < 20; i++ {
			ready := rng.Float64() * 100
			dur := rng.Float64() * 8
			ins := tl.EarliestSlot(ready, dur, Insertion)
			app := tl.EarliestSlot(ready, dur, Append)
			if ins > app {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
