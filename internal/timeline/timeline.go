// Package timeline implements exclusive-use resource timelines: sorted
// lists of non-overlapping busy intervals representing the occupation of
// a processor, a communication port or a network link.
//
// Two reservation policies are provided, matching the two classic
// list-scheduling variants:
//
//   - Append: a new reservation may only start at or after the ready time
//     of the resource (the maximum finish time of the reservations already
//     placed). This matches the ready-time formulation of the paper's
//     equations (4)-(6): R(l), SF(P), RF(P) are "the time the resource is
//     free again".
//   - Insertion: a new reservation may fill an idle gap between existing
//     reservations if the gap is long enough (HEFT-style insertion-based
//     policy).
//
// Alongside the interval list the timeline maintains a gap index: the
// sorted list of maximal free intervals between positive-length
// reservations. EarliestSlot under the Insertion policy binary-searches
// that index instead of scanning the full interval list, and the index
// is kept incrementally up to date by Add, Remove and UndoAdd.
//
// UndoAdd is the rollback half of a journaled reservation: callers that
// probe speculatively record (start, owner, previous ready time) for
// every Add and undo them in reverse order, restoring the timeline —
// intervals, ready time and gap index — to its exact prior state.
//
// The zero value of Timeline is an empty, ready-to-use timeline.
//
//caft:deterministic
package timeline

import (
	"fmt"
	"sort"
)

// Policy selects how EarliestSlot searches for a feasible start time.
type Policy int

const (
	// Append schedules strictly after the last existing reservation.
	Append Policy = iota
	// Insertion may fill idle gaps between existing reservations.
	Insertion
)

//caft:zeroalloc
func (p Policy) String() string {
	switch p {
	case Append:
		return "append"
	case Insertion:
		return "insertion"
	default:
		return fmt.Sprintf("Policy(%d)", int(p)) //caft:alloc-ok out-of-range debug rendering; unreachable for the defined policies
	}
}

// Interval is a half-open busy interval [Start, End) tagged with an
// opaque owner ID (task replica index or communication index) used for
// debugging and for validation reports.
type Interval struct {
	Start, End float64
	Owner      int32
}

// gap is a maximal free interval [start, end) between two consecutive
// positive-length reservations (or before the first one, starting at 0).
// Free time after the last positive reservation is represented by posEnd,
// not by a gap.
type gap struct {
	start, end float64
}

// Timeline is a sorted set of non-overlapping busy intervals.
//
//caft:confined
type Timeline struct {
	ivs    []Interval
	maxEnd float64
	// gap index: gaps are sorted and disjoint (both starts and ends are
	// strictly increasing, since positive reservations are disjoint);
	// posEnd is the end of the last positive-length reservation. The
	// index ignores zero-length markers, exactly as the Insertion scan
	// does.
	gaps   []gap
	posEnd float64
}

// Len returns the number of reservations.
func (tl *Timeline) Len() int { return len(tl.ivs) }

// Intervals returns the reservations in start order. The returned slice
// aliases internal storage and must not be modified.
//
//caft:scratch safe=IntervalsCopy
func (tl *Timeline) Intervals() []Interval { return tl.ivs }

// IntervalsCopy returns a freshly allocated copy of Intervals, safe to
// retain across Add/Remove/UndoAdd.
func (tl *Timeline) IntervalsCopy() []Interval { return append([]Interval(nil), tl.ivs...) }

// Ready returns the latest reservation end (0 when empty): the
// resource's ready time under the Append policy, i.e. the paper's
// R(l) / SF(P) / RF(P).
//
//caft:zeroalloc
func (tl *Timeline) Ready() float64 {
	return tl.maxEnd
}

// EarliestSlot returns the earliest start >= ready at which a
// reservation of length dur fits under the given policy. dur may be
// zero, in which case ready is feasible anywhere.
//
//caft:zeroalloc
func (tl *Timeline) EarliestSlot(ready, dur float64, pol Policy) float64 {
	if dur < 0 {
		panic("timeline: negative duration")
	}
	if pol == Append || len(tl.ivs) == 0 {
		if r := tl.Ready(); r > ready {
			return r
		}
		return ready
	}
	// Insertion: gap ends are strictly increasing, so binary-search the
	// first gap that ends after ready and scan from there. Zero-length
	// reservations are ordering markers, occupy no time and are absent
	// from the index, so they neither close gaps nor push the candidate
	// start.
	i := sort.Search(len(tl.gaps), func(i int) bool { return tl.gaps[i].end > ready })
	for ; i < len(tl.gaps); i++ {
		s := tl.gaps[i].start
		if ready > s {
			s = ready
		}
		if s+dur <= tl.gaps[i].end {
			return s
		}
	}
	if ready > tl.posEnd {
		return ready
	}
	return tl.posEnd
}

// Add reserves [start, start+dur) for owner. It returns an error if the
// new interval overlaps an existing reservation (callers must use
// EarliestSlot to find feasible starts). Zero-duration reservations are
// accepted and kept anywhere — they occupy no time and act as ordering
// markers; symmetrically, a positive reservation may span existing
// markers. The symmetry matters for rebuilding a timeline from its
// interval list (sched.StateOf): re-adding intervals in start order
// must accept exactly the states the incremental path can reach.
//
//caft:zeroalloc
func (tl *Timeline) Add(start, dur float64, owner int32) error {
	if dur < 0 {
		return fmt.Errorf("timeline: negative duration %v", dur) //caft:alloc-ok rejection path; the accept path allocates nothing
	}
	end := start + dur
	i := sort.Search(len(tl.ivs), func(i int) bool { return tl.ivs[i].Start >= start })
	// Check overlap against positive-length neighbors; zero-length
	// intervals — existing or being added — are markers and never
	// conflict. Positive intervals are pairwise disjoint and
	// start-sorted, so the nearest positive one on each side decides.
	for j := i - 1; dur > 0 && j >= 0; j-- {
		if tl.ivs[j].End == tl.ivs[j].Start {
			continue
		}
		if tl.ivs[j].End > start {
			return fmt.Errorf("timeline: [%v,%v) overlaps [%v,%v)", start, end, tl.ivs[j].Start, tl.ivs[j].End) //caft:alloc-ok rejection path; the accept path allocates nothing
		}
		break
	}
	for j := i; dur > 0 && j < len(tl.ivs) && tl.ivs[j].Start < end; j++ {
		if tl.ivs[j].End > tl.ivs[j].Start {
			return fmt.Errorf("timeline: [%v,%v) overlaps [%v,%v)", start, end, tl.ivs[j].Start, tl.ivs[j].End) //caft:alloc-ok rejection path; the accept path allocates nothing
		}
	}
	tl.ivs = append(tl.ivs, Interval{})
	copy(tl.ivs[i+1:], tl.ivs[i:])
	tl.ivs[i] = Interval{Start: start, End: end, Owner: owner}
	if end > tl.maxEnd {
		tl.maxEnd = end
	}
	if dur > 0 {
		tl.gapsOnAdd(start, end)
	}
	return nil
}

// gapsOnAdd carves the positive reservation [start, end) out of the gap
// index. The reservation is known not to overlap any positive interval.
//
//caft:zeroalloc
func (tl *Timeline) gapsOnAdd(start, end float64) {
	if start >= tl.posEnd {
		// Tail region: a new gap opens between the previous last positive
		// end and the reservation. Its end exceeds every indexed gap's,
		// so appending keeps the index sorted.
		if start > tl.posEnd {
			tl.gaps = append(tl.gaps, gap{tl.posEnd, start})
		}
		tl.posEnd = end
		return
	}
	// Interior: the reservation lies inside exactly one gap; split it.
	i := sort.Search(len(tl.gaps), func(i int) bool { return tl.gaps[i].end > start })
	if i >= len(tl.gaps) || tl.gaps[i].start > start || tl.gaps[i].end < end {
		panic(fmt.Sprintf("timeline: gap index lost [%v,%v)", start, end)) //caft:alloc-ok invariant-violation panic, unreachable on consistent state
	}
	g := tl.gaps[i]
	left, right := gap{g.start, start}, gap{end, g.end}
	switch {
	case left.start < left.end && right.start < right.end:
		tl.gaps = append(tl.gaps, gap{})
		copy(tl.gaps[i+1:], tl.gaps[i:])
		tl.gaps[i], tl.gaps[i+1] = left, right
	case left.start < left.end:
		tl.gaps[i] = left
	case right.start < right.end:
		tl.gaps[i] = right
	default:
		tl.gaps = append(tl.gaps[:i], tl.gaps[i+1:]...)
	}
}

// gapsOnRemove re-merges the free space exposed by deleting the positive
// reservation at index i of the interval list (not yet spliced out).
//
//caft:zeroalloc
func (tl *Timeline) gapsOnRemove(i int) {
	iv := tl.ivs[i]
	// Nearest positive neighbors; zero-length markers in between are
	// transparent to the index.
	prevEnd := 0.0
	for j := i - 1; j >= 0; j-- {
		if tl.ivs[j].End > tl.ivs[j].Start {
			prevEnd = tl.ivs[j].End
			break
		}
	}
	hasNext := false
	for j := i + 1; j < len(tl.ivs); j++ {
		if tl.ivs[j].End > tl.ivs[j].Start {
			hasNext = true
			break
		}
	}
	if !hasNext {
		// iv was the last positive reservation: the gap before it (if
		// any) and the reservation itself dissolve into the tail.
		if n := len(tl.gaps); n > 0 && tl.gaps[n-1].end == iv.Start {
			tl.gaps = tl.gaps[:n-1]
		}
		tl.posEnd = prevEnd
		return
	}
	merged := gap{iv.Start, iv.End}
	j := sort.Search(len(tl.gaps), func(j int) bool { return tl.gaps[j].end >= iv.Start })
	lo, hi := j, j // gaps[lo:hi] will be replaced by merged
	if j < len(tl.gaps) && tl.gaps[j].end == iv.Start {
		merged.start = tl.gaps[j].start
		hi = j + 1
	}
	if hi < len(tl.gaps) && tl.gaps[hi].start == iv.End {
		merged.end = tl.gaps[hi].end
		hi++
	}
	if lo == hi {
		tl.gaps = append(tl.gaps, gap{})
		copy(tl.gaps[lo+1:], tl.gaps[lo:])
		tl.gaps[lo] = merged
	} else {
		tl.gaps[lo] = merged
		tl.gaps = append(tl.gaps[:lo+1], tl.gaps[hi:]...)
	}
}

// deleteAt removes the reservation at index i, maintaining the gap
// index. The caller fixes maxEnd.
//
//caft:zeroalloc
func (tl *Timeline) deleteAt(i int) {
	if tl.ivs[i].End > tl.ivs[i].Start {
		tl.gapsOnRemove(i)
	}
	tl.ivs = append(tl.ivs[:i], tl.ivs[i+1:]...)
}

// MustAdd is Add that panics on overlap; used where feasibility was just
// established with EarliestSlot.
//
//caft:zeroalloc
func (tl *Timeline) MustAdd(start, dur float64, owner int32) {
	if err := tl.Add(start, dur, owner); err != nil {
		panic(err)
	}
}

// Remove deletes the reservation starting exactly at start with the
// given owner; it reports whether a matching reservation was found.
func (tl *Timeline) Remove(start float64, owner int32) bool {
	i := sort.Search(len(tl.ivs), func(i int) bool { return tl.ivs[i].Start >= start })
	for ; i < len(tl.ivs) && tl.ivs[i].Start == start; i++ {
		if tl.ivs[i].Owner == owner {
			tl.deleteAt(i)
			tl.maxEnd = 0
			for _, iv := range tl.ivs {
				if iv.End > tl.maxEnd {
					tl.maxEnd = iv.End
				}
			}
			return true
		}
	}
	return false
}

// UndoAdd rolls back a journaled Add: it removes the reservation
// (start, owner) and restores the ready time to prevMax, the value
// Ready() returned immediately before that Add. Journaled reservations
// must be undone in reverse order of addition, which is what makes the
// O(n) ready-time rescan of Remove unnecessary. It panics if no such
// reservation exists — a rollback journal referencing a missing
// reservation is state corruption, not a recoverable condition.
//
//caft:zeroalloc
func (tl *Timeline) UndoAdd(start float64, owner int32, prevMax float64) {
	i := sort.Search(len(tl.ivs), func(i int) bool { return tl.ivs[i].Start >= start })
	for ; i < len(tl.ivs) && tl.ivs[i].Start == start; i++ {
		if tl.ivs[i].Owner == owner {
			tl.deleteAt(i)
			tl.maxEnd = prevMax
			return
		}
	}
	panic(fmt.Sprintf("timeline: UndoAdd of unknown reservation (%v, owner %d)", start, owner)) //caft:alloc-ok invariant-violation panic, unreachable on consistent state
}

// Clone returns a deep copy.
func (tl *Timeline) Clone() *Timeline {
	c := &Timeline{ivs: make([]Interval, len(tl.ivs)), maxEnd: tl.maxEnd, posEnd: tl.posEnd}
	copy(c.ivs, tl.ivs)
	if len(tl.gaps) > 0 {
		c.gaps = make([]gap, len(tl.gaps))
		copy(c.gaps, tl.gaps)
	}
	return c
}

// Validate checks ordering and non-overlap among positive-length
// intervals (zero-length markers may sit anywhere), and that the gap
// index matches the interval list exactly.
func (tl *Timeline) Validate() error {
	prevEnd := 0.0
	hasPrev := false
	var wantGaps []gap
	for i := range tl.ivs {
		if tl.ivs[i].End == tl.ivs[i].Start {
			continue
		}
		if hasPrev && tl.ivs[i].Start < prevEnd {
			return fmt.Errorf("timeline: interval %d [%v,%v) overlaps a predecessor ending at %v",
				i, tl.ivs[i].Start, tl.ivs[i].End, prevEnd)
		}
		if tl.ivs[i].Start > prevEnd {
			wantGaps = append(wantGaps, gap{prevEnd, tl.ivs[i].Start})
		}
		prevEnd, hasPrev = tl.ivs[i].End, true
	}
	if tl.posEnd != prevEnd {
		return fmt.Errorf("timeline: gap index posEnd %v, want %v", tl.posEnd, prevEnd)
	}
	if len(wantGaps) != len(tl.gaps) {
		return fmt.Errorf("timeline: gap index holds %d gaps, want %d", len(tl.gaps), len(wantGaps))
	}
	for i := range wantGaps {
		if tl.gaps[i] != wantGaps[i] {
			return fmt.Errorf("timeline: gap %d is [%v,%v), want [%v,%v)",
				i, tl.gaps[i].start, tl.gaps[i].end, wantGaps[i].start, wantGaps[i].end)
		}
	}
	return nil
}

// Utilization returns the fraction of [0, horizon) covered by
// reservations; 0 if horizon <= 0.
func (tl *Timeline) Utilization(horizon float64) float64 {
	if horizon <= 0 {
		return 0
	}
	busy := 0.0
	for _, iv := range tl.ivs {
		s, e := iv.Start, iv.End
		if s >= horizon {
			break
		}
		if e > horizon {
			e = horizon
		}
		busy += e - s
	}
	return busy / horizon
}
