// Package timeline implements exclusive-use resource timelines: sorted
// lists of non-overlapping busy intervals representing the occupation of
// a processor, a communication port or a network link.
//
// Two reservation policies are provided, matching the two classic
// list-scheduling variants:
//
//   - Append: a new reservation may only start at or after the ready time
//     of the resource (the maximum finish time of the reservations already
//     placed). This matches the ready-time formulation of the paper's
//     equations (4)-(6): R(l), SF(P), RF(P) are "the time the resource is
//     free again".
//   - Insertion: a new reservation may fill an idle gap between existing
//     reservations if the gap is long enough (HEFT-style insertion-based
//     policy).
//
// The zero value of Timeline is an empty, ready-to-use timeline.
package timeline

import (
	"fmt"
	"sort"
)

// Policy selects how EarliestSlot searches for a feasible start time.
type Policy int

const (
	// Append schedules strictly after the last existing reservation.
	Append Policy = iota
	// Insertion may fill idle gaps between existing reservations.
	Insertion
)

func (p Policy) String() string {
	switch p {
	case Append:
		return "append"
	case Insertion:
		return "insertion"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Interval is a half-open busy interval [Start, End) tagged with an
// opaque owner ID (task replica index or communication index) used for
// debugging and for validation reports.
type Interval struct {
	Start, End float64
	Owner      int32
}

// Timeline is a sorted set of non-overlapping busy intervals.
type Timeline struct {
	ivs    []Interval
	maxEnd float64
}

// Len returns the number of reservations.
func (tl *Timeline) Len() int { return len(tl.ivs) }

// Intervals returns the reservations in start order. The returned slice
// aliases internal storage and must not be modified.
func (tl *Timeline) Intervals() []Interval { return tl.ivs }

// Ready returns the latest reservation end (0 when empty): the
// resource's ready time under the Append policy, i.e. the paper's
// R(l) / SF(P) / RF(P).
func (tl *Timeline) Ready() float64 {
	return tl.maxEnd
}

// EarliestSlot returns the earliest start >= ready at which a
// reservation of length dur fits under the given policy. dur may be
// zero, in which case ready is feasible anywhere.
func (tl *Timeline) EarliestSlot(ready, dur float64, pol Policy) float64 {
	if dur < 0 {
		panic("timeline: negative duration")
	}
	if pol == Append || len(tl.ivs) == 0 {
		if r := tl.Ready(); r > ready {
			return r
		}
		return ready
	}
	// Insertion: scan the gaps between positive-length intervals in
	// start order. Zero-length intervals are ordering markers and occupy
	// no time, so they neither close gaps nor push the candidate start.
	// (Ends are not monotone once markers interleave, so a binary search
	// on End would be unsound; timelines are small, a scan is fine.)
	start := ready
	for i := 0; i < len(tl.ivs); i++ {
		if tl.ivs[i].End == tl.ivs[i].Start || tl.ivs[i].End <= start {
			continue
		}
		if start+dur <= tl.ivs[i].Start {
			return start
		}
		start = tl.ivs[i].End
	}
	return start
}

// Add reserves [start, start+dur) for owner. It returns an error if the
// new interval overlaps an existing reservation (callers must use
// EarliestSlot to find feasible starts). Zero-duration reservations are
// accepted and kept; they are useful as ordering markers.
func (tl *Timeline) Add(start, dur float64, owner int32) error {
	if dur < 0 {
		return fmt.Errorf("timeline: negative duration %v", dur)
	}
	end := start + dur
	i := sort.Search(len(tl.ivs), func(i int) bool { return tl.ivs[i].Start >= start })
	// Check overlap against positive-length neighbors; zero-length
	// intervals are markers and never conflict. Positive intervals are
	// pairwise disjoint and start-sorted, so the nearest positive one on
	// each side decides.
	for j := i - 1; j >= 0; j-- {
		if tl.ivs[j].End == tl.ivs[j].Start {
			continue
		}
		if tl.ivs[j].End > start {
			return fmt.Errorf("timeline: [%v,%v) overlaps [%v,%v)", start, end, tl.ivs[j].Start, tl.ivs[j].End)
		}
		break
	}
	for j := i; j < len(tl.ivs) && tl.ivs[j].Start < end; j++ {
		if tl.ivs[j].End > tl.ivs[j].Start {
			return fmt.Errorf("timeline: [%v,%v) overlaps [%v,%v)", start, end, tl.ivs[j].Start, tl.ivs[j].End)
		}
	}
	tl.ivs = append(tl.ivs, Interval{})
	copy(tl.ivs[i+1:], tl.ivs[i:])
	tl.ivs[i] = Interval{Start: start, End: end, Owner: owner}
	if end > tl.maxEnd {
		tl.maxEnd = end
	}
	return nil
}

// MustAdd is Add that panics on overlap; used where feasibility was just
// established with EarliestSlot.
func (tl *Timeline) MustAdd(start, dur float64, owner int32) {
	if err := tl.Add(start, dur, owner); err != nil {
		panic(err)
	}
}

// Remove deletes the reservation starting exactly at start with the
// given owner; it reports whether a matching reservation was found.
func (tl *Timeline) Remove(start float64, owner int32) bool {
	i := sort.Search(len(tl.ivs), func(i int) bool { return tl.ivs[i].Start >= start })
	for ; i < len(tl.ivs) && tl.ivs[i].Start == start; i++ {
		if tl.ivs[i].Owner == owner {
			tl.ivs = append(tl.ivs[:i], tl.ivs[i+1:]...)
			tl.maxEnd = 0
			for _, iv := range tl.ivs {
				if iv.End > tl.maxEnd {
					tl.maxEnd = iv.End
				}
			}
			return true
		}
	}
	return false
}

// Clone returns a deep copy.
func (tl *Timeline) Clone() *Timeline {
	c := &Timeline{ivs: make([]Interval, len(tl.ivs)), maxEnd: tl.maxEnd}
	copy(c.ivs, tl.ivs)
	return c
}

// Validate checks ordering and non-overlap among positive-length
// intervals (zero-length markers may sit anywhere).
func (tl *Timeline) Validate() error {
	prevEnd := 0.0
	hasPrev := false
	for i := range tl.ivs {
		if tl.ivs[i].End == tl.ivs[i].Start {
			continue
		}
		if hasPrev && tl.ivs[i].Start < prevEnd {
			return fmt.Errorf("timeline: interval %d [%v,%v) overlaps a predecessor ending at %v",
				i, tl.ivs[i].Start, tl.ivs[i].End, prevEnd)
		}
		prevEnd, hasPrev = tl.ivs[i].End, true
	}
	return nil
}

// Utilization returns the fraction of [0, horizon) covered by
// reservations; 0 if horizon <= 0.
func (tl *Timeline) Utilization(horizon float64) float64 {
	if horizon <= 0 {
		return 0
	}
	busy := 0.0
	for _, iv := range tl.ivs {
		s, e := iv.Start, iv.End
		if s >= horizon {
			break
		}
		if e > horizon {
			e = horizon
		}
		busy += e - s
	}
	return busy / horizon
}
