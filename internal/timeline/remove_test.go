package timeline

import (
	"math/rand"
	"testing"
)

// TestMarkerInsidePositiveAccepted pins the marker symmetry fix: the
// insertion policy can legally place a positive reservation across a
// zero-length ordering marker, so the resulting interval list must also
// be reproducible by re-adding it in start order — which re-adds the
// marker INTO the positive reservation. Before the fix Add accepted the
// first order and rejected the second, so rebuilding a state from a
// schedule (sched.StateOf) could fail on legal timelines.
func TestMarkerInsidePositiveAccepted(t *testing.T) {
	// Original order: marker first, then a positive spanning it.
	var a Timeline
	a.MustAdd(48, 0, 1)
	if err := a.Add(36, 16, 2); err != nil {
		t.Fatalf("positive across marker rejected: %v", err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	// Rebuild order: positive first, then the marker inside it.
	var b Timeline
	b.MustAdd(36, 16, 2)
	if err := b.Add(48, 0, 1); err != nil {
		t.Fatalf("marker inside positive rejected: %v", err)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.Ready() != b.Ready() || a.Len() != b.Len() {
		t.Fatalf("orders diverge: ready %v/%v, len %d/%d", a.Ready(), b.Ready(), a.Len(), b.Len())
	}
	// Positive overlap is still rejected either way.
	if err := a.Add(40, 4, 3); err == nil {
		t.Fatal("overlapping positive accepted")
	}
}

// TestRemoveHeavyGapIndex is the deterministic regression companion of
// the fuzz target: a seeded storm of insertion-policy adds and removes
// — the access pattern of online rescheduling, which cancels
// mid-timeline reservations wholesale — with the gap index cross-checked
// against a from-scratch rebuild throughout.
func TestRemoveHeavyGapIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var tl Timeline
	var live []Interval
	owner := int32(0)
	for step := 0; step < 4000; step++ {
		switch {
		case len(live) == 0 || rng.Intn(3) != 0:
			ready := float64(rng.Intn(200))
			dur := float64(rng.Intn(24)) // ~4% zero-length markers
			pol := Policy(rng.Intn(2))
			s := tl.EarliestSlot(ready, dur, pol)
			if s < ready {
				t.Fatalf("step %d: slot %v before ready %v", step, s, ready)
			}
			tl.MustAdd(s, dur, owner)
			live = append(live, Interval{Start: s, End: s + dur, Owner: owner})
			owner++
		default:
			idx := rng.Intn(len(live))
			if !tl.Remove(live[idx].Start, live[idx].Owner) {
				t.Fatalf("step %d: reservation %+v vanished", step, live[idx])
			}
			live = append(live[:idx], live[idx+1:]...)
		}
		if err := tl.Validate(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if step%97 == 0 {
			crossCheck(t, &tl)
		}
	}
	// Drain everything: the index must collapse back to the empty state.
	for _, iv := range live {
		if !tl.Remove(iv.Start, iv.Owner) {
			t.Fatalf("drain: reservation %+v vanished", iv)
		}
		if err := tl.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if tl.Len() != 0 || tl.Ready() != 0 {
		t.Fatalf("drained timeline not empty: len %d, ready %v", tl.Len(), tl.Ready())
	}
	crossCheck(t, &tl)
}
