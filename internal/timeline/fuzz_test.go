package timeline

import (
	"encoding/binary"
	"testing"
)

// rebuild re-adds the timeline's current intervals into a fresh
// Timeline — the from-scratch reference for the incrementally
// maintained gap index.
func rebuild(t *testing.T, tl *Timeline) *Timeline {
	t.Helper()
	var fresh Timeline
	for _, iv := range tl.Intervals() {
		if err := fresh.Add(iv.Start, iv.End-iv.Start, iv.Owner); err != nil {
			t.Fatalf("rebuild rejected interval %+v: %v", iv, err)
		}
	}
	return &fresh
}

// crossCheck compares the live timeline against a rebuilt one: the
// ready time and the answers of EarliestSlot under both policies must
// agree at a spread of probe points. Divergence means the incremental
// gap-index maintenance of Add/Remove/UndoAdd drifted from the
// interval list.
func crossCheck(t *testing.T, tl *Timeline) {
	t.Helper()
	fresh := rebuild(t, tl)
	if tl.Ready() != fresh.Ready() {
		t.Fatalf("ready %v, rebuilt %v", tl.Ready(), fresh.Ready())
	}
	for _, ready := range []float64{0, 1, 7.5, 33, 100, 250} {
		for _, dur := range []float64{0, 1, 5, 31} {
			for _, pol := range []Policy{Append, Insertion} {
				got := tl.EarliestSlot(ready, dur, pol)
				want := fresh.EarliestSlot(ready, dur, pol)
				if got != want {
					t.Fatalf("EarliestSlot(%v, %v, %v) = %v, rebuilt timeline says %v", ready, dur, pol, got, want)
				}
			}
		}
	}
}

// FuzzTimelineOps drives a Timeline with a fuzzer-chosen sequence of
// EarliestSlot/Add/Remove/UndoAdd operations and checks that the
// interval set never becomes inconsistent, that found slots are
// honored, and — the Remove-heavy cross-check — that the incrementally
// maintained gap index always answers exactly like a timeline rebuilt
// from scratch from the surviving intervals.
func FuzzTimelineOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	f.Add([]byte{255, 0, 128, 7, 7, 7})
	f.Add([]byte{0, 10, 8, 1, 0, 16, 2, 0, 0, 0, 20, 4, 2, 0, 1, 3, 0, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		var tl Timeline
		var placed []Interval
		nextOwner := int32(0)
		type journaled struct {
			start   float64
			owner   int32
			prevMax float64
		}
		var journal []journaled
		for len(data) >= 3 {
			op := data[0] % 5
			ready := float64(data[1])
			sel := int(binary.LittleEndian.Uint16([]byte{data[2], 0}))
			dur := float64(data[2] % 32)
			data = data[3:]
			pol := Policy(int(op) % 2)
			switch op {
			case 0, 1:
				s := tl.EarliestSlot(ready, dur, pol)
				if s < ready {
					t.Fatalf("slot %v before ready %v", s, ready)
				}
				if err := tl.Add(s, dur, nextOwner); err != nil {
					t.Fatalf("slot from EarliestSlot rejected: %v", err)
				}
				placed = append(placed, Interval{Start: s, End: s + dur, Owner: nextOwner})
				nextOwner++
			case 2:
				if len(placed) > 0 {
					idx := sel % len(placed)
					if tl.Remove(placed[idx].Start, placed[idx].Owner) {
						placed = append(placed[:idx], placed[idx+1:]...)
					}
				}
			case 3:
				// Journaled add, undone immediately after a validity probe:
				// UndoAdd must restore intervals, gap index and ready time.
				prev := tl.Ready()
				s := tl.EarliestSlot(ready, dur, Insertion)
				if err := tl.Add(s, dur, nextOwner); err != nil {
					t.Fatalf("journaled add rejected: %v", err)
				}
				journal = append(journal, journaled{start: s, owner: nextOwner, prevMax: prev})
				nextOwner++
				if err := tl.Validate(); err != nil {
					t.Fatalf("after journaled add: %v", err)
				}
				u := journal[len(journal)-1]
				journal = journal[:len(journal)-1]
				tl.UndoAdd(u.start, u.owner, u.prevMax)
			case 4:
				crossCheck(t, &tl)
			}
			if err := tl.Validate(); err != nil {
				t.Fatal(err)
			}
		}
		crossCheck(t, &tl)
	})
}
