package timeline

import (
	"encoding/binary"
	"testing"
)

// FuzzTimelineOps drives a Timeline with a fuzzer-chosen sequence of
// EarliestSlot/Add/Remove operations and checks that the interval set
// never becomes inconsistent and that found slots are honored.
func FuzzTimelineOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	f.Add([]byte{255, 0, 128, 7, 7, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		var tl Timeline
		var placed []Interval
		for len(data) >= 3 {
			op := data[0] % 3
			ready := float64(data[1])
			sel := int(binary.LittleEndian.Uint16([]byte{data[2], 0}))
			dur := float64(data[2] % 32)
			data = data[3:]
			pol := Policy(int(op) % 2)
			switch op {
			case 0, 1:
				s := tl.EarliestSlot(ready, dur, pol)
				if s < ready {
					t.Fatalf("slot %v before ready %v", s, ready)
				}
				if err := tl.Add(s, dur, int32(len(placed))); err != nil {
					t.Fatalf("slot from EarliestSlot rejected: %v", err)
				}
				placed = append(placed, Interval{Start: s, End: s + dur})
			case 2:
				if len(placed) > 0 {
					idx := sel % len(placed)
					tl.Remove(placed[idx].Start, int32(idx))
				}
			}
			if err := tl.Validate(); err != nil {
				t.Fatal(err)
			}
		}
	})
}
