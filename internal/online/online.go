// Package online executes a committed schedule as a causal, event-driven
// process and reacts to processor crashes while it runs — the reactive
// counterpart of package sim's clairvoyant replays (see DESIGN.md S7).
//
// The engine maintains a priority queue over two event kinds: operation
// completions (replica executions and communications finishing) and
// processor crashes (a failure trace, processor -> fail-stop instant).
// Operations start as soon as every constraint is resolved — the
// per-resource reservation order committed by the scheduler, the source
// replica of a transfer, and one input arrival per predecessor
// (first-arrival semantics) — so with an empty failure trace the engine
// computes exactly the least-fixpoint times of sim.Replayer, and the
// root TestOnlineStaticEquivalence pins the two engines bit for bit.
//
// When a crash arrives at time tau, work that finished by tau survives;
// unfinished work on the crashed processor dies, along with everything
// transitively starved of inputs. The semantics is causal: a resource
// freed by a cancellation becomes available at tau, never earlier, and
// reactive re-placements may not start before tau — the past is never
// rewritten, unlike sim.ReplayTimed's omniscient fixpoint, which lets
// survivors move into slots vacated before the crash was observable.
//
// With Options.Reschedule, each crash additionally triggers the
// reactive re-mapper: reservations of lost and unstarted work are
// cancelled through the journaled sched.State cancel machinery, and
// every task left without a finished-and-reachable or still-live
// replica is re-placed onto the surviving processors with HEFT-style
// minimum-finish probes (sched.State probes on the real state — no
// clones). The whole replay runs inside one sched.State.Speculate
// scope, so the engine's state is pristine after every Run and a
// single Engine replays many traces with near-zero steady-state
// allocation (TestOnlineEventAllocPin).
//
//caft:deterministic
package online

import (
	"fmt"
	"math"
	"sort"

	"caft/internal/dag"
	"caft/internal/sched"
)

const (
	opRep = iota
	opComm
)

type opState uint8

const (
	opPending opState = iota // some constraint unresolved
	opRunning                // start determined, completion queued
	opDone                   // finished; survives later crashes
	opDead                   // cancelled by a crash or starved of inputs
)

const noOp = int32(-1)

// op is one executable operation. Identity fields are fixed at wiring
// time; state, waits, acc, minStart, start and finish are per-replay.
type op struct {
	kind     int8
	state    opState
	reactive bool
	task     dag.TaskID
	rep      sched.Replica
	comm     sched.Comm
	dur      float64
	seq      int32

	src              int32 // comm: op index of its source replica
	resBase, nRes    int32 // occupied resources in Engine.resIDs
	slotBase, nSlots int32 // rep: predecessor input slots
	feedBase, nFeeds int32 // comm: fed slots in Engine.feedAdj
	waits0           int32 // static constraint count

	waits         int32
	acc           float64 // running max of resolved constraint values
	minStart      float64 // causal floor (crash instant for reactive work)
	start, finish float64
	placedAt      float64 // reactive ops: the crash that placed them
}

// ev is one queued completion event.
type ev struct {
	t   float64
	seq int32
	idx int32
}

// crashEv is one failure-trace entry, processed in (time, proc) order.
type crashEv struct {
	tau  float64
	proc int
}

// Engine replays one schedule against failure traces. A single Engine
// precomputes the static wiring once and reuses every scratch buffer
// across Run/Makespan calls; it is not safe for concurrent use.
//
//caft:confined
type Engine struct {
	s     *sched.Schedule
	p     *sched.Problem
	g     *dag.DAG
	cg    *dag.Compiled
	m     int
	net   sched.Network
	macro bool

	st   *sched.State
	body func() error // prebuilt Speculate body (alloc-free Run)

	// Incremental upward-rank maintenance (Options.RankOrder); built
	// lazily on the first rank-ordered replay and reused afterwards.
	ranker   *dag.Ranker
	rankNode []float64
	rankUnit float64

	// Static tables (prefix [0, n0) of every dynamic slice).
	ops      []op
	n0       int
	taskOps  [][]int32 // per task: replica op indices, schedule order first
	taskOps0 []int32
	repOf    [][]int32 // task -> copy -> replica op index
	repOf0   []int32
	out      [][]int32 // per replica op: comm ops it feeds
	out0     []int32
	resIDs   []int32
	nResIDs0 int
	slotOf   []int32 // slot -> owning replica op
	slotInit []int32 // static feeder count per slot
	nSlots0  int
	feedAdj  []int32
	nFeeds0  int
	topoIdx  []int32

	// Per-replay resource state.
	nRes     int
	members  [][]int32 // per resource: member ops in placement (seq) order
	members0 []int32
	nextIdx  []int32
	resAvail []float64
	holder   []int32 // op currently holding the resource token, -1 if free

	// Per-replay scratch.
	slotLeft    []int32
	slotDone    []bool
	taskDone    []bool
	taskFinish  []float64
	unrecover   []bool
	nextCopy    []int32
	nextCopy0   []int32
	heap        []ev
	crashes     []crashEv
	deadList    []int32
	needList    []int32
	inNeed      []bool
	procDead    []bool
	rescheduled int
	events      int
	opt         Options
}

// NewEngine builds the static wiring for s. The schedule must be well
// formed (every communication referencing placed replicas); schedules
// produced by this repository's schedulers always are.
func NewEngine(s *sched.Schedule) (*Engine, error) {
	g := s.P.G
	cg, err := g.Compile()
	if err != nil {
		return nil, err
	}
	st, err := sched.StateOf(s)
	if err != nil {
		return nil, err
	}
	e := &Engine{s: s, p: s.P, g: g, cg: cg, m: s.P.Plat.M, net: s.P.Network(), st: st}
	e.macro = s.P.Model == sched.MacroDataflow
	e.body = func() error { return e.exec() }
	// The compiled view's topological index is read-only here; aliasing
	// is safe because the engine freezes the graph at construction.
	e.topoIdx = cg.TopoIndex()

	// Replica ops, task-major in schedule order (sim.Replayer's order).
	nRep := s.ReplicaCount()
	e.ops = make([]op, 0, nRep+len(s.Comms))
	e.taskOps = make([][]int32, g.NumTasks())
	e.repOf = make([][]int32, g.NumTasks())
	for t := range s.Reps {
		maxCopy := -1
		for _, rep := range s.Reps[t] {
			if rep.Copy > maxCopy {
				maxCopy = rep.Copy
			}
		}
		e.repOf[t] = make([]int32, maxCopy+1)
		for c := range e.repOf[t] {
			e.repOf[t][c] = noOp
		}
		for _, rep := range s.Reps[t] {
			i := int32(len(e.ops))
			e.repOf[t][rep.Copy] = i
			e.taskOps[t] = append(e.taskOps[t], i)
			o := op{kind: opRep, task: dag.TaskID(t), rep: rep, dur: rep.Finish - rep.Start, seq: rep.Seq, src: noOp}
			o.slotBase = int32(len(e.slotOf))
			o.nSlots = int32(cg.InDegree(dag.TaskID(t)))
			for j := int32(0); j < o.nSlots; j++ {
				e.slotOf = append(e.slotOf, i)
				e.slotInit = append(e.slotInit, 0)
			}
			o.resBase = int32(len(e.resIDs))
			e.resIDs = append(e.resIDs, int32(e.computeID(rep.Proc)))
			o.nRes = 1
			e.ops = append(e.ops, o)
		}
	}
	// Communication ops in schedule order.
	for i, c := range s.Comms {
		o := op{kind: opComm, comm: c, dur: c.Dur, seq: c.Seq, src: noOp}
		o.src = e.lookup(c.From, c.SrcCopy)
		if o.src < 0 {
			return nil, fmt.Errorf("online: comm %d references missing replica (%d,%d)", i, c.From, c.SrcCopy)
		}
		di := e.lookup(c.To, c.DstCopy)
		if di < 0 {
			return nil, fmt.Errorf("online: comm %d references missing replica (%d,%d)", i, c.To, c.DstCopy)
		}
		o.feedBase = int32(len(e.feedAdj))
		dst := &e.ops[di]
		from, _ := cg.Pred(c.To)
		for j, f := range from {
			if dag.TaskID(f) == c.From {
				slot := dst.slotBase + int32(j)
				e.feedAdj = append(e.feedAdj, slot)
				e.slotInit[slot]++
			}
		}
		o.nFeeds = int32(len(e.feedAdj)) - o.feedBase
		o.resBase = int32(len(e.resIDs))
		if !c.Intra && !e.macro {
			e.resIDs = append(e.resIDs, int32(e.sendID(c.SrcProc)), int32(e.recvID(c.DstProc)))
			for _, l := range e.net.Route(c.SrcProc, c.DstProc) {
				e.resIDs = append(e.resIDs, int32(e.linkID(l)))
			}
		}
		o.nRes = int32(len(e.resIDs)) - o.resBase
		e.ops = append(e.ops, o)
	}
	e.n0 = len(e.ops)
	e.nResIDs0 = len(e.resIDs)
	e.nSlots0 = len(e.slotOf)
	e.nFeeds0 = len(e.feedAdj)

	// Source -> communications index.
	e.out = make([][]int32, e.n0)
	for i := range e.ops {
		if e.ops[i].kind == opComm {
			e.out[e.ops[i].src] = append(e.out[e.ops[i].src], int32(i))
		}
	}

	// Per-resource membership in placement (seq) order, as in
	// sim.Replayer: the chain order is crash-independent.
	e.nRes = 3*e.m + e.net.NumLinks()
	e.members = make([][]int32, e.nRes)
	for i := range e.ops {
		o := &e.ops[i]
		for k := o.resBase; k < o.resBase+o.nRes; k++ {
			r := e.resIDs[k]
			e.members[r] = append(e.members[r], int32(i))
		}
	}
	for r := range e.members {
		mem := e.members[r]
		sort.Slice(mem, func(a, b int) bool {
			sa, sb := e.ops[mem[a]].seq, e.ops[mem[b]].seq
			if sa != sb {
				return sa < sb
			}
			return mem[a] < mem[b]
		})
	}

	// Static dependency counts.
	for i := range e.ops {
		o := &e.ops[i]
		o.waits0 = o.nRes
		if o.kind == opRep {
			o.waits0 += o.nSlots
		} else {
			o.waits0++
		}
	}

	// Frozen lengths and per-replay scratch.
	e.taskOps0 = make([]int32, len(e.taskOps))
	e.repOf0 = make([]int32, len(e.repOf))
	e.nextCopy0 = make([]int32, len(e.repOf))
	for t := range e.taskOps {
		e.taskOps0[t] = int32(len(e.taskOps[t]))
		e.repOf0[t] = int32(len(e.repOf[t]))
		e.nextCopy0[t] = int32(len(e.repOf[t]))
	}
	e.out0 = make([]int32, e.n0)
	for i := range e.out {
		e.out0[i] = int32(len(e.out[i]))
	}
	e.members0 = make([]int32, e.nRes)
	for r := range e.members {
		e.members0[r] = int32(len(e.members[r]))
	}
	e.nextIdx = make([]int32, e.nRes)
	e.resAvail = make([]float64, e.nRes)
	e.holder = make([]int32, e.nRes)
	e.slotLeft = make([]int32, e.nSlots0)
	e.slotDone = make([]bool, e.nSlots0)
	e.taskDone = make([]bool, g.NumTasks())
	e.taskFinish = make([]float64, g.NumTasks())
	e.unrecover = make([]bool, g.NumTasks())
	e.nextCopy = make([]int32, g.NumTasks())
	e.inNeed = make([]bool, g.NumTasks())
	e.procDead = make([]bool, e.m)
	return e, nil
}

//caft:zeroalloc
func (e *Engine) computeID(proc int) int { return proc }

//caft:zeroalloc
func (e *Engine) sendID(proc int) int { return e.m + proc }

//caft:zeroalloc
func (e *Engine) recvID(proc int) int { return 2*e.m + proc }

//caft:zeroalloc
func (e *Engine) linkID(l int) int { return 3*e.m + l }

//caft:zeroalloc
func (e *Engine) lookup(t dag.TaskID, copy int) int32 {
	if copy < 0 || copy >= len(e.repOf[t]) {
		return noOp
	}
	return e.repOf[t][copy]
}

// reset restores every dynamic table to the static prefix and loads the
// failure trace. It allocates nothing once the scratch has warmed up.
//
//caft:zeroalloc
func (e *Engine) reset(trace map[int]float64) {
	e.ops = e.ops[:e.n0]
	e.resIDs = e.resIDs[:e.nResIDs0]
	e.slotOf = e.slotOf[:e.nSlots0]
	e.slotInit = e.slotInit[:e.nSlots0]
	e.slotLeft = e.slotLeft[:e.nSlots0]
	e.slotDone = e.slotDone[:e.nSlots0]
	e.feedAdj = e.feedAdj[:e.nFeeds0]
	e.out = e.out[:e.n0]
	for i := range e.ops {
		o := &e.ops[i]
		o.state = opPending
		o.waits = o.waits0
		o.acc = 0
		o.minStart = 0
		o.start = 0
		o.finish = 0
		o.placedAt = 0
		e.out[i] = e.out[i][:e.out0[i]]
	}
	for t := range e.taskOps {
		e.taskOps[t] = e.taskOps[t][:e.taskOps0[t]]
		e.repOf[t] = e.repOf[t][:e.repOf0[t]]
		e.nextCopy[t] = e.nextCopy0[t]
		e.taskDone[t] = false
		e.taskFinish[t] = 0
		e.unrecover[t] = false
	}
	for r := range e.members {
		e.members[r] = e.members[r][:e.members0[r]]
		e.nextIdx[r] = 0
		e.resAvail[r] = 0
		e.holder[r] = noOp
	}
	for s := 0; s < e.nSlots0; s++ {
		e.slotLeft[s] = e.slotInit[s]
		e.slotDone[s] = false
	}
	for p := range e.procDead {
		e.procDead[p] = false
	}
	e.heap = e.heap[:0]
	e.deadList = e.deadList[:0]
	e.rescheduled = 0
	e.events = 0

	// Failure trace, sorted by (time, processor). The insertion sort
	// keeps the steady-state path allocation-free.
	e.crashes = e.crashes[:0]
	for p, tau := range trace { //caft:unordered-ok sorted by (time, proc) just below
		if p >= 0 && p < e.m {
			e.crashes = append(e.crashes, crashEv{tau: tau, proc: p})
		}
	}
	for i := 1; i < len(e.crashes); i++ {
		for j := i; j > 0; j-- {
			a, b := e.crashes[j-1], e.crashes[j]
			if b.tau < a.tau || (b.tau == a.tau && b.proc < a.proc) {
				e.crashes[j-1], e.crashes[j] = b, a
			} else {
				break
			}
		}
	}
}

// exec runs the event loop: completions in time order, interleaved with
// the failure trace.
//
//caft:zeroalloc
func (e *Engine) exec() error {
	for r := 0; r < e.nRes; r++ {
		e.releaseToken(int32(r), 0)
	}
	ci := 0
	for {
		tau := math.Inf(1)
		if ci < len(e.crashes) {
			tau = e.crashes[ci].tau
		}
		for len(e.heap) > 0 && e.heap[0].t <= tau+sched.Eps {
			top := e.pop()
			e.complete(top.idx)
		}
		if ci >= len(e.crashes) {
			break
		}
		if err := e.crash(e.crashes[ci].proc, tau); err != nil { //caft:alloc-ok crash path; only the no-crash steady state is pinned zero-alloc
			return err
		}
		ci++
	}
	for i := range e.ops {
		if st := e.ops[i].state; st == opPending || st == opRunning {
			return fmt.Errorf("online: event loop stalled with op %d (seq %d) unresolved", i, e.ops[i].seq) //caft:alloc-ok stalled-loop diagnostic; unreachable on a validated schedule
		}
	}
	return nil
}

// releaseToken frees resource r at time avail and grants it to the next
// non-dead member in placement order, resolving that member's chain
// constraint. With no member left the resource is marked free.
//
//caft:zeroalloc
func (e *Engine) releaseToken(r int32, avail float64) {
	if avail > e.resAvail[r] {
		e.resAvail[r] = avail
	}
	for e.nextIdx[r] < int32(len(e.members[r])) {
		i := e.members[r][e.nextIdx[r]]
		e.nextIdx[r]++
		if e.ops[i].state == opDead {
			continue
		}
		e.holder[r] = i
		e.resolve(i, e.resAvail[r])
		return
	}
	e.holder[r] = noOp
}

// addMember appends a reactively placed op to resource r's chain; if
// the token is free it is granted immediately.
//
//caft:zeroalloc
func (e *Engine) addMember(r, i int32) {
	e.members[r] = append(e.members[r], i)
	if e.holder[r] == noOp {
		e.releaseToken(r, e.resAvail[r])
	}
}

// resolve folds one constraint value into op i and starts it when it
// was the last one outstanding.
//
//caft:zeroalloc
func (e *Engine) resolve(i int32, v float64) {
	o := &e.ops[i]
	if o.state != opPending {
		return
	}
	if v > o.acc {
		o.acc = v
	}
	o.waits--
	if o.waits == 0 {
		o.start = o.acc
		if o.minStart > o.start {
			o.start = o.minStart
		}
		dur := o.dur
		if o.kind == opRep && e.opt.ExecScale != nil {
			dur *= e.opt.ExecScale[o.task]
		}
		o.finish = o.start + dur
		o.state = opRunning
		e.push(ev{t: o.finish, seq: o.seq, idx: i})
	}
}

// complete finishes op i: releases its resource tokens, marks its task
// computed (first completion wins) and resolves dependent constraints.
// Events of lazily cancelled (dead) ops are skipped.
//
//caft:zeroalloc
func (e *Engine) complete(i int32) {
	o := &e.ops[i]
	if o.state != opRunning {
		return
	}
	o.state = opDone
	e.events++
	for k := o.resBase; k < o.resBase+o.nRes; k++ {
		r := e.resIDs[k]
		if e.holder[r] == i {
			e.releaseToken(r, o.finish)
		}
	}
	if o.kind == opRep {
		if !e.taskDone[o.task] {
			e.taskDone[o.task] = true
			e.taskFinish[o.task] = o.finish
		}
		for _, j := range e.out[i] {
			e.resolve(j, o.finish)
		}
		return
	}
	for k := o.feedBase; k < o.feedBase+o.nFeeds; k++ {
		s := e.feedAdj[k]
		if !e.slotDone[s] {
			e.slotDone[s] = true
			e.resolve(e.slotOf[s], o.finish)
		}
	}
}

// kill marks op i dead if it has not finished, recording it for the
// crash's cascade and token-release phases.
//
//caft:zeroalloc
func (e *Engine) kill(i int32) {
	o := &e.ops[i]
	if o.state != opPending && o.state != opRunning {
		return
	}
	o.state = opDead
	e.deadList = append(e.deadList, i)
}

// crash processes the fail-stop of processor q at time tau: direct
// victims die, starvation cascades, freed resources re-open at tau (the
// causal clamp), and — with rescheduling enabled — lost work is
// re-mapped onto the survivors.
func (e *Engine) crash(q int, tau float64) error {
	e.procDead[q] = true
	e.deadList = e.deadList[:0]
	// Phase 1: unfinished work occupying q.
	for i := range e.ops {
		o := &e.ops[i]
		if o.state != opPending && o.state != opRunning {
			continue
		}
		hit := false
		if o.kind == opRep {
			hit = o.rep.Proc == q
		} else {
			hit = o.comm.SrcProc == q || o.comm.DstProc == q
		}
		if hit {
			e.kill(int32(i))
		}
	}
	// Phase 2: starvation cascade. A dead replica takes its unfinished
	// transfers with it; a slot with no live feeder left starves its
	// replica.
	for k := 0; k < len(e.deadList); k++ {
		i := e.deadList[k]
		o := &e.ops[i]
		if o.kind == opRep {
			for _, j := range e.out[i] {
				e.kill(j)
			}
			continue
		}
		for f := o.feedBase; f < o.feedBase+o.nFeeds; f++ {
			s := e.feedAdj[f]
			if e.slotDone[s] {
				continue
			}
			e.slotLeft[s]--
			if e.slotLeft[s] == 0 {
				e.kill(e.slotOf[s])
			}
		}
	}
	// Phase 3: resources held by the dead re-open at tau — never
	// earlier; the crash is only observable at tau.
	for _, i := range e.deadList {
		o := &e.ops[i]
		for k := o.resBase; k < o.resBase+o.nRes; k++ {
			r := e.resIDs[k]
			if e.holder[r] == i {
				e.releaseToken(r, tau)
			}
		}
	}
	if e.opt.Reschedule {
		return e.reschedule(tau)
	}
	return nil
}

// push/pop implement the completion-event min-heap, ordered by time
// with the placement sequence as the deterministic tie break.
//
//caft:zeroalloc
func (e *Engine) push(v ev) {
	e.heap = append(e.heap, v)
	i := len(e.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !evLess(e.heap[i], e.heap[parent]) {
			break
		}
		e.heap[i], e.heap[parent] = e.heap[parent], e.heap[i]
		i = parent
	}
}

//caft:zeroalloc
func (e *Engine) pop() ev {
	top := e.heap[0]
	n := len(e.heap) - 1
	e.heap[0] = e.heap[n]
	e.heap = e.heap[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && evLess(e.heap[l], e.heap[small]) {
			small = l
		}
		if r < n && evLess(e.heap[r], e.heap[small]) {
			small = r
		}
		if small == i {
			break
		}
		e.heap[i], e.heap[small] = e.heap[small], e.heap[i]
		i = small
	}
	return top
}

//caft:zeroalloc
func evLess(a, b ev) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}
