package online

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"caft/internal/core"
	"caft/internal/gen"
	"caft/internal/platform"
	"caft/internal/sched"
	"caft/internal/sched/ftsa"
	"caft/internal/sched/heft"
	"caft/internal/sim"
	"caft/internal/timeline"
)

// randomProblem mirrors the sim test fixture: a random layered graph on
// m processors under the one-port model.
func randomProblem(rng *rand.Rand, v, m int, pol timeline.Policy) *sched.Problem {
	params := gen.RandomParams{MinTasks: v, MaxTasks: v, MinDegree: 1, MaxDegree: 3, MinVolume: 50, MaxVolume: 150}
	g := gen.RandomLayered(rng, params)
	plat := platform.NewRandom(rng, m, 0.5, 1.0)
	exec := platform.GenExecForGranularity(rng, g, plat, 1.0, platform.DefaultHeterogeneity)
	return &sched.Problem{G: g, Plat: plat, Exec: exec, Model: sched.OnePort, Policy: pol}
}

// horizonOf returns a time safely past every executed operation of a
// no-failure replay.
func horizonOf(t *testing.T, e *Engine) float64 {
	t.Helper()
	res, err := e.Run(nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	h := 0.0
	for _, reps := range res.Reps {
		for _, o := range reps {
			if o.Finish > h {
				h = o.Finish
			}
		}
	}
	for _, o := range res.Comms {
		if o.Finish > h {
			h = o.Finish
		}
	}
	return h
}

// TestOnlineReactiveRecoversHEFT crashes processors under an
// unreplicated HEFT schedule: without rescheduling tasks are lost; with
// rescheduling every task completes, the output is validator-clean, the
// makespan never beats the fault-free run, and the engine state is
// pristine afterwards.
func TestOnlineReactiveRecoversHEFT(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 6; trial++ {
		p := randomProblem(rng, 25+rng.Intn(10), 5, timeline.Policy(trial%2))
		s, err := heft.Schedule(p, rng)
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewEngine(s)
		if err != nil {
			t.Fatal(err)
		}
		base, _, err := e.Makespan(nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
		trace := map[int]float64{
			rng.Intn(5): base * rng.Float64(),
			rng.Intn(5): base * rng.Float64(),
		}
		static, err := e.Run(trace, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := Validate(p, static, trace); err != nil {
			t.Fatalf("trial %d static: %v", trial, err)
		}
		reactive, err := e.Run(trace, Options{Reschedule: true})
		if err != nil {
			t.Fatalf("trial %d reactive: %v", trial, err)
		}
		if len(reactive.TasksLost) != 0 {
			t.Fatalf("trial %d: reactive replay lost tasks %v with %d of 5 processors crashed", trial, reactive.TasksLost, len(trace))
		}
		if len(static.TasksLost) > 0 && reactive.Rescheduled == 0 {
			t.Fatalf("trial %d: static run lost %d tasks but reactive run re-placed nothing", trial, len(static.TasksLost))
		}
		if err := Validate(p, reactive, trace); err != nil {
			t.Fatalf("trial %d reactive: %v", trial, err)
		}
		// Note: the reactive makespan may legitimately beat the
		// fault-free run — a crash frees a queued resource at tau, which
		// can pull later work earlier (DESIGN.md S7) — so only finiteness
		// is asserted here.
		if lat, err := reactive.Latency(); err != nil || math.IsInf(lat, 1) {
			t.Fatalf("trial %d: reactive latency %v (%v)", trial, lat, err)
		}
		if err := e.verifyPristine(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// TestOnlineCrashPastHorizon pins the boundary property: crashes
// strictly after every operation's finish must reproduce the
// no-failure replay bit for bit, rescheduling armed or not.
func TestOnlineCrashPastHorizon(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 4; trial++ {
		p := randomProblem(rng, 30, 5, timeline.Append)
		s, err := ftsa.Schedule(p, 1, rng)
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewEngine(s)
		if err != nil {
			t.Fatal(err)
		}
		clean, err := e.Run(nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
		h := horizonOf(t, e)
		trace := map[int]float64{}
		for proc := 0; proc < 5; proc++ {
			trace[proc] = h + 1 + float64(proc)
		}
		for _, opt := range []Options{{}, {Reschedule: true}} {
			got, err := e.Run(trace, opt)
			if err != nil {
				t.Fatal(err)
			}
			sameOutcome(t, "past-horizon", got, clean)
		}
	}
}

// TestOnlineScratchReuseMatchesFresh replays an interleaved sequence of
// traces on one engine and checks each result against a fresh engine:
// no state may leak between replays.
func TestOnlineScratchReuseMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	p := randomProblem(rng, 30, 5, timeline.Append)
	s, err := core.Schedule(p, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	reused, err := NewEngine(s)
	if err != nil {
		t.Fatal(err)
	}
	h := horizonOf(t, reused)
	for i := 0; i < 12; i++ {
		trace := map[int]float64{
			i % 5:       h * rng.Float64(),
			(i * 2) % 5: h * rng.Float64(),
		}
		if i%4 == 0 {
			trace = nil
		}
		opt := Options{Reschedule: i%2 == 0}
		got, err := reused.Run(trace, opt)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := NewEngine(s)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.Run(trace, opt)
		if err != nil {
			t.Fatal(err)
		}
		sameOutcome(t, "reuse", got, want)
		if err := reused.verifyPristine(); err != nil {
			t.Fatalf("replay %d: %v", i, err)
		}
	}
}

// TestOnlineCrashSupersetNeverRevives is the online counterpart of the
// timed replay's dead-set monotonicity: adding crashes (or moving them
// earlier) never revives an operation of the ORIGINAL schedule — every
// original replica or transfer that completes under the larger crash
// set also completes under the smaller one. (Makespan itself is not
// monotone: cancelling a queued operation frees its resource at the
// crash instant, which can legally pull later work earlier; see
// DESIGN.md S7.)
func TestOnlineCrashSupersetNeverRevives(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 4; trial++ {
		p := randomProblem(rng, 30, 6, timeline.Append)
		s, err := ftsa.Schedule(p, 1, rng)
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewEngine(s)
		if err != nil {
			t.Fatal(err)
		}
		h := horizonOf(t, e)
		for draw := 0; draw < 30; draw++ {
			small := map[int]float64{}
			big := map[int]float64{}
			n := 1 + rng.Intn(4)
			for len(small) < n {
				proc := rng.Intn(6)
				if _, ok := small[proc]; ok {
					continue
				}
				tau := rng.Float64() * 1.2 * h
				small[proc] = tau
				big[proc] = tau * rng.Float64() // earlier
			}
			extra := rng.Intn(6)
			if _, ok := big[extra]; !ok {
				big[extra] = rng.Float64() * h // one more crash
			}
			for _, opt := range []Options{{}, {Reschedule: true}} {
				rs, err := e.Run(small, opt)
				if err != nil {
					t.Fatal(err)
				}
				rb, err := e.Run(big, opt)
				if err != nil {
					t.Fatal(err)
				}
				for task := range rs.Reps {
					for i := range rs.Reps[task][:len(s.Reps[task])] {
						if rb.Reps[task][i].Alive && !rs.Reps[task][i].Alive {
							t.Fatalf("trial %d draw %d (reschedule=%v): replica (%d,%d) dead under %v but alive under superset %v",
								trial, draw, opt.Reschedule, task, rs.Reps[task][i].Rep.Copy, small, big)
						}
					}
				}
				for i := range s.Comms {
					if rb.Comms[i].Alive && !rs.Comms[i].Alive {
						t.Fatalf("trial %d draw %d (reschedule=%v): comm %d dead under %v but alive under superset %v",
							trial, draw, opt.Reschedule, i, small, big)
					}
				}
			}
		}
	}
}

// TestOnlineStaticLossMatchesTimedSim spot-checks the static
// (no-reschedule) mode against replayed intuition: a processor crash at
// time zero on an eps=1 schedule never loses a task, and crashing every
// processor at zero loses everything.
func TestOnlineStaticLossMatchesTimedSim(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	p := randomProblem(rng, 25, 5, timeline.Append)
	s, err := ftsa.Schedule(p, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(s)
	if err != nil {
		t.Fatal(err)
	}
	for proc := 0; proc < 5; proc++ {
		res, err := e.Run(map[int]float64{proc: 0}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.TasksLost) != 0 {
			t.Fatalf("single crash@0 on P%d lost tasks %v from an eps=1 schedule", proc, res.TasksLost)
		}
		if err := Validate(p, res, map[int]float64{proc: 0}); err != nil {
			t.Fatal(err)
		}
	}
	all := map[int]float64{}
	for proc := 0; proc < 5; proc++ {
		all[proc] = 0
	}
	_, _, err = e.Makespan(all, Options{Reschedule: true})
	if err == nil || !errors.Is(err, sim.ErrTaskLost) {
		t.Fatalf("crashing every processor reported %v, want ErrTaskLost", err)
	}
}

// TestOnlineMakespanMatchesRun pins the alloc-free Makespan entry point
// to the materializing Run path.
func TestOnlineMakespanMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	p := randomProblem(rng, 25, 5, timeline.Append)
	s, err := heft.Schedule(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(s)
	if err != nil {
		t.Fatal(err)
	}
	h := horizonOf(t, e)
	for draw := 0; draw < 8; draw++ {
		trace := map[int]float64{draw % 5: h * rng.Float64()}
		res, err := e.Run(trace, Options{Reschedule: true})
		if err != nil {
			t.Fatal(err)
		}
		wantLat, wantErr := res.Latency()
		lat, resched, err := e.Makespan(trace, Options{Reschedule: true})
		if (err == nil) != (wantErr == nil) {
			t.Fatalf("draw %d: Makespan err %v, Run err %v", draw, err, wantErr)
		}
		if err == nil && (lat != wantLat || resched != res.Rescheduled) {
			t.Fatalf("draw %d: Makespan (%v, %d) vs Run (%v, %d)", draw, lat, resched, wantLat, res.Rescheduled)
		}
	}
}

// sameOutcome asserts two online results are bit-identical.
func sameOutcome(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.Rescheduled != want.Rescheduled || len(got.TasksLost) != len(want.TasksLost) {
		t.Fatalf("%s: rescheduled/lost mismatch: (%d,%v) vs (%d,%v)", label, got.Rescheduled, got.TasksLost, want.Rescheduled, want.TasksLost)
	}
	for i := range want.TasksLost {
		if got.TasksLost[i] != want.TasksLost[i] {
			t.Fatalf("%s: lost %v vs %v", label, got.TasksLost, want.TasksLost)
		}
	}
	if len(got.Reps) != len(want.Reps) || len(got.Comms) != len(want.Comms) {
		t.Fatalf("%s: shape mismatch", label)
	}
	for task := range want.Reps {
		if len(got.Reps[task]) != len(want.Reps[task]) {
			t.Fatalf("%s: task %d replica count %d vs %d", label, task, len(got.Reps[task]), len(want.Reps[task]))
		}
		for i, w := range want.Reps[task] {
			if g := got.Reps[task][i]; g != w {
				t.Fatalf("%s: replica (%d,#%d): %+v vs %+v", label, task, i, g, w)
			}
		}
	}
	for i, w := range want.Comms {
		if g := got.Comms[i]; g != w {
			t.Fatalf("%s: comm %d: %+v vs %+v", label, i, g, w)
		}
	}
}

// TestOnlineEventAllocPin pins the steady-state event loop: after
// warm-up, a full no-crash replay through the alloc-free Makespan entry
// point — event queue, token passing, slot resolution, Speculate scope
// included — allocates nothing.
func TestOnlineEventAllocPin(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	p := randomProblem(rng, 40, 6, timeline.Append)
	s, err := ftsa.Schedule(p, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(s)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Reschedule: true}
	if _, _, err := e.Makespan(nil, opt); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, err := e.Makespan(nil, opt); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state online replay allocates %.1f/op, want 0", allocs)
	}
	// A crash replay may allocate (reactive wiring grows tables), but
	// must stay bounded after warm-up thanks to scratch reuse.
	h := horizonOf(t, e)
	trace := map[int]float64{2: h / 3}
	if _, _, err := e.Makespan(trace, opt); err != nil {
		t.Fatal(err)
	}
	if math.IsInf(h, 1) {
		t.Fatal("unexpected horizon")
	}
}
