package online

import (
	"math/rand"
	"testing"

	"caft/internal/core"
	"caft/internal/sched"
	"caft/internal/sched/ftsa"
	"caft/internal/sched/heft"
	"caft/internal/timeline"
)

// FuzzOnlineReschedule drives the reactive engine with fuzzer-chosen
// problems and crash sequences (processor, instant) and asserts the two
// safety properties of the tentpole: the executed outcome is
// validator-clean (precedence, crash deadlines, resource exclusivity on
// executed times, every non-lost task completed), and the replay's
// Speculate scope rolls the rebuilt scheduler state back to pristine —
// cancellations and reactive placements leave no trace.
func FuzzOnlineReschedule(f *testing.F) {
	f.Add([]byte{1, 0, 0, 1, 50, 2, 130})
	f.Add([]byte{3, 1, 1, 0, 0, 1, 0, 2, 0})
	f.Add([]byte{7, 2, 0, 3, 10, 3, 20, 2, 200})
	f.Add([]byte{11, 1, 0, 0, 90, 1, 90, 2, 90, 3, 90})
	f.Add([]byte{5, 0, 1, 1, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		seed, alg, pol := int64(data[0]), data[1]%3, timeline.Policy(data[2]%2)
		data = data[3:]
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng, 12+int(seed%8), 4, pol)
		var s *sched.Schedule
		var err error
		switch alg {
		case 0:
			s, err = heft.Schedule(p, rng)
		case 1:
			s, err = ftsa.Schedule(p, 1, rng)
		default:
			s, err = core.Schedule(p, 1, rng)
		}
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewEngine(s)
		if err != nil {
			t.Fatal(err)
		}
		clean, err := e.Run(nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
		h := 0.0
		for _, reps := range clean.Reps {
			for _, o := range reps {
				if o.Finish > h {
					h = o.Finish
				}
			}
		}
		trace := map[int]float64{}
		for len(data) >= 2 {
			proc := int(data[0]) % 4
			if _, ok := trace[proc]; !ok {
				// Instants span [0, ~1.3h]: mid-run crashes, boundary cases
				// at zero, and past-horizon no-ops.
				trace[proc] = float64(data[1]) / 200.0 * h
			}
			data = data[2:]
		}
		for _, opt := range []Options{{}, {Reschedule: true}} {
			res, err := e.Run(trace, opt)
			if err != nil {
				t.Fatalf("reschedule=%v trace=%v: %v", opt.Reschedule, trace, err)
			}
			if err := Validate(p, res, trace); err != nil {
				t.Fatalf("reschedule=%v trace=%v: %v", opt.Reschedule, trace, err)
			}
			if err := e.verifyPristine(); err != nil {
				t.Fatalf("reschedule=%v trace=%v: %v", opt.Reschedule, trace, err)
			}
		}
	})
}
