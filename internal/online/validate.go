package online

import (
	"fmt"
	"math"
	"sort"

	"caft/internal/dag"
	"caft/internal/sched"
	"caft/internal/timeline"
)

// Validate checks an executed replay against the problem and the
// failure trace it ran under:
//
//   - every task either completed at least one replica or is listed in
//     TasksLost (exactly one of the two);
//   - finished replicas have the right duration, occupy pairwise
//     distinct processors per task, and beat their processor's crash
//     instant; reactive replicas never start before the crash that
//     placed them, and never on an already-crashed processor;
//   - precedence holds on executed times: every finished replica has,
//     for each predecessor, a finished input transfer arriving by its
//     start; every finished transfer starts at or after its finished
//     source replica and beats both endpoints' crash instants;
//   - resource exclusivity holds on executed times: per-processor
//     executions never overlap and, under the one-port model, neither
//     do the send-port, receive-port and link occupations.
//
// The fuzz harness drives this against random crash sequences; the
// engine must produce validator-clean output for every trace.
func Validate(p *sched.Problem, res *Result, trace map[int]float64) error {
	g := p.G
	if len(res.Reps) != g.NumTasks() {
		return fmt.Errorf("online: %d tasks recorded, want %d", len(res.Reps), g.NumTasks())
	}
	crashAt := func(proc int) float64 {
		if tau, ok := trace[proc]; ok {
			return tau
		}
		return math.Inf(1)
	}
	lost := map[dag.TaskID]bool{}
	for _, t := range res.TasksLost {
		lost[t] = true
	}

	// Replica checks + per-task completion accounting.
	for t := range res.Reps {
		seen := map[int]bool{}
		completed := false
		for _, o := range res.Reps[t] {
			if !o.Alive {
				continue
			}
			completed = true
			r := o.Rep
			if seen[r.Proc] {
				return fmt.Errorf("online: task %d finished two replicas on P%d", t, r.Proc)
			}
			seen[r.Proc] = true
			want := p.Exec[t][r.Proc]
			if math.Abs((o.Finish-o.Start)-want) > sched.Eps {
				return fmt.Errorf("online: replica (%d,%d) executed %v, want %v", t, r.Copy, o.Finish-o.Start, want)
			}
			if o.Finish > crashAt(r.Proc)+sched.Eps {
				return fmt.Errorf("online: replica (%d,%d) finished at %v on P%d, which crashed at %v", t, r.Copy, o.Finish, r.Proc, crashAt(r.Proc))
			}
			if o.Reactive {
				if o.Start < o.PlacedAt-sched.Eps {
					return fmt.Errorf("online: reactive replica (%d,%d) starts at %v before its crash at %v", t, r.Copy, o.Start, o.PlacedAt)
				}
				if crashAt(r.Proc) <= o.PlacedAt {
					return fmt.Errorf("online: reactive replica (%d,%d) placed on P%d, already dead at %v", t, r.Copy, r.Proc, o.PlacedAt)
				}
			}
		}
		if completed == lost[dag.TaskID(t)] {
			return fmt.Errorf("online: task %d completed=%v but lost=%v", t, completed, lost[dag.TaskID(t)])
		}
	}

	// Finished-replica index for transfer endpoint checks.
	type key struct {
		t    dag.TaskID
		copy int
	}
	finished := map[key]RepOutcome{}
	for t := range res.Reps {
		for _, o := range res.Reps[t] {
			if o.Alive {
				finished[key{dag.TaskID(t), o.Rep.Copy}] = o
			}
		}
	}

	// Transfer checks + arrival index per destination replica.
	arrivals := map[key]map[dag.TaskID]float64{}
	for i, o := range res.Comms {
		if !o.Alive {
			continue
		}
		c := o.Comm
		src, ok := finished[key{c.From, c.SrcCopy}]
		if !ok {
			return fmt.Errorf("online: comm %d delivered from unfinished replica (%d,%d)", i, c.From, c.SrcCopy)
		}
		if src.Rep.Proc != c.SrcProc {
			return fmt.Errorf("online: comm %d source processor mismatch", i)
		}
		if o.Start < src.Finish-sched.Eps {
			return fmt.Errorf("online: comm %d starts at %v before source finish %v", i, o.Start, src.Finish)
		}
		if o.Finish > crashAt(c.SrcProc)+sched.Eps || o.Finish > crashAt(c.DstProc)+sched.Eps {
			return fmt.Errorf("online: comm %d finished at %v past an endpoint crash (src P%d @ %v, dst P%d @ %v)",
				i, o.Finish, c.SrcProc, crashAt(c.SrcProc), c.DstProc, crashAt(c.DstProc))
		}
		k := key{c.To, c.DstCopy}
		if arrivals[k] == nil {
			arrivals[k] = map[dag.TaskID]float64{}
		}
		if prev, ok := arrivals[k][c.From]; !ok || o.Finish < prev {
			arrivals[k][c.From] = o.Finish
		}
	}
	for t := range res.Reps {
		for _, o := range res.Reps[t] {
			if !o.Alive {
				continue
			}
			for _, e := range g.Pred(dag.TaskID(t)) {
				arr, ok := arrivals[key{dag.TaskID(t), o.Rep.Copy}][e.From]
				if !ok {
					return fmt.Errorf("online: replica (%d,%d) ran without an input from predecessor %d", t, o.Rep.Copy, e.From)
				}
				if arr > o.Start+sched.Eps {
					return fmt.Errorf("online: replica (%d,%d) started at %v before its input from %d at %v", t, o.Rep.Copy, o.Start, e.From, arr)
				}
			}
		}
	}

	// Resource exclusivity on executed times.
	m := p.Plat.M
	compute := make([][]timeline.Interval, m)
	for t := range res.Reps {
		for _, o := range res.Reps[t] {
			if o.Alive {
				compute[o.Rep.Proc] = append(compute[o.Rep.Proc], timeline.Interval{Start: o.Start, End: o.Finish, Owner: o.Rep.Seq})
			}
		}
	}
	for proc, ivs := range compute {
		if err := nonOverlap(ivs); err != nil {
			return fmt.Errorf("online: compute P%d: %w", proc, err)
		}
	}
	if p.Model == sched.OnePort {
		net := p.Network()
		send := make([][]timeline.Interval, m)
		recv := make([][]timeline.Interval, m)
		link := make([][]timeline.Interval, net.NumLinks())
		for _, o := range res.Comms {
			if !o.Alive || o.Comm.Intra {
				continue
			}
			iv := timeline.Interval{Start: o.Start, End: o.Finish, Owner: o.Comm.Seq}
			send[o.Comm.SrcProc] = append(send[o.Comm.SrcProc], iv)
			recv[o.Comm.DstProc] = append(recv[o.Comm.DstProc], iv)
			for _, l := range net.Route(o.Comm.SrcProc, o.Comm.DstProc) {
				link[l] = append(link[l], iv)
			}
		}
		for proc, ivs := range send {
			if err := nonOverlap(ivs); err != nil {
				return fmt.Errorf("online: send port P%d: %w", proc, err)
			}
		}
		for proc, ivs := range recv {
			if err := nonOverlap(ivs); err != nil {
				return fmt.Errorf("online: recv port P%d: %w", proc, err)
			}
		}
		for l, ivs := range link {
			if err := nonOverlap(ivs); err != nil {
				return fmt.Errorf("online: link %d: %w", l, err)
			}
		}
	}
	return nil
}

func nonOverlap(ivs []timeline.Interval) error {
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].Start < ivs[j].Start })
	for i := 1; i < len(ivs); i++ {
		if ivs[i].Start < ivs[i-1].End-sched.Eps {
			return fmt.Errorf("executed intervals [%v,%v) and [%v,%v) overlap",
				ivs[i-1].Start, ivs[i-1].End, ivs[i].Start, ivs[i].End)
		}
	}
	return nil
}
