package online

import (
	"fmt"
	"math"

	"caft/internal/dag"
	"caft/internal/sched"
	"caft/internal/sim"
)

// Options configures one replay.
type Options struct {
	// Reschedule enables the reactive re-mapper: on each crash, lost and
	// unstarted work is cancelled and re-placed onto the surviving
	// processors. False replays the static schedule's fate — losses are
	// reported, nothing moves.
	Reschedule bool
	// ExecScale, when non-nil, multiplies the execution duration of every
	// replica of task t (original and reactive alike) by ExecScale[t] as
	// it starts — execution-time jitter injected at run time, while the
	// committed placements, reservation orders and communication volumes
	// stay those of the nominal schedule. It must hold one non-negative
	// factor per task. This is the probe behind the jitter-predictability
	// harness (expt.RunJitter, DESIGN.md S9): replaying a fixed schedule
	// with shrunk durations can only move completions earlier, so
	// schedules are execution-predictable in the sense of Cucu-Grosjean &
	// Goossens; re-running a *scheduler* on jittered estimates is where
	// Graham's timing anomalies live.
	ExecScale []float64
	// RankOrder orders reactive re-placements by descending upward rank
	// (the bottom level over mean execution costs and the mean unit
	// delay — the same static levels sched.Lister uses) instead of plain
	// topological index, so the most critical lost work is re-placed
	// first. Ranks are maintained incrementally by dag.Ranker: marking a
	// task unrecoverable re-ranks only its ancestor cone, not the whole
	// graph. Upward ranks strictly decrease along edges when execution
	// costs are positive, so the order remains topologically safe; ties
	// fall back to topological index. False (the default) keeps the
	// historical pure-topological order bit for bit.
	RankOrder bool
}

// RepOutcome is the executed fate of one replica. For Alive (finished)
// replicas Start/Finish are the executed times; for dead replicas that
// had started before the crash they record the aborted attempt, and
// for never-started work they are zero.
type RepOutcome struct {
	Rep      sched.Replica
	Alive    bool
	Reactive bool    // placed by the rescheduler at runtime
	PlacedAt float64 // reactive replicas: the crash instant that placed them
	Start    float64
	Finish   float64
}

// CommOutcome is the executed fate of one communication.
type CommOutcome struct {
	Comm     sched.Comm
	Alive    bool
	Reactive bool
	Start    float64
	Finish   float64
}

// Result holds the executed times of every operation of one replay.
// Reps is indexed by task; each task lists its original replicas in
// schedule order followed by any reactive replicas in placement order.
// Comms lists the original communications in schedule order followed by
// reactive transfers.
type Result struct {
	Reps  [][]RepOutcome
	Comms []CommOutcome
	// TasksLost lists tasks that never completed any replica (possible
	// without rescheduling, or when crashes exhaust the platform).
	TasksLost []dag.TaskID
	// Rescheduled counts reactively placed replicas.
	Rescheduled int
	// Crashes is the number of failure-trace events processed; Events
	// the number of completion events.
	Crashes int
	Events  int
}

// Latency returns the latest time at which at least one replica of each
// task has been computed, or an error satisfying errors.Is(err,
// sim.ErrTaskLost) naming a lost task.
func (r *Result) Latency() (float64, error) {
	if len(r.TasksLost) > 0 {
		return math.Inf(1), fmt.Errorf("online: task %d lost (no surviving replica): %w", r.TasksLost[0], sim.ErrTaskLost)
	}
	lat := 0.0
	for t := range r.Reps {
		min := math.Inf(1)
		for _, o := range r.Reps[t] {
			if o.Alive && o.Finish < min {
				min = o.Finish
			}
		}
		if min > lat {
			lat = min
		}
	}
	return lat, nil
}

// replay resets the engine, loads the trace and runs the event loop.
// With rescheduling enabled the whole run executes inside one
// speculation scope on the rebuilt state, so cancellations and reactive
// placements roll back and the engine is pristine for the next replay.
//
//caft:zeroalloc
func (e *Engine) replay(trace map[int]float64, opt Options) error {
	if opt.ExecScale != nil {
		if len(opt.ExecScale) != e.g.NumTasks() {
			return fmt.Errorf("online: ExecScale has %d entries, want one per task (%d)", len(opt.ExecScale), e.g.NumTasks()) //caft:alloc-ok option-validation rejection path; the accept path allocates nothing
		}
		for t, f := range opt.ExecScale {
			if f < 0 || math.IsNaN(f) {
				return fmt.Errorf("online: ExecScale[%d] = %v, want non-negative", t, f) //caft:alloc-ok option-validation rejection path; the accept path allocates nothing
			}
		}
	}
	e.reset(trace)
	e.opt = opt
	if opt.RankOrder {
		if e.ranker == nil {
			e.buildRanker() //caft:alloc-ok one-time lazy construction; later replays only Reset, which is allocation-free
		}
		e.ranker.Reset(e.rankNode, e.rankUnit)
	}
	if opt.Reschedule {
		return e.st.Speculate(e.body)
	}
	return e.exec()
}

// buildRanker constructs the incremental upward-rank maintainer used by
// RankOrder replays. Node costs are the mean execution times over
// processors and the communication unit is the network's mean unit
// delay, matching the static priority levels of sched.Lister.
func (e *Engine) buildRanker() {
	e.ranker = dag.NewRanker(e.cg)
	e.rankNode = e.p.Exec.Mean()
	e.rankUnit = e.p.Network().MeanUnitDelay()
}

// Run replays the schedule against a failure trace (processor -> crash
// instant; processors absent from the map never fail, and entries
// outside [0, m) are ignored, matching sim's crash-set handling) and
// materializes the full outcome. An empty trace reproduces
// sim.Replayer's no-crash replay bit for bit.
func (e *Engine) Run(trace map[int]float64, opt Options) (*Result, error) {
	if err := e.replay(trace, opt); err != nil {
		return nil, err
	}
	res := &Result{
		Reps:        make([][]RepOutcome, len(e.taskOps)),
		Comms:       make([]CommOutcome, 0, len(e.ops)-e.s.ReplicaCount()),
		Rescheduled: e.rescheduled,
		Crashes:     len(e.crashes),
		Events:      e.events,
	}
	for t := range e.taskOps {
		res.Reps[t] = make([]RepOutcome, 0, len(e.taskOps[t]))
		for _, i := range e.taskOps[t] {
			o := &e.ops[i]
			res.Reps[t] = append(res.Reps[t], RepOutcome{
				Rep: o.rep, Alive: o.state == opDone, Reactive: o.reactive,
				PlacedAt: o.placedAt, Start: o.start, Finish: o.finish,
			})
		}
		if !e.taskDone[t] {
			res.TasksLost = append(res.TasksLost, dag.TaskID(t))
		}
	}
	for i := range e.ops {
		o := &e.ops[i]
		if o.kind != opComm {
			continue
		}
		res.Comms = append(res.Comms, CommOutcome{
			Comm: o.comm, Alive: o.state == opDone, Reactive: o.reactive,
			Start: o.start, Finish: o.finish,
		})
	}
	return res, nil
}

// Makespan replays the trace and returns the achieved latency (the
// completion time of the last task, by its earliest finished replica)
// and the number of reactively placed replicas, without materializing a
// Result — the Monte-Carlo entry point; a steady-state no-crash call
// allocates nothing. A task that never completes reports an error
// satisfying errors.Is(err, sim.ErrTaskLost).
//
//caft:zeroalloc
func (e *Engine) Makespan(trace map[int]float64, opt Options) (float64, int, error) {
	if err := e.replay(trace, opt); err != nil {
		return 0, 0, err
	}
	lat := 0.0
	for t := range e.taskDone {
		if !e.taskDone[t] {
			return math.Inf(1), e.rescheduled, fmt.Errorf("online: task %d lost (no surviving replica): %w", t, sim.ErrTaskLost) //caft:alloc-ok task-lost rejection path; the success path allocates nothing
		}
		if e.taskFinish[t] > lat {
			lat = e.taskFinish[t]
		}
	}
	return lat, e.rescheduled, nil
}
