package online

import (
	"fmt"
	"reflect"

	"caft/internal/sched"
)

// verifyPristine checks the engine's rebuilt state equals a fresh
// rebuild of the original schedule: the Speculate scope wrapping every
// reactive replay must leave no trace — records, sequence counter,
// timeline intervals and ready times all bit-identical. Test support
// for the fuzz harness's "clean rollback" property.
func (e *Engine) verifyPristine() error {
	fresh, err := sched.StateOf(e.s)
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(e.st.Reps, fresh.Reps) {
		return fmt.Errorf("online: replica records diverged from pristine state")
	}
	if !reflect.DeepEqual(e.st.Comms, fresh.Comms) {
		return fmt.Errorf("online: communication records diverged from pristine state")
	}
	if e.st.NumTimelines() != fresh.NumTimelines() {
		return fmt.Errorf("online: timeline count diverged")
	}
	for i := 0; i < e.st.NumTimelines(); i++ {
		a, b := e.st.Timeline(i), fresh.Timeline(i)
		if err := a.Validate(); err != nil {
			return fmt.Errorf("online: timeline %d inconsistent: %w", i, err)
		}
		if a.Ready() != b.Ready() {
			return fmt.Errorf("online: timeline %d ready time diverged", i)
		}
		ia, ib := a.Intervals(), b.Intervals()
		if len(ia) != len(ib) {
			return fmt.Errorf("online: timeline %d holds %d reservations, want %d", i, len(ia), len(ib))
		}
		for j := range ia {
			if ia[j] != ib[j] {
				return fmt.Errorf("online: timeline %d reservation %d diverged: %+v vs %+v", i, j, ia[j], ib[j])
			}
		}
	}
	return nil
}
