package online

import (
	"math/rand"
	"strings"
	"testing"

	"caft/internal/sched/heft"
	"caft/internal/timeline"
)

// ExecScale of all ones must reproduce the nominal replay bit for bit —
// the scaled path is the same arithmetic, not an approximation.
func TestExecScaleIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := randomProblem(rng, 40, 6, timeline.Append)
	s, err := heft.Schedule(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(s)
	if err != nil {
		t.Fatal(err)
	}
	nominal, _, err := e.Makespan(nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ones := make([]float64, p.G.NumTasks())
	for i := range ones {
		ones[i] = 1
	}
	scaled, _, err := e.Makespan(nil, Options{ExecScale: ones})
	if err != nil {
		t.Fatal(err)
	}
	if scaled != nominal {
		t.Fatalf("identity scale makespan %v != nominal %v", scaled, nominal)
	}
}

// Jittered replays of a frozen schedule are monotone in the durations:
// factors <= 1 may only move completions (and the makespan) down,
// factors >= 1 only up. This is the replay-level predictability claim
// of DESIGN.md S9 — checked here per completion, not just for the
// makespan.
func TestExecScaleMonotonePerCompletion(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 4; trial++ {
		p := randomProblem(rng, 40, 6, timeline.Append)
		s, err := heft.Schedule(p, rng)
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewEngine(s)
		if err != nil {
			t.Fatal(err)
		}
		base, err := e.Run(nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
		n := p.G.NumTasks()
		shrink, stretch := make([]float64, n), make([]float64, n)
		for i := range shrink {
			shrink[i] = 0.5 + 0.5*rng.Float64()
			stretch[i] = 1 + 0.5*rng.Float64()
		}
		down, err := e.Run(nil, Options{ExecScale: shrink})
		if err != nil {
			t.Fatal(err)
		}
		up, err := e.Run(nil, Options{ExecScale: stretch})
		if err != nil {
			t.Fatal(err)
		}
		for ti := range base.Reps {
			for ri := range base.Reps[ti] {
				b, d, u := base.Reps[ti][ri], down.Reps[ti][ri], up.Reps[ti][ri]
				if d.Finish > b.Finish+1e-9 {
					t.Fatalf("trial %d: shrunk replica (%d,%d) finishes at %v, after nominal %v", trial, ti, ri, d.Finish, b.Finish)
				}
				if u.Finish < b.Finish-1e-9 {
					t.Fatalf("trial %d: stretched replica (%d,%d) finishes at %v, before nominal %v", trial, ti, ri, u.Finish, b.Finish)
				}
			}
		}
	}
}

func TestExecScaleRejectsBadInput(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := randomProblem(rng, 20, 4, timeline.Append)
	s, err := heft.Schedule(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Makespan(nil, Options{ExecScale: []float64{1, 1}}); err == nil || !strings.Contains(err.Error(), "one per task") {
		t.Fatalf("short ExecScale accepted: %v", err)
	}
	bad := make([]float64, p.G.NumTasks())
	for i := range bad {
		bad[i] = 1
	}
	bad[3] = -0.25
	if _, _, err := e.Makespan(nil, Options{ExecScale: bad}); err == nil || !strings.Contains(err.Error(), "non-negative") {
		t.Fatalf("negative ExecScale accepted: %v", err)
	}
	// The engine must stay usable after a rejected replay.
	if _, _, err := e.Makespan(nil, Options{}); err != nil {
		t.Fatalf("engine broken after rejected options: %v", err)
	}
}
