package online

import (
	"fmt"
	"math"
	"sort"

	"caft/internal/dag"
	"caft/internal/sched"
)

// reschedule is the reactive re-mapper, run after the death cascade of
// a crash at tau. It cancels the reservations of everything that just
// died (journaled — the enclosing Speculate scope restores the state
// after the replay), computes the set of tasks that must be (re-)
// executed, and places one new replica per task on the surviving
// processors with minimum-finish probes, in topological order so that
// re-executed predecessors feed re-executed successors.
//
// A task needs re-execution when it has neither a live replica nor a
// finished replica whose data is still reachable (its processor alive).
// The closure extends upward: a predecessor whose result exists only on
// crashed processors must be recomputed before its consumer can be fed.
// Re-executing an already-completed task does not move its completion
// time — the task was computed when its first replica finished — it
// only regenerates the data later consumers read.
//
// The crash path may allocate; only the no-crash steady state is pinned
// allocation-free.
func (e *Engine) reschedule(tau float64) error {
	for _, i := range e.deadList {
		o := &e.ops[i]
		var err error
		if o.kind == opRep {
			err = e.st.CancelReplica(o.rep)
		} else {
			err = e.st.CancelComm(o.comm)
		}
		if err != nil {
			return fmt.Errorf("online: cancel at tau=%v: %w", tau, err)
		}
	}

	// Lost tasks, then the upward data-availability closure.
	for t := range e.inNeed {
		e.inNeed[t] = false
	}
	e.needList = e.needList[:0]
	for t := range e.taskDone {
		if !e.taskDone[t] && !e.hasLive(dag.TaskID(t)) && !e.unrecover[t] {
			e.inNeed[t] = true
			e.needList = append(e.needList, int32(t))
		}
	}
	for k := 0; k < len(e.needList); k++ {
		t := dag.TaskID(e.needList[k])
		from, _ := e.cg.Pred(t)
		for _, f := range from {
			p := dag.TaskID(f)
			if e.inNeed[p] || e.unrecover[p] || e.hasData(p) {
				continue
			}
			e.inNeed[p] = true
			e.needList = append(e.needList, int32(p))
		}
	}
	if e.opt.RankOrder {
		// Most critical lost work first. Upward ranks strictly decrease
		// along edges (execution costs are positive), so descending rank
		// is topologically safe; ties fall back to topological index.
		sort.Slice(e.needList, func(a, b int) bool {
			ra := e.ranker.Rank(dag.TaskID(e.needList[a]))
			rb := e.ranker.Rank(dag.TaskID(e.needList[b]))
			if ra != rb {
				return ra > rb
			}
			return e.topoIdx[e.needList[a]] < e.topoIdx[e.needList[b]]
		})
	} else {
		sort.Slice(e.needList, func(a, b int) bool {
			return e.topoIdx[e.needList[a]] < e.topoIdx[e.needList[b]]
		})
	}

	e.st.SetFloor(tau)
	defer e.st.SetFloor(0)
	for _, t := range e.needList {
		if err := e.placeReactive(dag.TaskID(t), tau); err != nil {
			return err
		}
	}
	return nil
}

// hasLive reports whether t has a replica still pending or running.
func (e *Engine) hasLive(t dag.TaskID) bool {
	for _, i := range e.taskOps[t] {
		if st := e.ops[i].state; st == opPending || st == opRunning {
			return true
		}
	}
	return false
}

// hasData reports whether t's result is (or will be) available to new
// consumers: a finished replica on a surviving processor, or a live
// replica.
func (e *Engine) hasData(t dag.TaskID) bool {
	for _, i := range e.taskOps[t] {
		o := &e.ops[i]
		if o.state == opDone && !e.procDead[o.rep.Proc] {
			return true
		}
	}
	return e.hasLive(t)
}

// placeReactive places one new replica of t on the surviving processor
// giving the earliest finish, then wires the placement into the event
// tables. Probing consults the bounded candidate set (Problem.ProbeWidth
// via State.Candidates; all m processors by default) and falls back to
// the full processor set when no bounded candidate survives or accepts —
// bounding must never turn a recoverable task unrecoverable. A task with
// no reachable source for some predecessor, or no feasible processor at
// all, is marked unrecoverable and stays lost.
func (e *Engine) placeReactive(t dag.TaskID, tau float64) error {
	pf, pv := e.cg.Pred(t)
	sets := make([]sched.SourceSet, 0, len(pf))
	for k, f := range pf {
		from := dag.TaskID(f)
		var srcs []sched.Replica
		for _, r := range e.st.Reps[from] {
			if !e.procDead[r.Proc] {
				srcs = append(srcs, r)
			}
		}
		if len(srcs) == 0 {
			e.markUnrecoverable(t)
			return nil
		}
		sets = append(sets, sched.SourceSet{Pred: from, Volume: pv[k], Sources: srcs})
	}
	copyIdx := int(e.nextCopy[t])
	cands := e.st.Candidates(t, 1)
	bestProc := e.bestSurvivor(t, copyIdx, cands, sets)
	if bestProc < 0 && len(cands) < e.m {
		bestProc = e.bestSurvivor(t, copyIdx, nil, sets)
	}
	if bestProc < 0 {
		e.markUnrecoverable(t)
		return nil
	}
	e.nextCopy[t]++
	commsBefore := len(e.st.Comms)
	rep, err := e.st.PlaceReplica(t, copyIdx, bestProc, sets)
	if err != nil {
		return fmt.Errorf("online: reactive placement of task %d: %w", t, err)
	}
	e.wire(t, rep, e.st.Comms[commsBefore:], tau)
	e.rescheduled++
	return nil
}

// bestSurvivor probes placing replica copyIdx of t on each candidate
// processor — the given slice, or every processor when procs is nil —
// skipping crashed ones, and returns the processor with the earliest
// probed finish, or -1 when no candidate survives and accepts.
func (e *Engine) bestSurvivor(t dag.TaskID, copyIdx int, procs []int, sets []sched.SourceSet) int {
	bestProc, bestFin := -1, math.Inf(1)
	n := e.m
	if procs != nil {
		n = len(procs)
	}
	for k := 0; k < n; k++ {
		proc := k
		if procs != nil {
			proc = procs[k]
		}
		if e.procDead[proc] {
			continue
		}
		rep, err := e.st.ProbeReplica(t, copyIdx, proc, sets)
		if err != nil {
			continue
		}
		if rep.Finish < bestFin {
			bestProc, bestFin = proc, rep.Finish
		}
	}
	return bestProc
}

// markUnrecoverable records that t can never complete in this replay.
// Under RankOrder the task is disabled in the rank maintainer and the
// ranks of its ancestor cone are repaired incrementally — paths through
// dead work no longer inflate the urgency of live tasks.
func (e *Engine) markUnrecoverable(t dag.TaskID) {
	e.unrecover[t] = true
	if e.opt.RankOrder {
		e.ranker.Disable(t)
		e.ranker.Repair()
	}
}

// wire appends the reactive placement — its input transfers first, then
// the replica — to the event tables and registers every constraint.
// All new operations carry minStart = tau: a reactive placement cannot
// occupy resources before the crash that triggered it was observed.
func (e *Engine) wire(t dag.TaskID, rep sched.Replica, newComms []sched.Comm, tau float64) {
	pf, _ := e.cg.Pred(t)
	repIdx := int32(len(e.ops) + len(newComms))
	slotBase := int32(len(e.slotOf))
	for range pf {
		e.slotOf = append(e.slotOf, repIdx)
		e.slotInit = append(e.slotInit, 0)
		e.slotLeft = append(e.slotLeft, 0)
		e.slotDone = append(e.slotDone, false)
	}
	for _, c := range newComms {
		ci := int32(len(e.ops))
		o := op{kind: opComm, state: opPending, reactive: true, comm: c, dur: c.Dur, seq: c.Seq, minStart: tau, placedAt: tau}
		o.src = e.lookup(c.From, c.SrcCopy)
		o.feedBase = int32(len(e.feedAdj))
		for j, f := range pf {
			if dag.TaskID(f) == c.From {
				slot := slotBase + int32(j)
				e.feedAdj = append(e.feedAdj, slot)
				e.slotLeft[slot]++
			}
		}
		o.nFeeds = int32(len(e.feedAdj)) - o.feedBase
		o.resBase = int32(len(e.resIDs))
		if !c.Intra && !e.macro {
			e.resIDs = append(e.resIDs, int32(e.sendID(c.SrcProc)), int32(e.recvID(c.DstProc)))
			for _, l := range e.net.Route(c.SrcProc, c.DstProc) {
				e.resIDs = append(e.resIDs, int32(e.linkID(l)))
			}
		}
		o.nRes = int32(len(e.resIDs)) - o.resBase
		o.waits = o.nRes + 1
		e.ops = append(e.ops, o)
		e.out = append(e.out, nil)
		// Register: the source constraint resolves against the executed
		// finish when the source already ran; otherwise it resolves on
		// the source's completion event.
		src := &e.ops[o.src]
		if src.state == opDone {
			e.resolve(ci, src.finish)
		} else {
			e.out[o.src] = append(e.out[o.src], ci)
		}
		oo := &e.ops[ci]
		for k := oo.resBase; k < oo.resBase+oo.nRes; k++ {
			e.addMember(e.resIDs[k], ci)
		}
	}
	o := op{kind: opRep, state: opPending, reactive: true, task: t, rep: rep, dur: rep.Finish - rep.Start, seq: rep.Seq, src: noOp, minStart: tau, placedAt: tau}
	o.slotBase = slotBase
	o.nSlots = int32(len(pf))
	o.resBase = int32(len(e.resIDs))
	e.resIDs = append(e.resIDs, int32(e.computeID(rep.Proc)))
	o.nRes = 1
	o.waits = o.nRes + o.nSlots
	e.ops = append(e.ops, o)
	e.out = append(e.out, nil)
	e.taskOps[t] = append(e.taskOps[t], repIdx)
	e.repOf[t] = append(e.repOf[t], repIdx)
	e.addMember(int32(e.computeID(rep.Proc)), repIdx)
}
