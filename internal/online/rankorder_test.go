package online

import (
	"math"
	"math/rand"
	"testing"

	"caft/internal/sched/heft"
	"caft/internal/timeline"
)

// TestOnlineRankOrderRecovers replays crash traces with rank-ordered
// rescheduling: every recoverable task completes, the outcome is
// validator-clean, the engine stays pristine, and a no-crash replay —
// where the re-placement order never fires — is bit-identical to the
// topological-order default.
func TestOnlineRankOrderRecovers(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 6; trial++ {
		p := randomProblem(rng, 25+rng.Intn(10), 5, timeline.Policy(trial%2))
		s, err := heft.Schedule(p, rng)
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewEngine(s)
		if err != nil {
			t.Fatal(err)
		}
		clean, err := e.Run(nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
		cleanRank, err := e.Run(nil, Options{RankOrder: true, Reschedule: true})
		if err != nil {
			t.Fatal(err)
		}
		sameOutcome(t, "no-crash rank order", cleanRank, clean)
		base, _, err := e.Makespan(nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
		trace := map[int]float64{
			rng.Intn(5): base * rng.Float64(),
			rng.Intn(5): base * rng.Float64(),
		}
		res, err := e.Run(trace, Options{Reschedule: true, RankOrder: true})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(res.TasksLost) != 0 {
			t.Fatalf("trial %d: rank-ordered replay lost tasks %v with %d of 5 processors crashed", trial, res.TasksLost, len(trace))
		}
		if err := Validate(p, res, trace); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if lat, err := res.Latency(); err != nil || math.IsInf(lat, 1) {
			t.Fatalf("trial %d: latency %v (%v)", trial, lat, err)
		}
		if err := e.verifyPristine(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// TestOnlineRankOrderSameLossSet pins that the re-placement order only
// affects timing, never recoverability: under every trace the set of
// lost tasks must match the topological-order engine exactly.
func TestOnlineRankOrderSameLossSet(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	p := randomProblem(rng, 30, 5, timeline.Append)
	s, err := heft.Schedule(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(s)
	if err != nil {
		t.Fatal(err)
	}
	h := horizonOf(t, e)
	for draw := 0; draw < 10; draw++ {
		trace := map[int]float64{
			draw % 5:       h * rng.Float64(),
			(draw * 3) % 5: h * rng.Float64(),
		}
		topo, err := e.Run(trace, Options{Reschedule: true})
		if err != nil {
			t.Fatal(err)
		}
		rank, err := e.Run(trace, Options{Reschedule: true, RankOrder: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(topo.TasksLost) != len(rank.TasksLost) {
			t.Fatalf("draw %d: topo order lost %v, rank order lost %v", draw, topo.TasksLost, rank.TasksLost)
		}
		for i := range topo.TasksLost {
			if topo.TasksLost[i] != rank.TasksLost[i] {
				t.Fatalf("draw %d: topo order lost %v, rank order lost %v", draw, topo.TasksLost, rank.TasksLost)
			}
		}
	}
}

// TestOnlineRankOrderAllocPin pins the steady-state rank-ordered replay:
// after the lazy ranker build, a no-crash Makespan — including the
// per-replay Ranker.Reset — allocates nothing.
func TestOnlineRankOrderAllocPin(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	p := randomProblem(rng, 40, 6, timeline.Append)
	s, err := heft.Schedule(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(s)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Reschedule: true, RankOrder: true}
	if _, _, err := e.Makespan(nil, opt); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, err := e.Makespan(nil, opt); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state rank-ordered replay allocates %.1f/op, want 0", allocs)
	}
}
