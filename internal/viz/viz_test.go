package viz

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"caft/internal/core"
	"caft/internal/gen"
	"caft/internal/platform"
	"caft/internal/sched"
	"caft/internal/timeline"
)

func testSchedule(t *testing.T) *sched.Schedule {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	g := gen.Diamond(2, 2, 10)
	plat := platform.New(4, 1)
	exec := platform.NewExecMatrix(g.NumTasks(), 4)
	for ti := range exec {
		for k := range exec[ti] {
			exec[ti][k] = 5
		}
	}
	p := &sched.Problem{G: g, Plat: plat, Exec: exec, Model: sched.OnePort, Policy: timeline.Append}
	s, err := core.Schedule(p, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRenderBasics(t *testing.T) {
	s := testSchedule(t)
	var buf bytes.Buffer
	if err := Render(&buf, s, Options{Width: 60}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"time 0 ..", "P0 ", "P3 ", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
	// One cpu lane per processor.
	if got := strings.Count(out, "cpu"); got != 4 {
		t.Errorf("cpu lanes = %d, want 4", got)
	}
	if strings.Contains(out, ">") || strings.Contains(out, "<") {
		t.Error("port lanes rendered without Ports option")
	}
}

func TestRenderPorts(t *testing.T) {
	s := testSchedule(t)
	var buf bytes.Buffer
	if err := Render(&buf, s, Options{Width: 80, Ports: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "snd") != 4 || strings.Count(out, "rcv") != 4 {
		t.Errorf("port lanes missing:\n%s", out)
	}
	if s.MessageCount() > 0 && !strings.Contains(out, ">") {
		t.Error("no send occupation drawn despite messages")
	}
}

func TestRenderDefaultsAndDegenerate(t *testing.T) {
	s := testSchedule(t)
	var buf bytes.Buffer
	if err := Render(&buf, s, Options{}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// Default width 100: every lane line is label + 100 cells + bars.
	if len(lines[1]) < 100 {
		t.Errorf("lane too short: %d", len(lines[1]))
	}
}

func TestSummary(t *testing.T) {
	s := testSchedule(t)
	var buf bytes.Buffer
	Summary(&buf, s)
	out := buf.String()
	if !strings.Contains(out, "replicas: 12") { // 6 tasks x 2 copies
		t.Errorf("summary missing replica count:\n%s", out)
	}
	if !strings.Contains(out, "latency:") || !strings.Contains(out, "copy0@P") {
		t.Errorf("summary incomplete:\n%s", out)
	}
}
