package viz

import (
	"bytes"
	"strings"
	"testing"
)

func TestRenderSVG(t *testing.T) {
	s := testSchedule(t)
	var buf bytes.Buffer
	if err := RenderSVG(&buf, s, SVGOptions{Title: "diamond"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<svg", "</svg>", "diamond", "P0", "P3", "<rect"} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// One bar per replica at least.
	if got := strings.Count(out, "<rect"); got < s.ReplicaCount() {
		t.Errorf("only %d rects for %d replicas", got, s.ReplicaCount())
	}
	if strings.Contains(out, "snd") {
		t.Error("port lanes drawn without Ports option")
	}
}

func TestRenderSVGPorts(t *testing.T) {
	s := testSchedule(t)
	var buf bytes.Buffer
	if err := RenderSVG(&buf, s, SVGOptions{Ports: true, Width: 640, RowHeight: 18}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "snd") || !strings.Contains(out, "rcv") {
		t.Error("port lanes missing")
	}
	if s.MessageCount() > 0 && !strings.Contains(out, "→") {
		t.Error("no communication tooltips")
	}
}
