// Package viz renders schedules as ASCII Gantt charts: one lane per
// processor for task executions, and optional lanes for the send and
// receive port occupation, which makes one-port contention visible at a
// glance.
//
//caft:deterministic
package viz

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"caft/internal/sched"
)

// Options controls the rendering.
type Options struct {
	// Width is the number of character cells the time axis spans
	// (default 100).
	Width int
	// Ports adds send/recv port lanes per processor.
	Ports bool
}

// Render writes an ASCII Gantt chart of the schedule.
func Render(w io.Writer, s *sched.Schedule, opt Options) error {
	width := opt.Width
	if width <= 0 {
		width = 100
	}
	horizon := s.MakespanAll()
	for _, c := range s.Comms {
		if c.Finish > horizon {
			horizon = c.Finish
		}
	}
	if horizon <= 0 {
		horizon = 1
	}
	cell := func(t float64) int {
		i := int(t / horizon * float64(width))
		if i >= width {
			i = width - 1
		}
		if i < 0 {
			i = 0
		}
		return i
	}
	m := s.P.Plat.M
	type lane struct {
		label string
		cells []rune
	}
	newLane := func(label string) *lane {
		cells := make([]rune, width)
		for i := range cells {
			cells[i] = '.'
		}
		return &lane{label: label, cells: cells}
	}
	paint := func(l *lane, start, finish float64, glyph rune, tag string) {
		a, b := cell(start), cell(finish)
		if finish > start && b <= a {
			b = a + 1
		}
		for i := a; i < b && i < width; i++ {
			l.cells[i] = glyph
		}
		// Write the tag into the bar if it fits.
		for i, r := range tag {
			if a+i >= b-0 || a+i >= width {
				break
			}
			l.cells[a+i] = r
		}
	}

	fmt.Fprintf(w, "time 0 .. %.2f (one cell = %.2f)\n", horizon, horizon/float64(width))
	for proc := 0; proc < m; proc++ {
		cl := newLane(fmt.Sprintf("P%-2d cpu ", proc))
		var reps []sched.Replica
		for t := range s.Reps {
			for _, r := range s.Reps[t] {
				if r.Proc == proc {
					reps = append(reps, r)
				}
			}
		}
		sort.Slice(reps, func(i, j int) bool { return reps[i].Start < reps[j].Start })
		for _, r := range reps {
			paint(cl, r.Start, r.Finish, '#', fmt.Sprintf("%d", r.Task))
		}
		fmt.Fprintf(w, "%s|%s|\n", cl.label, string(cl.cells))
		if !opt.Ports {
			continue
		}
		snd, rcv := newLane(fmt.Sprintf("P%-2d snd ", proc)), newLane(fmt.Sprintf("P%-2d rcv ", proc))
		for _, c := range s.Comms {
			if c.Intra {
				continue
			}
			if c.SrcProc == proc {
				paint(snd, c.Start, c.Finish, '>', fmt.Sprintf("%d", c.To))
			}
			if c.DstProc == proc {
				paint(rcv, c.Start, c.Finish, '<', fmt.Sprintf("%d", c.From))
			}
		}
		fmt.Fprintf(w, "%s|%s|\n", snd.label, string(snd.cells))
		fmt.Fprintf(w, "%s|%s|\n", rcv.label, string(rcv.cells))
	}
	return nil
}

// Summary writes a one-paragraph textual summary of the schedule.
func Summary(w io.Writer, s *sched.Schedule) {
	reps := s.ReplicaCount()
	intra := len(s.Comms) - s.MessageCount()
	fmt.Fprintf(w, "tasks: %d, replicas: %d, messages: %d (+%d intra), latency: %.2f, makespan(all replicas): %.2f\n",
		len(s.Reps), reps, s.MessageCount(), intra, s.ScheduledLatency(), s.MakespanAll())
	var lines []string
	for t := range s.Reps {
		var parts []string
		for _, r := range s.Reps[t] {
			parts = append(parts, fmt.Sprintf("copy%d@P%d[%.1f,%.1f)", r.Copy, r.Proc, r.Start, r.Finish))
		}
		lines = append(lines, fmt.Sprintf("  %s: %s", s.P.G.Name(s.Reps[t][0].Task), strings.Join(parts, " ")))
	}
	for _, l := range lines {
		fmt.Fprintln(w, l)
	}
}
