package viz

import (
	"fmt"
	"io"

	"caft/internal/sched"
)

// SVGOptions controls RenderSVG.
type SVGOptions struct {
	// Width of the drawing area in pixels (default 960).
	Width int
	// RowHeight per lane in pixels (default 22).
	RowHeight int
	// Ports adds send/receive lanes per processor.
	Ports bool
	// Title is drawn above the chart.
	Title string
}

// palette assigns stable colors per task.
var palette = []string{
	"#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
	"#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
}

// RenderSVG writes the schedule as a self-contained SVG Gantt chart:
// one lane per processor (plus optional port lanes), colored bars per
// task with replica labels, and a time axis.
func RenderSVG(w io.Writer, s *sched.Schedule, opt SVGOptions) error {
	if opt.Width <= 0 {
		opt.Width = 960
	}
	if opt.RowHeight <= 0 {
		opt.RowHeight = 22
	}
	const labelW = 70
	horizon := s.MakespanAll()
	for _, c := range s.Comms {
		if c.Finish > horizon {
			horizon = c.Finish
		}
	}
	if horizon <= 0 {
		horizon = 1
	}
	m := s.P.Plat.M
	lanesPerProc := 1
	if opt.Ports {
		lanesPerProc = 3
	}
	rows := m * lanesPerProc
	top := 30
	height := top + rows*opt.RowHeight + 30
	x := func(t float64) float64 {
		return labelW + t/horizon*float64(opt.Width-labelW-10)
	}
	laneY := func(row int) int { return top + row*opt.RowHeight }

	fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="11">`+"\n", opt.Width, height)
	if opt.Title != "" {
		fmt.Fprintf(w, `<text x="%d" y="18" font-size="14">%s</text>`+"\n", labelW, opt.Title)
	}
	// Lane backgrounds and labels.
	for proc := 0; proc < m; proc++ {
		base := proc * lanesPerProc
		names := []string{fmt.Sprintf("P%d", proc)}
		if opt.Ports {
			names = append(names, fmt.Sprintf("P%d snd", proc), fmt.Sprintf("P%d rcv", proc))
		}
		for i, name := range names {
			y := laneY(base + i)
			fill := "#f6f6f6"
			if (base+i)%2 == 1 {
				fill = "#ececec"
			}
			fmt.Fprintf(w, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s"/>`+"\n",
				labelW, y, opt.Width-labelW-10, opt.RowHeight-2, fill)
			fmt.Fprintf(w, `<text x="4" y="%d">%s</text>`+"\n", y+opt.RowHeight-8, name)
		}
	}
	// Task bars.
	for t := range s.Reps {
		color := palette[t%len(palette)]
		for _, r := range s.Reps[t] {
			row := r.Proc * lanesPerProc
			y := laneY(row)
			x0, x1 := x(r.Start), x(r.Finish)
			fmt.Fprintf(w, `<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s" stroke="#333" stroke-width="0.5"><title>%s copy %d on P%d [%.2f, %.2f)</title></rect>`+"\n",
				x0, y+1, x1-x0, opt.RowHeight-4, color, s.P.G.Name(r.Task), r.Copy, r.Proc, r.Start, r.Finish)
			if x1-x0 > 18 {
				fmt.Fprintf(w, `<text x="%.1f" y="%d" fill="#fff">%d</text>`+"\n", x0+2, y+opt.RowHeight-8, r.Task)
			}
		}
	}
	// Communication bars on port lanes.
	if opt.Ports {
		for _, c := range s.Comms {
			if c.Intra {
				continue
			}
			color := palette[int(c.From)%len(palette)]
			x0, x1 := x(c.Start), x(c.Finish)
			ys := laneY(c.SrcProc*lanesPerProc + 1)
			yr := laneY(c.DstProc*lanesPerProc + 2)
			for _, y := range []int{ys, yr} {
				fmt.Fprintf(w, `<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s" opacity="0.6"><title>%d→%d vol %.1f [%.2f, %.2f)</title></rect>`+"\n",
					x0, y+3, x1-x0, opt.RowHeight-8, color, c.From, c.To, c.Volume, c.Start, c.Finish)
			}
		}
	}
	// Time axis.
	axisY := top + rows*opt.RowHeight + 12
	fmt.Fprintf(w, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`+"\n", labelW, axisY-8, opt.Width-10, axisY-8)
	for i := 0; i <= 10; i++ {
		tv := horizon * float64(i) / 10
		fmt.Fprintf(w, `<text x="%.1f" y="%d" fill="#333">%.0f</text>`+"\n", x(tv)-8, axisY+4, tv)
	}
	fmt.Fprintln(w, `</svg>`)
	return nil
}
