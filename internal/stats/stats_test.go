package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Mean([]float64{2}) != 2 {
		t.Error("Mean singleton")
	}
	if Mean([]float64{1, 2, 3, 4}) != 2.5 {
		t.Error("Mean quad")
	}
}

func TestStd(t *testing.T) {
	if Std(nil) != 0 || Std([]float64{5}) != 0 {
		t.Error("Std of degenerate samples must be 0")
	}
	// Sample std of {2,4,4,4,5,5,7,9} is sqrt(32/7).
	got := Std([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Std = %v, want %v", got, want)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{3, 1, 2})
	if s.N != 3 || s.Mean != 2 || s.Min != 1 || s.Max != 3 || s.Median != 2 {
		t.Errorf("Summary = %+v", s)
	}
	if s.CI95 <= 0 {
		t.Error("CI95 must be positive for n > 1")
	}
	if Summarize(nil).N != 0 {
		t.Error("empty summary")
	}
	even := Summarize([]float64{4, 1, 3, 2})
	if even.Median != 2.5 {
		t.Errorf("even median = %v, want 2.5", even.Median)
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Summarize mutated input: %v", xs)
	}
}

func TestQuickSummaryInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		s := Summarize(xs)
		if s.Min > s.Median || s.Median > s.Max {
			return false
		}
		if s.Mean < s.Min || s.Mean > s.Max {
			return false
		}
		if s.Std < 0 || s.CI95 < 0 {
			return false
		}
		// Shifting the sample shifts mean/median/min/max, not std.
		shifted := make([]float64, n)
		for i := range xs {
			shifted[i] = xs[i] + 100
		}
		s2 := Summarize(shifted)
		return math.Abs(s2.Mean-s.Mean-100) < 1e-9 && math.Abs(s2.Std-s.Std) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
