package stats

import (
	"math"
	"testing"
)

func TestMeanOrNaN(t *testing.T) {
	if got := MeanOrNaN(nil); !math.IsNaN(got) {
		t.Errorf("MeanOrNaN(nil) = %v, want NaN", got)
	}
	if got := MeanOrNaN([]float64{}); !math.IsNaN(got) {
		t.Errorf("MeanOrNaN(empty) = %v, want NaN", got)
	}
	if got := MeanOrNaN([]float64{2, 4}); got != 3 {
		t.Errorf("MeanOrNaN({2,4}) = %v, want 3", got)
	}
	// Contrast with Mean, which keeps its historical 0-for-empty
	// contract for callers that treat an empty sample as a zero total.
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
}
