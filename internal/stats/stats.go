// Package stats provides the small set of descriptive statistics the
// experiment harness reports: mean, standard deviation, 95% confidence
// half-width and extrema.
//
//caft:deterministic
package stats

import "math"

// Summary describes a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1)
	CI95   float64 // half-width of the normal-approximation 95% CI
	Min    float64
	Max    float64
	Median float64
}

// Mean returns the arithmetic mean (0 for an empty sample).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// MeanOrNaN returns the arithmetic mean, or NaN for an empty sample.
// Use it for series where "no data" must stay distinguishable from a
// genuine zero — e.g. a crash-latency series in which every draw lost a
// task would otherwise read as latency 0.0 ("instant").
func MeanOrNaN(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return Mean(xs)
}

// Std returns the sample standard deviation (0 for n < 2).
func Std(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(n-1))
}

// Summarize computes all statistics of the sample.
func Summarize(xs []float64) Summary {
	out := Summary{N: len(xs)}
	if len(xs) == 0 {
		return out
	}
	out.Mean = Mean(xs)
	out.Std = Std(xs)
	if len(xs) > 1 {
		out.CI95 = 1.96 * out.Std / math.Sqrt(float64(len(xs)))
	}
	out.Min, out.Max = xs[0], xs[0]
	for _, x := range xs {
		if x < out.Min {
			out.Min = x
		}
		if x > out.Max {
			out.Max = x
		}
	}
	out.Median = median(xs)
	return out
}

func median(xs []float64) float64 {
	cp := append([]float64(nil), xs...)
	// insertion sort: samples are small (tens of graphs per point)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}
