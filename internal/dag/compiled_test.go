package dag

import (
	"math/rand"
	"testing"
)

func TestCompiledMatchesDAG(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomDAG(rng, 200)
	c, err := g.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if c.NumTasks() != g.NumTasks() || c.NumEdges() != g.NumEdges() {
		t.Fatalf("size mismatch: compiled %d/%d vs %d/%d", c.NumTasks(), c.NumEdges(), g.NumTasks(), g.NumEdges())
	}
	order, _ := g.TopoOrder()
	topo := c.Topo()
	for i, tid := range order {
		if TaskID(topo[i]) != tid {
			t.Fatalf("topo[%d] = %d, want %d", i, topo[i], tid)
		}
		if int(c.TopoIndex()[tid]) != i {
			t.Fatalf("topoIdx[%d] = %d, want %d", tid, c.TopoIndex()[tid], i)
		}
	}
	for task := 0; task < g.NumTasks(); task++ {
		tid := TaskID(task)
		sTo, sVol := c.Succ(tid)
		if len(sTo) != g.OutDegree(tid) || c.OutDegree(tid) != g.OutDegree(tid) {
			t.Fatalf("task %d: succ row length %d, want %d", task, len(sTo), g.OutDegree(tid))
		}
		for k, e := range g.Succ(tid) {
			if TaskID(sTo[k]) != e.To || sVol[k] != e.Volume {
				t.Fatalf("task %d succ[%d]: got (%d, %g), want (%d, %g)", task, k, sTo[k], sVol[k], e.To, e.Volume)
			}
		}
		pFrom, pVol := c.Pred(tid)
		if len(pFrom) != g.InDegree(tid) || c.InDegree(tid) != g.InDegree(tid) {
			t.Fatalf("task %d: pred row length %d, want %d", task, len(pFrom), g.InDegree(tid))
		}
		for k, e := range g.Pred(tid) {
			if TaskID(pFrom[k]) != e.From || pVol[k] != e.Volume {
				t.Fatalf("task %d pred[%d]: got (%d, %g), want (%d, %g)", task, k, pFrom[k], pVol[k], e.From, e.Volume)
			}
		}
	}
}

func TestCompiledLevelsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomDAG(rng, 300)
	c, err := g.Compile()
	if err != nil {
		t.Fatal(err)
	}
	comp := make([]float64, g.NumTasks())
	for i := range comp {
		comp[i] = 1 + rng.Float64()*20
	}
	const unit = 0.37
	comm := func(e Edge) float64 { return e.Volume * unit }

	wantTL := g.TopLevels(comp, comm)
	gotTL := c.TopLevelsInto(make([]float64, g.NumTasks()), comp, unit)
	wantBL := g.BottomLevels(comp, comm)
	gotBL := c.BottomLevelsInto(make([]float64, g.NumTasks()), comp, unit)
	for i := range wantTL {
		if gotTL[i] != wantTL[i] {
			t.Fatalf("top level of %d: got %v, want %v (must be bit-identical)", i, gotTL[i], wantTL[i])
		}
		if gotBL[i] != wantBL[i] {
			t.Fatalf("bottom level of %d: got %v, want %v (must be bit-identical)", i, gotBL[i], wantBL[i])
		}
	}
}

func TestCompileCaching(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	c1, err := g.Compile()
	if err != nil {
		t.Fatal(err)
	}
	c2, _ := g.Compile()
	if c1 != c2 {
		t.Fatal("second Compile on an unchanged graph should return the cached view")
	}
	g.AddEdge(1, 2, 1)
	c3, _ := g.Compile()
	if c3 == c1 {
		t.Fatal("Compile after AddEdge should rebuild the view")
	}
	if c3.NumEdges() != 2 {
		t.Fatalf("rebuilt view has %d edges, want 2", c3.NumEdges())
	}
	g.AddTask("x")
	c4, _ := g.Compile()
	if c4 == c3 || c4.NumTasks() != 4 {
		t.Fatal("Compile after AddTask should rebuild the view")
	}
}

func TestCompileCyclic(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 0, 1)
	if _, err := g.Compile(); err != ErrCycle {
		t.Fatalf("Compile on a cyclic graph: got %v, want ErrCycle", err)
	}
}

func TestLazyNames(t *testing.T) {
	g := New(3)
	for i, want := range []string{"t0", "t1", "t2"} {
		if got := g.Name(TaskID(i)); got != want {
			t.Fatalf("Name(%d) = %q, want %q", i, got, want)
		}
	}
	id := g.AddTask("extra")
	if got := g.Name(id); got != "extra" {
		t.Fatalf("explicit name: got %q, want %q", got, "extra")
	}
	if got := g.Name(1); got != "t1" {
		t.Fatalf("generated name after AddTask: got %q, want %q", got, "t1")
	}
	if g.NumTasks() != 4 {
		t.Fatalf("NumTasks = %d, want 4", g.NumTasks())
	}
}

func TestLazyNameConstructionAllocs(t *testing.T) {
	// New must not pay one string allocation per task: the whole point
	// of lazy names. 4 allocs = DAG struct + succ + pred (+ slack).
	allocs := testing.AllocsPerRun(10, func() {
		g := New(100000)
		_ = g
	})
	if allocs > 4 {
		t.Fatalf("New(1e5) costs %v allocs; generated names must be lazy", allocs)
	}
}

func TestRankerMatchesBottomLevels(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := randomDAG(rng, 250)
	c, err := g.Compile()
	if err != nil {
		t.Fatal(err)
	}
	node := make([]float64, g.NumTasks())
	for i := range node {
		node[i] = 1 + rng.Float64()*10
	}
	const unit = 0.5
	r := NewRanker(c)
	r.Reset(node, unit)
	want := g.BottomLevels(node, func(e Edge) float64 { return e.Volume * unit })
	for i := range want {
		if r.Rank(TaskID(i)) != want[i] {
			t.Fatalf("rank of %d: got %v, want bottom level %v", i, r.Rank(TaskID(i)), want[i])
		}
	}
}

func TestRankerIncrementalMatchesFullRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	g := randomDAG(rng, 250)
	c, err := g.Compile()
	if err != nil {
		t.Fatal(err)
	}
	node := make([]float64, g.NumTasks())
	for i := range node {
		node[i] = 1 + rng.Float64()*10
	}
	const unit = 0.8
	r := NewRanker(c)
	r.Reset(node, unit)
	ref := NewRanker(c)

	for round := 0; round < 50; round++ {
		t1 := TaskID(rng.Intn(g.NumTasks()))
		switch rng.Intn(3) {
		case 0:
			r.Disable(t1)
		case 1:
			r.Enable(t1)
		case 2:
			node[t1] = 1 + rng.Float64()*10
			r.SetNodeCost(t1, node[t1])
		}
		cone := r.Repair()
		if cone > g.NumTasks() {
			t.Fatalf("round %d: dirty cone %d exceeds v=%d", round, cone, g.NumTasks())
		}

		// Reference: full recompute with the same disabled set.
		ref.Reset(node, unit)
		for i := 0; i < g.NumTasks(); i++ {
			if r.Disabled(TaskID(i)) {
				ref.Disable(TaskID(i))
			}
		}
		ref.Repair()
		for i := 0; i < g.NumTasks(); i++ {
			if r.Rank(TaskID(i)) != ref.Rank(TaskID(i)) {
				t.Fatalf("round %d: rank of %d diverged: incremental %v, full %v",
					round, i, r.Rank(TaskID(i)), ref.Rank(TaskID(i)))
			}
		}
	}
}

func TestRankerDirtyConeIsLocal(t *testing.T) {
	// On a long chain, disabling the exit re-ranks the whole chain, but
	// disabling a task near the entry touches only its short prefix.
	const v = 1000
	g := New(v)
	for i := 0; i < v-1; i++ {
		g.AddEdge(TaskID(i), TaskID(i+1), 1)
	}
	c, err := g.Compile()
	if err != nil {
		t.Fatal(err)
	}
	node := make([]float64, v)
	for i := range node {
		node[i] = 1
	}
	r := NewRanker(c)
	r.Reset(node, 1)
	r.Disable(5)
	if cone := r.Repair(); cone > 7 {
		t.Fatalf("disabling task 5 of a chain re-ranked %d tasks; want <= 7 (the dirty cone)", cone)
	}
}

// TestRankRepairAllocPin pins the steady-state crash path: after
// warmup, disable + repair + re-enable + repair allocates nothing.
func TestRankRepairAllocPin(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := randomDAG(rng, 400)
	c, err := g.Compile()
	if err != nil {
		t.Fatal(err)
	}
	node := make([]float64, g.NumTasks())
	for i := range node {
		node[i] = 2
	}
	r := NewRanker(c)
	r.Reset(node, 1)
	// Warm the dirty heap to steady capacity.
	for i := 0; i < 10; i++ {
		r.Disable(TaskID(i))
		r.Repair()
		r.Enable(TaskID(i))
		r.Repair()
	}
	allocs := testing.AllocsPerRun(20, func() {
		r.Disable(3)
		r.Repair()
		r.Enable(3)
		r.Repair()
	})
	if allocs != 0 {
		t.Fatalf("rank maintenance allocates %v per crash; pinned at 0", allocs)
	}
	allocs = testing.AllocsPerRun(20, func() {
		r.Reset(node, 1)
	})
	if allocs != 0 {
		t.Fatalf("Ranker.Reset allocates %v; pinned at 0", allocs)
	}
}

func BenchmarkCompile(b *testing.B) {
	rng := rand.New(rand.NewSource(41))
	g := randomDAG(rng, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.compiled = nil
		if _, err := g.Compile(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRankReset(b *testing.B) {
	rng := rand.New(rand.NewSource(43))
	g := randomDAG(rng, 10000)
	c, err := g.Compile()
	if err != nil {
		b.Fatal(err)
	}
	node := make([]float64, g.NumTasks())
	for i := range node {
		node[i] = 1
	}
	r := NewRanker(c)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(node, 1)
	}
}

func BenchmarkRankRepair(b *testing.B) {
	rng := rand.New(rand.NewSource(47))
	g := randomDAG(rng, 10000)
	c, err := g.Compile()
	if err != nil {
		b.Fatal(err)
	}
	node := make([]float64, g.NumTasks())
	for i := range node {
		node[i] = 1
	}
	r := NewRanker(c)
	r.Reset(node, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := TaskID(i % g.NumTasks())
		r.Disable(t)
		r.Repair()
		r.Enable(t)
		r.Repair()
	}
}
