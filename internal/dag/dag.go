// Package dag implements the weighted directed acyclic task-graph model
// used throughout the CAFT scheduler: tasks (nodes) connected by
// precedence edges carrying data volumes, together with the structural
// quantities the scheduling heuristics need — topological order, top and
// bottom levels, graph width and granularity.
//
// The model follows Section 2 of Benoit, Hakem, Robert, "Realistic Models
// and Efficient Algorithms for Fault Tolerant Scheduling on Heterogeneous
// Platforms" (INRIA RR-6606, 2008): G = (V, E) with an edge cost function
// V(ti, tj) giving the volume of data ti sends to tj.
//
//caft:deterministic
package dag

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
)

// TaskID identifies a task within a DAG. IDs are dense: 0 .. NumTasks()-1.
type TaskID int

// Edge is a precedence constraint From -> To carrying Volume units of data.
type Edge struct {
	From   TaskID
	To     TaskID
	Volume float64
}

// DAG is a weighted directed acyclic task graph. The zero value is an
// empty graph ready for AddTask / AddEdge.
type DAG struct {
	n     int      // number of tasks
	auto  int      // tasks [0, auto) are auto-named "t<id>" lazily by Name
	names []string // explicit names for tasks [auto, n)
	succ  [][]Edge // outgoing edges per task
	pred  [][]Edge // incoming edges per task
	edges int

	compiled *Compiled // cached frozen view; nil after any mutation
}

// New returns a DAG with n generated-name tasks ("t0".."t<n-1>") and no
// edges. Names are materialized lazily by Name, so construction costs
// no per-task string allocations.
func New(n int) *DAG {
	return &DAG{
		n:    n,
		auto: n,
		succ: make([][]Edge, n),
		pred: make([][]Edge, n),
	}
}

// AddTask appends a task with the given name and returns its ID.
func (g *DAG) AddTask(name string) TaskID {
	g.names = append(g.names, name)
	g.succ = append(g.succ, nil)
	g.pred = append(g.pred, nil)
	g.n++
	g.compiled = nil
	return TaskID(g.n - 1)
}

// AddEdge adds a precedence edge from -> to with the given data volume.
// It panics if either endpoint is out of range or from == to; cycles are
// detected by Validate, not here.
func (g *DAG) AddEdge(from, to TaskID, volume float64) {
	if !g.valid(from) || !g.valid(to) {
		panic(fmt.Sprintf("dag: edge endpoint out of range: %d -> %d (n=%d)", from, to, g.NumTasks()))
	}
	if from == to {
		panic(fmt.Sprintf("dag: self-loop on task %d", from))
	}
	e := Edge{From: from, To: to, Volume: volume}
	g.succ[from] = append(g.succ[from], e)
	g.pred[to] = append(g.pred[to], e)
	g.edges++
	g.compiled = nil
}

func (g *DAG) valid(t TaskID) bool { return t >= 0 && int(t) < g.n }

// NumTasks returns v = |V|.
//
//caft:zeroalloc
func (g *DAG) NumTasks() int { return g.n }

// NumEdges returns e = |E|.
//
//caft:zeroalloc
func (g *DAG) NumEdges() int { return g.edges }

// Name returns the task's name. Generated names ("t<id>" from New) are
// materialized here, not stored, so they cost one allocation per call
// but none at construction time. Allocation-sensitive callers can test
// GeneratedName first and format "t<id>" themselves.
func (g *DAG) Name(t TaskID) string {
	if int(t) < g.auto {
		return "t" + strconv.Itoa(int(t))
	}
	return g.names[int(t)-g.auto]
}

// GeneratedName reports whether t carries a generated name — i.e. Name
// would materialize "t<id>" rather than return a stored string.
//
//caft:zeroalloc
func (g *DAG) GeneratedName(t TaskID) bool { return int(t) < g.auto }

// Succ returns the outgoing edges of t (Γ+(t)). The slice must not be
// modified by the caller.
//
//caft:zeroalloc
func (g *DAG) Succ(t TaskID) []Edge { return g.succ[t] }

// Pred returns the incoming edges of t (Γ−(t)). The slice must not be
// modified by the caller.
//
//caft:zeroalloc
func (g *DAG) Pred(t TaskID) []Edge { return g.pred[t] }

// InDegree returns |Γ−(t)|.
//
//caft:zeroalloc
func (g *DAG) InDegree(t TaskID) int { return len(g.pred[t]) }

// OutDegree returns |Γ+(t)|.
//
//caft:zeroalloc
func (g *DAG) OutDegree(t TaskID) int { return len(g.succ[t]) }

// Entries returns the entry tasks (no predecessors) in ID order.
func (g *DAG) Entries() []TaskID {
	var out []TaskID
	for t := 0; t < g.NumTasks(); t++ {
		if len(g.pred[t]) == 0 {
			out = append(out, TaskID(t))
		}
	}
	return out
}

// Exits returns the exit tasks (no successors) in ID order.
func (g *DAG) Exits() []TaskID {
	var out []TaskID
	for t := 0; t < g.NumTasks(); t++ {
		if len(g.succ[t]) == 0 {
			out = append(out, TaskID(t))
		}
	}
	return out
}

// ErrCycle is reported by Validate and TopoOrder when the graph is cyclic.
var ErrCycle = errors.New("dag: graph contains a cycle")

// TopoOrder returns the tasks in a deterministic topological order
// (Kahn's algorithm with a smallest-ID tie break), or ErrCycle.
func (g *DAG) TopoOrder() ([]TaskID, error) {
	n := g.NumTasks()
	indeg := make([]int, n)
	for t := 0; t < n; t++ {
		indeg[t] = len(g.pred[t])
	}
	// Min-ID ready set kept sorted for determinism.
	var ready []TaskID
	for t := n - 1; t >= 0; t-- {
		if indeg[t] == 0 {
			ready = append(ready, TaskID(t))
		}
	}
	// ready is in descending ID order; pop from the back for ascending.
	order := make([]TaskID, 0, n)
	for len(ready) > 0 {
		t := ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		order = append(order, t)
		for _, e := range g.succ[t] {
			indeg[e.To]--
			if indeg[e.To] == 0 {
				// Insert keeping descending order.
				i := sort.Search(len(ready), func(i int) bool { return ready[i] < e.To })
				ready = append(ready, 0)
				copy(ready[i+1:], ready[i:])
				ready[i] = e.To
			}
		}
	}
	if len(order) != n {
		return nil, ErrCycle
	}
	return order, nil
}

// Validate checks structural invariants: acyclicity, consistent adjacency,
// and non-negative volumes.
func (g *DAG) Validate() error {
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	for t := 0; t < g.NumTasks(); t++ {
		for _, e := range g.succ[t] {
			if e.From != TaskID(t) {
				return fmt.Errorf("dag: succ list of %d holds edge %d->%d", t, e.From, e.To)
			}
			if e.Volume < 0 {
				return fmt.Errorf("dag: negative volume on edge %d->%d", e.From, e.To)
			}
		}
		for _, e := range g.pred[t] {
			if e.To != TaskID(t) {
				return fmt.Errorf("dag: pred list of %d holds edge %d->%d", t, e.From, e.To)
			}
		}
	}
	return nil
}

// Width returns ω, the maximum number of pairwise independent tasks,
// approximated as the maximum antichain size computed level-wise: tasks
// are grouped by their precedence depth and the largest group is
// returned. (The exact maximum antichain requires bipartite matching;
// the level-width is the standard quantity used by the paper's
// complexity analysis for list-scheduler queue sizing and is an upper
// bound on the ready-queue length for level-ordered traversals.)
func (g *DAG) Width() int {
	depth := g.Depths()
	count := map[int]int{}
	w := 0
	for _, d := range depth {
		count[d]++
		if count[d] > w {
			w = count[d]
		}
	}
	return w
}

// Depths returns, for each task, its precedence depth: entry tasks have
// depth 0 and every other task is one more than its deepest predecessor.
func (g *DAG) Depths() []int {
	order, err := g.TopoOrder()
	if err != nil {
		panic(err)
	}
	depth := make([]int, g.NumTasks())
	for _, t := range order {
		for _, e := range g.pred[t] {
			if depth[e.From]+1 > depth[t] {
				depth[t] = depth[e.From] + 1
			}
		}
	}
	return depth
}

// CriticalPathLen returns the length of the longest path through the
// graph where each task t costs comp[t] and each edge (i,j) costs
// comm(i,j). Used for lower bounds and priority computations.
func (g *DAG) CriticalPathLen(comp []float64, comm func(Edge) float64) float64 {
	bl := g.BottomLevels(comp, comm)
	best := 0.0
	for _, v := range bl {
		if v > best {
			best = v
		}
	}
	return best
}

// TopLevels returns tℓ(t) for every task: the length of the longest path
// from an entry node to t, excluding t's own cost (paper §5). Entry
// tasks have top level 0.
func (g *DAG) TopLevels(comp []float64, comm func(Edge) float64) []float64 {
	order, err := g.TopoOrder()
	if err != nil {
		panic(err)
	}
	tl := make([]float64, g.NumTasks())
	for _, t := range order {
		for _, e := range g.pred[t] {
			cand := tl[e.From] + comp[e.From] + comm(e)
			if cand > tl[t] {
				tl[t] = cand
			}
		}
	}
	return tl
}

// BottomLevels returns bℓ(t) for every task: the length of the longest
// path from t to an exit node, including t's own cost (paper §5). Exit
// tasks have bottom level equal to their cost.
func (g *DAG) BottomLevels(comp []float64, comm func(Edge) float64) []float64 {
	order, err := g.TopoOrder()
	if err != nil {
		panic(err)
	}
	bl := make([]float64, g.NumTasks())
	for i := len(order) - 1; i >= 0; i-- {
		t := order[i]
		bl[t] = comp[t]
		for _, e := range g.succ[t] {
			cand := comp[t] + comm(e) + bl[e.To]
			if cand > bl[t] {
				bl[t] = cand
			}
		}
	}
	return bl
}

// Edges returns all edges in (From, To) lexicographic order.
func (g *DAG) Edges() []Edge {
	out := make([]Edge, 0, g.edges)
	for t := 0; t < g.NumTasks(); t++ {
		out = append(out, g.succ[t]...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// TotalVolume returns the sum of all edge volumes.
func (g *DAG) TotalVolume() float64 {
	s := 0.0
	for t := 0; t < g.NumTasks(); t++ {
		for _, e := range g.succ[t] {
			s += e.Volume
		}
	}
	return s
}

// Granularity returns g(G,P) per the paper: the ratio of the sum of the
// slowest computation time of each task to the sum of the slowest
// communication time along each edge. slowestComp[t] must be
// max_P E(t,P); maxDelay is max over links of the unit delay d.
// A graph with granularity >= 1 is coarse grain.
func (g *DAG) Granularity(slowestComp []float64, maxDelay float64) float64 {
	num := 0.0
	for _, c := range slowestComp {
		num += c
	}
	den := g.TotalVolume() * maxDelay
	if den == 0 {
		return 0
	}
	return num / den
}
