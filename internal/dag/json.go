package dag

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonDAG is the wire format for DAG serialization.
type jsonDAG struct {
	Tasks []string   `json:"tasks"`
	Edges []jsonEdge `json:"edges"`
}

type jsonEdge struct {
	From   int     `json:"from"`
	To     int     `json:"to"`
	Volume float64 `json:"volume"`
}

// MarshalJSON encodes the DAG as {"tasks": [...names], "edges": [...]}.
// Lazily generated names are materialized on the way out.
func (g *DAG) MarshalJSON() ([]byte, error) {
	jd := jsonDAG{Tasks: make([]string, g.NumTasks())}
	for t := range jd.Tasks {
		jd.Tasks[t] = g.Name(TaskID(t))
	}
	for _, e := range g.Edges() {
		jd.Edges = append(jd.Edges, jsonEdge{From: int(e.From), To: int(e.To), Volume: e.Volume})
	}
	return json.Marshal(jd)
}

// UnmarshalJSON decodes a DAG produced by MarshalJSON and validates it.
func (g *DAG) UnmarshalJSON(data []byte) error {
	var jd jsonDAG
	if err := json.Unmarshal(data, &jd); err != nil {
		return err
	}
	ng := &DAG{}
	for _, name := range jd.Tasks {
		ng.AddTask(name)
	}
	for _, e := range jd.Edges {
		if e.From < 0 || e.From >= len(jd.Tasks) || e.To < 0 || e.To >= len(jd.Tasks) {
			return fmt.Errorf("dag: edge %d->%d out of range", e.From, e.To)
		}
		if e.From == e.To {
			return fmt.Errorf("dag: self-loop on task %d", e.From)
		}
		ng.AddEdge(TaskID(e.From), TaskID(e.To), e.Volume)
	}
	if err := ng.Validate(); err != nil {
		return err
	}
	*g = *ng
	return nil
}

// Write encodes the DAG as indented JSON to w.
func (g *DAG) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(g)
}

// Read decodes a DAG from JSON.
func Read(r io.Reader) (*DAG, error) {
	var g DAG
	if err := json.NewDecoder(r).Decode(&g); err != nil {
		return nil, err
	}
	return &g, nil
}
