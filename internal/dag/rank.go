package dag

// Ranker maintains upward ranks (bottom levels: rank(t) = node(t) +
// max over live successors s of vol(t,s)*unitComm + rank(s)) over a
// compiled view, incrementally. After a full Reset, point mutations —
// disabling a task whose replicas are all lost, re-enabling it, or
// changing a node cost — mark only the mutated task dirty; Repair then
// recomputes just the "dirty cone": the mutated tasks plus those
// ancestors whose rank actually changes, visited deepest-first so each
// task is recomputed at most once. A crash in the online rescheduler
// therefore re-ranks O(cone) tasks instead of O(v+e) for the world.
//
// A disabled task has rank 0 and contributes nothing to its
// predecessors' ranks (its incoming edges are dead: no live replica
// will ever consume them).
//
// The zero value is not usable; call NewRanker. Like the DAG itself,
// a Ranker is confined to a single goroutine.
//
//caft:confined
type Ranker struct {
	c    *Compiled
	unit float64 // unit communication cost: edge cost = volume * unit

	node     []float64 // per-task node cost
	rank     []float64
	disabled []bool

	// Dirty max-heap ordered by topoIdx (deepest first), deduplicated
	// by inHeap, so a task's successors are always final before the
	// task itself is recomputed.
	heap   []int32
	inHeap []bool
}

// NewRanker returns a Ranker over c with all ranks zero; call Reset to
// load costs and compute the initial ranks.
func NewRanker(c *Compiled) *Ranker {
	n := c.NumTasks()
	return &Ranker{
		c:        c,
		node:     make([]float64, n),
		rank:     make([]float64, n),
		disabled: make([]bool, n),
		heap:     make([]int32, 0, 16),
		inHeap:   make([]bool, n),
	}
}

// Reset loads node costs (copied; len must be NumTasks) and the unit
// communication cost, re-enables every task, and recomputes all ranks
// in one O(v+e) reverse-topological sweep.
//
//caft:zeroalloc
func (r *Ranker) Reset(node []float64, unitComm float64) {
	copy(r.node, node)
	r.unit = unitComm
	for i := range r.disabled {
		r.disabled[i] = false
		r.inHeap[i] = false
	}
	r.heap = r.heap[:0]
	topo := r.c.Topo()
	for i := len(topo) - 1; i >= 0; i-- {
		t := topo[i]
		r.rank[t] = r.compute(TaskID(t))
	}
}

// compute returns the rank of t from its successors' current ranks.
//
//caft:zeroalloc
func (r *Ranker) compute(t TaskID) float64 {
	if r.disabled[t] {
		return 0
	}
	v := r.node[t]
	to, vol := r.c.Succ(t)
	for k, s := range to {
		if r.disabled[s] {
			continue
		}
		cand := r.node[t] + vol[k]*r.unit + r.rank[s]
		if cand > v {
			v = cand
		}
	}
	return v
}

// Rank returns the current upward rank of t. Ranks reflect the last
// Repair; call Repair after mutations before reading.
//
//caft:zeroalloc
func (r *Ranker) Rank(t TaskID) float64 { return r.rank[t] }

// Disabled reports whether t is currently disabled.
//
//caft:zeroalloc
func (r *Ranker) Disabled(t TaskID) bool { return r.disabled[t] }

// Disable marks t dead: its rank becomes 0 and it stops contributing
// to predecessors. Takes effect at the next Repair.
//
//caft:zeroalloc
func (r *Ranker) Disable(t TaskID) {
	if !r.disabled[t] {
		r.disabled[t] = true
		r.push(int32(t))
	}
}

// Enable reverses Disable. Takes effect at the next Repair.
//
//caft:zeroalloc
func (r *Ranker) Enable(t TaskID) {
	if r.disabled[t] {
		r.disabled[t] = false
		r.push(int32(t))
	}
}

// SetNodeCost updates t's node cost. Takes effect at the next Repair.
//
//caft:zeroalloc
func (r *Ranker) SetNodeCost(t TaskID, cost float64) {
	if r.node[t] != cost {
		r.node[t] = cost
		r.push(int32(t))
	}
}

// Repair propagates pending mutations: it pops dirty tasks deepest
// (highest topo index) first, recomputes each, and enqueues a task's
// predecessors only when its rank actually changed — so propagation
// stops at the frontier where the old and new longest paths agree. It
// returns the number of tasks recomputed (the dirty-cone size).
//
//caft:zeroalloc
func (r *Ranker) Repair() int {
	visited := 0
	for len(r.heap) > 0 {
		t := r.pop()
		visited++
		nv := r.compute(TaskID(t))
		if nv == r.rank[t] {
			continue
		}
		r.rank[t] = nv
		from, _ := r.c.Pred(TaskID(t))
		for _, p := range from {
			r.push(p)
		}
	}
	return visited
}

// push adds t to the dirty heap unless already queued. Amortized
// allocation-free: the heap's backing array reaches steady capacity
// after warmup.
//
//caft:zeroalloc
func (r *Ranker) push(t int32) {
	if r.inHeap[t] {
		return
	}
	r.inHeap[t] = true
	r.heap = append(r.heap, t)
	idx := r.c.TopoIndex()
	i := len(r.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if idx[r.heap[parent]] >= idx[r.heap[i]] {
			break
		}
		r.heap[parent], r.heap[i] = r.heap[i], r.heap[parent]
		i = parent
	}
}

// pop removes and returns the dirty task with the highest topo index.
//
//caft:zeroalloc
func (r *Ranker) pop() int32 {
	t := r.heap[0]
	r.inHeap[t] = false
	last := len(r.heap) - 1
	r.heap[0] = r.heap[last]
	r.heap = r.heap[:last]
	idx := r.c.TopoIndex()
	i := 0
	for {
		l, rr := 2*i+1, 2*i+2
		big := i
		if l < last && idx[r.heap[l]] > idx[r.heap[big]] {
			big = l
		}
		if rr < last && idx[r.heap[rr]] > idx[r.heap[big]] {
			big = rr
		}
		if big == i {
			break
		}
		r.heap[i], r.heap[big] = r.heap[big], r.heap[i]
		i = big
	}
	return t
}
