package dag

// Compiled is the frozen, cache-friendly view of a DAG: a CSR
// (compressed sparse row) encoding of both adjacency directions as
// dense int32 index arrays with parallel float64 volume arrays, plus
// the deterministic topological order and its inverse. It is built
// once per graph by DAG.Compile and shared by every read-hot consumer
// (sched.Lister, sim.Replayer, online.Engine, schedule validation)
// instead of walking [][]Edge slices of 24-byte Edge structs.
//
// A Compiled view is immutable after construction: every accessor
// returns read-only views of the frozen arrays, which remain valid (and
// may be aliased freely, including across goroutines) for the lifetime
// of the view. Callers must not modify them. Mutating the source DAG
// invalidates its cached view — DAG.Compile then builds a fresh one —
// but a previously obtained *Compiled stays internally consistent; it
// just describes the graph as it was.
type Compiled struct {
	n     int
	edges int

	// Successor CSR: the successors of task t are succTo[succOff[t] :
	// succOff[t+1]], with succVol holding the parallel edge volumes.
	// Row order is AddEdge insertion order, matching DAG.Succ.
	succOff []int32
	succTo  []int32
	succVol []float64

	// Predecessor CSR, mirroring DAG.Pred the same way.
	predOff  []int32
	predFrom []int32
	predVol  []float64

	topo    []int32 // DAG.TopoOrder as dense int32s
	topoIdx []int32 // inverse permutation: topoIdx[t] = position of t in topo
}

// Compile returns the frozen CSR view of the graph, building it on
// first use and caching it until the next mutation (AddTask or
// AddEdge). It fails exactly when the graph is cyclic.
func (g *DAG) Compile() (*Compiled, error) {
	if g.compiled != nil {
		return g.compiled, nil
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	n := g.NumTasks()
	c := &Compiled{
		n:        n,
		edges:    g.edges,
		succOff:  make([]int32, n+1),
		succTo:   make([]int32, g.edges),
		succVol:  make([]float64, g.edges),
		predOff:  make([]int32, n+1),
		predFrom: make([]int32, g.edges),
		predVol:  make([]float64, g.edges),
		topo:     make([]int32, n),
		topoIdx:  make([]int32, n),
	}
	for i, t := range order {
		c.topo[i] = int32(t)
		c.topoIdx[t] = int32(i)
	}
	var sk, pk int32
	for t := 0; t < n; t++ {
		c.succOff[t] = sk
		for _, e := range g.succ[t] {
			c.succTo[sk] = int32(e.To)
			c.succVol[sk] = e.Volume
			sk++
		}
		c.predOff[t] = pk
		for _, e := range g.pred[t] {
			c.predFrom[pk] = int32(e.From)
			c.predVol[pk] = e.Volume
			pk++
		}
	}
	c.succOff[n] = sk
	c.predOff[n] = pk
	g.compiled = c
	return c, nil
}

// NumTasks returns v = |V|.
//
//caft:zeroalloc
func (c *Compiled) NumTasks() int { return c.n }

// NumEdges returns e = |E|.
//
//caft:zeroalloc
func (c *Compiled) NumEdges() int { return c.edges }

// Topo returns the tasks in the same deterministic topological order as
// DAG.TopoOrder. The returned slice is frozen; callers must not modify
// it.
//
//caft:zeroalloc
func (c *Compiled) Topo() []int32 { return c.topo }

// TopoIndex returns the inverse topological permutation: TopoIndex()[t]
// is the position of task t in Topo(). Frozen; must not be modified.
//
//caft:zeroalloc
func (c *Compiled) TopoIndex() []int32 { return c.topoIdx }

// Succ returns the successor row of t: parallel slices of successor
// task IDs and edge volumes, in the same order as DAG.Succ. Frozen;
// must not be modified.
//
//caft:zeroalloc
func (c *Compiled) Succ(t TaskID) (to []int32, vol []float64) {
	lo, hi := c.succOff[t], c.succOff[t+1]
	return c.succTo[lo:hi], c.succVol[lo:hi]
}

// Pred returns the predecessor row of t: parallel slices of predecessor
// task IDs and edge volumes, in the same order as DAG.Pred. Frozen;
// must not be modified.
//
//caft:zeroalloc
func (c *Compiled) Pred(t TaskID) (from []int32, vol []float64) {
	lo, hi := c.predOff[t], c.predOff[t+1]
	return c.predFrom[lo:hi], c.predVol[lo:hi]
}

// InDegree returns |Γ−(t)|.
//
//caft:zeroalloc
func (c *Compiled) InDegree(t TaskID) int { return int(c.predOff[t+1] - c.predOff[t]) }

// OutDegree returns |Γ+(t)|.
//
//caft:zeroalloc
func (c *Compiled) OutDegree(t TaskID) int { return int(c.succOff[t+1] - c.succOff[t]) }

// TopLevelsInto computes tℓ(t) for every task into dst (which must have
// length NumTasks) and returns it, with edge costs volume*unitDelay. It
// replays DAG.TopLevels exactly — same traversal order, same float
// arithmetic — so results are bit-identical to the [][]Edge path; it
// just allocates nothing.
//
//caft:zeroalloc
func (c *Compiled) TopLevelsInto(dst, comp []float64, unitDelay float64) []float64 {
	for _, t := range c.topo {
		tl := 0.0
		for k := c.predOff[t]; k < c.predOff[t+1]; k++ {
			f := c.predFrom[k]
			cand := dst[f] + comp[f] + c.predVol[k]*unitDelay
			if cand > tl {
				tl = cand
			}
		}
		dst[t] = tl
	}
	return dst
}

// BottomLevelsInto computes bℓ(t) for every task into dst (which must
// have length NumTasks) and returns it, with edge costs
// volume*unitDelay. Bit-identical to DAG.BottomLevels, allocation-free.
//
//caft:zeroalloc
func (c *Compiled) BottomLevelsInto(dst, comp []float64, unitDelay float64) []float64 {
	for i := c.n - 1; i >= 0; i-- {
		t := c.topo[i]
		bl := comp[t]
		for k := c.succOff[t]; k < c.succOff[t+1]; k++ {
			cand := comp[t] + c.succVol[k]*unitDelay + dst[c.succTo[k]]
			if cand > bl {
				bl = cand
			}
		}
		dst[t] = bl
	}
	return dst
}
