package dag

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// diamond builds t0 -> {t1, t2} -> t3 with unit volumes.
func diamond() *DAG {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(1, 3, 1)
	g.AddEdge(2, 3, 1)
	return g
}

func TestAddTaskAndEdgeCounts(t *testing.T) {
	g := diamond()
	if g.NumTasks() != 4 {
		t.Fatalf("NumTasks = %d, want 4", g.NumTasks())
	}
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", g.NumEdges())
	}
	if g.OutDegree(0) != 2 || g.InDegree(0) != 0 {
		t.Errorf("task 0 degrees = out %d in %d, want 2, 0", g.OutDegree(0), g.InDegree(0))
	}
	if g.InDegree(3) != 2 || g.OutDegree(3) != 0 {
		t.Errorf("task 3 degrees = in %d out %d, want 2, 0", g.InDegree(3), g.OutDegree(3))
	}
}

func TestEntriesExits(t *testing.T) {
	g := diamond()
	if e := g.Entries(); len(e) != 1 || e[0] != 0 {
		t.Errorf("Entries = %v, want [0]", e)
	}
	if x := g.Exits(); len(x) != 1 || x[0] != 3 {
		t.Errorf("Exits = %v, want [3]", x)
	}
}

func TestTopoOrderDeterministic(t *testing.T) {
	g := diamond()
	o1, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	o2, _ := g.TopoOrder()
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("non-deterministic topo order: %v vs %v", o1, o2)
		}
	}
	pos := make(map[TaskID]int)
	for i, id := range o1 {
		pos[id] = i
	}
	for _, e := range g.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Errorf("edge %d->%d violates topo order %v", e.From, e.To, o1)
		}
	}
}

func TestTopoOrderCycle(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 0, 1)
	if _, err := g.TopoOrder(); err != ErrCycle {
		t.Fatalf("TopoOrder on cycle: err = %v, want ErrCycle", err)
	}
	if err := g.Validate(); err != ErrCycle {
		t.Fatalf("Validate on cycle: err = %v, want ErrCycle", err)
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge(1,1) did not panic")
		}
	}()
	g := New(2)
	g.AddEdge(1, 1, 1)
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge out of range did not panic")
		}
	}()
	g := New(2)
	g.AddEdge(0, 5, 1)
}

func TestLevelsDiamond(t *testing.T) {
	g := diamond()
	comp := []float64{1, 2, 3, 4}
	comm := func(e Edge) float64 { return e.Volume * 10 }
	tl := g.TopLevels(comp, comm)
	// tl(0)=0; tl(1)=1+10=11; tl(2)=11; tl(3)=max(11+2,11+3)+10=24.
	want := []float64{0, 11, 11, 24}
	for i := range want {
		if tl[i] != want[i] {
			t.Errorf("tl[%d] = %v, want %v", i, tl[i], want[i])
		}
	}
	bl := g.BottomLevels(comp, comm)
	// bl(3)=4; bl(2)=3+10+4=17; bl(1)=2+10+4=16; bl(0)=1+10+17=28.
	wantBL := []float64{28, 16, 17, 4}
	for i := range wantBL {
		if bl[i] != wantBL[i] {
			t.Errorf("bl[%d] = %v, want %v", i, bl[i], wantBL[i])
		}
	}
	if cp := g.CriticalPathLen(comp, comm); cp != 28 {
		t.Errorf("CriticalPathLen = %v, want 28", cp)
	}
}

func TestLevelConsistency(t *testing.T) {
	// For every task, tl(t) + bl(t) <= critical path length, with equality
	// on at least one path.
	g := diamond()
	comp := []float64{5, 1, 9, 2}
	comm := func(e Edge) float64 { return 3 * e.Volume }
	tl := g.TopLevels(comp, comm)
	bl := g.BottomLevels(comp, comm)
	cp := g.CriticalPathLen(comp, comm)
	hit := false
	for i := range tl {
		s := tl[i] + bl[i]
		if s > cp+1e-9 {
			t.Errorf("tl+bl = %v at task %d exceeds CP %v", s, i, cp)
		}
		if s == cp {
			hit = true
		}
	}
	if !hit {
		t.Error("no task lies on the critical path")
	}
}

func TestDepthsAndWidth(t *testing.T) {
	g := diamond()
	d := g.Depths()
	want := []int{0, 1, 1, 2}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("depth[%d] = %d, want %d", i, d[i], want[i])
		}
	}
	if w := g.Width(); w != 2 {
		t.Errorf("Width = %d, want 2", w)
	}
}

func TestWidthChainAndFork(t *testing.T) {
	chain := New(5)
	for i := 0; i < 4; i++ {
		chain.AddEdge(TaskID(i), TaskID(i+1), 1)
	}
	if w := chain.Width(); w != 1 {
		t.Errorf("chain width = %d, want 1", w)
	}
	fork := New(6)
	for i := 1; i < 6; i++ {
		fork.AddEdge(0, TaskID(i), 1)
	}
	if w := fork.Width(); w != 5 {
		t.Errorf("fork width = %d, want 5", w)
	}
}

func TestGranularity(t *testing.T) {
	g := diamond()
	// Total volume 4, maxDelay 2 => slowest comm sum 8.
	// slowest comp sum = 16 => granularity 2.
	slow := []float64{4, 4, 4, 4}
	if got := g.Granularity(slow, 2); got != 2 {
		t.Errorf("Granularity = %v, want 2", got)
	}
	empty := New(3)
	if got := empty.Granularity([]float64{1, 1, 1}, 2); got != 0 {
		t.Errorf("Granularity with no edges = %v, want 0", got)
	}
}

func TestTotalVolume(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 2.5)
	g.AddEdge(1, 2, 7.5)
	if got := g.TotalVolume(); got != 10 {
		t.Errorf("TotalVolume = %v, want 10", got)
	}
}

func TestEdgesSorted(t *testing.T) {
	g := New(3)
	g.AddEdge(1, 2, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(0, 1, 1)
	es := g.Edges()
	if es[0].From != 0 || es[0].To != 1 || es[1].To != 2 || es[2].From != 1 {
		t.Errorf("Edges not sorted: %+v", es)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := diamond()
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumTasks() != g.NumTasks() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip mismatch: %d/%d vs %d/%d tasks/edges",
			g2.NumTasks(), g2.NumEdges(), g.NumTasks(), g.NumEdges())
	}
	for i, e := range g.Edges() {
		if g2.Edges()[i] != e {
			t.Errorf("edge %d mismatch: %+v vs %+v", i, g2.Edges()[i], e)
		}
	}
}

func TestJSONRejectsCycle(t *testing.T) {
	raw := []byte(`{"tasks":["a","b"],"edges":[{"from":0,"to":1,"volume":1},{"from":1,"to":0,"volume":1}]}`)
	var g DAG
	if err := g.UnmarshalJSON(raw); err == nil {
		t.Fatal("UnmarshalJSON accepted a cyclic graph")
	}
}

func TestJSONRejectsBadEdge(t *testing.T) {
	raw := []byte(`{"tasks":["a"],"edges":[{"from":0,"to":9,"volume":1}]}`)
	var g DAG
	if err := g.UnmarshalJSON(raw); err == nil {
		t.Fatal("UnmarshalJSON accepted out-of-range edge")
	}
}

// randomDAG builds a random forward-edged graph for property tests.
func randomDAG(rng *rand.Rand, n int) *DAG {
	g := New(n)
	for i := 1; i < n; i++ {
		// At least one predecessor to keep it connected-ish.
		p := rng.Intn(i)
		g.AddEdge(TaskID(p), TaskID(i), 1+rng.Float64()*10)
		for k := 0; k < rng.Intn(3); k++ {
			q := rng.Intn(i)
			if q != p {
				g.AddEdge(TaskID(q), TaskID(i), 1+rng.Float64()*10)
			}
		}
	}
	return g
}

func TestQuickTopoOrderValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 2+rng.Intn(40))
		order, err := g.TopoOrder()
		if err != nil {
			return false
		}
		pos := make(map[TaskID]int)
		for i, id := range order {
			pos[id] = i
		}
		for _, e := range g.Edges() {
			if pos[e.From] >= pos[e.To] {
				return false
			}
		}
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLevelsNonNegativeAndBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 2+rng.Intn(40))
		comp := make([]float64, g.NumTasks())
		for i := range comp {
			comp[i] = rng.Float64() * 10
		}
		comm := func(e Edge) float64 { return e.Volume }
		tl := g.TopLevels(comp, comm)
		bl := g.BottomLevels(comp, comm)
		cp := g.CriticalPathLen(comp, comm)
		for i := range tl {
			if tl[i] < 0 || bl[i] < comp[i] {
				return false
			}
			if tl[i]+bl[i] > cp+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
