package dag

import (
	"bytes"
	"testing"
)

// FuzzUnmarshalJSON checks that arbitrary input never panics the DAG
// decoder and that everything it accepts is a valid acyclic graph that
// round-trips.
func FuzzUnmarshalJSON(f *testing.F) {
	seedGraphs := []string{
		`{"tasks":["a","b"],"edges":[{"from":0,"to":1,"volume":2.5}]}`,
		`{"tasks":[],"edges":[]}`,
		`{"tasks":["x"],"edges":[{"from":0,"to":0,"volume":1}]}`,
		`{"tasks":["a","b","c"],"edges":[{"from":0,"to":1,"volume":1},{"from":1,"to":2,"volume":1},{"from":2,"to":0,"volume":1}]}`,
		`{"tasks":["a"],"edges":[{"from":0,"to":9,"volume":1}]}`,
		`not json at all`,
	}
	for _, s := range seedGraphs {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var g DAG
		if err := g.UnmarshalJSON(data); err != nil {
			return // rejected input is fine; panics are not
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := g.Write(&buf); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		g2, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if g2.NumTasks() != g.NumTasks() || g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed shape")
		}
	})
}
