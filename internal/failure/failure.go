// Package failure provides stochastic models of processor failures for
// the timed fail-stop replay (sim.ReplayTimed). A Model samples crash
// scenarios — maps from processor index to the instant the processor
// permanently stops — from per-processor lifetime distributions.
//
// The paper evaluates schedules against static crash subsets; related
// work (Benoit et al., arXiv:0711.1231; Tekawade & Banerjee,
// arXiv:2212.09274) scores mappings under explicit reliability models
// with exponential fault arrivals. This package supplies those models:
// exponential and Weibull lifetimes with heterogeneous per-processor
// MTBF, deterministic trace playback, and a correlated "rack" model in
// which processors grouped by interconnect proximity (see
// topology.Racks) share a common failure mode. Crash instants beyond a
// schedule's makespan are harmless under the timed replay semantics, so
// models may return them freely; Censor trims them when a bounded map
// is preferable.
//
// Monte-Carlo estimation of unreliability (the probability that a
// schedule loses a task) and of expected latency over sampled scenarios
// lives in package expt (RunReliability); see DESIGN.md S4.
//
//caft:deterministic
package failure

import (
	"fmt"
	"math"
	"math/rand"
)

// Model samples crash scenarios. Implementations must be deterministic
// functions of the rng stream, so experiment units that derive their
// seeds up front stay reproducible for any worker count.
type Model interface {
	// Sample draws one scenario into dst and returns it. dst is cleared
	// first; a nil dst allocates a fresh map. Processors absent from the
	// result never fail.
	Sample(rng *rand.Rand, dst map[int]float64) map[int]float64
}

func reset(dst map[int]float64) map[int]float64 {
	if dst == nil {
		return map[int]float64{}
	}
	clear(dst)
	return dst
}

// Exponential models independent memoryless lifetimes: processor p
// fails at an Exp(1/MTBF[p]) instant. A non-positive or infinite MTBF
// marks a processor that never fails.
type Exponential struct {
	MTBF []float64 // mean time between failures per processor
}

// Sample implements Model.
func (e *Exponential) Sample(rng *rand.Rand, dst map[int]float64) map[int]float64 {
	dst = reset(dst)
	for p, m := range e.MTBF {
		if m > 0 && !math.IsInf(m, 1) {
			dst[p] = rng.ExpFloat64() * m
		}
	}
	return dst
}

func (e *Exponential) String() string { return "exponential" }

// Weibull models lifetimes with shape-dependent hazard rates: processor
// p fails at Scale[p] * (-ln U)^(1/Shape[p]). Shape < 1 yields infant
// mortality (decreasing hazard), shape > 1 wear-out (increasing
// hazard), shape = 1 reduces to Exponential with MTBF = Scale. As with
// Exponential, a non-positive or infinite scale never fails.
type Weibull struct {
	Shape []float64 // per processor, must be > 0 where Scale is finite
	Scale []float64 // per processor
}

// WeibullWithMTBF builds a Weibull model with a uniform shape whose
// per-processor scales are chosen so that the mean lifetime equals
// mtbf[p]: scale = mtbf / Γ(1 + 1/shape).
func WeibullWithMTBF(shape float64, mtbf []float64) *Weibull {
	w := &Weibull{Shape: make([]float64, len(mtbf)), Scale: make([]float64, len(mtbf))}
	g := math.Gamma(1 + 1/shape)
	for p, m := range mtbf {
		w.Shape[p] = shape
		w.Scale[p] = m / g
	}
	return w
}

// Sample implements Model.
func (w *Weibull) Sample(rng *rand.Rand, dst map[int]float64) map[int]float64 {
	dst = reset(dst)
	for p, scale := range w.Scale {
		if scale <= 0 || math.IsInf(scale, 1) {
			continue
		}
		// Inverse transform: U in [0,1) makes 1-U in (0,1], so the log is
		// finite and the lifetime non-negative.
		u := rng.Float64()
		dst[p] = scale * math.Pow(-math.Log(1-u), 1/w.Shape[p])
	}
	return dst
}

func (w *Weibull) String() string { return "weibull" }

// Trace plays back predetermined scenarios in order, cycling once
// exhausted — deterministic replay of recorded failure logs or
// hand-built worst cases. The rng is unused. A Trace is stateful and
// not safe for concurrent use; experiment units must each own one.
type Trace struct {
	Scenarios []map[int]float64
	next      int
}

// Sample implements Model by copying the next scenario.
func (t *Trace) Sample(_ *rand.Rand, dst map[int]float64) map[int]float64 {
	dst = reset(dst)
	if len(t.Scenarios) == 0 {
		return dst
	}
	s := t.Scenarios[t.next%len(t.Scenarios)]
	t.next++
	for p, tau := range s { //caft:unordered-ok map-to-map copy is order-insensitive
		dst[p] = tau
	}
	return dst
}

func (t *Trace) String() string { return "trace" }

// Rack correlates failures within processor groups: every rack has an
// exponential common-mode lifetime with mean RackMTBF (a power feed, a
// top-of-rack switch) that takes down all its members at once, layered
// over an optional per-processor model Proc. A processor's crash
// instant is the earlier of its rack's failure and its individual one.
// Groups is a partition of the processors, typically derived from the
// interconnect with topology.Racks.
type Rack struct {
	Groups   [][]int
	RackMTBF float64
	Proc     Model // individual failures; nil means racks only
}

// Validate checks that Groups forms a partition of 0..m-1.
func (r *Rack) Validate(m int) error {
	seen := make([]bool, m)
	for _, g := range r.Groups {
		for _, p := range g {
			if p < 0 || p >= m {
				return fmt.Errorf("failure: rack member P%d outside platform of %d", p, m)
			}
			if seen[p] {
				return fmt.Errorf("failure: P%d appears in two racks", p)
			}
			seen[p] = true
		}
	}
	for p, ok := range seen {
		if !ok {
			return fmt.Errorf("failure: P%d belongs to no rack", p)
		}
	}
	return nil
}

// Sample implements Model. The individual draws (Proc) consume the rng
// first, then one rack draw per group in Groups order — a fixed stream
// layout, so scenarios are reproducible from the rng seed.
func (r *Rack) Sample(rng *rand.Rand, dst map[int]float64) map[int]float64 {
	if r.Proc != nil {
		dst = r.Proc.Sample(rng, dst)
	} else {
		dst = reset(dst)
	}
	for _, g := range r.Groups {
		if r.RackMTBF <= 0 || math.IsInf(r.RackMTBF, 1) {
			continue
		}
		tau := rng.ExpFloat64() * r.RackMTBF
		for _, p := range g {
			if own, ok := dst[p]; !ok || tau < own {
				dst[p] = tau
			}
		}
	}
	return dst
}

func (r *Rack) String() string { return fmt.Sprintf("racks-%d", len(r.Groups)) }

// Censor drops crash instants beyond Horizon from the wrapped model's
// scenarios. Under timed replay a crash past the makespan is a no-op,
// so censoring changes no replay result; it only keeps the maps small
// when most lifetimes exceed the execution window.
type Censor struct {
	Model   Model
	Horizon float64
}

// Sample implements Model.
func (c *Censor) Sample(rng *rand.Rand, dst map[int]float64) map[int]float64 {
	dst = c.Model.Sample(rng, dst)
	for p, tau := range dst { //caft:unordered-ok per-key censor; deletions are order-insensitive
		if tau > c.Horizon {
			delete(dst, p)
		}
	}
	return dst
}

// UniformMTBF draws a heterogeneous MTBF vector: m values uniform in
// [lo, hi]. Scaling [lo, hi] against a schedule's fault-free latency
// puts the failure window in a chosen relation to the execution window
// (the knob RunReliability sweeps).
func UniformMTBF(rng *rand.Rand, m int, lo, hi float64) []float64 {
	out := make([]float64, m)
	for p := range out {
		out[p] = lo + rng.Float64()*(hi-lo)
	}
	return out
}
