package failure

import (
	"math"
	"math/rand"
	"testing"

	"caft/internal/topology"
)

func TestExponentialMeanAndSkips(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	e := &Exponential{MTBF: []float64{2.0, 0, math.Inf(1), 0.5}}
	sum0, sum3 := 0.0, 0.0
	const n = 20000
	scratch := map[int]float64{}
	for i := 0; i < n; i++ {
		s := e.Sample(rng, scratch)
		if len(s) != 2 {
			t.Fatalf("sample has %d entries, want 2 (P1 and P2 never fail)", len(s))
		}
		if _, ok := s[1]; ok {
			t.Fatal("MTBF 0 processor failed")
		}
		if _, ok := s[2]; ok {
			t.Fatal("infinite-MTBF processor failed")
		}
		sum0 += s[0]
		sum3 += s[3]
	}
	if m := sum0 / n; math.Abs(m-2.0) > 0.05 {
		t.Errorf("P0 mean lifetime %v, want ~2.0", m)
	}
	if m := sum3 / n; math.Abs(m-0.5) > 0.02 {
		t.Errorf("P3 mean lifetime %v, want ~0.5", m)
	}
}

func TestWeibullMTBFCalibration(t *testing.T) {
	// WeibullWithMTBF picks scales so the mean lifetime equals the target
	// regardless of shape; shape 1 must match Exponential's mean too.
	for _, shape := range []float64{0.7, 1.0, 2.0} {
		rng := rand.New(rand.NewSource(2))
		w := WeibullWithMTBF(shape, []float64{3.0})
		sum := 0.0
		const n = 40000
		scratch := map[int]float64{}
		for i := 0; i < n; i++ {
			sum += w.Sample(rng, scratch)[0]
		}
		if m := sum / n; math.Abs(m-3.0) > 0.15 {
			t.Errorf("shape %v: mean lifetime %v, want ~3.0", shape, m)
		}
	}
}

func TestWeibullSkipsNonFailing(t *testing.T) {
	w := &Weibull{Shape: []float64{2, 2}, Scale: []float64{0, math.Inf(1)}}
	s := w.Sample(rand.New(rand.NewSource(3)), nil)
	if len(s) != 0 {
		t.Fatalf("non-failing processors produced %d crash entries", len(s))
	}
}

func TestTraceCyclesDeterministically(t *testing.T) {
	tr := &Trace{Scenarios: []map[int]float64{
		{0: 1.5},
		{1: 2.5, 2: 0.5},
	}}
	scratch := map[int]float64{}
	for round := 0; round < 3; round++ {
		s := tr.Sample(nil, scratch)
		if len(s) != 1 || s[0] != 1.5 {
			t.Fatalf("round %d scenario 0: got %v", round, s)
		}
		s = tr.Sample(nil, scratch)
		if len(s) != 2 || s[1] != 2.5 || s[2] != 0.5 {
			t.Fatalf("round %d scenario 1: got %v", round, s)
		}
	}
	var empty Trace
	if s := empty.Sample(nil, nil); len(s) != 0 {
		t.Fatalf("empty trace produced %v", s)
	}
}

func TestRackCorrelation(t *testing.T) {
	// Racks only (no individual failures): all members of a rack must
	// share one crash instant, and distinct racks must (almost surely)
	// differ.
	mesh, err := topology.Mesh2D(2, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	groups := mesh.Racks(2)
	r := &Rack{Groups: groups, RackMTBF: 1.0}
	if err := r.Validate(6); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	scratch := map[int]float64{}
	for i := 0; i < 100; i++ {
		s := r.Sample(rng, scratch)
		if len(s) != 6 {
			t.Fatalf("rack sample covers %d of 6 processors", len(s))
		}
		for _, g := range groups {
			for _, p := range g[1:] {
				if s[p] != s[g[0]] {
					t.Fatalf("rack %v not correlated: P%d at %v, P%d at %v", g, g[0], s[g[0]], p, s[p])
				}
			}
		}
		if s[groups[0][0]] == s[groups[1][0]] {
			t.Fatal("two racks crashed at the identical instant")
		}
	}
}

func TestRackLayersIndividualFailures(t *testing.T) {
	// With an individual model layered in, the effective crash time is
	// the min of the rack's and the processor's own.
	groups := [][]int{{0, 1}}
	r := &Rack{Groups: groups, RackMTBF: 5, Proc: &Exponential{MTBF: []float64{5, 5}}}
	rng := rand.New(rand.NewSource(5))
	diverged := false
	scratch := map[int]float64{}
	for i := 0; i < 200; i++ {
		s := r.Sample(rng, scratch)
		if s[0] != s[1] {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("individual failures never diverged within a rack")
	}
}

func TestRackValidateRejectsBadPartitions(t *testing.T) {
	cases := []struct {
		name   string
		groups [][]int
	}{
		{"missing", [][]int{{0, 1}}},
		{"duplicate", [][]int{{0, 1}, {1, 2}}},
		{"out-of-range", [][]int{{0, 1, 2}, {3}}},
	}
	for _, c := range cases {
		r := &Rack{Groups: c.groups, RackMTBF: 1}
		if err := r.Validate(3); err == nil {
			t.Errorf("%s: invalid partition accepted", c.name)
		}
	}
}

func TestCensorDropsLateCrashes(t *testing.T) {
	tr := &Trace{Scenarios: []map[int]float64{{0: 0.5, 1: 10, 2: 2}}}
	c := &Censor{Model: tr, Horizon: 2}
	s := c.Sample(nil, nil)
	if len(s) != 2 || s[0] != 0.5 || s[2] != 2 {
		t.Fatalf("censored scenario %v, want {0:0.5, 2:2}", s)
	}
}

func TestUniformMTBFRange(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	v := UniformMTBF(rng, 50, 2, 4)
	if len(v) != 50 {
		t.Fatalf("got %d values", len(v))
	}
	for _, m := range v {
		if m < 2 || m > 4 {
			t.Fatalf("MTBF %v outside [2,4]", m)
		}
	}
}

func TestSampleReusesScratch(t *testing.T) {
	e := &Exponential{MTBF: []float64{1, 1, 1}}
	rng := rand.New(rand.NewSource(7))
	scratch := map[int]float64{99: 1}
	s := e.Sample(rng, scratch)
	if _, ok := s[99]; ok {
		t.Fatal("scratch not cleared before sampling")
	}
	if len(s) != 3 {
		t.Fatalf("sample has %d entries, want 3", len(s))
	}
}
