package platform

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"caft/internal/dag"
	"caft/internal/gen"
)

func TestNewHomogeneous(t *testing.T) {
	p := New(4, 0.75)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 4; k++ {
		for h := 0; h < 4; h++ {
			want := 0.75
			if h == k {
				want = 0
			}
			if p.Delay[k][h] != want {
				t.Fatalf("Delay[%d][%d] = %v, want %v", k, h, p.Delay[k][h], want)
			}
		}
	}
	if p.MaxDelay() != 0.75 {
		t.Errorf("MaxDelay = %v", p.MaxDelay())
	}
	if p.MeanDelay() != 0.75 {
		t.Errorf("MeanDelay = %v", p.MeanDelay())
	}
}

func TestNewRandomBoundsAndSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := NewRandom(rng, 10, 0.5, 1.0)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < p.M; k++ {
		for h := 0; h < p.M; h++ {
			d := p.Delay[k][h]
			if k == h {
				if d != 0 {
					t.Fatalf("self delay P%d = %v", k, d)
				}
				continue
			}
			if d < 0.5 || d > 1.0 {
				t.Fatalf("delay P%d->P%d = %v outside [0.5,1]", k, h, d)
			}
			if p.Delay[h][k] != d {
				t.Fatalf("asymmetric delay %d<->%d", k, h)
			}
		}
	}
}

func TestValidateRejectsBadMatrices(t *testing.T) {
	p := New(3, 1)
	p.Delay[1][1] = 0.5
	if p.Validate() == nil {
		t.Error("accepted non-zero diagonal")
	}
	p = New(3, 1)
	p.Delay[0][2] = -1
	if p.Validate() == nil {
		t.Error("accepted negative delay")
	}
	p = New(3, 1)
	p.Delay = p.Delay[:2]
	if p.Validate() == nil {
		t.Error("accepted wrong row count")
	}
}

func TestMeanDelaySingleProcessor(t *testing.T) {
	p := New(1, 0)
	if p.MeanDelay() != 0 {
		t.Errorf("MeanDelay on 1 proc = %v", p.MeanDelay())
	}
}

func TestExecMatrixShapeAndValidate(t *testing.T) {
	g := gen.Chain(5, 10)
	p := New(3, 1)
	e := NewExecMatrix(5, 3)
	if err := e.Validate(g, p); err == nil {
		t.Error("accepted zero execution times")
	}
	for t2 := range e {
		for k := range e[t2] {
			e[t2][k] = 1
		}
	}
	if err := e.Validate(g, p); err != nil {
		t.Fatal(err)
	}
}

func TestExecStatistics(t *testing.T) {
	e := ExecMatrix{{1, 3}, {2, 2}}
	slow := e.Slowest()
	if slow[0] != 3 || slow[1] != 2 {
		t.Errorf("Slowest = %v", slow)
	}
	mean := e.Mean()
	if mean[0] != 2 || mean[1] != 2 {
		t.Errorf("Mean = %v", mean)
	}
	if e.MeanOverall() != 2 {
		t.Errorf("MeanOverall = %v", e.MeanOverall())
	}
	var empty ExecMatrix
	if empty.MeanOverall() != 0 {
		t.Error("MeanOverall on empty matrix should be 0")
	}
}

func TestGenExecHitsTargetGranularity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomLayered(rng, gen.DefaultParams)
		p := NewRandom(rng, 10, 0.5, 1.0)
		for _, target := range []float64{0.2, 1.0, 5.0} {
			e := GenExecForGranularity(rng, g, p, target, DefaultHeterogeneity)
			if e.Validate(g, p) != nil {
				return false
			}
			got := g.Granularity(e.Slowest(), p.MaxDelay())
			if math.Abs(got-target) > 1e-9*target {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestGenExecHeterogeneitySpread(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := gen.RandomLayered(rng, gen.DefaultParams)
	p := NewRandom(rng, 10, 0.5, 1.0)
	e := GenExecForGranularity(rng, g, p, 1.0, DefaultHeterogeneity)
	// With het in [0.5,1], per-task ratio max/min must stay within 2x.
	for ti := range e {
		lo, hi := math.Inf(1), 0.0
		for _, c := range e[ti] {
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		if hi/lo > 2.0+1e-9 {
			t.Fatalf("task %d spread %v exceeds heterogeneity bound", ti, hi/lo)
		}
	}
}

func TestGenExecZeroEdgeGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := dag.New(3) // no edges: granularity undefined, matrix still valid
	p := New(2, 1)
	e := GenExecForGranularity(rng, g, p, 1.0, DefaultHeterogeneity)
	if err := e.Validate(g, p); err != nil {
		t.Fatal(err)
	}
}
