package platform

import (
	"fmt"
	"math/rand"

	"caft/internal/dag"
)

// ExecMatrix holds E(t, Pk): the execution time of each task on each
// processor. Rows are tasks, columns processors.
type ExecMatrix [][]float64

// NewExecMatrix allocates a v x m matrix of zeros.
func NewExecMatrix(v, m int) ExecMatrix {
	e := make(ExecMatrix, v)
	cells := make([]float64, v*m)
	for t := range e {
		e[t], cells = cells[:m], cells[m:]
	}
	return e
}

// Validate checks the matrix shape against a DAG and platform and that
// all execution times are strictly positive.
func (e ExecMatrix) Validate(g *dag.DAG, p *Platform) error {
	if len(e) != g.NumTasks() {
		return fmt.Errorf("exec: %d rows, want %d tasks", len(e), g.NumTasks())
	}
	for t := range e {
		if len(e[t]) != p.M {
			return fmt.Errorf("exec: row %d has %d cols, want %d", t, len(e[t]), p.M)
		}
		for k, c := range e[t] {
			if c <= 0 {
				return fmt.Errorf("exec: non-positive E(t%d, P%d) = %v", t, k, c)
			}
		}
	}
	return nil
}

// Slowest returns max_P E(t,P) for each task (the numerator terms of the
// granularity definition).
func (e ExecMatrix) Slowest() []float64 {
	out := make([]float64, len(e))
	for t := range e {
		m := 0.0
		for _, c := range e[t] {
			if c > m {
				m = c
			}
		}
		out[t] = m
	}
	return out
}

// Mean returns the average execution time of each task over all
// processors, the cost model used for priority path lengths.
func (e ExecMatrix) Mean() []float64 {
	out := make([]float64, len(e))
	for t := range e {
		s := 0.0
		for _, c := range e[t] {
			s += c
		}
		out[t] = s / float64(len(e[t]))
	}
	return out
}

// MeanOverall returns the average execution time over all tasks and
// processors.
func (e ExecMatrix) MeanOverall() float64 {
	s, n := 0.0, 0
	for t := range e {
		for _, c := range e[t] {
			s += c
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// HeterogeneityRange bounds the per-processor spread of execution times
// around a task's base cost when generating matrices: each E(t,P) is
// base(t) * u with u uniform in [Lo, Hi]. The paper does not fix the
// computation heterogeneity model, so we use the standard range-based
// method (Ali et al.) with a moderate default spread.
type HeterogeneityRange struct {
	Lo, Hi float64
}

// DefaultHeterogeneity is the spread used by the paper-parameterized
// experiments.
var DefaultHeterogeneity = HeterogeneityRange{Lo: 0.5, Hi: 1.0}

// GenExecForGranularity builds an execution matrix whose granularity
// g(G,P) — sum of slowest computations over sum of slowest edge
// communications — equals the requested target exactly.
//
// Per-task base costs are drawn uniformly from [0.5, 1.5] and each
// E(t,P) = base(t)*u(t,P) with u drawn from het; the whole matrix is then
// rescaled so that sum_t max_P E(t,P) = target * sum_e V(e) * maxDelay.
func GenExecForGranularity(rng *rand.Rand, g *dag.DAG, p *Platform, target float64, het HeterogeneityRange) ExecMatrix {
	v := g.NumTasks()
	e := NewExecMatrix(v, p.M)
	for t := 0; t < v; t++ {
		base := 0.5 + rng.Float64()
		for k := 0; k < p.M; k++ {
			u := het.Lo + rng.Float64()*(het.Hi-het.Lo)
			e[t][k] = base * u
		}
	}
	den := g.TotalVolume() * p.MaxDelay()
	if den == 0 || target <= 0 {
		return e
	}
	cur := 0.0
	for _, s := range e.Slowest() {
		cur += s
	}
	scale := target * den / cur
	for t := range e {
		for k := range e[t] {
			e[t][k] *= scale
		}
	}
	return e
}
