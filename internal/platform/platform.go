// Package platform models the target heterogeneous system of the paper:
// a finite set of fully connected processors P = {P1..Pm} where the link
// between Pk and Ph has a unit message delay d(Pk, Ph), and every task t
// has a processor-dependent execution time E(t, Pk).
//
// The communication time of edge (ti, tj) with ti on Pk and tj on Ph is
// W(ti,tj) = V(ti,tj) * d(Pk,Ph), with d(Pk,Pk) = 0 (intra-processor data
// movement is free).
//
//caft:deterministic
package platform

import (
	"fmt"
	"math/rand"
)

// Platform describes m processors and the pairwise unit delays of the
// dedicated links between them. Delay is an m x m matrix with zero
// diagonal; Delay[k][h] is the time to ship one unit of data from Pk to
// Ph.
type Platform struct {
	M     int
	Delay [][]float64
}

// New returns a platform of m processors with all inter-processor unit
// delays set to delay (homogeneous network) and a zero diagonal.
func New(m int, delay float64) *Platform {
	p := &Platform{M: m, Delay: make([][]float64, m)}
	for k := 0; k < m; k++ {
		p.Delay[k] = make([]float64, m)
		for h := 0; h < m; h++ {
			if h != k {
				p.Delay[k][h] = delay
			}
		}
	}
	return p
}

// NewRandom returns a platform whose unit delays are drawn uniformly
// from [lo, hi], the paper's [0.5, 1] by default. Links are symmetric
// (d(Pk,Ph) = d(Ph,Pk)); the diagonal is zero.
func NewRandom(rng *rand.Rand, m int, lo, hi float64) *Platform {
	p := New(m, 0)
	for k := 0; k < m; k++ {
		for h := k + 1; h < m; h++ {
			d := lo + rng.Float64()*(hi-lo)
			p.Delay[k][h] = d
			p.Delay[h][k] = d
		}
	}
	return p
}

// Validate checks matrix shape, zero diagonal and non-negative delays.
func (p *Platform) Validate() error {
	if len(p.Delay) != p.M {
		return fmt.Errorf("platform: delay matrix has %d rows, want %d", len(p.Delay), p.M)
	}
	for k := range p.Delay {
		if len(p.Delay[k]) != p.M {
			return fmt.Errorf("platform: delay row %d has %d cols, want %d", k, len(p.Delay[k]), p.M)
		}
		if p.Delay[k][k] != 0 {
			return fmt.Errorf("platform: non-zero self delay on P%d", k)
		}
		for h, d := range p.Delay[k] {
			if d < 0 {
				return fmt.Errorf("platform: negative delay P%d->P%d", k, h)
			}
		}
	}
	return nil
}

// MaxDelay returns the largest unit delay over all links (the "slowest
// communication" rate used by the granularity definition).
func (p *Platform) MaxDelay() float64 {
	max := 0.0
	for k := range p.Delay {
		for _, d := range p.Delay[k] {
			if d > max {
				max = d
			}
		}
	}
	return max
}

// MeanDelay returns the average unit delay over the m(m-1) directed
// inter-processor links. Used by the average-cost path lengths that
// drive list-scheduling priorities (paper §5, citing HEFT).
func (p *Platform) MeanDelay() float64 {
	if p.M < 2 {
		return 0
	}
	sum := 0.0
	for k := range p.Delay {
		for h, d := range p.Delay[k] {
			if h != k {
				sum += d
			}
		}
	}
	return sum / float64(p.M*(p.M-1))
}
