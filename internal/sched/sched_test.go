package sched

import (
	"math"
	"math/rand"
	"testing"

	"caft/internal/dag"
	"caft/internal/gen"
	"caft/internal/platform"
	"caft/internal/timeline"
)

// prob builds a problem over g with m processors, homogeneous unit
// delays and all execution times equal to exec.
func prob(g *dag.DAG, m int, exec float64) *Problem {
	p := platform.New(m, 1)
	e := platform.NewExecMatrix(g.NumTasks(), m)
	for t := range e {
		for k := range e[t] {
			e[t][k] = exec
		}
	}
	return &Problem{G: g, Plat: p, Exec: e, Model: OnePort, Policy: timeline.Append}
}

func TestCliqueNetwork(t *testing.T) {
	p := platform.New(3, 0.5)
	c := Clique{Plat: p}
	if c.NumLinks() != 9 {
		t.Errorf("NumLinks = %d, want 9", c.NumLinks())
	}
	if r := c.Route(1, 2); len(r) != 1 || r[0] != 5 {
		t.Errorf("Route(1,2) = %v, want [5]", r)
	}
	if r := c.Route(1, 1); r != nil {
		t.Errorf("Route(1,1) = %v, want nil", r)
	}
	if d := c.Dur(0, 1, 10); d != 5 {
		t.Errorf("Dur = %v, want 5", d)
	}
	if c.MeanUnitDelay() != 0.5 {
		t.Errorf("MeanUnitDelay = %v", c.MeanUnitDelay())
	}
}

func TestProblemValidate(t *testing.T) {
	g := gen.Chain(3, 10)
	p := prob(g, 2, 1)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *p
	bad.Exec = platform.NewExecMatrix(2, 2) // wrong rows + zero entries
	if bad.Validate() == nil {
		t.Error("accepted malformed exec matrix")
	}
	if (&Problem{}).Validate() == nil {
		t.Error("accepted nil graph")
	}
}

func TestPlaceEntryReplica(t *testing.T) {
	g := gen.Chain(2, 5)
	p := prob(g, 2, 2)
	st := NewState(p)
	rep, err := st.PlaceReplica(0, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Start != 0 || rep.Finish != 2 {
		t.Fatalf("entry replica at [%v,%v), want [0,2)", rep.Start, rep.Finish)
	}
	// Same processor again must be rejected (space exclusion).
	if _, err := st.PlaceReplica(0, 1, 0, nil); err == nil {
		t.Fatal("two replicas of one task accepted on the same processor")
	}
}

func TestChainCommTiming(t *testing.T) {
	g := gen.Chain(2, 5) // volume 5, delay 1 => W = 5
	p := prob(g, 2, 2)
	st := NewState(p)
	r0, _ := st.PlaceReplica(0, 0, 0, nil)
	r1, err := st.PlaceReplica(1, 0, 1, st.FullSources(1))
	if err != nil {
		t.Fatal(err)
	}
	if r0.Finish != 2 {
		t.Fatalf("r0 finish %v", r0.Finish)
	}
	// Comm [2,7), t1 starts at 7, finishes 9.
	if r1.Start != 7 || r1.Finish != 9 {
		t.Fatalf("r1 at [%v,%v), want [7,9)", r1.Start, r1.Finish)
	}
	if len(st.Comms) != 1 || st.Comms[0].Start != 2 || st.Comms[0].Finish != 7 {
		t.Fatalf("comm = %+v", st.Comms)
	}
}

func TestSendPortSerialization(t *testing.T) {
	g := gen.Fork(2, 4) // t0 -> t1, t2; W = 4
	p := prob(g, 3, 1)
	st := NewState(p)
	st.PlaceReplica(0, 0, 0, nil) // [0,1)
	r1, _ := st.PlaceReplica(1, 0, 1, st.FullSources(1))
	r2, _ := st.PlaceReplica(2, 0, 2, st.FullSources(2))
	if r1.Start != 5 { // comm [1,5)
		t.Fatalf("r1 start = %v, want 5", r1.Start)
	}
	// Second comm serialized on P0's send port: [5,9).
	if r2.Start != 9 {
		t.Fatalf("r2 start = %v, want 9 (send port contention)", r2.Start)
	}
}

func TestMacroDataflowNoContention(t *testing.T) {
	g := gen.Fork(2, 4)
	p := prob(g, 3, 1)
	p.Model = MacroDataflow
	st := NewState(p)
	st.PlaceReplica(0, 0, 0, nil)
	r1, _ := st.PlaceReplica(1, 0, 1, st.FullSources(1))
	r2, _ := st.PlaceReplica(2, 0, 2, st.FullSources(2))
	if r1.Start != 5 || r2.Start != 5 {
		t.Fatalf("starts = %v, %v; want 5, 5 under macro-dataflow", r1.Start, r2.Start)
	}
}

func TestRecvPortSerialization(t *testing.T) {
	g := gen.Join(2, 4) // t0, t1 -> t2; W = 4
	p := prob(g, 3, 1)
	st := NewState(p)
	st.PlaceReplica(0, 0, 0, nil) // [0,1)
	st.PlaceReplica(1, 0, 1, nil) // [0,1)
	r2, err := st.PlaceReplica(2, 0, 2, st.FullSources(2))
	if err != nil {
		t.Fatal(err)
	}
	// Both messages tentatively finish at 5; they serialize at P2's
	// receive port: arrivals 5 and 9; t2 starts at 9.
	if r2.Start != 9 {
		t.Fatalf("r2 start = %v, want 9 (recv port contention)", r2.Start)
	}
}

func TestDisjointPairsOverlap(t *testing.T) {
	// t0 on P0 -> t2 on P1, t1 on P2 -> t3 on P3: disjoint pairs, the
	// two messages must run in parallel.
	g := dag.New(4)
	g.AddEdge(0, 2, 4)
	g.AddEdge(1, 3, 4)
	p := prob(g, 4, 1)
	st := NewState(p)
	st.PlaceReplica(0, 0, 0, nil)
	st.PlaceReplica(1, 0, 2, nil)
	r2, _ := st.PlaceReplica(2, 0, 1, st.FullSources(2))
	r3, _ := st.PlaceReplica(3, 0, 3, st.FullSources(3))
	if r2.Start != 5 || r3.Start != 5 {
		t.Fatalf("starts = %v, %v; want 5, 5 (disjoint pairs)", r2.Start, r3.Start)
	}
}

func TestIntraProcessorSuppressesOtherSources(t *testing.T) {
	g := gen.Chain(2, 5)
	p := prob(g, 3, 2)
	st := NewState(p)
	// Two replicas of t0, on P0 and P1.
	st.PlaceReplica(0, 0, 0, nil)
	st.PlaceReplica(0, 1, 1, nil)
	// t1 on P0: co-located with t0 copy 0 => free input at its finish.
	r1, err := st.PlaceReplica(1, 0, 0, st.FullSources(1))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Start != 2 {
		t.Fatalf("r1 start = %v, want 2 (intra input)", r1.Start)
	}
	intra, inter := 0, 0
	for _, c := range st.Comms {
		if c.Intra {
			intra++
		} else {
			inter++
		}
	}
	if intra != 1 || inter != 0 {
		t.Fatalf("comms intra=%d inter=%d, want 1, 0", intra, inter)
	}
}

func TestMinArrivalAcrossReplicaSources(t *testing.T) {
	// t0 replicated on P0 and P1 with different finishes; t1 on P2
	// receives from both and starts at the earliest arrival.
	g := gen.Chain(2, 3) // W = 3
	p := prob(g, 3, 1)
	p.Exec[0][1] = 5 // slow copy on P1
	st := NewState(p)
	st.PlaceReplica(0, 0, 0, nil) // [0,1)
	st.PlaceReplica(0, 1, 1, nil) // [0,5)
	r1, _ := st.PlaceReplica(1, 0, 2, st.FullSources(1))
	// Fast comm [1,4); slow comm [5,8) — serialized at P2 recv anyway.
	// First-arrival start = 4.
	if r1.Start != 4 {
		t.Fatalf("r1 start = %v, want 4", r1.Start)
	}
	if len(st.Comms) != 2 {
		t.Fatalf("want both sources to send, got %d comms", len(st.Comms))
	}
}

func TestProbeDoesNotMutate(t *testing.T) {
	g := gen.Chain(2, 5)
	p := prob(g, 2, 2)
	st := NewState(p)
	st.PlaceReplica(0, 0, 0, nil)
	before := len(st.Comms)
	if _, err := st.ProbeReplica(1, 0, 1, st.FullSources(1)); err != nil {
		t.Fatal(err)
	}
	if len(st.Comms) != before || len(st.Reps[1]) != 0 {
		t.Fatal("ProbeReplica mutated the state")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := gen.Chain(3, 5)
	p := prob(g, 2, 2)
	st := NewState(p)
	st.PlaceReplica(0, 0, 0, nil)
	c := st.Clone()
	c.PlaceReplica(1, 0, 1, c.FullSources(1))
	if len(st.Reps[1]) != 0 || len(st.Comms) != 0 {
		t.Fatal("clone shares storage with original")
	}
}

func TestPlaceReplicaErrors(t *testing.T) {
	g := gen.Join(2, 4)
	p := prob(g, 3, 1)
	st := NewState(p)
	if _, err := st.PlaceReplica(2, 0, 0, nil); err == nil {
		t.Error("accepted missing source sets")
	}
	st.PlaceReplica(0, 0, 0, nil)
	bad := []SourceSet{
		{Pred: 0, Volume: 4, Sources: st.Reps[0]},
		{Pred: 1, Volume: 4, Sources: nil},
	}
	if _, err := st.PlaceReplica(2, 0, 1, bad); err == nil {
		t.Error("accepted empty source set")
	}
}

func TestSnapshotValidate(t *testing.T) {
	g := gen.Join(2, 4)
	p := prob(g, 3, 1)
	st := NewState(p)
	st.PlaceReplica(0, 0, 0, nil)
	st.PlaceReplica(1, 0, 1, nil)
	st.PlaceReplica(2, 0, 2, st.FullSources(2))
	s := st.Snapshot()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.MessageCount() != 2 {
		t.Errorf("MessageCount = %d, want 2", s.MessageCount())
	}
	if s.ReplicaCount() != 3 {
		t.Errorf("ReplicaCount = %d, want 3", s.ReplicaCount())
	}
	lat := s.ScheduledLatency()
	if lat != 10 { // t2 starts 9, exec 1
		t.Errorf("ScheduledLatency = %v, want 10", lat)
	}
	if s.MakespanAll() != 10 {
		t.Errorf("MakespanAll = %v", s.MakespanAll())
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := gen.Chain(2, 5)
	p := prob(g, 2, 2)
	st := NewState(p)
	st.PlaceReplica(0, 0, 0, nil)
	st.PlaceReplica(1, 0, 1, st.FullSources(1))
	s := st.Snapshot()
	s.Reps[1][0].Start = 0 // starts before its input arrives
	s.Reps[1][0].Finish = 2
	if s.Validate() == nil {
		t.Error("validation missed precedence violation")
	}
	s2 := st.Snapshot()
	s2.Comms[0].Start = 0 // comm before source finish
	s2.Comms[0].Finish = 5
	if s2.Validate() == nil {
		t.Error("validation missed comm-before-source")
	}
	s3 := st.Snapshot()
	s3.Reps[0] = nil
	if s3.Validate() == nil {
		t.Error("validation missed missing replica")
	}
}

func TestInsertionPolicyFillsGap(t *testing.T) {
	// Occupy P0 with [0,1) and a later task, leaving a gap that an
	// insertion-policy placement can fill but append cannot.
	g := dag.New(3) // three independent tasks
	p := prob(g, 1, 1)
	p.Exec[1][0] = 10
	st := NewState(p)
	st.PlaceReplica(0, 0, 0, nil) // [0,1)
	st.PlaceReplica(1, 0, 0, nil) // [1,11)
	r, _ := st.PlaceReplica(2, 0, 0, nil)
	if r.Start != 11 {
		t.Fatalf("append placed at %v, want 11", r.Start)
	}

	p2 := prob(g, 1, 1)
	p2.Exec[1][0] = 10
	p2.Policy = timeline.Insertion
	st2 := NewState(p2)
	// Force a gap: reserve [5,15) first, then [0,1); the third task
	// fits at 1.
	st2.PlaceReplica(1, 0, 0, nil) // [0,10) — no gap yet
	st2.PlaceReplica(0, 0, 0, nil) // appended [10,11)? insertion: [10,11)
	r2, _ := st2.PlaceReplica(2, 0, 0, nil)
	if r2.Start != 11 {
		t.Fatalf("insertion placed at %v, want 11 (no gap available)", r2.Start)
	}
}

func TestLister(t *testing.T) {
	g := diamondGraph()
	p := prob(g, 2, 1)
	rng := rand.New(rand.NewSource(1))
	l := NewLister(p, rng)
	if l.Remaining() != 4 {
		t.Fatalf("Remaining = %d", l.Remaining())
	}
	t0, ok := l.Pop()
	if !ok || t0 != 0 {
		t.Fatalf("first pop = %v, %v", t0, ok)
	}
	if _, ok := l.Pop(); ok {
		t.Fatal("popped a non-free task")
	}
	l.MarkScheduled(0, 1)
	// Now 1 and 2 free. Their priorities are equal by symmetry except
	// volume differences; both must come out before 3.
	a, _ := l.Pop()
	l.MarkScheduled(a, 2)
	b, _ := l.Pop()
	l.MarkScheduled(b, 2)
	if a == b || a == 3 || b == 3 {
		t.Fatalf("middle pops = %v, %v", a, b)
	}
	c, _ := l.Pop()
	if c != 3 {
		t.Fatalf("last pop = %v, want 3", c)
	}
	l.MarkScheduled(3, 4)
	if l.Remaining() != 0 {
		t.Fatalf("Remaining = %d, want 0", l.Remaining())
	}
}

func diamondGraph() *dag.DAG {
	g := dag.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(1, 3, 1)
	g.AddEdge(2, 3, 1)
	return g
}

func TestListerTake(t *testing.T) {
	g := gen.Fork(3, 1)
	p := prob(g, 2, 1)
	l := NewLister(p, rand.New(rand.NewSource(1)))
	l.MarkScheduled(mustPop(t, l), 1)
	free := append([]dag.TaskID(nil), l.Free()...)
	if len(free) != 3 {
		t.Fatalf("free = %v", free)
	}
	if !l.Take(free[1]) {
		t.Fatal("Take failed")
	}
	if l.Take(free[1]) {
		t.Fatal("Take succeeded twice")
	}
	if len(l.Free()) != 2 {
		t.Fatalf("free after take = %v", l.Free())
	}
}

func mustPop(t *testing.T, l *Lister) dag.TaskID {
	t.Helper()
	id, ok := l.Pop()
	if !ok {
		t.Fatal("Pop failed")
	}
	return id
}

func TestListerDynamicTopLevels(t *testing.T) {
	g := gen.Chain(3, 10)
	p := prob(g, 2, 1)
	l := NewLister(p, rand.New(rand.NewSource(1)))
	before := l.Priority(1)
	l.MarkScheduled(mustPop(t, l), 100) // huge actual finish
	if l.Priority(1) <= before {
		t.Fatalf("priority of successor not updated: %v -> %v", before, l.Priority(1))
	}
}

func TestScheduledLatencyMissingTask(t *testing.T) {
	g := gen.Chain(2, 1)
	p := prob(g, 2, 1)
	s := &Schedule{P: p, Reps: make([][]Replica, 2)}
	if !math.IsInf(s.ScheduledLatency(), 1) {
		t.Fatal("latency of incomplete schedule must be +Inf")
	}
}

func TestModelString(t *testing.T) {
	if OnePort.String() != "one-port" || MacroDataflow.String() != "macro-dataflow" {
		t.Error("Model.String broken")
	}
	if Model(7).String() == "" {
		t.Error("unknown model should stringify")
	}
}
