package sched

import (
	"math/rand"
	"testing"

	"caft/internal/timeline"
)

func noopNew(p *Problem, eps int, rng *rand.Rand) (*Schedule, error) { return nil, nil }

func TestRegistryOrderAndLookup(t *testing.T) {
	// High IDs far outside the in-tree range; registration is
	// process-wide.
	sched100 := Descriptor{Name: "test-reg-b", ID: 101, New: noopNew}
	sched101 := Descriptor{Name: "test-reg-a", ID: 100, New: noopNew}
	Register(sched100)
	Register(sched101)

	d, ok := Lookup("test-reg-a")
	if !ok || d.ID != 100 {
		t.Fatalf("Lookup(test-reg-a) = %+v, %v", d, ok)
	}
	if _, ok := Lookup("nosuch"); ok {
		t.Fatal("Lookup invented a scheduler")
	}

	// Names and Registered list in ID order regardless of registration
	// order.
	names := Names()
	ia, ib := -1, -1
	for i, n := range names {
		switch n {
		case "test-reg-a":
			ia = i
		case "test-reg-b":
			ib = i
		}
	}
	if ia < 0 || ib < 0 || ia >= ib {
		t.Fatalf("Names() not in ID order: %v", names)
	}
	regs := Registered()
	for i := 1; i < len(regs); i++ {
		if regs[i-1].ID >= regs[i].ID {
			t.Fatalf("Registered() not strictly ID-ordered: %v then %v", regs[i-1].ID, regs[i].ID)
		}
	}
}

func TestRegistryRejectsCollisions(t *testing.T) {
	mustPanic := func(name string, d Descriptor) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		Register(d)
	}
	Register(Descriptor{Name: "test-dup", ID: 110, New: noopNew})
	mustPanic("duplicate name", Descriptor{Name: "test-dup", ID: 111, New: noopNew})
	mustPanic("duplicate ID", Descriptor{Name: "test-dup2", ID: 110, New: noopNew})
	mustPanic("empty name", Descriptor{ID: 112, New: noopNew})
	mustPanic("nil constructor", Descriptor{Name: "test-nil", ID: 113})
}

func TestCapsSupports(t *testing.T) {
	c := Caps{Append: true}
	if !c.Supports(timeline.Append) || c.Supports(timeline.Insertion) {
		t.Fatalf("Caps{Append}.Supports wrong")
	}
}
