package sched

import "sort"

// Metrics summarizes resource usage and structure of a schedule,
// reported by the experiment harness and the visualization tools.
type Metrics struct {
	Latency       float64 // max over tasks of earliest replica finish
	MakespanAll   float64 // completion of the very last replica
	Messages      int     // inter-processor transfers
	IntraComms    int     // free co-located transfers
	Replicas      int
	CommVolume    float64   // total data volume crossing the network
	CommTime      float64   // total busy time of all transfers
	ComputeTime   float64   // total busy time of all executions
	ProcBusy      []float64 // per-processor compute busy time
	SendBusy      []float64 // per-processor send-port busy time
	RecvBusy      []float64 // per-processor receive-port busy time
	LoadImbalance float64   // (max proc busy − mean proc busy) / mean
	AvgPortUtil   float64   // mean send+recv busy fraction over [0, MakespanAll]
}

// ComputeMetrics derives the metrics of a schedule.
func (s *Schedule) ComputeMetrics() Metrics {
	m := s.P.Plat.M
	out := Metrics{
		Latency:     s.ScheduledLatency(),
		MakespanAll: s.MakespanAll(),
		Replicas:    s.ReplicaCount(),
		ProcBusy:    make([]float64, m),
		SendBusy:    make([]float64, m),
		RecvBusy:    make([]float64, m),
	}
	for t := range s.Reps {
		for _, r := range s.Reps[t] {
			d := r.Finish - r.Start
			out.ComputeTime += d
			out.ProcBusy[r.Proc] += d
		}
	}
	horizon := out.MakespanAll
	for _, c := range s.Comms {
		if c.Intra {
			out.IntraComms++
			continue
		}
		out.Messages++
		out.CommVolume += c.Volume
		out.CommTime += c.Dur
		out.SendBusy[c.SrcProc] += c.Dur
		out.RecvBusy[c.DstProc] += c.Dur
		if c.Finish > horizon {
			horizon = c.Finish
		}
	}
	mean := out.ComputeTime / float64(m)
	if mean > 0 {
		max := out.ProcBusy[0]
		for _, b := range out.ProcBusy[1:] {
			if b > max {
				max = b
			}
		}
		out.LoadImbalance = (max - mean) / mean
	}
	if horizon > 0 {
		total := 0.0
		for p := 0; p < m; p++ {
			total += out.SendBusy[p] + out.RecvBusy[p]
		}
		out.AvgPortUtil = total / (2 * float64(m) * horizon)
	}
	return out
}

// CommDensity returns the schedule's communication-to-computation time
// ratio, the realized counterpart of the instance granularity.
func (mt Metrics) CommDensity() float64 {
	if mt.ComputeTime == 0 {
		return 0
	}
	return mt.CommTime / mt.ComputeTime
}

// BusiestProcs returns processor indices sorted by decreasing compute
// busy time.
func (mt Metrics) BusiestProcs() []int {
	idx := make([]int, len(mt.ProcBusy))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if mt.ProcBusy[idx[a]] != mt.ProcBusy[idx[b]] {
			return mt.ProcBusy[idx[a]] > mt.ProcBusy[idx[b]]
		}
		return idx[a] < idx[b]
	})
	return idx
}
