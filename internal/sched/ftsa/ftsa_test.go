package ftsa

import (
	"math/rand"
	"testing"

	"caft/internal/dag"
	"caft/internal/gen"
	"caft/internal/platform"
	"caft/internal/sched"
	"caft/internal/sim"
	"caft/internal/timeline"
)

func uniformProblem(g *dag.DAG, m int, exec float64) *sched.Problem {
	p := platform.New(m, 1)
	e := platform.NewExecMatrix(g.NumTasks(), m)
	for t := range e {
		for k := range e[t] {
			e[t][k] = exec
		}
	}
	return &sched.Problem{G: g, Plat: p, Exec: e, Model: sched.OnePort, Policy: timeline.Append}
}

func randomProblem(rng *rand.Rand, n, m int) *sched.Problem {
	params := gen.RandomParams{MinTasks: n, MaxTasks: n, MinDegree: 1, MaxDegree: 3, MinVolume: 50, MaxVolume: 150}
	g := gen.RandomLayered(rng, params)
	plat := platform.NewRandom(rng, m, 0.5, 1.0)
	exec := platform.GenExecForGranularity(rng, g, plat, 1.0, platform.DefaultHeterogeneity)
	return &sched.Problem{G: g, Plat: plat, Exec: exec, Model: sched.OnePort, Policy: timeline.Append}
}

func TestFTSAValidAndReplicated(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5; trial++ {
		p := randomProblem(rng, 40, 6)
		for _, eps := range []int{0, 1, 2} {
			s, err := Schedule(p, eps, rng)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("eps=%d: %v", eps, err)
			}
			for ti := range s.Reps {
				if len(s.Reps[ti]) != eps+1 {
					t.Fatalf("eps=%d: task %d has %d replicas", eps, ti, len(s.Reps[ti]))
				}
			}
		}
	}
}

// FTSA's message count is bounded by e(ε+1)².
func TestFTSAQuadraticMessageBound(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 6; trial++ {
		p := randomProblem(rng, 50, 8)
		for _, eps := range []int{1, 2, 3} {
			s, err := Schedule(p, eps, rng)
			if err != nil {
				t.Fatal(err)
			}
			bound := p.G.NumEdges() * (eps + 1) * (eps + 1)
			if got := s.MessageCount(); got > bound {
				t.Fatalf("eps=%d: %d messages > e(eps+1)^2 = %d", eps, got, bound)
			}
		}
	}
}

func TestFTSAErrors(t *testing.T) {
	p := uniformProblem(gen.Chain(3, 10), 2, 1)
	if _, err := Schedule(p, 2, nil); err == nil {
		t.Fatal("accepted eps+1 > m")
	}
	if _, err := Schedule(p, -1, nil); err == nil {
		t.Fatal("accepted negative eps")
	}
	bad := *p
	bad.Exec = platform.NewExecMatrix(1, 2)
	if _, err := Schedule(&bad, 0, nil); err == nil {
		t.Fatal("accepted invalid problem")
	}
}

// HEFT (eps=0) on a 2-task chain with expensive communication keeps
// both tasks on one processor.
func TestEpsZeroAvoidsExpensiveComm(t *testing.T) {
	g := gen.Chain(2, 1000) // W = 1000 across procs
	p := uniformProblem(g, 3, 2)
	s, err := Schedule(p, 0, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if s.Reps[0][0].Proc != s.Reps[1][0].Proc {
		t.Fatal("HEFT split a chain across processors despite huge comm cost")
	}
	if s.ScheduledLatency() != 4 {
		t.Fatalf("latency = %v, want 4", s.ScheduledLatency())
	}
	if s.MessageCount() != 0 {
		t.Fatalf("messages = %d, want 0", s.MessageCount())
	}
}

// With free communication and more processors than tasks on a fork,
// leaves spread out and run concurrently.
func TestEpsZeroParallelizesFork(t *testing.T) {
	g := gen.Fork(4, 0.001) // nearly free messages
	p := uniformProblem(g, 5, 10)
	s, err := Schedule(p, 0, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	// Root [0,10); each leaf needs a 0.001 message (serialized at the
	// root's send port) or runs locally. Latency must be far below the
	// serial 50.
	if s.ScheduledLatency() > 21 {
		t.Fatalf("latency = %v, fork not parallelized", s.ScheduledLatency())
	}
}

func TestFTSAResilience(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := randomProblem(rng, 40, 6)
	for _, eps := range []int{1, 2} {
		s, err := Schedule(p, eps, rng)
		if err != nil {
			t.Fatal(err)
		}
		for draw := 0; draw < 20; draw++ {
			crashed := map[int]bool{}
			for len(crashed) < eps {
				crashed[rng.Intn(6)] = true
			}
			if _, err := sim.CrashLatency(s, crashed); err != nil {
				t.Fatalf("eps=%d crashed=%v: %v", eps, crashed, err)
			}
		}
	}
}

// Replicas of a task must finish no earlier than the best replica found
// by the candidate scan — i.e., the committed placement uses the
// min-EFT processors.
func TestFTSAPicksMinEFT(t *testing.T) {
	g := gen.Chain(2, 1) // tiny message: W = 1
	p := uniformProblem(g, 4, 5)
	// Make P2 much faster for task 1.
	p.Exec[1][2] = 1
	s, err := Schedule(p, 0, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	// t0 lands on some processor at [0,5). Keeping t1 there costs 5 more
	// (finish 10); shipping to the fast P2 costs 1 (arrive 6) + 1 (exec)
	// = finish 7. Min-EFT must migrate.
	if s.Reps[1][0].Proc != 2 {
		t.Fatalf("t1 on P%d, want the fast P2", s.Reps[1][0].Proc)
	}
	if s.ScheduledLatency() != 7 {
		t.Fatalf("latency = %v, want 7", s.ScheduledLatency())
	}
}
