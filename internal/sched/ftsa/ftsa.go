// Package ftsa implements FTSA (Fault Tolerant Scheduling Algorithm) of
// Benoit, Hakem, Robert [4], the fault-tolerant extension of HEFT used
// as the primary baseline of the CAFT paper, adapted to the one-port
// model as described in Section 4.3.
//
// At each step, the free task with the highest priority (tℓ+bℓ) is
// selected and its mapping simulated on every processor; the ε+1
// processors allowing the minimum finish time receive one replica each.
// Every replica of a predecessor sends its result to every replica of
// the successor (unless a replica of the predecessor is co-located, in
// which case the input is free), so the schedule carries at most
// e(ε+1)² messages.
//
//caft:deterministic
package ftsa

import (
	"fmt"
	"math/rand"
	"sort"

	"caft/internal/dag"
	"caft/internal/sched"
)

func init() {
	sched.Register(sched.Descriptor{
		Name: "ftsa", ID: 3,
		Caps: sched.Caps{AcceptsEps: true, Deterministic: true, Append: true, Insertion: true},
		New:  Schedule,
	})
}

// Schedule runs FTSA with the given number ε of tolerated failures.
// ε = 0 degenerates to (one-port) HEFT.
func Schedule(p *sched.Problem, eps int, rng *rand.Rand) (*sched.Schedule, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if eps < 0 || eps+1 > p.Plat.M {
		return nil, fmt.Errorf("ftsa: cannot place %d replicas on %d processors", eps+1, p.Plat.M)
	}
	st := sched.NewState(p)
	l := sched.NewLister(p, rng)
	for {
		t, ok := l.Pop()
		if !ok {
			break
		}
		if err := scheduleTask(st, t, eps); err != nil {
			return nil, err
		}
		l.MarkScheduled(t, sched.EarliestFinish(st.Reps[t]))
	}
	if l.Remaining() != 0 {
		return nil, fmt.Errorf("ftsa: %d tasks never became free (cyclic graph?)", l.Remaining())
	}
	return st.Snapshot(), nil
}

type candidate struct {
	proc   int
	finish float64
}

// scheduleTask simulates t on every candidate processor (all m by
// default; the top ProbeWidth by optimistic finish time when bounded,
// never fewer than the ε+1 distinct processors the replicas need) and
// commits replicas to the ε+1 best ones in increasing simulated-finish
// order.
func scheduleTask(st *sched.State, t dag.TaskID, eps int) error {
	sources := st.FullSources(t)
	m := st.P.Plat.M
	cands := make([]candidate, 0, m)
	for _, proc := range st.Candidates(t, eps+1) {
		rep, err := st.ProbeReplica(t, 0, proc, sources)
		if err != nil {
			return err
		}
		cands = append(cands, candidate{proc: proc, finish: rep.Finish})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].finish != cands[j].finish {
			return cands[i].finish < cands[j].finish
		}
		return cands[i].proc < cands[j].proc
	})
	for k := 0; k <= eps; k++ {
		if _, err := st.PlaceReplica(t, k, cands[k].proc, sources); err != nil {
			return err
		}
	}
	return nil
}
