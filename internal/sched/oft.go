package sched

import (
	"math"

	"caft/internal/dag"
)

// OFT computes the optimistic finish-time table
//
//	OFT[t][p] = w(t,p) + max over children c of
//	            min over q of (OFT[c][q] + (q == p ? 0 : c(e)))
//
// by a backward sweep over the compiled graph view: exit tasks cost
// their execution time, and an inner task on p optimistically assumes
// each child lands on its best processor, paying the actual pairwise
// transfer cost only when that processor differs from p. It is HOFT's
// table (package sched/hoft delegates here), and — because it lower-
// bounds the finish time achievable through p for the whole remaining
// subtree — it is also the processor-ranking key of bounded-candidate
// probing (State.Candidates).
//
// Rows are views into one flat backing array, laid out by task ID.
func OFT(p *Problem) ([][]float64, error) {
	c, err := p.G.Compile()
	if err != nil {
		return nil, err
	}
	m := p.Plat.M
	net := p.Network()
	topo := c.Topo()
	n := c.NumTasks()
	oft := make([][]float64, n)
	flat := make([]float64, n*m)
	for i := n - 1; i >= 0; i-- {
		t := topo[i]
		row := flat[int(t)*m : (int(t)+1)*m]
		to, vol := c.Succ(dag.TaskID(t))
		for proc := 0; proc < m; proc++ {
			acc := 0.0
			for k, s := range to {
				minC := math.Inf(1)
				for q := 0; q < m; q++ {
					cc := oft[s][q]
					if q != proc {
						cc += net.Dur(proc, q, vol[k])
					}
					if cc < minC {
						minC = cc
					}
				}
				if minC > acc {
					acc = minC
				}
			}
			row[proc] = p.Exec[t][proc] + acc
		}
		oft[t] = row
	}
	return oft, nil
}
