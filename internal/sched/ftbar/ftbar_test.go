package ftbar

import (
	"math/rand"
	"testing"

	"caft/internal/dag"
	"caft/internal/gen"
	"caft/internal/platform"
	"caft/internal/sched"
	"caft/internal/sim"
	"caft/internal/timeline"
)

func randomProblem(rng *rand.Rand, n, m int) *sched.Problem {
	params := gen.RandomParams{MinTasks: n, MaxTasks: n, MinDegree: 1, MaxDegree: 3, MinVolume: 50, MaxVolume: 150}
	g := gen.RandomLayered(rng, params)
	plat := platform.NewRandom(rng, m, 0.5, 1.0)
	exec := platform.GenExecForGranularity(rng, g, plat, 1.0, platform.DefaultHeterogeneity)
	return &sched.Problem{G: g, Plat: plat, Exec: exec, Model: sched.OnePort, Policy: timeline.Append}
}

func TestFTBARValidAndReplicated(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 4; trial++ {
		p := randomProblem(rng, 35, 6)
		for _, npf := range []int{0, 1, 2} {
			s, err := Schedule(p, npf, rng)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("npf=%d: %v", npf, err)
			}
			// Minimize-Start-Time may add duplicates beyond the npf+1
			// mandatory replicas; never fewer.
			for ti := range s.Reps {
				if len(s.Reps[ti]) < npf+1 {
					t.Fatalf("npf=%d: task %d has %d replicas", npf, ti, len(s.Reps[ti]))
				}
			}
		}
	}
}

func TestFTBARSchedulesEveryFreeTaskEventually(t *testing.T) {
	// A wide fork exercises the urgency selection across many free
	// tasks at once.
	rng := rand.New(rand.NewSource(2))
	g := gen.Fork(20, 100)
	plat := platform.NewRandom(rng, 5, 0.5, 1.0)
	exec := platform.GenExecForGranularity(rng, g, plat, 1.0, platform.DefaultHeterogeneity)
	p := &sched.Problem{G: g, Plat: plat, Exec: exec, Model: sched.OnePort, Policy: timeline.Append}
	s, err := Schedule(p, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if s.ReplicaCount() < 2*g.NumTasks() {
		t.Fatalf("replicas = %d, want >= %d", s.ReplicaCount(), 2*g.NumTasks())
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFTBARErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := randomProblem(rng, 10, 3)
	if _, err := Schedule(p, 3, rng); err == nil {
		t.Fatal("accepted npf+1 > m")
	}
	if _, err := Schedule(p, -2, rng); err == nil {
		t.Fatal("accepted negative npf")
	}
}

func TestFTBARResilience(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := randomProblem(rng, 30, 6)
	for _, npf := range []int{1, 2} {
		s, err := Schedule(p, npf, rng)
		if err != nil {
			t.Fatal(err)
		}
		for draw := 0; draw < 15; draw++ {
			crashed := map[int]bool{}
			for len(crashed) < npf {
				crashed[rng.Intn(6)] = true
			}
			if _, err := sim.CrashLatency(s, crashed); err != nil {
				t.Fatalf("npf=%d crashed=%v: %v", npf, crashed, err)
			}
		}
	}
}

// The schedule-pressure rule must prefer the processor with the
// earliest start for a single free task (pressure differs from EST by a
// task-constant).
func TestPressurePrefersEarliestStart(t *testing.T) {
	g := dag.New(1)
	plat := platform.New(3, 1)
	exec := platform.NewExecMatrix(1, 3)
	exec[0] = []float64{5, 3, 9}
	p := &sched.Problem{G: g, Plat: plat, Exec: exec, Model: sched.OnePort, Policy: timeline.Append}
	s, err := Schedule(p, 0, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	// All ESTs are 0; FTBAR breaks the tie on processor index, so P0.
	// What matters: a valid single placement with correct duration.
	rep := s.Reps[0][0]
	if rep.Finish-rep.Start != exec[0][rep.Proc] {
		t.Fatalf("replica duration %v on P%d", rep.Finish-rep.Start, rep.Proc)
	}
}

// Minimize-Start-Time duplicates the critical predecessor when that
// reduces the start: a two-task chain with a huge message must end up
// co-located even though the entry task's min-EFT processor is fixed
// first.
func TestMinimizeStartTimeDuplicates(t *testing.T) {
	g := gen.Chain(2, 1000) // enormous message
	plat := platform.New(3, 1)
	exec := platform.NewExecMatrix(2, 3)
	for ti := range exec {
		for k := range exec[ti] {
			exec[ti][k] = 2
		}
	}
	p := &sched.Problem{G: g, Plat: plat, Exec: exec, Model: sched.OnePort, Policy: timeline.Append}
	s, err := Schedule(p, 1, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Each replica of t1 must have a co-located copy of t0 (original or
	// duplicated): no replica should wait 1000 time units.
	for _, r := range s.Reps[1] {
		if r.Start > 10 {
			t.Fatalf("t1 copy %d starts at %v: duplication did not fire", r.Copy, r.Start)
		}
	}
}
