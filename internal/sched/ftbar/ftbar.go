// Package ftbar implements FTBAR (Fault Tolerance Based Active
// Replication) of Girault, Kalla, Sighireanu, Sorel (DSN'03), the second
// baseline of the CAFT paper, adapted to the one-port model as described
// in Section 4.3 of the paper.
//
// FTBAR is built on the schedule-pressure list scheduler of Sorel's
// "algorithm architecture adequation": at step n, for every free task ti
// and processor pj the schedule pressure
//
//	σ(n)(ti,pj) = S(n)(ti,pj) + s̄(ti) − R(n−1)
//
// measures how much scheduling ti on pj would lengthen the schedule,
// where S is the earliest start time of ti on pj, s̄ the static
// bottom-up latest start (we use the bottom level bℓ(ti), the remaining
// path to an exit), and R(n−1) the schedule length after the previous
// step. Each free task selects the Npf+1 processors minimizing its
// pressure, the most urgent (task, processor) pair — the one with the
// maximum pressure among those selected sets — wins, and the winning
// task is replicated on its Npf+1 processors. Like FTSA, every replica
// of a predecessor communicates with every replica of its successors.
//
// FTBAR additionally applies the Minimize-Start-Time procedure of
// Ahmad and Kwok: after selecting the processor of a replica, it checks
// whether duplicating the replica's critical predecessor — the one
// whose message gates its start time — onto the same processor would
// let the replica start earlier, and commits the duplication when it
// does. We implement the single-level (non-recursive) variant; see
// DESIGN.md S3.
//
//caft:deterministic
package ftbar

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"caft/internal/dag"
	"caft/internal/sched"
)

func init() {
	sched.Register(sched.Descriptor{
		Name: "ftbar", ID: 4,
		Caps: sched.Caps{AcceptsEps: true, Deterministic: true, Append: true, Insertion: true},
		New:  Schedule,
	})
}

// Schedule runs FTBAR with npf tolerated failures (npf+1 replicas per
// task). npf = 0 is the fault-free FTBAR baseline of the paper's
// figures.
func Schedule(p *sched.Problem, npf int, rng *rand.Rand) (*sched.Schedule, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if npf < 0 || npf+1 > p.Plat.M {
		return nil, fmt.Errorf("ftbar: cannot place %d replicas on %d processors", npf+1, p.Plat.M)
	}
	st := sched.NewState(p)
	l := sched.NewLister(p, rng)
	prevLen := 0.0 // R(n-1)
	for l.Remaining() > 0 {
		free := append([]dag.TaskID(nil), l.Free()...)
		if len(free) == 0 {
			return nil, fmt.Errorf("ftbar: no free task but %d remain", l.Remaining())
		}
		var (
			urgent     dag.TaskID
			urgentProc []procPressure
			urgentSig  float64
			ties       int
		)
		for _, t := range free {
			procs, sig, err := bestProcessors(st, l, t, npf, prevLen)
			if err != nil {
				return nil, err
			}
			switch {
			case ties == 0 || sig > urgentSig:
				urgent, urgentProc, urgentSig, ties = t, procs, sig, 1
			case sig == urgentSig:
				ties++
				if rng.Intn(ties) == 0 {
					urgent, urgentProc = t, procs
				}
			}
		}
		for k := 0; k <= npf; k++ {
			rep, err := placeWithMST(st, urgent, k, urgentProc[k].proc)
			if err != nil {
				return nil, err
			}
			if rep.Finish > prevLen {
				prevLen = rep.Finish
			}
		}
		l.Take(urgent)
		l.MarkScheduled(urgent, sched.EarliestFinish(st.Reps[urgent]))
	}
	return st.Snapshot(), nil
}

// placeWithMST places replica `copy` of task t on proc, applying the
// single-level Minimize-Start-Time refinement: if duplicating the
// critical predecessor (the one whose earliest message arrival gates
// the replica's start) onto proc lets the replica finish earlier, the
// duplicate is committed alongside. Duplicates are extra replicas of
// the predecessor and only increase redundancy.
func placeWithMST(st *sched.State, t dag.TaskID, copy, proc int) (sched.Replica, error) {
	sources := st.FullSources(t)
	base, err := st.ProbeReplica(t, copy, proc, sources)
	if err != nil {
		return sched.Replica{}, err
	}
	if crit, ok := criticalPred(st, proc, sources, base.Start); ok {
		if cand, dupFinish, err2 := probeWithDuplicate(st, t, copy, proc, crit); err2 == nil && cand.Finish < base.Finish {
			// Commit the duplicate, then the replica; FullSources now
			// includes the duplicate, so the intra rule kicks in.
			dupCopy := len(st.Reps[crit])
			if _, err := st.PlaceReplica(crit, dupCopy, proc, st.FullSources(crit)); err != nil {
				return sched.Replica{}, err
			}
			_ = dupFinish
			return st.PlaceReplica(t, copy, proc, st.FullSources(t))
		}
	}
	return st.PlaceReplica(t, copy, proc, sources)
}

// criticalPred returns the predecessor whose earliest message arrival
// equals the replica's start time — the input that gates it — when the
// start is communication-bound and the predecessor has no replica on
// proc yet.
func criticalPred(st *sched.State, proc int, sources []sched.SourceSet, start float64) (dag.TaskID, bool) {
	for _, set := range sources {
		best := math.Inf(1)
		onProc := false
		for _, src := range set.Sources {
			if src.Proc == proc {
				onProc = true
				break
			}
			_, fin := st.ProbeComm(src.Proc, proc, src.Finish, set.Volume)
			if fin < best {
				best = fin
			}
		}
		if !onProc && math.Abs(best-start) <= sched.Eps {
			return set.Pred, true
		}
	}
	return 0, false
}

// probeWithDuplicate simulates duplicating pred onto proc followed by
// the replica placement and returns the resulting replica. The two-step
// what-if runs inside one speculative transaction on the real state —
// the duplicate's record is visible to the second placement and both
// are rolled back — except under the CloneProbe reference mode, which
// keeps the historical clone-and-place path.
func probeWithDuplicate(st *sched.State, t dag.TaskID, copy, proc int, pred dag.TaskID) (sched.Replica, float64, error) {
	if st.P.Probe == sched.CloneProbe {
		c := st.Clone()
		dupCopy := len(c.Reps[pred])
		dup, err := c.PlaceReplica(pred, dupCopy, proc, c.FullSources(pred))
		if err != nil {
			return sched.Replica{}, 0, err
		}
		rep, err := c.PlaceReplica(t, copy, proc, c.FullSources(t))
		if err != nil {
			return sched.Replica{}, 0, err
		}
		return rep, dup.Finish, nil
	}
	var rep sched.Replica
	var dupFinish float64
	err := st.Speculate(func() error {
		dup, err := st.PlaceReplica(pred, len(st.Reps[pred]), proc, st.FullSources(pred))
		if err != nil {
			return err
		}
		dupFinish = dup.Finish
		rep, err = st.PlaceReplica(t, copy, proc, st.FullSources(t))
		return err
	})
	if err != nil {
		return sched.Replica{}, 0, err
	}
	return rep, dupFinish, nil
}

type procPressure struct {
	proc     int
	pressure float64
}

// bestProcessors returns the npf+1 processors with the minimum schedule
// pressure for t, in increasing pressure order, and the task's urgency:
// the maximum pressure within that selected set. Probing covers every
// processor by default and the top-ProbeWidth candidates (never fewer
// than the npf+1 the replicas need) when bounded.
func bestProcessors(st *sched.State, l *sched.Lister, t dag.TaskID, npf int, prevLen float64) ([]procPressure, float64, error) {
	sources := st.FullSources(t)
	m := st.P.Plat.M
	all := make([]procPressure, 0, m)
	bl := l.BottomLevel(t)
	for _, proc := range st.Candidates(t, npf+1) {
		rep, err := st.ProbeReplica(t, 0, proc, sources)
		if err != nil {
			return nil, 0, err
		}
		all = append(all, procPressure{proc: proc, pressure: rep.Start + bl - prevLen})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].pressure != all[j].pressure {
			return all[i].pressure < all[j].pressure
		}
		return all[i].proc < all[j].proc
	})
	sel := all[:npf+1]
	return sel, sel[len(sel)-1].pressure, nil
}
