package sched

import (
	"math/rand"
	"strings"
	"testing"

	"caft/internal/dag"
	"caft/internal/gen"
	"caft/internal/platform"
	"caft/internal/timeline"
)

// greedySchedule places every task (topological order) on the processor
// minimizing its finish time — a minimal HEFT-like builder that keeps
// these tests independent of the scheduler packages (which import this
// one).
func greedySchedule(t *testing.T, p *Problem) *Schedule {
	t.Helper()
	c, err := p.G.Compile()
	if err != nil {
		t.Fatal(err)
	}
	st := NewState(p)
	for _, task := range c.Topo() {
		tid := dag.TaskID(task)
		sources := st.FullSources(tid)
		best, bestFin := -1, 0.0
		for proc := 0; proc < p.Plat.M; proc++ {
			rep, err := st.ProbeReplica(tid, 0, proc, sources)
			if err != nil {
				t.Fatal(err)
			}
			if best < 0 || rep.Finish < bestFin {
				best, bestFin = proc, rep.Finish
			}
		}
		if _, err := st.PlaceReplica(tid, 0, best, sources); err != nil {
			t.Fatal(err)
		}
	}
	return st.Snapshot()
}

// randomValidatorProblem builds a random layered problem for the
// validator tests.
func randomValidatorProblem(rng *rand.Rand, v, m int) *Problem {
	params := gen.RandomParams{MinTasks: v, MaxTasks: v, MinDegree: 1, MaxDegree: 3, MinVolume: 50, MaxVolume: 150}
	g := gen.RandomLayered(rng, params)
	plat := platform.NewRandom(rng, m, 0.5, 1.0)
	exec := platform.GenExecForGranularity(rng, g, plat, 1.0, platform.DefaultHeterogeneity)
	return &Problem{G: g, Plat: plat, Exec: exec, Model: OnePort, Policy: timeline.Append}
}

// TestValidatorReuseAcrossSchedules runs one Validator over a stream of
// schedules of different shapes: every well-formed schedule is accepted
// and no state leaks between calls.
func TestValidatorReuseAcrossSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	v := NewValidator()
	for trial := 0; trial < 8; trial++ {
		p := randomValidatorProblem(rng, 15+rng.Intn(25), 2+rng.Intn(5))
		s := greedySchedule(t, p)
		if err := v.Validate(s); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("trial %d (fresh validator): %v", trial, err)
		}
	}
}

// TestValidatorRejects pins the rejection messages of the dense
// validator on hand-corrupted schedules.
func TestValidatorRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := randomValidatorProblem(rng, 20, 4)
	base := greedySchedule(t, p)

	corrupt := func(mutate func(*Schedule)) error {
		s := &Schedule{P: p, Reps: make([][]Replica, len(base.Reps)), Comms: append([]Comm(nil), base.Comms...)}
		for i := range base.Reps {
			s.Reps[i] = append([]Replica(nil), base.Reps[i]...)
		}
		mutate(s)
		return s.Validate()
	}

	cases := []struct {
		name   string
		mutate func(*Schedule)
		want   string
	}{
		{"missing replica", func(s *Schedule) { s.Reps[3] = nil }, "has no replica"},
		{"duplicate processor", func(s *Schedule) {
			r := s.Reps[3][0]
			r.Copy = 1
			s.Reps[3] = append(s.Reps[3], r)
		}, "has two replicas on"},
		{"bad duration", func(s *Schedule) { s.Reps[3][0].Finish += 5 }, "duration"},
		{"dangling comm", func(s *Schedule) {
			if len(s.Comms) == 0 {
				t.Fatal("fixture produced no communications")
			}
			s.Comms[0].SrcCopy = 7
		}, "references missing replica"},
		{"early start", func(s *Schedule) {
			// Move a late replica to time zero, preserving its duration:
			// depending on what delayed it this violates the input-arrival
			// rule or an exclusion constraint, but something must fire.
			for ti := range s.Reps {
				if r := &s.Reps[ti][0]; r.Start > 0 {
					d := r.Finish - r.Start
					r.Start = 0
					r.Finish = d
					return
				}
			}
			t.Fatal("fixture has no delayed replica")
		}, ""},
	}
	for _, tc := range cases {
		err := corrupt(tc.mutate)
		if err == nil {
			t.Fatalf("%s: corrupted schedule accepted", tc.name)
		}
		if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestValidatorAllocPin pins the steady state: after one warm-up pass, a
// reused Validator accepts a same-shaped schedule without allocating —
// the dense replacement for the nested maps the validator used to build
// per call.
func TestValidatorAllocPin(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := randomValidatorProblem(rng, 40, 5)
	s := greedySchedule(t, p)
	v := NewValidator()
	if err := v.Validate(s); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := v.Validate(s); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state validation allocates %.1f/op, want 0", allocs)
	}
}

// BenchmarkValidate measures a reused Validator over a mid-sized
// one-port schedule.
func BenchmarkValidate(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	params := gen.RandomParams{MinTasks: 1000, MaxTasks: 1000, MinDegree: 1, MaxDegree: 3, MinVolume: 50, MaxVolume: 150}
	g := gen.RandomLayered(rng, params)
	plat := platform.NewRandom(rng, 8, 0.5, 1.0)
	exec := platform.GenExecForGranularity(rng, g, plat, 1.0, platform.DefaultHeterogeneity)
	p := &Problem{G: g, Plat: plat, Exec: exec, Model: OnePort, Policy: timeline.Append}
	c, err := g.Compile()
	if err != nil {
		b.Fatal(err)
	}
	st := NewState(p)
	for _, task := range c.Topo() {
		tid := dag.TaskID(task)
		if _, err := st.PlaceReplica(tid, 0, int(task)%8, st.FullSources(tid)); err != nil {
			b.Fatal(err)
		}
	}
	s := st.Snapshot()
	v := NewValidator()
	if err := v.Validate(s); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := v.Validate(s); err != nil {
			b.Fatal(err)
		}
	}
}
