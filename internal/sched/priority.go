package sched

import (
	"math/rand"

	"caft/internal/dag"
)

// Lister maintains the free-task list α of the list-scheduling loop
// (paper Algorithm 5.1): a task is free when all of its predecessors
// have been scheduled. The priority of a free task is tℓ(t) + bℓ(t)
// where path lengths use average execution costs over processors and
// average communication costs over links (paper §5, citing HEFT).
// Top levels are updated dynamically as predecessors get scheduled,
// using the actual earliest finish of the scheduled task; bottom levels
// are static. Ties are broken randomly (paper: "ties are broken
// randomly") with the caller-provided source for reproducibility.
type Lister struct {
	c         *dag.Compiled
	bl        []float64
	tl        []float64
	meanDelay float64 // mean communication cost per unit volume
	free      []dag.TaskID
	unsched   []int // unscheduled predecessor count
	scheduled []bool
	remaining int
	rng       *rand.Rand
}

// NewLister builds the lister for a problem over the graph's compiled
// view. rng is used only for tie breaking and may not be nil. It panics
// on a cyclic graph, like the level computations it replaces; run
// Problem.Validate first.
func NewLister(p *Problem, rng *rand.Rand) *Lister {
	c, err := p.G.Compile()
	if err != nil {
		panic(err)
	}
	n := c.NumTasks()
	meanExec := p.Exec.Mean()
	meanDelay := p.Network().MeanUnitDelay()
	l := &Lister{
		c:         c,
		bl:        c.BottomLevelsInto(make([]float64, n), meanExec, meanDelay),
		tl:        c.TopLevelsInto(make([]float64, n), meanExec, meanDelay),
		meanDelay: meanDelay,
		unsched:   make([]int, n),
		scheduled: make([]bool, n),
		remaining: n,
		rng:       rng,
	}
	for t := 0; t < n; t++ {
		l.unsched[t] = c.InDegree(dag.TaskID(t))
		if l.unsched[t] == 0 {
			l.free = append(l.free, dag.TaskID(t))
		}
	}
	return l
}

// Remaining returns the number of tasks not yet marked scheduled.
func (l *Lister) Remaining() int { return l.remaining }

// Free returns the current free tasks (unordered). The slice aliases
// internal storage and is invalidated by Pop/Take/MarkScheduled;
// callers that need a stable snapshot use FreeCopy.
//
//caft:scratch safe=FreeCopy
func (l *Lister) Free() []dag.TaskID { return l.free }

// FreeCopy returns a freshly allocated copy of Free, safe to retain
// across Pop/Take/MarkScheduled.
func (l *Lister) FreeCopy() []dag.TaskID { return append([]dag.TaskID(nil), l.free...) }

// Priority returns the current priority tℓ(t)+bℓ(t) of a task.
func (l *Lister) Priority(t dag.TaskID) float64 { return l.tl[t] + l.bl[t] }

// BottomLevel returns the static bottom level of a task.
func (l *Lister) BottomLevel(t dag.TaskID) float64 { return l.bl[t] }

// Pop removes and returns the free task with the highest priority
// (H(α)); ties are broken randomly. It returns false when no task is
// free.
func (l *Lister) Pop() (dag.TaskID, bool) {
	if len(l.free) == 0 {
		return 0, false
	}
	best, ties := 0, 1
	for i := 1; i < len(l.free); i++ {
		pi, pb := l.Priority(l.free[i]), l.Priority(l.free[best])
		switch {
		case pi > pb:
			best, ties = i, 1
		case pi == pb:
			ties++
			if l.rng.Intn(ties) == 0 {
				best = i
			}
		}
	}
	t := l.free[best]
	l.free = append(l.free[:best], l.free[best+1:]...)
	return t, true
}

// Take removes a specific task from the free list (used by FTBAR, which
// chooses among all free tasks with its own urgency rule). It reports
// whether the task was free.
func (l *Lister) Take(t dag.TaskID) bool {
	for i, f := range l.free {
		if f == t {
			l.free = append(l.free[:i], l.free[i+1:]...)
			return true
		}
	}
	return false
}

// MarkScheduled records that t has been scheduled with the given
// earliest replica finish time, updates the dynamic top levels of its
// successors and releases newly freed successors into the free list.
func (l *Lister) MarkScheduled(t dag.TaskID, earliestFinish float64) {
	if l.scheduled[t] {
		panic("sched: task scheduled twice")
	}
	l.scheduled[t] = true
	l.remaining--
	to, vol := l.c.Succ(t)
	for k, s := range to {
		cand := earliestFinish + vol[k]*l.meanDelay
		if cand > l.tl[s] {
			l.tl[s] = cand
		}
		l.unsched[s]--
		if l.unsched[s] == 0 {
			l.free = append(l.free, dag.TaskID(s))
		}
	}
}

// EarliestFinish returns min over replicas of finish for a task's
// placed replicas; helper for MarkScheduled callers.
func EarliestFinish(reps []Replica) float64 {
	min := reps[0].Finish
	for _, r := range reps[1:] {
		if r.Finish < min {
			min = r.Finish
		}
	}
	return min
}
