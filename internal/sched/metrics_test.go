package sched

import (
	"math"
	"testing"

	"caft/internal/gen"
)

func TestComputeMetricsJoin(t *testing.T) {
	g := gen.Join(2, 4)
	p := prob(g, 3, 1)
	st := NewState(p)
	st.PlaceReplica(0, 0, 0, nil)
	st.PlaceReplica(1, 0, 1, nil)
	st.PlaceReplica(2, 0, 2, st.FullSources(2))
	mt := st.Snapshot().ComputeMetrics()
	if mt.Replicas != 3 || mt.Messages != 2 || mt.IntraComms != 0 {
		t.Fatalf("metrics = %+v", mt)
	}
	if mt.ComputeTime != 3 {
		t.Errorf("ComputeTime = %v, want 3", mt.ComputeTime)
	}
	if mt.CommVolume != 8 || mt.CommTime != 8 {
		t.Errorf("comm volume/time = %v/%v, want 8/8", mt.CommVolume, mt.CommTime)
	}
	if mt.ProcBusy[0] != 1 || mt.ProcBusy[1] != 1 || mt.ProcBusy[2] != 1 {
		t.Errorf("ProcBusy = %v", mt.ProcBusy)
	}
	// Perfectly balanced: zero imbalance.
	if mt.LoadImbalance != 0 {
		t.Errorf("LoadImbalance = %v", mt.LoadImbalance)
	}
	if d := mt.CommDensity(); math.Abs(d-8.0/3.0) > 1e-12 {
		t.Errorf("CommDensity = %v", d)
	}
	if mt.AvgPortUtil <= 0 || mt.AvgPortUtil > 1 {
		t.Errorf("AvgPortUtil = %v", mt.AvgPortUtil)
	}
}

func TestMetricsImbalanceAndOrdering(t *testing.T) {
	g := gen.Chain(3, 0.001) // negligible comm
	p := prob(g, 2, 2)
	st := NewState(p)
	// All three tasks end up on one processor (cheapest chain).
	st.PlaceReplica(0, 0, 0, nil)
	st.PlaceReplica(1, 0, 0, st.FullSources(1))
	st.PlaceReplica(2, 0, 0, st.FullSources(2))
	mt := st.Snapshot().ComputeMetrics()
	// mean busy = 3; P0 busy 6 => imbalance (6-3)/3 = 1.
	if mt.LoadImbalance != 1 {
		t.Errorf("LoadImbalance = %v, want 1", mt.LoadImbalance)
	}
	order := mt.BusiestProcs()
	if order[0] != 0 || order[1] != 1 {
		t.Errorf("BusiestProcs = %v", order)
	}
}

func TestMetricsEmptySchedule(t *testing.T) {
	g := gen.Chain(1, 1)
	p := prob(g, 2, 1)
	st := NewState(p)
	st.PlaceReplica(0, 0, 1, nil)
	mt := st.Snapshot().ComputeMetrics()
	if mt.Messages != 0 || mt.CommDensity() != 0 {
		t.Errorf("metrics = %+v", mt)
	}
}
