// Package hoft implements HOFT (Heterogeneous Optimistic Finish Time),
// a fault-free list scheduler built on optimistic finish-time tables
// (Sulaiman, Halim, et al.; the variant evaluated in McSweeney's HEFT
// comparison framework). Where HEFT ranks tasks by a single upward-rank
// number computed from processor-averaged costs, HOFT keeps the whole
// (task, processor) table
//
//	OFT[t][p] = w(t,p) + max over children c of
//	            min over q of (OFT[c][q] + (q == p ? 0 : c(e)))
//
// — the finish time of t on p under the optimistic assumption that
// every descendant gets its best processor and only the first hop pays
// communication. The table is used twice: task priority is the mean of
// OFT[t][·] over processors (tasks whose subtrees are expensive
// everywhere go first), and placement minimizes EFT(t,p) +
// (OFT[t][p] − w(t,p)) — the earliest finish achievable now plus the
// optimistic remaining path from p, a one-step lookahead that plain
// HEFT lacks. Like HEFT it is a fault-free reference: one replica per
// task, eps must be 0.
//
// Placement probes run through sched.State, so HOFT obeys the same
// one-port (or macro-dataflow) reservations and append/insertion
// policies as every other scheduler in the registry.
//
//caft:deterministic
package hoft

import (
	"fmt"
	"math"
	"math/rand"

	"caft/internal/dag"
	"caft/internal/sched"
)

func init() {
	sched.Register(sched.Descriptor{
		Name: "hoft", ID: 5,
		Caps: sched.Caps{Deterministic: true, Append: true, Insertion: true},
		New: func(p *sched.Problem, eps int, rng *rand.Rand) (*sched.Schedule, error) {
			if eps != 0 {
				return nil, fmt.Errorf("hoft: fault-free reference takes eps 0, got %d", eps)
			}
			return Schedule(p, rng)
		},
	})
}

// Schedule runs HOFT on the problem. rng breaks priority ties, like the
// paper's other list schedulers ("ties are broken randomly").
func Schedule(p *sched.Problem, rng *rand.Rand) (*sched.Schedule, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	oft, err := OFT(p)
	if err != nil {
		return nil, err
	}
	cg, err := p.G.Compile()
	if err != nil {
		return nil, err
	}
	m := p.Plat.M
	n := cg.NumTasks()

	// Priority: mean optimistic finish over processors.
	prio := make([]float64, n)
	for t := range prio {
		sum := 0.0
		for _, v := range oft[t] {
			sum += v
		}
		prio[t] = sum / float64(m)
	}

	st := sched.NewState(p)
	unsched := make([]int, n)
	var free []dag.TaskID
	for t := 0; t < n; t++ {
		unsched[t] = cg.InDegree(dag.TaskID(t))
		if unsched[t] == 0 {
			free = append(free, dag.TaskID(t))
		}
	}
	scheduled := 0
	for len(free) > 0 {
		// Pop the free task with the highest priority; ties are broken
		// uniformly, mirroring sched.Lister.
		best, ties := 0, 1
		for i := 1; i < len(free); i++ {
			switch pi, pb := prio[free[i]], prio[free[best]]; {
			case pi > pb:
				best, ties = i, 1
			case pi == pb:
				ties++
				if rng.Intn(ties) == 0 {
					best = i
				}
			}
		}
		t := free[best]
		free = append(free[:best], free[best+1:]...)

		// Place on the processor minimizing EFT + optimistic remaining
		// path (OFT minus the local execution already counted in EFT).
		sources := st.FullSources(t)
		bestProc, bestScore, bestFinish := -1, math.Inf(1), math.Inf(1)
		for _, proc := range st.Candidates(t, 1) {
			rep, err := st.ProbeReplica(t, 0, proc, sources)
			if err != nil {
				return nil, err
			}
			score := rep.Finish + oft[t][proc] - p.Exec[t][proc]
			if score < bestScore || (score == bestScore && rep.Finish < bestFinish) {
				bestProc, bestScore, bestFinish = proc, score, rep.Finish
			}
		}
		if _, err := st.PlaceReplica(t, 0, bestProc, sources); err != nil {
			return nil, err
		}
		scheduled++
		to, _ := cg.Succ(t)
		for _, s := range to {
			unsched[s]--
			if unsched[s] == 0 {
				free = append(free, dag.TaskID(s))
			}
		}
	}
	if scheduled != n {
		return nil, fmt.Errorf("hoft: %d of %d tasks never became free (cyclic graph?)", n-scheduled, n)
	}
	return st.Snapshot(), nil
}

// OFT computes the optimistic finish-time table OFT[task][proc] by a
// backward sweep over the DAG: exit tasks cost their execution time,
// and an inner task on p optimistically assumes each child lands on its
// best processor, paying the actual pairwise transfer cost only when
// that processor differs from p. Since bounded-candidate probing made
// the table part of the shared machinery, the computation lives in
// sched.OFT (over the compiled graph view); this wrapper remains as
// HOFT's historical front door.
func OFT(p *sched.Problem) ([][]float64, error) {
	return sched.OFT(p)
}
