package hoft

import (
	"math"
	"math/rand"
	"testing"

	"caft/internal/gen"
	"caft/internal/platform"
	"caft/internal/sched"
	"caft/internal/timeline"
)

func randomProblem(seed int64) (*sched.Problem, *rand.Rand) {
	rng := rand.New(rand.NewSource(seed))
	g := gen.RandomLayered(rng, gen.RandomParams{MinTasks: 40, MaxTasks: 50, MinDegree: 1, MaxDegree: 3, MinVolume: 50, MaxVolume: 150})
	plat := platform.NewRandom(rng, 6, 0.5, 1.0)
	exec := platform.GenExecForGranularity(rng, g, plat, 1.0, platform.DefaultHeterogeneity)
	return &sched.Problem{G: g, Plat: plat, Exec: exec, Model: sched.OnePort, Policy: timeline.Append}, rng
}

func TestHOFTSingleReplicaPerTask(t *testing.T) {
	p, rng := randomProblem(1)
	s, err := Schedule(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.ReplicaCount() != p.G.NumTasks() {
		t.Fatalf("replicas = %d, want %d (one per task)", s.ReplicaCount(), p.G.NumTasks())
	}
	if s.MessageCount() > p.G.NumEdges() {
		t.Fatalf("messages = %d > edges %d", s.MessageCount(), p.G.NumEdges())
	}
}

func TestHOFTCoLocatesCheapChains(t *testing.T) {
	g := gen.Chain(5, 500) // enormous messages: must stay on one processor
	plat := platform.New(4, 1)
	exec := platform.NewExecMatrix(5, 4)
	for ti := range exec {
		for k := range exec[ti] {
			exec[ti][k] = 2
		}
	}
	p := &sched.Problem{G: g, Plat: plat, Exec: exec, Model: sched.OnePort, Policy: timeline.Append}
	s, err := Schedule(p, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	proc := s.Reps[0][0].Proc
	for ti := range s.Reps {
		if s.Reps[ti][0].Proc != proc {
			t.Fatalf("chain split across processors despite huge comm cost")
		}
	}
	if s.ScheduledLatency() != 10 {
		t.Fatalf("latency = %v, want 10", s.ScheduledLatency())
	}
}

// TestOFTTable pins the table on a hand-checkable 2-task chain over two
// processors with asymmetric speeds: the exit task's OFT row is its
// execution row, and the root's entry on the slow processor must prefer
// shipping the edge to the fast one when the transfer is cheap.
func TestOFTTable(t *testing.T) {
	g := gen.Chain(2, 1) // one edge, volume 1
	plat := platform.New(2, 2)
	exec := platform.NewExecMatrix(2, 2)
	exec[0][0], exec[0][1] = 4, 4
	exec[1][0], exec[1][1] = 10, 1
	p := &sched.Problem{G: g, Plat: plat, Exec: exec, Model: sched.OnePort, Policy: timeline.Append}
	oft, err := OFT(p)
	if err != nil {
		t.Fatal(err)
	}
	// Exit task: OFT = its own execution time.
	if oft[1][0] != 10 || oft[1][1] != 1 {
		t.Fatalf("exit OFT = %v, want [10 1]", oft[1])
	}
	// Root on p0: local child costs 10, shipped child 2+1 = 3 → 4+3 = 7.
	// Root on p1: local child costs 1 → 4+1 = 5.
	if oft[0][0] != 7 || oft[0][1] != 5 {
		t.Fatalf("root OFT = %v, want [7 5]", oft[0])
	}
}

// HOFT's lookahead must never do worse than picking a random processor:
// sanity-check the makespan is finite and the schedule valid across
// several seeds, and deterministic for a fixed rng seed.
func TestHOFTDeterministicPerSeed(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		p, _ := randomProblem(seed)
		s1, err := Schedule(p, rand.New(rand.NewSource(42)))
		if err != nil {
			t.Fatal(err)
		}
		s2, err := Schedule(p, rand.New(rand.NewSource(42)))
		if err != nil {
			t.Fatal(err)
		}
		l1, l2 := s1.ScheduledLatency(), s2.ScheduledLatency()
		if l1 != l2 {
			t.Fatalf("seed %d: latency %v != %v across identical runs", seed, l1, l2)
		}
		if math.IsInf(l1, 0) || math.IsNaN(l1) || l1 <= 0 {
			t.Fatalf("seed %d: degenerate latency %v", seed, l1)
		}
	}
}

// The registry wrapper is a fault-free reference: eps != 0 must be
// rejected, eps == 0 must schedule.
func TestHOFTRegistryEntry(t *testing.T) {
	d, ok := sched.Lookup("hoft")
	if !ok {
		t.Fatal("hoft not registered")
	}
	if d.ID != 5 || d.Caps.AcceptsEps || !d.Caps.Deterministic {
		t.Fatalf("descriptor wrong: %+v", d)
	}
	p, rng := randomProblem(7)
	if _, err := d.New(p, 1, rng); err == nil {
		t.Fatal("eps=1 accepted by fault-free hoft")
	}
	s, err := d.New(p, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}
