package sched

import (
	"fmt"
	"math"
	"sort"

	"caft/internal/dag"
	"caft/internal/timeline"
)

// State is the mutable resource state a scheduler builds a schedule in:
// per-processor compute, send-port and receive-port timelines plus one
// timeline per directed network link. Schedulers simulate candidate
// placements with ProbeReplica and commit the best one with
// PlaceReplica.
//
// Timelines are stored in one flat slice: [0,m) compute, [m,2m) send
// ports, [2m,3m) receive ports, [3m,3m+L) links. Probes under the
// Append policy run on a lightweight overlay of per-timeline ready
// times (a timeline's whole state under Append is its ready time),
// which avoids cloning interval lists in the schedulers' inner loops;
// under the Insertion policy probes fall back to full clones.
type State struct {
	P     *Problem
	net   Network
	m     int
	tls   []timeline.Timeline
	Reps  [][]Replica
	Comms []Comm
	seq   int32

	// probe overlay (Append policy only)
	probe bool
	ready []float64
}

// NewState returns an empty state for the problem.
func NewState(p *Problem) *State {
	m := p.Plat.M
	net := p.Network()
	return &State{
		P:    p,
		net:  net,
		m:    m,
		tls:  make([]timeline.Timeline, 3*m+net.NumLinks()),
		Reps: make([][]Replica, p.G.NumTasks()),
	}
}

func (st *State) computeID(proc int) int { return proc }
func (st *State) sendID(proc int) int    { return st.m + proc }
func (st *State) recvID(proc int) int    { return 2*st.m + proc }
func (st *State) linkID(l int) int       { return 3*st.m + l }

// Clone deep-copies the state.
func (st *State) Clone() *State {
	c := &State{P: st.P, net: st.net, m: st.m, seq: st.seq}
	c.tls = make([]timeline.Timeline, len(st.tls))
	for i := range st.tls {
		c.tls[i] = *st.tls[i].Clone()
	}
	c.Reps = make([][]Replica, len(st.Reps))
	for t := range st.Reps {
		c.Reps[t] = append([]Replica(nil), st.Reps[t]...)
	}
	c.Comms = append([]Comm(nil), st.Comms...)
	if st.probe {
		c.probe = true
		c.ready = append([]float64(nil), st.ready...)
	}
	return c
}

// cloneForProbe returns a state suitable for what-if placement: cheap
// ready-time overlay under Append, full clone under Insertion. The
// returned state shares Reps/Comms storage read-only; placements on it
// are not recorded.
func (st *State) cloneForProbe() *State {
	if st.P.Policy == timeline.Append {
		ready := make([]float64, len(st.tls))
		if st.probe {
			copy(ready, st.ready)
		} else {
			for i := range st.tls {
				ready[i] = st.tls[i].Ready()
			}
		}
		return &State{
			P: st.P, net: st.net, m: st.m, tls: st.tls,
			Reps: st.Reps, seq: st.seq,
			probe: true, ready: ready,
		}
	}
	c := st.Clone()
	c.probe = true
	return c
}

// earliest returns the earliest start >= ready for a reservation of dur
// on timeline id.
func (st *State) earliest(id int, ready, dur float64) float64 {
	if st.probe && st.ready != nil {
		if r := st.ready[id]; r > ready {
			return r
		}
		return ready
	}
	return st.tls[id].EarliestSlot(ready, dur, st.P.Policy)
}

// reserve books [start, start+dur) on timeline id.
func (st *State) reserve(id int, start, dur float64, owner int32) {
	if st.probe && st.ready != nil {
		if end := start + dur; end > st.ready[id] {
			st.ready[id] = end
		}
		return
	}
	st.tls[id].MustAdd(start, dur, owner)
}

// Snapshot freezes the state into an immutable Schedule.
func (st *State) Snapshot() *Schedule {
	s := &Schedule{P: st.P, Reps: make([][]Replica, len(st.Reps))}
	for t := range st.Reps {
		s.Reps[t] = append([]Replica(nil), st.Reps[t]...)
	}
	s.Comms = append([]Comm(nil), st.Comms...)
	return s
}

// ProcsOf returns the set of processors hosting a replica of t.
func (st *State) ProcsOf(t dag.TaskID) map[int]bool {
	out := map[int]bool{}
	for _, r := range st.Reps[t] {
		out[r.Proc] = true
	}
	return out
}

// SourceSet names, for one predecessor edge of the task being placed,
// the replicas allowed to send the edge's data.
//
// By default a co-located source suppresses all other transfers of the
// set (the paper's §6 rule: if a replica of the predecessor lives on the
// target processor, no other copy needs to send there). AllSend disables
// the suppression: the co-located replica still provides a free intra
// transfer but every remote source sends as well. CAFT needs this when
// the co-located replica's survival depends on more than its own
// processor — it can die while the target processor lives, so remote
// backups must still be scheduled.
type SourceSet struct {
	Pred    dag.TaskID
	Volume  float64
	Sources []Replica
	AllSend bool
}

// FullSources returns one SourceSet per predecessor of t containing all
// currently placed replicas of that predecessor — the FTSA/FTBAR
// replication pattern in which every replica of a predecessor
// communicates with every replica of its successors.
func (st *State) FullSources(t dag.TaskID) []SourceSet {
	preds := st.P.G.Pred(t)
	out := make([]SourceSet, len(preds))
	for i, e := range preds {
		out[i] = SourceSet{Pred: e.From, Volume: e.Volume, Sources: st.Reps[e.From]}
	}
	return out
}

// commonSlot finds the earliest start >= ready at which an interval of
// length dur fits simultaneously in all the given timelines, under the
// state's reservation policy. The fixpoint loop terminates because each
// round either leaves the candidate unchanged (success) or strictly
// increases it past a busy interval.
func (st *State) commonSlot(ready, dur float64, ids []int) float64 {
	s := ready
	for {
		next := s
		for _, id := range ids {
			next = st.earliest(id, next, dur)
		}
		if next == s {
			return s
		}
		s = next
	}
}

// commResources returns the timeline IDs a transfer src->dst occupies.
func (st *State) commResources(src, dst int) []int {
	ids := []int{st.sendID(src), st.recvID(dst)}
	for _, l := range st.net.Route(src, dst) {
		ids = append(ids, st.linkID(l))
	}
	return ids
}

// ProbeComm returns the earliest (start, finish) of a transfer of volume
// units from src (data ready at readyAt) to dst, without reserving
// anything. Under the macro-dataflow model there is no contention and
// the transfer starts exactly at readyAt.
func (st *State) ProbeComm(src, dst int, readyAt, volume float64) (start, finish float64) {
	if src == dst {
		return readyAt, readyAt
	}
	dur := st.net.Dur(src, dst, volume)
	if st.P.Model == MacroDataflow {
		return readyAt, readyAt + dur
	}
	s := st.commonSlot(readyAt, dur, st.commResources(src, dst))
	return s, s + dur
}

// placeComm reserves the transfer and records it (recording is skipped
// in probe mode). The caller passes the source replica and destination
// task/copy for bookkeeping.
func (st *State) placeComm(srcRep Replica, to dag.TaskID, dstCopy, dst int, volume float64) Comm {
	st.seq++
	c := Comm{
		From: srcRep.Task, To: to,
		SrcCopy: srcRep.Copy, DstCopy: dstCopy,
		SrcProc: srcRep.Proc, DstProc: dst,
		Volume: volume,
		Seq:    st.seq,
	}
	switch {
	case srcRep.Proc == dst:
		c.Intra = true
		c.Start, c.Finish = srcRep.Finish, srcRep.Finish
	case st.P.Model == MacroDataflow:
		c.Dur = st.net.Dur(srcRep.Proc, dst, volume)
		c.Start, c.Finish = srcRep.Finish, srcRep.Finish+c.Dur
	default:
		c.Dur = st.net.Dur(srcRep.Proc, dst, volume)
		ids := st.commResources(srcRep.Proc, dst)
		c.Start = st.commonSlot(srcRep.Finish, c.Dur, ids)
		c.Finish = c.Start + c.Dur
		for _, id := range ids {
			st.reserve(id, c.Start, c.Dur, c.Seq)
		}
	}
	if !st.probe {
		st.Comms = append(st.Comms, c)
	}
	return c
}

// PlaceReplica schedules copy `copy` of task t on processor proc,
// placing the communications implied by the source sets, and returns the
// placed replica.
//
// Semantics per predecessor:
//   - if any source replica is co-located with proc, the input is an
//     intra-processor transfer available at that replica's finish time;
//     unless AllSend is set, no other source sends (paper §6 note);
//   - otherwise every replica in the source set sends; transfers are
//     placed in non-decreasing order of their tentative finish time
//     (the sort of eq. (6)) and the input is available at the earliest
//     arrival.
//
// The replica's start time is the earliest slot on the processor's
// compute timeline at or after all inputs are available (eq. (5)).
func (st *State) PlaceReplica(t dag.TaskID, copy, proc int, sources []SourceSet) (Replica, error) {
	if len(sources) != st.P.G.InDegree(t) {
		return Replica{}, fmt.Errorf("sched: task %d needs %d source sets, got %d", t, st.P.G.InDegree(t), len(sources))
	}
	for _, r := range st.Reps[t] {
		if r.Proc == proc {
			return Replica{}, fmt.Errorf("sched: task %d already has a replica on P%d", t, proc)
		}
	}
	type pendingComm struct {
		setIdx    int
		src       Replica
		tentative float64
	}
	var pending []pendingComm
	// arrival[i] is the earliest availability of predecessor i's data.
	arrival := make([]float64, len(sources))
	for i := range arrival {
		arrival[i] = math.Inf(1)
	}
	for i, set := range sources {
		if len(set.Sources) == 0 {
			return Replica{}, fmt.Errorf("sched: empty source set for predecessor %d of task %d", set.Pred, t)
		}
		// Co-located source? Use the earliest-finishing one, free.
		intra := -1
		for j, srcRep := range set.Sources {
			if srcRep.Proc == proc && (intra < 0 || srcRep.Finish < set.Sources[intra].Finish) {
				intra = j
			}
		}
		if intra >= 0 {
			srcRep := set.Sources[intra]
			st.placeComm(srcRep, t, copy, proc, set.Volume)
			arrival[i] = srcRep.Finish
			if !set.AllSend {
				continue
			}
		}
		for _, srcRep := range set.Sources {
			if srcRep.Proc == proc {
				continue // intra transfer already recorded
			}
			_, fin := st.ProbeComm(srcRep.Proc, proc, srcRep.Finish, set.Volume)
			pending = append(pending, pendingComm{setIdx: i, src: srcRep, tentative: fin})
		}
	}
	// Serialize transfers in non-decreasing tentative finish order
	// (deterministic tie break on order of appearance).
	sort.SliceStable(pending, func(i, j int) bool { return pending[i].tentative < pending[j].tentative })
	for _, pc := range pending {
		c := st.placeComm(pc.src, t, copy, proc, sources[pc.setIdx].Volume)
		if c.Finish < arrival[pc.setIdx] {
			arrival[pc.setIdx] = c.Finish
		}
	}
	ready := 0.0
	for i := range sources {
		if math.IsInf(arrival[i], 1) {
			return Replica{}, fmt.Errorf("sched: no input arrived for predecessor %d of task %d", sources[i].Pred, t)
		}
		if arrival[i] > ready {
			ready = arrival[i]
		}
	}
	exec := st.P.Exec[t][proc]
	start := st.earliest(st.computeID(proc), ready, exec)
	st.seq++
	rep := Replica{Task: t, Copy: copy, Proc: proc, Start: start, Finish: start + exec, Seq: st.seq}
	st.reserve(st.computeID(proc), start, exec, rep.Seq)
	if !st.probe {
		st.Reps[t] = append(st.Reps[t], rep)
	}
	return rep, nil
}

// ProbeReplica simulates PlaceReplica without mutating the state and
// returns the resulting replica.
func (st *State) ProbeReplica(t dag.TaskID, copy, proc int, sources []SourceSet) (Replica, error) {
	return st.cloneForProbe().PlaceReplica(t, copy, proc, sources)
}
