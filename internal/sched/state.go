package sched

import (
	"fmt"
	"math"

	"caft/internal/dag"
	"caft/internal/timeline"
)

// State is the mutable resource state a scheduler builds a schedule in:
// per-processor compute, send-port and receive-port timelines plus one
// timeline per directed network link. Schedulers simulate candidate
// placements with ProbeReplica and commit the best one with
// PlaceReplica.
//
// Timelines are stored in one flat slice: [0,m) compute, [m,2m) send
// ports, [2m,3m) receive ports, [3m,3m+L) links.
//
// Probes are transactional: ProbeReplica (and the multi-step Speculate)
// run the real placement code on the real state while a journal records
// every timeline reservation, replica/communication record and sequence
// number, and the journal is rolled back before returning — no state is
// cloned. Under the Append policy single-shot probes take an even
// cheaper special case: a timeline's whole state under Append is its
// ready time, so the probe runs on a flat overlay of 3m+L ready times.
// The pre-journal reference path, which deep-clones the state for every
// probe, is kept behind Problem.Probe = CloneProbe for equivalence
// testing; both paths produce bit-identical schedules.
//
//caft:confined
type State struct {
	P   *Problem
	net Network
	// clique is set when net is the dense Clique network, whose
	// Route allocates a fresh one-link slice per call; commResources
	// computes that link inline instead, keeping probes allocation-free.
	clique bool
	m      int
	tls    []timeline.Timeline
	Reps   [][]Replica
	Comms  []Comm
	seq    int32

	// Append-policy probe overlay: earliest/reserve consult ready[id]
	// instead of the (shared, untouched) timelines.
	overlay bool
	ready   []float64
	// noRecord marks throwaway probe states (the overlay and CloneProbe
	// clones): placements on them are not recorded in Reps/Comms.
	noRecord bool

	// Speculation journal (see Speculate): while spec > 0, reserve and
	// the Cancel* methods log every timeline mutation into tlog and
	// every Reps mutation into rlog; rollback undoes both in reverse
	// and truncates Comms. Each log replays its own mutations in exact
	// reverse order, which keeps interleaved additions and removals of
	// the same task's replicas (a reactive replica placed at one crash
	// and cancelled at a later one) consistent.
	spec int
	tlog []tlUndo
	rlog []repUndo

	// floor is the online-rescheduling time floor: while positive, no
	// new reservation may start before it (see SetFloor).
	floor float64

	// Reusable scratch, never shared between states. probeScratch is the
	// lazily built overlay state reused by Append-policy probes.
	probeScratch *State
	hosting      []bool
	arrival      []float64
	pending      []pendingComm
	commIDs      []int

	// Bounded-probe scratch (see Candidates): the lazily built OFT
	// table ranking processors per task, the candidate id/score pair
	// under construction, and the frozen all-processors list returned
	// when probing is unbounded.
	oft      [][]float64
	cands    []int
	candSc   []float64
	allProcs []int
}

// tlUndo is one journaled timeline mutation: a reservation to UndoAdd,
// or (removed) a cancelled reservation to re-Add. Re-adding restores
// the ready time exactly: at rollback the timeline is in its
// immediately-post-Remove state, whose rescanned ready time r satisfies
// max(r, start+dur) == the pre-Remove ready time.
type tlUndo struct {
	id      int
	start   float64
	prevMax float64
	dur     float64
	owner   int32
	removed bool
}

// repUndo is one journaled Reps mutation: an appended replica to
// truncate, or (removed) a cancelled replica to re-insert at idx.
type repUndo struct {
	task    dag.TaskID
	idx     int
	rep     Replica
	removed bool
}

// probeMark captures the journal position a rollback returns to.
type probeMark struct {
	tlog, rlog, comms int
	seq               int32
}

// NewState returns an empty state for the problem.
func NewState(p *Problem) *State {
	m := p.Plat.M
	net := p.Network()
	_, clique := net.(Clique)
	return &State{
		P:      p,
		net:    net,
		clique: clique,
		m:      m,
		tls:    make([]timeline.Timeline, 3*m+net.NumLinks()),
		Reps:   make([][]Replica, p.G.NumTasks()),
	}
}

//caft:zeroalloc
func (st *State) computeID(proc int) int { return proc }

//caft:zeroalloc
func (st *State) sendID(proc int) int { return st.m + proc }

//caft:zeroalloc
func (st *State) recvID(proc int) int { return 2*st.m + proc }

//caft:zeroalloc
func (st *State) linkID(l int) int { return 3*st.m + l }

// Clone deep-copies the state. Scratch buffers and the speculation
// journal are not carried over: the clone starts with a clean journal.
func (st *State) Clone() *State {
	c := &State{P: st.P, net: st.net, clique: st.clique, m: st.m, seq: st.seq, floor: st.floor}
	c.tls = make([]timeline.Timeline, len(st.tls))
	for i := range st.tls {
		c.tls[i] = *st.tls[i].Clone()
	}
	c.Reps = make([][]Replica, len(st.Reps))
	for t := range st.Reps {
		c.Reps[t] = append([]Replica(nil), st.Reps[t]...)
	}
	c.Comms = append([]Comm(nil), st.Comms...)
	if st.overlay {
		c.overlay, c.noRecord = true, st.noRecord
		c.ready = append([]float64(nil), st.ready...)
	}
	return c
}

// overlayForProbe returns the reusable Append-policy probe overlay: a
// state sharing this one's timelines and records read-only, with
// earliest/reserve redirected to a private copy of the ready times.
//
//caft:zeroalloc
func (st *State) overlayForProbe() *State {
	ps := st.probeScratch
	if ps == nil {
		ps = &State{overlay: true, noRecord: true, ready: make([]float64, len(st.tls))} //caft:alloc-ok probe overlay built once per State and reused across probes
		st.probeScratch = ps
	}
	ps.P, ps.net, ps.clique, ps.m, ps.tls, ps.Reps, ps.seq = st.P, st.net, st.clique, st.m, st.tls, st.Reps, st.seq
	ps.floor = st.floor
	if st.overlay {
		copy(ps.ready, st.ready)
	} else {
		for i := range st.tls {
			ps.ready[i] = st.tls[i].Ready()
		}
	}
	return ps
}

// begin opens a speculation scope and returns its rollback mark.
//
//caft:zeroalloc
func (st *State) begin() probeMark {
	st.spec++
	return probeMark{tlog: len(st.tlog), rlog: len(st.rlog), comms: len(st.Comms), seq: st.seq}
}

// rollback undoes everything journaled since mark: timeline mutations
// in reverse order (restoring each timeline's ready time), replica
// record mutations, communication records and the sequence counter.
//
//caft:zeroalloc
func (st *State) rollback(m probeMark) {
	for i := len(st.tlog) - 1; i >= m.tlog; i-- {
		u := st.tlog[i]
		if u.removed {
			st.tls[u.id].MustAdd(u.start, u.dur, u.owner)
		} else {
			st.tls[u.id].UndoAdd(u.start, u.owner, u.prevMax)
		}
	}
	st.tlog = st.tlog[:m.tlog]
	for i := len(st.rlog) - 1; i >= m.rlog; i-- {
		u := st.rlog[i]
		reps := st.Reps[u.task]
		if u.removed {
			reps = append(reps, Replica{})
			copy(reps[u.idx+1:], reps[u.idx:])
			reps[u.idx] = u.rep
			st.Reps[u.task] = reps
		} else {
			st.Reps[u.task] = reps[:len(reps)-1]
		}
	}
	st.rlog = st.rlog[:m.rlog]
	st.Comms = st.Comms[:m.comms]
	st.seq = m.seq
	st.spec--
}

// Speculate runs fn inside a speculative transaction on the real state:
// placements made by fn are fully visible to later placements within
// the same fn — including their Reps and Comms records, so multi-step
// what-ifs (place a duplicate, then place the replica that benefits)
// compose — and every effect is rolled back before Speculate returns,
// whether fn succeeds or fails. fn's error is returned verbatim.
// Speculations nest. It must not be called on probe-overlay states
// (which external callers never observe).
//
//caft:zeroalloc
func (st *State) Speculate(fn func() error) error {
	if st.overlay {
		panic("sched: Speculate on a probe overlay")
	}
	m := st.begin()
	err := fn() //caft:alloc-ok fn is the speculated body; its own allocations are accounted at their sites
	st.rollback(m)
	return err
}

// earliest returns the earliest start >= ready for a reservation of dur
// on timeline id, respecting the rescheduling floor.
//
//caft:zeroalloc
func (st *State) earliest(id int, ready, dur float64) float64 {
	if ready < st.floor {
		ready = st.floor
	}
	if st.overlay {
		if r := st.ready[id]; r > ready {
			return r
		}
		return ready
	}
	return st.tls[id].EarliestSlot(ready, dur, st.P.Policy)
}

// reserve books [start, start+dur) on timeline id, journaling the
// reservation when a speculation scope is open.
//
//caft:zeroalloc
func (st *State) reserve(id int, start, dur float64, owner int32) {
	if st.overlay {
		if end := start + dur; end > st.ready[id] {
			st.ready[id] = end
		}
		return
	}
	if st.spec > 0 {
		st.tlog = append(st.tlog, tlUndo{id: id, start: start, prevMax: st.tls[id].Ready(), owner: owner})
	}
	st.tls[id].MustAdd(start, dur, owner)
}

// Snapshot freezes the state into an immutable Schedule.
func (st *State) Snapshot() *Schedule {
	s := &Schedule{P: st.P, Reps: make([][]Replica, len(st.Reps))}
	for t := range st.Reps {
		s.Reps[t] = append([]Replica(nil), st.Reps[t]...)
	}
	s.Comms = append([]Comm(nil), st.Comms...)
	return s
}

// ProcsOf returns a bitset, indexed by processor, of the processors
// hosting a replica of t.
//
// Aliasing contract: the returned slice is scratch owned by the state —
// the next ProcsOf call on the same state overwrites it in place, so it
// must not be retained across calls (and a caller iterating it must not
// call ProcsOf, directly or through a helper, inside the loop). Both
// in-tree callers (core's bestOneToOne and bestFull) consume the bitset
// before any further ProcsOf call; callers that need a stable snapshot
// use ProcsOfCopy.
//
//caft:scratch safe=ProcsOfCopy
//caft:zeroalloc
func (st *State) ProcsOf(t dag.TaskID) []bool {
	if st.hosting == nil {
		st.hosting = make([]bool, st.m) //caft:alloc-ok hosting bitset allocated lazily on the first call, then reused
	}
	for i := range st.hosting {
		st.hosting[i] = false
	}
	for _, r := range st.Reps[t] {
		st.hosting[r.Proc] = true
	}
	return st.hosting
}

// ProcsOfCopy returns a freshly allocated copy of ProcsOf(t), safe to
// retain across further calls on the state.
func (st *State) ProcsOfCopy(t dag.TaskID) []bool {
	return append([]bool(nil), st.ProcsOf(t)...)
}

// Candidates returns the processors a scheduler should probe for the
// next replica of t, in ascending processor order. With
// Problem.ProbeWidth <= 0 (the default) that is every processor —
// exactly the 0..m-1 loop it replaces. With a positive width k, it is
// the max(k, min) processors with the smallest optimistic finish time
// OFT[t][p] (ties to the smaller processor ID): the cheapest lower
// bound on what any placement through p can achieve, so the dropped
// processors are the ones least likely to win a probe. min lets callers
// that must place several replicas on distinct processors (eps+1
// copies) keep at least that many candidates.
//
// The OFT table is built lazily on first bounded use and reused for the
// lifetime of the state; it assumes an acyclic graph (Problem.Validate
// has run) and panics otherwise.
//
// Aliasing contract: the returned slice is scratch owned by the state —
// the next Candidates call on the same state overwrites it in place, so
// it must be consumed (iterated, probed against) before any further
// Candidates call and never retained.
//
//caft:scratch
//caft:zeroalloc
func (st *State) Candidates(t dag.TaskID, min int) []int {
	k := st.P.ProbeWidth
	if k > 0 && k < min {
		k = min
	}
	if k <= 0 {
		if st.allProcs == nil {
			st.allProcs = make([]int, st.m) //caft:alloc-ok all-processors list built once per State, then reused
			for p := range st.allProcs {
				st.allProcs[p] = p
			}
		}
		return st.allProcs
	}
	if k > st.m {
		k = st.m
	}
	if st.oft == nil {
		oft, err := OFT(st.P) //caft:alloc-ok OFT ranking table built once per State on the first bounded probe, then reused
		if err != nil {
			panic(err)
		}
		st.oft = oft
		st.cands = make([]int, 0, st.m)      //caft:alloc-ok candidate scratch sized once per State, then reused
		st.candSc = make([]float64, 0, st.m) //caft:alloc-ok candidate scratch sized once per State, then reused
	}
	// Keep the k best (score, proc) pairs in ascending score order via
	// bounded insertion; scanning processors in ascending ID order makes
	// the tie break (first wins) deterministic.
	cands := st.cands[:0]
	scores := st.candSc[:0]
	row := st.oft[t]
	for proc := 0; proc < st.m; proc++ {
		sc := row[proc]
		if len(cands) == k {
			if sc >= scores[k-1] {
				continue
			}
			cands, scores = cands[:k-1], scores[:k-1]
		}
		i := len(cands)
		cands = append(cands, 0)
		scores = append(scores, 0)
		for ; i > 0 && scores[i-1] > sc; i-- {
			cands[i], scores[i] = cands[i-1], scores[i-1]
		}
		cands[i], scores[i] = proc, sc
	}
	// Probe order is ascending processor ID, matching the full loop, so
	// bounding the set never reorders probes (k = m is bit-identical to
	// unbounded).
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j] < cands[j-1]; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	st.cands, st.candSc = cands, scores
	return cands
}

// SourceSet names, for one predecessor edge of the task being placed,
// the replicas allowed to send the edge's data.
//
// By default a co-located source suppresses all other transfers of the
// set (the paper's §6 rule: if a replica of the predecessor lives on the
// target processor, no other copy needs to send there). AllSend disables
// the suppression: the co-located replica still provides a free intra
// transfer but every remote source sends as well. CAFT needs this when
// the co-located replica's survival depends on more than its own
// processor — it can die while the target processor lives, so remote
// backups must still be scheduled.
type SourceSet struct {
	Pred    dag.TaskID
	Volume  float64
	Sources []Replica
	AllSend bool
}

// FullSources returns one SourceSet per predecessor of t containing all
// currently placed replicas of that predecessor — the FTSA/FTBAR
// replication pattern in which every replica of a predecessor
// communicates with every replica of its successors.
func (st *State) FullSources(t dag.TaskID) []SourceSet {
	preds := st.P.G.Pred(t)
	out := make([]SourceSet, len(preds))
	for i, e := range preds {
		out[i] = SourceSet{Pred: e.From, Volume: e.Volume, Sources: st.Reps[e.From]}
	}
	return out
}

// commonSlot finds the earliest start >= ready at which an interval of
// length dur fits simultaneously in all the given timelines, under the
// state's reservation policy. The fixpoint loop terminates because each
// round either leaves the candidate unchanged (success) or strictly
// increases it past a busy interval.
//
//caft:zeroalloc
func (st *State) commonSlot(ready, dur float64, ids []int) float64 {
	s := ready
	for {
		next := s
		for _, id := range ids {
			next = st.earliest(id, next, dur)
		}
		if next == s {
			return s
		}
		s = next
	}
}

// commResources returns the timeline IDs a transfer src->dst occupies.
// The returned slice is scratch reused by the next call.
//
//caft:scratch
//caft:zeroalloc
func (st *State) commResources(src, dst int) []int {
	ids := append(st.commIDs[:0], st.sendID(src), st.recvID(dst))
	if st.clique {
		ids = append(ids, st.linkID(src*st.m+dst))
	} else {
		for _, l := range st.net.Route(src, dst) { //caft:alloc-ok topology interface call; in-tree networks return a cached route
			ids = append(ids, st.linkID(l))
		}
	}
	st.commIDs = ids
	return ids
}

// ProbeComm returns the earliest (start, finish) of a transfer of volume
// units from src (data ready at readyAt) to dst, without reserving
// anything. Under the macro-dataflow model there is no contention and
// the transfer starts exactly at readyAt.
//
//caft:zeroalloc
func (st *State) ProbeComm(src, dst int, readyAt, volume float64) (start, finish float64) {
	if src == dst {
		return readyAt, readyAt
	}
	dur := st.net.Dur(src, dst, volume) //caft:alloc-ok cost-model interface call; in-tree models are pure arithmetic
	if st.P.Model == MacroDataflow {
		return readyAt, readyAt + dur
	}
	s := st.commonSlot(readyAt, dur, st.commResources(src, dst))
	return s, s + dur
}

// placeComm reserves the transfer and records it (recording is skipped
// on probe-overlay and clone-probe states). The caller passes the source
// replica and destination task/copy for bookkeeping.
//
//caft:zeroalloc
func (st *State) placeComm(srcRep Replica, to dag.TaskID, dstCopy, dst int, volume float64) Comm {
	st.seq++
	c := Comm{
		From: srcRep.Task, To: to,
		SrcCopy: srcRep.Copy, DstCopy: dstCopy,
		SrcProc: srcRep.Proc, DstProc: dst,
		Volume: volume,
		Seq:    st.seq,
	}
	switch {
	case srcRep.Proc == dst:
		c.Intra = true
		c.Start, c.Finish = srcRep.Finish, srcRep.Finish
	case st.P.Model == MacroDataflow:
		c.Dur = st.net.Dur(srcRep.Proc, dst, volume) //caft:alloc-ok cost-model interface call; in-tree models are pure arithmetic
		c.Start, c.Finish = srcRep.Finish, srcRep.Finish+c.Dur
	default:
		c.Dur = st.net.Dur(srcRep.Proc, dst, volume) //caft:alloc-ok cost-model interface call; in-tree models are pure arithmetic
		ids := st.commResources(srcRep.Proc, dst)
		c.Start = st.commonSlot(srcRep.Finish, c.Dur, ids)
		c.Finish = c.Start + c.Dur
		for _, id := range ids {
			st.reserve(id, c.Start, c.Dur, c.Seq)
		}
	}
	if !st.noRecord {
		st.Comms = append(st.Comms, c)
	}
	return c
}

// pendingComm is one tentative remote transfer of a PlaceReplica call.
type pendingComm struct {
	setIdx    int
	src       Replica
	tentative float64
}

// PlaceReplica schedules copy `copy` of task t on processor proc,
// placing the communications implied by the source sets, and returns the
// placed replica.
//
// Semantics per predecessor:
//   - if any source replica is co-located with proc, the input is an
//     intra-processor transfer available at that replica's finish time;
//     unless AllSend is set, no other source sends (paper §6 note);
//   - otherwise every replica in the source set sends; transfers are
//     placed in non-decreasing order of their tentative finish time
//     (the sort of eq. (6)) and the input is available at the earliest
//     arrival.
//
// The replica's start time is the earliest slot on the processor's
// compute timeline at or after all inputs are available (eq. (5)).
//
//caft:zeroalloc
func (st *State) PlaceReplica(t dag.TaskID, copy, proc int, sources []SourceSet) (Replica, error) {
	if len(sources) != st.P.G.InDegree(t) {
		return Replica{}, fmt.Errorf("sched: task %d needs %d source sets, got %d", t, st.P.G.InDegree(t), len(sources)) //caft:alloc-ok rejection path; the accept path allocates nothing
	}
	for _, r := range st.Reps[t] {
		if r.Proc == proc {
			return Replica{}, fmt.Errorf("sched: task %d already has a replica on P%d", t, proc) //caft:alloc-ok rejection path; the accept path allocates nothing
		}
	}
	pending := st.pending[:0]
	// arrival[i] is the earliest availability of predecessor i's data.
	arrival := st.arrival[:0]
	for range sources {
		arrival = append(arrival, math.Inf(1))
	}
	for i, set := range sources {
		if len(set.Sources) == 0 {
			st.pending, st.arrival = pending, arrival
			return Replica{}, fmt.Errorf("sched: empty source set for predecessor %d of task %d", set.Pred, t) //caft:alloc-ok rejection path; the accept path allocates nothing
		}
		// Co-located source? Use the earliest-finishing one, free.
		intra := -1
		for j, srcRep := range set.Sources {
			if srcRep.Proc == proc && (intra < 0 || srcRep.Finish < set.Sources[intra].Finish) {
				intra = j
			}
		}
		if intra >= 0 {
			srcRep := set.Sources[intra]
			st.placeComm(srcRep, t, copy, proc, set.Volume)
			arrival[i] = srcRep.Finish
			if !set.AllSend {
				continue
			}
		}
		for _, srcRep := range set.Sources {
			if srcRep.Proc == proc {
				continue // intra transfer already recorded
			}
			_, fin := st.ProbeComm(srcRep.Proc, proc, srcRep.Finish, set.Volume)
			pending = append(pending, pendingComm{setIdx: i, src: srcRep, tentative: fin})
		}
	}
	// Serialize transfers in non-decreasing tentative finish order. The
	// insertion sort is stable (deterministic tie break on order of
	// appearance, as before) and allocation-free.
	for i := 1; i < len(pending); i++ {
		for j := i; j > 0 && pending[j].tentative < pending[j-1].tentative; j-- {
			pending[j], pending[j-1] = pending[j-1], pending[j]
		}
	}
	for _, pc := range pending {
		c := st.placeComm(pc.src, t, copy, proc, sources[pc.setIdx].Volume)
		if c.Finish < arrival[pc.setIdx] {
			arrival[pc.setIdx] = c.Finish
		}
	}
	st.pending = pending
	ready := 0.0
	for i := range sources {
		if math.IsInf(arrival[i], 1) {
			st.arrival = arrival
			return Replica{}, fmt.Errorf("sched: no input arrived for predecessor %d of task %d", sources[i].Pred, t) //caft:alloc-ok rejection path; the accept path allocates nothing
		}
		if arrival[i] > ready {
			ready = arrival[i]
		}
	}
	st.arrival = arrival
	exec := st.P.Exec[t][proc]
	start := st.earliest(st.computeID(proc), ready, exec)
	st.seq++
	rep := Replica{Task: t, Copy: copy, Proc: proc, Start: start, Finish: start + exec, Seq: st.seq}
	st.reserve(st.computeID(proc), start, exec, rep.Seq)
	if !st.noRecord {
		st.Reps[t] = append(st.Reps[t], rep)
		if st.spec > 0 {
			st.rlog = append(st.rlog, repUndo{task: t})
		}
	}
	return rep, nil
}

// ProbeReplica simulates PlaceReplica without any lasting mutation of
// the state and returns the resulting replica. Under the default
// SpeculativeProbe mode the placement runs journaled on the real state
// and is rolled back (with the Append-policy ready-time overlay as the
// cheap special case); under CloneProbe it runs on a deep clone — the
// reference implementation the speculative path is tested against.
//
//caft:zeroalloc
func (st *State) ProbeReplica(t dag.TaskID, copy, proc int, sources []SourceSet) (Replica, error) {
	if st.P.Probe == CloneProbe && !st.overlay {
		c := st.Clone() //caft:alloc-ok CloneProbe reference path, kept for equivalence testing; the journaled probe allocates nothing
		c.noRecord = true
		return c.PlaceReplica(t, copy, proc, sources)
	}
	if st.P.Policy == timeline.Append || st.overlay {
		return st.overlayForProbe().PlaceReplica(t, copy, proc, sources)
	}
	m := st.begin()
	rep, err := st.PlaceReplica(t, copy, proc, sources)
	st.rollback(m)
	return rep, err
}
