package sched

import (
	"math/rand"
	"testing"

	"caft/internal/dag"
	"caft/internal/gen"
	"caft/internal/platform"
	"caft/internal/timeline"
)

// TestCandidatesUnbounded pins the ProbeWidth = 0 contract: the
// candidate set is exactly 0..m-1 in ascending order, so consumers
// iterating it are bit-identical to the historical full loop. Widths of
// m or more must agree.
func TestCandidatesUnbounded(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := randomValidatorProblem(rng, 20, 6)
	for _, width := range []int{0, 6, 7, 100} {
		p.ProbeWidth = width
		st := NewState(p)
		for task := 0; task < p.G.NumTasks(); task++ {
			got := st.Candidates(dag.TaskID(task), 1)
			if len(got) != 6 {
				t.Fatalf("width %d task %d: %d candidates, want 6", width, task, len(got))
			}
			for i, proc := range got {
				if proc != i {
					t.Fatalf("width %d task %d: candidates %v, want 0..5", width, task, got)
				}
			}
		}
	}
}

// TestCandidatesBounded checks the bounded set: size max(k, min)
// clamped to m, ascending processor order, and exactly the k processors
// with the smallest OFT lower bound (ties to the smaller ID).
func TestCandidatesBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := randomValidatorProblem(rng, 25, 8)
	oft, err := OFT(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2, 3, 7} {
		p.ProbeWidth = k
		st := NewState(p)
		for task := 0; task < p.G.NumTasks(); task++ {
			got := st.Candidates(dag.TaskID(task), 1)
			if len(got) != k {
				t.Fatalf("k=%d task %d: %d candidates", k, task, len(got))
			}
			for i := 1; i < len(got); i++ {
				if got[i] <= got[i-1] {
					t.Fatalf("k=%d task %d: candidates %v not strictly ascending", k, task, got)
				}
			}
			// Reference: selection by (OFT, proc) over the full row.
			type pair struct {
				proc int
				sc   float64
			}
			ref := make([]pair, 8)
			for proc := range ref {
				ref[proc] = pair{proc, oft[task][proc]}
			}
			for i := 1; i < len(ref); i++ {
				for j := i; j > 0 && (ref[j].sc < ref[j-1].sc || (ref[j].sc == ref[j-1].sc && ref[j].proc < ref[j-1].proc)); j-- {
					ref[j], ref[j-1] = ref[j-1], ref[j]
				}
			}
			want := map[int]bool{}
			for _, pr := range ref[:k] {
				want[pr.proc] = true
			}
			for _, proc := range got {
				if !want[proc] {
					t.Fatalf("k=%d task %d: candidate P%d not among the %d best OFT procs (%v)", k, task, proc, k, got)
				}
			}
		}
	}
}

// TestCandidatesMinFloor checks that min widens an over-narrow
// ProbeWidth: replica placement needs at least eps+1 distinct
// processors no matter how small the width.
func TestCandidatesMinFloor(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := randomValidatorProblem(rng, 15, 5)
	p.ProbeWidth = 1
	st := NewState(p)
	if got := st.Candidates(0, 3); len(got) != 3 {
		t.Fatalf("Candidates(min=3) returned %d procs with ProbeWidth=1", len(got))
	}
	if got := st.Candidates(0, 9); len(got) != 5 {
		t.Fatalf("Candidates(min=9) returned %d procs, want all 5", len(got))
	}
}

// TestCandidatesAllocPin pins the bounded-probe steady state: after the
// lazy OFT build, Candidates allocates nothing.
func TestCandidatesAllocPin(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	p := randomValidatorProblem(rng, 30, 6)
	for _, width := range []int{0, 2} {
		p.ProbeWidth = width
		st := NewState(p)
		st.Candidates(0, 1)
		allocs := testing.AllocsPerRun(100, func() {
			for task := 0; task < p.G.NumTasks(); task++ {
				st.Candidates(dag.TaskID(task), 2)
			}
		})
		if allocs != 0 {
			t.Fatalf("width %d: steady-state Candidates allocates %.1f/op, want 0", width, allocs)
		}
	}
}

// BenchmarkCandidates measures one bounded candidate selection over a
// warmed-up state (the per-task inner loop of every bounded scheduler).
func BenchmarkCandidates(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	params := gen.RandomParams{MinTasks: 1000, MaxTasks: 1000, MinDegree: 1, MaxDegree: 3, MinVolume: 50, MaxVolume: 150}
	g := gen.RandomLayered(rng, params)
	plat := platform.NewRandom(rng, 16, 0.5, 1.0)
	exec := platform.GenExecForGranularity(rng, g, plat, 1.0, platform.DefaultHeterogeneity)
	p := &Problem{G: g, Plat: plat, Exec: exec, Model: OnePort, Policy: timeline.Append, ProbeWidth: 4}
	st := NewState(p)
	st.Candidates(0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Candidates(dag.TaskID(i%1000), 2)
	}
}
