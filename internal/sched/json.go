package sched

import (
	"encoding/json"
	"fmt"
	"io"

	"caft/internal/dag"
	"caft/internal/platform"
	"caft/internal/timeline"
)

// jsonSchedule is the wire format of a Schedule together with its
// problem. Sparse networks (Problem.Net) are not serialized: a loaded
// schedule is always interpreted over the clique network, which is the
// paper's platform model.
type jsonSchedule struct {
	Graph    *dag.DAG    `json:"graph"`
	Delay    [][]float64 `json:"delay"`
	Exec     [][]float64 `json:"exec"`
	Model    string      `json:"model"`
	Policy   string      `json:"policy"`
	Replicas []Replica   `json:"replicas"`
	Comms    []Comm      `json:"comms"`
}

// WriteJSON encodes the schedule (including its problem) as JSON.
func (s *Schedule) WriteJSON(w io.Writer) error {
	if s.P.Net != nil {
		return fmt.Errorf("sched: schedules over sparse networks cannot be serialized")
	}
	js := jsonSchedule{
		Graph:  s.P.G,
		Delay:  s.P.Plat.Delay,
		Exec:   s.P.Exec,
		Model:  s.P.Model.String(),
		Policy: s.P.Policy.String(),
	}
	for t := range s.Reps {
		js.Replicas = append(js.Replicas, s.Reps[t]...)
	}
	js.Comms = s.Comms
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(js)
}

// ReadJSON decodes a schedule written by WriteJSON and validates it.
func ReadJSON(r io.Reader) (*Schedule, error) {
	var js jsonSchedule
	if err := json.NewDecoder(r).Decode(&js); err != nil {
		return nil, err
	}
	if js.Graph == nil {
		return nil, fmt.Errorf("sched: schedule JSON missing graph")
	}
	m := len(js.Delay)
	p := &Problem{
		G:    js.Graph,
		Plat: &platform.Platform{M: m, Delay: js.Delay},
		Exec: js.Exec,
	}
	switch js.Model {
	case OnePort.String(), "":
		p.Model = OnePort
	case MacroDataflow.String():
		p.Model = MacroDataflow
	default:
		return nil, fmt.Errorf("sched: unknown model %q", js.Model)
	}
	switch js.Policy {
	case timeline.Append.String(), "":
		p.Policy = timeline.Append
	case timeline.Insertion.String():
		p.Policy = timeline.Insertion
	default:
		return nil, fmt.Errorf("sched: unknown policy %q", js.Policy)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s := &Schedule{P: p, Reps: make([][]Replica, js.Graph.NumTasks()), Comms: js.Comms}
	for _, rep := range js.Replicas {
		if rep.Task < 0 || int(rep.Task) >= js.Graph.NumTasks() {
			return nil, fmt.Errorf("sched: replica of unknown task %d", rep.Task)
		}
		if rep.Proc < 0 || rep.Proc >= m {
			return nil, fmt.Errorf("sched: replica on unknown processor %d", rep.Proc)
		}
		s.Reps[rep.Task] = append(s.Reps[rep.Task], rep)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("sched: loaded schedule invalid: %w", err)
	}
	return s, nil
}
