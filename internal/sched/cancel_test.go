package sched

import (
	"reflect"
	"testing"

	"caft/internal/dag"
	"caft/internal/gen"
	"caft/internal/timeline"
)

// buildSmallState places a fork graph (0 -> 1, 0 -> 2) with replicated
// tasks across 3 processors and returns the state plus its schedule.
func buildSmallState(t *testing.T, pol timeline.Policy) *State {
	t.Helper()
	g := dag.New(3)
	g.AddEdge(0, 1, 4)
	g.AddEdge(0, 2, 4)
	p := prob(g, 3, 2)
	p.Policy = pol
	st := NewState(p)
	if _, err := st.PlaceReplica(0, 0, 0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := st.PlaceReplica(0, 1, 1, nil); err != nil {
		t.Fatal(err)
	}
	for task := dag.TaskID(1); task <= 2; task++ {
		for copy, proc := range []int{1, 2} {
			if _, err := st.PlaceReplica(task, copy, proc, st.FullSources(task)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return st
}

// fingerprint captures everything rollback must restore: records,
// sequence counter and every timeline's interval list and ready time.
type statePrint struct {
	reps  [][]Replica
	comms []Comm
	seq   int32
	ivs   [][]timeline.Interval
	ready []float64
}

func printState(st *State) statePrint {
	fp := statePrint{seq: st.seq}
	for t := range st.Reps {
		fp.reps = append(fp.reps, append([]Replica(nil), st.Reps[t]...))
	}
	fp.comms = append([]Comm(nil), st.Comms...)
	for i := 0; i < st.NumTimelines(); i++ {
		tl := st.Timeline(i)
		fp.ivs = append(fp.ivs, append([]timeline.Interval(nil), tl.Intervals()...))
		fp.ready = append(fp.ready, tl.Ready())
	}
	return fp
}

// TestCancelReplicaRemovesRecordAndReservation cancels a replica
// outside any speculation and checks both the record and the compute
// reservation are gone, then re-places onto the freed slot.
func TestCancelReplicaRemovesRecordAndReservation(t *testing.T) {
	st := buildSmallState(t, timeline.Append)
	victim := st.Reps[1][0]
	if err := st.CancelReplica(victim); err != nil {
		t.Fatal(err)
	}
	if len(st.Reps[1]) != 1 || st.Reps[1][0].Copy == victim.Copy {
		t.Fatalf("record not removed: %+v", st.Reps[1])
	}
	for _, iv := range st.Timeline(victim.Proc).Intervals() {
		if iv.Owner == victim.Seq {
			t.Fatalf("compute reservation of seq %d still present", victim.Seq)
		}
	}
	if err := st.CancelReplica(victim); err == nil {
		t.Fatal("double cancel accepted")
	}
}

// TestCancelCommFreesPorts cancels an inter-processor communication and
// checks its send/recv/link reservations vanish while the record stays.
func TestCancelCommFreesPorts(t *testing.T) {
	st := buildSmallState(t, timeline.Append)
	var victim Comm
	for _, c := range st.Comms {
		if !c.Intra {
			victim = c
			break
		}
	}
	if victim.Seq == 0 {
		t.Fatal("no inter-processor comm placed")
	}
	nComms := len(st.Comms)
	if err := st.CancelComm(victim); err != nil {
		t.Fatal(err)
	}
	if len(st.Comms) != nComms {
		t.Fatal("CancelComm must not drop the record")
	}
	for i := 0; i < st.NumTimelines(); i++ {
		for _, iv := range st.Timeline(i).Intervals() {
			if iv.Owner == victim.Seq {
				t.Fatalf("reservation of comm seq %d still on timeline %d", victim.Seq, i)
			}
		}
	}
	if err := st.CancelComm(victim); err == nil {
		t.Fatal("double cancel accepted")
	}
}

// TestSpeculateRollsBackCancels is the journal pin of the cancel
// machinery: a speculation that cancels replicas and comms, places new
// work into the freed slots, and cancels some of the newly placed work
// again must roll back to a bit-identical state — including the
// interleaving case (place then cancel the same task's replicas) that a
// truncate-only record log cannot restore.
func TestSpeculateRollsBackCancels(t *testing.T) {
	for _, pol := range []timeline.Policy{timeline.Append, timeline.Insertion} {
		st := buildSmallState(t, pol)
		before := printState(st)
		err := st.Speculate(func() error {
			// Cancel one replica of each successor and one comm.
			if err := st.CancelReplica(st.Reps[1][0]); err != nil {
				return err
			}
			if err := st.CancelReplica(st.Reps[2][1]); err != nil {
				return err
			}
			for _, c := range st.Comms {
				if !c.Intra {
					if err := st.CancelComm(c); err != nil {
						return err
					}
					break
				}
			}
			// Re-place task 1 on the freed processor, then cancel the new
			// replica again (reactive replica dying at a later crash).
			rep, err := st.PlaceReplica(1, 2, 0, st.FullSources(1))
			if err != nil {
				return err
			}
			if _, err := st.PlaceReplica(2, 2, 0, st.FullSources(2)); err != nil {
				return err
			}
			return st.CancelReplica(rep)
		})
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		after := printState(st)
		if !reflect.DeepEqual(before, after) {
			t.Fatalf("%v: state not restored after speculative cancel/replace:\nbefore %+v\nafter  %+v", pol, before, after)
		}
		for i := 0; i < st.NumTimelines(); i++ {
			if err := st.Timeline(i).Validate(); err != nil {
				t.Fatalf("%v: timeline %d after rollback: %v", pol, i, err)
			}
		}
	}
}

// TestSetFloorClampsPlacements checks that with a floor set, probes and
// placements never start before it, under both policies — including an
// Insertion-policy gap that predates the floor.
func TestSetFloorClampsPlacements(t *testing.T) {
	for _, pol := range []timeline.Policy{timeline.Append, timeline.Insertion} {
		g := gen.Chain(2, 1)
		p := prob(g, 2, 2)
		p.Policy = pol
		st := NewState(p)
		if _, err := st.PlaceReplica(0, 0, 0, nil); err != nil {
			t.Fatal(err)
		}
		st.SetFloor(50)
		rep, err := st.ProbeReplica(1, 0, 1, st.FullSources(1))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Start < 50 {
			t.Fatalf("%v: probe start %v below floor", pol, rep.Start)
		}
		rep, err = st.PlaceReplica(1, 0, 1, st.FullSources(1))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Start < 50 {
			t.Fatalf("%v: placed start %v below floor", pol, rep.Start)
		}
		// The comm feeding the placement must respect the floor too.
		for _, c := range st.Comms {
			if !c.Intra && c.Start < 50 {
				t.Fatalf("%v: comm start %v below floor", pol, c.Start)
			}
		}
		st.SetFloor(0)
	}
}

// TestStateOfRebuildsSchedule rebuilds a state from a snapshot and
// checks records, sequence counter and timeline contents match the
// original construction.
func TestStateOfRebuildsSchedule(t *testing.T) {
	for _, pol := range []timeline.Policy{timeline.Append, timeline.Insertion} {
		st := buildSmallState(t, pol)
		s := st.Snapshot()
		got, err := StateOf(s)
		if err != nil {
			t.Fatal(err)
		}
		want, have := printState(st), printState(got)
		if !reflect.DeepEqual(want, have) {
			t.Fatalf("%v: rebuilt state differs:\nwant %+v\ngot  %+v", pol, want, have)
		}
		// The rebuilt state schedules identically: place one more replica
		// on both and compare.
		a, err := st.PlaceReplica(1, 2, 0, st.FullSources(1))
		if err != nil {
			t.Fatal(err)
		}
		b, err := got.PlaceReplica(1, 2, 0, got.FullSources(1))
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("%v: placement diverged: %+v vs %+v", pol, a, b)
		}
	}
}

// TestStateOfRejectsOverlap rejects a corrupted schedule whose compute
// reservations overlap.
func TestStateOfRejectsOverlap(t *testing.T) {
	g := gen.Chain(2, 1)
	p := prob(g, 1, 2)
	s := &Schedule{P: p, Reps: [][]Replica{
		{{Task: 0, Copy: 0, Proc: 0, Start: 0, Finish: 2, Seq: 1}},
		{{Task: 1, Copy: 0, Proc: 0, Start: 1, Finish: 3, Seq: 2}},
	}}
	if _, err := StateOf(s); err == nil {
		t.Fatal("overlapping schedule accepted")
	}
}
