package heft

import (
	"math/rand"
	"testing"

	"caft/internal/gen"
	"caft/internal/platform"
	"caft/internal/sched"
	"caft/internal/timeline"
)

func TestHEFTSingleReplicaPerTask(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := gen.RandomLayered(rng, gen.RandomParams{MinTasks: 40, MaxTasks: 50, MinDegree: 1, MaxDegree: 3, MinVolume: 50, MaxVolume: 150})
	plat := platform.NewRandom(rng, 6, 0.5, 1.0)
	exec := platform.GenExecForGranularity(rng, g, plat, 1.0, platform.DefaultHeterogeneity)
	p := &sched.Problem{G: g, Plat: plat, Exec: exec, Model: sched.OnePort, Policy: timeline.Append}
	s, err := Schedule(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.ReplicaCount() != g.NumTasks() {
		t.Fatalf("replicas = %d, want %d (one per task)", s.ReplicaCount(), g.NumTasks())
	}
	// No replication: every edge carries at most one message.
	if s.MessageCount() > g.NumEdges() {
		t.Fatalf("messages = %d > edges %d", s.MessageCount(), g.NumEdges())
	}
}

func TestHEFTCoLocatesCheapChains(t *testing.T) {
	g := gen.Chain(5, 500) // enormous messages: must stay on one processor
	plat := platform.New(4, 1)
	exec := platform.NewExecMatrix(5, 4)
	for ti := range exec {
		for k := range exec[ti] {
			exec[ti][k] = 2
		}
	}
	p := &sched.Problem{G: g, Plat: plat, Exec: exec, Model: sched.OnePort, Policy: timeline.Append}
	s, err := Schedule(p, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	proc := s.Reps[0][0].Proc
	for ti := range s.Reps {
		if s.Reps[ti][0].Proc != proc {
			t.Fatalf("chain split across processors despite huge comm cost")
		}
	}
	if s.ScheduledLatency() != 10 {
		t.Fatalf("latency = %v, want 10", s.ScheduledLatency())
	}
}
