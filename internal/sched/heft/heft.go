// Package heft exposes the fault-free reference scheduler: HEFT
// (Topcuoglu, Hariri, Wu), the algorithm the paper's fault-free CAFT
// reduces to ("the fault-free version of CAFT reduces to an
// implementation of HEFT, the reference heuristic in the literature").
//
// It is FTSA with ε = 0: one replica per task on the processor giving
// the earliest finish time, under the same communication model and
// priority function as the fault-tolerant schedulers. Its latency is the
// CAFT* denominator of the paper's overhead metric.
//
//caft:deterministic
package heft

import (
	"fmt"
	"math/rand"

	"caft/internal/sched"
	"caft/internal/sched/ftsa"
)

func init() {
	sched.Register(sched.Descriptor{
		Name: "heft", ID: 0,
		Caps: sched.Caps{Deterministic: true, Append: true, Insertion: true},
		New: func(p *sched.Problem, eps int, rng *rand.Rand) (*sched.Schedule, error) {
			if eps != 0 {
				return nil, fmt.Errorf("heft: fault-free reference takes eps 0, got %d", eps)
			}
			return Schedule(p, rng)
		},
	})
}

// Schedule runs one-port (or macro-dataflow, per p.Model) HEFT.
func Schedule(p *sched.Problem, rng *rand.Rand) (*sched.Schedule, error) {
	return ftsa.Schedule(p, 0, rng)
}
