// Package heft exposes the fault-free reference scheduler: HEFT
// (Topcuoglu, Hariri, Wu), the algorithm the paper's fault-free CAFT
// reduces to ("the fault-free version of CAFT reduces to an
// implementation of HEFT, the reference heuristic in the literature").
//
// It is FTSA with ε = 0: one replica per task on the processor giving
// the earliest finish time, under the same communication model and
// priority function as the fault-tolerant schedulers. Its latency is the
// CAFT* denominator of the paper's overhead metric.
//
//caft:deterministic
package heft

import (
	"math/rand"

	"caft/internal/sched"
	"caft/internal/sched/ftsa"
)

// Schedule runs one-port (or macro-dataflow, per p.Model) HEFT.
func Schedule(p *sched.Problem, rng *rand.Rand) (*sched.Schedule, error) {
	return ftsa.Schedule(p, 0, rng)
}
