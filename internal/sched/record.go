package sched

import (
	"fmt"
	"math"
	"sort"

	"caft/internal/dag"
	"caft/internal/timeline"
)

// Replica is one scheduled copy of a task. Copy indexes the ε+1 replicas
// of the task (0-based). Start/Finish are the times the scheduler
// committed to; the runtime replay in package sim may move them when
// processors crash.
type Replica struct {
	Task   dag.TaskID
	Copy   int
	Proc   int
	Start  float64
	Finish float64
	Seq    int32
}

// Comm is a scheduled data transfer along a precedence edge From->To,
// from replica (From, SrcCopy) on SrcProc to replica (To, DstCopy) on
// DstProc. Intra communications (co-located replicas) have zero duration
// and occupy no resources. Start/Finish cover the occupation of the send
// port, the link(s) and the receive port (unified interval model, see
// DESIGN.md S1).
type Comm struct {
	From, To         dag.TaskID
	SrcCopy, DstCopy int
	SrcProc, DstProc int
	Volume           float64
	Dur              float64
	Start, Finish    float64
	Intra            bool
	Seq              int32
}

// Schedule is the immutable result of a scheduling algorithm: the placed
// replicas of every task and every scheduled communication.
type Schedule struct {
	P     *Problem
	Reps  [][]Replica // indexed by task
	Comms []Comm
}

// Eps is the comparison tolerance for floating-point schedule times.
const Eps = 1e-6

// ScheduledLatency returns the latency the scheduler committed to with
// zero crashes: the latest time at which at least one replica of each
// task has been computed (paper §4.2) — max over tasks of the minimum
// replica finish time.
func (s *Schedule) ScheduledLatency() float64 {
	lat := 0.0
	for t := range s.Reps {
		if len(s.Reps[t]) == 0 {
			return math.Inf(1)
		}
		min := math.Inf(1)
		for _, r := range s.Reps[t] {
			if r.Finish < min {
				min = r.Finish
			}
		}
		if min > lat {
			lat = min
		}
	}
	return lat
}

// MakespanAll returns the completion time of the very last replica.
func (s *Schedule) MakespanAll() float64 {
	m := 0.0
	for t := range s.Reps {
		for _, r := range s.Reps[t] {
			if r.Finish > m {
				m = r.Finish
			}
		}
	}
	return m
}

// MessageCount returns the number of inter-processor messages in the
// schedule (intra-processor transfers are free and not counted). This is
// the quantity bounded by e(ε+1) for CAFT on outforests (Prop. 5.1) and
// by e(ε+1)² for FTSA/FTBAR.
func (s *Schedule) MessageCount() int {
	n := 0
	for _, c := range s.Comms {
		if !c.Intra {
			n++
		}
	}
	return n
}

// ReplicaCount returns the total number of placed replicas.
func (s *Schedule) ReplicaCount() int {
	n := 0
	for t := range s.Reps {
		n += len(s.Reps[t])
	}
	return n
}

// FindReplica returns the replica (t, copy) or nil.
func (s *Schedule) FindReplica(t dag.TaskID, copy int) *Replica {
	for i := range s.Reps[t] {
		if s.Reps[t][i].Copy == copy {
			return &s.Reps[t][i]
		}
	}
	return nil
}

// Validate checks that the schedule is well formed and obeys the
// communication model:
//
//   - every task has at least one replica; replicas of a task occupy
//     pairwise distinct processors (space exclusion);
//   - replica durations match E(t,P);
//   - every communication starts at or after its source replica's finish
//     and matches the placement of its endpoint replicas;
//   - every replica has, for each predecessor, at least one input
//     (communication or intra transfer) arriving by its start time;
//   - under the one-port model, the send-port, receive-port and link
//     occupations of all communications are pairwise non-overlapping
//     (constraints (1), (2), (3) of the paper) and task executions do
//     not overlap per processor.
func (s *Schedule) Validate() error {
	p := s.P
	if len(s.Reps) != p.G.NumTasks() {
		return fmt.Errorf("schedule: %d tasks recorded, want %d", len(s.Reps), p.G.NumTasks())
	}
	for t := range s.Reps {
		if len(s.Reps[t]) == 0 {
			return fmt.Errorf("schedule: task %d has no replica", t)
		}
		seen := map[int]bool{}
		for _, r := range s.Reps[t] {
			if r.Task != dag.TaskID(t) {
				return fmt.Errorf("schedule: replica of task %d filed under %d", r.Task, t)
			}
			if seen[r.Proc] {
				return fmt.Errorf("schedule: task %d has two replicas on P%d", t, r.Proc)
			}
			seen[r.Proc] = true
			want := p.Exec[t][r.Proc]
			if math.Abs((r.Finish-r.Start)-want) > Eps {
				return fmt.Errorf("schedule: replica (%d,%d) duration %v, want %v", t, r.Copy, r.Finish-r.Start, want)
			}
		}
	}
	// Index comms per destination replica.
	type repKey struct {
		t    dag.TaskID
		copy int
	}
	inputs := map[repKey]map[dag.TaskID]float64{} // earliest arrival per pred
	for i, c := range s.Comms {
		src := s.FindReplica(c.From, c.SrcCopy)
		dst := s.FindReplica(c.To, c.DstCopy)
		if src == nil || dst == nil {
			return fmt.Errorf("schedule: comm %d references missing replica", i)
		}
		if src.Proc != c.SrcProc || dst.Proc != c.DstProc {
			return fmt.Errorf("schedule: comm %d processor mismatch", i)
		}
		if c.Intra {
			if c.SrcProc != c.DstProc {
				return fmt.Errorf("schedule: intra comm %d crosses processors", i)
			}
		} else if c.SrcProc == c.DstProc {
			return fmt.Errorf("schedule: inter comm %d within P%d", i, c.SrcProc)
		}
		if c.Start < src.Finish-Eps {
			return fmt.Errorf("schedule: comm %d starts %v before source finish %v", i, c.Start, src.Finish)
		}
		k := repKey{c.To, c.DstCopy}
		if inputs[k] == nil {
			inputs[k] = map[dag.TaskID]float64{}
		}
		if prev, ok := inputs[k][c.From]; !ok || c.Finish < prev {
			inputs[k][c.From] = c.Finish
		}
	}
	// Every replica must have one input per predecessor by its start.
	for t := range s.Reps {
		for _, r := range s.Reps[t] {
			for _, e := range p.G.Pred(dag.TaskID(t)) {
				arr, ok := inputs[repKey{dag.TaskID(t), r.Copy}][e.From]
				if !ok {
					return fmt.Errorf("schedule: replica (%d,%d) has no input for predecessor %d", t, r.Copy, e.From)
				}
				if arr > r.Start+Eps {
					return fmt.Errorf("schedule: replica (%d,%d) starts %v before input from %d at %v", t, r.Copy, r.Start, e.From, arr)
				}
			}
		}
	}
	if p.Model == OnePort {
		if err := s.validateOnePort(); err != nil {
			return err
		}
	}
	return s.validateCompute()
}

func (s *Schedule) validateCompute() error {
	m := s.P.Plat.M
	per := make([][]timeline.Interval, m)
	for t := range s.Reps {
		for _, r := range s.Reps[t] {
			per[r.Proc] = append(per[r.Proc], timeline.Interval{Start: r.Start, End: r.Finish, Owner: r.Seq})
		}
	}
	for proc, ivs := range per {
		if err := nonOverlap(ivs); err != nil {
			return fmt.Errorf("schedule: compute P%d: %w", proc, err)
		}
	}
	return nil
}

func (s *Schedule) validateOnePort() error {
	m := s.P.Plat.M
	net := s.P.Network()
	send := make([][]timeline.Interval, m)
	recv := make([][]timeline.Interval, m)
	link := make([][]timeline.Interval, net.NumLinks())
	for _, c := range s.Comms {
		if c.Intra {
			continue
		}
		iv := timeline.Interval{Start: c.Start, End: c.Finish, Owner: c.Seq}
		send[c.SrcProc] = append(send[c.SrcProc], iv)
		recv[c.DstProc] = append(recv[c.DstProc], iv)
		for _, l := range net.Route(c.SrcProc, c.DstProc) {
			link[l] = append(link[l], iv)
		}
	}
	for proc, ivs := range send {
		if err := nonOverlap(ivs); err != nil {
			return fmt.Errorf("schedule: send port P%d: %w", proc, err)
		}
	}
	for proc, ivs := range recv {
		if err := nonOverlap(ivs); err != nil {
			return fmt.Errorf("schedule: recv port P%d: %w", proc, err)
		}
	}
	for l, ivs := range link {
		if err := nonOverlap(ivs); err != nil {
			return fmt.Errorf("schedule: link %d: %w", l, err)
		}
	}
	return nil
}

func nonOverlap(ivs []timeline.Interval) error {
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].Start < ivs[j].Start })
	for i := 1; i < len(ivs); i++ {
		if ivs[i].Start < ivs[i-1].End-Eps {
			return fmt.Errorf("intervals [%v,%v) and [%v,%v) overlap",
				ivs[i-1].Start, ivs[i-1].End, ivs[i].Start, ivs[i].End)
		}
	}
	return nil
}
