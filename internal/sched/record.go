package sched

import (
	"fmt"
	"math"
	"sort"

	"caft/internal/dag"
	"caft/internal/timeline"
)

// Replica is one scheduled copy of a task. Copy indexes the ε+1 replicas
// of the task (0-based). Start/Finish are the times the scheduler
// committed to; the runtime replay in package sim may move them when
// processors crash.
type Replica struct {
	Task   dag.TaskID
	Copy   int
	Proc   int
	Start  float64
	Finish float64
	Seq    int32
}

// Comm is a scheduled data transfer along a precedence edge From->To,
// from replica (From, SrcCopy) on SrcProc to replica (To, DstCopy) on
// DstProc. Intra communications (co-located replicas) have zero duration
// and occupy no resources. Start/Finish cover the occupation of the send
// port, the link(s) and the receive port (unified interval model, see
// DESIGN.md S1).
type Comm struct {
	From, To         dag.TaskID
	SrcCopy, DstCopy int
	SrcProc, DstProc int
	Volume           float64
	Dur              float64
	Start, Finish    float64
	Intra            bool
	Seq              int32
}

// Schedule is the immutable result of a scheduling algorithm: the placed
// replicas of every task and every scheduled communication.
type Schedule struct {
	P     *Problem
	Reps  [][]Replica // indexed by task
	Comms []Comm
}

// Eps is the comparison tolerance for floating-point schedule times.
const Eps = 1e-6

// ScheduledLatency returns the latency the scheduler committed to with
// zero crashes: the latest time at which at least one replica of each
// task has been computed (paper §4.2) — max over tasks of the minimum
// replica finish time.
func (s *Schedule) ScheduledLatency() float64 {
	lat := 0.0
	for t := range s.Reps {
		if len(s.Reps[t]) == 0 {
			return math.Inf(1)
		}
		min := math.Inf(1)
		for _, r := range s.Reps[t] {
			if r.Finish < min {
				min = r.Finish
			}
		}
		if min > lat {
			lat = min
		}
	}
	return lat
}

// MakespanAll returns the completion time of the very last replica.
func (s *Schedule) MakespanAll() float64 {
	m := 0.0
	for t := range s.Reps {
		for _, r := range s.Reps[t] {
			if r.Finish > m {
				m = r.Finish
			}
		}
	}
	return m
}

// MessageCount returns the number of inter-processor messages in the
// schedule (intra-processor transfers are free and not counted). This is
// the quantity bounded by e(ε+1) for CAFT on outforests (Prop. 5.1) and
// by e(ε+1)² for FTSA/FTBAR.
func (s *Schedule) MessageCount() int {
	n := 0
	for _, c := range s.Comms {
		if !c.Intra {
			n++
		}
	}
	return n
}

// ReplicaCount returns the total number of placed replicas.
func (s *Schedule) ReplicaCount() int {
	n := 0
	for t := range s.Reps {
		n += len(s.Reps[t])
	}
	return n
}

// FindReplica returns the replica (t, copy) or nil.
func (s *Schedule) FindReplica(t dag.TaskID, copy int) *Replica {
	for i := range s.Reps[t] {
		if s.Reps[t][i].Copy == copy {
			return &s.Reps[t][i]
		}
	}
	return nil
}

// Validate checks that the schedule is well formed and obeys the
// communication model:
//
//   - every task has at least one replica; replicas of a task occupy
//     pairwise distinct processors (space exclusion);
//   - replica durations match E(t,P);
//   - every communication starts at or after its source replica's finish
//     and matches the placement of its endpoint replicas;
//   - every replica has, for each predecessor, at least one input
//     (communication or intra transfer) arriving by its start time;
//   - under the one-port model, the send-port, receive-port and link
//     occupations of all communications are pairwise non-overlapping
//     (constraints (1), (2), (3) of the paper) and task executions do
//     not overlap per processor.
func (s *Schedule) Validate() error {
	return NewValidator().Validate(s)
}

// Validator checks schedules against the model of Schedule.Validate on
// dense scratch keyed by the graph's compiled view: per-replica input
// arrivals live in a flat slice indexed by (replica cell, predecessor
// slot) instead of nested maps, replica lookup is an offset table, and
// resource-exclusion intervals are bucketed CSR-style per port and
// link. Every table grows to the largest schedule seen and is reused,
// so a long-lived Validator validates a stream of same-shaped schedules
// without allocating after warm-up. It is not safe for concurrent use.
//
//caft:confined
type Validator struct {
	repOff  []int32   // task -> first (task,copy) cell; len n+1
	repPtr  []int32   // (task,copy) cell -> index into Reps[t], or -1
	arrOff  []int32   // task -> first arrival cell; len n+1
	arrival []float64 // earliest input arrival per (replica cell, pred slot)
	hasArr  []bool
	seen    []bool // per-processor bitset (replica space exclusion)
	ivOff   []int32
	ivNext  []int32
	ivs     []timeline.Interval
	route1  [1]int // clique fast path of routeOf
	sorter  intervalsByStart
}

// NewValidator returns an empty Validator; tables are sized lazily by
// the first Validate call.
func NewValidator() *Validator { return &Validator{} }

// Validate runs the checks documented on Schedule.Validate. Rejection
// paths allocate (error construction); accepting a well-formed schedule
// allocates nothing once the scratch has warmed up.
//
//caft:zeroalloc
func (v *Validator) Validate(s *Schedule) error {
	p := s.P
	cg, err := p.G.Compile() //caft:alloc-ok the compiled view is cached on the DAG after the first call
	if err != nil {
		return err
	}
	n := cg.NumTasks()
	if len(s.Reps) != n {
		return fmt.Errorf("schedule: %d tasks recorded, want %d", len(s.Reps), n) //caft:alloc-ok rejection path; the accept path allocates nothing
	}
	m := p.Plat.M
	v.seen = growBool(v.seen, m)
	for i := range v.seen {
		v.seen[i] = false
	}
	for t := range s.Reps {
		if len(s.Reps[t]) == 0 {
			return fmt.Errorf("schedule: task %d has no replica", t) //caft:alloc-ok rejection path; the accept path allocates nothing
		}
		for _, r := range s.Reps[t] {
			if r.Task != dag.TaskID(t) {
				return fmt.Errorf("schedule: replica of task %d filed under %d", r.Task, t) //caft:alloc-ok rejection path; the accept path allocates nothing
			}
			if v.seen[r.Proc] {
				return fmt.Errorf("schedule: task %d has two replicas on P%d", t, r.Proc) //caft:alloc-ok rejection path; the accept path allocates nothing
			}
			v.seen[r.Proc] = true
			want := p.Exec[t][r.Proc]
			if math.Abs((r.Finish-r.Start)-want) > Eps {
				return fmt.Errorf("schedule: replica (%d,%d) duration %v, want %v", t, r.Copy, r.Finish-r.Start, want) //caft:alloc-ok rejection path; the accept path allocates nothing
			}
		}
		for _, r := range s.Reps[t] {
			v.seen[r.Proc] = false
		}
	}
	// Replica cells: one slot per (task, copy) up to each task's largest
	// copy index, with parallel arrival cells per predecessor slot.
	v.repOff = growI32(v.repOff, n+1)
	v.arrOff = growI32(v.arrOff, n+1)
	v.repOff[0], v.arrOff[0] = 0, 0
	for t := range s.Reps {
		maxCopy := -1
		for _, r := range s.Reps[t] {
			if r.Copy > maxCopy {
				maxCopy = r.Copy
			}
		}
		v.repOff[t+1] = v.repOff[t] + int32(maxCopy+1)
		v.arrOff[t+1] = v.arrOff[t] + int32((maxCopy+1)*cg.InDegree(dag.TaskID(t)))
	}
	nCells := int(v.repOff[n])
	v.repPtr = growI32(v.repPtr, nCells)
	for i := 0; i < nCells; i++ {
		v.repPtr[i] = -1
	}
	for t := range s.Reps {
		for i, r := range s.Reps[t] {
			if cell := int(v.repOff[t]) + r.Copy; r.Copy >= 0 && v.repPtr[cell] < 0 {
				v.repPtr[cell] = int32(i) // first match wins, as FindReplica scans
			}
		}
	}
	nArr := int(v.arrOff[n])
	v.arrival = growF64(v.arrival, nArr)
	v.hasArr = growBool(v.hasArr, nArr)
	for i := 0; i < nArr; i++ {
		v.hasArr[i] = false
	}
	// Fold each communication into its destination's arrival cells. A
	// predecessor with parallel edges owns several slots; all of them
	// receive the earliest arrival from that predecessor, matching the
	// per-predecessor (not per-edge) keying of the input rule.
	for i := range s.Comms {
		c := &s.Comms[i]
		src := v.replica(s, c.From, c.SrcCopy)
		dst := v.replica(s, c.To, c.DstCopy)
		if src == nil || dst == nil {
			return fmt.Errorf("schedule: comm %d references missing replica", i) //caft:alloc-ok rejection path; the accept path allocates nothing
		}
		if src.Proc != c.SrcProc || dst.Proc != c.DstProc {
			return fmt.Errorf("schedule: comm %d processor mismatch", i) //caft:alloc-ok rejection path; the accept path allocates nothing
		}
		if c.Intra {
			if c.SrcProc != c.DstProc {
				return fmt.Errorf("schedule: intra comm %d crosses processors", i) //caft:alloc-ok rejection path; the accept path allocates nothing
			}
		} else if c.SrcProc == c.DstProc {
			return fmt.Errorf("schedule: inter comm %d within P%d", i, c.SrcProc) //caft:alloc-ok rejection path; the accept path allocates nothing
		}
		if c.Start < src.Finish-Eps {
			return fmt.Errorf("schedule: comm %d starts %v before source finish %v", i, c.Start, src.Finish) //caft:alloc-ok rejection path; the accept path allocates nothing
		}
		from, _ := cg.Pred(c.To)
		base := int(v.arrOff[c.To]) + c.DstCopy*len(from)
		for j, f := range from {
			if dag.TaskID(f) != c.From {
				continue
			}
			cell := base + j
			if !v.hasArr[cell] || c.Finish < v.arrival[cell] {
				v.hasArr[cell] = true
				v.arrival[cell] = c.Finish
			}
		}
	}
	// Every replica must have one input per predecessor by its start.
	for t := range s.Reps {
		from, _ := cg.Pred(dag.TaskID(t))
		if len(from) == 0 {
			continue
		}
		for _, r := range s.Reps[t] {
			base := -1
			if r.Copy >= 0 {
				base = int(v.arrOff[t]) + r.Copy*len(from)
			}
			for j, f := range from {
				if base < 0 || !v.hasArr[base+j] {
					return fmt.Errorf("schedule: replica (%d,%d) has no input for predecessor %d", t, r.Copy, f) //caft:alloc-ok rejection path; the accept path allocates nothing
				}
				if arr := v.arrival[base+j]; arr > r.Start+Eps {
					return fmt.Errorf("schedule: replica (%d,%d) starts %v before input from %d at %v", t, r.Copy, r.Start, f, arr) //caft:alloc-ok rejection path; the accept path allocates nothing
				}
			}
		}
	}
	if p.Model == OnePort {
		if err := v.validateOnePort(s); err != nil {
			return err
		}
	}
	return v.validateCompute(s)
}

// replica is the dense counterpart of Schedule.FindReplica: the first
// replica recorded as (t, copy), or nil.
//
//caft:zeroalloc
func (v *Validator) replica(s *Schedule, t dag.TaskID, copy int) *Replica {
	if copy < 0 || int32(copy) >= v.repOff[t+1]-v.repOff[t] {
		return nil
	}
	i := v.repPtr[int(v.repOff[t])+copy]
	if i < 0 {
		return nil
	}
	return &s.Reps[t][i]
}

// bucketReset prepares nRes CSR interval buckets with the given counts
// already accumulated in v.ivOff[1:nRes+1]: offsets are prefix-summed
// and the fill cursors initialized.
//
//caft:zeroalloc
func (v *Validator) bucketReset(nRes int) {
	for r := 0; r < nRes; r++ {
		v.ivOff[r+1] += v.ivOff[r]
		v.ivNext[r] = v.ivOff[r]
	}
	v.ivs = growIv(v.ivs, int(v.ivOff[nRes]))
}

//caft:zeroalloc
func (v *Validator) validateCompute(s *Schedule) error {
	m := s.P.Plat.M
	v.ivOff = growI32(v.ivOff, m+1)
	v.ivNext = growI32(v.ivNext, m)
	for r := 0; r <= m; r++ {
		v.ivOff[r] = 0
	}
	for t := range s.Reps {
		for _, r := range s.Reps[t] {
			v.ivOff[r.Proc+1]++
		}
	}
	v.bucketReset(m)
	for t := range s.Reps {
		for _, r := range s.Reps[t] {
			v.ivs[v.ivNext[r.Proc]] = timeline.Interval{Start: r.Start, End: r.Finish, Owner: r.Seq}
			v.ivNext[r.Proc]++
		}
	}
	for proc := 0; proc < m; proc++ {
		if err := v.nonOverlap(v.ivs[v.ivOff[proc]:v.ivOff[proc+1]]); err != nil {
			return fmt.Errorf("schedule: compute P%d: %w", proc, err) //caft:alloc-ok rejection path; the accept path allocates nothing
		}
	}
	return nil
}

//caft:zeroalloc
func (v *Validator) validateOnePort(s *Schedule) error {
	m := s.P.Plat.M
	net := s.P.Network() //caft:alloc-ok interface construction for the default clique network; amortized, not per-comm
	// Resources: send ports [0,m), receive ports [m,2m), links [2m,..).
	nRes := 2*m + net.NumLinks() //caft:alloc-ok interface dispatch; in-tree networks answer with pure arithmetic
	v.ivOff = growI32(v.ivOff, nRes+1)
	v.ivNext = growI32(v.ivNext, nRes)
	for r := 0; r <= nRes; r++ {
		v.ivOff[r] = 0
	}
	for i := range s.Comms {
		c := &s.Comms[i]
		if c.Intra {
			continue
		}
		v.ivOff[c.SrcProc+1]++
		v.ivOff[m+c.DstProc+1]++
		for _, l := range v.routeOf(net, c.SrcProc, c.DstProc) {
			v.ivOff[2*m+l+1]++
		}
	}
	v.bucketReset(nRes)
	for i := range s.Comms {
		c := &s.Comms[i]
		if c.Intra {
			continue
		}
		iv := timeline.Interval{Start: c.Start, End: c.Finish, Owner: c.Seq}
		v.ivs[v.ivNext[c.SrcProc]] = iv
		v.ivNext[c.SrcProc]++
		v.ivs[v.ivNext[m+c.DstProc]] = iv
		v.ivNext[m+c.DstProc]++
		for _, l := range v.routeOf(net, c.SrcProc, c.DstProc) {
			v.ivs[v.ivNext[2*m+l]] = iv
			v.ivNext[2*m+l]++
		}
	}
	for proc := 0; proc < m; proc++ {
		if err := v.nonOverlap(v.ivs[v.ivOff[proc]:v.ivOff[proc+1]]); err != nil {
			return fmt.Errorf("schedule: send port P%d: %w", proc, err) //caft:alloc-ok rejection path; the accept path allocates nothing
		}
	}
	for proc := 0; proc < m; proc++ {
		if err := v.nonOverlap(v.ivs[v.ivOff[m+proc]:v.ivOff[m+proc+1]]); err != nil {
			return fmt.Errorf("schedule: recv port P%d: %w", proc, err) //caft:alloc-ok rejection path; the accept path allocates nothing
		}
	}
	for l := 0; l < nRes-2*m; l++ {
		if err := v.nonOverlap(v.ivs[v.ivOff[2*m+l]:v.ivOff[2*m+l+1]]); err != nil {
			return fmt.Errorf("schedule: link %d: %w", l, err) //caft:alloc-ok rejection path; the accept path allocates nothing
		}
	}
	return nil
}

// routeOf returns the directed links crossed by an inter-processor
// transfer. The default clique network is special-cased onto a
// validator-owned one-element array so the steady-state validation path
// allocates nothing; other networks answer from their routing tables.
//
//caft:zeroalloc
//caft:scratch
func (v *Validator) routeOf(net Network, src, dst int) []int {
	if cl, ok := net.(Clique); ok {
		v.route1[0] = src*cl.Plat.M + dst
		return v.route1[:]
	}
	return net.Route(src, dst) //caft:alloc-ok sparse-network routing tables answer here; the clique fast path above is allocation-free
}

// nonOverlap sorts one resource bucket by start time in place and
// reports the first adjacent overlap.
//
//caft:zeroalloc
func (v *Validator) nonOverlap(ivs []timeline.Interval) error {
	v.sorter.ivs = ivs
	sort.Sort(&v.sorter) //caft:alloc-ok pointer sorter; sort.Sort itself does not allocate
	v.sorter.ivs = nil
	for i := 1; i < len(ivs); i++ {
		if ivs[i].Start < ivs[i-1].End-Eps {
			return fmt.Errorf("intervals [%v,%v) and [%v,%v) overlap", //caft:alloc-ok rejection path; the accept path allocates nothing
				ivs[i-1].Start, ivs[i-1].End, ivs[i].Start, ivs[i].End)
		}
	}
	return nil
}

// intervalsByStart sorts a bucket by interval start; a pointer receiver
// keeps sort.Sort allocation-free.
type intervalsByStart struct{ ivs []timeline.Interval }

func (s *intervalsByStart) Len() int           { return len(s.ivs) }
func (s *intervalsByStart) Less(i, j int) bool { return s.ivs[i].Start < s.ivs[j].Start }
func (s *intervalsByStart) Swap(i, j int)      { s.ivs[i], s.ivs[j] = s.ivs[j], s.ivs[i] }

// growI32/growF64/growBool/growIv return a slice of the requested
// length, reusing the given backing array when it is large enough.
//
//caft:zeroalloc
func growI32(s []int32, n int) []int32 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int32, n) //caft:alloc-ok scratch warm-up; reused afterwards
}

//caft:zeroalloc
func growF64(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n) //caft:alloc-ok scratch warm-up; reused afterwards
}

//caft:zeroalloc
func growBool(s []bool, n int) []bool {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]bool, n) //caft:alloc-ok scratch warm-up; reused afterwards
}

//caft:zeroalloc
func growIv(s []timeline.Interval, n int) []timeline.Interval {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]timeline.Interval, n) //caft:alloc-ok scratch warm-up; reused afterwards
}
