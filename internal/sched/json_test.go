package sched

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"caft/internal/gen"
)

func buildSmallSchedule(t *testing.T) *Schedule {
	t.Helper()
	g := gen.Join(2, 4)
	p := prob(g, 3, 1)
	st := NewState(p)
	if _, err := st.PlaceReplica(0, 0, 0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := st.PlaceReplica(1, 0, 1, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := st.PlaceReplica(2, 0, 2, st.FullSources(2)); err != nil {
		t.Fatal(err)
	}
	return st.Snapshot()
}

func TestScheduleJSONRoundTrip(t *testing.T) {
	s := buildSmallSchedule(t)
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	s2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s2.ScheduledLatency()-s.ScheduledLatency()) > Eps {
		t.Fatalf("latency changed: %v vs %v", s2.ScheduledLatency(), s.ScheduledLatency())
	}
	if s2.MessageCount() != s.MessageCount() || s2.ReplicaCount() != s.ReplicaCount() {
		t.Fatal("counts changed across round trip")
	}
	if s2.P.Model != OnePort {
		t.Fatalf("model = %v", s2.P.Model)
	}
}

func TestReadJSONRejectsCorruption(t *testing.T) {
	s := buildSmallSchedule(t)
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.String()

	cases := map[string]string{
		"missing graph":  `{"delay":[[0]],"exec":[[1]]}`,
		"unknown model":  strings.Replace(good, `"model": "one-port"`, `"model": "psychic"`, 1),
		"unknown policy": strings.Replace(good, `"policy": "append"`, `"policy": "chaos"`, 1),
		"not json":       "{",
	}
	for name, raw := range cases {
		if _, err := ReadJSON(strings.NewReader(raw)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadJSONValidatesSchedule(t *testing.T) {
	s := buildSmallSchedule(t)
	// Corrupt a replica so the loaded schedule violates precedence.
	s.Reps[2][0].Start, s.Reps[2][0].Finish = 0, 1
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJSON(&buf); err == nil {
		t.Fatal("accepted invalid schedule")
	}
}
