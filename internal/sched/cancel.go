package sched

import (
	"fmt"

	"caft/internal/timeline"
)

// This file is the online-rescheduling surface of State: rebuilding a
// state from a committed schedule, cancelling the reservations of work
// lost to a crash, and the time floor that keeps reactive placements
// from rewriting the past. Cancellations are journaled exactly like
// reservations, so a Speculate scope that cancels and re-places work
// rolls back to the pristine state (the online engine runs every replay
// inside one such scope; see internal/online).

// StateOf rebuilds the mutable resource state a schedule was committed
// from: every replica and every inter-processor communication is
// re-booked on the timelines at its recorded interval with its Seq as
// owner, and the replica/communication records are restored. The
// schedule must have been produced by this package's State (records
// carry distinct Seq owners and pairwise-feasible intervals); a
// schedule whose reservations overlap is rejected.
func StateOf(s *Schedule) (*State, error) {
	st := NewState(s.P)
	var maxSeq int32
	for t := range s.Reps {
		st.Reps[t] = append([]Replica(nil), s.Reps[t]...)
		for _, r := range s.Reps[t] {
			if err := st.tls[st.computeID(r.Proc)].Add(r.Start, r.Finish-r.Start, r.Seq); err != nil {
				return nil, fmt.Errorf("sched: rebuild replica (%d,%d): %w", t, r.Copy, err)
			}
			if r.Seq > maxSeq {
				maxSeq = r.Seq
			}
		}
	}
	st.Comms = append([]Comm(nil), s.Comms...)
	for i, c := range s.Comms {
		if c.Seq > maxSeq {
			maxSeq = c.Seq
		}
		if c.Intra || s.P.Model == MacroDataflow {
			continue
		}
		for _, id := range st.commResources(c.SrcProc, c.DstProc) {
			if err := st.tls[id].Add(c.Start, c.Dur, c.Seq); err != nil {
				return nil, fmt.Errorf("sched: rebuild comm %d: %w", i, err)
			}
		}
	}
	st.seq = maxSeq
	return st, nil
}

// SetFloor sets the rescheduling time floor: while floor > 0, every new
// reservation (probe or placement) starts at or after it. The online
// rescheduler sets the floor to the crash instant before re-mapping
// lost work — a reactive placement must not occupy resources in the
// past — and resets it to 0 afterwards. The floor does not move
// existing reservations and, under the macro-dataflow model, does not
// constrain communications (they occupy no resources; the online
// engine clamps their executed times instead).
func (st *State) SetFloor(t float64) {
	if st.overlay {
		panic("sched: SetFloor on a probe overlay")
	}
	st.floor = t
}

// CancelReplica removes a placed replica record and its compute
// reservation — the rescheduler's cancellation of work lost to a
// crash. The replica is matched by (Task, Copy, Proc). Inside a
// Speculate scope the removal is journaled and rolled back (record
// re-inserted at its original position, reservation re-added).
func (st *State) CancelReplica(rep Replica) error {
	if st.overlay {
		panic("sched: CancelReplica on a probe overlay")
	}
	reps := st.Reps[rep.Task]
	idx := -1
	for i := range reps {
		if reps[i].Copy == rep.Copy && reps[i].Proc == rep.Proc {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("sched: cancel of unknown replica (%d,%d) on P%d", rep.Task, rep.Copy, rep.Proc)
	}
	rec := reps[idx]
	if err := st.removeReservation(st.computeID(rec.Proc), rec.Start, rec.Finish-rec.Start, rec.Seq); err != nil {
		return fmt.Errorf("sched: cancel replica (%d,%d): %w", rep.Task, rep.Copy, err)
	}
	if st.spec > 0 {
		st.rlog = append(st.rlog, repUndo{task: rep.Task, idx: idx, rep: rec, removed: true})
	}
	st.Reps[rep.Task] = append(reps[:idx], reps[idx+1:]...)
	return nil
}

// CancelComm removes a communication's send-port, receive-port and link
// reservations. The communication record itself stays in Comms — the
// record log is append-only (rollback truncates it), and a dead
// transfer's record is harmless to later placements, which consult only
// the timelines. Intra and macro-dataflow communications hold no
// reservations and cancel to a no-op.
func (st *State) CancelComm(c Comm) error {
	if st.overlay {
		panic("sched: CancelComm on a probe overlay")
	}
	if c.Intra || st.P.Model == MacroDataflow {
		return nil
	}
	for _, id := range st.commResources(c.SrcProc, c.DstProc) {
		if err := st.removeReservation(id, c.Start, c.Dur, c.Seq); err != nil {
			return fmt.Errorf("sched: cancel comm %d->%d seq %d: %w", c.From, c.To, c.Seq, err)
		}
	}
	return nil
}

// removeReservation deletes one timeline reservation, journaling it for
// rollback when a speculation scope is open.
func (st *State) removeReservation(id int, start, dur float64, owner int32) error {
	if !st.tls[id].Remove(start, owner) {
		return fmt.Errorf("no reservation at %v owned by %d on timeline %d", start, owner, id)
	}
	if st.spec > 0 {
		st.tlog = append(st.tlog, tlUndo{id: id, start: start, dur: dur, owner: owner, removed: true})
	}
	return nil
}

// NumTimelines returns the number of resource timelines: m compute, m
// send ports, m receive ports, then one per directed link.
func (st *State) NumTimelines() int { return len(st.tls) }

// Timeline returns resource timeline i for inspection (validation
// cross-checks, tests). The returned pointer aliases state-owned
// storage and must not be mutated.
func (st *State) Timeline(i int) *timeline.Timeline { return &st.tls[i] }
