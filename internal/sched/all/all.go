// Package all links every in-tree scheduler into the sched registry.
// Consumers that dispatch by name (the caftd service, the figure
// sweeps, the CLIs) blank-import it once instead of naming each
// scheduler package; adding a scheduler means adding one import line
// here and nothing anywhere else.
package all

import (
	_ "caft/internal/core"        // caft, caft-greedy
	_ "caft/internal/sched/ftbar" // ftbar
	_ "caft/internal/sched/ftsa"  // ftsa
	_ "caft/internal/sched/heft"  // heft
	_ "caft/internal/sched/hoft"  // hoft
)
