package sched

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"caft/internal/timeline"
)

// Caps declares what a registered scheduler supports, so generic
// consumers (the service's request validation, the figure sweeps, the
// predictability harness) can drive any entry without per-algorithm
// special cases.
type Caps struct {
	// AcceptsEps is true for fault-tolerant schedulers that place ε+1
	// replicas per task. Fault-free references (HEFT, HOFT) must be
	// called with eps = 0 and their New rejects anything else.
	AcceptsEps bool
	// Deterministic promises the schedule is a pure function of
	// (problem, eps, rng seed) — true for every in-tree scheduler; the
	// jitter-predictability harness refuses entries that cannot promise
	// it.
	Deterministic bool
	// Append and Insertion flag the supported timeline reservation
	// policies.
	Append    bool
	Insertion bool
}

// Supports reports whether the scheduler handles the given reservation
// policy.
func (c Caps) Supports(p timeline.Policy) bool {
	if p == timeline.Insertion {
		return c.Insertion
	}
	return c.Append
}

// Descriptor is one registry entry: a scheduler constructor plus the
// metadata generic consumers need to drive it.
type Descriptor struct {
	// Name is the wire name ({"alg": name} in caftd requests, row labels
	// in the figure TSVs).
	Name string
	// ID is the stable wire/cache enum of the scheduler: it is hashed
	// into caftd's content-addressed cache keys (which appear in response
	// bytes), so IDs are append-only and never reused or renumbered —
	// the same discipline as protobuf field numbers. The in-tree
	// assignment: heft=0, caft=1, caft-greedy=2, ftsa=3, ftbar=4,
	// hoft=5.
	ID   int
	Caps Caps
	// New builds a schedule tolerating eps failures. Schedulers with
	// Caps.AcceptsEps false return an error for eps != 0.
	New func(p *Problem, eps int, rng *rand.Rand) (*Schedule, error)
}

var (
	regMu     sync.RWMutex
	regByName = map[string]Descriptor{}
	// regOrder holds the descriptors sorted by ID, so every listing
	// (Names, Registered) is deterministic regardless of package-init
	// order.
	regOrder []Descriptor
)

// Register adds a scheduler to the registry; packages call it from
// init(), so importing a scheduler package is all it takes for the
// service, the figures and the CLIs to pick it up. It panics on an
// invalid descriptor or on a name/ID collision — both are programmer
// errors, caught by any test that links the offending package.
func Register(d Descriptor) {
	if d.Name == "" || d.New == nil {
		panic("sched: Register needs a name and a constructor")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := regByName[d.Name]; dup {
		panic(fmt.Sprintf("sched: scheduler %q registered twice", d.Name))
	}
	for _, r := range regOrder {
		if r.ID == d.ID {
			panic(fmt.Sprintf("sched: schedulers %q and %q share ID %d (IDs are append-only cache enums)", r.Name, d.Name, d.ID))
		}
	}
	regByName[d.Name] = d
	regOrder = append(regOrder, d)
	sort.Slice(regOrder, func(i, j int) bool { return regOrder[i].ID < regOrder[j].ID })
}

// Lookup returns the descriptor registered under name. It allocates
// nothing: it sits on the service's request-validation and cache-hash
// fast paths.
//
//caft:zeroalloc
func Lookup(name string) (Descriptor, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	d, ok := regByName[name]
	return d, ok
}

// Names lists the registered scheduler names in ID order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, len(regOrder))
	for i, d := range regOrder {
		out[i] = d.Name
	}
	return out
}

// Registered returns a copy of all descriptors in ID order.
func Registered() []Descriptor {
	regMu.RLock()
	defer regMu.RUnlock()
	return append([]Descriptor(nil), regOrder...)
}
