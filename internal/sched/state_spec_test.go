package sched

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"caft/internal/dag"
	"caft/internal/gen"
	"caft/internal/platform"
	"caft/internal/timeline"
)

// fingerprint captures everything a probe must leave untouched: every
// timeline's interval list and ready time, the replica and
// communication records, and the sequence counter.
type stateFP struct {
	ivs   [][]timeline.Interval
	ready []float64
	reps  [][]Replica
	comms []Comm
	seq   int32
}

func fingerprint(st *State) stateFP {
	fp := stateFP{seq: st.seq}
	for i := range st.tls {
		fp.ivs = append(fp.ivs, append([]timeline.Interval(nil), st.tls[i].Intervals()...))
		fp.ready = append(fp.ready, st.tls[i].Ready())
	}
	for t := range st.Reps {
		fp.reps = append(fp.reps, append([]Replica(nil), st.Reps[t]...))
	}
	fp.comms = append([]Comm(nil), st.Comms...)
	return fp
}

// randomProblem builds a small random instance under the given policy.
func randomProblem(rng *rand.Rand, m int, pol timeline.Policy) *Problem {
	params := gen.RandomParams{MinTasks: 15, MaxTasks: 25, MinDegree: 1, MaxDegree: 3, MinVolume: 50, MaxVolume: 150}
	g := gen.RandomLayered(rng, params)
	plat := platform.NewRandom(rng, m, 0.5, 1.0)
	exec := platform.GenExecForGranularity(rng, g, plat, 1.0, platform.DefaultHeterogeneity)
	return &Problem{G: g, Plat: plat, Exec: exec, Model: OnePort, Policy: pol}
}

// growState schedules every task FTSA-style (eps+1 replicas on the
// processors with the earliest probed finish), returning the state.
// Task IDs of generated graphs are topologically ordered, so a plain
// sweep respects precedence.
func growState(t *testing.T, st *State, eps int, probe func(tid dag.TaskID, sources []SourceSet)) {
	t.Helper()
	m := st.P.Plat.M
	for task := 0; task < st.P.G.NumTasks(); task++ {
		tid := dag.TaskID(task)
		sources := st.FullSources(tid)
		if probe != nil {
			probe(tid, sources)
		}
		type cand struct {
			proc   int
			finish float64
		}
		var cands []cand
		for proc := 0; proc < m; proc++ {
			rep, err := st.ProbeReplica(tid, 0, proc, sources)
			if err != nil {
				t.Fatalf("probe task %d on P%d: %v", task, proc, err)
			}
			cands = append(cands, cand{proc, rep.Finish})
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].finish != cands[j].finish {
				return cands[i].finish < cands[j].finish
			}
			return cands[i].proc < cands[j].proc
		})
		for k := 0; k <= eps; k++ {
			if _, err := st.PlaceReplica(tid, k, cands[k].proc, sources); err != nil {
				t.Fatalf("place task %d copy %d: %v", task, k, err)
			}
		}
	}
}

// Property: under both policies, a speculative probe returns exactly
// what the deep-clone reference probe returns, and leaves no trace on
// the state — intervals, gap indexes, ready times, records or sequence
// numbers.
func TestQuickProbeMatchesCloneReference(t *testing.T) {
	f := func(seed int64) bool {
		ok := true
		for _, pol := range []timeline.Policy{timeline.Append, timeline.Insertion} {
			rng := rand.New(rand.NewSource(seed))
			p := randomProblem(rng, 4, pol)
			st := NewState(p)
			growState(t, st, 1, func(tid dag.TaskID, sources []SourceSet) {
				before := fingerprint(st)
				for proc := 0; proc < p.Plat.M; proc++ {
					rep, err := st.ProbeReplica(tid, 0, proc, sources)
					if !reflect.DeepEqual(before, fingerprint(st)) {
						t.Logf("pol %v: probe of task %d on P%d mutated the state", pol, tid, proc)
						ok = false
						return
					}
					ref := st.Clone()
					ref.noRecord = true
					refRep, refErr := ref.PlaceReplica(tid, 0, proc, sources)
					if (err != nil) != (refErr != nil) || rep != refRep {
						t.Logf("pol %v: probe of task %d on P%d = (%+v, %v), clone reference (%+v, %v)",
							pol, tid, proc, rep, err, refRep, refErr)
						ok = false
						return
					}
				}
				for i := range st.tls {
					if err := st.tls[i].Validate(); err != nil {
						t.Logf("pol %v: timeline %d after probes: %v", pol, i, err)
						ok = false
						return
					}
				}
			})
			if !ok {
				return false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Speculate must roll back multi-step placements exactly, on success,
// on error, and when nested.
func TestSpeculateRollsBackExactly(t *testing.T) {
	for _, pol := range []timeline.Policy{timeline.Append, timeline.Insertion} {
		rng := rand.New(rand.NewSource(7))
		p := randomProblem(rng, 4, pol)
		st := NewState(p)
		growState(t, st, 1, nil)
		before := fingerprint(st)

		// Two dependent placements: an extra replica of an entry task,
		// then an extra replica of one of its successors fed by it. Find
		// a task with a free processor.
		var tid dag.TaskID = 2
		free := -1
		hosting := st.ProcsOf(tid)
		for proc, h := range hosting {
			if !h {
				free = proc
				break
			}
		}
		if free < 0 {
			t.Fatalf("pol %v: no free processor for task %d", pol, tid)
		}
		err := st.Speculate(func() error {
			rep, err := st.PlaceReplica(tid, len(st.Reps[tid]), free, st.FullSources(tid))
			if err != nil {
				return err
			}
			if got := len(st.Reps[tid]); got < 3 {
				t.Errorf("pol %v: speculative replica not visible inside Speculate (len %d)", pol, got)
			}
			// Nested speculation sees and then loses its own placements.
			inner := st.Speculate(func() error {
				_, err := st.PlaceReplica(rep.Task, len(st.Reps[rep.Task]), (free+1)%p.Plat.M, st.FullSources(rep.Task))
				return err
			})
			// The inner placement targets a processor that may already
			// host the task; either way the outer state must be intact.
			_ = inner
			return nil
		})
		if err != nil {
			t.Fatalf("pol %v: %v", pol, err)
		}
		if !reflect.DeepEqual(before, fingerprint(st)) {
			t.Fatalf("pol %v: Speculate left residue", pol)
		}
		// Error path: a failing placement inside Speculate still rolls
		// back whatever was reserved before the failure.
		spErr := st.Speculate(func() error {
			if _, err := st.PlaceReplica(tid, len(st.Reps[tid]), free, st.FullSources(tid)); err != nil {
				return err
			}
			_, err := st.PlaceReplica(tid, len(st.Reps[tid]), free, st.FullSources(tid)) // same proc: rejected
			return err
		})
		if spErr == nil {
			t.Fatalf("pol %v: duplicate-processor placement accepted", pol)
		}
		if !reflect.DeepEqual(before, fingerprint(st)) {
			t.Fatalf("pol %v: failing Speculate left residue", pol)
		}
	}
}

// ProcsOf must report exactly the hosting processors and reuse its
// scratch without allocating.
func TestProcsOfScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := randomProblem(rng, 5, timeline.Append)
	st := NewState(p)
	growState(t, st, 1, nil)
	for task := 0; task < p.G.NumTasks(); task++ {
		hosting := st.ProcsOf(dag.TaskID(task))
		if len(hosting) != p.Plat.M {
			t.Fatalf("ProcsOf length %d, want %d", len(hosting), p.Plat.M)
		}
		want := map[int]bool{}
		for _, r := range st.Reps[task] {
			want[r.Proc] = true
		}
		for proc, h := range hosting {
			if h != want[proc] {
				t.Fatalf("task %d: ProcsOf[%d] = %v, want %v", task, proc, h, want[proc])
			}
		}
	}
	allocs := testing.AllocsPerRun(50, func() { st.ProcsOf(3) })
	if allocs > 0 {
		t.Errorf("ProcsOf allocates %.1f per call after warm-up", allocs)
	}
}

// Pin the ProcsOf aliasing contract: the returned bitset is scratch, so
// a second call on the same state overwrites the first result in place.
// A caller retaining the slice across calls observes silent mutation —
// that is exactly what this regression documents — and ProcsOfCopy is
// the retention-safe variant.
func TestProcsOfSecondCallInvalidatesFirst(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := randomProblem(rng, 5, timeline.Append)
	st := NewState(p)
	growState(t, st, 1, nil)

	// Find two tasks with different hosting sets; with ε+1 = 2 replicas
	// over 5 processors some pair must differ.
	var t1, t2 dag.TaskID = -1, -1
	for a := 0; a < p.G.NumTasks() && t1 < 0; a++ {
		for b := a + 1; b < p.G.NumTasks(); b++ {
			if !reflect.DeepEqual(st.ProcsOfCopy(dag.TaskID(a)), st.ProcsOfCopy(dag.TaskID(b))) {
				t1, t2 = dag.TaskID(a), dag.TaskID(b)
				break
			}
		}
	}
	if t1 < 0 {
		t.Fatal("no two tasks with distinct hosting sets in the fixture")
	}

	first := st.ProcsOf(t1)
	snapshot := append([]bool(nil), first...)
	copied := st.ProcsOfCopy(t1)
	second := st.ProcsOf(t2)

	if &first[0] != &second[0] {
		t.Fatal("ProcsOf returned distinct backing arrays; scratch reuse contract changed")
	}
	if reflect.DeepEqual(snapshot, first) {
		t.Fatal("second ProcsOf call left the first result intact; expected in-place overwrite")
	}
	if !reflect.DeepEqual(copied, snapshot) {
		t.Error("ProcsOfCopy result mutated by a later ProcsOf call")
	}
	if !reflect.DeepEqual([]bool(second), append([]bool(nil), st.ProcsOfCopy(t2)...)) {
		t.Error("ProcsOf disagrees with ProcsOfCopy for the same task")
	}
}

// The acceptance pin of the speculative-probe refactor: an
// Insertion-policy probe through the journal must allocate at least 5x
// less than the clone-per-probe reference (in practice it is
// allocation-free in steady state).
func TestInsertionProbeAllocPin(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := randomProblem(rng, 6, timeline.Insertion)
	st := NewState(p)
	last := dag.TaskID(p.G.NumTasks() - 1)
	for task := 0; task < int(last); task++ {
		tid := dag.TaskID(task)
		sources := st.FullSources(tid)
		for k, proc := 0, 0; k < 2; k, proc = k+1, proc+1 {
			if _, err := st.PlaceReplica(tid, k, proc+int(tid)%3, sources); err != nil {
				t.Fatal(err)
			}
		}
	}
	sources := st.FullSources(last)
	if _, err := st.ProbeReplica(last, 0, 0, sources); err != nil { // warm up scratch + journal
		t.Fatal(err)
	}
	spec := testing.AllocsPerRun(100, func() {
		if _, err := st.ProbeReplica(last, 0, 0, sources); err != nil {
			t.Fatal(err)
		}
	})
	p.Probe = CloneProbe
	clone := testing.AllocsPerRun(100, func() {
		if _, err := st.ProbeReplica(last, 0, 0, sources); err != nil {
			t.Fatal(err)
		}
	})
	p.Probe = SpeculativeProbe
	t.Logf("allocs/probe: speculative %.1f, clone reference %.1f", spec, clone)
	if spec > 2 {
		t.Errorf("speculative probe allocates %.1f per call, want ~0", spec)
	}
	if 5*spec > clone {
		t.Errorf("speculative probe (%.1f allocs) is not >=5x leaner than the clone path (%.1f allocs)", spec, clone)
	}
}
