// Package sched provides the shared machinery of all the schedulers in
// this repository: the scheduling problem definition (task graph +
// heterogeneous platform + communication model), the resource state that
// enforces the bidirectional one-port model of the paper (each processor
// sends to at most one and receives from at most one processor at a
// time, communications on a link are serialized, computation overlaps
// communication), replica and communication records, schedule
// validation, and the priority-driven free-task list shared by the
// list-scheduling heuristics.
//
//caft:deterministic
package sched

import (
	"fmt"

	"caft/internal/dag"
	"caft/internal/platform"
	"caft/internal/timeline"
)

// Model selects the communication model under which scheduling
// decisions are made.
type Model int

const (
	// OnePort is the paper's bidirectional one-port model: every
	// communication exclusively occupies the sender's send port, the
	// link(s) it crosses and the receiver's receive port for its whole
	// duration.
	OnePort Model = iota
	// MacroDataflow is the traditional contention-free model: a
	// communication is constrained only by the finish time of its source
	// task; an unbounded number of messages may overlap.
	MacroDataflow
)

//caft:zeroalloc
func (m Model) String() string {
	switch m {
	case OnePort:
		return "one-port"
	case MacroDataflow:
		return "macro-dataflow"
	default:
		return fmt.Sprintf("Model(%d)", int(m)) //caft:alloc-ok out-of-range debug rendering; unreachable for the defined models
	}
}

// Network abstracts the interconnect: it maps a processor pair to the
// directed links a message crosses and to the transfer duration of a
// given data volume. The default is the paper's fully connected
// (clique) network with dedicated links; package topology provides
// sparse interconnects with routing tables (the paper's Section 7
// extension).
type Network interface {
	// NumLinks returns the number of directed links, used to size the
	// link timelines.
	NumLinks() int
	// Route returns the directed link IDs crossed by a message from src
	// to dst, in order. It must return nil when src == dst.
	Route(src, dst int) []int
	// Dur returns the transfer time of volume units from src to dst
	// (zero when src == dst).
	Dur(src, dst int, volume float64) float64
	// MeanUnitDelay returns the average unit-volume transfer time over
	// distinct processor pairs; it drives priority path lengths.
	MeanUnitDelay() float64
}

// Clique is the paper's fully connected network: one dedicated directed
// link per ordered processor pair, with unit delays taken from the
// platform's delay matrix.
type Clique struct {
	Plat *platform.Platform
}

// NumLinks returns m*m directed links (diagonal entries are unused).
func (c Clique) NumLinks() int { return c.Plat.M * c.Plat.M }

// Route returns the single dedicated link src->dst.
func (c Clique) Route(src, dst int) []int {
	if src == dst {
		return nil
	}
	return []int{src*c.Plat.M + dst}
}

// Dur returns volume * d(src, dst).
func (c Clique) Dur(src, dst int, volume float64) float64 {
	return volume * c.Plat.Delay[src][dst]
}

// MeanUnitDelay returns the platform's mean unit delay.
func (c Clique) MeanUnitDelay() float64 { return c.Plat.MeanDelay() }

// ProbeMode selects how State.ProbeReplica simulates candidate
// placements. Both modes produce bit-identical schedules; the clone
// mode exists as the slow reference the speculative path is verified
// against (and for debugging journal suspicions).
type ProbeMode int

const (
	// SpeculativeProbe (the default) probes on the real state through
	// the reservation journal and rolls back, with the Append-policy
	// ready-time overlay as a special case. No timelines are cloned.
	SpeculativeProbe ProbeMode = iota
	// CloneProbe deep-clones the whole state for every probe — the
	// pre-journal reference implementation.
	CloneProbe
)

func (m ProbeMode) String() string {
	if m == CloneProbe {
		return "clone"
	}
	return "speculative"
}

// Problem bundles everything a scheduler needs: the DAG, the platform,
// the execution-time matrix E(t,P), the communication model, the
// timeline reservation policy and (optionally) a sparse network. A nil
// Net means the clique network over Plat.
type Problem struct {
	G      *dag.DAG
	Plat   *platform.Platform
	Exec   platform.ExecMatrix
	Model  Model
	Policy timeline.Policy
	Net    Network
	Probe  ProbeMode

	// ProbeWidth bounds placement probing: when positive, schedulers
	// that consult State.Candidates probe only the ProbeWidth processors
	// with the best optimistic-finish-time lower bound for the task
	// (hoft's OFT table), instead of all m. 0 (the default) probes every
	// processor and is bit-for-bit identical to the unbounded behavior;
	// so is any width >= m. Schedulers may probe more than ProbeWidth
	// processors when correctness demands it (eps+1 replicas need eps+1
	// distinct processors, and failed placements fall back to the full
	// set), so a small width bounds work, not feasibility.
	ProbeWidth int
}

// Network returns the effective interconnect (Net or the clique).
func (p *Problem) Network() Network {
	if p.Net != nil {
		return p.Net
	}
	return Clique{Plat: p.Plat}
}

// Validate checks the problem for shape consistency.
func (p *Problem) Validate() error {
	if p.G == nil || p.Plat == nil {
		return fmt.Errorf("sched: nil graph or platform")
	}
	if err := p.G.Validate(); err != nil {
		return err
	}
	if err := p.Plat.Validate(); err != nil {
		return err
	}
	if err := p.Exec.Validate(p.G, p.Plat); err != nil {
		return err
	}
	if p.Plat.M < 1 {
		return fmt.Errorf("sched: platform has no processors")
	}
	return nil
}
