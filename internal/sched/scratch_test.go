package sched

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"caft/internal/dag"
	"caft/internal/gen"
)

// TestFreeAliasingContract pins the //caft:scratch contract on
// Lister.Free: the returned slice aliases internal storage and is
// invalidated by Pop/Take/MarkScheduled, while FreeCopy survives them.
func TestFreeAliasingContract(t *testing.T) {
	// Join(4): three roots feeding one sink, so three tasks start free.
	g := gen.Join(4, 10)
	p := prob(g, 2, 1)
	l := NewLister(p, rand.New(rand.NewSource(1)))

	aliased := l.Free()
	copied := l.FreeCopy()
	if !reflect.DeepEqual(aliased, copied) {
		t.Fatalf("Free = %v, FreeCopy = %v; want equal before mutation", aliased, copied)
	}
	want := append([]dag.TaskID(nil), copied...)

	popped, ok := l.Pop()
	if !ok {
		t.Fatal("Pop on a non-empty free list failed")
	}
	l.MarkScheduled(popped, 1)

	if !reflect.DeepEqual(copied, want) {
		t.Errorf("FreeCopy result changed by Pop/MarkScheduled: %v, want %v", copied, want)
	}
	// The aliased slice still has its original length but its contents
	// were shifted in place by Pop's delete; equality with the snapshot
	// would only hold by coincidence of which task was popped. Verify it
	// genuinely aliases: the lister's live view must be a prefix of it.
	live := l.Free()
	if len(aliased) != len(want) {
		t.Fatalf("aliased slice length changed: %d, want %d", len(aliased), len(want))
	}
	if !reflect.DeepEqual(aliased[:len(live)], live) {
		t.Errorf("stale Free slice %v does not alias live view %v", aliased, live)
	}

	// FreeCopy of the new state differs from the pinned snapshot by
	// exactly the popped task.
	after := l.FreeCopy()
	rest := append([]dag.TaskID(nil), after...)
	rest = append(rest, popped)
	sortTasks(rest)
	sortTasks(want)
	if !reflect.DeepEqual(rest, want) {
		t.Errorf("free set after Pop = %v + popped %d, want %v", after, popped, want)
	}
}

func sortTasks(ts []dag.TaskID) {
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
}
