package gen

import (
	"fmt"
	"math"
	"math/rand"

	"caft/internal/dag"
)

// Spec is a declarative description of one generated task graph — the
// parameters cmd/dagen exposes as flags, in a form other entry points
// (the caftd scheduling service in particular) can accept as JSON and
// resolve to the same graph. Build is a pure function of the spec:
// equal specs produce identical graphs, and Canonical reduces a spec to
// its semantic content so equal-building specs compare equal.
type Spec struct {
	// Kind selects the family: random, fork, join, chain, outforest,
	// diamond, stencil, montage, fft.
	Kind string `json:"kind"`
	// N is the size parameter (leaves, length, tasks, width, or log2
	// points depending on Kind). The random family sizes itself from
	// MinTasks/MaxTasks instead and ignores N.
	N int `json:"n,omitempty"`
	// Depth parameterizes diamond (chain length) and stencil (rows);
	// zero means the default of 4. Other kinds ignore it.
	Depth int `json:"depth,omitempty"`
	// Volume is the edge data volume of the structured families
	// (outforest included). Zero is a legal value and means zero-volume
	// (communication-free) edges; cmd/dagen's flag default is 100. The
	// random family draws volumes from its own range and ignores it.
	Volume float64 `json:"volume,omitempty"`
	// Seed feeds the PRNG of the random families (random, outforest);
	// the deterministic kinds ignore it.
	Seed int64 `json:"seed,omitempty"`
	// MinTasks/MaxTasks bound the task count of the random family; zero
	// means the paper's DefaultParams range. Other kinds ignore them.
	MinTasks int `json:"minTasks,omitempty"`
	MaxTasks int `json:"maxTasks,omitempty"`
	// Roots is the outforest tree count (zero means 2); Degree its
	// per-task out-degree cap (zero means unbounded). Other kinds
	// ignore both.
	Roots  int `json:"roots,omitempty"`
	Degree int `json:"degree,omitempty"`
}

// Canonical returns the spec reduced to its semantic content: omitted
// optional fields are resolved to their documented defaults and fields
// the kind does not consume are zeroed. Two specs build the same graph
// if and only if their Canonical forms are equal, which is what the
// caftd schedule cache keys on.
//
//caft:zeroalloc
func (sp Spec) Canonical() Spec { return sp.withDefaults() }

// withDefaults implements Canonical; see the per-field comments on Spec
// for which kind consumes which field.
//
//caft:zeroalloc
func (sp Spec) withDefaults() Spec {
	c := Spec{Kind: sp.Kind}
	switch sp.Kind {
	case "random":
		c.Seed = sp.Seed
		c.MinTasks, c.MaxTasks = sp.MinTasks, sp.MaxTasks
		if c.MinTasks == 0 {
			c.MinTasks = DefaultParams.MinTasks
		}
		if c.MaxTasks == 0 {
			c.MaxTasks = DefaultParams.MaxTasks
		}
	case "outforest":
		c.N, c.Volume, c.Seed = sp.N, sp.Volume, sp.Seed
		c.Roots, c.Degree = sp.Roots, sp.Degree
		if c.Roots == 0 {
			c.Roots = 2
		}
	case "diamond", "stencil":
		c.N, c.Volume, c.Depth = sp.N, sp.Volume, sp.Depth
		if c.Depth == 0 {
			c.Depth = 4
		}
	case "montage":
		c.N, c.Volume = sp.N, sp.Volume
		// Montage itself clamps nproj below 2 up to 2; mirror it here so
		// specs that build the same graph share one canonical form.
		if c.N < 2 {
			c.N = 2
		}
	default: // fork, join, chain, fft — and unknown kinds
		c.N, c.Volume = sp.N, sp.Volume
	}
	return c
}

// Validate checks the spec's parameters against its family. Fields the
// family does not consume are ignored (Canonical zeroes them).
func (sp Spec) Validate() error {
	sp = sp.withDefaults()
	switch sp.Kind {
	case "random":
		if sp.MinTasks < 1 || sp.MaxTasks < sp.MinTasks {
			return fmt.Errorf("gen: bad task range [%d, %d]", sp.MinTasks, sp.MaxTasks)
		}
		return nil
	case "outforest":
		if sp.Roots < 1 {
			return fmt.Errorf("gen: roots must be positive, got %d", sp.Roots)
		}
		if sp.Degree < 0 {
			return fmt.Errorf("gen: degree must be non-negative, got %d", sp.Degree)
		}
	case "diamond", "stencil":
		if sp.Depth < 1 {
			return fmt.Errorf("gen: depth must be positive, got %d", sp.Depth)
		}
	case "fork", "join", "chain", "montage", "fft":
	default:
		return fmt.Errorf("gen: unknown kind %q", sp.Kind)
	}
	if sp.N < 1 {
		return fmt.Errorf("gen: size n must be positive, got %d", sp.N)
	}
	if sp.Volume < 0 {
		return fmt.Errorf("gen: volume must be non-negative, got %v", sp.Volume)
	}
	return nil
}

// Tasks returns the task count the spec builds — exact for the
// deterministic families, the MaxTasks upper bound for random —
// without building anything, saturating at math.MaxInt instead of
// overflowing. Serving layers use it to bound problem sizes before
// allocating.
func (sp Spec) Tasks() int {
	sp = sp.withDefaults()
	switch sp.Kind {
	case "random":
		return sp.MaxTasks
	case "fork", "join":
		return satAdd(sp.N, 1)
	case "chain", "outforest":
		return sp.N
	case "diamond":
		return satAdd(satMul(sp.N, sp.Depth), 2)
	case "stencil":
		return satMul(sp.N, sp.Depth)
	case "montage":
		// nproj + (nproj-1) diffs + model + nproj backgrounds + add + shrink.
		return satAdd(satMul(3, max(sp.N, 2)), 2)
	case "fft":
		if sp.N >= 57 { // (n+1) * 2^n no longer fits in an int64
			return math.MaxInt
		}
		return satMul(sp.N+1, 1<<sp.N)
	}
	return 0
}

func satAdd(a, b int) int {
	if a > math.MaxInt-b {
		return math.MaxInt
	}
	return a + b
}

func satMul(a, b int) int {
	if a > 0 && b > 0 && a > math.MaxInt/b {
		return math.MaxInt
	}
	return a * b
}

// Build validates the spec and generates its graph. Random families
// draw from a PRNG seeded with sp.Seed, so the result is a pure
// function of the spec.
func (sp Spec) Build() (*dag.DAG, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	sp = sp.withDefaults()
	rng := rand.New(rand.NewSource(sp.Seed))
	switch sp.Kind {
	case "random":
		params := DefaultParams
		params.MinTasks, params.MaxTasks = sp.MinTasks, sp.MaxTasks
		return RandomLayered(rng, params), nil
	case "fork":
		return Fork(sp.N, sp.Volume), nil
	case "join":
		return Join(sp.N, sp.Volume), nil
	case "chain":
		return Chain(sp.N, sp.Volume), nil
	case "outforest":
		return RandomOutForest(rng, sp.N, sp.Roots, sp.Degree, sp.Volume, sp.Volume), nil
	case "diamond":
		return Diamond(sp.N, sp.Depth, sp.Volume), nil
	case "stencil":
		return Stencil(sp.Depth, sp.N, sp.Volume), nil
	case "montage":
		return Montage(sp.N, sp.Volume), nil
	case "fft":
		return FFT(sp.N, sp.Volume), nil
	}
	panic("unreachable: Validate accepts only known kinds")
}
